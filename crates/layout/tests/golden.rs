//! Golden-encoding test: freezes the exact byte encoding of every
//! registered record.
//!
//! The crash kernel parses these encodings out of a dead kernel's memory;
//! an accidental change to a magic, a field order, a width or a version is
//! exactly the kind of silent drift the layout registry exists to prevent.
//! The canonical samples from [`ow_layout::samples`] are encoded and
//! compared byte-for-byte against the checked-in `golden_layout.txt`. On
//! mismatch the test fails and prints the regenerated file so an
//! *intentional* layout change (which must also bump the record's VERSION
//! and [`ow_layout::LAYOUT_VERSION`]) can update it consciously.

use ow_layout::samples::{encode_sample, samples};
use ow_layout::{proc_off, Record};

/// Where every sample is encoded (a harmless interior address).
const GOLDEN_ADDR: u64 = 0x8000;

fn hex(bytes: &[u8]) -> String {
    let mut out = String::new();
    for (i, chunk) in bytes.chunks(16).enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str("    ");
        for (j, b) in chunk.iter().enumerate() {
            if j > 0 {
                out.push(' ');
            }
            out.push_str(&format!("{b:02x}"));
        }
    }
    out
}

fn render() -> String {
    let mut out = String::new();
    out.push_str("# Golden byte encodings of every registered record.\n");
    out.push_str("# Regenerated output is printed by crates/layout/tests/golden.rs on mismatch;\n");
    out.push_str(
        "# an intentional layout change must bump the record VERSION and LAYOUT_VERSION.\n",
    );
    out.push_str(&format!("layout_version {}\n\n", ow_layout::LAYOUT_VERSION));
    // ProcDesc field offsets are load-bearing for the §4 checksum extent
    // and the fault injector's descriptor-neighborhood bias: freeze them.
    out.push_str("ProcDesc offsets:");
    for (name, off) in [
        ("state", proc_off::STATE),
        ("saved_sp", proc_off::SAVED_SP),
        ("checksum", proc_off::CHECKSUM),
        ("next", proc_off::NEXT),
    ] {
        out.push_str(&format!(" {name}={off}"));
    }
    out.push_str("\n\n");
    for case in samples() {
        out.push_str(&format!(
            "record {} name={} magic={:#010x} version={} size={}\n",
            case.label, case.name, case.magic, case.version, case.size
        ));
        out.push_str(&hex(&encode_sample(&case, GOLDEN_ADDR)));
        out.push_str("\n\n");
    }
    out
}

#[test]
fn golden_encodings_are_frozen() {
    let got = render();
    // `UPDATE_GOLDEN=1 cargo test -p ow-layout golden` rewrites the file
    // after an intentional, version-bumped layout change.
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(
            concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_layout.txt"),
            &got,
        )
        .expect("write golden file");
        return;
    }
    let want = include_str!("golden_layout.txt");
    assert_eq!(
        got, want,
        "\n=== byte encodings changed; if intentional, bump the record VERSION \
         and LAYOUT_VERSION, then replace crates/layout/tests/golden_layout.txt \
         with: ===\n{got}\n=== end regenerated golden file ==="
    );
}

#[test]
fn golden_covers_every_magic_guarded_registry_entry() {
    let labels: Vec<&str> = samples().iter().map(|c| c.name).collect();
    for entry in ow_layout::REGISTRY {
        if let ow_layout::Guard::Magic(_) = entry.guard {
            // Trace structures are not Record implementors (the ring is a
            // streaming format, not a struct codec); everything else must
            // have a golden sample.
            if entry.name.starts_with("Trace") {
                continue;
            }
            assert!(
                labels.contains(&entry.name),
                "{} has no golden sample",
                entry.name
            );
        }
    }
}

#[test]
fn registry_sizes_match_golden_samples() {
    for case in samples() {
        assert_eq!(
            ow_layout::footprint(case.name),
            case.size,
            "{} registry size drifted",
            case.label
        );
        assert_eq!(
            encode_sample(&case, GOLDEN_ADDR).len() as u64,
            case.size,
            "{} encoded size drifted",
            case.label
        );
    }
    assert_eq!(ow_layout::footprint("ProcDesc"), ow_layout::ProcDesc::SIZE);
}
