//! Generic corruption property test (heavy-tests only).
//!
//! For every canonical sample and a few hundred deterministic random byte
//! flips each, the codec must uphold the crash kernel's §4 contract:
//!
//! * a flip inside the guarded prefix (the magic; for a checksummed
//!   [`ProcDesc`](ow_layout::ProcDesc), the whole covered extent) must make
//!   `read` fail — corruption there is always *detected*;
//! * any other flip either fails validation or decodes to a value whose
//!   re-encode/re-decode is a fixed point — a flipped byte may be visible
//!   in the decoded value, but it must never parse as a *different* valid
//!   value that then drifts further on the next round trip.
//!
//! Run with `cargo test -p ow-layout --features heavy-tests`.
#![cfg(feature = "heavy-tests")]

use ow_layout::samples::{samples, SAMPLE_FRAMES};
use ow_simhw::{PhysMem, SimRng};

/// Where each sample is encoded.
const ADDR: u64 = 0x8000;
/// Random flips tried per sample.
const FLIPS_PER_SAMPLE: u64 = 512;

#[test]
fn random_byte_flips_are_detected_or_reparse_stably() {
    let mut rng = SimRng::seed_from_u64(0x1a_0ff_5e7);
    for case in samples() {
        for trial in 0..FLIPS_PER_SAMPLE {
            let mut phys = PhysMem::new(SAMPLE_FRAMES);
            (case.write)(&mut phys, ADDR).expect("sample encodes");

            let mut pristine = vec![0u8; case.size as usize];
            phys.read(ADDR, &mut pristine).unwrap();

            // Flip one to three bytes somewhere in the encoded extent.
            let nflips = rng.gen_range(1..=3u32);
            for _ in 0..nflips {
                let off = rng.gen_range(0..case.size);
                let mut b = [0u8; 1];
                phys.read(ADDR + off, &mut b).unwrap();
                let x = (rng.gen_range(1..256u32)) as u8;
                phys.write(ADDR + off, &[b[0] ^ x]).unwrap();
            }

            // Two flips on one offset can cancel; what matters is the
            // lowest byte that actually changed.
            let mut now = vec![0u8; case.size as usize];
            phys.read(ADDR, &mut now).unwrap();
            let min_off = match pristine.iter().zip(&now).position(|(a, b)| a != b) {
                Some(off) => off as u64,
                None => continue, // flips cancelled out entirely
            };

            let result = (case.read_stable)(&phys, ADDR);
            if min_off < case.guarded_to {
                assert!(
                    result.is_err(),
                    "{}: flip at guarded offset {min_off} (trial {trial}) was not detected",
                    case.label
                );
            }
            // Outside the guarded prefix, either outcome is fine:
            // read_stable itself panics if a successful decode is not a
            // re-encode fixed point.
            let _ = result;
        }
    }
}

#[test]
fn truncated_extent_never_reads() {
    // A record written flush against the end of RAM so its tail is cut off
    // must fail cleanly, not read out of bounds.
    for case in samples() {
        let end = SAMPLE_FRAMES as u64 * ow_simhw::PAGE_SIZE as u64;
        let addr = end - case.size + 1;
        let mut phys = PhysMem::new(SAMPLE_FRAMES);
        assert!(
            (case.write)(&mut phys, addr).is_err(),
            "{}: truncated write must fail",
            case.label
        );
        assert!(
            (case.read_stable)(&phys, addr).is_err(),
            "{}: truncated read must fail",
            case.label
        );
    }
}
