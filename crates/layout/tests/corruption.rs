//! Generic corruption property test (heavy-tests only).
//!
//! For every canonical sample and a few hundred deterministic random byte
//! flips each, the codec must uphold the crash kernel's §4 contract:
//!
//! * a flip inside the guarded prefix (the magic; for a checksummed
//!   [`ProcDesc`](ow_layout::ProcDesc), the whole covered extent) must make
//!   `read` fail — corruption there is always *detected*;
//! * any other flip either fails validation or decodes to a value whose
//!   re-encode/re-decode is a fixed point — a flipped byte may be visible
//!   in the decoded value, but it must never parse as a *different* valid
//!   value that then drifts further on the next round trip.
//!
//! Run with `cargo test -p ow-layout --features heavy-tests`.
#![cfg(feature = "heavy-tests")]

use ow_layout::samples::{samples, SAMPLE_FRAMES};
use ow_simhw::{PhysMem, SimRng};

/// Where each sample is encoded.
const ADDR: u64 = 0x8000;
/// Random flips tried per sample.
const FLIPS_PER_SAMPLE: u64 = 512;

#[test]
fn random_byte_flips_are_detected_or_reparse_stably() {
    let mut rng = SimRng::seed_from_u64(0x1a_0ff_5e7);
    for case in samples() {
        for trial in 0..FLIPS_PER_SAMPLE {
            let mut phys = PhysMem::new(SAMPLE_FRAMES);
            (case.write)(&mut phys, ADDR).expect("sample encodes");

            let mut pristine = vec![0u8; case.size as usize];
            phys.read(ADDR, &mut pristine).unwrap();

            // Flip one to three bytes somewhere in the encoded extent.
            let nflips = rng.gen_range(1..=3u32);
            for _ in 0..nflips {
                let off = rng.gen_range(0..case.size);
                let mut b = [0u8; 1];
                phys.read(ADDR + off, &mut b).unwrap();
                let x = (rng.gen_range(1..256u32)) as u8;
                phys.write(ADDR + off, &[b[0] ^ x]).unwrap();
            }

            // Two flips on one offset can cancel; what matters is the
            // lowest byte that actually changed.
            let mut now = vec![0u8; case.size as usize];
            phys.read(ADDR, &mut now).unwrap();
            let min_off = match pristine.iter().zip(&now).position(|(a, b)| a != b) {
                Some(off) => off as u64,
                None => continue, // flips cancelled out entirely
            };

            let result = (case.read_stable)(&phys, ADDR);
            if min_off < case.guarded_to {
                assert!(
                    result.is_err(),
                    "{}: flip at guarded offset {min_off} (trial {trial}) was not detected",
                    case.label
                );
            }
            // Outside the guarded prefix, either outcome is fine:
            // read_stable itself panics if a successful decode is not a
            // re-encode fixed point.
            let _ = result;
        }
    }
}

#[test]
fn torn_checkpoint_slot_is_exposed_and_the_other_slot_survives() {
    // The A/B discipline's contract: the payload is written first and the
    // header record last, as the commit — so a seal interrupted mid-write
    // leaves a committed header over a partially-written payload, and only
    // in the slot being written. Seal two consecutive epochs into their
    // parity slots, then tear arbitrary spans of the newest slot's
    // payload: the payload CRC must expose the torn slot, while the
    // previous epoch in the other slot stays bit-perfect eligible.
    // (Header-byte flips are covered by the generic guarded-prefix test
    // above via the EpochCheckpoint sample.)
    use ow_layout::{
        ckpt_slot_addr, ckptflags, crc::crc32, EpochCheckpoint, Record, CKPT_FRAMES, CKPT_SLOTS,
    };

    let trace_base = CKPT_FRAMES + 4; // region base at frame 4
    let mut rng = SimRng::seed_from_u64(0x70a2_ab51);
    for trial in 0..256u64 {
        let mut phys = PhysMem::new(SAMPLE_FRAMES);
        // Deterministic pseudo-payloads for epochs 1 and 2.
        let seal = |epoch: u64, phys: &mut PhysMem, rng: &mut SimRng| {
            let payload: Vec<u8> = (0..512).map(|_| rng.next_u64() as u8).collect();
            let addr = ckpt_slot_addr(trace_base, (epoch % CKPT_SLOTS as u64) as u32);
            phys.write(addr + EpochCheckpoint::SIZE, &payload).unwrap();
            let rec = EpochCheckpoint {
                valid: 1,
                generation: 1,
                epoch,
                seq: 100 + epoch,
                flags: ckptflags::AT_PANIC,
                nprocs: 1,
                attempted: 0,
                payload_len: payload.len() as u64,
                payload_crc: crc32(&payload),
            };
            rec.write(phys, addr).unwrap();
            addr
        };
        let old_addr = seal(1, &mut phys, &mut rng);
        let new_addr = seal(2, &mut phys, &mut rng);

        // Tear: flip a random non-empty span of the newest slot's payload.
        let extent = EpochCheckpoint::SIZE + 512;
        let start = rng.gen_range(EpochCheckpoint::SIZE..extent - 1);
        let len = rng.gen_range(1..=(extent - start).min(64));
        let mut span = vec![0u8; len as usize];
        phys.read(new_addr + start, &mut span).unwrap();
        for b in &mut span {
            *b = !*b;
        }
        phys.write(new_addr + start, &span).unwrap();

        // The torn slot must be rejected by the header codec or the
        // payload CRC gate — it can never present as a sealed epoch with
        // a matching payload.
        let accepted = match EpochCheckpoint::read(&phys, new_addr) {
            Err(_) => false,
            Ok((c, _)) => {
                let mut payload = vec![0u8; c.payload_len.min(extent) as usize];
                phys.read(new_addr + EpochCheckpoint::SIZE, &mut payload)
                    .unwrap();
                c.valid != 0 && c.epoch == 2 && crc32(&payload) == c.payload_crc
            }
        };
        assert!(!accepted, "trial {trial}: torn slot presented as intact");

        // The other slot is untouched: epoch 1 still validates end-to-end.
        let (old, _) = EpochCheckpoint::read(&phys, old_addr).expect("old slot intact");
        assert_eq!((old.valid, old.epoch, old.seq), (1, 1, 101));
        let mut payload = vec![0u8; old.payload_len as usize];
        phys.read(old_addr + EpochCheckpoint::SIZE, &mut payload)
            .unwrap();
        assert_eq!(crc32(&payload), old.payload_crc, "old payload damaged");
    }
}

#[test]
fn truncated_extent_never_reads() {
    // A record written flush against the end of RAM so its tail is cut off
    // must fail cleanly, not read out of bounds.
    for case in samples() {
        let end = SAMPLE_FRAMES as u64 * ow_simhw::PAGE_SIZE as u64;
        let addr = end - case.size + 1;
        let mut phys = PhysMem::new(SAMPLE_FRAMES);
        assert!(
            (case.write)(&mut phys, addr).is_err(),
            "{}: truncated write must fail",
            case.label
        );
        assert!(
            (case.read_stable)(&phys, addr).is_err(),
            "{}: truncated read must fail",
            case.label
        );
    }
}
