//! Round-trip and corruption-detection tests for every record, migrated
//! from the kernel's original hand-rolled layout module.

use ow_layout::{
    oflags, pstate, resmask, vmaflags, FileRecord, HandoffBlock, KernelHeader, LayoutError,
    PageCacheNode, ProcDesc, Record, ShmDesc, SigTable, SwapDesc, TermDesc, VmaDesc, HANDOFF_ADDR,
    IDT_MAGIC, LAYOUT_VERSION, NSIG, PATH_LEN, SAVE_AREA_ADDR,
};
use ow_simhw::PhysMem;

fn phys() -> PhysMem {
    PhysMem::new(64)
}

#[test]
fn handoff_round_trip() {
    let mut p = phys();
    let b = HandoffBlock {
        layout_version: LAYOUT_VERSION,
        active_kernel_frame: 4,
        crash_base: 32,
        crash_frames: 16,
        crash_entry_ok: 1,
        idt_stamp: IDT_MAGIC,
        save_area: SAVE_AREA_ADDR,
        generation: 3,
        trace_base: 48,
        trace_frames: 8,
    };
    b.write(&mut p).unwrap();
    let (got, n) = HandoffBlock::read(&p).unwrap();
    assert_eq!(got, b);
    assert_eq!(n, HandoffBlock::SIZE);
}

#[test]
fn corrupted_handoff_detected() {
    let mut p = phys();
    HandoffBlock {
        layout_version: LAYOUT_VERSION,
        active_kernel_frame: 4,
        crash_base: 32,
        crash_frames: 16,
        crash_entry_ok: 1,
        idt_stamp: IDT_MAGIC,
        save_area: SAVE_AREA_ADDR,
        generation: 0,
        trace_base: 0,
        trace_frames: 0,
    }
    .write(&mut p)
    .unwrap();
    p.corrupt_u64(HANDOFF_ADDR, 0xdead);
    assert!(matches!(
        HandoffBlock::read(&p),
        Err(LayoutError::BadMagic {
            expected: "HandoffBlock",
            ..
        })
    ));
}

fn sample_proc() -> ProcDesc {
    ProcDesc {
        pid: 42,
        state: pstate::RUNNABLE,
        name: "mysqld".into(),
        crash_proc: 1,
        page_root: 9,
        mm_head: 0x3000,
        files: 0x3100,
        sig: 0x3200,
        term_id: u32::MAX,
        shm_head: 0,
        sock_head: 0x3300,
        res_in_use: resmask::SOCKETS,
        in_syscall: 3,
        saved_pc: 17,
        saved_sp: 0xff00,
        saved_regs: [1, 2, 3, 4, 5, 6, 7, 8],
        checksum: 0,
        next: 0,
    }
}

#[test]
fn proc_desc_round_trip() {
    let mut p = phys();
    let d = sample_proc();
    d.write(&mut p, 0x1000).unwrap();
    let (got, n) = ProcDesc::read(&p, 0x1000).unwrap();
    assert_eq!(got, d);
    assert_eq!(n, ProcDesc::SIZE);
}

#[test]
fn proc_desc_rejects_wild_state() {
    let mut p = phys();
    let mut d = ProcDesc {
        name: "vi".into(),
        crash_proc: 0,
        page_root: 1,
        ..sample_proc()
    };
    d.write(&mut p, 0x1000).unwrap();
    // Corrupt the state field (offset 4).
    p.write_u32(0x1004, 999).unwrap();
    assert!(matches!(
        ProcDesc::read(&p, 0x1000),
        Err(LayoutError::BadValue { field: "state", .. })
    ));
    // And an out-of-RAM page root.
    d.state = pstate::RUNNABLE;
    d.page_root = 1 << 40;
    d.write(&mut p, 0x1000).unwrap();
    assert!(ProcDesc::read(&p, 0x1000).is_err());
}

#[test]
fn proc_desc_checksum_detects_covered_corruption() {
    let mut p = phys();
    let mut d = sample_proc();
    d.checksum = d.compute_checksum();
    d.write(&mut p, 0x1000).unwrap();
    assert!(ProcDesc::read(&p, 0x1000).is_ok());
    // Flip a bit in a field the shallow plausibility checks cannot see.
    p.corrupt_u64(0x1000 + ow_layout::proc_off::SAVED_SP, 1 << 7);
    assert!(matches!(
        ProcDesc::read(&p, 0x1000),
        Err(LayoutError::BadValue {
            field: "checksum",
            ..
        })
    ));
}

#[test]
fn vma_round_trip_and_validation() {
    let mut p = phys();
    let v = VmaDesc {
        start: 0x1000,
        end: 0x4000,
        flags: vmaflags::READ | vmaflags::WRITE,
        file: 0,
        file_off: 0,
        next: 0x8888,
    };
    v.write(&mut p, 0x2000).unwrap();
    let (got, _) = VmaDesc::read(&p, 0x2000).unwrap();
    assert_eq!(got, v);

    let bad = VmaDesc {
        start: 0x4000,
        end: 0x1000,
        ..v
    };
    bad.write(&mut p, 0x2100).unwrap();
    assert!(VmaDesc::read(&p, 0x2100).is_err());
}

#[test]
fn file_record_round_trip() {
    let mut p = phys();
    let f = FileRecord {
        flags: oflags::READ | oflags::WRITE,
        refcnt: 1,
        offset: 12345,
        fsize: 20000,
        inode: 7,
        path: "/data/table.db".into(),
        cache_head: 0x9000,
    };
    f.write(&mut p, 0x5000).unwrap();
    let (got, n) = FileRecord::read(&p, 0x5000).unwrap();
    assert_eq!(got, f);
    assert_eq!(n, FileRecord::SIZE);
}

#[test]
fn empty_path_fails_read_validation() {
    let mut p = phys();
    // Write a record with an empty path manually.
    let f = FileRecord {
        flags: 0,
        refcnt: 1,
        offset: 0,
        fsize: 0,
        inode: 0,
        path: "x".into(),
        cache_head: 0,
    };
    f.write(&mut p, 0x5000).unwrap();
    // Zero the path bytes.
    let path_off = 0x5000 + 4 + 4 + 4 + 4 + 8 + 8 + 8;
    p.write(path_off, &[0u8; PATH_LEN]).unwrap();
    assert!(matches!(
        FileRecord::read(&p, 0x5000),
        Err(LayoutError::BadValue { field: "path", .. })
    ));
}

#[test]
fn swap_terminal_sig_shm_round_trips() {
    let mut p = phys();
    let s = SwapDesc {
        dev_name: "swap-main".into(),
        dev_id: 1,
        nslots: 1024,
        bitmap: 0x7000,
    };
    s.write(&mut p, 0x6000).unwrap();
    assert_eq!(SwapDesc::read(&p, 0x6000).unwrap().0, s);

    let t = TermDesc {
        id: 0,
        cursor: 81,
        settings: 0b11,
        screen_pfn: 5,
    };
    t.write(&mut p, 0x6100).unwrap();
    assert_eq!(TermDesc::read(&p, 0x6100).unwrap().0, t);

    let mut sig = SigTable {
        handlers: [0; NSIG],
    };
    sig.handlers[2] = 0xbeef;
    sig.write(&mut p, 0x6200).unwrap();
    assert_eq!(SigTable::read(&p, 0x6200).unwrap().0, sig);

    let shm = ShmDesc {
        key: 0x5e55,
        size: 8192,
        attach_vaddr: 0x10_0000,
        npages: 2,
        pages: vec![11, 12],
        next: 0,
    };
    shm.write(&mut p, 0x6400).unwrap();
    assert_eq!(ShmDesc::read(&p, 0x6400).unwrap().0, shm);
}

#[test]
fn shm_rejects_oversized_page_count_without_reading_past_extent() {
    let mut p = phys();
    let shm = ShmDesc {
        key: 1,
        size: 4096,
        attach_vaddr: 0,
        npages: 1,
        pages: vec![3],
        next: 0,
    };
    shm.write(&mut p, 0x6400).unwrap();
    // Corrupt the count to something absurd: validation must reject it and
    // the footprint must not change.
    p.write_u32(0x6400 + 4, 10_000).unwrap();
    assert!(matches!(
        ShmDesc::read(&p, 0x6400),
        Err(LayoutError::BadValue {
            field: "npages",
            ..
        })
    ));
}

#[test]
fn page_cache_node_round_trip_and_validation() {
    let mut p = phys();
    let n = PageCacheNode {
        file_off: 8192,
        pfn: 3,
        dirty: 1,
        next: 0,
    };
    n.write(&mut p, 0x6800).unwrap();
    assert_eq!(PageCacheNode::read(&p, 0x6800).unwrap().0, n);

    let bad = PageCacheNode {
        file_off: 100,
        pfn: 3,
        dirty: 0,
        next: 0,
    };
    bad.write(&mut p, 0x6900).unwrap();
    assert!(PageCacheNode::read(&p, 0x6900).is_err());
}

#[test]
fn kernel_header_round_trip() {
    let mut p = phys();
    let h = KernelHeader {
        version: 1,
        base_frame: 4,
        nframes: 16,
        proc_head: 0x5000,
        nprocs: 3,
        swap_array: 0x5800,
        nswap: 2,
        is_crash: 0,
        term_table: 0x5900,
        nterms: 2,
        pipe_table: 0x5a00,
        npipes: 1,
    };
    h.write(&mut p, 4 * 4096).unwrap();
    let (got, _) = KernelHeader::read(&p, 4 * 4096).unwrap();
    assert_eq!(got, h);
}

#[test]
fn kernel_header_rejects_implausible_counts() {
    let mut p = phys();
    let h = KernelHeader {
        version: 1,
        base_frame: 4,
        nframes: 16,
        proc_head: 0,
        nprocs: 100_000,
        swap_array: 0,
        nswap: 0,
        is_crash: 0,
        term_table: 0,
        nterms: 0,
        pipe_table: 0,
        npipes: 0,
    };
    h.write(&mut p, 4 * 4096).unwrap();
    assert!(KernelHeader::read(&p, 4 * 4096).is_err());
}
