//! CRC-32 (IEEE 802.3 polynomial), the shared integrity guard.
//!
//! One implementation serves every CRC-framed structure in the system: the
//! flight-recorder record slots and the §4 descriptor checksums. A wild
//! write that lands in guarded memory flips bits in at most a few records;
//! the CRC lets recovery tell exactly which ones. The table is built at
//! compile time so there is no runtime init to corrupt.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(data);
    h.finish()
}

/// A streaming CRC-32 hasher, for checksums over discontiguous extents
/// (the warm seal's page-cache CRC covers every node's bytes across many
/// kheap allocations — no single range to hand to [`crc32_range`]).
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh hasher.
    pub fn new() -> Crc32 {
        Crc32 { state: 0xffff_ffff }
    }

    /// Feeds host bytes.
    pub fn update(&mut self, data: &[u8]) {
        for &b in data {
            // ow-lint: allow(recovery-panic) -- 256-entry table indexed by a masked byte
            self.state = TABLE[((self.state ^ b as u32) & 0xff) as usize] ^ (self.state >> 8);
        }
    }

    /// Feeds `len` bytes of simulated physical memory at `addr`, in
    /// bounded chunks.
    pub fn update_range(
        &mut self,
        phys: &ow_simhw::PhysMem,
        addr: ow_simhw::PhysAddr,
        len: u64,
    ) -> Result<(), ow_simhw::MemError> {
        let mut buf = [0u8; 256];
        let mut off = 0u64;
        while off < len {
            let n = (len - off).min(buf.len() as u64) as usize;
            // ow-lint: allow(recovery-panic) -- n is min-clamped to buf.len()
            phys.read(addr + off, &mut buf[..n])?;
            // ow-lint: allow(recovery-panic) -- n is min-clamped to buf.len()
            self.update(&buf[..n]);
            off += n as u64;
        }
        Ok(())
    }

    /// The finished checksum.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xffff_ffff
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// CRC-32 of `len` bytes of simulated physical memory starting at `addr`,
/// computed in bounded chunks (no `len`-sized host allocation).
///
/// This is the warm morph's validation primitive: the crash kernel checks
/// a dead structure's sealed CRC against the actual dead bytes before
/// adopting it. Living here keeps the raw reads inside the validated
/// cursor layer.
pub fn crc32_range(
    phys: &ow_simhw::PhysMem,
    addr: ow_simhw::PhysAddr,
    len: u64,
) -> Result<u32, ow_simhw::MemError> {
    let mut h = Crc32::new();
    h.update_range(phys, addr, len)?;
    Ok(h.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_range_matches_crc32() {
        let mut phys = ow_simhw::PhysMem::new(2);
        let data: Vec<u8> = (0..600u32).map(|i| (i * 7) as u8).collect();
        phys.write(100, &data).unwrap();
        assert_eq!(crc32_range(&phys, 100, 600).unwrap(), crc32(&data));
        assert_eq!(crc32_range(&phys, 100, 0).unwrap(), crc32(&[]));
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..300u32).map(|i| (i * 13) as u8).collect();
        let mut h = Crc32::new();
        h.update(&data[..7]);
        h.update(&data[7..200]);
        h.update(&data[200..]);
        assert_eq!(h.finish(), crc32(&data));

        // Discontiguous extents through simulated memory.
        let mut phys = ow_simhw::PhysMem::new(2);
        phys.write(64, &data[..100]).unwrap();
        phys.write(4096, &data[100..]).unwrap();
        let mut h = Crc32::new();
        h.update_range(&phys, 64, 100).unwrap();
        h.update_range(&phys, 4096, 200).unwrap();
        assert_eq!(h.finish(), crc32(&data));
    }

    #[test]
    fn known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = *b"otherworld trace record";
        let clean = crc32(&data);
        data[5] ^= 0x10;
        assert_ne!(clean, crc32(&data));
    }
}
