//! CRC-32 (IEEE 802.3 polynomial), the shared integrity guard.
//!
//! One implementation serves every CRC-framed structure in the system: the
//! flight-recorder record slots and the §4 descriptor checksums. A wild
//! write that lands in guarded memory flips bits in at most a few records;
//! the CRC lets recovery tell exactly which ones. The table is built at
//! compile time so there is no runtime init to corrupt.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in data {
        // ow-lint: allow(recovery-panic) -- 256-entry table indexed by a masked byte
        c = TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = *b"otherworld trace record";
        let clean = crc32(&data);
        data[5] ^= 0x10;
        assert_ne!(clean, crc32(&data));
    }
}
