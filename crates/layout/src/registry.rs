//! The layout registry: every resurrection-relevant structure, with its
//! stable magic (or CRC framing), encoded size and layout version.
//!
//! The registry is the single source of truth other crates derive from:
//! the fault injector sizes and classifies wild-write victims with it, the
//! Table 4 byte accounting cross-checks against it, and the golden-encoding
//! test freezes every entry's byte layout.

use crate::record::Record;
use crate::records::{
    CrashImageHeader, EpochCheckpoint, FileRecord, FileTable, HandoffBlock, KernelHeader,
    PageCacheNode, PipeDesc, ProcDesc, ShmDesc, SigTable, SockDesc, SwapDesc, TermDesc, VmaDesc,
    WarmSeal,
};
use crate::trace::{hdr_off, RECORD_SIZE, TRACE_MAGIC};
use ow_simhw::{PhysAddr, PhysMem};

/// The layout generation of this build: the maximum [`Record::VERSION`]
/// over every registered structure. Stamped into the
/// [`HandoffBlock`](crate::records::HandoffBlock) at boot; a crash kernel
/// that finds a different generation refuses the handoff instead of
/// misparsing the dead kernel's structures.
pub const LAYOUT_VERSION: u32 = 2;

/// How a registered structure is guarded against corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Guard {
    /// A 4-byte magic prefix, validated on every read.
    Magic(u32),
    /// CRC-32 framing over the whole record (no magic; used by the trace
    /// ring's record slots).
    Crc32,
}

/// One registry entry: a structure the crash kernel must be able to parse
/// out of raw memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayoutEntry {
    /// Structure name (matches [`Record::NAME`]).
    pub name: &'static str,
    /// Corruption guard.
    pub guard: Guard,
    /// Encoded size in bytes.
    pub size: u64,
    /// Layout version of this structure's encoding.
    pub version: u32,
}

macro_rules! reg {
    ($t:ty) => {
        LayoutEntry {
            name: <$t as Record>::NAME,
            guard: Guard::Magic(<$t as Record>::MAGIC),
            size: <$t as Record>::SIZE,
            version: <$t as Record>::VERSION,
        }
    };
}

/// Every resurrection-relevant structure, in handoff-walk order.
pub static REGISTRY: &[LayoutEntry] = &[
    reg!(HandoffBlock),
    reg!(CrashImageHeader),
    reg!(KernelHeader),
    reg!(ProcDesc),
    reg!(VmaDesc),
    reg!(SigTable),
    reg!(FileTable),
    reg!(FileRecord),
    reg!(PageCacheNode),
    reg!(SwapDesc),
    reg!(TermDesc),
    reg!(ShmDesc),
    reg!(PipeDesc),
    reg!(SockDesc),
    reg!(WarmSeal),
    reg!(EpochCheckpoint),
    LayoutEntry {
        name: "TraceHeader",
        guard: Guard::Magic(TRACE_MAGIC),
        size: hdr_off::END,
        version: 1,
    },
    LayoutEntry {
        name: "TraceSlot",
        guard: Guard::Crc32,
        size: RECORD_SIZE,
        version: 1,
    },
];

/// Looks up a registered structure by name.
pub fn lookup(name: &str) -> Option<&'static LayoutEntry> {
    REGISTRY.iter().find(|e| e.name == name)
}

/// The encoded size of a registered structure; panics on an unknown name
/// so a typo cannot silently degrade a caller to a zero footprint.
pub fn footprint(name: &str) -> u64 {
    lookup(name)
        .unwrap_or_else(|| panic!("{name} is not in the layout registry"))
        .size
}

/// The largest registered footprint (bounds backwards victim scans).
pub fn max_footprint() -> u64 {
    REGISTRY.iter().map(|e| e.size).max().unwrap_or(0)
}

/// Classifies the structure a physical address lands in, by scanning for a
/// registered magic within [`max_footprint`] bytes below `addr` and
/// checking that `addr` falls inside that structure's extent.
///
/// Purely a memory read — no RNG, no side effects — so the fault
/// injector's campaign outcomes stay deterministic for a given seed.
/// CRC-framed entries (no magic) are not classifiable this way and are
/// never returned.
pub fn classify_victim(phys: &PhysMem, addr: PhysAddr) -> Option<&'static LayoutEntry> {
    let lowest = addr.saturating_sub(max_footprint().saturating_sub(1));
    // Scan from the hit address downwards: the nearest magic at or below
    // the hit whose extent covers it wins, mirroring how the crash kernel
    // would encounter the (now corrupted) structure.
    let mut start = addr;
    loop {
        if let Ok(word) = phys.read_u32(start) {
            for e in REGISTRY {
                if let Guard::Magic(m) = e.guard {
                    if word == m && addr < start + e.size {
                        return Some(e);
                    }
                }
            }
        }
        if start == lowest {
            return None;
        }
        start -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::HANDOFF_ADDR;

    #[test]
    fn registry_names_are_unique() {
        for (i, a) in REGISTRY.iter().enumerate() {
            for b in &REGISTRY[i + 1..] {
                assert_ne!(a.name, b.name);
            }
        }
    }

    #[test]
    fn magics_are_unique() {
        let magics: Vec<u32> = REGISTRY
            .iter()
            .filter_map(|e| match e.guard {
                Guard::Magic(m) => Some(m),
                Guard::Crc32 => None,
            })
            .collect();
        for (i, a) in magics.iter().enumerate() {
            for b in &magics[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn layout_version_is_max_record_version() {
        assert_eq!(
            REGISTRY.iter().map(|e| e.version).max().unwrap(),
            LAYOUT_VERSION
        );
    }

    #[test]
    fn classify_victim_finds_interior_hits() {
        let mut p = PhysMem::new(16);
        let b = HandoffBlock {
            layout_version: LAYOUT_VERSION,
            active_kernel_frame: 4,
            crash_base: 0,
            crash_frames: 0,
            crash_entry_ok: 0,
            idt_stamp: 0,
            save_area: 4096,
            generation: 0,
            trace_base: 0,
            trace_frames: 0,
        };
        b.write(&mut p).unwrap();
        let hit = classify_victim(&p, HANDOFF_ADDR + 9).expect("classified");
        assert_eq!(hit.name, "HandoffBlock");
        // One byte past the block's extent no longer classifies as it.
        assert!(classify_victim(&p, HANDOFF_ADDR + HandoffBlock::SIZE)
            .map(|e| e.name != "HandoffBlock")
            .unwrap_or(true));
    }

    #[test]
    fn footprint_matches_record_sizes() {
        assert_eq!(footprint("ProcDesc"), ProcDesc::SIZE);
        assert_eq!(footprint("TraceSlot"), RECORD_SIZE);
    }
}
