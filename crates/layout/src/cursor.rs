//! Checked little-endian cursors over simulated physical memory, plus the
//! error type every validated parse reports through.
//!
//! Every structure starts with a 4-byte magic. All integers are
//! little-endian. Strings are fixed-size, zero-padded byte arrays.

use ow_simhw::{MemError, PhysAddr, PhysMem};
use std::fmt;

/// Errors raised when parsing structures out of (possibly corrupted) memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// The magic number did not match: the structure was corrupted or the
    /// pointer was garbage.
    BadMagic {
        /// Which structure was expected.
        expected: &'static str,
        /// Address that was read.
        addr: PhysAddr,
    },
    /// A field failed a sanity bound (e.g. an fd count larger than the
    /// table, a pointer past the end of RAM).
    BadValue {
        /// Which structure.
        structure: &'static str,
        /// Which field failed.
        field: &'static str,
        /// Address of the structure.
        addr: PhysAddr,
    },
    /// The underlying physical read failed (pointer outside RAM).
    Mem(MemError),
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::BadMagic { expected, addr } => {
                write!(f, "bad magic for {expected} at {addr:#x}")
            }
            LayoutError::BadValue {
                structure,
                field,
                addr,
            } => {
                write!(f, "implausible {structure}.{field} at {addr:#x}")
            }
            LayoutError::Mem(e) => write!(f, "memory error: {e}"),
        }
    }
}

impl std::error::Error for LayoutError {}

impl From<MemError> for LayoutError {
    fn from(e: MemError) -> Self {
        LayoutError::Mem(e)
    }
}

/// Sequential reader over physical memory.
pub struct Cursor<'a> {
    phys: &'a PhysMem,
    addr: PhysAddr,
    /// Bytes consumed (the crash kernel accounts every byte it reads from
    /// the dead kernel — Table 4).
    pub consumed: u64,
}

impl<'a> Cursor<'a> {
    /// Starts reading at `addr`.
    pub fn new(phys: &'a PhysMem, addr: PhysAddr) -> Self {
        Cursor {
            phys,
            addr,
            consumed: 0,
        }
    }

    /// Current address.
    pub fn addr(&self) -> PhysAddr {
        self.addr
    }

    /// The memory being read.
    pub fn phys(&self) -> &PhysMem {
        self.phys
    }

    /// Reads a `u32` and advances.
    pub fn u32(&mut self) -> Result<u32, LayoutError> {
        let v = self.phys.read_u32(self.addr)?;
        self.addr += 4;
        self.consumed += 4;
        Ok(v)
    }

    /// Reads a `u64` and advances.
    pub fn u64(&mut self) -> Result<u64, LayoutError> {
        let v = self.phys.read_u64(self.addr)?;
        self.addr += 8;
        self.consumed += 8;
        Ok(v)
    }

    /// Reads `N` bytes and advances.
    pub fn bytes<const N: usize>(&mut self) -> Result<[u8; N], LayoutError> {
        let mut buf = [0u8; N];
        self.phys.read(self.addr, &mut buf)?;
        self.addr += N as u64;
        self.consumed += N as u64;
        Ok(buf)
    }
}

/// Sequential writer over physical memory.
pub struct CursorMut<'a> {
    phys: &'a mut PhysMem,
    addr: PhysAddr,
}

impl<'a> CursorMut<'a> {
    /// Starts writing at `addr`.
    pub fn new(phys: &'a mut PhysMem, addr: PhysAddr) -> Self {
        CursorMut { phys, addr }
    }

    /// Current address.
    pub fn addr(&self) -> PhysAddr {
        self.addr
    }

    /// Writes a `u32` and advances.
    pub fn u32(&mut self, v: u32) -> Result<(), LayoutError> {
        self.phys.write_u32(self.addr, v)?;
        self.addr += 4;
        Ok(())
    }

    /// Writes a `u64` and advances.
    pub fn u64(&mut self, v: u64) -> Result<(), LayoutError> {
        self.phys.write_u64(self.addr, v)?;
        self.addr += 8;
        Ok(())
    }

    /// Writes a fixed byte array and advances.
    pub fn bytes(&mut self, buf: &[u8]) -> Result<(), LayoutError> {
        self.phys.write(self.addr, buf)?;
        self.addr += buf.len() as u64;
        Ok(())
    }
}

/// Encodes a string into a fixed, zero-padded array (truncating).
pub fn pack_str<const N: usize>(s: &str) -> [u8; N] {
    let mut buf = [0u8; N];
    let b = s.as_bytes();
    let n = b.len().min(N - 1);
    buf[..n].copy_from_slice(&b[..n]);
    buf
}

/// Decodes a zero-padded array back into a string (lossy).
pub fn unpack_str(buf: &[u8]) -> String {
    let end = buf.iter().position(|&b| b == 0).unwrap_or(buf.len());
    String::from_utf8_lossy(&buf[..end]).into_owned()
}

/// The one magic-number gate every validated read goes through: reads a
/// `u32` and fails with [`LayoutError::BadMagic`] unless it matches.
pub fn check_magic(
    cur: &mut Cursor<'_>,
    expected: u32,
    name: &'static str,
) -> Result<(), LayoutError> {
    let addr = cur.addr();
    if cur.u32()? != expected {
        return Err(LayoutError::BadMagic {
            expected: name,
            addr,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_str() {
        let a = pack_str::<8>("hello");
        assert_eq!(unpack_str(&a), "hello");
        let b = pack_str::<4>("toolong");
        assert_eq!(unpack_str(&b), "too");
    }

    #[test]
    fn cursor_accounts_consumed_bytes() {
        let mut p = PhysMem::new(1);
        let mut w = CursorMut::new(&mut p, 0);
        w.u32(7).unwrap();
        w.u64(9).unwrap();
        w.bytes(&[1, 2, 3, 4]).unwrap();
        let mut c = Cursor::new(&p, 0);
        assert_eq!(c.u32().unwrap(), 7);
        assert_eq!(c.u64().unwrap(), 9);
        assert_eq!(c.bytes::<4>().unwrap(), [1, 2, 3, 4]);
        assert_eq!(c.consumed, 16);
    }
}
