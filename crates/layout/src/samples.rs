//! Canonical sample values for every registered record — the shared
//! harness behind the golden-encoding test (which freezes each record's
//! exact byte encoding) and the corruption property test (which flips
//! bytes and demands detection or a stable re-parse).
//!
//! Samples are deterministic and chosen to pass validation inside a
//! [`SAMPLE_FRAMES`]-frame memory.

use crate::cursor::LayoutError;
use crate::record::Record;
use crate::records::{
    ckptflags, pstate, resmask, vmaflags, CrashImageHeader, EpochCheckpoint, FileRecord, FileTable,
    HandoffBlock, KernelHeader, PageCacheNode, PipeDesc, ProcDesc, ShmDesc, SigTable, SockDesc,
    SwapDesc, TermDesc, VmaDesc, WarmSeal, IDT_MAGIC, NSIG, SAVE_AREA_ADDR,
};
use crate::registry::LAYOUT_VERSION;
use ow_simhw::{PhysAddr, PhysMem};

/// Frames in the scratch memories the sample harness uses.
pub const SAMPLE_FRAMES: usize = 64;

/// One sample: a canonical value of a registered record plus type-erased
/// hooks to encode it, decode it, and check a decoded value re-encodes
/// stably.
pub struct SampleCase {
    /// Display label (the record name, plus a variant tag where one record
    /// has several interesting configurations).
    pub label: &'static str,
    /// Registry name of the underlying record.
    pub name: &'static str,
    /// Encoded size in bytes.
    pub size: u64,
    /// Layout version of the encoding.
    pub version: u32,
    /// 4-byte magic prefix.
    pub magic: u32,
    /// Flips at byte offsets below this bound must make `read` fail (the
    /// magic for every record; the whole checksummed extent for a
    /// [`ProcDesc`] carrying its §4 checksum).
    pub guarded_to: u64,
    /// Writes the canonical value at `addr`.
    #[allow(clippy::type_complexity)]
    pub write: Box<dyn Fn(&mut PhysMem, PhysAddr) -> Result<(), LayoutError>>,
    /// Reads at `addr`; on success, re-encodes the decoded value into a
    /// fresh memory, decodes that, and errors (via panic) unless the
    /// second decode equals the first and consumed exactly `size` bytes.
    #[allow(clippy::type_complexity)]
    pub read_stable: Box<dyn Fn(&PhysMem, PhysAddr) -> Result<(), LayoutError>>,
}

fn case<R>(label: &'static str, guarded_to: u64, value: R) -> SampleCase
where
    R: Record + Clone + PartialEq + std::fmt::Debug + 'static,
{
    let write_value = value.clone();
    SampleCase {
        label,
        name: R::NAME,
        size: R::SIZE,
        version: R::VERSION,
        magic: R::MAGIC,
        guarded_to,
        write: Box::new(move |phys, addr| Record::write(&write_value, phys, addr)),
        read_stable: Box::new(move |phys, addr| {
            let (decoded, consumed) = R::read(phys, addr)?;
            assert_eq!(consumed, R::SIZE, "{} consumed a wrong byte count", R::NAME);
            let mut scratch = PhysMem::new(SAMPLE_FRAMES);
            Record::write(&decoded, &mut scratch, addr)
                .unwrap_or_else(|e| panic!("{}: re-encode failed: {e}", R::NAME));
            let (again, _) = R::read(&scratch, addr)
                .unwrap_or_else(|e| panic!("{}: re-decode failed: {e}", R::NAME));
            assert_eq!(again, decoded, "{} re-encode is not a fixed point", R::NAME);
            Ok(())
        }),
    }
}

/// The canonical sample set, one (or two, for checksummed records) per
/// registered [`Record`] implementor, in registry order.
pub fn samples() -> Vec<SampleCase> {
    let proc_desc = ProcDesc {
        pid: 42,
        state: pstate::RUNNABLE,
        name: "mysqld".into(),
        crash_proc: 1,
        page_root: 9,
        mm_head: 0x3000,
        files: 0x3100,
        sig: 0x3200,
        term_id: u32::MAX,
        shm_head: 0,
        sock_head: 0x3300,
        res_in_use: resmask::SOCKETS,
        in_syscall: 3,
        saved_pc: 17,
        saved_sp: 0xff00,
        saved_regs: [1, 2, 3, 4, 5, 6, 7, 8],
        checksum: 0,
        next: 0x3400,
    };
    let mut sealed = proc_desc.clone();
    sealed.checksum = sealed.compute_checksum();

    let mut sig = SigTable {
        handlers: [0; NSIG],
    };
    sig.handlers[2] = 0xbeef;
    let mut ftab = FileTable {
        fds: [0; crate::records::MAX_FDS],
    };
    ftab.fds[0] = 0x5000;
    ftab.fds[3] = 0x5100;

    vec![
        case(
            "HandoffBlock",
            4,
            HandoffBlock {
                layout_version: LAYOUT_VERSION,
                active_kernel_frame: 4,
                crash_base: 32,
                crash_frames: 16,
                crash_entry_ok: 1,
                idt_stamp: IDT_MAGIC,
                save_area: SAVE_AREA_ADDR,
                generation: 3,
                trace_base: 48,
                trace_frames: 8,
            },
        ),
        case(
            "CrashImageHeader",
            4,
            CrashImageHeader {
                version: 1,
                entry_valid: 1,
            },
        ),
        case(
            "KernelHeader",
            4,
            KernelHeader {
                version: 1,
                base_frame: 4,
                nframes: 16,
                proc_head: 0x5000,
                nprocs: 3,
                swap_array: 0x5800,
                nswap: 2,
                is_crash: 0,
                term_table: 0x5900,
                nterms: 2,
                pipe_table: 0x5a00,
                npipes: 1,
            },
        ),
        case("ProcDesc", 4, proc_desc),
        // With the §4 checksum sealed, every covered byte is guarded: a
        // flip anywhere before `next` must be detected.
        case(
            "ProcDesc(checksummed)",
            crate::records::proc_off::NEXT,
            sealed,
        ),
        case(
            "VmaDesc",
            4,
            VmaDesc {
                start: 0x1000,
                end: 0x4000,
                flags: vmaflags::READ | vmaflags::WRITE,
                file: 0x5000,
                file_off: 8192,
                next: 0x8888,
            },
        ),
        case("SigTable", 4, sig),
        case("FileTable", 4, ftab),
        case(
            "FileRecord",
            4,
            FileRecord {
                flags: crate::records::oflags::READ | crate::records::oflags::WRITE,
                refcnt: 1,
                offset: 12345,
                fsize: 20000,
                inode: 7,
                path: "/data/table.db".into(),
                cache_head: 0x9000,
            },
        ),
        case(
            "PageCacheNode",
            4,
            PageCacheNode {
                file_off: 8192,
                pfn: 3,
                dirty: 1,
                next: 0xa000,
            },
        ),
        case(
            "SwapDesc",
            4,
            SwapDesc {
                dev_name: "swap-main".into(),
                dev_id: 1,
                nslots: 1024,
                bitmap: 0x7000,
            },
        ),
        case(
            "TermDesc",
            4,
            TermDesc {
                id: 0,
                cursor: 81,
                settings: 0b11,
                screen_pfn: 5,
            },
        ),
        case(
            "ShmDesc",
            4,
            ShmDesc {
                key: 0x5e55,
                size: 8192,
                attach_vaddr: 0x10_0000,
                npages: 2,
                pages: vec![11, 12],
                next: 0xb000,
            },
        ),
        case(
            "PipeDesc",
            4,
            PipeDesc {
                locked: 0,
                rd: 5,
                wr: 9,
                buf_pfn: 6,
            },
        ),
        case(
            "WarmSeal",
            4,
            WarmSeal {
                valid: 1,
                generation: 2,
                falloc_base: 4,
                falloc_capacity: 60,
                falloc_bitmap: 0x3e000,
                falloc_crc: 0xdead_beef,
                swap_index: 1,
                swap_nslots: 512,
                swap_crc: 0x1234_5678,
                swap_bitmap: 0x7100,
                cache_nodes: 9,
                cache_crc: 0x0bad_cafe,
            },
        ),
        case(
            "EpochCheckpoint",
            4,
            EpochCheckpoint {
                valid: 1,
                generation: 2,
                epoch: 7,
                seq: 420,
                flags: ckptflags::AT_PANIC,
                nprocs: 2,
                attempted: 0,
                payload_len: 1234,
                payload_crc: 0x0ddb_a115,
            },
        ),
        case(
            "SockDesc",
            4,
            SockDesc {
                proto: crate::records::sockproto::TCP,
                state: 1,
                sid: 2,
                local_port: 8080,
                seq: 777,
                outbuf_pfn: 7,
                outbuf_len: 120,
                next: 0xc000,
            },
        ),
    ]
}

/// Encodes a sample into a fresh memory and returns its raw bytes.
pub fn encode_sample(case: &SampleCase, addr: PhysAddr) -> Vec<u8> {
    let mut phys = PhysMem::new(SAMPLE_FRAMES);
    (case.write)(&mut phys, addr).expect("sample encodes");
    let mut buf = vec![0u8; case.size as usize];
    phys.read(addr, &mut buf).expect("sample bytes readable");
    buf
}
