//! Binary layout of the flight-recorder trace region.
//!
//! The region occupies `trace_frames` frames at the very top of simulated
//! RAM — above even the crash-kernel reservation — so it survives both the
//! panic and the subsequent kernel morph (the crash image relocates every
//! generation; the flight recorder must not). Frame 0 of the region holds
//! the header plus the metrics registry; the remaining frames hold the
//! record slots.
//!
//! ```text
//! frame 0:  magic | capacity | write_seq | dropped | generation
//!           counters[TRACE_NUM_COUNTERS] | histograms[TRACE_NUM_HISTOGRAMS][64]
//! frame 1+: record slots, RECORD_SIZE bytes each, written round-robin
//! ```
//!
//! Every field is little-endian, matching `ow_simhw::PhysMem`. Record
//! slots are framed by the shared [`crc32`] rather than a magic: the
//! writer seals each slot with [`seal_slot`] and recovery re-checks it
//! with [`slot_crc_ok`].

use crate::crc::crc32;

/// `"OWTR"` — the region header magic.
pub const TRACE_MAGIC: u32 = 0x4f57_5452;

/// Monotonic counters in the header frame.
pub const TRACE_NUM_COUNTERS: usize = 9;

/// Histograms in the header frame (64 log₂ buckets each).
pub const TRACE_NUM_HISTOGRAMS: usize = 2;

/// Buckets per histogram.
pub const TRACE_HIST_BUCKETS: usize = 64;

/// Bytes per record slot.
///
/// seq(8) + cycles(8) + kind(4) + pid(8) + arg0(8) + arg1(8) + crc(4).
pub const RECORD_SIZE: u64 = 48;

/// Byte offsets inside one record slot.
pub mod rec_off {
    /// Monotonic sequence number (`write_seq` at emit time).
    pub const SEQ: u64 = 0;
    /// Simulated cycle timestamp.
    pub const CYCLES: u64 = 8;
    /// Event-kind discriminant.
    pub const KIND: u64 = 16;
    /// Pid the event is attributed to (0 when none).
    pub const PID: u64 = 20;
    /// First event argument.
    pub const ARG0: u64 = 28;
    /// Second event argument.
    pub const ARG1: u64 = 36;
    /// CRC-32 over bytes `[0, CRC)` of the slot.
    pub const CRC: u64 = 44;
}

/// Byte offsets inside the header frame.
pub mod hdr_off {
    /// [`super::TRACE_MAGIC`].
    pub const MAGIC: u64 = 0;
    /// Number of record slots in the region.
    pub const CAPACITY: u64 = 4;
    /// Records ever emitted (next slot = `write_seq % capacity`).
    pub const WRITE_SEQ: u64 = 8;
    /// Records the writer refused (ring not armed / region too small).
    pub const DROPPED: u64 = 16;
    /// Kernel generation that armed the ring.
    pub const GENERATION: u64 = 24;
    /// Monotonic counters start here.
    pub const COUNTERS: u64 = 32;
    /// Histograms follow the counters.
    pub const HISTOGRAMS: u64 = COUNTERS + 8 * super::TRACE_NUM_COUNTERS as u64;
    /// One past the last header byte; must stay within one frame.
    pub const END: u64 =
        HISTOGRAMS + 8 * super::TRACE_HIST_BUCKETS as u64 * super::TRACE_NUM_HISTOGRAMS as u64;
}

/// Reads the little-endian `u64` at `off`, zero-padding past the end of
/// `buf`. Cannot panic: the trace codec runs on the recovery path, and a
/// short buffer just yields a value downstream validation rejects.
pub fn field_u64(buf: &[u8], off: u64) -> u64 {
    let mut v = 0u64;
    let mut k = 8usize;
    while k > 0 {
        k -= 1;
        let b = buf.get(off as usize + k).copied().unwrap_or(0);
        v = (v << 8) | u64::from(b);
    }
    v
}

/// Reads the little-endian `u32` at `off`, zero-padding past the end.
pub fn field_u32(buf: &[u8], off: u64) -> u32 {
    let mut v = 0u32;
    let mut k = 4usize;
    while k > 0 {
        k -= 1;
        let b = buf.get(off as usize + k).copied().unwrap_or(0);
        v = (v << 8) | u32::from(b);
    }
    v
}

/// Writes `bytes` at `off`, silently truncating at the end of `buf`
/// (cannot panic; in-bounds by construction for every record field).
pub fn put_field(buf: &mut [u8], off: u64, bytes: &[u8]) {
    if let Some(dst) = buf
        .get_mut(off as usize..)
        .and_then(|s| s.get_mut(..bytes.len()))
    {
        dst.copy_from_slice(bytes);
    }
}

/// The CRC-covered prefix of a record slot.
fn payload(buf: &[u8]) -> &[u8] {
    buf.get(..rec_off::CRC as usize).unwrap_or(buf)
}

/// Seals a record slot: computes the shared CRC-32 over the payload and
/// stores it in the slot's trailing CRC field.
pub fn seal_slot(buf: &mut [u8; RECORD_SIZE as usize]) {
    let crc = crc32(payload(buf));
    put_field(buf, rec_off::CRC, &crc.to_le_bytes());
}

/// Whether a record slot's stored CRC matches its payload.
pub fn slot_crc_ok(buf: &[u8; RECORD_SIZE as usize]) -> bool {
    crc32(payload(buf)) == field_u32(buf, rec_off::CRC)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_fits_one_frame() {
        assert!(hdr_off::END <= ow_simhw::PAGE_SIZE as u64);
    }

    #[test]
    fn record_offsets_are_contiguous() {
        assert_eq!(rec_off::CRC + 4, RECORD_SIZE);
        assert_eq!(rec_off::ARG1 + 8, rec_off::CRC);
    }

    #[test]
    fn seal_then_check_round_trips() {
        let mut buf = [0u8; RECORD_SIZE as usize];
        buf[..8].copy_from_slice(&42u64.to_le_bytes());
        seal_slot(&mut buf);
        assert!(slot_crc_ok(&buf));
        buf[3] ^= 0x80;
        assert!(!slot_crc_ok(&buf));
    }
}
