//! `ow-layout` — the versioned record codec every crate shares.
//!
//! Otherworld's premise is that the crash kernel parses the dead kernel's
//! structures out of raw physical memory and survives their corruption
//! (§3–§4). That only works if exactly one definition of every layout
//! exists; this crate is that definition:
//!
//! * [`Cursor`]/[`CursorMut`] — checked little-endian cursors over
//!   simulated physical memory, with Table 4 byte accounting.
//! * [`Record`] — the declarative codec trait: magic, layout version,
//!   footprint, body codec and deep validation per structure, with the
//!   single magic gate ([`check_magic`]) provided once.
//! * [`records`](crate::records) — every kernel structure the crash kernel
//!   must parse, from the frame-0 [`HandoffBlock`] to [`SockDesc`].
//! * [`trace`] — the flight-recorder region layout and its CRC-framed
//!   record slots.
//! * [`crc`] — the one shared CRC-32, guarding trace slots and the §4
//!   descriptor checksums alike.
//! * [`registry`] — the enumeration of every resurrection-relevant
//!   structure (name, guard, size, version), from which the fault
//!   injector derives wild-write victim footprints and the Table 4
//!   accounting cross-checks itself; its [`LAYOUT_VERSION`] is stamped
//!   into the handoff block so a crash kernel of a different generation
//!   refuses cleanly instead of misparsing.
//! * [`samples`] — canonical sample values behind the golden-encoding and
//!   corruption tests.

#![forbid(unsafe_code)]

pub mod crc;
mod cursor;
mod record;
mod records;
pub mod registry;
pub mod samples;
pub mod trace;

pub use cursor::{check_magic, pack_str, unpack_str, Cursor, CursorMut, LayoutError};
pub use record::Record;
pub use records::*;
pub use registry::{
    classify_victim, footprint, lookup, max_footprint, Guard, LayoutEntry, LAYOUT_VERSION, REGISTRY,
};
