//! The declarative record codec: one trait carrying a structure's magic,
//! layout version, footprint and body codec, with `write`/`read` provided
//! on top so the magic gate and byte accounting exist exactly once.

use crate::cursor::{check_magic, Cursor, CursorMut, LayoutError};
use ow_simhw::{PhysAddr, PhysMem};

/// A fixed-layout structure serialized into simulated physical memory.
///
/// Implementations supply the body codec ([`Record::encode_body`] /
/// [`Record::decode_body`]) and optional deep validation
/// ([`Record::validate`]); the trait provides [`Record::write`] and
/// [`Record::read`], which bracket the body with the 4-byte magic and the
/// Table 4 byte accounting. The paper builds main and crash kernels from
/// the same source so both agree on structure layout (§3.1); this trait is
/// that shared source, and [`crate::registry::REGISTRY`] enumerates every
/// implementor.
pub trait Record: Sized {
    /// Structure name used in error reports and the registry.
    const NAME: &'static str;
    /// 4-byte magic prefix.
    const MAGIC: u32;
    /// Layout version of this record's encoding. Bumped whenever the byte
    /// layout (or the semantics of a guarded field) changes; the maximum
    /// over all records feeds [`crate::registry::LAYOUT_VERSION`].
    const VERSION: u32;
    /// Serialized size in bytes (magic included).
    const SIZE: u64;

    /// Encodes every field after the magic.
    fn encode_body(&self, w: &mut CursorMut<'_>) -> Result<(), LayoutError>;

    /// Decodes every field after the magic, consuming exactly
    /// `SIZE - 4` bytes regardless of field values (so corrupted counts
    /// cannot change the footprint).
    fn decode_body(c: &mut Cursor<'_>) -> Result<Self, LayoutError>;

    /// Deep validation after a structurally successful decode; `addr` is
    /// the structure's start (for error reports), `phys` the memory it was
    /// read from (for pointer bounds).
    fn validate(&self, _phys: &PhysMem, _addr: PhysAddr) -> Result<(), LayoutError> {
        Ok(())
    }

    /// Writes the record (magic, then body) at `addr`.
    fn write(&self, phys: &mut PhysMem, addr: PhysAddr) -> Result<(), LayoutError> {
        let mut w = CursorMut::new(phys, addr);
        w.u32(Self::MAGIC)?;
        self.encode_body(&mut w)?;
        debug_assert_eq!(
            w.addr() - addr,
            Self::SIZE,
            "{} encode drifted from declared SIZE",
            Self::NAME
        );
        Ok(())
    }

    /// Reads and validates a record at `addr`, returning it plus bytes
    /// consumed.
    fn read(phys: &PhysMem, addr: PhysAddr) -> Result<(Self, u64), LayoutError> {
        let mut c = Cursor::new(phys, addr);
        check_magic(&mut c, Self::MAGIC, Self::NAME)?;
        let v = Self::decode_body(&mut c)?;
        debug_assert_eq!(
            c.consumed,
            Self::SIZE,
            "{} decode drifted from declared SIZE",
            Self::NAME
        );
        v.validate(phys, addr)?;
        Ok((v, c.consumed))
    }
}
