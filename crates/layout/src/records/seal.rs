//! The warm-morph seal: the dead kernel's last testament.
//!
//! The cold morph path rebuilds the frame allocator, swap-slot map and
//! page cache from scratch, which is most of why Table 6's service
//! interruption approaches a full reboot. The warm path instead lets the
//! panicking kernel *seal* those structures — geometry plus a CRC-32 per
//! structure — into a reserved region at the top of its own kernel
//! region, written with plain stores (the panic path must not allocate).
//! The crash kernel derives the seal's address from the validated dead
//! [`KernelHeader`](super::KernelHeader), revalidates each CRC against
//! the dead bytes, and adopts whatever still checks out, falling back
//! per-structure to the cold rebuild (ReHype's recover-in-place idea
//! applied to the morph).

use crate::cursor::{Cursor, CursorMut, LayoutError};
use crate::record::Record;
use ow_simhw::{PhysAddr, PhysMem};

/// Magic for [`WarmSeal`].
pub const WARM_SEAL_MAGIC: u32 = 0x5357_574f; // "OWWS"

/// Frames reserved at the top of every kernel region for the seal record
/// plus the bit-packed frame-allocator bitmap that follows it.
pub const SEAL_FRAMES: u64 = 2;

/// Physical address of a kernel's seal record, derived from its header
/// geometry — no extra pointer to corrupt.
pub fn seal_addr(base_frame: u64, nframes: u64) -> PhysAddr {
    (base_frame + nframes - SEAL_FRAMES) * 4096
}

/// Per-structure seal over the dead kernel's adoptable state. `valid == 0`
/// (what a fresh boot writes) means "no panic has sealed this region";
/// the crash kernel then takes the cold path unconditionally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarmSeal {
    /// Non-zero once the panic path has written a complete seal.
    pub valid: u32,
    /// Microreboot generation of the sealing kernel (cross-check against
    /// the handoff block).
    pub generation: u32,
    /// First frame the sealed allocator bitmap covers.
    pub falloc_base: u64,
    /// Frames the bitmap covers (bit `i` = frame `falloc_base + i` used).
    pub falloc_capacity: u64,
    /// Physical address of the bit-packed bitmap (inside the seal region).
    pub falloc_bitmap: PhysAddr,
    /// CRC-32 of the bit-packed bitmap bytes.
    pub falloc_crc: u32,
    /// Index of the active swap area at panic time.
    pub swap_index: u32,
    /// Slots in the active swap area.
    pub swap_nslots: u32,
    /// CRC-32 of the live slot-bitmap bytes.
    pub swap_crc: u32,
    /// Physical address of the live slot bitmap (in the dead kheap).
    pub swap_bitmap: PhysAddr,
    /// Page-cache nodes across every open file at panic time.
    pub cache_nodes: u64,
    /// CRC-32 over the encoded bytes of every page-cache node, in
    /// deterministic file-table walk order.
    pub cache_crc: u32,
}

impl Record for WarmSeal {
    const NAME: &'static str = "WarmSeal";
    const MAGIC: u32 = WARM_SEAL_MAGIC;
    const VERSION: u32 = 1;
    const SIZE: u64 = 4 + 4 + 4 + 8 + 8 + 8 + 4 + 4 + 4 + 4 + 8 + 8 + 4 + 4;

    fn encode_body(&self, w: &mut CursorMut<'_>) -> Result<(), LayoutError> {
        w.u32(self.valid)?;
        w.u32(self.generation)?;
        w.u64(self.falloc_base)?;
        w.u64(self.falloc_capacity)?;
        w.u64(self.falloc_bitmap)?;
        w.u32(self.falloc_crc)?;
        w.u32(self.swap_index)?;
        w.u32(self.swap_nslots)?;
        w.u32(self.swap_crc)?;
        w.u64(self.swap_bitmap)?;
        w.u64(self.cache_nodes)?;
        w.u32(self.cache_crc)?;
        w.u32(0)?; // padding
        Ok(())
    }

    fn decode_body(c: &mut Cursor<'_>) -> Result<Self, LayoutError> {
        let s = WarmSeal {
            valid: c.u32()?,
            generation: c.u32()?,
            falloc_base: c.u64()?,
            falloc_capacity: c.u64()?,
            falloc_bitmap: c.u64()?,
            falloc_crc: c.u32()?,
            swap_index: c.u32()?,
            swap_nslots: c.u32()?,
            swap_crc: c.u32()?,
            swap_bitmap: c.u64()?,
            cache_nodes: c.u64()?,
            cache_crc: c.u32()?,
        };
        let _pad = c.u32()?;
        Ok(s)
    }

    fn validate(&self, phys: &PhysMem, addr: PhysAddr) -> Result<(), LayoutError> {
        if self.falloc_capacity > phys.frames() || self.falloc_bitmap >= phys.frames() * 4096 {
            return Err(LayoutError::BadValue {
                structure: Self::NAME,
                field: "falloc_capacity/falloc_bitmap",
                addr,
            });
        }
        if self.swap_nslots > 1 << 24 {
            return Err(LayoutError::BadValue {
                structure: Self::NAME,
                field: "swap_nslots",
                addr,
            });
        }
        Ok(())
    }
}

impl WarmSeal {
    /// Reads and unpacks the sealed frame bitmap: element `i` says whether
    /// frame `falloc_base + i` was in use at panic time. Callers must have
    /// verified [`WarmSeal::falloc_crc`] over the same bytes first.
    pub fn read_falloc_bitmap(&self, phys: &PhysMem) -> Result<Vec<bool>, LayoutError> {
        let nbytes = self.falloc_capacity.div_ceil(8);
        let mut raw = vec![0u8; nbytes as usize];
        phys.read(self.falloc_bitmap, &mut raw)
            .map_err(LayoutError::Mem)?;
        Ok((0..self.falloc_capacity as usize)
            .map(|i| {
                raw.get(i / 8)
                    .map(|b| b >> (i % 8) & 1 != 0)
                    .unwrap_or(false)
            })
            .collect())
    }

    /// An invalidated seal (what every boot writes over the region so a
    /// stale seal from an earlier generation can never be adopted).
    pub fn invalid() -> WarmSeal {
        WarmSeal {
            valid: 0,
            generation: 0,
            falloc_base: 0,
            falloc_capacity: 0,
            falloc_bitmap: 0,
            falloc_crc: 0,
            swap_index: 0,
            swap_nslots: 0,
            swap_crc: 0,
            swap_bitmap: 0,
            cache_nodes: 0,
            cache_crc: 0,
        }
    }
}
