//! IPC-side structures: terminals, shared memory, pipes and sockets.

use super::SHM_MAX_PAGES;
use crate::cursor::{Cursor, CursorMut, LayoutError};
use crate::record::Record;
use ow_simhw::{PhysAddr, PhysMem};

/// Magic for [`TermDesc`].
pub const TERM_MAGIC: u32 = 0x4d52_4554; // "TERM"

/// Terminal geometry: columns.
pub const TERM_COLS: u32 = 80;
/// Terminal geometry: rows.
pub const TERM_ROWS: u32 = 25;

/// A physical terminal: settings plus an in-kernel screen buffer frame
/// (§3.3 — the crash kernel restores screen contents and settings).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TermDesc {
    /// Terminal id.
    pub id: u32,
    /// Cursor position (row * cols + col).
    pub cursor: u32,
    /// Terminal settings word (echo, raw mode, ...).
    pub settings: u64,
    /// Frame holding the screen contents (cols*rows bytes).
    pub screen_pfn: u64,
}

impl Record for TermDesc {
    const NAME: &'static str = "TermDesc";
    const MAGIC: u32 = TERM_MAGIC;
    const VERSION: u32 = 1;
    const SIZE: u64 = 4 + 4 + 4 + 4 + 8 + 8;

    fn encode_body(&self, w: &mut CursorMut<'_>) -> Result<(), LayoutError> {
        w.u32(self.id)?;
        w.u32(self.cursor)?;
        w.u32(0)?;
        w.u64(self.settings)?;
        w.u64(self.screen_pfn)?;
        Ok(())
    }

    fn decode_body(c: &mut Cursor<'_>) -> Result<Self, LayoutError> {
        let id = c.u32()?;
        let cursor = c.u32()?;
        let _pad = c.u32()?;
        let settings = c.u64()?;
        let screen_pfn = c.u64()?;
        Ok(TermDesc {
            id,
            cursor,
            settings,
            screen_pfn,
        })
    }

    fn validate(&self, phys: &PhysMem, addr: PhysAddr) -> Result<(), LayoutError> {
        if self.cursor >= TERM_COLS * TERM_ROWS || self.screen_pfn >= phys.frames() {
            return Err(LayoutError::BadValue {
                structure: Self::NAME,
                field: "cursor/screen_pfn",
                addr,
            });
        }
        Ok(())
    }
}

/// Magic for [`ShmDesc`].
pub const SHM_MAGIC: u32 = 0x444d_4853; // "SHMD"

/// A System-V-style shared memory segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShmDesc {
    /// Segment key.
    pub key: u64,
    /// Segment size in bytes.
    pub size: u64,
    /// Virtual address the owning process attached it at (0 = detached).
    pub attach_vaddr: u64,
    /// Number of pages used.
    pub npages: u32,
    /// Frames backing the segment.
    pub pages: Vec<u64>,
    /// Next segment attached to the same process (0 = end).
    pub next: PhysAddr,
}

impl Record for ShmDesc {
    const NAME: &'static str = "ShmDesc";
    const MAGIC: u32 = SHM_MAGIC;
    const VERSION: u32 = 1;
    const SIZE: u64 = 4 + 4 + 8 + 8 + 8 + 8 + 8 * SHM_MAX_PAGES as u64;

    fn encode_body(&self, w: &mut CursorMut<'_>) -> Result<(), LayoutError> {
        assert!(self.pages.len() <= SHM_MAX_PAGES);
        w.u32(self.npages)?;
        w.u64(self.key)?;
        w.u64(self.size)?;
        w.u64(self.attach_vaddr)?;
        w.u64(self.next)?;
        for i in 0..SHM_MAX_PAGES {
            w.u64(self.pages.get(i).copied().unwrap_or(0))?;
        }
        Ok(())
    }

    fn decode_body(c: &mut Cursor<'_>) -> Result<Self, LayoutError> {
        let npages = c.u32()?;
        let key = c.u64()?;
        let size = c.u64()?;
        let attach_vaddr = c.u64()?;
        let next = c.u64()?;
        // Always consume the whole fixed-capacity array so a corrupted
        // count cannot change the record's footprint; a too-large count is
        // rejected in validate().
        let mut pages = Vec::with_capacity((npages as usize).min(SHM_MAX_PAGES));
        for i in 0..SHM_MAX_PAGES {
            let p = c.u64()?;
            if i < npages as usize {
                pages.push(p);
            }
        }
        Ok(ShmDesc {
            key,
            size,
            attach_vaddr,
            npages,
            pages,
            next,
        })
    }

    fn validate(&self, phys: &PhysMem, addr: PhysAddr) -> Result<(), LayoutError> {
        if self.npages as usize > SHM_MAX_PAGES {
            return Err(LayoutError::BadValue {
                structure: Self::NAME,
                field: "npages",
                addr,
            });
        }
        if self.pages.iter().any(|&p| p >= phys.frames()) {
            return Err(LayoutError::BadValue {
                structure: Self::NAME,
                field: "pages",
                addr,
            });
        }
        Ok(())
    }
}

/// Magic for [`PipeDesc`].
pub const PIPE_MAGIC: u32 = 0x4550_4950; // "PIPE"

/// Pipe ring-buffer capacity in bytes (one frame, one slot reserved).
pub const PIPE_CAP: u32 = 4095;

/// A pipe: a ring buffer shared between processes, serialized by a
/// semaphore. Per §3.3, when the semaphore is **not** held the structure is
/// consistent and resurrectable; when it is held at crash time, the pipe
/// was mid-update and must be considered lost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipeDesc {
    /// Non-zero while a reader/writer holds the pipe semaphore.
    pub locked: u32,
    /// Read cursor into the ring.
    pub rd: u32,
    /// Write cursor into the ring.
    pub wr: u32,
    /// Frame holding the ring buffer.
    pub buf_pfn: u64,
}

impl Record for PipeDesc {
    const NAME: &'static str = "PipeDesc";
    const MAGIC: u32 = PIPE_MAGIC;
    const VERSION: u32 = 1;
    const SIZE: u64 = 4 + 4 + 4 + 4 + 8;

    fn encode_body(&self, w: &mut CursorMut<'_>) -> Result<(), LayoutError> {
        w.u32(self.locked)?;
        w.u32(self.rd)?;
        w.u32(self.wr)?;
        w.u64(self.buf_pfn)?;
        Ok(())
    }

    fn decode_body(c: &mut Cursor<'_>) -> Result<Self, LayoutError> {
        Ok(PipeDesc {
            locked: c.u32()?,
            rd: c.u32()?,
            wr: c.u32()?,
            buf_pfn: c.u64()?,
        })
    }

    fn validate(&self, phys: &PhysMem, addr: PhysAddr) -> Result<(), LayoutError> {
        if self.rd > PIPE_CAP + 1 || self.wr > PIPE_CAP + 1 || self.buf_pfn >= phys.frames() {
            return Err(LayoutError::BadValue {
                structure: Self::NAME,
                field: "cursors",
                addr,
            });
        }
        Ok(())
    }
}

/// Magic for [`SockDesc`].
pub const SOCK_MAGIC: u32 = 0x4b43_4f53; // "SOCK"

/// Socket protocol values.
pub mod sockproto {
    /// Datagram (UDP-like): payload may be discarded on resurrection.
    pub const UDP: u32 = 0;
    /// Stream (TCP-like): connection parameters plus unacknowledged
    /// outbound payload must be restored.
    pub const TCP: u32 = 1;
}

/// A socket descriptor on a process's socket chain.
///
/// The paper's prototype cannot resurrect these (§3.3) but argues they are
/// resurrectable: UDP needs only the connection parameters; TCP also needs
/// the sequence state and all outbound payload not yet acknowledged. This
/// structure carries exactly that, as the §7 extension implements it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SockDesc {
    /// Protocol (see [`sockproto`]).
    pub proto: u32,
    /// 1 = open, 0 = closed.
    pub state: u32,
    /// Socket id within the owning process.
    pub sid: u32,
    /// Local port (connection parameter).
    pub local_port: u32,
    /// Send sequence number.
    pub seq: u64,
    /// Frame buffering unacknowledged outbound payload.
    pub outbuf_pfn: u64,
    /// Bytes of unacknowledged payload in the buffer.
    pub outbuf_len: u32,
    /// Next socket on the chain (0 = end).
    pub next: PhysAddr,
}

impl Record for SockDesc {
    const NAME: &'static str = "SockDesc";
    const MAGIC: u32 = SOCK_MAGIC;
    const VERSION: u32 = 1;
    const SIZE: u64 = 4 + 4 + 4 + 4 + 4 + 4 + 8 + 8 + 4 + 4 + 8;

    fn encode_body(&self, w: &mut CursorMut<'_>) -> Result<(), LayoutError> {
        w.u32(self.proto)?;
        w.u32(self.state)?;
        w.u32(self.sid)?;
        w.u32(self.local_port)?;
        w.u32(0)?;
        w.u64(self.seq)?;
        w.u64(self.outbuf_pfn)?;
        w.u32(self.outbuf_len)?;
        w.u32(0)?;
        w.u64(self.next)?;
        Ok(())
    }

    fn decode_body(c: &mut Cursor<'_>) -> Result<Self, LayoutError> {
        let proto = c.u32()?;
        let state = c.u32()?;
        let sid = c.u32()?;
        let local_port = c.u32()?;
        let _pad = c.u32()?;
        let seq = c.u64()?;
        let outbuf_pfn = c.u64()?;
        let outbuf_len = c.u32()?;
        let _pad2 = c.u32()?;
        let next = c.u64()?;
        Ok(SockDesc {
            proto,
            state,
            sid,
            local_port,
            seq,
            outbuf_pfn,
            outbuf_len,
            next,
        })
    }

    fn validate(&self, phys: &PhysMem, addr: PhysAddr) -> Result<(), LayoutError> {
        if self.proto > 1
            || self.state > 1
            || self.outbuf_len > 4096
            || self.outbuf_pfn >= phys.frames()
        {
            return Err(LayoutError::BadValue {
                structure: Self::NAME,
                field: "fields",
                addr,
            });
        }
        Ok(())
    }
}
