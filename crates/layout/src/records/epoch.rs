//! Epoch checkpoints: the rollback-in-place seal region.
//!
//! Even the warm morph pays a full microreboot. The Table 4 accounting
//! shows the resurrection-critical state (process descriptors, VMA chains,
//! file tables and file records) is tiny — small enough to checkpoint
//! continuously. The main kernel periodically seals that state into a
//! double-buffered region just below the trace ring, and seals one final
//! epoch on its own panic path. Rollback-first recovery (the supervisor
//! ladder's rung 0) then revalidates the newest complete epoch and rolls
//! the records back in place without ever booting the crash kernel,
//! falling through to the ordinary microreboot whenever the checkpoint is
//! stale, torn, semantically poisoned, or already failed once.
//!
//! Torn-write safety comes from the A/B slot discipline: the writer
//! alternates slots by epoch parity, so a seal interrupted mid-write can
//! only damage the slot being written — the previous epoch in the other
//! slot stays intact, and the record's payload CRC exposes the torn slot.

use crate::cursor::{Cursor, CursorMut, LayoutError};
use crate::record::Record;
use ow_simhw::{PhysAddr, PhysMem};

/// Magic for [`EpochCheckpoint`].
pub const EPOCH_CKPT_MAGIC: u32 = 0x4345_574f; // "OWEC"

/// Number of checkpoint slots (A/B double buffering).
pub const CKPT_SLOTS: u32 = 2;

/// Frames per checkpoint slot (40 KiB: the Table 4 set is <80 KB total
/// and the per-process share sealed here is far below that).
pub const CKPT_SLOT_FRAMES: u64 = 10;

/// Frames reserved for the whole checkpoint region (both slots), carved
/// out immediately below the trace ring at the top of RAM.
pub const CKPT_FRAMES: u64 = CKPT_SLOTS as u64 * CKPT_SLOT_FRAMES;

/// Bytes in one checkpoint slot.
pub const CKPT_SLOT_BYTES: u64 = CKPT_SLOT_FRAMES * 4096;

/// Maximum payload bytes one slot can carry after its header record.
pub const CKPT_PAYLOAD_MAX: u64 = CKPT_SLOT_BYTES - EpochCheckpoint::SIZE;

/// First frame of the checkpoint region, derived from the trace-ring base
/// published in the handoff block — no extra pointer to corrupt.
pub fn ckpt_region_base(trace_base: u64) -> u64 {
    trace_base - CKPT_FRAMES
}

/// Physical address of checkpoint slot `slot` (0 or 1), derived from the
/// trace-ring geometry like [`ckpt_region_base`].
pub fn ckpt_slot_addr(trace_base: u64, slot: u32) -> PhysAddr {
    (ckpt_region_base(trace_base) + (slot % CKPT_SLOTS) as u64 * CKPT_SLOT_FRAMES) * 4096
}

/// [`EpochCheckpoint::flags`] bits.
pub mod ckptflags {
    /// The epoch was sealed by the panic path itself (not the periodic
    /// cadence): its payload is the state at the instant of death, so a
    /// rollback that restores it replays nothing.
    pub const AT_PANIC: u32 = 1 << 0;
}

/// Snippet kinds inside a checkpoint payload. The payload is a sequence
/// of snippets, each `{ addr: u64, kind: u32, len: u32, bytes[len] }`,
/// where `bytes` is the verbatim encoding of one record as it sat at
/// `addr` when the epoch was sealed.
pub mod snipkind {
    /// A process descriptor.
    pub const PROC: u32 = 1;
    /// A VMA descriptor.
    pub const VMA: u32 = 2;
    /// A per-process file table.
    pub const FILE_TABLE: u32 = 3;
    /// An open-file record.
    pub const FILE_RECORD: u32 = 4;
}

/// Bytes of one snippet header (`addr + kind + len`).
pub const SNIP_HEADER_BYTES: u64 = 8 + 4 + 4;

/// One parsed snippet header: where the record came from, what it is,
/// and where its verbatim bytes sit inside the slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnipView {
    /// Home address the bytes were sealed from (and roll back to).
    pub addr: PhysAddr,
    /// [`snipkind`] tag.
    pub kind: u32,
    /// Record length in bytes.
    pub len: u64,
    /// Physical address of the sealed bytes inside the slot payload.
    pub src: PhysAddr,
}

/// Appends one snippet — `{ addr, kind, len, verbatim bytes }` — to a
/// payload being assembled by the seal writer.
pub fn push_snippet(
    payload: &mut Vec<u8>,
    phys: &PhysMem,
    addr: PhysAddr,
    kind: u32,
    len: u64,
) -> Result<(), LayoutError> {
    let mut buf = vec![0u8; len as usize];
    phys.read(addr, &mut buf).map_err(LayoutError::Mem)?;
    payload.extend_from_slice(&addr.to_le_bytes());
    payload.extend_from_slice(&kind.to_le_bytes());
    payload.extend_from_slice(&(len as u32).to_le_bytes());
    payload.extend_from_slice(&buf);
    Ok(())
}

/// Parses the snippet header at `off` inside a slot payload, bounds-checked
/// against `payload_len`. Returns the view and the offset of the next
/// snippet. The caller still semantically validates the record bytes at
/// `src` through the typed codec its `kind` names.
pub fn parse_snippet(
    phys: &PhysMem,
    payload_base: PhysAddr,
    payload_len: u64,
    off: u64,
) -> Result<(SnipView, u64), LayoutError> {
    let truncated = || LayoutError::BadValue {
        structure: "EpochCheckpoint",
        field: "payload",
        addr: payload_base + off,
    };
    if off + SNIP_HEADER_BYTES > payload_len {
        return Err(truncated());
    }
    let mut hdr = [0u8; SNIP_HEADER_BYTES as usize];
    phys.read(payload_base + off, &mut hdr)
        .map_err(LayoutError::Mem)?;
    let addr = u64::from_le_bytes(hdr[0..8].try_into().unwrap_or_default());
    let kind = u32::from_le_bytes(hdr[8..12].try_into().unwrap_or_default());
    let len = u32::from_le_bytes(hdr[12..16].try_into().unwrap_or_default()) as u64;
    if off + SNIP_HEADER_BYTES + len > payload_len {
        return Err(truncated());
    }
    let src = payload_base + off + SNIP_HEADER_BYTES;
    Ok((
        SnipView {
            addr,
            kind,
            len,
            src,
        },
        off + SNIP_HEADER_BYTES + len,
    ))
}

/// Copies a sealed snippet's verbatim bytes from `src` (inside a validated
/// slot payload) back to their home address `dst` — the rollback apply.
pub fn copy_snippet_bytes(
    phys: &mut PhysMem,
    src: PhysAddr,
    dst: PhysAddr,
    len: u64,
) -> Result<(), LayoutError> {
    let mut buf = vec![0u8; len as usize];
    phys.read(src, &mut buf).map_err(LayoutError::Mem)?;
    phys.write(dst, &buf).map_err(LayoutError::Mem)?;
    Ok(())
}

/// Header record of one checkpoint slot. `valid == 0` (what every boot
/// writes over both slots) means "no epoch has been sealed here"; the
/// payload — the snippet sequence — follows the record in the same slot
/// and is guarded by `payload_crc`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochCheckpoint {
    /// Non-zero once a complete epoch (record + payload + CRC) is sealed.
    pub valid: u32,
    /// Generation of the sealing kernel (a stale slot from an earlier
    /// occupant of these frames must never roll back a newer kernel).
    pub generation: u32,
    /// Monotonic epoch counter; the newest valid slot wins.
    pub epoch: u64,
    /// Syscall sequence number at seal time. Rollback demands the sealed
    /// sequence equal the dead kernel's current one: anything older means
    /// state advanced after the seal and restoring it would silently lose
    /// work.
    pub seq: u64,
    /// [`ckptflags`] bits.
    pub flags: u32,
    /// Process-descriptor snippets in the payload (cross-checked against
    /// the actual snippet walk during validation).
    pub nprocs: u32,
    /// Per-epoch attempt ledger: non-zero once rollback has been tried on
    /// this epoch. A re-panic with no progress carries the stamp forward,
    /// so the same failed epoch is never rolled back twice (no rollback
    /// loops).
    pub attempted: u32,
    /// Payload bytes following the record in this slot.
    pub payload_len: u64,
    /// CRC-32 over the payload bytes.
    pub payload_crc: u32,
}

impl Record for EpochCheckpoint {
    const NAME: &'static str = "EpochCheckpoint";
    const MAGIC: u32 = EPOCH_CKPT_MAGIC;
    const VERSION: u32 = 2;
    const SIZE: u64 = 4 + 4 + 4 + 8 + 8 + 4 + 4 + 4 + 8 + 4 + 4;

    fn encode_body(&self, w: &mut CursorMut<'_>) -> Result<(), LayoutError> {
        w.u32(self.valid)?;
        w.u32(self.generation)?;
        w.u64(self.epoch)?;
        w.u64(self.seq)?;
        w.u32(self.flags)?;
        w.u32(self.nprocs)?;
        w.u32(self.attempted)?;
        w.u64(self.payload_len)?;
        w.u32(self.payload_crc)?;
        w.u32(0)?; // padding
        Ok(())
    }

    fn decode_body(c: &mut Cursor<'_>) -> Result<Self, LayoutError> {
        let s = EpochCheckpoint {
            valid: c.u32()?,
            generation: c.u32()?,
            epoch: c.u64()?,
            seq: c.u64()?,
            flags: c.u32()?,
            nprocs: c.u32()?,
            attempted: c.u32()?,
            payload_len: c.u64()?,
            payload_crc: c.u32()?,
        };
        let _pad = c.u32()?;
        Ok(s)
    }

    fn validate(&self, _phys: &PhysMem, addr: PhysAddr) -> Result<(), LayoutError> {
        if self.payload_len > CKPT_PAYLOAD_MAX {
            return Err(LayoutError::BadValue {
                structure: Self::NAME,
                field: "payload_len",
                addr,
            });
        }
        if self.nprocs > 4096 {
            return Err(LayoutError::BadValue {
                structure: Self::NAME,
                field: "nprocs",
                addr,
            });
        }
        Ok(())
    }
}

impl EpochCheckpoint {
    /// An invalidated checkpoint (what every boot writes over both slots
    /// so an earlier occupant's epoch can never roll back this kernel).
    pub fn invalid() -> EpochCheckpoint {
        EpochCheckpoint {
            valid: 0,
            generation: 0,
            epoch: 0,
            seq: 0,
            flags: 0,
            nprocs: 0,
            attempted: 0,
            payload_len: 0,
            payload_crc: 0,
        }
    }
}
