//! Filesystem-side structures: the per-process file table, open-file
//! records, the page cache and swap descriptors.

use super::{MAX_FDS, PATH_LEN};
use crate::cursor::{pack_str, unpack_str, Cursor, CursorMut, LayoutError};
use crate::record::Record;
use ow_simhw::{PhysAddr, PhysMem};

/// Magic for [`FileTable`].
pub const FTAB_MAGIC: u32 = 0x4241_5446; // "FTAB"

/// A process's open-file table (Linux `files_struct` analog).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileTable {
    /// One entry per fd slot; 0 = closed, otherwise the address of a
    /// [`FileRecord`].
    pub fds: [PhysAddr; MAX_FDS],
}

impl Record for FileTable {
    const NAME: &'static str = "FileTable";
    const MAGIC: u32 = FTAB_MAGIC;
    const VERSION: u32 = 1;
    const SIZE: u64 = 4 + 4 + 8 * MAX_FDS as u64;

    fn encode_body(&self, w: &mut CursorMut<'_>) -> Result<(), LayoutError> {
        w.u32(0)?;
        for fd in self.fds {
            w.u64(fd)?;
        }
        Ok(())
    }

    fn decode_body(c: &mut Cursor<'_>) -> Result<Self, LayoutError> {
        let _pad = c.u32()?;
        let mut fds = [0u64; MAX_FDS];
        for fd in &mut fds {
            *fd = c.u64()?;
        }
        Ok(FileTable { fds })
    }
}

/// Magic for [`FileRecord`].
pub const FILE_MAGIC: u32 = 0x454c_4946; // "FILE"

/// File open flags.
pub mod oflags {
    /// Open for reading.
    pub const READ: u32 = 1 << 0;
    /// Open for writing.
    pub const WRITE: u32 = 1 << 1;
    /// Create if absent.
    pub const CREATE: u32 = 1 << 2;
    /// Append mode.
    pub const APPEND: u32 = 1 << 3;
    /// Truncate on open.
    pub const TRUNC: u32 = 1 << 4;
}

/// An open file (Linux `struct file`, *modified as in §3.1*: the paper keeps
/// the location, name and open flags directly in the file structure so
/// resurrection needs only this one record rather than `file`+`inode`+
/// `dentry` chains).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileRecord {
    /// Open flags (see [`oflags`]).
    pub flags: u32,
    /// Reference count (fd table entries pointing here).
    pub refcnt: u32,
    /// Current file offset.
    pub offset: u64,
    /// Logical file size including not-yet-written-back cached data.
    pub fsize: u64,
    /// Inode number (cross-check against the path at resurrection).
    pub inode: u64,
    /// Full path, stored inline per the paper's kernel modification.
    pub path: String,
    /// First [`PageCacheNode`] of this file's buffer tree (0 = none).
    pub cache_head: PhysAddr,
}

impl Record for FileRecord {
    const NAME: &'static str = "FileRecord";
    const MAGIC: u32 = FILE_MAGIC;
    const VERSION: u32 = 1;
    const SIZE: u64 = 4 + 4 + 4 + 4 + 8 + 8 + 8 + PATH_LEN as u64 + 8;

    fn encode_body(&self, w: &mut CursorMut<'_>) -> Result<(), LayoutError> {
        w.u32(self.flags)?;
        w.u32(self.refcnt)?;
        w.u32(0)?;
        w.u64(self.offset)?;
        w.u64(self.fsize)?;
        w.u64(self.inode)?;
        w.bytes(&pack_str::<PATH_LEN>(&self.path))?;
        w.u64(self.cache_head)?;
        Ok(())
    }

    fn decode_body(c: &mut Cursor<'_>) -> Result<Self, LayoutError> {
        let flags = c.u32()?;
        let refcnt = c.u32()?;
        let _pad = c.u32()?;
        let offset = c.u64()?;
        let fsize = c.u64()?;
        let inode = c.u64()?;
        let path = unpack_str(&c.bytes::<PATH_LEN>()?);
        let cache_head = c.u64()?;
        Ok(FileRecord {
            flags,
            refcnt,
            offset,
            fsize,
            inode,
            path,
            cache_head,
        })
    }

    fn validate(&self, _phys: &PhysMem, addr: PhysAddr) -> Result<(), LayoutError> {
        if self.path.is_empty() {
            return Err(LayoutError::BadValue {
                structure: Self::NAME,
                field: "path",
                addr,
            });
        }
        Ok(())
    }
}

/// Magic for [`PageCacheNode`].
pub const PGCACHE_MAGIC: u32 = 0x4e43_4750; // "PGCN"

/// One page of cached file data (leaf of the paper's buffer tree, §3.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageCacheNode {
    /// Offset of this page's data within the file (page-aligned).
    pub file_off: u64,
    /// Physical frame holding the data.
    pub pfn: u64,
    /// Non-zero when the page must be written back to disk.
    pub dirty: u32,
    /// Next node (0 = end).
    pub next: PhysAddr,
}

impl Record for PageCacheNode {
    const NAME: &'static str = "PageCacheNode";
    const MAGIC: u32 = PGCACHE_MAGIC;
    const VERSION: u32 = 1;
    const SIZE: u64 = 4 + 4 + 8 + 8 + 4 + 4 + 8;

    fn encode_body(&self, w: &mut CursorMut<'_>) -> Result<(), LayoutError> {
        w.u32(0)?;
        w.u64(self.file_off)?;
        w.u64(self.pfn)?;
        w.u32(self.dirty)?;
        w.u32(0)?;
        w.u64(self.next)?;
        Ok(())
    }

    fn decode_body(c: &mut Cursor<'_>) -> Result<Self, LayoutError> {
        let _pad = c.u32()?;
        let file_off = c.u64()?;
        let pfn = c.u64()?;
        let dirty = c.u32()?;
        let _pad2 = c.u32()?;
        let next = c.u64()?;
        Ok(PageCacheNode {
            file_off,
            pfn,
            dirty,
            next,
        })
    }

    fn validate(&self, phys: &PhysMem, addr: PhysAddr) -> Result<(), LayoutError> {
        if !self.file_off.is_multiple_of(4096) || self.pfn >= phys.frames() {
            return Err(LayoutError::BadValue {
                structure: Self::NAME,
                field: "file_off/pfn",
                addr,
            });
        }
        Ok(())
    }
}

/// Magic for [`SwapDesc`].
pub const SWAP_MAGIC: u32 = 0x5041_5753; // "SWAP"

/// Length of a swap device name.
pub const SWAP_NAME_LEN: usize = 16;

/// A swap-area descriptor (Linux `swap_info_struct` analog): the symbolic
/// device name is stored so the crash kernel can reopen the device (§3.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwapDesc {
    /// Symbolic device name (e.g. `"swap-main"`).
    pub dev_name: String,
    /// Device id at the time of writing (cross-check only; the name is
    /// authoritative, exactly as in the paper).
    pub dev_id: u32,
    /// Total slots in the area.
    pub nslots: u32,
    /// Physical address of the slot-allocation bitmap (one byte per slot).
    pub bitmap: PhysAddr,
}

impl Record for SwapDesc {
    const NAME: &'static str = "SwapDesc";
    const MAGIC: u32 = SWAP_MAGIC;
    const VERSION: u32 = 1;
    const SIZE: u64 = 4 + SWAP_NAME_LEN as u64 + 4 + 4 + 8 + 4;

    fn encode_body(&self, w: &mut CursorMut<'_>) -> Result<(), LayoutError> {
        w.bytes(&pack_str::<SWAP_NAME_LEN>(&self.dev_name))?;
        w.u32(self.dev_id)?;
        w.u32(self.nslots)?;
        w.u64(self.bitmap)?;
        w.u32(0)?;
        Ok(())
    }

    fn decode_body(c: &mut Cursor<'_>) -> Result<Self, LayoutError> {
        let dev_name = unpack_str(&c.bytes::<SWAP_NAME_LEN>()?);
        let dev_id = c.u32()?;
        let nslots = c.u32()?;
        let bitmap = c.u64()?;
        let _pad = c.u32()?;
        Ok(SwapDesc {
            dev_name,
            dev_id,
            nslots,
            bitmap,
        })
    }

    fn validate(&self, _phys: &PhysMem, addr: PhysAddr) -> Result<(), LayoutError> {
        if self.dev_name.is_empty() || self.nslots > 1 << 24 {
            return Err(LayoutError::BadValue {
                structure: Self::NAME,
                field: "name/nslots",
                addr,
            });
        }
        Ok(())
    }
}
