//! Binary layouts of every kernel structure the crash kernel must parse.
//!
//! The paper builds the main and crash kernels from the same source so that
//! both agree on structure layout (§3.1). These modules are that shared
//! source: the main kernel serializes its process descriptors, memory maps,
//! file records, page-cache nodes, swap descriptors, terminals, signal
//! tables and shared-memory segments into physical memory using these
//! layouts, and the crash kernel re-reads them through the same definitions
//! — validating a per-structure magic number first, because a wild write
//! may have destroyed anything (§4).

mod epoch;
mod fs;
mod handoff;
mod ipc;
mod proc;
mod seal;

pub use epoch::*;
pub use fs::*;
pub use handoff::*;
pub use ipc::*;
pub use proc::*;
pub use seal::*;

/// Maximum open files per process.
pub const MAX_FDS: usize = 16;

/// Number of signals.
pub const NSIG: usize = 16;

/// Maximum pages in one shared-memory segment.
pub const SHM_MAX_PAGES: usize = 64;

/// Maximum length of a stored file path.
pub const PATH_LEN: usize = 64;

/// Maximum length of a process name (doubles as the executable identity the
/// crash kernel uses to re-instantiate the program).
pub const NAME_LEN: usize = 32;

/// Resource-type bits for [`ProcDesc::res_in_use`] and the crash-procedure
/// bitmask argument (paper §3.4): each set bit is a resource type the crash
/// kernel did not (or cannot) resurrect.
pub mod resmask {
    /// Network sockets (not resurrectable in the prototype).
    pub const SOCKETS: u32 = 1 << 0;
    /// Pipes (not resurrectable in the prototype).
    pub const PIPES: u32 = 1 << 1;
    /// Pseudo-terminals (only physical terminals are restorable).
    pub const PTY: u32 = 1 << 2;
    /// Open files (set in the failure mask only when reopening failed).
    pub const FILES: u32 = 1 << 3;
    /// Shared memory segments.
    pub const SHM: u32 = 1 << 4;
    /// Physical terminal state.
    pub const TERMINAL: u32 = 1 << 5;
    /// Signal handler table.
    pub const SIGNALS: u32 = 1 << 6;
    /// Part of the address space was abandoned by a degraded resurrection
    /// rung (swapped-out pages skipped, or file-backed contents dropped).
    /// Set only in failure masks, never in `res_in_use`.
    pub const MEMORY: u32 = 1 << 7;
}
