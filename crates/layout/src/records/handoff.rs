//! The fixed-location handoff structures both kernels share: the handoff
//! block at frame 0, the IDT-analog gate array behind it, the crash-kernel
//! image header, and the kernel header rooting each kernel's region.

use crate::cursor::{Cursor, CursorMut, LayoutError};
use crate::record::Record;
use crate::registry::LAYOUT_VERSION;
use ow_simhw::{PhysAddr, PhysMem};

/// Magic for [`HandoffBlock`].
pub const HANDOFF_MAGIC: u32 = 0x4f48_574f; // "OWHO"
/// Secondary validity stamp for the interrupt-descriptor-table analog. The
/// panic path refuses to run if this is corrupted — the paper's ~100
/// unprotected lines depend on the IDT and a few kernel page entries (§6).
pub const IDT_MAGIC: u32 = 0x3054_4449; // "IDT0"

/// Physical address of the handoff block.
pub const HANDOFF_ADDR: PhysAddr = 0;
/// Physical address of the per-CPU context save areas (frame 1).
pub const SAVE_AREA_ADDR: PhysAddr = 4096;
/// Number of frames reserved for handoff structures (block + save areas).
pub const HANDOFF_FRAMES: u64 = 2;

/// The fixed-location descriptor both kernels share: where the active
/// kernel's header lives and where the crash kernel image is loaded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandoffBlock {
    /// Layout generation the writing kernel serialized its structures
    /// under (see [`LAYOUT_VERSION`]). The crash kernel refuses a handoff
    /// stamped with a different generation instead of misparsing it — the
    /// prerequisite for hot-update microreboots across kernel builds (§7).
    pub layout_version: u32,
    /// Frame of the active kernel's [`KernelHeader`].
    pub active_kernel_frame: u64,
    /// First frame of the crash-kernel reservation.
    pub crash_base: u64,
    /// Size of the crash-kernel reservation in frames.
    pub crash_frames: u64,
    /// Non-zero when a bootable crash-kernel image is loaded.
    pub crash_entry_ok: u32,
    /// IDT-analog validity stamp; must equal [`IDT_MAGIC`].
    pub idt_stamp: u32,
    /// Physical address of the per-CPU context save areas.
    pub save_area: PhysAddr,
    /// Microreboot generation counter (0 = first boot).
    pub generation: u32,
    /// First frame of the flight-recorder trace region (0 = no tracing).
    pub trace_base: u64,
    /// Frames in the trace region.
    pub trace_frames: u64,
}

impl Record for HandoffBlock {
    const NAME: &'static str = "HandoffBlock";
    const MAGIC: u32 = HANDOFF_MAGIC;
    const VERSION: u32 = 2; // v2: layout_version field added after the magic
    const SIZE: u64 = 4 + 4 + 8 + 8 + 8 + 4 + 4 + 8 + 4 + 8 + 8;

    fn encode_body(&self, w: &mut CursorMut<'_>) -> Result<(), LayoutError> {
        w.u32(self.layout_version)?;
        w.u64(self.active_kernel_frame)?;
        w.u64(self.crash_base)?;
        w.u64(self.crash_frames)?;
        w.u32(self.crash_entry_ok)?;
        w.u32(self.idt_stamp)?;
        w.u64(self.save_area)?;
        w.u32(self.generation)?;
        w.u64(self.trace_base)?;
        w.u64(self.trace_frames)?;
        Ok(())
    }

    fn decode_body(c: &mut Cursor<'_>) -> Result<Self, LayoutError> {
        Ok(HandoffBlock {
            layout_version: c.u32()?,
            active_kernel_frame: c.u64()?,
            crash_base: c.u64()?,
            crash_frames: c.u64()?,
            crash_entry_ok: c.u32()?,
            idt_stamp: c.u32()?,
            save_area: c.u64()?,
            generation: c.u32()?,
            trace_base: c.u64()?,
            trace_frames: c.u64()?,
        })
    }

    fn validate(&self, phys: &PhysMem, addr: PhysAddr) -> Result<(), LayoutError> {
        if self.active_kernel_frame >= phys.frames() {
            return Err(LayoutError::BadValue {
                structure: Self::NAME,
                field: "active_kernel_frame",
                addr,
            });
        }
        Ok(())
    }
}

impl HandoffBlock {
    /// Writes the block at [`HANDOFF_ADDR`].
    pub fn write(&self, phys: &mut PhysMem) -> Result<(), LayoutError> {
        Record::write(self, phys, HANDOFF_ADDR)
    }

    /// Reads and validates the block from [`HANDOFF_ADDR`].
    pub fn read(phys: &PhysMem) -> Result<(Self, u64), LayoutError> {
        <Self as Record>::read(phys, HANDOFF_ADDR)
    }

    /// Whether the block was stamped by a kernel of this build's layout
    /// generation (and is therefore safe to parse structures through).
    pub fn same_generation(&self) -> bool {
        self.layout_version == LAYOUT_VERSION
    }
}

/// First byte of the IDT gate array within the handoff frame (after the
/// [`HandoffBlock`]).
pub const IDT_GATES_OFF: u64 = 256;
/// Gate-entry stamp: every 8-byte gate must carry this value.
pub const IDT_GATE_STAMP: u64 = 0x4554_4147_5f54_4449; // "IDT_GATE"

/// Fills the IDT-analog gate array (done once at cold boot).
///
/// On real hardware the IDT is a full page of gate descriptors and *all* of
/// it is load-bearing: timer interrupts and exceptions fire constantly, so
/// a wild write anywhere in the page soon triple-faults the machine. The
/// panic path (§3.2) depends on NMI delivery through this table — its
/// corruption is the paper's main cause of "failure to boot the crash
/// kernel" (§6).
pub fn write_idt_gates(phys: &mut PhysMem) -> Result<(), LayoutError> {
    let mut addr = IDT_GATES_OFF;
    while addr + 8 <= 4096 {
        phys.write_u64(addr, IDT_GATE_STAMP)?;
        addr += 8;
    }
    Ok(())
}

/// Validates every IDT gate; any corrupted gate means interrupt delivery
/// (and therefore the NMI broadcast) cannot be trusted.
pub fn idt_gates_valid(phys: &PhysMem) -> bool {
    let mut addr = IDT_GATES_OFF;
    while addr + 8 <= 4096 {
        match phys.read_u64(addr) {
            Ok(v) if v == IDT_GATE_STAMP => addr += 8,
            _ => return false,
        }
    }
    true
}

/// Magic for the loaded crash-kernel image.
pub const CRASH_IMAGE_MAGIC: u32 = 0x4943_574f; // "OWCI"

/// Header of the passive crash-kernel image sitting in its reservation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashImageHeader {
    /// Image format version.
    pub version: u32,
    /// Non-zero when the entry point is intact.
    pub entry_valid: u32,
}

impl Record for CrashImageHeader {
    const NAME: &'static str = "CrashImageHeader";
    const MAGIC: u32 = CRASH_IMAGE_MAGIC;
    const VERSION: u32 = 1;
    const SIZE: u64 = 4 + 4 + 4;

    fn encode_body(&self, w: &mut CursorMut<'_>) -> Result<(), LayoutError> {
        w.u32(self.version)?;
        w.u32(self.entry_valid)?;
        Ok(())
    }

    fn decode_body(c: &mut Cursor<'_>) -> Result<Self, LayoutError> {
        Ok(CrashImageHeader {
            version: c.u32()?,
            entry_valid: c.u32()?,
        })
    }
}

/// Magic for [`KernelHeader`].
pub const KERNEL_HEADER_MAGIC: u32 = 0x484b_574f; // "OWKH"

/// The root structure of a running kernel, at the start of its region.
///
/// Linux equivalent: the fixed, compile-time kernel start address through
/// which the crash kernel locates the process list and swap descriptors
/// (§3.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelHeader {
    /// Kernel version (both kernels are built from the same source).
    pub version: u32,
    /// First frame of this kernel's region.
    pub base_frame: u64,
    /// Frames in this kernel's region.
    pub nframes: u64,
    /// Physical address of the first [`super::ProcDesc`] (0 = empty list).
    pub proc_head: PhysAddr,
    /// Number of processes on the list (cross-check for walking).
    pub nprocs: u64,
    /// Physical address of the swap-descriptor array.
    pub swap_array: PhysAddr,
    /// Number of swap descriptors.
    pub nswap: u32,
    /// Whether this kernel booted as a crash kernel.
    pub is_crash: u32,
    /// Physical address of the terminal-descriptor array.
    pub term_table: PhysAddr,
    /// Number of terminal descriptors.
    pub nterms: u32,
    /// Physical address of the pipe-descriptor array.
    pub pipe_table: PhysAddr,
    /// Number of pipe descriptors.
    pub npipes: u32,
}

impl Record for KernelHeader {
    const NAME: &'static str = "KernelHeader";
    const MAGIC: u32 = KERNEL_HEADER_MAGIC;
    const VERSION: u32 = 1;
    const SIZE: u64 = 4 + 4 + 8 + 8 + 8 + 8 + 8 + 4 + 4 + 8 + 4 + 8 + 4 + 4;

    fn encode_body(&self, w: &mut CursorMut<'_>) -> Result<(), LayoutError> {
        w.u32(self.version)?;
        w.u64(self.base_frame)?;
        w.u64(self.nframes)?;
        w.u64(self.proc_head)?;
        w.u64(self.nprocs)?;
        w.u64(self.swap_array)?;
        w.u32(self.nswap)?;
        w.u32(self.is_crash)?;
        w.u64(self.term_table)?;
        w.u32(self.nterms)?;
        w.u64(self.pipe_table)?;
        w.u32(self.npipes)?;
        w.u32(0)?; // padding
        Ok(())
    }

    fn decode_body(c: &mut Cursor<'_>) -> Result<Self, LayoutError> {
        let h = KernelHeader {
            version: c.u32()?,
            base_frame: c.u64()?,
            nframes: c.u64()?,
            proc_head: c.u64()?,
            nprocs: c.u64()?,
            swap_array: c.u64()?,
            nswap: c.u32()?,
            is_crash: c.u32()?,
            term_table: c.u64()?,
            nterms: c.u32()?,
            pipe_table: c.u64()?,
            npipes: c.u32()?,
        };
        let _pad = c.u32()?;
        Ok(h)
    }

    fn validate(&self, _phys: &PhysMem, addr: PhysAddr) -> Result<(), LayoutError> {
        if self.nprocs > 4096 {
            return Err(LayoutError::BadValue {
                structure: Self::NAME,
                field: "nprocs",
                addr,
            });
        }
        if self.nswap > 8 || self.nterms > 64 || self.npipes > 64 {
            return Err(LayoutError::BadValue {
                structure: Self::NAME,
                field: "nswap/nterms/npipes",
                addr,
            });
        }
        Ok(())
    }
}
