//! Process-side structures: the process descriptor, memory-region
//! descriptors and the signal-handler table.

use super::{NAME_LEN, NSIG};
use crate::crc::crc32;
use crate::cursor::{pack_str, unpack_str, Cursor, CursorMut, LayoutError};
use crate::record::Record;
use ow_simhw::{PhysAddr, PhysMem};

/// Magic for [`ProcDesc`].
pub const PROC_MAGIC: u32 = 0x434f_5250; // "PROC"

/// Process run state, mirrored into memory.
pub mod pstate {
    /// Runnable / running.
    pub const RUNNABLE: u32 = 1;
    /// Blocked in a system call.
    pub const BLOCKED: u32 = 2;
    /// Exited.
    pub const EXITED: u32 = 3;
}

/// Byte offsets of [`ProcDesc`] fields (single source of truth for the
/// kernel paths that update individual fields in place).
pub mod proc_off {
    use super::NAME_LEN;
    /// `state` field.
    pub const STATE: u64 = 4;
    /// `pid` field.
    pub const PID: u64 = 8;
    /// `name` field.
    pub const NAME: u64 = 16;
    /// `crash_proc` field.
    pub const CRASH_PROC: u64 = NAME + NAME_LEN as u64;
    /// `term_id` field.
    pub const TERM_ID: u64 = CRASH_PROC + 4;
    /// `page_root` field.
    pub const PAGE_ROOT: u64 = TERM_ID + 4;
    /// `mm_head` field.
    pub const MM_HEAD: u64 = PAGE_ROOT + 8;
    /// `files` field.
    pub const FILES: u64 = MM_HEAD + 8;
    /// `sig` field.
    pub const SIG: u64 = FILES + 8;
    /// `shm_head` field.
    pub const SHM_HEAD: u64 = SIG + 8;
    /// `sock_head` field.
    pub const SOCK_HEAD: u64 = SHM_HEAD + 8;
    /// `res_in_use` field.
    pub const RES_IN_USE: u64 = SOCK_HEAD + 8;
    /// `in_syscall` field.
    pub const IN_SYSCALL: u64 = RES_IN_USE + 4;
    /// `saved_pc` field.
    pub const SAVED_PC: u64 = IN_SYSCALL + 4;
    /// `saved_sp` field.
    pub const SAVED_SP: u64 = SAVED_PC + 8;
    /// `saved_regs` field.
    pub const SAVED_REGS: u64 = SAVED_SP + 8;
    /// `checksum` field (0 = checksums disabled).
    pub const CHECKSUM: u64 = SAVED_REGS + 8 * 8;
    /// `next` field.
    pub const NEXT: u64 = CHECKSUM + 8;
}

/// A process descriptor (Linux `task_struct` analog).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcDesc {
    /// Process id.
    pub pid: u64,
    /// Run state (see [`pstate`]).
    pub state: u32,
    /// Process name — also the executable identity for rehydration.
    pub name: String,
    /// Non-zero when the application registered a crash procedure (§3.4).
    pub crash_proc: u32,
    /// Root frame of the process page tables.
    pub page_root: u64,
    /// Physical address of the first [`super::VmaDesc`] (0 = none).
    pub mm_head: PhysAddr,
    /// Physical address of the [`super::FileTable`].
    pub files: PhysAddr,
    /// Physical address of the [`SigTable`].
    pub sig: PhysAddr,
    /// Attached terminal id (`u32::MAX` = none).
    pub term_id: u32,
    /// Physical address of the first attached [`super::ShmDesc`] (0 = none).
    pub shm_head: PhysAddr,
    /// Physical address of the first [`super::SockDesc`] (0 = none).
    pub sock_head: PhysAddr,
    /// Bitmask of resource types the process currently uses that the crash
    /// kernel cannot resurrect (see [`super::resmask`]).
    pub res_in_use: u32,
    /// Non-zero while the process is executing a system call; holds the
    /// syscall number + 1.
    pub in_syscall: u32,
    /// Saved user context: program counter (resume step index).
    pub saved_pc: u64,
    /// Saved user stack pointer.
    pub saved_sp: u64,
    /// Saved general-purpose registers.
    pub saved_regs: [u64; 8],
    /// Optional integrity checksum over the descriptor (§4 hardening;
    /// 0 = checksums disabled). Excludes the `checksum` and `next` fields.
    pub checksum: u64,
    /// Next process on the list (0 = end).
    pub next: PhysAddr,
}

impl Record for ProcDesc {
    const NAME: &'static str = "ProcDesc";
    const MAGIC: u32 = PROC_MAGIC;
    const VERSION: u32 = 2; // v2: §4 checksum switched from FNV-1a to CRC-32
    const SIZE: u64 = proc_off::NEXT + 8;

    fn encode_body(&self, w: &mut CursorMut<'_>) -> Result<(), LayoutError> {
        w.u32(self.state)?;
        w.u64(self.pid)?;
        w.bytes(&pack_str::<NAME_LEN>(&self.name))?;
        w.u32(self.crash_proc)?;
        w.u32(self.term_id)?;
        w.u64(self.page_root)?;
        w.u64(self.mm_head)?;
        w.u64(self.files)?;
        w.u64(self.sig)?;
        w.u64(self.shm_head)?;
        w.u64(self.sock_head)?;
        w.u32(self.res_in_use)?;
        w.u32(self.in_syscall)?;
        w.u64(self.saved_pc)?;
        w.u64(self.saved_sp)?;
        for r in self.saved_regs {
            w.u64(r)?;
        }
        w.u64(self.checksum)?;
        w.u64(self.next)?;
        Ok(())
    }

    fn decode_body(c: &mut Cursor<'_>) -> Result<Self, LayoutError> {
        let state = c.u32()?;
        let pid = c.u64()?;
        let name = unpack_str(&c.bytes::<NAME_LEN>()?);
        let crash_proc = c.u32()?;
        let term_id = c.u32()?;
        let page_root = c.u64()?;
        let mm_head = c.u64()?;
        let files = c.u64()?;
        let sig = c.u64()?;
        let shm_head = c.u64()?;
        let sock_head = c.u64()?;
        let res_in_use = c.u32()?;
        let in_syscall = c.u32()?;
        let saved_pc = c.u64()?;
        let saved_sp = c.u64()?;
        let mut saved_regs = [0u64; 8];
        for r in &mut saved_regs {
            *r = c.u64()?;
        }
        let checksum = c.u64()?;
        let next = c.u64()?;
        Ok(ProcDesc {
            pid,
            state,
            name,
            crash_proc,
            page_root,
            mm_head,
            files,
            sig,
            term_id,
            shm_head,
            sock_head,
            res_in_use,
            in_syscall,
            saved_pc,
            saved_sp,
            saved_regs,
            checksum,
            next,
        })
    }

    fn validate(&self, phys: &PhysMem, addr: PhysAddr) -> Result<(), LayoutError> {
        if !(pstate::RUNNABLE..=pstate::EXITED).contains(&self.state) {
            return Err(LayoutError::BadValue {
                structure: Self::NAME,
                field: "state",
                addr,
            });
        }
        if self.page_root >= phys.frames() {
            return Err(LayoutError::BadValue {
                structure: Self::NAME,
                field: "page_root",
                addr,
            });
        }
        // §4 hardening: when a checksum is maintained, corruption anywhere
        // in the covered extent is detected even if it passed the shallower
        // plausibility checks above. The CRC runs over the *raw encoded
        // bytes* rather than the decoded value, so corruption that decoding
        // normalizes away (e.g. garbage in the name field's zero padding)
        // is still caught.
        if self.checksum != 0 {
            let mut covered = vec![0u8; (proc_off::CHECKSUM - proc_off::STATE) as usize];
            phys.read(addr + proc_off::STATE, &mut covered)
                .map_err(LayoutError::Mem)?;
            if (crc32(&covered) as u64 | (1 << 32)) != self.checksum {
                return Err(LayoutError::BadValue {
                    structure: Self::NAME,
                    field: "checksum",
                    addr,
                });
            }
        }
        Ok(())
    }
}

impl ProcDesc {
    /// Computes the §4 integrity checksum over the descriptor's contents
    /// (excluding the `checksum` and `next` fields, which the kernel
    /// updates through checksum-aware paths of their own).
    ///
    /// The guard is the system-wide shared [`crc32`] over the covered
    /// fields serialized exactly as [`Record::encode_body`] lays them out
    /// (bytes `[proc_off::STATE, proc_off::CHECKSUM)` of the encoding), so
    /// [`Record::validate`] can check it against the raw bytes in memory.
    /// The value is widened with a marker bit so a valid checksum is never
    /// zero (zero means "disabled").
    pub fn compute_checksum(&self) -> u64 {
        let mut bytes = Vec::with_capacity(Self::SIZE as usize);
        bytes.extend_from_slice(&self.state.to_le_bytes());
        bytes.extend_from_slice(&self.pid.to_le_bytes());
        bytes.extend_from_slice(&pack_str::<NAME_LEN>(&self.name));
        bytes.extend_from_slice(&self.crash_proc.to_le_bytes());
        bytes.extend_from_slice(&self.term_id.to_le_bytes());
        bytes.extend_from_slice(&self.page_root.to_le_bytes());
        bytes.extend_from_slice(&self.mm_head.to_le_bytes());
        bytes.extend_from_slice(&self.files.to_le_bytes());
        bytes.extend_from_slice(&self.sig.to_le_bytes());
        bytes.extend_from_slice(&self.shm_head.to_le_bytes());
        bytes.extend_from_slice(&self.sock_head.to_le_bytes());
        bytes.extend_from_slice(&self.res_in_use.to_le_bytes());
        bytes.extend_from_slice(&self.in_syscall.to_le_bytes());
        bytes.extend_from_slice(&self.saved_pc.to_le_bytes());
        bytes.extend_from_slice(&self.saved_sp.to_le_bytes());
        for r in self.saved_regs {
            bytes.extend_from_slice(&r.to_le_bytes());
        }
        crc32(&bytes) as u64 | (1 << 32)
    }
}

/// Magic for [`VmaDesc`].
pub const VMA_MAGIC: u32 = 0x3041_4d56; // "VMA0"

/// VMA flag bits.
pub mod vmaflags {
    /// Region is readable.
    pub const READ: u64 = 1 << 0;
    /// Region is writable.
    pub const WRITE: u64 = 1 << 1;
    /// Region is shared (e.g. shm attach).
    pub const SHARED: u64 = 1 << 2;
    /// Region is a file mapping.
    pub const FILE: u64 = 1 << 3;
    /// Region grows down (stack).
    pub const STACK: u64 = 1 << 4;
}

/// A memory-region descriptor (Linux `vm_area_struct` analog).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmaDesc {
    /// Start virtual address (page-aligned).
    pub start: u64,
    /// End virtual address (exclusive, page-aligned).
    pub end: u64,
    /// Flag bits (see [`vmaflags`]).
    pub flags: u64,
    /// Backing [`super::FileRecord`] for file mappings (0 = anonymous).
    pub file: PhysAddr,
    /// Offset of the mapping within the backing file.
    pub file_off: u64,
    /// Next region (0 = end of list).
    pub next: PhysAddr,
}

impl Record for VmaDesc {
    const NAME: &'static str = "VmaDesc";
    const MAGIC: u32 = VMA_MAGIC;
    const VERSION: u32 = 1;
    const SIZE: u64 = 4 + 4 + 8 * 6;

    fn encode_body(&self, w: &mut CursorMut<'_>) -> Result<(), LayoutError> {
        w.u32(0)?;
        w.u64(self.start)?;
        w.u64(self.end)?;
        w.u64(self.flags)?;
        w.u64(self.file)?;
        w.u64(self.file_off)?;
        w.u64(self.next)?;
        Ok(())
    }

    fn decode_body(c: &mut Cursor<'_>) -> Result<Self, LayoutError> {
        let _pad = c.u32()?;
        Ok(VmaDesc {
            start: c.u64()?,
            end: c.u64()?,
            flags: c.u64()?,
            file: c.u64()?,
            file_off: c.u64()?,
            next: c.u64()?,
        })
    }

    fn validate(&self, _phys: &PhysMem, addr: PhysAddr) -> Result<(), LayoutError> {
        if self.start >= self.end
            || !self.start.is_multiple_of(4096)
            || !self.end.is_multiple_of(4096)
            || self.end > ow_simhw::paging::VA_LIMIT
        {
            return Err(LayoutError::BadValue {
                structure: Self::NAME,
                field: "start/end",
                addr,
            });
        }
        Ok(())
    }
}

/// Magic for [`SigTable`].
pub const SIG_MAGIC: u32 = 0x5447_4953; // "SIGT"

/// A process's signal-handler table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SigTable {
    /// Handler slot per signal (0 = default, otherwise an application
    /// handler token).
    pub handlers: [u64; NSIG],
}

impl Record for SigTable {
    const NAME: &'static str = "SigTable";
    const MAGIC: u32 = SIG_MAGIC;
    const VERSION: u32 = 1;
    const SIZE: u64 = 4 + 4 + 8 * NSIG as u64;

    fn encode_body(&self, w: &mut CursorMut<'_>) -> Result<(), LayoutError> {
        w.u32(0)?;
        for h in self.handlers {
            w.u64(h)?;
        }
        Ok(())
    }

    fn decode_body(c: &mut Cursor<'_>) -> Result<Self, LayoutError> {
        let _pad = c.u32()?;
        let mut handlers = [0u64; NSIG];
        for h in &mut handlers {
            *h = c.u64()?;
        }
        Ok(SigTable { handlers })
    }
}
