//! End-to-end microreboot tests: a program survives a kernel panic with its
//! memory, files, terminal and signal handlers intact, and continues from
//! the exact point of interruption.

use ow_core::{
    microreboot, Otherworld, OtherworldConfig, PolicySource, ResurrectionPolicy,
    ResurrectionStrategy,
};
use ow_kernel::{
    layout::oflags,
    program::{Program, ProgramRegistry, StepResult, UserApi, PROG_STATE_VADDR},
    Kernel, KernelConfig, PanicCause, SpawnSpec,
};
use ow_simhw::machine::MachineConfig;

/// A program that counts in user memory and logs milestones to a file.
struct Counter {
    target: u64,
}

const COUNT_ADDR: u64 = PROG_STATE_VADDR + 8;

impl Program for Counter {
    fn step(&mut self, api: &mut dyn UserApi) -> StepResult {
        let c = match api.mem_read_u64(COUNT_ADDR) {
            Ok(c) => c,
            Err(_) => return StepResult::Running,
        };
        let next = c + 1;
        if api.mem_write_u64(COUNT_ADDR, next).is_err() {
            return StepResult::Running;
        }
        // Log every 5th count to a file (exercises the page cache).
        if next % 5 == 0 {
            if let Ok(fd) = api.open(
                "/counter.log",
                oflags::WRITE | oflags::CREATE | oflags::APPEND,
            ) {
                let _ = api.write(fd, format!("count={next}\n").as_bytes());
                let _ = api.close(fd);
            }
        }
        if next >= self.target {
            StepResult::Exited(0)
        } else {
            StepResult::Running
        }
    }

    fn save_state(&mut self, _api: &mut dyn UserApi) {
        // All state already lives in user memory.
    }
}

fn registry() -> ProgramRegistry {
    let mut r = ProgramRegistry::new();
    r.register(
        "counter",
        |api, _args| {
            api.mem_write_u64(COUNT_ADDR, 0).expect("init count");
            Box::new(Counter { target: 1_000_000 })
        },
        |_api| Box::new(Counter { target: 1_000_000 }),
    );
    r
}

fn boot() -> Kernel {
    let machine = ow_kernel::standard_machine(MachineConfig {
        ram_frames: 4096, // 16 MiB
        cpus: 2,
        tlb_entries: 64,
        tlb_tagged: true,
        cost: ow_simhw::CostModel::zero_io(),
    });
    Kernel::boot_cold(machine, KernelConfig::default(), registry()).expect("cold boot")
}

fn count_of(k: &mut Kernel, pid: u64) -> u64 {
    let mut buf = [0u8; 8];
    k.user_read(pid, COUNT_ADDR, &mut buf).expect("read count");
    u64::from_le_bytes(buf)
}

#[test]
fn program_survives_microreboot_and_continues() {
    let mut k = boot();
    let pid = {
        let mut spec = SpawnSpec::new("counter", Box::new(Counter { target: 1_000_000 }));
        spec.heap_pages = 16;
        let pid = k.spawn(spec).unwrap();
        // Initialize like the fresh factory would.
        k.user_write(pid, COUNT_ADDR, &0u64.to_le_bytes()).unwrap();
        pid
    };

    for _ in 0..10 {
        k.run_step();
    }
    assert_eq!(count_of(&mut k, pid), 10);

    // Kernel panics.
    k.do_panic(PanicCause::Oops("test oops"));
    assert!(k.panicked.is_some());

    // Microreboot.
    let (mut k2, report) = microreboot(k_into(k), &OtherworldConfig::default()).unwrap();
    let proc_report = report
        .proc_named("counter")
        .expect("counter was resurrected");
    assert!(
        proc_report.outcome.is_success(),
        "outcome: {:?}",
        proc_report.outcome
    );
    assert_eq!(
        proc_report.outcome,
        ow_core::ProcOutcome::ContinuedTransparently
    );
    let new_pid = proc_report.new_pid.unwrap();

    // The count survived — not reset to zero.
    assert_eq!(count_of(&mut k2, new_pid), 10);

    // And execution continues from the interruption point.
    for _ in 0..10 {
        k2.run_step();
    }
    assert_eq!(count_of(&mut k2, new_pid), 20);
    assert!(k2.panicked.is_none());
    assert_eq!(k2.generation, 1);
}

// Helper: moves a kernel (microreboot consumes it).
fn k_into(k: Kernel) -> Kernel {
    k
}

#[test]
fn dirty_file_buffers_are_flushed_during_resurrection() {
    let mut k = boot();
    let pid = k
        .spawn(SpawnSpec::new(
            "counter",
            Box::new(Counter { target: 1_000_000 }),
        ))
        .unwrap();
    k.user_write(pid, COUNT_ADDR, &0u64.to_le_bytes()).unwrap();

    // Run enough steps to write "count=5" and "count=10" into the page
    // cache; do NOT fsync.
    for _ in 0..10 {
        k.run_step();
    }

    k.do_panic(PanicCause::Oops("dirty buffers"));
    let (mut k2, report) = microreboot(k_into(k), &OtherworldConfig::default()).unwrap();
    assert!(report.all_succeeded());

    // The log content must be durable on the re-mounted filesystem.
    let fs = k2.fs.clone();
    let ino = fs
        .lookup(&mut k2.machine, "/counter.log")
        .unwrap()
        .expect("log exists");
    let size = fs.size_of(&mut k2.machine, ino).unwrap();
    let mut buf = vec![0u8; size as usize];
    fs.read_at(&mut k2.machine, ino, 0, &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert!(text.contains("count=5"), "log: {text}");
    assert!(text.contains("count=10"), "log: {text}");
}

#[test]
fn swapped_pages_are_migrated_between_partitions() {
    let mut k = boot();
    let pid = k
        .spawn(SpawnSpec::new(
            "counter",
            Box::new(Counter { target: 1_000_000 }),
        ))
        .unwrap();
    k.user_write(pid, COUNT_ADDR, &0u64.to_le_bytes()).unwrap();
    for _ in 0..7 {
        k.run_step();
    }
    // Force the counter page out to swap0 (generation 0's partition).
    let (present_before, _) = k.page_census(pid).unwrap();
    assert!(present_before > 0);
    k.swap_out_pages(pid, present_before as usize).unwrap();
    let (present, swapped) = k.page_census(pid).unwrap();
    assert_eq!(present, 0);
    assert!(swapped > 0);

    k.do_panic(PanicCause::Oops("swapped"));
    let (mut k2, report) = microreboot(k_into(k), &OtherworldConfig::default()).unwrap();
    let pr = report.proc_named("counter").unwrap();
    assert!(pr.outcome.is_success());
    assert!(pr.pages_swapped > 0, "expected swap migration");
    let new_pid = pr.new_pid.unwrap();

    // Touching the page faults it in from the *new* partition.
    assert_eq!(count_of(&mut k2, new_pid), 7);
    for _ in 0..3 {
        k2.run_step();
    }
    assert_eq!(count_of(&mut k2, new_pid), 10);
}

#[test]
fn terminal_and_signals_are_restored() {
    let mut k = boot();
    let term = k.create_terminal().unwrap();
    let pid = {
        let mut spec = SpawnSpec::new("counter", Box::new(Counter { target: 1_000_000 }));
        spec.term = Some(term);
        k.spawn(spec).unwrap()
    };
    k.user_write(pid, COUNT_ADDR, &0u64.to_le_bytes()).unwrap();
    k.term_write(term, b"hello\nworld").unwrap();
    k.term_set(term, 0b101).unwrap();
    k.signal_install(pid, 2, 0xdead_beef).unwrap();

    k.do_panic(PanicCause::Oops("terminal"));
    let (k2, report) = microreboot(k_into(k), &OtherworldConfig::default()).unwrap();
    let pr = report.proc_named("counter").unwrap();
    assert!(pr.outcome.is_success());
    let new_pid = pr.new_pid.unwrap();

    let new_term = k2.read_desc(new_pid).unwrap().term_id;
    assert_ne!(new_term, u32::MAX);
    let screen = k2.term_screen(new_term).unwrap();
    let row0: String = screen[..5].iter().map(|&b| b as char).collect();
    let row1: String = screen[80..85].iter().map(|&b| b as char).collect();
    assert_eq!(row0, "hello");
    assert_eq!(row1, "world");
    assert_eq!(k2.term_settings(new_term).unwrap(), 0b101);
    assert_eq!(k2.signal_handler(new_pid, 2).unwrap(), 0xdead_beef);
}

#[test]
fn map_pages_strategy_also_preserves_memory() {
    let mut k = boot();
    let pid = k
        .spawn(SpawnSpec::new(
            "counter",
            Box::new(Counter { target: 1_000_000 }),
        ))
        .unwrap();
    k.user_write(pid, COUNT_ADDR, &0u64.to_le_bytes()).unwrap();
    for _ in 0..12 {
        k.run_step();
    }
    k.do_panic(PanicCause::Oops("map strategy"));
    let config = OtherworldConfig {
        strategy: ResurrectionStrategy::MapPages,
        ..OtherworldConfig::default()
    };
    let (mut k2, report) = microreboot(k_into(k), &config).unwrap();
    let pr = report.proc_named("counter").unwrap();
    assert!(pr.outcome.is_success());
    assert!(pr.pages_mapped > 0);
    assert_eq!(pr.pages_copied, 0);
    assert_eq!(count_of(&mut k2, pr.new_pid.unwrap()), 12);
}

#[test]
fn policy_skips_unselected_processes() {
    let mut k = boot();
    let pid_a = k
        .spawn(SpawnSpec::new(
            "counter",
            Box::new(Counter { target: 1_000_000 }),
        ))
        .unwrap();
    k.user_write(pid_a, COUNT_ADDR, &0u64.to_le_bytes())
        .unwrap();
    k.do_panic(PanicCause::Oops("policy"));
    let config = OtherworldConfig {
        policy: PolicySource::Inline(ResurrectionPolicy::only(["somethingelse"])),
        ..OtherworldConfig::default()
    };
    let (k2, report) = microreboot(k_into(k), &config).unwrap();
    assert!(report.procs.is_empty());
    assert!(k2.procs.is_empty());
}

#[test]
fn second_microreboot_also_works() {
    // The morphed kernel must itself be protected: survive a second panic.
    let mut ow = Otherworld::boot(
        MachineConfig {
            ram_frames: 4096,
            cpus: 2,
            tlb_entries: 64,
            tlb_tagged: true,
            cost: ow_simhw::CostModel::zero_io(),
        },
        KernelConfig::default(),
        OtherworldConfig::default(),
        registry(),
    )
    .unwrap();
    let pid = ow
        .kernel_mut()
        .spawn(SpawnSpec::new(
            "counter",
            Box::new(Counter { target: 1_000_000 }),
        ))
        .unwrap();
    ow.kernel_mut()
        .user_write(pid, COUNT_ADDR, &0u64.to_le_bytes())
        .unwrap();
    for _ in 0..5 {
        ow.kernel_mut().run_step();
    }
    ow.kernel_mut().do_panic(PanicCause::Oops("first"));
    ow.microreboot_now().unwrap();
    assert_eq!(ow.kernel().generation, 1);

    for _ in 0..5 {
        ow.kernel_mut().run_step();
    }
    let pid2 = ow.kernel().procs[0].pid;
    assert_eq!(count_of(ow.kernel_mut(), pid2), 10);

    ow.kernel_mut().do_panic(PanicCause::Oops("second"));
    ow.microreboot_now().unwrap();
    assert_eq!(ow.kernel().generation, 2);
    let pid3 = ow.kernel().procs[0].pid;
    for _ in 0..5 {
        ow.kernel_mut().run_step();
    }
    assert_eq!(count_of(ow.kernel_mut(), pid3), 15);
}

#[test]
fn halted_system_reports_failure() {
    let mut k = boot();
    // Corrupt the handoff block: the panic path cannot transfer control.
    k.machine.phys.corrupt_u64(0, 0xffff_ffff);
    let out = k.do_panic(PanicCause::Oops("no handoff"));
    assert!(matches!(out, ow_kernel::PanicOutcome::SystemHalted(_)));
    let err = microreboot(k_into(k), &OtherworldConfig::default()).unwrap_err();
    assert!(matches!(err, ow_core::MicrorebootFailure::SystemHalted(_)));
}
