//! Resurrection-supervisor integration tests: panic containment with
//! surviving siblings, the degradation ladder, the recovery watchdog, and
//! second-generation escalation — plus the per-stage timing report.

use ow_core::{
    microreboot, EnginePanicFault, LadderRung, MicrorebootFailure, OtherworldConfig, ProcOutcome,
    RecoveryFaultPlan, StallFault, SupervisorConfig,
};
use ow_kernel::{
    program::{Program, ProgramRegistry, StepResult, UserApi, PROG_STATE_VADDR},
    Kernel, KernelConfig, PanicCause, SpawnSpec,
};
use ow_simhw::{clock::CYCLES_PER_SEC, machine::MachineConfig};

const COUNT_ADDR: u64 = PROG_STATE_VADDR + 8;

/// A well-behaved program: counts in user memory.
struct Counter;

impl Program for Counter {
    fn step(&mut self, api: &mut dyn UserApi) -> StepResult {
        if let Ok(c) = api.mem_read_u64(COUNT_ADDR) {
            let _ = api.mem_write_u64(COUNT_ADDR, c + 1);
        }
        StepResult::Running
    }
    fn save_state(&mut self, _api: &mut dyn UserApi) {}
}

fn registry(bomb_fresh_too: bool) -> ProgramRegistry {
    let mut r = ProgramRegistry::new();
    r.register(
        "counter",
        |api, _args| {
            api.mem_write_u64(COUNT_ADDR, 0).expect("init count");
            Box::new(Counter)
        },
        |_api| Box::new(Counter),
    );
    // "bomb": resurrectable memory image, but its rehydration factory
    // deterministically panics the resurrection engine — the descriptor
    // corruption scenario the supervisor must contain.
    if bomb_fresh_too {
        r.register(
            "bomb",
            |_api, _args| -> Box<dyn Program> { panic!("bomb fresh factory") },
            |_api| -> Box<dyn Program> { panic!("bomb rehydrate") },
        );
    } else {
        r.register(
            "bomb",
            |api, _args| {
                api.mem_write_u64(COUNT_ADDR, 0).expect("init count");
                Box::new(Counter)
            },
            |_api| -> Box<dyn Program> { panic!("bomb rehydrate") },
        );
    }
    r
}

fn boot(bomb_fresh_too: bool) -> Kernel {
    let machine = ow_kernel::standard_machine(MachineConfig {
        ram_frames: 4096, // 16 MiB
        cpus: 2,
        tlb_entries: 64,
        tlb_tagged: true,
        cost: ow_simhw::CostModel::zero_io(),
    });
    Kernel::boot_cold(machine, KernelConfig::default(), registry(bomb_fresh_too))
        .expect("cold boot")
}

fn spawn(k: &mut Kernel, name: &str) -> u64 {
    let mut spec = SpawnSpec::new(name, Box::new(Counter));
    spec.heap_pages = 8;
    let pid = k.spawn(spec).unwrap();
    k.user_write(pid, COUNT_ADDR, &0u64.to_le_bytes()).unwrap();
    pid
}

fn sup_config(enabled: bool) -> OtherworldConfig {
    OtherworldConfig {
        supervisor: SupervisorConfig {
            enabled,
            ..SupervisorConfig::default()
        },
        ..OtherworldConfig::default()
    }
}

#[test]
fn bomb_panic_is_contained_and_sibling_still_resurrects() {
    let mut k = boot(false);
    spawn(&mut k, "counter");
    spawn(&mut k, "bomb");
    for _ in 0..6 {
        k.run_step();
    }
    k.do_panic(PanicCause::Oops("supervisor test"));

    let (_k2, report) = microreboot(k, &sup_config(true)).expect("microreboot survives the bomb");

    // The sibling is untouched: full-rung transparent resurrection.
    let counter = report.proc_named("counter").expect("counter report");
    assert_eq!(counter.outcome, ProcOutcome::ContinuedTransparently);
    assert_eq!(counter.rung, LadderRung::Full);
    assert_eq!(counter.attempts, 1);

    // The bomb panicked the engine at every rung (rehydration runs inside
    // the containment boundary), then came back as a clean restart.
    let bomb = report.proc_named("bomb").expect("bomb report");
    assert_eq!(bomb.outcome, ProcOutcome::RestartedClean);
    assert_eq!(bomb.rung, LadderRung::CleanRestart);
    assert_eq!(bomb.attempts, 4, "full, no-swap, anon-only, clean restart");
    assert_eq!(report.supervisor.contained_panics, 3);
    assert!(!report.supervisor.escalated, "one bad process is no storm");
}

#[test]
fn bomb_whose_fresh_factory_also_panics_costs_only_itself() {
    let mut k = boot(true);
    spawn(&mut k, "counter");
    spawn(&mut k, "bomb");
    for _ in 0..6 {
        k.run_step();
    }
    k.do_panic(PanicCause::Oops("supervisor test"));

    let (_k2, report) = microreboot(k, &sup_config(true)).expect("microreboot survives");
    let counter = report.proc_named("counter").expect("counter report");
    assert_eq!(counter.outcome, ProcOutcome::ContinuedTransparently);
    let bomb = report.proc_named("bomb").expect("bomb report");
    assert!(
        matches!(bomb.outcome, ProcOutcome::FailedCorrupt(_)),
        "even the clean-restart panic is contained: {:?}",
        bomb.outcome
    );
}

#[test]
fn supervisor_off_engine_panic_is_a_classified_failure_not_a_panic() {
    let mut k = boot(false);
    spawn(&mut k, "bomb");
    for _ in 0..4 {
        k.run_step();
    }
    k.do_panic(PanicCause::Oops("supervisor test"));

    // Even unsupervised, the panic must not unwind out of microreboot():
    // the boundary containment still classifies it.
    let err = microreboot(k, &sup_config(false)).expect_err("must fail");
    assert!(
        matches!(err, MicrorebootFailure::RecoveryFailed(_)),
        "got: {err:?}"
    );
}

#[test]
fn injected_engine_panic_degrades_one_rung_and_keeps_state() {
    let mut k = boot(false);
    let pid = spawn(&mut k, "counter");
    for _ in 0..8 {
        k.run_step();
    }
    let mut buf = [0u8; 8];
    k.user_read(pid, COUNT_ADDR, &mut buf).unwrap();
    let count_before = u64::from_le_bytes(buf);
    assert!(count_before > 0);
    k.do_panic(PanicCause::Oops("supervisor test"));

    let mut config = sup_config(true);
    config.recovery_faults = RecoveryFaultPlan {
        engine_panics: vec![EnginePanicFault {
            victim: 0,
            panics_through: LadderRung::Full,
        }],
        ..RecoveryFaultPlan::default()
    };
    let (mut k2, report) = microreboot(k, &config).expect("microreboot");
    let pr = report.proc_named("counter").expect("counter report");
    assert_eq!(pr.rung, LadderRung::NoSwapMigration, "one rung weaker");
    assert_eq!(pr.attempts, 2);
    // No swapped pages existed, so the weaker rung lost nothing: the count
    // survived in resurrected anonymous memory.
    assert_eq!(pr.outcome, ProcOutcome::ContinuedTransparently);
    let new_pid = pr.new_pid.unwrap();
    k2.user_read(new_pid, COUNT_ADDR, &mut buf).unwrap();
    assert_eq!(u64::from_le_bytes(buf), count_before);
}

#[test]
fn stall_is_cut_off_by_the_watchdog_and_degrades() {
    let mut k = boot(false);
    spawn(&mut k, "counter");
    for _ in 0..4 {
        k.run_step();
    }
    k.do_panic(PanicCause::Oops("supervisor test"));

    let mut config = sup_config(true);
    config.recovery_faults = RecoveryFaultPlan {
        stalls: vec![StallFault {
            victim: 0,
            cycles: 600 * CYCLES_PER_SEC,
        }],
        ..RecoveryFaultPlan::default()
    };
    let (_k2, report) = microreboot(k, &config).expect("microreboot");
    assert_eq!(report.supervisor.watchdog_fires, 1);
    let pr = report.proc_named("counter").expect("counter report");
    assert_eq!(pr.rung, LadderRung::NoSwapMigration);
    assert_eq!(pr.outcome, ProcOutcome::ContinuedTransparently);
}

#[test]
fn stall_without_supervisor_fails_the_microreboot_classified() {
    let mut k = boot(false);
    spawn(&mut k, "counter");
    for _ in 0..4 {
        k.run_step();
    }
    k.do_panic(PanicCause::Oops("supervisor test"));

    let mut config = sup_config(false);
    config.recovery_faults = RecoveryFaultPlan {
        stalls: vec![StallFault {
            victim: 0,
            cycles: 600 * CYCLES_PER_SEC,
        }],
        ..RecoveryFaultPlan::default()
    };
    let err = microreboot(k, &config).expect_err("must fail");
    assert!(
        matches!(err, MicrorebootFailure::RecoveryFailed(_)),
        "got: {err:?}"
    );
}

#[test]
fn crash_boot_failure_escalates_to_restart_only_generation_2() {
    let mut k = boot(false);
    spawn(&mut k, "counter");
    for _ in 0..4 {
        k.run_step();
    }
    k.do_panic(PanicCause::Oops("supervisor test"));

    let mut config = sup_config(true);
    config.recovery_faults = RecoveryFaultPlan {
        crash_boot_failures: 1,
        ..RecoveryFaultPlan::default()
    };
    let (k2, report) = microreboot(k, &config).expect("generation 2 keeps the machine alive");
    assert!(report.supervisor.escalated);
    assert_eq!(report.supervisor.crash_boot_attempts, 2);
    // Restart-only: the application is running again, but from a fresh
    // image — not counted as a resurrection.
    let pr = report.proc_named("counter").expect("counter report");
    assert_eq!(pr.outcome, ProcOutcome::RestartedClean);
    assert_eq!(pr.rung, LadderRung::CleanRestart);
    assert!(k2.procs.iter().any(|p| p.name == "counter"));
}

#[test]
fn crash_boot_failure_without_supervisor_is_fatal() {
    let mut k = boot(false);
    spawn(&mut k, "counter");
    for _ in 0..4 {
        k.run_step();
    }
    k.do_panic(PanicCause::Oops("supervisor test"));

    let mut config = sup_config(false);
    config.recovery_faults = RecoveryFaultPlan {
        crash_boot_failures: 1,
        ..RecoveryFaultPlan::default()
    };
    let err = microreboot(k, &config).expect_err("must fail");
    assert!(
        matches!(err, MicrorebootFailure::CrashBootFailed(_)),
        "got: {err:?}"
    );
}

#[test]
fn six_generations_survive_without_leaking_frames() {
    // Regression test for morph's frame reclamation: pids restart at 1 in
    // every generation, so reclaiming by frame *tag* kept dead generations'
    // page tables alive (a few frames leaked per microreboot) until RAM was
    // too fragmented to place the next contiguous crash reservation —
    // microreboots died of old age around generation 5. Reclamation now
    // walks live address spaces instead; the free-frame count must be
    // steady across generations and the bomb contained in each.
    let mut k = boot(false);
    spawn(&mut k, "counter");
    spawn(&mut k, "bomb");
    let mut free_frames = Vec::new();
    for generation in 1..=6 {
        for _ in 0..6 {
            k.run_step();
        }
        k.do_panic(PanicCause::Oops("generation loop"));
        let (k2, report) = microreboot(k, &sup_config(true)).expect("microreboot");
        k = k2;
        assert_eq!(report.generation, generation);
        let counter = report.proc_named("counter").expect("counter report");
        assert_eq!(counter.outcome, ProcOutcome::ContinuedTransparently);
        let bomb = report.proc_named("bomb").expect("bomb report");
        assert_eq!(bomb.outcome, ProcOutcome::RestartedClean);
        free_frames.push(k.falloc.free_frames());
    }
    let (min, max) = (
        *free_frames.iter().min().unwrap(),
        *free_frames.iter().max().unwrap(),
    );
    assert!(
        max - min <= 4,
        "free frames must not decay across generations (placement jitter \
         of a few frames is fine, a leak is not): {free_frames:?}"
    );
}

#[test]
fn stage_timings_partition_the_microreboot() {
    let mut k = boot(false);
    spawn(&mut k, "counter");
    for _ in 0..6 {
        k.run_step();
    }
    k.do_panic(PanicCause::Oops("supervisor test"));

    let (_k2, report) = microreboot(k, &OtherworldConfig::default()).expect("microreboot");
    assert!(report.crash_boot_seconds >= 0.0);
    assert!(report.resurrection_seconds >= 0.0);
    assert!(report.morph_seconds >= 0.0);
    let sum = report.crash_boot_seconds + report.resurrection_seconds + report.morph_seconds;
    assert!(
        (sum - report.total_seconds).abs() < 1e-9,
        "stages must partition the total: {sum} vs {}",
        report.total_seconds
    );
    // And the JSON export carries all four numbers.
    let json = report.timings_json();
    for key in [
        "crash_boot_seconds",
        "resurrection_seconds",
        "morph_seconds",
        "total_seconds",
    ] {
        assert!(json.get(key).is_some(), "missing {key}");
    }
}
