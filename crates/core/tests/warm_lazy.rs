//! Warm-morph and copy-on-access resurrection properties.
//!
//! The contract under test: the warm morph and the lazy strategy are pure
//! optimizations — they may only change *when* work happens, never what
//! the application can observe. Three families of properties:
//!
//! * a valid seal is adopted wholesale and the microreboot gets faster;
//! * a corrupted seal structure (a flipped CRC byte in the frame bitmap,
//!   swap map, or page cache seal) falls back to the cold rebuild for
//!   exactly that structure, with app-visible state identical to a cold
//!   run;
//! * lazy resurrection leaves app-visible memory byte-identical to the
//!   eager copy, before and after the copy-on-access faults fire.

use ow_core::{microreboot, MorphMode, OtherworldConfig, ResurrectionStrategy};
use ow_kernel::layout::{oflags, seal_addr, Record, WarmSeal};
use ow_kernel::{
    program::{Program, ProgramRegistry, StepResult, UserApi, PROG_STATE_VADDR},
    Kernel, KernelConfig, PanicCause, SpawnSpec,
};
use ow_simhw::machine::MachineConfig;

/// Same app shape as the end-to-end suite: counts in user memory, logs
/// milestones through the page cache.
struct Counter {
    target: u64,
}

const COUNT_ADDR: u64 = PROG_STATE_VADDR + 8;

impl Program for Counter {
    fn step(&mut self, api: &mut dyn UserApi) -> StepResult {
        let c = match api.mem_read_u64(COUNT_ADDR) {
            Ok(c) => c,
            Err(_) => return StepResult::Running,
        };
        let next = c + 1;
        if api.mem_write_u64(COUNT_ADDR, next).is_err() {
            return StepResult::Running;
        }
        if next % 5 == 0 {
            if let Ok(fd) = api.open(
                "/counter.log",
                oflags::WRITE | oflags::CREATE | oflags::APPEND,
            ) {
                let _ = api.write(fd, format!("count={next}\n").as_bytes());
                let _ = api.close(fd);
            }
        }
        if next >= self.target {
            StepResult::Exited(0)
        } else {
            StepResult::Running
        }
    }

    fn save_state(&mut self, _api: &mut dyn UserApi) {}
}

fn registry() -> ProgramRegistry {
    let mut r = ProgramRegistry::new();
    r.register(
        "counter",
        |api, _args| {
            api.mem_write_u64(COUNT_ADDR, 0).expect("init count");
            Box::new(Counter { target: 1_000_000 })
        },
        |_api| Box::new(Counter { target: 1_000_000 }),
    );
    r
}

/// Boots a kernel, runs the counter for `steps`, swaps out `swap_pages`
/// of it, and panics. Every call produces the same dead image, so runs
/// under different recovery configs are directly comparable.
fn dead_kernel(steps: u32, swap_pages: usize) -> (Kernel, u64) {
    let machine = ow_kernel::standard_machine(MachineConfig {
        ram_frames: 4096,
        cpus: 2,
        tlb_entries: 64,
        tlb_tagged: true,
        cost: ow_simhw::CostModel::zero_io(),
    });
    let mut k = Kernel::boot_cold(machine, KernelConfig::default(), registry()).expect("cold boot");
    let pid = k
        .spawn(SpawnSpec::new(
            "counter",
            Box::new(Counter { target: 1_000_000 }),
        ))
        .unwrap();
    k.user_write(pid, COUNT_ADDR, &0u64.to_le_bytes()).unwrap();
    for _ in 0..steps {
        k.run_step();
    }
    if swap_pages > 0 {
        k.swap_out_pages(pid, swap_pages).unwrap();
    }
    k.do_panic(PanicCause::Oops("warm_lazy test"));
    (k, pid)
}

fn count_of(k: &mut Kernel, pid: u64) -> u64 {
    let mut buf = [0u8; 8];
    k.user_read(pid, COUNT_ADDR, &mut buf).expect("read count");
    u64::from_le_bytes(buf)
}

/// The page holding the program state and counter, as the app sees it.
fn state_page(k: &mut Kernel, pid: u64) -> Vec<u8> {
    let mut buf = vec![0u8; 4096];
    k.user_read(pid, PROG_STATE_VADDR, &mut buf)
        .expect("read state page");
    buf
}

fn log_text(k: &mut Kernel) -> String {
    let fs = k.fs.clone();
    let ino = fs
        .lookup(&mut k.machine, "/counter.log")
        .unwrap()
        .expect("log exists");
    let size = fs.size_of(&mut k.machine, ino).unwrap();
    let mut buf = vec![0u8; size as usize];
    fs.read_at(&mut k.machine, ino, 0, &mut buf).unwrap();
    String::from_utf8(buf).unwrap()
}

fn config(morph: MorphMode, strategy: ResurrectionStrategy) -> OtherworldConfig {
    OtherworldConfig {
        morph,
        strategy,
        ..OtherworldConfig::default()
    }
}

/// Recovers the given dead kernel and returns the post-recovery kernel,
/// the report, and the app's new pid.
fn recover(k: Kernel, cfg: &OtherworldConfig) -> (Kernel, ow_core::MicrorebootReport, u64) {
    let (k2, report) = microreboot(k, cfg).expect("microreboot");
    let pid = report
        .proc_named("counter")
        .expect("counter resurrected")
        .new_pid
        .expect("new pid");
    (k2, report, pid)
}

#[test]
fn warm_morph_adopts_every_validated_structure() {
    let (k, _) = dead_kernel(10, 1);
    let (mut k2, report, pid) =
        recover(k, &config(MorphMode::Warm, ResurrectionStrategy::CopyPages));
    assert!(report.all_succeeded());
    assert!(report.adoption.frames, "frame bitmap not adopted");
    assert!(report.adoption.swap, "swap bitmap not adopted");
    assert!(report.adoption.cache, "page cache not adopted");
    assert!(
        k2.warm_booted,
        "crash kernel did not take the warm boot path"
    );
    // Verbatim swap adoption: the swapped page came back without a
    // partition migration.
    let pr = report.proc_named("counter").unwrap();
    assert!(pr.pages_swapped > 0);
    assert_eq!(count_of(&mut k2, pid), 10);
    for _ in 0..10 {
        k2.run_step();
    }
    assert_eq!(count_of(&mut k2, pid), 20);
}

#[test]
fn warm_morph_is_faster_than_cold() {
    let (cold_k, _) = dead_kernel(10, 0);
    let (_, cold_report, _) = recover(
        cold_k,
        &config(MorphMode::Cold, ResurrectionStrategy::CopyPages),
    );
    let (warm_k, _) = dead_kernel(10, 0);
    let (_, warm_report, _) = recover(
        warm_k,
        &config(MorphMode::Warm, ResurrectionStrategy::CopyPages),
    );
    assert!(!cold_report.adoption.frames);
    assert!(warm_report.adoption.frames);
    assert!(
        warm_report.total_seconds < cold_report.total_seconds,
        "warm {} >= cold {}",
        warm_report.total_seconds,
        cold_report.total_seconds
    );
}

/// Which seal CRC a corruption test flips.
enum Flip {
    Falloc,
    Swap,
    Cache,
}

/// Panics the standard scenario, flips one CRC byte in the dead kernel's
/// seal, recovers warm, and returns the post-recovery observation.
fn recover_with_flipped_seal(flip: Flip) -> (ow_core::MicrorebootReport, u64, Vec<u8>, String) {
    let (mut k, _) = dead_kernel(10, 1);
    let addr = seal_addr(k.base_frame, k.config.kernel_frames);
    let (mut seal, _) = WarmSeal::read(&k.machine.phys, addr).expect("seal readable");
    assert_eq!(seal.valid, 1, "panic path did not seal");
    match flip {
        Flip::Falloc => seal.falloc_crc ^= 0xff,
        Flip::Swap => seal.swap_crc ^= 0xff,
        Flip::Cache => seal.cache_crc ^= 0xff,
    }
    seal.write(&mut k.machine.phys, addr).expect("seal rewrite");
    let (mut k2, report, pid) =
        recover(k, &config(MorphMode::Warm, ResurrectionStrategy::CopyPages));
    assert!(report.all_succeeded());
    let count = count_of(&mut k2, pid);
    for _ in 0..10 {
        k2.run_step();
    }
    let page = state_page(&mut k2, pid);
    let log = log_text(&mut k2);
    (report, count, page, log)
}

/// The cold-run observation every corrupted warm run must match.
fn cold_baseline() -> (u64, Vec<u8>, String) {
    let (k, _) = dead_kernel(10, 1);
    let (mut k2, report, pid) =
        recover(k, &config(MorphMode::Cold, ResurrectionStrategy::CopyPages));
    assert!(report.all_succeeded());
    assert_eq!(report.adoption, ow_core::AdoptionSummary::default());
    let count = count_of(&mut k2, pid);
    for _ in 0..10 {
        k2.run_step();
    }
    (count, state_page(&mut k2, pid), log_text(&mut k2))
}

#[test]
fn corrupted_seal_structures_fall_back_cold_with_identical_state() {
    let (cold_count, cold_page, cold_log) = cold_baseline();
    assert_eq!(cold_count, 10);

    // Frame bitmap CRC flipped: frames fall back, which also forbids cache
    // adoption (the cold reclaim would free the adopted node frames).
    let (report, count, page, log) = recover_with_flipped_seal(Flip::Falloc);
    assert!(!report.adoption.frames);
    assert!(!report.adoption.cache);
    assert!(
        report.adoption.swap,
        "independent structure must still adopt"
    );
    assert_eq!((count, &page, &log), (cold_count, &cold_page, &cold_log));

    // Swap bitmap CRC flipped: swapped pages migrate the cold way; frames
    // and cache adoption are unaffected.
    let (report, count, page, log) = recover_with_flipped_seal(Flip::Swap);
    assert!(!report.adoption.swap);
    assert!(report.adoption.frames);
    assert!(report.adoption.cache);
    assert_eq!((count, &page, &log), (cold_count, &cold_page, &cold_log));

    // Page-cache CRC flipped: the cache is flushed and rebuilt cold.
    let (report, count, page, log) = recover_with_flipped_seal(Flip::Cache);
    assert!(!report.adoption.cache);
    assert!(report.adoption.frames);
    assert!(report.adoption.swap);
    assert_eq!((count, &page, &log), (cold_count, &cold_page, &cold_log));
}

#[test]
fn invalidated_seal_means_cold_morph() {
    // A fresh boot writes valid == 0 over the seal region; a warm-config
    // microreboot over such a kernel must behave exactly like cold.
    let (mut k, _) = dead_kernel(10, 0);
    let addr = seal_addr(k.base_frame, k.config.kernel_frames);
    WarmSeal::invalid()
        .write(&mut k.machine.phys, addr)
        .expect("seal invalidate");
    let (mut k2, report, pid) =
        recover(k, &config(MorphMode::Warm, ResurrectionStrategy::CopyPages));
    assert!(report.all_succeeded());
    assert_eq!(report.adoption, ow_core::AdoptionSummary::default());
    assert_eq!(count_of(&mut k2, pid), 10);
}

#[test]
fn lazy_resurrection_is_byte_identical_to_eager() {
    let (eager_k, _) = dead_kernel(12, 0);
    let (mut eager, eager_report, eager_pid) = recover(
        eager_k,
        &config(MorphMode::Cold, ResurrectionStrategy::CopyPages),
    );
    let (lazy_k, _) = dead_kernel(12, 0);
    let (mut lazy, lazy_report, lazy_pid) =
        recover(lazy_k, &config(MorphMode::Cold, ResurrectionStrategy::Lazy));
    assert!(eager_report.all_succeeded() && lazy_report.all_succeeded());

    // Lazy materialized nothing up front: every resident page was mapped,
    // none copied.
    let lp = lazy_report.proc_named("counter").unwrap();
    assert!(lp.pages_mapped > 0, "lazy resurrected without mapping");
    assert_eq!(lp.pages_copied, 0, "lazy copied eagerly");
    let ep = eager_report.proc_named("counter").unwrap();
    assert!(ep.pages_copied > 0);
    assert_eq!(ep.pages_mapped, 0);

    // Before any fault fires, reads see identical bytes.
    assert_eq!(
        state_page(&mut eager, eager_pid),
        state_page(&mut lazy, lazy_pid)
    );

    // Running the app writes the counter page — the first write is the
    // copy-on-access fault on the lazy side. The two executions must stay
    // in lockstep.
    for _ in 0..10 {
        eager.run_step();
        lazy.run_step();
    }
    assert_eq!(count_of(&mut eager, eager_pid), 22);
    assert_eq!(count_of(&mut lazy, lazy_pid), 22);
    assert_eq!(
        state_page(&mut eager, eager_pid),
        state_page(&mut lazy, lazy_pid)
    );
    assert_eq!(log_text(&mut eager), log_text(&mut lazy));
}

#[test]
fn every_morph_and_strategy_combination_preserves_the_app() {
    let mut finals = Vec::new();
    for morph in [MorphMode::Cold, MorphMode::Warm] {
        for strategy in [
            ResurrectionStrategy::CopyPages,
            ResurrectionStrategy::MapPages,
            ResurrectionStrategy::Lazy,
        ] {
            let (k, _) = dead_kernel(10, 1);
            let (mut k2, report, pid) = recover(k, &config(morph, strategy));
            assert!(
                report.all_succeeded(),
                "morph={morph:?} strategy={strategy:?}"
            );
            assert_eq!(count_of(&mut k2, pid), 10);
            for _ in 0..10 {
                k2.run_step();
            }
            finals.push((count_of(&mut k2, pid), state_page(&mut k2, pid)));
        }
    }
    // Every configuration converges on the same app-visible state.
    for w in finals.windows(2) {
        assert_eq!(w[0], w[1]);
    }
}
