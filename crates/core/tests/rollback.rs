//! Epoch-checkpoint rollback-in-place (rung 0) properties.
//!
//! The contract under test: rolling the resurrection-critical records back
//! to the newest panic-sealed epoch is a *shortcut*, never a semantic
//! change. Three families of properties:
//!
//! * a validated epoch rolls back in the same kernel generation, without a
//!   crash-kernel boot, orders of magnitude faster than the cold pipeline;
//! * every ineligible checkpoint — stale, torn, semantically poisoned,
//!   already attempted, or absent — deterministically falls through to the
//!   ordinary microreboot with app-visible state byte-identical to a
//!   rollback-off run;
//! * the per-epoch attempt ledger forbids rollback loops: a re-panic with
//!   no progress is never rolled back twice onto the same epoch.

use ow_core::{microreboot, LadderRung, OtherworldConfig};
use ow_kernel::layout::{
    ckpt_slot_addr, crc::crc32, oflags, snipkind, EpochCheckpoint, ProcDesc, Record, CKPT_SLOTS,
    SNIP_HEADER_BYTES,
};
use ow_kernel::{
    program::{Program, ProgramRegistry, StepResult, UserApi, PROG_STATE_VADDR},
    Kernel, KernelConfig, PanicCause, SpawnSpec,
};
use ow_simhw::machine::MachineConfig;
use ow_trace::EventKind;

/// Same app shape as the warm/lazy suite: counts in user memory, logs
/// milestones through the page cache.
struct Counter {
    target: u64,
}

const COUNT_ADDR: u64 = PROG_STATE_VADDR + 8;

impl Program for Counter {
    fn step(&mut self, api: &mut dyn UserApi) -> StepResult {
        let c = match api.mem_read_u64(COUNT_ADDR) {
            Ok(c) => c,
            Err(_) => return StepResult::Running,
        };
        let next = c + 1;
        if api.mem_write_u64(COUNT_ADDR, next).is_err() {
            return StepResult::Running;
        }
        if next % 5 == 0 {
            if let Ok(fd) = api.open(
                "/counter.log",
                oflags::WRITE | oflags::CREATE | oflags::APPEND,
            ) {
                let _ = api.write(fd, format!("count={next}\n").as_bytes());
                let _ = api.close(fd);
            }
        }
        if next >= self.target {
            StepResult::Exited(0)
        } else {
            StepResult::Running
        }
    }

    fn save_state(&mut self, _api: &mut dyn UserApi) {}
}

fn registry() -> ProgramRegistry {
    let mut r = ProgramRegistry::new();
    r.register(
        "counter",
        |api, _args| {
            api.mem_write_u64(COUNT_ADDR, 0).expect("init count");
            Box::new(Counter { target: 1_000_000 })
        },
        |_api| Box::new(Counter { target: 1_000_000 }),
    );
    r
}

/// Boots a kernel, runs the counter for `steps`, swaps out `swap_pages` of
/// it, and panics. Every call produces the same dead image, so rollback-on
/// and rollback-off runs are directly comparable.
fn dead_kernel(steps: u32, swap_pages: usize) -> (Kernel, u64) {
    let machine = ow_kernel::standard_machine(MachineConfig {
        ram_frames: 4096,
        cpus: 2,
        tlb_entries: 64,
        tlb_tagged: true,
        cost: ow_simhw::CostModel::zero_io(),
    });
    let mut k = Kernel::boot_cold(machine, KernelConfig::default(), registry()).expect("cold boot");
    let pid = k
        .spawn(SpawnSpec::new(
            "counter",
            Box::new(Counter { target: 1_000_000 }),
        ))
        .unwrap();
    k.user_write(pid, COUNT_ADDR, &0u64.to_le_bytes()).unwrap();
    for _ in 0..steps {
        k.run_step();
    }
    if swap_pages > 0 {
        k.swap_out_pages(pid, swap_pages).unwrap();
    }
    k.do_panic(PanicCause::Oops("rollback test"));
    (k, pid)
}

fn count_of(k: &mut Kernel, pid: u64) -> u64 {
    let mut buf = [0u8; 8];
    k.user_read(pid, COUNT_ADDR, &mut buf).expect("read count");
    u64::from_le_bytes(buf)
}

fn state_page(k: &mut Kernel, pid: u64) -> Vec<u8> {
    let mut buf = vec![0u8; 4096];
    k.user_read(pid, PROG_STATE_VADDR, &mut buf)
        .expect("read state page");
    buf
}

fn log_text(k: &mut Kernel) -> String {
    let fs = k.fs.clone();
    let ino = fs
        .lookup(&mut k.machine, "/counter.log")
        .unwrap()
        .expect("log exists");
    let size = fs.size_of(&mut k.machine, ino).unwrap();
    let mut buf = vec![0u8; size as usize];
    fs.read_at(&mut k.machine, ino, 0, &mut buf).unwrap();
    String::from_utf8(buf).unwrap()
}

fn rollback_config() -> OtherworldConfig {
    OtherworldConfig {
        rollback: true,
        ..OtherworldConfig::default()
    }
}

/// Recovers the given dead kernel and returns the post-recovery kernel,
/// the report, and the app's pid.
fn recover(k: Kernel, cfg: &OtherworldConfig) -> (Kernel, ow_core::MicrorebootReport, u64) {
    let (k2, report) = microreboot(k, cfg).expect("microreboot");
    let pid = report
        .proc_named("counter")
        .expect("counter recovered")
        .new_pid
        .expect("new pid");
    (k2, report, pid)
}

/// The newest sealed epoch slot of a dead kernel (the one rollback picks).
fn newest_slot(k: &Kernel) -> (u64, EpochCheckpoint) {
    let mut best: Option<(u64, EpochCheckpoint)> = None;
    for slot in 0..CKPT_SLOTS {
        let addr = ckpt_slot_addr(k.trace_base, slot);
        if let Ok((c, _)) = EpochCheckpoint::read(&k.machine.phys, addr) {
            if c.valid != 0 && best.as_ref().is_none_or(|(_, b)| c.epoch > b.epoch) {
                best = Some((addr, c));
            }
        }
    }
    best.expect("panic path sealed an epoch")
}

/// The rollback-off observation every fall-through run must match.
fn baseline(steps: u32, swap_pages: usize) -> (u32, u64, Vec<u8>, String) {
    let (k, _) = dead_kernel(steps, swap_pages);
    let (mut k2, report, pid) = recover(k, &OtherworldConfig::default());
    assert!(report.all_succeeded());
    assert!(report.rollback.is_none());
    let count = count_of(&mut k2, pid);
    for _ in 0..10 {
        k2.run_step();
    }
    (
        k2.generation,
        count,
        state_page(&mut k2, pid),
        log_text(&mut k2),
    )
}

#[test]
fn validated_epoch_rolls_back_in_the_same_generation() {
    let (k, pid) = dead_kernel(10, 1);
    let generation = k.generation;
    let (mut k2, report, new_pid) = recover(k, &rollback_config());

    let rb = report.rollback.as_ref().expect("rollback taken");
    assert!(rb.records > 0, "rollback restored no records");
    assert!(rb.bytes_validated > 0);
    assert_eq!(rb.procs, 1);
    // Same kernel generation: no crash kernel ever booted.
    assert_eq!(k2.generation, generation);
    assert_eq!(report.generation, generation);
    assert_eq!(new_pid, pid, "rollback must keep the same pid");
    assert!(report.all_succeeded());
    for p in &report.procs {
        assert_eq!(p.rung, LadderRung::RollbackInPlace);
    }
    // No resurrection work happened: the pipeline stages are all zero.
    assert_eq!(report.crash_boot_seconds, 0.0);
    assert_eq!(report.resurrection_seconds, 0.0);
    assert_eq!(report.morph_seconds, 0.0);
    assert_eq!(report.rollback_seconds, report.total_seconds);
    assert_eq!(report.adoption, ow_core::AdoptionSummary::default());

    // The app continues where it stopped, swapped page included.
    assert_eq!(count_of(&mut k2, pid), 10);
    for _ in 0..10 {
        k2.run_step();
    }
    assert_eq!(count_of(&mut k2, pid), 20);
}

#[test]
fn rollback_interruption_is_at_least_50x_below_the_cold_microreboot() {
    let (k, _) = dead_kernel(10, 0);
    let (_, cold_report, _) = recover(k, &OtherworldConfig::default());
    let (k, _) = dead_kernel(10, 0);
    let (_, rb_report, _) = recover(k, &rollback_config());
    assert!(rb_report.rollback.is_some());
    assert!(
        rb_report.total_seconds * 50.0 <= cold_report.total_seconds,
        "rollback {}s must be at least 50x below cold {}s",
        rb_report.total_seconds,
        cold_report.total_seconds
    );
}

#[test]
fn timings_json_reports_the_rollback_stage() {
    let (k, _) = dead_kernel(10, 0);
    let (_, report, _) = recover(k, &rollback_config());
    let doc = report.timings_json();
    for key in [
        "crash_boot_seconds",
        "resurrection_seconds",
        "morph_seconds",
        "rollback_seconds",
        "total_seconds",
    ] {
        assert!(doc.get(key).is_some(), "timings_json missing {key}");
    }
}

/// One way of making the sealed checkpoint ineligible.
enum Spoil {
    /// Rewind the sealed syscall sequence (stale epoch).
    Stale,
    /// Flip payload bytes without fixing the CRC (torn A/B slot).
    Torn,
    /// Poison a sealed descriptor and recompute the payload CRC
    /// (CRC-valid but semantically invalid).
    Poison,
    /// Stamp the attempt ledger (this epoch already failed once).
    Attempted,
    /// Invalidate both slots outright (no epoch was ever sealed).
    Invalidate,
}

fn spoil_checkpoint(k: &mut Kernel, spoil: &Spoil) {
    match spoil {
        Spoil::Stale => {
            let (addr, mut c) = newest_slot(k);
            c.seq = c.seq.wrapping_sub(1);
            c.write(&mut k.machine.phys, addr).expect("rewrite header");
        }
        Spoil::Torn => {
            let (addr, c) = newest_slot(k);
            let half = c.payload_len / 2;
            let at = addr + EpochCheckpoint::SIZE + half;
            let mut tail = vec![0u8; (c.payload_len - half) as usize];
            k.machine.phys.read(at, &mut tail).expect("read payload");
            for b in &mut tail {
                *b = !*b;
            }
            k.machine.phys.write(at, &tail).expect("tear payload");
        }
        Spoil::Poison => {
            let (addr, mut c) = newest_slot(k);
            let base = addr + EpochCheckpoint::SIZE;
            let mut off = 0u64;
            let mut poisoned = false;
            while off + SNIP_HEADER_BYTES <= c.payload_len {
                let mut hdr = [0u8; SNIP_HEADER_BYTES as usize];
                k.machine.phys.read(base + off, &mut hdr).expect("snip hdr");
                let kind = u32::from_le_bytes(hdr[8..12].try_into().unwrap());
                let len = u32::from_le_bytes(hdr[12..16].try_into().unwrap()) as u64;
                if kind == snipkind::PROC {
                    let src = base + off + SNIP_HEADER_BYTES;
                    let (mut desc, _) = ProcDesc::read(&k.machine.phys, src).expect("sealed desc");
                    desc.state = 0xdead;
                    desc.write(&mut k.machine.phys, src).expect("poison desc");
                    poisoned = true;
                    break;
                }
                off += SNIP_HEADER_BYTES + len;
            }
            assert!(poisoned, "no sealed process descriptor to poison");
            let mut payload = vec![0u8; c.payload_len as usize];
            k.machine.phys.read(base, &mut payload).expect("payload");
            c.payload_crc = crc32(&payload);
            c.write(&mut k.machine.phys, addr).expect("reseal header");
        }
        Spoil::Attempted => {
            let (addr, mut c) = newest_slot(k);
            c.attempted = 1;
            c.write(&mut k.machine.phys, addr).expect("stamp ledger");
        }
        Spoil::Invalidate => {
            for slot in 0..CKPT_SLOTS {
                EpochCheckpoint::invalid()
                    .write(&mut k.machine.phys, ckpt_slot_addr(k.trace_base, slot))
                    .expect("invalidate slot");
            }
        }
    }
}

#[test]
fn every_spoiled_checkpoint_falls_through_byte_identical_to_rollback_off() {
    let (base_gen, base_count, base_page, base_log) = baseline(10, 1);
    assert_eq!(base_count, 10);
    for (name, spoil) in [
        ("stale", Spoil::Stale),
        ("torn", Spoil::Torn),
        ("poison", Spoil::Poison),
        ("attempted", Spoil::Attempted),
        ("invalidate", Spoil::Invalidate),
    ] {
        let (mut k, _) = dead_kernel(10, 1);
        spoil_checkpoint(&mut k, &spoil);
        let (mut k2, report, pid) = recover(k, &rollback_config());
        assert!(
            report.rollback.is_none(),
            "{name}: spoiled checkpoint must not roll back"
        );
        assert!(report.all_succeeded(), "{name}");
        assert_eq!(k2.generation, base_gen, "{name}: fall-through generation");
        let count = count_of(&mut k2, pid);
        for _ in 0..10 {
            k2.run_step();
        }
        assert_eq!(
            (count, state_page(&mut k2, pid), log_text(&mut k2)),
            (base_count, base_page.clone(), base_log.clone()),
            "{name}: fall-through state must be byte-identical to rollback-off"
        );
    }
}

#[test]
fn repanic_without_progress_never_rolls_back_the_same_epoch_twice() {
    let (k, pid) = dead_kernel(10, 0);
    let (mut k2, report, _) = recover(k, &rollback_config());
    assert!(report.rollback.is_some());

    // Re-panic immediately: no syscall has completed, so the panic path
    // re-seals the very same sequence and the burned attempt stamp
    // carries forward — rung 0 must refuse and fall through.
    k2.do_panic(PanicCause::Oops("re-panic without progress"));
    let (mut k3, report2, pid2) = recover(k2, &rollback_config());
    assert!(
        report2.rollback.is_none(),
        "the same epoch must never roll back twice"
    );
    assert!(report2.all_succeeded());
    assert_eq!(pid2, pid);
    assert_eq!(count_of(&mut k3, pid2), 10);

    // With fresh progress after the full recovery, a later panic seals a
    // new sequence and rung 0 is available again.
    for _ in 0..4 {
        k3.run_step();
    }
    k3.do_panic(PanicCause::Oops("panic after progress"));
    let (mut k4, report3, pid3) = recover(k3, &rollback_config());
    assert!(
        report3.rollback.is_some(),
        "a new epoch with progress must roll back again"
    );
    assert_eq!(count_of(&mut k4, pid3), 14);
}

#[test]
fn rollback_is_recorded_in_the_next_flight_record() {
    // The RecoveryRolledBack trace event is written to the live ring after
    // the rollback, so it surfaces in the *next* panic's recovered flight.
    let (k, _) = dead_kernel(10, 0);
    let (mut k2, report, pid) = recover(k, &rollback_config());
    assert!(report.rollback.is_some());
    for _ in 0..4 {
        k2.run_step();
    }
    k2.do_panic(PanicCause::Oops("second panic"));
    let (_, report2, _) = recover(k2, &OtherworldConfig::default());
    assert_eq!(
        report2
            .flight
            .event_counts()
            .get(EventKind::RecoveryRolledBack),
        1,
        "flight record must tally the rollback"
    );
    let _ = pid;
}
