//! End-to-end flight-recorder tests: the trace ring written by the main
//! kernel survives the panic and the crash-kernel boot, and the recovered
//! record tells the story of the crash — even when wild writes land inside
//! the trace region itself.

use ow_core::{microreboot, OtherworldConfig, PolicySource, ResurrectionPolicy};
use ow_kernel::{
    layout::oflags,
    program::{Program, ProgramRegistry, StepResult, UserApi, PROG_STATE_VADDR},
    Kernel, KernelConfig, PanicCause, SpawnSpec,
};
use ow_simhw::machine::MachineConfig;
use ow_trace::{Counter as TraceCounter, EventKind};

/// A small program that counts in user memory and logs to a file, so every
/// step emits syscall and page-fault trace events.
struct Scribbler;

const COUNT_ADDR: u64 = PROG_STATE_VADDR + 8;

impl Program for Scribbler {
    fn step(&mut self, api: &mut dyn UserApi) -> StepResult {
        let c = api.mem_read_u64(COUNT_ADDR).unwrap_or(0);
        let _ = api.mem_write_u64(COUNT_ADDR, c + 1);
        if let Ok(fd) = api.open(
            "/flight.log",
            oflags::WRITE | oflags::CREATE | oflags::APPEND,
        ) {
            let _ = api.write(fd, b"tick\n");
            let _ = api.close(fd);
        }
        StepResult::Running
    }

    fn save_state(&mut self, _api: &mut dyn UserApi) {}
}

fn registry() -> ProgramRegistry {
    let mut r = ProgramRegistry::new();
    r.register(
        "scribbler",
        |api, _args| {
            api.mem_write_u64(COUNT_ADDR, 0).expect("init count");
            Box::new(Scribbler)
        },
        |_api| Box::new(Scribbler),
    );
    r
}

fn boot() -> Kernel {
    let machine = ow_kernel::standard_machine(MachineConfig {
        ram_frames: 4096, // 16 MiB
        cpus: 2,
        tlb_entries: 64,
        tlb_tagged: true,
        cost: ow_simhw::CostModel::zero_io(),
    });
    Kernel::boot_cold(machine, KernelConfig::default(), registry()).expect("cold boot")
}

fn run_workload(k: &mut Kernel) -> u64 {
    let pid = k
        .spawn(SpawnSpec::new("scribbler", Box::new(Scribbler)))
        .expect("spawn");
    let fresh = {
        let image = k.registry.get("scribbler").expect("registered");
        let mut api = ow_kernel::syscall::KernelApi::new(k, pid);
        (image.fresh)(&mut api, &[])
    };
    k.proc_mut(pid).expect("pid").program = Some(fresh);
    for _ in 0..40 {
        k.run_step();
    }
    pid
}

fn config() -> OtherworldConfig {
    OtherworldConfig {
        policy: PolicySource::Inline(ResurrectionPolicy::only(["scribbler"])),
        ..OtherworldConfig::default()
    }
}

#[test]
fn recovered_flight_tells_the_story_of_the_crash() {
    let mut k = boot();
    run_workload(&mut k);
    k.do_panic(PanicCause::Oops("flight test"));

    let (_k2, report) = microreboot(k, &config()).expect("microreboot");
    let flight = &report.flight;

    assert!(flight.header_valid, "trace header must survive the handoff");
    assert!(!flight.events.is_empty(), "flight record must be non-empty");

    // The newest record is the panic path handing off to the crash kernel.
    let last = flight.last_event().expect("events");
    assert!(
        last.is_panic_step(),
        "last event must be a panic step: {last:?}"
    );
    assert!(
        flight.tail_summary(4).contains("panic:handoff"),
        "{}",
        flight.tail_summary(4)
    );

    // The workload's activity shows up in both the events and the metrics.
    assert!(
        flight
            .events
            .iter()
            .any(|e| e.kind == EventKind::SyscallEnter),
        "workload syscalls must be on record"
    );
    assert!(flight.metrics.counter(TraceCounter::Syscalls) > 0);
    assert!(flight.metrics.counter(TraceCounter::PageFaults) > 0);
    assert!(flight.metrics.counter(TraceCounter::PanicSteps) > 0);
    assert!(
        flight.metrics.samples(ow_trace::Histogram::SyscallCycles) > 0,
        "syscall latency histogram must have samples"
    );
}

#[test]
fn wild_write_into_the_trace_region_costs_one_record_not_the_flight() {
    let mut k = boot();
    run_workload(&mut k);

    // A wild write lands inside the trace region (which is deliberately not
    // hardware-protected): smash the middle of an already-written record
    // slot in the first record frame.
    let trace_base = k.machine.phys.frames() - k.config.trace_frames;
    let slot_addr = (trace_base + 1) * ow_simhw::PAGE_BYTES + 2 * 48 + 16;
    let out = k
        .machine
        .wild_write(slot_addr, 0xdead_beef_dead_beef, false);
    assert_eq!(
        out,
        ow_simhw::machine::WildWriteOutcome::Landed(ow_simhw::machine::FrameOwner::Trace)
    );

    k.do_panic(PanicCause::Oops("wild write test"));
    let (_k2, report) = microreboot(k, &config()).expect("microreboot");
    let flight = &report.flight;

    // Recovery skipped the damaged record and kept everything else.
    assert!(
        flight.corrupt_records >= 1,
        "damaged record must be counted"
    );
    assert!(!flight.events.is_empty(), "the rest of the flight survives");
    assert!(flight.last_event().expect("events").is_panic_step());
    assert!(
        flight.tail_summary(4).contains("corrupt"),
        "{}",
        flight.tail_summary(4)
    );
}

#[test]
fn flight_survives_into_the_next_generation_report() {
    // Two back-to-back microreboots: each report carries the flight of the
    // kernel generation that just died, with matching generation stamps.
    let mut k = boot();
    run_workload(&mut k);
    k.do_panic(PanicCause::Oops("gen 0 crash"));
    let (mut k2, report1) = microreboot(k, &config()).expect("first microreboot");
    assert_eq!(report1.flight.generation, 0);

    for _ in 0..10 {
        k2.run_step();
    }
    k2.do_panic(PanicCause::Oops("gen 1 crash"));
    let (_k3, report2) = microreboot(k2, &config()).expect("second microreboot");
    assert_eq!(report2.flight.generation, report2.generation - 1);
    assert!(!report2.flight.events.is_empty());
    assert!(report2.flight.last_event().expect("events").is_panic_step());
}
