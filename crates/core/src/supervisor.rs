//! Resurrection-supervisor primitives: panic containment and the
//! per-process cycle budget.
//!
//! The supervisor's job (ReHype-style) is to make the crash kernel's own
//! recovery path fault-tolerant: a corruption-triggered panic inside the
//! resurrection engine must cost one process, not the whole microreboot,
//! and a walk stuck in a corrupted chain must be cut off by a watchdog
//! budget instead of hanging recovery. The ladder/escalation state machine
//! itself lives in [`crate::otherworld`]; this module holds the pieces it
//! leans on.

use ow_simhw::{clock::CYCLES_PER_SEC, CostModel};
use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

thread_local! {
    /// Nesting depth of active [`contain`] sections on this thread. While
    /// non-zero, the quiet hook swallows panic output: the panic is an
    /// anticipated, classified event, not a crash worth a backtrace.
    static CONTAIN_DEPTH: Cell<u32> = const { Cell::new(0) };
}

static QUIET_HOOK: Once = Once::new();

fn install_quiet_hook() {
    QUIET_HOOK.call_once(|| {
        let prev = panic::take_hook();
        // OW_PANIC_TRACE=1 prints contained panics too (with RUST_BACKTRACE
        // this locates a panic that containment would otherwise swallow).
        // ow-lint: allow(campaign-determinism) -- debug-only stderr toggle; never reaches campaign results or JSON output
        let trace_contained = std::env::var_os("OW_PANIC_TRACE").is_some();
        panic::set_hook(Box::new(move |info| {
            if trace_contained || CONTAIN_DEPTH.with(|d| d.get()) == 0 {
                prev(info);
            }
        }));
    });
}

/// Runs `f`, converting any panic it raises into `Err(message)`.
///
/// This is the supervisor's containment boundary: a corrupted descriptor
/// that drives the resurrection engine into a `panic!`/assert costs
/// exactly the work inside `f`. The closure is wrapped in
/// [`AssertUnwindSafe`]: callers must treat the structures `f` mutated as
/// suspect on `Err` and scrub them (the supervisor reaps any partially
/// created process before retrying a weaker ladder rung).
pub fn contain<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    install_quiet_hook();
    CONTAIN_DEPTH.with(|d| d.set(d.get() + 1));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    CONTAIN_DEPTH.with(|d| d.set(d.get() - 1));
    result.map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    })
}

/// Default per-process cycle budget for the recovery watchdog, derived
/// from the simhw cost model: in the worst legitimate case the engine
/// copies every frame the reservation can hold and performs a few
/// thousand swap/file disk operations, plus a 60-simulated-second slack
/// so no honest resurrection ever trips it. Anything beyond this is a
/// walk stuck in a corrupted structure, and the watchdog cuts it off.
pub fn per_process_budget(cost: &CostModel, crash_frames: u64) -> u64 {
    60 * CYCLES_PER_SEC + crash_frames * cost.page_copy + 4096 * cost.disk_op
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contain_passes_values_through() {
        assert_eq!(contain(|| 41 + 1), Ok(42));
    }

    #[test]
    fn contain_catches_str_and_string_panics() {
        let e = contain(|| -> u32 { panic!("plain str") }).unwrap_err();
        assert_eq!(e, "plain str");
        let e = contain(|| -> u32 { panic!("formatted {}", 7) }).unwrap_err();
        assert_eq!(e, "formatted 7");
    }

    #[test]
    fn contain_nests() {
        let outer = contain(|| {
            let inner = contain(|| -> u32 { panic!("inner") });
            assert!(inner.is_err());
            // The outer section must still be quiet after the inner one
            // unwound — depth accounting, not a boolean flag.
            panic!("outer");
        });
        assert_eq!(outer.unwrap_err(), "outer");
    }

    #[test]
    fn budget_scales_with_reservation() {
        let cost = CostModel::default();
        assert!(per_process_budget(&cost, 2048) > per_process_budget(&cost, 1024));
        // Never below the fixed slack, even with a zero-I/O cost model.
        assert!(per_process_budget(&CostModel::zero_io(), 0) >= 60 * CYCLES_PER_SEC);
    }
}
