//! The microreboot orchestrator: panic → crash-kernel boot → resurrection →
//! crash procedures → morph (the five stages of §3), run under the
//! resurrection supervisor.
//!
//! The supervisor makes the recovery path itself fault-tolerant
//! (ReHype-style): every per-process engine call runs inside a panic
//! containment boundary and a watchdog cycle budget, hard failures retry
//! down a degradation ladder ([`LadderRung`]), and when the crash kernel
//! itself fails — boot failure or a storm of per-process faults — recovery
//! escalates to a restart-only generation-2 crash kernel instead of giving
//! up on the machine.

use crate::{
    config::{LadderRung, MorphMode, OtherworldConfig, PolicySource, ResurrectionStrategy},
    policy::ResurrectionPolicy,
    reader::{self, ReadError},
    resurrect::{self, DeadKernel},
    rollback,
    stats::{MicrorebootReport, ProcOutcome, ProcReport, ReadKind, ReadStats, SupervisorSummary},
    supervisor,
};
use ow_kernel::{
    kexec::{AdoptPlan, AdoptedFrames},
    layout::{pstate, PageCacheNode, WarmSeal},
    program::{Program, StepResult, UserApi},
    syscall::KernelApi,
    CrashAction, HandoffInfo, Kernel, KernelConfig, PanicOutcome, ProgramRegistry, SpawnSpec,
};
use ow_layout::Record;
use ow_simhw::Machine;
use ow_trace::EventKind;
use std::fmt;

/// Ways a microreboot can fail outright (Table 5's "failure to boot the
/// crash kernel").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MicrorebootFailure {
    /// The panic path could not transfer control (corrupted handoff
    /// structures, unhandled double fault, stall with no watchdog, ...).
    SystemHalted(String),
    /// Control transferred but the crash kernel failed to initialize (and
    /// the supervisor's generation budget, if any, is exhausted).
    CrashBootFailed(String),
    /// The kernel has not panicked; nothing to do.
    NotPanicked,
    /// The recovery path itself failed after the crash kernel booted: a
    /// panic escaped to the outer containment boundary, or — with the
    /// supervisor disabled — an engine panic, a stalled resurrection, or a
    /// panic storm with no generations left. Always a classified error,
    /// never a propagated panic.
    RecoveryFailed(String),
}

impl fmt::Display for MicrorebootFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MicrorebootFailure::SystemHalted(why) => write!(f, "system halted: {why}"),
            MicrorebootFailure::CrashBootFailed(why) => {
                write!(f, "crash kernel boot failed: {why}")
            }
            MicrorebootFailure::NotPanicked => write!(f, "kernel has not panicked"),
            MicrorebootFailure::RecoveryFailed(why) => write!(f, "recovery failed: {why}"),
        }
    }
}

impl std::error::Error for MicrorebootFailure {}

/// A do-nothing program used to bootstrap a process slot before the real
/// program object is attached (restart path).
struct StubProgram;

impl Program for StubProgram {
    fn step(&mut self, _api: &mut dyn UserApi) -> StepResult {
        StepResult::Exited(0)
    }
    fn save_state(&mut self, _api: &mut dyn UserApi) {}
}

/// Performs a complete microreboot of a panicked kernel, consuming it and
/// returning the new main kernel (the former crash kernel, morphed) plus a
/// report.
///
/// # Errors
///
/// Fails when the handoff never happened ([`PanicOutcome::SystemHalted`]),
/// the crash kernel could not boot within the supervisor's generation
/// budget, or the recovery path itself died
/// ([`MicrorebootFailure::RecoveryFailed`]). Per-process resurrection
/// failures do *not* fail the microreboot; they are recorded in the report.
/// No fault injected into the recovery path can propagate a panic out of
/// this function: the whole post-handoff path runs inside
/// [`supervisor::contain`].
pub fn microreboot(
    mut dead: Kernel,
    config: &OtherworldConfig,
) -> Result<(Kernel, MicrorebootReport), MicrorebootFailure> {
    let info = match &dead.panicked {
        Some(PanicOutcome::Handoff(info)) => *info,
        Some(PanicOutcome::SystemHalted(why)) => {
            return Err(MicrorebootFailure::SystemHalted((*why).to_string()))
        }
        None => return Err(MicrorebootFailure::NotPanicked),
    };

    let t_panic = dead.machine.clock.now();

    // Recover the dead kernel's flight record *before* booting the crash
    // kernel: boot re-arms (and zeroes) the trace region for the next
    // generation. The region's location comes from the handoff block, and
    // recovery is validated record-by-record — wild-write damage costs
    // individual records, never the whole recording.
    let flight = ow_layout::HandoffBlock::read(&dead.machine.phys)
        .map(|(h, _)| {
            ow_trace::FlightRecord::recover(&dead.machine.phys, h.trace_base, h.trace_frames)
        })
        .unwrap_or_default();

    // Rung 0: rollback-in-place. When the dying kernel sealed a fresh
    // AT_PANIC epoch that survives validation, the record set is restored
    // in place and the *same* generation resumes — no crash-kernel boot at
    // all. Any failure (validation refusal, an injected crash-point panic
    // inside the attempt) falls through to the microreboot below with the
    // record state untouched.
    if config.rollback {
        let rb_flight = flight.clone();
        match supervisor::contain(|| rollback::attempt(&mut dead, config, rb_flight, t_panic)) {
            Ok(Some(report)) => return Ok((dead, report)),
            _ => {
                // The decision to abandon rung 0 is itself a labeled (and
                // contained) step of the recovery path.
                let _ = supervisor::contain(|| {
                    ow_crashpoint::crash_point!("recovery.rollback.fallback.microreboot");
                });
            }
        }
    }

    let registry = dead.registry.clone();
    let dead_generation = dead.generation;
    let machine = dead.machine;

    // Outermost containment boundary: even a bug in the supervisor itself
    // surfaces as a classified failure, never an unwinding panic.
    match supervisor::contain(move || {
        run_recovery(
            machine,
            registry,
            dead_generation,
            info,
            config,
            flight,
            t_panic,
        )
    }) {
        Ok(result) => result,
        Err(msg) => Err(MicrorebootFailure::RecoveryFailed(format!(
            "recovery panicked: {msg}"
        ))),
    }
}

/// A hard per-process recovery failure, classified for the ladder.
enum HardFault {
    /// Corruption made the engine return a read error.
    Read(ReadError),
    /// The engine panicked and the panic was contained.
    Panic(String),
    /// The recovery watchdog cut off a blown cycle budget.
    Budget,
}

impl HardFault {
    /// Stable class code recorded in [`EventKind::RecoveryDegraded`].
    fn class(&self) -> u64 {
        match self {
            HardFault::Read(_) => 0,
            HardFault::Panic(_) => 1,
            HardFault::Budget => 2,
        }
    }
}

/// Stage-4 outcome of the full resurrection pass.
enum StageOutcome {
    /// Resurrection ran to completion (individual processes may have
    /// failed or degraded).
    Done(Vec<ProcReport>),
    /// Too many processes hit hard recovery faults: this crash-kernel
    /// generation is not trustworthy.
    PanicStorm(String),
}

/// Everything after the handoff: stage-3 crash-kernel boot (with
/// escalation), stage-4 resurrection under the supervisor, stage-5 morph.
fn run_recovery(
    mut machine: Machine,
    registry: ProgramRegistry,
    dead_generation: u32,
    info: HandoffInfo,
    config: &OtherworldConfig,
    flight: ow_trace::FlightRecord,
    t_panic: u64,
) -> Result<(Kernel, MicrorebootReport), MicrorebootFailure> {
    let sup = &config.supervisor;
    let plan = &config.recovery_faults;
    let mut summary = SupervisorSummary {
        enabled: sup.enabled,
        ..SupervisorSummary::default()
    };

    // Warm morph implies a warm crash-kernel boot: the boot probes the
    // dead kernel's seal and charges validation probes instead of full
    // re-initialization when it is intact. Restart-only generations do not
    // trust the dead image and always boot cold.
    let mut warm_kcfg = config.crash_kernel.clone();
    if config.morph == MorphMode::Warm {
        warm_kcfg.warm_boot = true;
    }

    // Stage 3: the crash kernel initializes itself inside its reservation.
    // When a boot attempt fails the supervisor escalates: the next
    // generation boots in restart-only mode (it will not trust the dead
    // image at all) and tolerates a stale layout version.
    let mut gen_bump: u32 = 0;
    let mut restart_only = false;
    let mut injected_boot_failures = 0u32;
    let mut k = loop {
        summary.crash_boot_attempts += 1;
        let why = if injected_boot_failures < plan.crash_boot_failures {
            injected_boot_failures += 1;
            "injected fault: crash kernel panicked during boot".to_string()
        } else {
            let handoff = HandoffInfo {
                generation: info.generation + gen_bump,
                ..info
            };
            let kcfg = if restart_only {
                config.crash_kernel.clone()
            } else {
                warm_kcfg.clone()
            };
            match Kernel::try_boot_crash(machine, kcfg, registry.clone(), handoff, restart_only) {
                Ok(k) => break k,
                Err((e, m)) => {
                    machine = *m;
                    e.to_string()
                }
            }
        };
        if !sup.enabled || summary.crash_boot_attempts >= sup.max_generations {
            return Err(MicrorebootFailure::CrashBootFailed(why));
        }
        gen_bump += 1;
        restart_only = true;
        summary.escalated = true;
        // The supervisor itself is escalating to a fresh generation; a
        // fault *here* is a fault in the last line of defense.
        ow_crashpoint::crash_point!("recovery.supervisor.gen2.escalate");
    };
    if summary.escalated {
        k.trace_event(EventKind::RecoveryEscalated, 0, gen_bump as u64, 0);
    }
    let t_booted = k.machine.clock.now();

    // Stage 4: resurrection.
    let mut stats = ReadStats::default();
    let mut integrity_fixes = 0u64;
    let policy = resolve_policy(&mut k, &config.policy);

    // Warm morph: validate the dead kernel's seal and build the adoption
    // plan, per-structure — whatever fails its CRC falls back to the cold
    // rebuild. Restart-only generations never adopt.
    let mut adopt = if config.morph == MorphMode::Warm && !restart_only {
        build_adopt_plan(&mut k, info, dead_generation, &mut stats)
    } else {
        AdoptPlan::default()
    };

    let procs_report = if restart_only {
        restart_only_recovery(&mut k, &registry, &policy, info, &mut stats)
    } else {
        match resurrect_all(
            &mut k,
            &registry,
            &policy,
            info,
            config,
            dead_generation,
            &adopt,
            &mut stats,
            &mut integrity_fixes,
            &mut summary,
        )? {
            StageOutcome::Done(reports) => reports,
            StageOutcome::PanicStorm(why) => {
                // The engine keeps dying inside this generation; stop
                // trusting it and hand the machine to a fresh restart-only
                // crash kernel (generation 2).
                if summary.crash_boot_attempts >= sup.max_generations {
                    return Err(MicrorebootFailure::RecoveryFailed(format!(
                        "panic storm with no generations left: {why}"
                    )));
                }
                summary.crash_boot_attempts += 1;
                summary.escalated = true;
                gen_bump += 1;
                // Generation 2 does not trust the dead image: no adoption.
                adopt = AdoptPlan::default();
                let handoff = HandoffInfo {
                    generation: info.generation + gen_bump,
                    ..info
                };
                let machine = k.machine;
                k = match Kernel::try_boot_crash(
                    machine,
                    config.crash_kernel.clone(),
                    registry.clone(),
                    handoff,
                    true,
                ) {
                    Ok(k2) => k2,
                    Err((e, _m)) => {
                        return Err(MicrorebootFailure::CrashBootFailed(format!(
                            "generation-2 boot: {e}"
                        )))
                    }
                };
                k.trace_event(EventKind::RecoveryEscalated, 0, gen_bump as u64, 1);
                stats = ReadStats::default();
                integrity_fixes = 0;
                restart_only_recovery(&mut k, &registry, &policy, info, &mut stats)
            }
        }
    };
    let t_resurrected = k.machine.clock.now();

    // Stage 5: morph into the main kernel and install a fresh crash kernel
    // — adopting the validated frame state when the plan carries it.
    k.morph_into_main_with(&adopt)
        .map_err(|e| MicrorebootFailure::CrashBootFailed(format!("morph: {e}")))?;
    let t_done = k.machine.clock.now();

    summary.degraded_procs = procs_report
        .iter()
        .filter(|p| p.rung != LadderRung::Full)
        .count() as u32;

    let secs = |c: u64| c as f64 / ow_simhw::clock::CYCLES_PER_SEC as f64;
    let report = MicrorebootReport {
        generation: k.generation,
        adoption: crate::stats::AdoptionSummary {
            frames: adopt.frames.is_some(),
            swap: adopt.swap.is_some_and(|i| k.active_swap == i as usize),
            cache: adopt.cache,
        },
        procs: procs_report,
        stats,
        crash_boot_seconds: secs(t_booted - t_panic),
        resurrection_seconds: secs(t_resurrected - t_booted),
        morph_seconds: secs(t_done - t_resurrected),
        total_seconds: secs(t_done - t_panic),
        rollback_seconds: 0.0,
        rollback: None,
        supervisor: summary,
        integrity_fixes,
        flight,
    };
    Ok((k, report))
}

/// The supervised stage-4 pass: every policy-selected process gets the full
/// engine, each attempt wrapped in panic containment and a watchdog budget,
/// degrading one ladder rung per hard failure down to a clean restart.
#[allow(clippy::too_many_arguments)]
fn resurrect_all(
    k: &mut Kernel,
    registry: &ProgramRegistry,
    policy: &ResurrectionPolicy,
    info: HandoffInfo,
    config: &OtherworldConfig,
    dead_generation: u32,
    adopt: &AdoptPlan,
    stats: &mut ReadStats,
    integrity_fixes: &mut u64,
    summary: &mut SupervisorSummary,
) -> Result<StageOutcome, MicrorebootFailure> {
    let sup = &config.supervisor;
    let plan = &config.recovery_faults;
    let mut reports = Vec::new();

    let Ok(header) = reader::read_header(&k.machine.phys, info.dead_kernel_frame, stats) else {
        return Ok(StageOutcome::Done(reports));
    };

    // The dead kernel's active swap partition, reopened by symbolic device
    // name from its descriptor (§3.3). The validated seal is authoritative
    // for which partition was active; without one, fall back to the
    // generation-parity convention.
    let dead_swap_name = format!("swap{}", adopt.swap.unwrap_or(dead_generation % 2));
    let dead_swap = reader::read_swap_descs(&k.machine.phys, &header, stats)
        .ok()
        .and_then(|descs| {
            descs
                .into_iter()
                .find(|(_, d)| d.dev_name == dead_swap_name)
        })
        .and_then(|(addr, d)| ow_kernel::swap::SwapArea::from_desc(&mut k.machine, &d, addr).ok());

    // Warm morph: adopt the dead kernel's CRC-validated slot bitmap into
    // our own area on the same device and make that area active — dead
    // swapped PTEs then install verbatim, with zero migration I/O.
    let mut swap_adopted = false;
    if let (Some(idx), Some(dead_area)) = (adopt.swap, dead_swap.as_ref()) {
        if let Some(ours) = k.swaps.get(idx as usize).cloned() {
            // Contained: a fault here falls back to per-page migration.
            let adopted = supervisor::contain(|| {
                ow_crashpoint::crash_point!("recovery.adopt.swap.bitmap");
                ours.adopt_bitmap(&mut k.machine, dead_area.bitmap, dead_area.nslots)
            });
            if matches!(adopted, Ok(Ok(()))) {
                k.active_swap = idx as usize;
                swap_adopted = true;
            }
        }
    }

    // §7 extension: restore consistent pipes globally before the processes
    // that reference them (§3.3's semaphore rule — a pipe locked at crash
    // time was mid-update and is lost).
    let pipes_restored = if config.resurrect_pipes {
        Some(restore_pipes(k, &header, stats))
    } else {
        None
    };

    let selected: Vec<_> = reader::read_proc_list(&k.machine.phys, &header, stats)
        .unwrap_or_default()
        .into_iter()
        .filter(|(_, d)| d.state != pstate::EXITED && policy.selects(&d.name))
        .collect();

    let budget = sup
        .per_process_budget
        .unwrap_or_else(|| supervisor::per_process_budget(&k.machine.cost, info.crash_frames));
    let mut dog = ow_simhw::watchdog::Watchdog::new(budget);
    dog.enable(k.machine.clock.now());

    // Distinct processes that hit at least one hard fault — the storm
    // counter. Counting processes (not raw panics) means one thoroughly
    // broken process walking the whole ladder never triggers escalation by
    // itself.
    let mut storm_procs = 0u32;

    for (idx, (_addr, old_desc)) in selected.iter().enumerate() {
        if sup.enabled && storm_procs >= sup.escalation_threshold {
            return Ok(StageOutcome::PanicStorm(format!(
                "{storm_procs} of {} processes hit hard recovery faults",
                selected.len()
            )));
        }
        let before = stats.total_bytes;
        let before_pt = stats.pt_bytes;
        let mut report = ProcReport {
            old_pid: old_desc.pid,
            new_pid: None,
            name: old_desc.name.clone(),
            outcome: ProcOutcome::FailedCorrupt("unset".into()),
            failed_resources: 0,
            bytes_read: 0,
            pt_bytes: 0,
            pages_copied: 0,
            pages_mapped: 0,
            pages_swapped: 0,
            rung: LadderRung::Full,
            attempts: 0,
        };
        let mut rung = LadderRung::Full;
        let mut had_hard_fault = false;

        report.outcome = loop {
            report.attempts += 1;
            report.rung = rung;

            // Bottom rung: abandon the dead image, restart from the
            // registry. Still contained — a panicking `fresh` factory
            // costs this process only.
            if rung == LadderRung::CleanRestart {
                match supervisor::contain(|| clean_restart(k, registry, &old_desc.name)) {
                    Ok((outcome, new_pid)) => {
                        report.new_pid = new_pid;
                        break outcome;
                    }
                    Err(msg) => {
                        summary.contained_panics += 1;
                        break ProcOutcome::FailedCorrupt(format!("clean restart panicked: {msg}"));
                    }
                }
            }

            dog.rearm(k.machine.clock.now());
            if rung == LadderRung::Full {
                if let Some(s) = plan.stalls.iter().find(|s| s.victim == idx) {
                    // Injected stall: the engine spins in a corrupted
                    // structure, burning simulated cycles.
                    k.machine.clock.charge(s.cycles);
                }
            }
            // Everything the engine creates from here on has pid >= the
            // watermark and is scrubbed if the attempt dies.
            let watermark = k.next_pid;
            let inject_panic = plan
                .engine_panics
                .iter()
                .any(|p| p.victim == idx && rung <= p.panics_through);
            let dead_view = DeadKernel {
                header: &header,
                swap: dead_swap.as_ref(),
                crash_region: (info.crash_base, info.crash_frames),
                resurrect_sockets: config.resurrect_sockets,
                pipes_restored,
                swap_adopted: swap_adopted && rung < LadderRung::NoSwapMigration,
                cache_adopted: adopt.cache && rung < LadderRung::AnonymousOnly,
            };
            let attempt = supervisor::contain(|| {
                if inject_panic {
                    panic!("injected fault: resurrection engine panic");
                }
                resurrect::resurrect_process(k, &dead_view, old_desc, config.strategy, rung, stats)
                    .map(|r| {
                        let (outcome, new_pid) = finish_process(
                            k,
                            registry,
                            &old_desc.name,
                            r.new_pid,
                            r.failed_resources,
                            old_desc.crash_proc != 0,
                        );
                        (r, outcome, new_pid)
                    })
            });
            let over_budget = dog.check_fire(k.machine.clock.now());

            let hard = match attempt {
                Err(msg) => {
                    summary.contained_panics += 1;
                    k.trace_event(
                        EventKind::RecoveryPanicContained,
                        old_desc.pid,
                        rung as u64,
                        0,
                    );
                    HardFault::Panic(msg)
                }
                Ok(Err(e)) => HardFault::Read(e),
                Ok(Ok(_)) if over_budget => {
                    // The attempt "finished" only because simulated time
                    // kept running; past the budget the watchdog has
                    // already cut it off, so the late result is discarded.
                    summary.watchdog_fires += 1;
                    k.trace_event(EventKind::RecoveryWatchdogFired, old_desc.pid, budget, 0);
                    HardFault::Budget
                }
                Ok(Ok((r, outcome, new_pid))) => {
                    *integrity_fixes += r.integrity_fixes;
                    report.failed_resources = r.failed_resources;
                    report.pages_copied = r.pages.copied;
                    report.pages_mapped = r.pages.mapped;
                    report.pages_swapped = r.pages.swapped;
                    report.new_pid = new_pid;
                    break outcome;
                }
            };

            // Hard failure: scrub whatever the attempt half-created, then
            // retry one rung weaker (or fail legacy-style with the
            // supervisor off).
            had_hard_fault = true;
            scrub_partial(k, watermark);
            if !sup.enabled {
                match hard {
                    HardFault::Read(e) => break ProcOutcome::FailedCorrupt(e.to_string()),
                    HardFault::Panic(msg) => {
                        return Err(MicrorebootFailure::RecoveryFailed(format!(
                            "unsupervised resurrection engine panic: {msg}"
                        )))
                    }
                    HardFault::Budget => {
                        return Err(MicrorebootFailure::RecoveryFailed(
                            "resurrection stalled past its cycle budget with the supervisor \
                             disabled; recovery never completes"
                                .to_string(),
                        ))
                    }
                }
            }
            let class = hard.class();
            // Hard faults are classified above the bottom rung, so weaker()
            // always succeeds here; the fallback keeps the ladder monotone
            // even if classification is ever wrong.
            rung = rung.weaker().unwrap_or(LadderRung::CleanRestart);
            // The ladder transition is recovery-manager code running
            // outside any containment scope — ReHype's hardest case.
            ow_crashpoint::crash_point!("recovery.ladder.rung.degrade");
            k.trace_event(
                EventKind::RecoveryDegraded,
                old_desc.pid,
                rung as u64,
                class,
            );
        };

        if had_hard_fault {
            storm_procs += 1;
        }
        report.bytes_read = stats.total_bytes - before;
        report.pt_bytes = stats.pt_bytes - before_pt;
        reports.push(report);
    }
    Ok(StageOutcome::Done(reports))
}

/// Reaps every process the dead attempt created (pids at or above the
/// watermark). A descriptor too corrupt even to reap is dropped from the
/// process table; morph's memory reclaim frees its orphaned frames.
fn scrub_partial(k: &mut Kernel, watermark: u64) {
    let pids: Vec<u64> = k
        .procs
        .iter()
        .map(|p| p.pid)
        .filter(|&p| p >= watermark)
        .collect();
    for pid in pids {
        if k.reap(pid).is_err() {
            k.procs.retain(|p| p.pid != pid);
        }
    }
}

/// Generation-2 recovery: the dead image is not trusted at all. Names of
/// the processes to revive come from a *contained* read of the dead process
/// list (best effort), falling back to the program registry; each is
/// started fresh via the bottom ladder rung.
fn restart_only_recovery(
    k: &mut Kernel,
    registry: &ProgramRegistry,
    policy: &ResurrectionPolicy,
    info: HandoffInfo,
    stats: &mut ReadStats,
) -> Vec<ProcReport> {
    let named: Vec<(u64, String)> = supervisor::contain(|| {
        // Best-effort dead-list read: a fault here falls back to the
        // registry names instead of killing gen-2 recovery.
        ow_crashpoint::crash_point!("recovery.restart.names.read");
        let header = reader::read_header(&k.machine.phys, info.dead_kernel_frame, stats).ok()?;
        let list = reader::read_proc_list(&k.machine.phys, &header, stats).ok()?;
        Some(
            list.into_iter()
                .filter(|(_, d)| d.state != pstate::EXITED && policy.selects(&d.name))
                .map(|(_, d)| (d.pid, d.name))
                .collect::<Vec<_>>(),
        )
    })
    .ok()
    .flatten()
    .unwrap_or_else(|| {
        registry
            .names()
            .into_iter()
            .filter(|n| policy.selects(n))
            .map(|n| (0, n))
            .collect()
    });

    let mut reports = Vec::new();
    for (old_pid, name) in named {
        let (outcome, new_pid) = match supervisor::contain(|| clean_restart(k, registry, &name)) {
            Ok(pair) => pair,
            Err(msg) => (
                ProcOutcome::FailedCorrupt(format!("clean restart panicked: {msg}")),
                None,
            ),
        };
        reports.push(ProcReport {
            old_pid,
            new_pid,
            name,
            outcome,
            failed_resources: 0,
            bytes_read: 0,
            pt_bytes: 0,
            pages_copied: 0,
            pages_mapped: 0,
            pages_swapped: 0,
            rung: LadderRung::CleanRestart,
            attempts: 1,
        });
    }
    reports
}

/// The bottom ladder rung: starts a fresh instance of `name` from the
/// program registry, abandoning the dead image entirely.
fn clean_restart(
    k: &mut Kernel,
    registry: &ProgramRegistry,
    name: &str,
) -> (ProcOutcome, Option<u64>) {
    ow_crashpoint::crash_point!("recovery.ladder.clean.restart");
    let Some(image) = registry.get(name) else {
        return (ProcOutcome::FailedNoExecutable, None);
    };
    match k.spawn(SpawnSpec::new(name, Box::new(StubProgram))) {
        Ok(pid) => {
            let fresh = {
                let mut api = KernelApi::new(k, pid);
                (image.fresh)(&mut api, &[])
            };
            if let Ok(p) = k.proc_mut(pid) {
                p.program = Some(fresh);
            }
            (ProcOutcome::RestartedClean, Some(pid))
        }
        Err(e) => (
            ProcOutcome::FailedCorrupt(format!("clean restart: {e}")),
            None,
        ),
    }
}

/// Reads the resurrection policy, possibly from the re-mounted filesystem
/// (the paper's configuration file for autonomic recovery, §3.3).
fn resolve_policy(k: &mut Kernel, source: &PolicySource) -> ResurrectionPolicy {
    match source {
        PolicySource::Inline(p) => p.clone(),
        PolicySource::File(path) => {
            let fs = k.fs.clone();
            let content = fs
                .lookup(&mut k.machine, path)
                .ok()
                .flatten()
                .and_then(|ino| {
                    let size = fs.size_of(&mut k.machine, ino).ok()?;
                    let mut buf = vec![0u8; size as usize];
                    fs.read_at(&mut k.machine, ino, 0, &mut buf).ok()?;
                    String::from_utf8(buf).ok()
                });
            content
                .and_then(|s| ResurrectionPolicy::from_json(&s).ok())
                .unwrap_or_else(ResurrectionPolicy::all)
        }
    }
}

/// Warm-morph validation: reads the dead kernel's seal and builds the
/// adoption plan. Fully contained — a panic anywhere inside validation
/// yields the empty plan (pure cold fallback), never a failed microreboot.
fn build_adopt_plan(
    k: &mut Kernel,
    info: HandoffInfo,
    dead_generation: u32,
    stats: &mut ReadStats,
) -> AdoptPlan {
    supervisor::contain(|| try_build_adopt_plan(k, info, dead_generation, stats))
        .ok()
        .flatten()
        .unwrap_or_default()
}

/// Per-structure validate-then-adopt: each of the three sealed structures
/// (frame bitmap, swap-slot map, page cache) is CRC-checked against the
/// dead bytes independently; whatever fails drops out of the plan and the
/// cold rebuild covers it. Returns `None` when there is no usable seal at
/// all (fresh boot, stale generation, or unreadable record).
fn try_build_adopt_plan(
    k: &mut Kernel,
    info: HandoffInfo,
    dead_generation: u32,
    stats: &mut ReadStats,
) -> Option<AdoptPlan> {
    // Validation happens between boot and resurrection — recovery-manager
    // code walking untrusted memory.
    ow_crashpoint::crash_point!("recovery.adopt.seal.validate");
    let header = reader::read_header(&k.machine.phys, info.dead_kernel_frame, stats).ok()?;
    let addr = ow_kernel::layout::seal_addr(header.base_frame, header.nframes);
    let (seal, _) = WarmSeal::read(&k.machine.phys, addr).ok()?;
    if seal.valid == 0 || seal.generation != dead_generation {
        return None;
    }
    let mut plan = AdoptPlan::default();

    // Frame-allocator bitmap.
    let falloc_bytes = seal.falloc_capacity.div_ceil(8);
    let cost = k.machine.cost.validate_byte * falloc_bytes;
    k.machine.clock.charge(cost);
    if ow_layout::crc::crc32_range(&k.machine.phys, seal.falloc_bitmap, falloc_bytes)
        .ok()
        .is_some_and(|c| c == seal.falloc_crc)
    {
        if let Ok(used) = seal.read_falloc_bitmap(&k.machine.phys) {
            plan.frames = Some(AdoptedFrames {
                base: seal.falloc_base,
                used,
                dead_kernel: (header.base_frame, header.nframes),
            });
        }
    }

    // Swap-slot bitmap — adoptable independently of the frames (the slots
    // live on disk; only the bitmap bytes are revalidated).
    let cost = k.machine.cost.validate_byte * seal.swap_nslots as u64;
    k.machine.clock.charge(cost);
    if ow_layout::crc::crc32_range(&k.machine.phys, seal.swap_bitmap, seal.swap_nslots as u64)
        .ok()
        .is_some_and(|c| c == seal.swap_crc)
        && k.swaps
            .get(seal.swap_index as usize)
            .is_some_and(|a| a.nslots == seal.swap_nslots)
    {
        plan.swap = Some(seal.swap_index);
    }

    // Page cache — only meaningful when the frames ride along (a cold
    // reclaim would free the adopted node frames out from under it).
    if plan.frames.is_some() {
        let cost = k.machine.cost.validate_byte * seal.cache_nodes * PageCacheNode::SIZE;
        k.machine.clock.charge(cost);
        if cache_walk_crc(k, &header, stats) == Some((seal.cache_nodes, seal.cache_crc)) {
            plan.cache = true;
        }
    }
    Some(plan)
}

/// Replays the sealer's page-cache walk over the dead structures with the
/// validated readers: live processes in list order, file-table slots in
/// index order, shared records deduplicated by address, nodes in chain
/// order. Any divergence — a node count or CRC mismatch, or a reader
/// failure anywhere — returns `None` and the cache is rebuilt cold.
fn cache_walk_crc(
    k: &mut Kernel,
    header: &ow_layout::KernelHeader,
    stats: &mut ReadStats,
) -> Option<(u64, u32)> {
    let mut hasher = ow_layout::crc::Crc32::new();
    let mut nodes = 0u64;
    let mut seen: Vec<u64> = Vec::new();
    let list = reader::read_proc_list(&k.machine.phys, header, stats).ok()?;
    for (_addr, desc) in list {
        if desc.state == pstate::EXITED || desc.files == 0 {
            continue;
        }
        let tab = reader::read_file_table(&k.machine.phys, &desc, stats).ok()?;
        for &frec_addr in &tab.fds {
            if frec_addr == 0 || seen.contains(&frec_addr) {
                continue;
            }
            seen.push(frec_addr);
            let frec = reader::read_file_record(&k.machine.phys, frec_addr, stats).ok()?;
            let max_nodes = (frec.fsize / ow_simhw::PAGE_SIZE as u64 + 8) as usize;
            let chain =
                reader::read_cache_chain(&k.machine.phys, frec.cache_head, max_nodes, stats)
                    .ok()?;
            for (node_addr, _node) in chain {
                hasher
                    .update_range(&k.machine.phys, node_addr, PageCacheNode::SIZE)
                    .ok()?;
                nodes += 1;
            }
        }
    }
    Some((nodes, hasher.finish()))
}

/// §7 extension: recreates every consistent pipe of the dead kernel in the
/// crash kernel (same ids, same buffered bytes). Returns `true` only if all
/// pipes were consistent and restored.
fn restore_pipes(
    k: &mut Kernel,
    header: &ow_layout::KernelHeader,
    stats: &mut crate::stats::ReadStats,
) -> bool {
    let old = reader::read_pipe_table(&k.machine.phys, header, stats);
    let mut all_ok = true;
    for entry in old {
        match entry {
            Some(desc) if desc.locked == 0 => {
                // Consistent: recreate with the same contents.
                let Ok(id) = k.pipe_create() else {
                    all_ok = false;
                    continue;
                };
                // Copy the ring contents byte-exactly.
                let Some(new_pfn) = k.pipes.get(id as usize).map(|p| p.buf_pfn) else {
                    all_ok = false;
                    continue;
                };
                let mut buf = vec![0u8; ow_simhw::PAGE_SIZE];
                let src = desc.buf_pfn * ow_simhw::PAGE_BYTES;
                // ow-lint: allow(untrusted-read) -- bulk pipe-buffer payload copy; desc came from the validated pipe-table reader and any byte pattern is a legal buffer
                if k.machine.phys.read(src, &mut buf).is_err() {
                    all_ok = false;
                    continue;
                }
                stats.add(ReadKind::PipeBuffer, buf.len() as u64);
                // ow-lint: allow(validate-before-adopt) -- opaque pipe payload copied into a freshly allocated crash-kernel frame; the adopted metadata came through the validated pipe-table reader
                let _ = k.machine.phys.write(new_pfn * ow_simhw::PAGE_BYTES, &buf);
                let addr = k.pipe_table_addr + id as u64 * ow_layout::PipeDesc::SIZE;
                let _ = ow_layout::PipeDesc {
                    locked: 0,
                    rd: desc.rd,
                    wr: desc.wr,
                    buf_pfn: new_pfn,
                }
                .write(&mut k.machine.phys, addr);
            }
            Some(_locked) => {
                // Held semaphore: the structure was mid-update (§3.3).
                // Keep the id allocated so later pipes keep their ids, but
                // it starts empty.
                let _ = k.pipe_create();
                all_ok = false;
            }
            None => {
                let _ = k.pipe_create();
                all_ok = false;
            }
        }
    }
    all_ok
}

/// Rehydrates the program and applies the Table 1 decision matrix.
fn finish_process(
    k: &mut Kernel,
    registry: &ProgramRegistry,
    name: &str,
    new_pid: u64,
    failed: u32,
    crash_proc_registered: bool,
) -> (ProcOutcome, Option<u64>) {
    let Some(image) = registry.get(name) else {
        let _ = k.reap(new_pid);
        return (ProcOutcome::FailedNoExecutable, None);
    };

    // Rebuild the program object purely from resurrected memory.
    let mut program = {
        let mut api = KernelApi::new(k, new_pid);
        (image.rehydrate)(&mut api)
    };

    if crash_proc_registered {
        // The crash kernel allocates a temporary user stack and calls the
        // crash procedure with the failure bitmask (§3.4). The procedure's
        // own system calls are fresh calls — the ERESTART owed to the
        // *interrupted* call is delivered only if execution continues.
        let owed_restart = k
            .proc_mut(new_pid)
            .map(|p| std::mem::take(&mut p.deliver_restart))
            .unwrap_or(false);
        let action = {
            let mut api = KernelApi::new(k, new_pid);
            program.crash_procedure(&mut api, failed)
        };
        match action {
            CrashAction::Continue => {
                if let Ok(p) = k.proc_mut(new_pid) {
                    p.program = Some(program);
                    p.deliver_restart = owed_restart;
                }
                (ProcOutcome::ContinuedAfterCrashProc, Some(new_pid))
            }
            CrashAction::SaveAndRestart(args) => {
                // Keep the terminal across the restart.
                let term = k
                    .read_desc(new_pid)
                    .map(|d| d.term_id)
                    .ok()
                    .filter(|&t| t != u32::MAX);
                let _ = k.reap(new_pid);
                let mut spec = SpawnSpec::new(name, Box::new(StubProgram));
                spec.term = term;
                match k.spawn(spec) {
                    Ok(fresh_pid) => {
                        let fresh = {
                            let mut api = KernelApi::new(k, fresh_pid);
                            (image.fresh)(&mut api, &args)
                        };
                        if let Ok(p) = k.proc_mut(fresh_pid) {
                            p.program = Some(fresh);
                        }
                        (ProcOutcome::SavedAndRestarted, Some(fresh_pid))
                    }
                    Err(e) => (ProcOutcome::FailedCorrupt(format!("restart: {e}")), None),
                }
            }
            CrashAction::GiveUp => {
                let _ = k.reap(new_pid);
                (ProcOutcome::GaveUp, None)
            }
        }
    } else if failed == 0 {
        // Table 1 top-right: continue transparently.
        if let Ok(p) = k.proc_mut(new_pid) {
            p.program = Some(program);
        }
        (ProcOutcome::ContinuedTransparently, Some(new_pid))
    } else {
        // Table 1 bottom-right: resurrection fails.
        let _ = k.reap(new_pid);
        (ProcOutcome::FailedUnresurrectable, None)
    }
}

/// A session wrapper: owns the current kernel across microreboot
/// generations so examples and campaigns can treat the system as one
/// continuously running machine.
pub struct Otherworld {
    kernel: Option<Kernel>,
    /// Otherworld configuration.
    pub config: OtherworldConfig,
    /// Report of the most recent microreboot.
    pub last_report: Option<MicrorebootReport>,
}

impl Otherworld {
    /// Cold-boots the system on a standard machine.
    pub fn boot(
        machine_config: ow_simhw::machine::MachineConfig,
        kernel_config: KernelConfig,
        config: OtherworldConfig,
        registry: ProgramRegistry,
    ) -> Result<Self, ow_kernel::KernelError> {
        let machine = ow_kernel::standard_machine(machine_config);
        let kernel = Kernel::boot_cold(machine, kernel_config, registry)?;
        Ok(Otherworld {
            kernel: Some(kernel),
            config,
            last_report: None,
        })
    }

    /// Wraps an existing kernel.
    pub fn from_kernel(kernel: Kernel, config: OtherworldConfig) -> Self {
        Otherworld {
            kernel: Some(kernel),
            config,
            last_report: None,
        }
    }

    /// The current kernel.
    ///
    /// # Panics
    ///
    /// Panics if called during a failed microreboot (kernel consumed).
    pub fn kernel(&self) -> &Kernel {
        // ow-lint: allow(recovery-panic) -- documented # Panics API contract for a consumed (dead) session
        self.kernel.as_ref().expect("kernel present")
    }

    /// The current kernel, mutably.
    ///
    /// # Panics
    ///
    /// Panics if called during a failed microreboot (kernel consumed).
    pub fn kernel_mut(&mut self) -> &mut Kernel {
        // ow-lint: allow(recovery-panic) -- documented # Panics API contract for a consumed (dead) session
        self.kernel.as_mut().expect("kernel present")
    }

    /// Whether the current kernel has panicked.
    pub fn is_panicked(&self) -> bool {
        self.kernel().panicked.is_some()
    }

    /// Performs the microreboot of a panicked kernel. On success the
    /// session continues on the new (morphed) kernel.
    ///
    /// Calling this on a healthy kernel refuses with
    /// [`MicrorebootFailure::NotPanicked`] and leaves the session intact.
    /// A handoff or crash-boot failure, however, is a real machine death:
    /// the session is over and only [`Otherworld::is_dead`] remains safe to
    /// call — as on hardware, where that outcome is a full reboot with all
    /// volatile state lost.
    pub fn microreboot_now(&mut self) -> Result<&MicrorebootReport, MicrorebootFailure> {
        let Some(dead) = self.kernel.take_if(|k| k.panicked.is_some()) else {
            return Err(MicrorebootFailure::NotPanicked);
        };
        match microreboot(dead, &self.config) {
            Ok((k, report)) => {
                self.kernel = Some(k);
                Ok(self.last_report.insert(report))
            }
            Err(e) => Err(e),
        }
    }

    /// Whether a failed microreboot has ended the session (the machine
    /// halted; only a cold reboot of a new [`Otherworld`] recovers).
    pub fn is_dead(&self) -> bool {
        self.kernel.is_none()
    }

    /// Resurrection strategy shortcut.
    pub fn strategy(&self) -> ResurrectionStrategy {
        self.config.strategy
    }

    /// §7: hot kernel update. Loads `new_kernel` as the crash kernel's
    /// configuration (a *different build* — the paper notes nothing
    /// requires the two kernels to be the same version) and performs a
    /// planned microreboot: applications survive the kernel swap exactly as
    /// they survive a crash, making this usable for updating a kernel under
    /// mission-critical software, or for rejuvenation.
    pub fn hot_update(
        &mut self,
        new_kernel: KernelConfig,
    ) -> Result<&MicrorebootReport, MicrorebootFailure> {
        self.config.crash_kernel = new_kernel;
        self.kernel_mut()
            .do_panic(ow_kernel::PanicCause::Oops("planned kernel update"));
        self.microreboot_now()
    }
}
