//! The microreboot orchestrator: panic → crash-kernel boot → resurrection →
//! crash procedures → morph (the five stages of §3).

use crate::{
    config::{OtherworldConfig, PolicySource, ResurrectionStrategy},
    policy::ResurrectionPolicy,
    reader,
    resurrect::{self, DeadKernel},
    stats::{MicrorebootReport, ProcOutcome, ProcReport, ReadKind, ReadStats},
};
use ow_kernel::{
    layout::pstate,
    program::{Program, StepResult, UserApi},
    syscall::KernelApi,
    CrashAction, Kernel, KernelConfig, PanicOutcome, ProgramRegistry, SpawnSpec,
};
use ow_layout::Record;
use std::fmt;

/// Ways a microreboot can fail outright (Table 5's "failure to boot the
/// crash kernel").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MicrorebootFailure {
    /// The panic path could not transfer control (corrupted handoff
    /// structures, unhandled double fault, stall with no watchdog, ...).
    SystemHalted(String),
    /// Control transferred but the crash kernel failed to initialize.
    CrashBootFailed(String),
    /// The kernel has not panicked; nothing to do.
    NotPanicked,
}

impl fmt::Display for MicrorebootFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MicrorebootFailure::SystemHalted(why) => write!(f, "system halted: {why}"),
            MicrorebootFailure::CrashBootFailed(why) => {
                write!(f, "crash kernel boot failed: {why}")
            }
            MicrorebootFailure::NotPanicked => write!(f, "kernel has not panicked"),
        }
    }
}

impl std::error::Error for MicrorebootFailure {}

/// A do-nothing program used to bootstrap a process slot before the real
/// program object is attached (restart path).
struct StubProgram;

impl Program for StubProgram {
    fn step(&mut self, _api: &mut dyn UserApi) -> StepResult {
        StepResult::Exited(0)
    }
    fn save_state(&mut self, _api: &mut dyn UserApi) {}
}

/// Performs a complete microreboot of a panicked kernel, consuming it and
/// returning the new main kernel (the former crash kernel, morphed) plus a
/// report.
///
/// # Errors
///
/// Fails when the handoff never happened ([`PanicOutcome::SystemHalted`]) or
/// the crash kernel could not boot. Per-process resurrection failures do
/// *not* fail the microreboot; they are recorded in the report.
pub fn microreboot(
    dead: Kernel,
    config: &OtherworldConfig,
) -> Result<(Kernel, MicrorebootReport), MicrorebootFailure> {
    let info = match &dead.panicked {
        Some(PanicOutcome::Handoff(info)) => *info,
        Some(PanicOutcome::SystemHalted(why)) => {
            return Err(MicrorebootFailure::SystemHalted((*why).to_string()))
        }
        None => return Err(MicrorebootFailure::NotPanicked),
    };

    let registry = dead.registry.clone();
    let dead_generation = dead.generation;
    let machine = dead.machine;
    let t_panic = machine.clock.now();

    // Recover the dead kernel's flight record *before* booting the crash
    // kernel: boot re-arms (and zeroes) the trace region for the next
    // generation. The region's location comes from the handoff block, and
    // recovery is validated record-by-record — wild-write damage costs
    // individual records, never the whole recording.
    let flight = ow_layout::HandoffBlock::read(&machine.phys)
        .map(|(h, _)| ow_trace::FlightRecord::recover(&machine.phys, h.trace_base, h.trace_frames))
        .unwrap_or_default();

    // Stage 3: the crash kernel initializes itself inside its reservation.
    let mut k = Kernel::boot_crash(machine, config.crash_kernel.clone(), registry.clone(), info)
        .map_err(|e| MicrorebootFailure::CrashBootFailed(e.to_string()))?;
    let t_booted = k.machine.clock.now();

    // Stage 4: resurrection.
    let mut stats = ReadStats::default();
    let mut procs_report = Vec::new();
    let mut integrity_fixes = 0u64;

    let policy = resolve_policy(&mut k, &config.policy);

    let header = reader::read_header(&k.machine.phys, info.dead_kernel_frame, &mut stats);
    if let Ok(header) = header {
        // The dead kernel's active swap partition, reopened by symbolic
        // device name from its descriptor (§3.3).
        let dead_swap = reader::read_swap_descs(&k.machine.phys, &header, &mut stats)
            .ok()
            .and_then(|descs| {
                let want = format!("swap{}", dead_generation % 2);
                descs.into_iter().find(|(_, d)| d.dev_name == want)
            })
            .and_then(|(addr, d)| {
                ow_kernel::swap::SwapArea::from_desc(&mut k.machine, &d, addr).ok()
            });

        // §7 extension: restore consistent pipes globally before the
        // processes that reference them (§3.3's semaphore rule — a pipe
        // locked at crash time was mid-update and is lost).
        let pipes_restored = if config.resurrect_pipes {
            Some(restore_pipes(&mut k, &header, &mut stats))
        } else {
            None
        };

        let proc_list =
            reader::read_proc_list(&k.machine.phys, &header, &mut stats).unwrap_or_default();

        for (_addr, old_desc) in proc_list {
            if old_desc.state == pstate::EXITED || !policy.selects(&old_desc.name) {
                continue;
            }
            let before = stats.total_bytes;
            let before_pt = stats.pt_bytes;
            let dead_view = DeadKernel {
                header: &header,
                swap: dead_swap.as_ref(),
                crash_region: (info.crash_base, info.crash_frames),
                resurrect_sockets: config.resurrect_sockets,
                pipes_restored,
            };
            let mut report = ProcReport {
                old_pid: old_desc.pid,
                new_pid: None,
                name: old_desc.name.clone(),
                outcome: ProcOutcome::FailedCorrupt("unset".into()),
                failed_resources: 0,
                bytes_read: 0,
                pt_bytes: 0,
                pages_copied: 0,
                pages_mapped: 0,
                pages_swapped: 0,
            };
            match resurrect::resurrect_process(
                &mut k,
                &dead_view,
                &old_desc,
                config.strategy,
                &mut stats,
            ) {
                Ok(r) => {
                    integrity_fixes += r.integrity_fixes;
                    report.failed_resources = r.failed_resources;
                    report.pages_copied = r.pages.copied;
                    report.pages_mapped = r.pages.mapped;
                    report.pages_swapped = r.pages.swapped;
                    let (outcome, new_pid) = finish_process(
                        &mut k,
                        &registry,
                        &old_desc.name,
                        r.new_pid,
                        r.failed_resources,
                        old_desc.crash_proc != 0,
                    );
                    report.outcome = outcome;
                    report.new_pid = new_pid;
                }
                Err(e) => {
                    report.outcome = ProcOutcome::FailedCorrupt(e.to_string());
                }
            }
            report.bytes_read = stats.total_bytes - before;
            report.pt_bytes = stats.pt_bytes - before_pt;
            procs_report.push(report);
        }
    }
    let t_resurrected = k.machine.clock.now();

    // Stage 5: morph into the main kernel and install a fresh crash kernel.
    k.morph_into_main()
        .map_err(|e| MicrorebootFailure::CrashBootFailed(format!("morph: {e}")))?;
    let t_done = k.machine.clock.now();

    let secs = |c: u64| c as f64 / ow_simhw::clock::CYCLES_PER_SEC as f64;
    let report = MicrorebootReport {
        generation: k.generation,
        procs: procs_report,
        stats,
        crash_boot_seconds: secs(t_booted - t_panic),
        resurrection_seconds: secs(t_resurrected - t_booted),
        total_seconds: secs(t_done - t_panic),
        integrity_fixes,
        flight,
    };
    Ok((k, report))
}

/// Reads the resurrection policy, possibly from the re-mounted filesystem
/// (the paper's configuration file for autonomic recovery, §3.3).
fn resolve_policy(k: &mut Kernel, source: &PolicySource) -> ResurrectionPolicy {
    match source {
        PolicySource::Inline(p) => p.clone(),
        PolicySource::File(path) => {
            let fs = k.fs.clone();
            let content = fs
                .lookup(&mut k.machine, path)
                .ok()
                .flatten()
                .and_then(|ino| {
                    let size = fs.size_of(&mut k.machine, ino).ok()?;
                    let mut buf = vec![0u8; size as usize];
                    fs.read_at(&mut k.machine, ino, 0, &mut buf).ok()?;
                    String::from_utf8(buf).ok()
                });
            content
                .and_then(|s| ResurrectionPolicy::from_json(&s).ok())
                .unwrap_or_else(ResurrectionPolicy::all)
        }
    }
}

/// §7 extension: recreates every consistent pipe of the dead kernel in the
/// crash kernel (same ids, same buffered bytes). Returns `true` only if all
/// pipes were consistent and restored.
fn restore_pipes(
    k: &mut Kernel,
    header: &ow_layout::KernelHeader,
    stats: &mut crate::stats::ReadStats,
) -> bool {
    let old = reader::read_pipe_table(&k.machine.phys, header, stats);
    let mut all_ok = true;
    for entry in old {
        match entry {
            Some(desc) if desc.locked == 0 => {
                // Consistent: recreate with the same contents.
                let Ok(id) = k.pipe_create() else {
                    all_ok = false;
                    continue;
                };
                // Copy the ring contents byte-exactly.
                let new_pfn = k.pipes[id as usize].buf_pfn;
                let mut buf = vec![0u8; ow_simhw::PAGE_SIZE];
                if k.machine
                    .phys
                    .read(desc.buf_pfn * ow_simhw::PAGE_BYTES, &mut buf)
                    .is_err()
                {
                    all_ok = false;
                    continue;
                }
                stats.add(ReadKind::PipeBuffer, buf.len() as u64);
                let _ = k.machine.phys.write(new_pfn * ow_simhw::PAGE_BYTES, &buf);
                let addr = k.pipe_table_addr + id as u64 * ow_layout::PipeDesc::SIZE;
                let _ = ow_layout::PipeDesc {
                    locked: 0,
                    rd: desc.rd,
                    wr: desc.wr,
                    buf_pfn: new_pfn,
                }
                .write(&mut k.machine.phys, addr);
            }
            Some(_locked) => {
                // Held semaphore: the structure was mid-update (§3.3).
                // Keep the id allocated so later pipes keep their ids, but
                // it starts empty.
                let _ = k.pipe_create();
                all_ok = false;
            }
            None => {
                let _ = k.pipe_create();
                all_ok = false;
            }
        }
    }
    all_ok
}

/// Rehydrates the program and applies the Table 1 decision matrix.
fn finish_process(
    k: &mut Kernel,
    registry: &ProgramRegistry,
    name: &str,
    new_pid: u64,
    failed: u32,
    crash_proc_registered: bool,
) -> (ProcOutcome, Option<u64>) {
    let Some(image) = registry.get(name) else {
        let _ = k.reap(new_pid);
        return (ProcOutcome::FailedNoExecutable, None);
    };

    // Rebuild the program object purely from resurrected memory.
    let mut program = {
        let mut api = KernelApi::new(k, new_pid);
        (image.rehydrate)(&mut api)
    };

    if crash_proc_registered {
        // The crash kernel allocates a temporary user stack and calls the
        // crash procedure with the failure bitmask (§3.4). The procedure's
        // own system calls are fresh calls — the ERESTART owed to the
        // *interrupted* call is delivered only if execution continues.
        let owed_restart = k
            .proc_mut(new_pid)
            .map(|p| std::mem::take(&mut p.deliver_restart))
            .unwrap_or(false);
        let action = {
            let mut api = KernelApi::new(k, new_pid);
            program.crash_procedure(&mut api, failed)
        };
        match action {
            CrashAction::Continue => {
                if let Ok(p) = k.proc_mut(new_pid) {
                    p.program = Some(program);
                    p.deliver_restart = owed_restart;
                }
                (ProcOutcome::ContinuedAfterCrashProc, Some(new_pid))
            }
            CrashAction::SaveAndRestart(args) => {
                // Keep the terminal across the restart.
                let term = k
                    .read_desc(new_pid)
                    .map(|d| d.term_id)
                    .ok()
                    .filter(|&t| t != u32::MAX);
                let _ = k.reap(new_pid);
                let mut spec = SpawnSpec::new(name, Box::new(StubProgram));
                spec.term = term;
                match k.spawn(spec) {
                    Ok(fresh_pid) => {
                        let fresh = {
                            let mut api = KernelApi::new(k, fresh_pid);
                            (image.fresh)(&mut api, &args)
                        };
                        if let Ok(p) = k.proc_mut(fresh_pid) {
                            p.program = Some(fresh);
                        }
                        (ProcOutcome::SavedAndRestarted, Some(fresh_pid))
                    }
                    Err(e) => (ProcOutcome::FailedCorrupt(format!("restart: {e}")), None),
                }
            }
            CrashAction::GiveUp => {
                let _ = k.reap(new_pid);
                (ProcOutcome::GaveUp, None)
            }
        }
    } else if failed == 0 {
        // Table 1 top-right: continue transparently.
        if let Ok(p) = k.proc_mut(new_pid) {
            p.program = Some(program);
        }
        (ProcOutcome::ContinuedTransparently, Some(new_pid))
    } else {
        // Table 1 bottom-right: resurrection fails.
        let _ = k.reap(new_pid);
        (ProcOutcome::FailedUnresurrectable, None)
    }
}

/// A session wrapper: owns the current kernel across microreboot
/// generations so examples and campaigns can treat the system as one
/// continuously running machine.
pub struct Otherworld {
    kernel: Option<Kernel>,
    /// Otherworld configuration.
    pub config: OtherworldConfig,
    /// Report of the most recent microreboot.
    pub last_report: Option<MicrorebootReport>,
}

impl Otherworld {
    /// Cold-boots the system on a standard machine.
    pub fn boot(
        machine_config: ow_simhw::machine::MachineConfig,
        kernel_config: KernelConfig,
        config: OtherworldConfig,
        registry: ProgramRegistry,
    ) -> Result<Self, ow_kernel::KernelError> {
        let machine = ow_kernel::standard_machine(machine_config);
        let kernel = Kernel::boot_cold(machine, kernel_config, registry)?;
        Ok(Otherworld {
            kernel: Some(kernel),
            config,
            last_report: None,
        })
    }

    /// Wraps an existing kernel.
    pub fn from_kernel(kernel: Kernel, config: OtherworldConfig) -> Self {
        Otherworld {
            kernel: Some(kernel),
            config,
            last_report: None,
        }
    }

    /// The current kernel.
    ///
    /// # Panics
    ///
    /// Panics if called during a failed microreboot (kernel consumed).
    pub fn kernel(&self) -> &Kernel {
        self.kernel.as_ref().expect("kernel present")
    }

    /// The current kernel, mutably.
    ///
    /// # Panics
    ///
    /// Panics if called during a failed microreboot (kernel consumed).
    pub fn kernel_mut(&mut self) -> &mut Kernel {
        self.kernel.as_mut().expect("kernel present")
    }

    /// Whether the current kernel has panicked.
    pub fn is_panicked(&self) -> bool {
        self.kernel().panicked.is_some()
    }

    /// Performs the microreboot of a panicked kernel. On success the
    /// session continues on the new (morphed) kernel.
    ///
    /// Calling this on a healthy kernel refuses with
    /// [`MicrorebootFailure::NotPanicked`] and leaves the session intact.
    /// A handoff or crash-boot failure, however, is a real machine death:
    /// the session is over and only [`Otherworld::is_dead`] remains safe to
    /// call — as on hardware, where that outcome is a full reboot with all
    /// volatile state lost.
    pub fn microreboot_now(&mut self) -> Result<&MicrorebootReport, MicrorebootFailure> {
        if self.kernel().panicked.is_none() {
            return Err(MicrorebootFailure::NotPanicked);
        }
        let dead = self.kernel.take().expect("kernel present");
        match microreboot(dead, &self.config) {
            Ok((k, report)) => {
                self.kernel = Some(k);
                self.last_report = Some(report);
                Ok(self.last_report.as_ref().expect("just set"))
            }
            Err(e) => Err(e),
        }
    }

    /// Whether a failed microreboot has ended the session (the machine
    /// halted; only a cold reboot of a new [`Otherworld`] recovers).
    pub fn is_dead(&self) -> bool {
        self.kernel.is_none()
    }

    /// Resurrection strategy shortcut.
    pub fn strategy(&self) -> ResurrectionStrategy {
        self.config.strategy
    }

    /// §7: hot kernel update. Loads `new_kernel` as the crash kernel's
    /// configuration (a *different build* — the paper notes nothing
    /// requires the two kernels to be the same version) and performs a
    /// planned microreboot: applications survive the kernel swap exactly as
    /// they survive a crash, making this usable for updating a kernel under
    /// mission-critical software, or for rejuvenation.
    pub fn hot_update(
        &mut self,
        new_kernel: KernelConfig,
    ) -> Result<&MicrorebootReport, MicrorebootFailure> {
        self.config.crash_kernel = new_kernel;
        self.kernel_mut()
            .do_panic(ow_kernel::PanicCause::Oops("planned kernel update"));
        self.microreboot_now()
    }
}
