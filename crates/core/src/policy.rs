//! The resurrection policy: which processes the crash kernel revives.
//!
//! The paper argues most processes (window manager, cron, ...) hold no
//! important state and are best restarted cleanly; only a few processes are
//! worth resurrecting (§3.3). Interactive users pick from a list; servers
//! use a configuration file. The policy here is that file's contents.

use ow_trace::json::{ParseError, Value};

/// Which processes to resurrect after a microreboot.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ResurrectionPolicy {
    /// Resurrect every process regardless of name.
    pub resurrect_all: bool,
    /// Process names to resurrect (exact match).
    pub names: Vec<String>,
}

impl ResurrectionPolicy {
    /// A policy that resurrects everything.
    pub fn all() -> Self {
        ResurrectionPolicy {
            resurrect_all: true,
            names: Vec::new(),
        }
    }

    /// A policy that resurrects only the named processes.
    pub fn only<S: Into<String>>(names: impl IntoIterator<Item = S>) -> Self {
        ResurrectionPolicy {
            resurrect_all: false,
            names: names.into_iter().map(Into::into).collect(),
        }
    }

    /// Whether a process with this name should be resurrected.
    pub fn selects(&self, name: &str) -> bool {
        self.resurrect_all || self.names.iter().any(|n| n == name)
    }

    /// Serializes to the configuration-file format.
    pub fn to_json(&self) -> String {
        Value::obj([
            ("resurrect_all", Value::Bool(self.resurrect_all)),
            (
                "names",
                Value::Array(self.names.iter().map(|n| Value::from(n.clone())).collect()),
            ),
        ])
        .to_pretty()
    }

    /// Parses the configuration-file format. Unknown keys are ignored and
    /// missing keys default, so hand-edited files stay forgiving.
    pub fn from_json(s: &str) -> Result<Self, ParseError> {
        let v = Value::parse(s)?;
        let resurrect_all = v
            .get("resurrect_all")
            .and_then(Value::as_bool)
            .unwrap_or(false);
        let names = v
            .get("names")
            .and_then(Value::as_array)
            .map(|items| {
                items
                    .iter()
                    .filter_map(|i| i.as_str().map(str::to_string))
                    .collect()
            })
            .unwrap_or_default();
        Ok(ResurrectionPolicy {
            resurrect_all,
            names,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_selects_everything() {
        let p = ResurrectionPolicy::all();
        assert!(p.selects("mysqld"));
        assert!(p.selects("anything"));
    }

    #[test]
    fn only_selects_named() {
        let p = ResurrectionPolicy::only(["mysqld", "httpd"]);
        assert!(p.selects("mysqld"));
        assert!(p.selects("httpd"));
        assert!(!p.selects("cron"));
    }

    #[test]
    fn json_round_trip() {
        let p = ResurrectionPolicy::only(["vi"]);
        let q = ResurrectionPolicy::from_json(&p.to_json()).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn missing_keys_default() {
        let p = ResurrectionPolicy::from_json("{}").unwrap();
        assert_eq!(p, ResurrectionPolicy::default());
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(ResurrectionPolicy::from_json("{not json").is_err());
    }
}
