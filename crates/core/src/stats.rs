//! Accounting: what the crash kernel read from the dead kernel, and what
//! happened to each process.
//!
//! Table 4 of the paper reports the total size of main-kernel data the
//! crash kernel reads during resurrection and the share of it that is page
//! tables; Table 5 classifies per-experiment outcomes. Both are computed
//! from these structures.

use crate::config::LadderRung;
use std::collections::BTreeMap;

/// What kind of dead-kernel structure a validated read pulled in.
///
/// Replaces the old stringly-typed kind labels: a typo in a label silently
/// started a new accounting bucket (and `"page_tables"` was magic), whereas
/// an enum variant is checked at compile time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ReadKind {
    /// The dead kernel's header.
    KernelHeader,
    /// A process descriptor.
    ProcDesc,
    /// A VMA descriptor.
    Vma,
    /// A per-process file table.
    FileTable,
    /// An open-file record.
    FileRecord,
    /// A page-cache node.
    PageCacheNode,
    /// A signal table.
    SigTable,
    /// A shared-memory descriptor.
    ShmDesc,
    /// A socket descriptor.
    SockDesc,
    /// A pipe descriptor.
    PipeDesc,
    /// A swap-area descriptor.
    SwapDesc,
    /// A terminal descriptor.
    TermDesc,
    /// Page-table frames (Table 4 reports their share separately).
    PageTables,
    /// Terminal screen contents.
    TerminalScreen,
    /// Unsent socket payload bytes.
    SockPayload,
    /// Pipe ring-buffer contents.
    PipeBuffer,
    /// An epoch-checkpoint header record (rollback-in-place validation).
    EpochCheckpoint,
}

impl ReadKind {
    /// Stable label (report formatting).
    pub fn name(self) -> &'static str {
        match self {
            ReadKind::KernelHeader => "kernel_header",
            ReadKind::ProcDesc => "proc_desc",
            ReadKind::Vma => "vma",
            ReadKind::FileTable => "file_table",
            ReadKind::FileRecord => "file_record",
            ReadKind::PageCacheNode => "page_cache_node",
            ReadKind::SigTable => "sig_table",
            ReadKind::ShmDesc => "shm_desc",
            ReadKind::SockDesc => "sock_desc",
            ReadKind::PipeDesc => "pipe_desc",
            ReadKind::SwapDesc => "swap_desc",
            ReadKind::TermDesc => "term_desc",
            ReadKind::PageTables => "page_tables",
            ReadKind::TerminalScreen => "terminal_screen",
            ReadKind::SockPayload => "sock_payload",
            ReadKind::PipeBuffer => "pipe_buffer",
            ReadKind::EpochCheckpoint => "epoch_checkpoint",
        }
    }

    /// Name of the corresponding [`ow_layout::REGISTRY`] entry for kinds
    /// that account fixed-size records, or `None` for the variable-size
    /// buckets (page tables, screens, payload bytes).
    pub fn registry_name(self) -> Option<&'static str> {
        Some(match self {
            ReadKind::KernelHeader => "KernelHeader",
            ReadKind::ProcDesc => "ProcDesc",
            ReadKind::Vma => "VmaDesc",
            ReadKind::FileTable => "FileTable",
            ReadKind::FileRecord => "FileRecord",
            ReadKind::PageCacheNode => "PageCacheNode",
            ReadKind::SigTable => "SigTable",
            ReadKind::ShmDesc => "ShmDesc",
            ReadKind::SockDesc => "SockDesc",
            ReadKind::PipeDesc => "PipeDesc",
            ReadKind::SwapDesc => "SwapDesc",
            ReadKind::TermDesc => "TermDesc",
            ReadKind::EpochCheckpoint => "EpochCheckpoint",
            ReadKind::PageTables
            | ReadKind::TerminalScreen
            | ReadKind::SockPayload
            | ReadKind::PipeBuffer => return None,
        })
    }
}

/// Byte accounting of reads from the dead kernel.
#[derive(Debug, Clone, Default)]
pub struct ReadStats {
    /// All bytes read from dead-kernel structures (including page tables).
    pub total_bytes: u64,
    /// Bytes that were page-table frames.
    pub pt_bytes: u64,
    /// Breakdown by structure kind.
    pub by_kind: BTreeMap<ReadKind, u64>,
}

impl ReadStats {
    /// Records `bytes` read for structure `kind`.
    pub fn add(&mut self, kind: ReadKind, bytes: u64) {
        self.total_bytes += bytes;
        *self.by_kind.entry(kind).or_insert(0) += bytes;
        if kind == ReadKind::PageTables {
            self.pt_bytes += bytes;
        }
    }

    /// Page-table share of everything read (Table 4's last column).
    pub fn pt_fraction(&self) -> f64 {
        if self.total_bytes == 0 {
            0.0
        } else {
            self.pt_bytes as f64 / self.total_bytes as f64
        }
    }

    /// Cross-checks the accounting against the layout registry: every
    /// fixed-size bucket must hold a whole number of records of that
    /// structure's registered footprint. Returns the violations (kind,
    /// bytes, footprint); an empty vec means Table 4 and the registry
    /// agree.
    pub fn registry_check(&self) -> Vec<(ReadKind, u64, u64)> {
        let mut bad = Vec::new();
        for (&kind, &bytes) in &self.by_kind {
            if let Some(name) = kind.registry_name() {
                let size = ow_layout::footprint(name);
                if size == 0 || bytes % size != 0 {
                    bad.push((kind, bytes, size));
                }
            }
        }
        bad
    }

    /// Folds another stats block into this one.
    pub fn merge(&mut self, other: &ReadStats) {
        self.total_bytes += other.total_bytes;
        self.pt_bytes += other.pt_bytes;
        for (&k, v) in &other.by_kind {
            *self.by_kind.entry(k).or_insert(0) += v;
        }
    }
}

/// What happened to one process during resurrection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProcOutcome {
    /// All resources restored, no crash procedure: execution continued from
    /// the interruption point, crash unnoticed (Table 1, top-right).
    ContinuedTransparently,
    /// Crash procedure ran and chose to continue execution (Table 1, left).
    ContinuedAfterCrashProc,
    /// Crash procedure saved state and restarted the application.
    SavedAndRestarted,
    /// Crash procedure gave up; the process terminated.
    GaveUp,
    /// Some resources could not be resurrected and no crash procedure was
    /// registered (Table 1, bottom-right): resurrection failed.
    FailedUnresurrectable,
    /// Corruption of main-kernel structures prevented resurrection
    /// (Table 5, column 4).
    FailedCorrupt(String),
    /// The executable is unknown to this system (cannot rehydrate).
    FailedNoExecutable,
    /// The supervisor's bottom ladder rung: the dead image was abandoned
    /// and a fresh instance was started from the program registry. The
    /// application is running but its in-memory data is gone, so this is
    /// *not* a successful resurrection by Table 5's data-preservation
    /// definition — it is the contained-failure alternative to losing the
    /// whole microreboot.
    RestartedClean,
}

impl ProcOutcome {
    /// Whether the application survived with its data (Table 5's
    /// "successful resurrection" definition).
    pub fn is_success(&self) -> bool {
        matches!(
            self,
            ProcOutcome::ContinuedTransparently
                | ProcOutcome::ContinuedAfterCrashProc
                | ProcOutcome::SavedAndRestarted
        )
    }
}

/// Per-process resurrection report.
#[derive(Debug, Clone)]
pub struct ProcReport {
    /// Pid in the dead kernel.
    pub old_pid: u64,
    /// Pid in the crash kernel (when the process survived).
    pub new_pid: Option<u64>,
    /// Process name.
    pub name: String,
    /// Outcome.
    pub outcome: ProcOutcome,
    /// Bitmask of resource types that were not restored
    /// ([`ow_layout::resmask`]), as passed to the crash procedure.
    pub failed_resources: u32,
    /// Dead-kernel bytes read to resurrect this process.
    pub bytes_read: u64,
    /// Of which page tables.
    pub pt_bytes: u64,
    /// Pages copied / mapped / migrated from swap.
    pub pages_copied: u64,
    /// Pages adopted via the mapping optimization.
    pub pages_mapped: u64,
    /// Pages migrated between swap partitions.
    pub pages_swapped: u64,
    /// Degradation-ladder rung the process ended on ([`LadderRung::Full`]
    /// when the first attempt succeeded).
    pub rung: LadderRung,
    /// Resurrection attempts consumed (1 = no retries).
    pub attempts: u32,
}

/// What the resurrection supervisor did during one microreboot.
#[derive(Debug, Clone, Default)]
pub struct SupervisorSummary {
    /// Whether the supervisor was enabled for this microreboot.
    pub enabled: bool,
    /// Panics contained inside the resurrection engine.
    pub contained_panics: u32,
    /// Per-process cycle budgets cut off by the recovery watchdog.
    pub watchdog_fires: u32,
    /// Processes that ended below [`LadderRung::Full`].
    pub degraded_procs: u32,
    /// Whether recovery escalated to a restart-only crash-kernel
    /// generation.
    pub escalated: bool,
    /// Crash-kernel boot attempts consumed (1 = first boot succeeded).
    pub crash_boot_attempts: u32,
}

/// What the warm morph adopted wholesale from the dead kernel after CRC
/// revalidation. A cold morph, a restart-only generation, or a seal whose
/// every structure failed validation reports all-false — each structure
/// falls back to the cold rebuild independently.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdoptionSummary {
    /// Frame-allocator bitmap adopted (no full-RAM reclaim scan).
    pub frames: bool,
    /// Swap-slot bitmap adopted (swapped PTEs migrate verbatim, no
    /// slot-by-slot copy between partitions).
    pub swap: bool,
    /// Page-cache chains re-chained onto adopted frames (no flush and
    /// reload through the filesystem).
    pub cache: bool,
}

/// What rollback-in-place (rung 0) restored, when it ran and succeeded.
/// Reported instead of a resurrection: the same kernel generation resumed,
/// so there is no crash boot, no per-process engine work, and no morph.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RollbackSummary {
    /// Epoch counter of the checkpoint that was rolled back to.
    pub epoch: u64,
    /// Syscall sequence number the checkpoint was sealed at.
    pub seq: u64,
    /// Checkpointed records rewritten in place.
    pub records: u64,
    /// Processes whose state the rollback restored.
    pub procs: u64,
    /// Checkpoint bytes validated (header + payload).
    pub bytes_validated: u64,
}

/// Report of one complete microreboot.
#[derive(Debug, Clone)]
pub struct MicrorebootReport {
    /// Generation of the new (crash, now main) kernel.
    pub generation: u32,
    /// What the warm morph adopted wholesale from the dead kernel after
    /// CRC revalidation (all false for cold morphs, restart-only
    /// generations, or when every structure fell back to the cold rebuild).
    pub adoption: AdoptionSummary,
    /// Per-process outcomes.
    pub procs: Vec<ProcReport>,
    /// Aggregate read accounting.
    pub stats: ReadStats,
    /// Simulated seconds to boot the crash kernel.
    pub crash_boot_seconds: f64,
    /// Simulated seconds spent resurrecting processes.
    pub resurrection_seconds: f64,
    /// Simulated seconds morphing into the main kernel (memory reclaim +
    /// next crash-kernel install).
    pub morph_seconds: f64,
    /// Simulated seconds for the whole microreboot (panic → morphed).
    pub total_seconds: f64,
    /// Simulated seconds spent in rollback-in-place (rung 0); zero when
    /// rollback was disabled or fell through before doing any work.
    pub rollback_seconds: f64,
    /// What rollback-in-place restored, when it ran and succeeded; `None`
    /// for every microreboot that went through the crash kernel.
    pub rollback: Option<RollbackSummary>,
    /// What the resurrection supervisor did (containment, ladder,
    /// watchdog, escalation).
    pub supervisor: SupervisorSummary,
    /// Integrity cross-check corrections applied (§4 duplication checks).
    pub integrity_fixes: u64,
    /// The dead kernel's flight record (events, damage counts and the
    /// metrics registry), recovered from the trace region before the crash
    /// kernel booted.
    pub flight: ow_trace::FlightRecord,
}

impl MicrorebootReport {
    /// Whether every selected process survived.
    pub fn all_succeeded(&self) -> bool {
        self.procs.iter().all(|p| p.outcome.is_success())
    }

    /// Finds a process report by (old) name.
    pub fn proc_named(&self, name: &str) -> Option<&ProcReport> {
        self.procs.iter().find(|p| p.name == name)
    }

    /// Per-stage timings (panic → crash boot → resurrection → morph) as a
    /// JSON object, for the bench export path.
    pub fn timings_json(&self) -> ow_trace::json::Value {
        use ow_trace::json::Value;
        Value::obj([
            ("crash_boot_seconds", Value::from(self.crash_boot_seconds)),
            (
                "resurrection_seconds",
                Value::from(self.resurrection_seconds),
            ),
            ("morph_seconds", Value::from(self.morph_seconds)),
            ("rollback_seconds", Value::from(self.rollback_seconds)),
            ("total_seconds", Value::from(self.total_seconds)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_stats_accumulate_and_fraction() {
        let mut s = ReadStats::default();
        s.add(ReadKind::ProcDesc, 100);
        s.add(ReadKind::PageTables, 300);
        assert_eq!(s.total_bytes, 400);
        assert_eq!(s.pt_bytes, 300);
        assert!((s.pt_fraction() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn merge_folds_breakdowns() {
        let mut a = ReadStats::default();
        a.add(ReadKind::Vma, 10);
        let mut b = ReadStats::default();
        b.add(ReadKind::Vma, 5);
        b.add(ReadKind::PageTables, 20);
        a.merge(&b);
        assert_eq!(a.by_kind[&ReadKind::Vma], 15);
        assert_eq!(a.pt_bytes, 20);
    }

    #[test]
    fn registry_check_flags_partial_records() {
        let mut s = ReadStats::default();
        s.add(ReadKind::ProcDesc, 2 * ow_layout::footprint("ProcDesc"));
        s.add(ReadKind::PageTables, 12345); // variable-size: never checked
        assert!(s.registry_check().is_empty());
        s.add(ReadKind::Vma, ow_layout::footprint("VmaDesc") - 1);
        let bad = s.registry_check();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].0, ReadKind::Vma);
    }

    #[test]
    fn outcome_success_classes() {
        assert!(ProcOutcome::ContinuedTransparently.is_success());
        assert!(ProcOutcome::SavedAndRestarted.is_success());
        assert!(!ProcOutcome::FailedCorrupt("x".into()).is_success());
        assert!(!ProcOutcome::GaveUp.is_success());
    }
}
