//! Validated readers over the dead kernel's memory.
//!
//! Everything here must assume the bytes may have been corrupted by the
//! fault that killed the main kernel (§4): every structure is
//! magic-checked and bounds-checked by [`ow_layout`], every linked
//! chain is walked with a length guard (a corrupted `next` pointer must not
//! loop forever), and every byte read is accounted in [`ReadStats`] —
//! that accounting *is* Table 4.

use crate::stats::{ReadKind, ReadStats};
use ow_layout::Record;
use ow_layout::{
    FileRecord, FileTable, KernelHeader, LayoutError, PageCacheNode, PipeDesc, ProcDesc, ShmDesc,
    SigTable, SockDesc, SwapDesc, TermDesc, VmaDesc,
};
use ow_simhw::{AddressSpace, PhysAddr, PhysMem, PAGE_SIZE};
use std::fmt;

/// Upper bounds on chain walks; anything longer is corruption.
const MAX_VMAS: usize = 1024;
/// Global ceiling on page-cache nodes per file (callers pass a tighter
/// per-file bound to [`read_cache_chain`]).
pub const MAX_CACHE_NODES: usize = 1 << 16;
/// Maximum shared-memory attachments per process.
const MAX_SHM: usize = 64;
/// Maximum sockets per process.
const MAX_SOCKS: usize = 64;

/// Errors raised while reading the dead kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadError {
    /// A structure failed validation.
    Layout(LayoutError),
    /// A linked chain exceeded its plausible maximum length.
    ChainTooLong(&'static str),
    /// A linked chain revisited a node: a pointer cycle. Every cycle is
    /// corruption — the dead kernel's chains are all null-terminated.
    ChainCycle(&'static str),
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Layout(e) => write!(f, "{e}"),
            ReadError::ChainTooLong(what) => write!(f, "corrupted {what} chain (too long)"),
            ReadError::ChainCycle(what) => write!(f, "corrupted {what} chain (cycle)"),
        }
    }
}

/// Walk guard shared by every chain reader: enforces an explicit maximum
/// length and detects pointer cycles outright. Both overflow and revisits
/// classify as corruption — a crafted cycle of CRC-valid records must not
/// be walked up to the length bound (it would charge the cycle budget for
/// nothing), let alone forever.
struct ChainGuard {
    what: &'static str,
    max: usize,
    seen: std::collections::HashSet<PhysAddr>,
}

impl ChainGuard {
    fn new(what: &'static str, max: usize) -> ChainGuard {
        ChainGuard {
            what,
            max,
            seen: std::collections::HashSet::new(),
        }
    }

    /// Accounts one link at `addr`; fails on a revisit or past `max` links.
    fn step(&mut self, addr: PhysAddr) -> Result<(), ReadError> {
        if !self.seen.insert(addr) {
            return Err(ReadError::ChainCycle(self.what));
        }
        if self.seen.len() > self.max {
            return Err(ReadError::ChainTooLong(self.what));
        }
        Ok(())
    }
}

impl std::error::Error for ReadError {}

impl From<LayoutError> for ReadError {
    fn from(e: LayoutError) -> Self {
        ReadError::Layout(e)
    }
}

/// Reads and validates the dead kernel's header.
pub fn read_header(
    phys: &PhysMem,
    kernel_frame: u64,
    stats: &mut ReadStats,
) -> Result<KernelHeader, ReadError> {
    // A fault while validating the very first dead-kernel structure.
    ow_crashpoint::crash_point!("recovery.reader.header.validate");
    let (h, n) = KernelHeader::read(phys, kernel_frame * PAGE_SIZE as u64)?;
    stats.add(ReadKind::KernelHeader, n);
    Ok(h)
}

/// Walks the dead kernel's process list, cross-checking the count stored in
/// the header (§4: duplicated state as an integrity check).
pub fn read_proc_list(
    phys: &PhysMem,
    header: &KernelHeader,
    stats: &mut ReadStats,
) -> Result<Vec<(PhysAddr, ProcDesc)>, ReadError> {
    ow_crashpoint::crash_point!("recovery.reader.proclist.walk");
    let mut out = Vec::new();
    let mut guard = ChainGuard::new("process list", header.nprocs as usize);
    let mut addr = header.proc_head;
    while addr != 0 {
        guard.step(addr)?;
        let (desc, n) = ProcDesc::read(phys, addr)?;
        stats.add(ReadKind::ProcDesc, n);
        let next = desc.next;
        out.push((addr, desc));
        addr = next;
    }
    Ok(out)
}

/// Walks a process's VMA chain.
pub fn read_vmas(
    phys: &PhysMem,
    desc: &ProcDesc,
    stats: &mut ReadStats,
) -> Result<Vec<(PhysAddr, VmaDesc)>, ReadError> {
    ow_crashpoint::crash_point!("recovery.reader.vma.walk");
    let mut out = Vec::new();
    let mut guard = ChainGuard::new("vma", MAX_VMAS);
    let mut addr = desc.mm_head;
    while addr != 0 {
        guard.step(addr)?;
        let (vma, n) = VmaDesc::read(phys, addr)?;
        stats.add(ReadKind::Vma, n);
        let next = vma.next;
        out.push((addr, vma));
        addr = next;
    }
    Ok(out)
}

/// Reads a process's file table.
pub fn read_file_table(
    phys: &PhysMem,
    desc: &ProcDesc,
    stats: &mut ReadStats,
) -> Result<FileTable, ReadError> {
    ow_crashpoint::crash_point!("recovery.reader.filetable.read");
    let (tab, n) = FileTable::read(phys, desc.files)?;
    stats.add(ReadKind::FileTable, n);
    Ok(tab)
}

/// Reads one open-file record.
pub fn read_file_record(
    phys: &PhysMem,
    addr: PhysAddr,
    stats: &mut ReadStats,
) -> Result<FileRecord, ReadError> {
    let (frec, n) = FileRecord::read(phys, addr)?;
    stats.add(ReadKind::FileRecord, n);
    Ok(frec)
}

/// Walks a file's page-cache chain (the paper's buffer tree).
///
/// `max_nodes` is the caller's per-file plausibility bound (derived from
/// the file's recorded size); it is clamped to the global
/// [`MAX_CACHE_NODES`] ceiling. A chain longer than the file could
/// possibly need is corruption even when every node validates.
pub fn read_cache_chain(
    phys: &PhysMem,
    cache_head: PhysAddr,
    max_nodes: usize,
    stats: &mut ReadStats,
) -> Result<Vec<(PhysAddr, PageCacheNode)>, ReadError> {
    let mut out = Vec::new();
    let mut guard = ChainGuard::new("page cache", max_nodes.min(MAX_CACHE_NODES));
    let mut addr = cache_head;
    while addr != 0 {
        guard.step(addr)?;
        let (node, n) = PageCacheNode::read(phys, addr)?;
        stats.add(ReadKind::PageCacheNode, n);
        let next = node.next;
        out.push((addr, node));
        addr = next;
    }
    Ok(out)
}

/// Reads a process's signal table.
pub fn read_sig_table(
    phys: &PhysMem,
    desc: &ProcDesc,
    stats: &mut ReadStats,
) -> Result<SigTable, ReadError> {
    let (tab, n) = SigTable::read(phys, desc.sig)?;
    stats.add(ReadKind::SigTable, n);
    Ok(tab)
}

/// Walks a process's shared-memory attachment chain.
pub fn read_shm_chain(
    phys: &PhysMem,
    desc: &ProcDesc,
    stats: &mut ReadStats,
) -> Result<Vec<ShmDesc>, ReadError> {
    let mut out = Vec::new();
    let mut guard = ChainGuard::new("shm", MAX_SHM);
    let mut addr = desc.shm_head;
    while addr != 0 {
        guard.step(addr)?;
        let (shm, n) = ShmDesc::read(phys, addr)?;
        stats.add(ReadKind::ShmDesc, n);
        let next = shm.next;
        out.push(shm);
        addr = next;
    }
    Ok(out)
}

/// Walks a process's socket chain (§7 extension).
pub fn read_sock_chain(
    phys: &PhysMem,
    desc: &ProcDesc,
    stats: &mut ReadStats,
) -> Result<Vec<SockDesc>, ReadError> {
    let mut out = Vec::new();
    let mut guard = ChainGuard::new("socket", MAX_SOCKS);
    let mut addr = desc.sock_head;
    while addr != 0 {
        guard.step(addr)?;
        let (sock, n) = SockDesc::read(phys, addr)?;
        stats.add(ReadKind::SockDesc, n);
        let next = sock.next;
        out.push(sock);
        addr = next;
    }
    Ok(out)
}

/// Reads the dead kernel's pipe table (§7 extension). Individual corrupted
/// entries are returned as `None` rather than failing the whole table.
pub fn read_pipe_table(
    phys: &PhysMem,
    header: &KernelHeader,
    stats: &mut ReadStats,
) -> Vec<Option<PipeDesc>> {
    let mut out = Vec::new();
    for i in 0..header.npipes.min(64) {
        let addr = header.pipe_table + i as u64 * PipeDesc::SIZE;
        match PipeDesc::read(phys, addr) {
            Ok((d, n)) => {
                stats.add(ReadKind::PipeDesc, n);
                out.push(Some(d));
            }
            Err(_) => out.push(None),
        }
    }
    out
}

/// Reads the swap-descriptor array (fixed size, reachable from the header —
/// §3.3).
pub fn read_swap_descs(
    phys: &PhysMem,
    header: &KernelHeader,
    stats: &mut ReadStats,
) -> Result<Vec<(PhysAddr, SwapDesc)>, ReadError> {
    let mut out = Vec::new();
    for i in 0..header.nswap {
        let addr = header.swap_array + i as u64 * SwapDesc::SIZE;
        let (d, n) = SwapDesc::read(phys, addr)?;
        stats.add(ReadKind::SwapDesc, n);
        out.push((addr, d));
    }
    Ok(out)
}

/// Reads a terminal descriptor from the dead kernel's terminal table.
pub fn read_term(
    phys: &PhysMem,
    header: &KernelHeader,
    term_id: u32,
    stats: &mut ReadStats,
) -> Result<TermDesc, ReadError> {
    if term_id >= header.nterms {
        return Err(ReadError::Layout(LayoutError::BadValue {
            structure: "TermDesc",
            field: "id",
            addr: header.term_table,
        }));
    }
    let addr = header.term_table + term_id as u64 * TermDesc::SIZE;
    let (d, n) = TermDesc::read(phys, addr)?;
    stats.add(ReadKind::TermDesc, n);
    Ok(d)
}

/// Accounts the page-table frames of an address space as read bytes
/// (the crash kernel walks every entry of every table — the dominant
/// component of Table 4).
pub fn account_page_tables(
    phys: &PhysMem,
    root: u64,
    stats: &mut ReadStats,
) -> Result<u64, ReadError> {
    let asp = AddressSpace::from_root(root);
    let frames = asp
        .table_frames(phys)
        .map_err(|e| ReadError::Layout(LayoutError::Mem(e)))?;
    let bytes = frames * PAGE_SIZE as u64;
    stats.add(ReadKind::PageTables, bytes);
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ow_layout::{pstate, HANDOFF_FRAMES};

    fn desc(mm_head: PhysAddr) -> ProcDesc {
        ProcDesc {
            pid: 1,
            state: pstate::RUNNABLE,
            name: "t".into(),
            crash_proc: 0,
            page_root: 1,
            mm_head,
            files: 0,
            sig: 0,
            term_id: 0,
            shm_head: 0,
            sock_head: 0,
            res_in_use: 0,
            in_syscall: 0,
            saved_pc: 0,
            saved_sp: 0,
            saved_regs: [0; 8],
            checksum: 0,
            next: 0,
        }
    }

    #[test]
    fn vma_loop_detected() {
        let mut phys = PhysMem::new(16);
        // A VMA pointing at itself: must be classified as a cycle after a
        // single revisit, not walked MAX_VMAS times.
        let addr = HANDOFF_FRAMES * PAGE_SIZE as u64;
        VmaDesc {
            start: 0x1000,
            end: 0x2000,
            flags: 0,
            file: 0,
            file_off: 0,
            next: addr,
        }
        .write(&mut phys, addr)
        .unwrap();
        let mut stats = ReadStats::default();
        assert_eq!(
            read_vmas(&phys, &desc(addr), &mut stats),
            Err(ReadError::ChainCycle("vma"))
        );
        // The revisit is refused before re-reading the node: exactly one
        // VmaDesc was read and accounted.
        assert_eq!(stats.by_kind[&ReadKind::Vma], VmaDesc::SIZE);
    }

    #[test]
    fn cyclic_proc_list_is_corrupt() {
        let mut phys = PhysMem::new(16);
        let a1 = 0x2000u64;
        let a2 = 0x3000u64;
        let mut d1 = desc(0);
        d1.next = a2;
        d1.write(&mut phys, a1).unwrap();
        let mut d2 = desc(0);
        d2.next = a1; // loop back to the head
        d2.write(&mut phys, a2).unwrap();
        let header = KernelHeader {
            version: 1,
            base_frame: 1,
            nframes: 1,
            proc_head: a1,
            nprocs: 2,
            swap_array: 0,
            nswap: 0,
            is_crash: 0,
            term_table: 0,
            nterms: 0,
            pipe_table: 0,
            npipes: 0,
        };
        let mut stats = ReadStats::default();
        assert_eq!(
            read_proc_list(&phys, &header, &mut stats),
            Err(ReadError::ChainCycle("process list"))
        );
    }

    #[test]
    fn proc_list_longer_than_header_count_is_corrupt() {
        // A cycle-free chain that simply outgrows the header's duplicated
        // count (§4 integrity check) is ChainTooLong.
        let mut phys = PhysMem::new(16);
        let base = 0x2000u64;
        for i in 0..3u64 {
            let mut d = desc(0);
            d.pid = i + 1;
            d.next = if i < 2 { base + (i + 1) * 0x100 } else { 0 };
            d.write(&mut phys, base + i * 0x100).unwrap();
        }
        let header = KernelHeader {
            version: 1,
            base_frame: 1,
            nframes: 1,
            proc_head: base,
            nprocs: 1, // the chain actually has 3 entries
            swap_array: 0,
            nswap: 0,
            is_crash: 0,
            term_table: 0,
            nterms: 0,
            pipe_table: 0,
            npipes: 0,
        };
        let mut stats = ReadStats::default();
        assert_eq!(
            read_proc_list(&phys, &header, &mut stats),
            Err(ReadError::ChainTooLong("process list"))
        );
    }

    #[test]
    fn cache_chain_respects_per_file_bound() {
        let mut phys = PhysMem::new(16);
        let base = 0x4000u64;
        // Five valid nodes; a file whose size plausibly needs only two.
        for i in 0..5u64 {
            PageCacheNode {
                file_off: i * PAGE_SIZE as u64,
                pfn: 2,
                dirty: 0,
                next: if i < 4 { base + (i + 1) * 0x100 } else { 0 },
            }
            .write(&mut phys, base + i * 0x100)
            .unwrap();
        }
        let mut stats = ReadStats::default();
        assert!(read_cache_chain(&phys, base, 5, &mut stats).is_ok());
        assert_eq!(
            read_cache_chain(&phys, base, 2, &mut stats),
            Err(ReadError::ChainTooLong("page cache"))
        );
    }

    /// Property test: random CRC-valid chains with a cycle spliced in at a
    /// random position must always classify as corruption, and the walk
    /// must never read more nodes than the chain has distinct links — the
    /// guard's promise to the recovery cycle budget.
    #[test]
    fn cyclic_chains_always_classify_as_corruption() {
        use ow_simhw::SimRng;
        let mut rng = SimRng::seed_from_u64(0xc4a1_c4a1);
        for case in 0..64 {
            let mut phys = PhysMem::new(32);
            let len = 2 + (rng.next_u64() % 30) as usize;
            let base = HANDOFF_FRAMES * PAGE_SIZE as u64;
            let addrs: Vec<u64> = (0..len).map(|i| base + i as u64 * 0x80).collect();
            // The last node loops back to a random earlier link.
            let back_to = (rng.next_u64() % len as u64) as usize;
            for (i, &addr) in addrs.iter().enumerate() {
                VmaDesc {
                    start: 0x1000 * (i as u64 + 1),
                    end: 0x1000 * (i as u64 + 2),
                    flags: 0,
                    file: 0,
                    file_off: 0,
                    next: if i + 1 < len {
                        addrs[i + 1]
                    } else {
                        addrs[back_to]
                    },
                }
                .write(&mut phys, addr)
                .unwrap();
            }
            let mut stats = ReadStats::default();
            let err = read_vmas(&phys, &desc(addrs[0]), &mut stats)
                .expect_err("a cyclic chain must never read cleanly");
            assert_eq!(err, ReadError::ChainCycle("vma"), "case {case}");
            assert!(
                stats.by_kind[&ReadKind::Vma] <= len as u64 * VmaDesc::SIZE,
                "case {case}: walk read more nodes than the chain has"
            );
        }
    }

    #[test]
    fn bytes_are_accounted() {
        let mut phys = PhysMem::new(16);
        let addr = 0x2000u64;
        desc(0).write(&mut phys, addr).unwrap();
        let header = KernelHeader {
            version: 1,
            base_frame: 1,
            nframes: 1,
            proc_head: addr,
            nprocs: 1,
            swap_array: 0,
            nswap: 0,
            is_crash: 0,
            term_table: 0,
            nterms: 0,
            pipe_table: 0,
            npipes: 0,
        };
        let mut stats = ReadStats::default();
        let procs = read_proc_list(&phys, &header, &mut stats).unwrap();
        assert_eq!(procs.len(), 1);
        assert_eq!(stats.by_kind[&ReadKind::ProcDesc], ProcDesc::SIZE);
    }
}
