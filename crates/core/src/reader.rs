//! Validated readers over the dead kernel's memory.
//!
//! Everything here must assume the bytes may have been corrupted by the
//! fault that killed the main kernel (§4): every structure is
//! magic-checked and bounds-checked by [`ow_layout`], every linked
//! chain is walked with a length guard (a corrupted `next` pointer must not
//! loop forever), and every byte read is accounted in [`ReadStats`] —
//! that accounting *is* Table 4.

use crate::stats::{ReadKind, ReadStats};
use ow_layout::Record;
use ow_layout::{
    FileRecord, FileTable, KernelHeader, LayoutError, PageCacheNode, PipeDesc, ProcDesc, ShmDesc,
    SigTable, SockDesc, SwapDesc, TermDesc, VmaDesc,
};
use ow_simhw::{AddressSpace, PhysAddr, PhysMem, PAGE_SIZE};
use std::fmt;

/// Upper bounds on chain walks; anything longer is corruption.
const MAX_VMAS: usize = 1024;
/// Maximum page-cache nodes per file.
const MAX_CACHE_NODES: usize = 1 << 16;
/// Maximum shared-memory attachments per process.
const MAX_SHM: usize = 64;

/// Errors raised while reading the dead kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadError {
    /// A structure failed validation.
    Layout(LayoutError),
    /// A linked chain exceeded its plausible maximum length.
    ChainTooLong(&'static str),
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Layout(e) => write!(f, "{e}"),
            ReadError::ChainTooLong(what) => write!(f, "corrupted {what} chain (loop?)"),
        }
    }
}

impl std::error::Error for ReadError {}

impl From<LayoutError> for ReadError {
    fn from(e: LayoutError) -> Self {
        ReadError::Layout(e)
    }
}

/// Reads and validates the dead kernel's header.
pub fn read_header(
    phys: &PhysMem,
    kernel_frame: u64,
    stats: &mut ReadStats,
) -> Result<KernelHeader, ReadError> {
    let (h, n) = KernelHeader::read(phys, kernel_frame * PAGE_SIZE as u64)?;
    stats.add(ReadKind::KernelHeader, n);
    Ok(h)
}

/// Walks the dead kernel's process list, cross-checking the count stored in
/// the header (§4: duplicated state as an integrity check).
pub fn read_proc_list(
    phys: &PhysMem,
    header: &KernelHeader,
    stats: &mut ReadStats,
) -> Result<Vec<(PhysAddr, ProcDesc)>, ReadError> {
    let mut out = Vec::new();
    let mut addr = header.proc_head;
    while addr != 0 {
        if out.len() as u64 > header.nprocs {
            return Err(ReadError::ChainTooLong("process list"));
        }
        let (desc, n) = ProcDesc::read(phys, addr)?;
        stats.add(ReadKind::ProcDesc, n);
        let next = desc.next;
        out.push((addr, desc));
        addr = next;
    }
    Ok(out)
}

/// Walks a process's VMA chain.
pub fn read_vmas(
    phys: &PhysMem,
    desc: &ProcDesc,
    stats: &mut ReadStats,
) -> Result<Vec<(PhysAddr, VmaDesc)>, ReadError> {
    let mut out = Vec::new();
    let mut addr = desc.mm_head;
    while addr != 0 {
        if out.len() >= MAX_VMAS {
            return Err(ReadError::ChainTooLong("vma"));
        }
        let (vma, n) = VmaDesc::read(phys, addr)?;
        stats.add(ReadKind::Vma, n);
        let next = vma.next;
        out.push((addr, vma));
        addr = next;
    }
    Ok(out)
}

/// Reads a process's file table.
pub fn read_file_table(
    phys: &PhysMem,
    desc: &ProcDesc,
    stats: &mut ReadStats,
) -> Result<FileTable, ReadError> {
    let (tab, n) = FileTable::read(phys, desc.files)?;
    stats.add(ReadKind::FileTable, n);
    Ok(tab)
}

/// Reads one open-file record.
pub fn read_file_record(
    phys: &PhysMem,
    addr: PhysAddr,
    stats: &mut ReadStats,
) -> Result<FileRecord, ReadError> {
    let (frec, n) = FileRecord::read(phys, addr)?;
    stats.add(ReadKind::FileRecord, n);
    Ok(frec)
}

/// Walks a file's page-cache chain (the paper's buffer tree).
pub fn read_cache_chain(
    phys: &PhysMem,
    cache_head: PhysAddr,
    stats: &mut ReadStats,
) -> Result<Vec<(PhysAddr, PageCacheNode)>, ReadError> {
    let mut out = Vec::new();
    let mut addr = cache_head;
    while addr != 0 {
        if out.len() >= MAX_CACHE_NODES {
            return Err(ReadError::ChainTooLong("page cache"));
        }
        let (node, n) = PageCacheNode::read(phys, addr)?;
        stats.add(ReadKind::PageCacheNode, n);
        let next = node.next;
        out.push((addr, node));
        addr = next;
    }
    Ok(out)
}

/// Reads a process's signal table.
pub fn read_sig_table(
    phys: &PhysMem,
    desc: &ProcDesc,
    stats: &mut ReadStats,
) -> Result<SigTable, ReadError> {
    let (tab, n) = SigTable::read(phys, desc.sig)?;
    stats.add(ReadKind::SigTable, n);
    Ok(tab)
}

/// Walks a process's shared-memory attachment chain.
pub fn read_shm_chain(
    phys: &PhysMem,
    desc: &ProcDesc,
    stats: &mut ReadStats,
) -> Result<Vec<ShmDesc>, ReadError> {
    let mut out = Vec::new();
    let mut addr = desc.shm_head;
    while addr != 0 {
        if out.len() >= MAX_SHM {
            return Err(ReadError::ChainTooLong("shm"));
        }
        let (shm, n) = ShmDesc::read(phys, addr)?;
        stats.add(ReadKind::ShmDesc, n);
        let next = shm.next;
        out.push(shm);
        addr = next;
    }
    Ok(out)
}

/// Walks a process's socket chain (§7 extension).
pub fn read_sock_chain(
    phys: &PhysMem,
    desc: &ProcDesc,
    stats: &mut ReadStats,
) -> Result<Vec<SockDesc>, ReadError> {
    let mut out = Vec::new();
    let mut addr = desc.sock_head;
    while addr != 0 {
        if out.len() >= 64 {
            return Err(ReadError::ChainTooLong("socket"));
        }
        let (sock, n) = SockDesc::read(phys, addr)?;
        stats.add(ReadKind::SockDesc, n);
        let next = sock.next;
        out.push(sock);
        addr = next;
    }
    Ok(out)
}

/// Reads the dead kernel's pipe table (§7 extension). Individual corrupted
/// entries are returned as `None` rather than failing the whole table.
pub fn read_pipe_table(
    phys: &PhysMem,
    header: &KernelHeader,
    stats: &mut ReadStats,
) -> Vec<Option<PipeDesc>> {
    let mut out = Vec::new();
    for i in 0..header.npipes.min(64) {
        let addr = header.pipe_table + i as u64 * PipeDesc::SIZE;
        match PipeDesc::read(phys, addr) {
            Ok((d, n)) => {
                stats.add(ReadKind::PipeDesc, n);
                out.push(Some(d));
            }
            Err(_) => out.push(None),
        }
    }
    out
}

/// Reads the swap-descriptor array (fixed size, reachable from the header —
/// §3.3).
pub fn read_swap_descs(
    phys: &PhysMem,
    header: &KernelHeader,
    stats: &mut ReadStats,
) -> Result<Vec<(PhysAddr, SwapDesc)>, ReadError> {
    let mut out = Vec::new();
    for i in 0..header.nswap {
        let addr = header.swap_array + i as u64 * SwapDesc::SIZE;
        let (d, n) = SwapDesc::read(phys, addr)?;
        stats.add(ReadKind::SwapDesc, n);
        out.push((addr, d));
    }
    Ok(out)
}

/// Reads a terminal descriptor from the dead kernel's terminal table.
pub fn read_term(
    phys: &PhysMem,
    header: &KernelHeader,
    term_id: u32,
    stats: &mut ReadStats,
) -> Result<TermDesc, ReadError> {
    if term_id >= header.nterms {
        return Err(ReadError::Layout(LayoutError::BadValue {
            structure: "TermDesc",
            field: "id",
            addr: header.term_table,
        }));
    }
    let addr = header.term_table + term_id as u64 * TermDesc::SIZE;
    let (d, n) = TermDesc::read(phys, addr)?;
    stats.add(ReadKind::TermDesc, n);
    Ok(d)
}

/// Accounts the page-table frames of an address space as read bytes
/// (the crash kernel walks every entry of every table — the dominant
/// component of Table 4).
pub fn account_page_tables(
    phys: &PhysMem,
    root: u64,
    stats: &mut ReadStats,
) -> Result<u64, ReadError> {
    let asp = AddressSpace::from_root(root);
    let frames = asp
        .table_frames(phys)
        .map_err(|e| ReadError::Layout(LayoutError::Mem(e)))?;
    let bytes = frames * PAGE_SIZE as u64;
    stats.add(ReadKind::PageTables, bytes);
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ow_layout::{pstate, HANDOFF_FRAMES};

    fn desc(mm_head: PhysAddr) -> ProcDesc {
        ProcDesc {
            pid: 1,
            state: pstate::RUNNABLE,
            name: "t".into(),
            crash_proc: 0,
            page_root: 1,
            mm_head,
            files: 0,
            sig: 0,
            term_id: 0,
            shm_head: 0,
            sock_head: 0,
            res_in_use: 0,
            in_syscall: 0,
            saved_pc: 0,
            saved_sp: 0,
            saved_regs: [0; 8],
            checksum: 0,
            next: 0,
        }
    }

    #[test]
    fn vma_loop_detected() {
        let mut phys = PhysMem::new(16);
        // A VMA pointing at itself: must terminate with ChainTooLong.
        let addr = HANDOFF_FRAMES * PAGE_SIZE as u64;
        VmaDesc {
            start: 0x1000,
            end: 0x2000,
            flags: 0,
            file: 0,
            file_off: 0,
            next: addr,
        }
        .write(&mut phys, addr)
        .unwrap();
        let mut stats = ReadStats::default();
        assert_eq!(
            read_vmas(&phys, &desc(addr), &mut stats),
            Err(ReadError::ChainTooLong("vma"))
        );
    }

    #[test]
    fn proc_list_longer_than_header_count_is_corrupt() {
        let mut phys = PhysMem::new(16);
        let a1 = 0x2000u64;
        let a2 = 0x3000u64;
        let mut d1 = desc(0);
        d1.next = a2;
        d1.write(&mut phys, a1).unwrap();
        let mut d2 = desc(0);
        d2.next = a1; // loop
        d2.write(&mut phys, a2).unwrap();
        let header = KernelHeader {
            version: 1,
            base_frame: 1,
            nframes: 1,
            proc_head: a1,
            nprocs: 2,
            swap_array: 0,
            nswap: 0,
            is_crash: 0,
            term_table: 0,
            nterms: 0,
            pipe_table: 0,
            npipes: 0,
        };
        let mut stats = ReadStats::default();
        assert_eq!(
            read_proc_list(&phys, &header, &mut stats),
            Err(ReadError::ChainTooLong("process list"))
        );
    }

    #[test]
    fn bytes_are_accounted() {
        let mut phys = PhysMem::new(16);
        let addr = 0x2000u64;
        desc(0).write(&mut phys, addr).unwrap();
        let header = KernelHeader {
            version: 1,
            base_frame: 1,
            nframes: 1,
            proc_head: addr,
            nprocs: 1,
            swap_array: 0,
            nswap: 0,
            is_crash: 0,
            term_table: 0,
            nterms: 0,
            pipe_table: 0,
            npipes: 0,
        };
        let mut stats = ReadStats::default();
        let procs = read_proc_list(&phys, &header, &mut stats).unwrap();
        assert_eq!(procs.len(), 1);
        assert_eq!(stats.by_kind[&ReadKind::ProcDesc], ProcDesc::SIZE);
    }
}
