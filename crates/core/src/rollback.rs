//! Rollback-in-place: rung 0 of the degradation ladder.
//!
//! Before any crash-kernel handoff, the recovery path looks at the epoch
//! checkpoints the dying kernel sealed next to the trace ring. If the
//! newest one is trustworthy — sealed by *this* generation, stamped
//! `AT_PANIC` at exactly the current syscall sequence, never attempted
//! before, CRC-intact, and topologically consistent with the live process
//! set — the resurrection-critical records are rewritten in place from the
//! sealed snippets and the *same* kernel generation resumes: no crash-boot,
//! no resurrection engine, no morph, nothing replayed.
//!
//! Any doubt whatsoever falls through to the full microreboot (rung 1, the
//! paper's mechanism): validation performs zero writes, so a refused
//! rollback leaves the machine byte-identical to a run with rollback
//! disabled. The one exception is deliberate — the chosen epoch's
//! `attempted` stamp is burned immediately before the apply, so a rollback
//! that leads straight back into the same panic is never retried on the
//! same epoch (the re-panic's final seal carries the stamp forward).

use crate::{
    config::{LadderRung, OtherworldConfig},
    stats::{
        AdoptionSummary, MicrorebootReport, ProcOutcome, ProcReport, ReadKind, ReadStats,
        RollbackSummary, SupervisorSummary,
    },
};
use ow_kernel::{layout::pstate, syscall::KernelApi, Kernel};
use ow_layout::{
    ckpt_slot_addr, ckptflags, copy_snippet_bytes, parse_snippet, snipkind, EpochCheckpoint,
    FileRecord, FileTable, HandoffBlock, ProcDesc, Record, VmaDesc, CKPT_FRAMES, CKPT_SLOTS,
};
use ow_simhw::PhysAddr;
use ow_trace::EventKind;
use std::collections::{BTreeMap, BTreeSet};

/// Longest VMA chain the validator will walk inside a sealed payload
/// (mirrors the writer's and the readers' bound).
const MAX_VMAS: usize = 1024;

/// One parsed payload snippet: a record's home address and where its
/// verbatim bytes sit inside the checkpoint slot (the kind tag is consumed
/// during parsing — the apply is kind-agnostic, it just writes bytes back).
struct Snip {
    /// Home address the bytes are rolled back to.
    addr: PhysAddr,
    /// Record length in bytes.
    len: u64,
    /// Physical address of the sealed bytes inside the slot payload.
    src: PhysAddr,
}

/// A fully validated rollback plan: the slot to burn and the snippets to
/// rewrite, plus everything the report needs.
struct Plan {
    /// Physical address of the chosen slot's header record.
    slot_addr: PhysAddr,
    /// The chosen (validated) checkpoint header.
    header: EpochCheckpoint,
    /// Every payload snippet, in sealed order.
    snips: Vec<Snip>,
    /// Sealed descriptors, keyed by home address (host cross-check + the
    /// post-apply mirror refresh).
    descs: BTreeMap<PhysAddr, ProcDesc>,
    /// Per-process rolled-back byte counts, keyed by pid.
    proc_bytes: BTreeMap<u64, u64>,
    /// Checkpoint bytes validated (headers + payload).
    bytes_validated: u64,
}

/// Attempts rung 0 on the panicked kernel. Returns the rollback report on
/// success; `None` means the caller must fall through to the microreboot
/// with the kernel's record state untouched. The caller wraps this in
/// [`crate::supervisor::contain`] — an injected crash-point panic in here
/// costs only the rollback attempt, never the machine.
pub fn attempt(
    k: &mut Kernel,
    config: &OtherworldConfig,
    flight: ow_trace::FlightRecord,
    t_panic: u64,
) -> Option<MicrorebootReport> {
    // A fault while deciding whether the newest epoch is trustworthy:
    // nothing has been written yet, the microreboot still has everything.
    ow_crashpoint::crash_point!("recovery.rollback.epoch.validate");

    if k.config.checkpoint_interval == 0 {
        return None;
    }
    let mut stats = ReadStats::default();
    let plan = validate(k, &mut stats)?;

    // The point of no return: an injected fault here must leave the
    // record state exactly as the microreboot path expects to find it.
    ow_crashpoint::crash_point!("recovery.rollback.state.apply");

    // Burn the attempt stamp first. If the apply below dies (or resuming
    // runs straight back into the same panic), the re-sealed epoch carries
    // `attempted` forward and this epoch is never rolled back again.
    let mut burned = plan.header.clone();
    burned.attempted = 1;
    burned.write(&mut k.machine.phys, plan.slot_addr).ok()?;

    apply(k, config, &plan, stats, flight, t_panic)
}

/// Validates both A/B slots and builds the rollback plan from the newest
/// eligible epoch. Read-only: performs no writes at all.
fn validate(k: &mut Kernel, stats: &mut ReadStats) -> Option<Plan> {
    // Geometry comes from the validated handoff block, not the host
    // mirror: if the fault trashed the handoff, rollback must not guess.
    let (h, _) = HandoffBlock::read(&k.machine.phys).ok()?;
    if h.trace_base < CKPT_FRAMES {
        return None;
    }
    let mut bytes_validated = 0u64;

    // Newest eligible epoch across the two slots. Eligibility is the
    // whole freshness rule: this generation, sealed at the instant of
    // death (AT_PANIC at the current syscall sequence), never attempted.
    let mut chosen: Option<(PhysAddr, EpochCheckpoint)> = None;
    for slot in 0..CKPT_SLOTS {
        let addr = ckpt_slot_addr(h.trace_base, slot);
        let Ok((c, n)) = EpochCheckpoint::read(&k.machine.phys, addr) else {
            continue;
        };
        stats.add(ReadKind::EpochCheckpoint, n);
        bytes_validated += n;
        let cost = k.machine.cost.validate_byte * n;
        k.machine.clock.charge(cost);
        if c.valid != 0
            && c.generation == k.generation
            && c.flags & ckptflags::AT_PANIC != 0
            && c.seq == k.syscall_seq
            && c.attempted == 0
            && chosen.as_ref().is_none_or(|(_, best)| c.epoch > best.epoch)
        {
            chosen = Some((addr, c));
        }
    }
    let (slot_addr, header) = chosen?;

    // Payload CRC: a torn slot (payload half-written, or flipped after the
    // seal) dies here.
    let payload_base = slot_addr + EpochCheckpoint::SIZE;
    let cost = k.machine.cost.validate_byte * header.payload_len;
    k.machine.clock.charge(cost);
    bytes_validated += header.payload_len;
    let crc =
        ow_layout::crc::crc32_range(&k.machine.phys, payload_base, header.payload_len).ok()?;
    if crc != header.payload_crc {
        return None;
    }

    // Parse and semantically revalidate every snippet through the same
    // validating codec the crash kernel's readers use: a CRC-valid but
    // poisoned descriptor dies on its own `validate()`.
    let mut snips = Vec::new();
    let mut descs: BTreeMap<PhysAddr, ProcDesc> = BTreeMap::new();
    let mut vmas: BTreeMap<PhysAddr, VmaDesc> = BTreeMap::new();
    let mut tables: BTreeMap<PhysAddr, FileTable> = BTreeMap::new();
    let mut frecs: BTreeSet<PhysAddr> = BTreeSet::new();
    let mut off = 0u64;
    while off < header.payload_len {
        let (view, next) =
            parse_snippet(&k.machine.phys, payload_base, header.payload_len, off).ok()?;
        let (addr, kind, len, src) = (view.addr, view.kind, view.len, view.src);
        let expected_len = match kind {
            snipkind::PROC => ProcDesc::SIZE,
            snipkind::VMA => VmaDesc::SIZE,
            snipkind::FILE_TABLE => FileTable::SIZE,
            snipkind::FILE_RECORD => FileRecord::SIZE,
            _ => return None,
        };
        if len != expected_len {
            return None;
        }
        match kind {
            snipkind::PROC => {
                let (d, n) = ProcDesc::read(&k.machine.phys, src).ok()?;
                stats.add(ReadKind::ProcDesc, n);
                if descs.insert(addr, d).is_some() {
                    return None;
                }
            }
            snipkind::VMA => {
                let (v, n) = VmaDesc::read(&k.machine.phys, src).ok()?;
                stats.add(ReadKind::Vma, n);
                if vmas.insert(addr, v).is_some() {
                    return None;
                }
            }
            snipkind::FILE_TABLE => {
                let (t, n) = FileTable::read(&k.machine.phys, src).ok()?;
                stats.add(ReadKind::FileTable, n);
                if tables.insert(addr, t).is_some() {
                    return None;
                }
            }
            _ => {
                let (_, n) = FileRecord::read(&k.machine.phys, src).ok()?;
                stats.add(ReadKind::FileRecord, n);
                if !frecs.insert(addr) {
                    return None;
                }
            }
        }
        snips.push(Snip { addr, len, src });
        off = next;
    }

    // Topology: the sealed record set must describe exactly the live
    // process set, and every snippet must be reachable — an orphan or a
    // dangling pointer means the checkpoint does not match this kernel.
    if descs.len() != header.nprocs as usize {
        return None;
    }
    let live: Vec<&ow_kernel::ProcHandle> = k
        .procs
        .iter()
        .filter(|p| p.state != pstate::EXITED)
        .collect();
    if live.len() != descs.len() {
        return None;
    }
    let mut proc_bytes: BTreeMap<u64, u64> = BTreeMap::new();
    for p in &live {
        let d = descs.get(&p.desc_addr)?;
        if d.pid != p.pid || d.name != p.name {
            return None;
        }
        // Resuming needs a live program object or a rehydratable image.
        if p.program.is_none() && k.registry.get(&p.name).is_none() {
            return None;
        }
        let mut bytes = ProcDesc::SIZE;

        // The VMA chain must resolve entirely inside the snippet set.
        let mut seen: BTreeSet<PhysAddr> = BTreeSet::new();
        let mut vma_addr = d.mm_head;
        while vma_addr != 0 {
            if !seen.insert(vma_addr) || seen.len() > MAX_VMAS {
                return None;
            }
            let v = vmas.get(&vma_addr)?;
            bytes += VmaDesc::SIZE;
            vma_addr = v.next;
        }

        // Same for the file table and every open-file record.
        if d.files != 0 {
            let t = tables.get(&d.files)?;
            bytes += FileTable::SIZE;
            for &fd in &t.fds {
                if fd != 0 && !frecs.contains(&fd) {
                    return None;
                }
            }
        }
        proc_bytes.insert(p.pid, bytes);
    }
    // No orphans: every sealed VMA / file table / file record must be
    // referenced by the sealed process set.
    let reachable_vmas: BTreeSet<PhysAddr> = descs
        .values()
        .flat_map(|d| {
            let mut chain = Vec::new();
            let mut a = d.mm_head;
            while a != 0 && chain.len() <= MAX_VMAS {
                chain.push(a);
                a = vmas.get(&a).map(|v| v.next).unwrap_or(0);
            }
            chain
        })
        .collect();
    if reachable_vmas.len() != vmas.len() {
        return None;
    }
    let table_addrs: BTreeSet<PhysAddr> = descs
        .values()
        .filter(|d| d.files != 0)
        .map(|d| d.files)
        .collect();
    if table_addrs.len() != tables.len() {
        return None;
    }
    let reachable_frecs: BTreeSet<PhysAddr> = tables
        .values()
        .flat_map(|t| t.fds.iter().copied().filter(|&a| a != 0))
        .collect();
    if reachable_frecs != frecs {
        return None;
    }

    Some(Plan {
        slot_addr,
        header,
        snips,
        descs,
        proc_bytes,
        bytes_validated,
    })
}

/// Rewrites the sealed snippets in place and resumes the same generation.
fn apply(
    k: &mut Kernel,
    config: &OtherworldConfig,
    plan: &Plan,
    stats: ReadStats,
    flight: ow_trace::FlightRecord,
    t_panic: u64,
) -> Option<MicrorebootReport> {
    // Roll every record back to its sealed bytes. For a fresh AT_PANIC
    // epoch these writes are byte-identical no-ops unless the fault's wild
    // writes landed inside the record set — which is exactly the damage
    // rollback exists to undo.
    let mut rolled = 0u64;
    for s in &plan.snips {
        copy_snippet_bytes(&mut k.machine.phys, s.src, s.addr, s.len).ok()?;
        let cost = k.machine.cost.checkpoint_byte * s.len;
        k.machine.clock.charge(cost);
        rolled += 1;
    }

    // The kernel lives again: clear the panic, restart the NMI-halted
    // processors and re-arm the watchdog, exactly as a crash-kernel boot
    // would have — except it is still this kernel, this generation.
    k.panicked = None;
    for cpu in &mut k.machine.cpus {
        cpu.reset();
    }
    if k.config.fixes.watchdog_nmi {
        let now = k.machine.clock.now();
        k.machine.watchdog.enable(now);
    }

    // The machine still crashed, even though the kernel survives it: the
    // volatile channels — keyboard FIFOs, socket inboxes and outboxes —
    // die with the panic exactly as they would across a crash-kernel
    // boot. Dropping them keeps rung 0's observable semantics identical
    // to the microreboot's §3.5 contract: in-flight requests are lost and
    // the clients retransmit.
    for t in &mut k.terms {
        t.input.clear();
    }
    for p in &mut k.procs {
        for s in &mut p.sockets {
            s.inbox.clear();
            s.outbox.clear();
        }
    }

    // Refresh the host mirrors from the restored descriptors and owe the
    // §3.5 ERESTART to any call that was in flight at the panic. The
    // in-syscall marker is cleared the same way resurrection clears it.
    let pids: Vec<u64> = plan.descs.values().map(|d| d.pid).collect();
    for &pid in &pids {
        k.update_desc(pid, |d| d.in_syscall = 0).ok()?;
        let in_flight = plan
            .descs
            .values()
            .find(|d| d.pid == pid)
            .map(|d| d.in_syscall != 0)
            .unwrap_or(false);
        let p = k.proc_mut(pid).ok()?;
        p.deliver_restart = in_flight;
        p.resurrection_failures = 0;
    }

    // The program object of whichever process was on-CPU died with the
    // host unwind; rebuild it from resurrected memory like the crash
    // kernel would (the registry was checked during validation).
    for &pid in &pids {
        if k.proc(pid).ok()?.program.is_some() {
            continue;
        }
        let name = k.proc(pid).ok()?.name.clone();
        let image = k.registry.get(&name)?;
        let program = {
            let mut api = KernelApi::new(k, pid);
            (image.rehydrate)(&mut api)
        };
        k.proc_mut(pid).ok()?.program = Some(program);
    }

    k.trace_event(EventKind::RecoveryRolledBack, 0, plan.header.epoch, rolled);

    let now = k.machine.clock.now();
    let secs = |c: u64| c as f64 / ow_simhw::clock::CYCLES_PER_SEC as f64;
    let procs = plan
        .descs
        .values()
        .map(|d| ProcReport {
            old_pid: d.pid,
            new_pid: Some(d.pid),
            name: d.name.clone(),
            outcome: ProcOutcome::ContinuedTransparently,
            failed_resources: 0,
            bytes_read: plan.proc_bytes.get(&d.pid).copied().unwrap_or(0),
            pt_bytes: 0,
            pages_copied: 0,
            pages_mapped: 0,
            pages_swapped: 0,
            rung: LadderRung::RollbackInPlace,
            attempts: 1,
        })
        .collect();
    Some(MicrorebootReport {
        generation: k.generation,
        adoption: AdoptionSummary::default(),
        procs,
        stats,
        crash_boot_seconds: 0.0,
        resurrection_seconds: 0.0,
        morph_seconds: 0.0,
        total_seconds: secs(now - t_panic),
        rollback_seconds: secs(now - t_panic),
        rollback: Some(RollbackSummary {
            epoch: plan.header.epoch,
            seq: plan.header.seq,
            records: rolled,
            procs: plan.header.nprocs as u64,
            bytes_validated: plan.bytes_validated,
        }),
        supervisor: SupervisorSummary {
            enabled: config.supervisor.enabled,
            ..SupervisorSummary::default()
        },
        integrity_fixes: 0,
        flight,
    })
}
