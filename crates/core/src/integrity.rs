//! Integrity cross-checks (§4).
//!
//! Much kernel state is duplicated for performance, and the duplication can
//! be exploited after a failure to detect — and sometimes repair —
//! corruption without any runtime overhead. The check implemented here
//! covers the saved user context: it exists both in the process descriptor
//! (updated at every scheduler step) and in the per-CPU NMI save areas
//! (written during the panic path, §3.2). When both are present the NMI
//! copy is newer and wins; when the descriptor copy was corrupted the NMI
//! copy repairs it.

use ow_layout::{ProcDesc, SAVE_AREA_ADDR};
use ow_simhw::{
    cpu::{Context, SAVE_AREA_BYTES},
    PhysMem,
};

/// Maximum CPUs scanned for saved contexts.
const MAX_CPUS: u32 = 16;

/// Returns the best available saved context for `desc`'s thread plus the
/// number of integrity corrections applied (0 or 1).
pub fn cross_check_context(phys: &PhysMem, desc: &ProcDesc) -> (Context, u64) {
    let from_desc = Context {
        pc: desc.saved_pc,
        sp: desc.saved_sp,
        regs: desc.saved_regs,
    };
    for cpu in 0..MAX_CPUS {
        let addr = SAVE_AREA_ADDR + cpu as u64 * SAVE_AREA_BYTES;
        match Context::load(phys, addr) {
            Ok(Some((pid, ctx))) if pid == desc.pid => {
                if ctx != from_desc {
                    // The NMI-saved copy is authoritative: it was written at
                    // the instant of failure.
                    return (ctx, 1);
                }
                return (ctx, 0);
            }
            Ok(_) => continue,
            Err(_) => break,
        }
    }
    (from_desc, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ow_layout::pstate;

    fn desc(pid: u64, pc: u64) -> ProcDesc {
        ProcDesc {
            pid,
            state: pstate::RUNNABLE,
            name: "t".into(),
            crash_proc: 0,
            page_root: 0,
            mm_head: 0,
            files: 0,
            sig: 0,
            term_id: u32::MAX,
            shm_head: 0,
            sock_head: 0,
            res_in_use: 0,
            in_syscall: 0,
            saved_pc: pc,
            saved_sp: 0,
            saved_regs: [0; 8],
            checksum: 0,
            next: 0,
        }
    }

    #[test]
    fn no_saved_context_uses_descriptor() {
        let phys = PhysMem::new(4);
        let (ctx, fixes) = cross_check_context(&phys, &desc(7, 42));
        assert_eq!(ctx.pc, 42);
        assert_eq!(fixes, 0);
    }

    #[test]
    fn matching_context_no_fix() {
        let mut phys = PhysMem::new(4);
        let c = Context {
            pc: 42,
            sp: 0,
            regs: [0; 8],
        };
        c.save(&mut phys, SAVE_AREA_ADDR, 7).unwrap();
        let (ctx, fixes) = cross_check_context(&phys, &desc(7, 42));
        assert_eq!(ctx.pc, 42);
        assert_eq!(fixes, 0);
    }

    #[test]
    fn nmi_copy_repairs_corrupted_descriptor() {
        let mut phys = PhysMem::new(4);
        let c = Context {
            pc: 42,
            sp: 9,
            regs: [1; 8],
        };
        c.save(&mut phys, SAVE_AREA_ADDR + SAVE_AREA_BYTES, 7)
            .unwrap();
        // Descriptor claims a different pc (corrupted or stale).
        let (ctx, fixes) = cross_check_context(&phys, &desc(7, 41));
        assert_eq!(ctx.pc, 42);
        assert_eq!(fixes, 1);
    }

    #[test]
    fn other_pids_are_ignored() {
        let mut phys = PhysMem::new(4);
        let c = Context {
            pc: 99,
            sp: 0,
            regs: [0; 8],
        };
        c.save(&mut phys, SAVE_AREA_ADDR, 8).unwrap();
        let (ctx, fixes) = cross_check_context(&phys, &desc(7, 42));
        assert_eq!(ctx.pc, 42);
        assert_eq!(fixes, 0);
    }
}
