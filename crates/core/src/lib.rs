//! Otherworld: giving applications a chance to survive OS kernel crashes.
//!
//! This crate implements the paper's contribution on top of the `ow-kernel`
//! substrate:
//!
//! 1. **Crash-kernel boot** inside the memory reservation
//!    ([`ow_kernel::Kernel::boot_crash`], driven from here).
//! 2. **Validated raw-memory readers** over the dead kernel ([`reader`]),
//!    with byte accounting (Table 4) and corruption detection (§4).
//! 3. **Application resurrection** ([`resurrect`]): process descriptors,
//!    memory regions, page contents (copy / map / swap migration), open
//!    files with dirty-buffer flushing, terminals, signals, shared memory.
//! 4. **Crash procedures** and the Table 1 decision matrix
//!    ([`otherworld::microreboot`]).
//! 5. **Morphing** into the main kernel and installing a fresh crash kernel
//!    (§3.6, [`ow_kernel::Kernel::morph_into_main`]).
//!
//! 6. **Resurrection supervisor** ([`supervisor`] + the orchestration in
//!    [`otherworld`]): panic containment around every engine call, a
//!    degradation ladder ([`config::LadderRung`]), a recovery watchdog with
//!    a per-process cycle budget, and second-generation escalation when the
//!    crash kernel itself fails.
//!
//! The entry points are [`microreboot`] (one-shot) and the [`Otherworld`]
//! session wrapper (continuous operation across generations).

#![forbid(unsafe_code)]

pub mod config;
pub mod integrity;
pub mod otherworld;
pub mod policy;
pub mod reader;
pub mod resurrect;
pub mod rollback;
pub mod stats;
pub mod supervisor;

pub use config::{
    EnginePanicFault, LadderRung, MorphMode, OtherworldConfig, PolicySource, RecoveryFaultPlan,
    ResurrectionStrategy, StallFault, SupervisorConfig,
};
pub use otherworld::{microreboot, MicrorebootFailure, Otherworld};
pub use policy::ResurrectionPolicy;
pub use stats::{
    AdoptionSummary, MicrorebootReport, ProcOutcome, ProcReport, ReadKind, ReadStats,
    RollbackSummary, SupervisorSummary,
};
