//! Otherworld configuration.

use crate::policy::ResurrectionPolicy;
use ow_kernel::KernelConfig;

/// How the crash kernel materializes the resurrected process's pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResurrectionStrategy {
    /// Allocate a new page inside the crash kernel's reservation and copy
    /// the old contents (the paper's default, §3.3).
    CopyPages,
    /// Map the original physical page directly (footnote 3's optimization:
    /// much faster and needs no reservation space; the frames are adopted
    /// at morph time).
    MapPages,
    /// Copy-on-access: map the old frame read-only and defer the private
    /// copy to the first touch (a lazy-pull page fault). Restart latency
    /// scales with the hot working set instead of the whole image.
    Lazy,
}

/// How the crash kernel becomes the next main kernel (stage 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MorphMode {
    /// Rebuild everything: scan all of RAM for the frame allocator and
    /// rebuild the swap map and page cache from scratch.
    Cold,
    /// Validate-then-adopt: revalidate the dead kernel's sealed frame
    /// bitmap, swap-slot map and page cache against their CRCs and adopt
    /// whatever checks out, falling back per-structure to the cold rebuild.
    Warm,
}

/// One rung of the resurrection supervisor's degradation ladder, from the
/// full-fidelity engine down to a clean restart from the program registry.
/// On a hard read error, a contained panic, or a blown cycle budget the
/// supervisor retries the process one rung weaker (ReHype-style: degrade
/// rather than give up).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LadderRung {
    /// Rung 0: roll the resurrection-critical records back to the newest
    /// validated epoch checkpoint *in place* and resume the same kernel
    /// generation — no crash-kernel boot, no resurrection, no morph. Only
    /// ever reached when a fresh panic-sealed epoch validates; any doubt
    /// falls through to [`LadderRung::Full`].
    RollbackInPlace = 0,
    /// The full resurrection engine: all memory including swapped-out
    /// pages, files, terminal, signals, shm, optional sockets/pipes.
    Full = 1,
    /// Skip swap migration: swapped-out pages are abandoned (the swap area
    /// descriptors or bitmap may be what is corrupted). Loses `MEMORY`.
    NoSwapMigration = 2,
    /// Anonymous memory only: additionally drop file-backed contents, open
    /// files, terminal, signal handlers, shm, and sockets — only the
    /// resident anonymous address space and registers survive.
    AnonymousOnly = 3,
    /// Give up on the dead image entirely and start a fresh instance from
    /// the program registry (the crash-procedure "restart" path without any
    /// saved state).
    CleanRestart = 4,
}

impl LadderRung {
    /// The next-weaker rung, or `None` from the bottom.
    pub fn weaker(self) -> Option<LadderRung> {
        match self {
            LadderRung::RollbackInPlace => Some(LadderRung::Full),
            LadderRung::Full => Some(LadderRung::NoSwapMigration),
            LadderRung::NoSwapMigration => Some(LadderRung::AnonymousOnly),
            LadderRung::AnonymousOnly => Some(LadderRung::CleanRestart),
            LadderRung::CleanRestart => None,
        }
    }

    /// Stable short name (used by reports and the JSON export).
    pub fn name(self) -> &'static str {
        match self {
            LadderRung::RollbackInPlace => "rollback_in_place",
            LadderRung::Full => "full",
            LadderRung::NoSwapMigration => "no_swap_migration",
            LadderRung::AnonymousOnly => "anonymous_only",
            LadderRung::CleanRestart => "clean_restart",
        }
    }
}

/// Resurrection-supervisor knobs (the tentpole of the robustness work):
/// panic containment, the degradation ladder, the per-process recovery
/// watchdog, and second-generation escalation.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Master switch. Off = the pre-supervisor single-shot semantics: any
    /// recovery-time fault fails the whole microreboot (panics are still
    /// contained at the boundary and classified, never propagated).
    pub enabled: bool,
    /// Hard per-process failures (contained panics + watchdog firings)
    /// tolerated before the supervisor stops trusting this crash-kernel
    /// generation and escalates to a restart-only generation 2.
    pub escalation_threshold: u32,
    /// Crash-kernel generations the supervisor may consume for one
    /// microreboot (1 = never escalate, 2 = one generation-2 retry).
    pub max_generations: u32,
    /// Per-process cycle budget for the recovery watchdog. `None` derives
    /// one from the machine's cost model and the reservation size.
    pub per_process_budget: Option<u64>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            enabled: true,
            escalation_threshold: 3,
            max_generations: 2,
            per_process_budget: None,
        }
    }
}

/// A deterministic plan of faults to inject *into the recovery path itself*
/// (the ow-faultinject recovery campaign fills this in; production configs
/// leave it empty). It lives here rather than in ow-faultinject because the
/// injection points are inside `microreboot()`.
#[derive(Debug, Clone, Default)]
pub struct RecoveryFaultPlan {
    /// Fail this many crash-kernel boot attempts before letting one
    /// succeed (models a crash kernel that itself crashes early).
    pub crash_boot_failures: u32,
    /// Panic the resurrection engine for selected processes.
    pub engine_panics: Vec<EnginePanicFault>,
    /// Stall the engine for selected processes (models a walk stuck in a
    /// corrupted structure), burning simulated cycles at the full rung.
    pub stalls: Vec<StallFault>,
}

impl RecoveryFaultPlan {
    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.crash_boot_failures == 0 && self.engine_panics.is_empty() && self.stalls.is_empty()
    }
}

/// Panic the resurrection engine while it works on the `victim`-th
/// resurrectable process (policy-selected order), at every rung up to and
/// including `panics_through`.
#[derive(Debug, Clone, Copy)]
pub struct EnginePanicFault {
    /// Index into the policy-selected process list.
    pub victim: usize,
    /// Weakest rung that still panics; weaker rungs succeed.
    pub panics_through: LadderRung,
}

/// Burn `cycles` simulated cycles while resurrecting the `victim`-th
/// process at the full rung — a stall the recovery watchdog must cut off.
#[derive(Debug, Clone, Copy)]
pub struct StallFault {
    /// Index into the policy-selected process list.
    pub victim: usize,
    /// Simulated cycles the stall burns.
    pub cycles: u64,
}

/// Where the crash kernel finds the resurrection policy.
#[derive(Debug, Clone)]
pub enum PolicySource {
    /// Use this policy directly (the "interactive user selects processes"
    /// path, pre-decided for automation).
    Inline(ResurrectionPolicy),
    /// Read a JSON policy from this path on the (re-mounted) filesystem —
    /// the paper's resurrection configuration file for autonomic server
    /// recovery (§3.3).
    File(String),
}

/// Configuration of the Otherworld mechanism.
#[derive(Debug, Clone)]
pub struct OtherworldConfig {
    /// Page materialization strategy.
    pub strategy: ResurrectionStrategy,
    /// Morph strategy: cold rebuild or warm validate-then-adopt. Warm also
    /// turns on the crash kernel's warm-boot validation discounts.
    pub morph: MorphMode,
    /// Which processes to resurrect.
    pub policy: PolicySource,
    /// Configuration the crash kernel boots with (same source as the main
    /// kernel, §3.1 — but a different build/version is possible and guards
    /// against deterministic re-triggering of the same fault).
    pub crash_kernel: KernelConfig,
    /// §7 extension: resurrect TCP/UDP sockets (connection parameters,
    /// sequence state, unacknowledged outbound payload). Off by default —
    /// the paper's prototype cannot resurrect sockets.
    pub resurrect_sockets: bool,
    /// §7 extension: resurrect pipes whose semaphore was free at crash time
    /// (§3.3's consistency rule). Off by default.
    pub resurrect_pipes: bool,
    /// Resurrection-supervisor knobs (containment, ladder, watchdog,
    /// escalation). Enabled by default.
    pub supervisor: SupervisorConfig,
    /// Faults to inject into the recovery path itself; empty outside the
    /// ow-faultinject recovery campaign.
    pub recovery_faults: RecoveryFaultPlan,
    /// Rung 0 of the ladder: try rollback-in-place from the newest epoch
    /// checkpoint before any crash-kernel handoff. Off by default (the
    /// paper's microreboot semantics); requires the kernel's epoch-
    /// checkpoint writer (`KernelConfig::checkpoint_interval != 0`) to
    /// have sealed a fresh epoch on the panic path.
    pub rollback: bool,
}

impl Default for OtherworldConfig {
    fn default() -> Self {
        OtherworldConfig {
            strategy: ResurrectionStrategy::CopyPages,
            morph: MorphMode::Cold,
            policy: PolicySource::Inline(ResurrectionPolicy::all()),
            crash_kernel: KernelConfig::default(),
            resurrect_sockets: false,
            resurrect_pipes: false,
            supervisor: SupervisorConfig::default(),
            recovery_faults: RecoveryFaultPlan::default(),
            rollback: false,
        }
    }
}
