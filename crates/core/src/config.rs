//! Otherworld configuration.

use crate::policy::ResurrectionPolicy;
use ow_kernel::KernelConfig;

/// How the crash kernel materializes the resurrected process's pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResurrectionStrategy {
    /// Allocate a new page inside the crash kernel's reservation and copy
    /// the old contents (the paper's default, §3.3).
    CopyPages,
    /// Map the original physical page directly (footnote 3's optimization:
    /// much faster and needs no reservation space; the frames are adopted
    /// at morph time).
    MapPages,
}

/// Where the crash kernel finds the resurrection policy.
#[derive(Debug, Clone)]
pub enum PolicySource {
    /// Use this policy directly (the "interactive user selects processes"
    /// path, pre-decided for automation).
    Inline(ResurrectionPolicy),
    /// Read a JSON policy from this path on the (re-mounted) filesystem —
    /// the paper's resurrection configuration file for autonomic server
    /// recovery (§3.3).
    File(String),
}

/// Configuration of the Otherworld mechanism.
#[derive(Debug, Clone)]
pub struct OtherworldConfig {
    /// Page materialization strategy.
    pub strategy: ResurrectionStrategy,
    /// Which processes to resurrect.
    pub policy: PolicySource,
    /// Configuration the crash kernel boots with (same source as the main
    /// kernel, §3.1 — but a different build/version is possible and guards
    /// against deterministic re-triggering of the same fault).
    pub crash_kernel: KernelConfig,
    /// §7 extension: resurrect TCP/UDP sockets (connection parameters,
    /// sequence state, unacknowledged outbound payload). Off by default —
    /// the paper's prototype cannot resurrect sockets.
    pub resurrect_sockets: bool,
    /// §7 extension: resurrect pipes whose semaphore was free at crash time
    /// (§3.3's consistency rule). Off by default.
    pub resurrect_pipes: bool,
}

impl Default for OtherworldConfig {
    fn default() -> Self {
        OtherworldConfig {
            strategy: ResurrectionStrategy::CopyPages,
            policy: PolicySource::Inline(ResurrectionPolicy::all()),
            crash_kernel: KernelConfig::default(),
            resurrect_sockets: false,
            resurrect_pipes: false,
        }
    }
}
