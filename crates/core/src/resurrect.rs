//! The resurrection engine (§3.3).
//!
//! Given a validated process descriptor from the dead kernel, rebuild the
//! process inside the crash kernel: memory regions, page contents
//! (copied, mapped, or migrated between swap partitions), open files with
//! offsets and flushed dirty buffers, the physical terminal, signal
//! handlers and shared memory. Sockets and pipes are not resurrectable in
//! the prototype; their presence is reported to the crash procedure via
//! the failure bitmask.

use crate::{
    config::{LadderRung, ResurrectionStrategy},
    integrity,
    reader::{self, ReadError},
    stats::{ReadKind, ReadStats},
};
use ow_kernel::{
    kernel::SockHandle,
    layout::{
        oflags, resmask, sockproto, vmaflags, FileRecord, KernelHeader, PageCacheNode, ProcDesc,
        SockDesc, TermDesc,
    },
    swap::SwapArea,
    Kernel, KernelError,
};
use ow_layout::Record;
use ow_simhw::{machine::FrameOwner, AddressSpace, PhysAddr, Pte, PteFlags, PAGE_SIZE};

/// Page-materialization counters for one process.
#[derive(Debug, Clone, Copy, Default)]
pub struct PageCounters {
    /// Pages copied into the crash kernel's reservation.
    pub copied: u64,
    /// Pages adopted by direct mapping (footnote 3 optimization, also the
    /// fallback when the reservation runs out).
    pub mapped: u64,
    /// Pages migrated from the dead kernel's swap partition to ours.
    pub swapped: u64,
}

/// The outcome of rebuilding one process's kernel state.
#[derive(Debug)]
pub struct Resurrected {
    /// Pid in the crash kernel.
    pub new_pid: u64,
    /// Resource types that could not be restored ([`resmask`] bits).
    pub failed_resources: u32,
    /// Page counters.
    pub pages: PageCounters,
    /// Whether the process died inside a system call (it will receive
    /// `ERESTART` on its next call, §3.5).
    pub was_in_syscall: bool,
    /// Integrity cross-check corrections applied (§4).
    pub integrity_fixes: u64,
}

/// Everything the engine needs to know about the dead kernel.
pub struct DeadKernel<'a> {
    /// The dead kernel's validated header.
    pub header: &'a KernelHeader,
    /// The dead kernel's active swap area (None if its descriptor was
    /// corrupted — swapped pages then become unresurrectable).
    pub swap: Option<&'a SwapArea>,
    /// Crash-reservation bounds `(base, frames)`: a dead PTE pointing in
    /// here is implausible and treated as corruption.
    pub crash_region: (u64, u64),
    /// §7 extension: resurrect this process's sockets.
    pub resurrect_sockets: bool,
    /// §7 extension: pipe resurrection outcome — `None` when the feature is
    /// off, `Some(true)` when every pipe was consistent and restored,
    /// `Some(false)` when any pipe was locked or corrupted at crash time.
    pub pipes_restored: Option<bool>,
    /// Warm morph: the dead kernel's swap-slot bitmap was CRC-validated and
    /// adopted into the crash kernel's own area on the same device — dead
    /// swapped PTEs can be installed verbatim, no per-page migration I/O.
    pub swap_adopted: bool,
    /// Warm morph: the dead kernel's page cache was CRC-validated — dirty
    /// cache nodes can be re-chained onto reopened files instead of being
    /// flushed and dropped.
    pub cache_adopted: bool,
}

/// Rebuilds `old_desc`'s process inside the crash kernel `k`.
///
/// `rung` is the supervisor's degradation-ladder rung for this attempt:
/// [`LadderRung::Full`] runs the whole engine;
/// [`LadderRung::NoSwapMigration`] abandons swapped-out pages (setting
/// [`resmask::MEMORY`]); [`LadderRung::AnonymousOnly`] additionally drops
/// file backing, open files, terminal, signals, shm and sockets — only the
/// resident anonymous address space and registers survive. The engine is
/// never called at [`LadderRung::CleanRestart`]; the supervisor restarts
/// from the program registry instead.
///
/// # Errors
///
/// Returns [`ReadError`] when corruption of dead-kernel structures makes the
/// process unresurrectable (Table 5's "failure to resurrect" column). Soft
/// failures of individual resource types (a missing file, a corrupted
/// terminal descriptor) do not error; they set bits in
/// [`Resurrected::failed_resources`] for the crash procedure to handle
/// (Table 1 semantics).
pub fn resurrect_process(
    k: &mut Kernel,
    dead: &DeadKernel<'_>,
    old_desc: &ProcDesc,
    strategy: ResurrectionStrategy,
    rung: LadderRung,
    stats: &mut ReadStats,
) -> Result<Resurrected, ReadError> {
    // Rung 0 (rollback-in-place) never reaches the engine, and the clean
    // restart bypasses it: both are handled entirely by the orchestrator.
    debug_assert!(rung != LadderRung::RollbackInPlace);
    debug_assert!(rung != LadderRung::CleanRestart);
    let skip_swap = rung >= LadderRung::NoSwapMigration;
    let anon_only = rung >= LadderRung::AnonymousOnly;
    let mut failed = 0u32;
    let mut pages = PageCounters::default();

    // 1. A new process descriptor — the `clone()`-shared path (§3.7).
    let new_pid = k
        .create_raw_process(&old_desc.name)
        .map_err(|e| corrupt("create process", e))?;
    // Descriptor created; a fault here strands it for the scrub pass.
    ow_crashpoint::crash_point!("recovery.resurrect.descriptor.create");

    // 2. Memory regions. Rebuilt in original order (the chain is re-created
    //    by prepending, so walk the old chain in reverse).
    let vmas = reader::read_vmas(&k.machine.phys, old_desc, stats)?;
    ow_crashpoint::crash_point!("recovery.resurrect.vma.rebuild");
    for (_addr, vma) in vmas.iter().rev() {
        let mut flags = vma.flags;
        let mut file = 0u64;
        let file_off = vma.file_off;
        if vma.flags & vmaflags::FILE != 0 && vma.file != 0 {
            if anon_only {
                // Degraded rung: don't even touch the dead file record —
                // the mapping continues as anonymous memory.
                flags &= !vmaflags::FILE;
                failed |= resmask::FILES | resmask::MEMORY;
            } else {
                // Reopen the backing file for the mapping.
                match reopen_for_mapping(k, vma.file, stats) {
                    Ok(frec_addr) => file = frec_addr,
                    Err(_) => {
                        // Pages are materialized below anyway; lose only the
                        // backing (future faults become anonymous).
                        flags &= !vmaflags::FILE;
                        failed |= resmask::FILES;
                    }
                }
            }
        }
        k.vma_add(new_pid, vma.start, vma.end, flags, file, file_off)
            .map_err(|e| corrupt("vma rebuild", e))?;
    }

    // 3. Page contents. Walk the dead page tables (accounting them — the
    //    dominant share of Table 4) and materialize every mapped page.
    stats_account_tables(k, old_desc, stats)?;
    ow_crashpoint::crash_point!("recovery.resurrect.pages.materialize");
    let old_asp = AddressSpace::from_root(old_desc.page_root);
    let mut entries = Vec::new();
    old_asp
        .for_each_mapped(&k.machine.phys, |va, pte| entries.push((va, pte)))
        .map_err(|e| ReadError::Layout(ow_layout::LayoutError::Mem(e)))?;

    let (crash_base, crash_frames) = dead.crash_region;
    for (va, pte) in entries {
        let mut flags = pte.flags();
        if flags.contains(PteFlags::LAZY_RW) {
            // A page still lazy from an earlier resurrection: its pre-crash
            // writability lives in LAZY_RW, not WRITABLE.
            flags |= PteFlags::WRITABLE;
        }
        let keep = PteFlags::from_bits(
            flags.bits()
                & (PteFlags::WRITABLE.bits()
                    | PteFlags::USER.bits()
                    | PteFlags::FILE.bits()
                    | PteFlags::ACCESSED.bits()
                    | PteFlags::DIRTY.bits()),
        );
        if flags.contains(PteFlags::PRESENT) {
            let old_pfn = pte.pfn();
            if old_pfn >= k.machine.frames()
                || (old_pfn >= crash_base && old_pfn < crash_base + crash_frames)
            {
                return Err(ReadError::Layout(ow_layout::LayoutError::BadValue {
                    structure: "Pte",
                    field: "pfn",
                    addr: va,
                }));
            }
            let use_map = match strategy {
                ResurrectionStrategy::MapPages | ResurrectionStrategy::Lazy => true,
                ResurrectionStrategy::CopyPages => false,
            };
            let mapped = if use_map {
                true
            } else if let Ok(new_pfn) = k.alloc_frame(FrameOwner::User { pid: new_pid }) {
                k.copy_frame_charged(old_pfn, new_pfn)
                    .map_err(|e| corrupt("page copy", KernelError::Mem(e)))?;
                k.map_user_page(new_pid, va, new_pfn, keep | PteFlags::PRESENT)
                    .map_err(|e| corrupt("page map", e))?;
                pages.copied += 1;
                false
            } else {
                // Reservation exhausted: fall back to adopting the frame.
                true
            };
            if mapped {
                k.machine
                    .set_owner(old_pfn, FrameOwner::User { pid: new_pid });
                let cost = k.machine.cost.page_map;
                k.machine.clock.charge(cost);
                let install = if strategy == ResurrectionStrategy::Lazy {
                    // Map the old frame read-only; the first write pulls a
                    // private copy (copy-on-access) and restores the
                    // writability recorded in LAZY_RW.
                    let mut f = PteFlags::from_bits(keep.bits() & !PteFlags::WRITABLE.bits())
                        | PteFlags::PRESENT
                        | PteFlags::LAZY;
                    if keep.contains(PteFlags::WRITABLE) {
                        f |= PteFlags::LAZY_RW;
                    }
                    f
                } else {
                    keep | PteFlags::PRESENT
                };
                k.map_user_page(new_pid, va, old_pfn, install)
                    .map_err(|e| corrupt("page adopt", e))?;
                pages.mapped += 1;
            }
        } else if flags.contains(PteFlags::SWAPPED) {
            if skip_swap {
                // Degraded rung: the swap path (descriptors, bitmap, or
                // the partition itself) is suspect — abandon the page.
                failed |= resmask::MEMORY;
                continue;
            }
            if dead.swap_adopted {
                // The dead kernel's slot bitmap was CRC-validated and
                // adopted into our area on the same device: the dead slot
                // is already reserved, so the PTE installs verbatim.
                k.set_user_pte(new_pid, va, Pte::new(pte.pfn(), keep | PteFlags::SWAPPED))
                    .map_err(|e| corrupt("swap pte", e))?;
                pages.swapped += 1;
                continue;
            }
            // Migrate between swap partitions: read from the dead kernel's
            // partition, write to ours (§3.3).
            let swap = dead
                .swap
                .ok_or(ReadError::Layout(ow_layout::LayoutError::BadValue {
                    structure: "SwapDesc",
                    field: "missing",
                    addr: 0,
                }))?;
            let buf = swap
                .read_slot_buf(&mut k.machine, pte.pfn() as u32)
                .map_err(|e| corrupt("swap read", e))?;
            let ours = k
                .swaps
                .get(k.active_swap)
                .cloned()
                .ok_or_else(|| corrupt("swap target", KernelError::Inval("no active swap")))?;
            let slot = ours
                .alloc_slot(&mut k.machine)
                .map_err(|e| corrupt("swap alloc", e))?;
            ours.write_slot_buf(&mut k.machine, slot, &buf)
                .map_err(|e| corrupt("swap write", e))?;
            k.set_user_pte(new_pid, va, Pte::new(slot as u64, keep | PteFlags::SWAPPED))
                .map_err(|e| corrupt("swap pte", e))?;
            pages.swapped += 1;
        }
    }

    // 4. Open files: reopen by stored path/flags/offset, flush the dead
    //    kernel's dirty buffers first (§3.3). The anonymous-only rung does
    //    not walk the file records or cache chains at all — the file table
    //    itself is one fixed-size validated read, enough to report what
    //    was lost.
    ow_crashpoint::crash_point!("recovery.resurrect.files.reopen");
    if anon_only {
        match reader::read_file_table(&k.machine.phys, old_desc, stats) {
            Ok(tab) if tab.fds.iter().all(|&a| a == 0) => {}
            _ => failed |= resmask::FILES,
        }
    } else {
        let old_tab = reader::read_file_table(&k.machine.phys, old_desc, stats)?;
        for (slot, &frec_addr) in old_tab.fds.iter().enumerate() {
            if frec_addr == 0 {
                continue;
            }
            match resurrect_file(k, frec_addr, dead.cache_adopted, stats) {
                Ok(new_frec_addr) => {
                    install_fd(k, new_pid, slot as u32, new_frec_addr)
                        .map_err(|e| corrupt("fd install", e))?;
                }
                Err(_) => failed |= resmask::FILES,
            }
        }
    }

    // 5. Physical terminal (§3.3).
    ow_crashpoint::crash_point!("recovery.resurrect.terminal.restore");
    if old_desc.term_id != u32::MAX {
        if anon_only {
            failed |= resmask::TERMINAL;
        } else {
            match resurrect_terminal(k, dead.header, old_desc.term_id, stats) {
                Ok(new_term) => {
                    k.update_desc(new_pid, |d| d.term_id = new_term)
                        .map_err(|e| corrupt("term attach", e))?;
                }
                Err(_) => failed |= resmask::TERMINAL,
            }
        }
    }

    // 6. Signal handlers.
    ow_crashpoint::crash_point!("recovery.resurrect.signals.restore");
    if anon_only {
        failed |= resmask::SIGNALS;
    } else {
        match reader::read_sig_table(&k.machine.phys, old_desc, stats) {
            Ok(tab) => {
                let new_desc = k.read_desc(new_pid).map_err(|e| corrupt("desc read", e))?;
                tab.write(&mut k.machine.phys, new_desc.sig)
                    .map_err(ReadError::Layout)?;
            }
            Err(_) => failed |= resmask::SIGNALS,
        }
    }

    // 7. Shared memory: recreate segments with copied contents.
    if anon_only {
        if old_desc.shm_head != 0 {
            failed |= resmask::SHM;
        }
    } else {
        match reader::read_shm_chain(&k.machine.phys, old_desc, stats) {
            Ok(segs) => {
                for seg in segs {
                    if restore_shm(k, new_pid, &seg).is_err() {
                        failed |= resmask::SHM;
                    }
                }
            }
            Err(_) => failed |= resmask::SHM,
        }
    }

    // 8. Sockets: unresurrectable in the paper's prototype; the §7
    //    extension restores connection parameters, sequence state and
    //    unacknowledged outbound payload (TCP) per §3.3's analysis.
    if dead.resurrect_sockets && !anon_only {
        match resurrect_sockets(k, old_desc, new_pid, stats) {
            Ok(()) => {}
            Err(_) => failed |= resmask::SOCKETS,
        }
    } else {
        failed |= old_desc.res_in_use & resmask::SOCKETS;
    }
    // Pipes: restored globally before per-process resurrection; a process
    // using pipes fails the resource only if the feature is off or any
    // pipe was inconsistent (locked) at crash time.
    match dead.pipes_restored {
        Some(true) => {}
        Some(false) | None => failed |= old_desc.res_in_use & resmask::PIPES,
    }
    failed |= old_desc.res_in_use & resmask::PTY;

    // 9. Saved context: prefer the NMI-saved per-CPU copy when it is valid
    //    and newer (§4: duplicated state cross-checks).
    ow_crashpoint::crash_point!("recovery.resurrect.context.check");
    let (ctx, integrity_fixes) = integrity::cross_check_context(&k.machine.phys, old_desc);
    k.update_desc(new_pid, |d| {
        d.crash_proc = old_desc.crash_proc;
        d.saved_pc = ctx.pc;
        d.saved_sp = ctx.sp;
        d.saved_regs = ctx.regs;
        d.in_syscall = 0;
    })
    .map_err(|e| corrupt("context restore", e))?;
    {
        let p = k.proc_mut(new_pid).map_err(|e| corrupt("proc handle", e))?;
        p.step = ctx.pc;
        p.deliver_restart = old_desc.in_syscall != 0;
        p.resurrection_failures = failed;
    }

    Ok(Resurrected {
        new_pid,
        failed_resources: failed,
        pages,
        was_in_syscall: old_desc.in_syscall != 0,
        integrity_fixes,
    })
}

fn corrupt(what: &'static str, _cause: KernelError) -> ReadError {
    ReadError::Layout(ow_layout::LayoutError::BadValue {
        structure: "resurrection",
        field: what,
        addr: 0,
    })
}

fn stats_account_tables(
    k: &Kernel,
    old_desc: &ProcDesc,
    stats: &mut ReadStats,
) -> Result<(), ReadError> {
    reader::account_page_tables(&k.machine.phys, old_desc.page_root, stats)?;
    Ok(())
}

/// Reopens the file behind a dead [`FileRecord`] for a memory mapping.
fn reopen_for_mapping(
    k: &mut Kernel,
    old_frec_addr: PhysAddr,
    stats: &mut ReadStats,
) -> Result<PhysAddr, ReadError> {
    let old = reader::read_file_record(&k.machine.phys, old_frec_addr, stats)?;
    let fs = k.fs.clone();
    let ino = fs
        .lookup(&mut k.machine, &old.path)
        .map_err(|e| corrupt("map lookup", e))?
        .ok_or_else(|| corrupt("map lookup", KernelError::NoEnt(old.path.clone())))?;
    let new_addr = k
        .kheap
        .alloc(FileRecord::SIZE)
        .ok_or_else(|| corrupt("map frec", KernelError::NoMemory))?;
    FileRecord {
        flags: old.flags & !oflags::TRUNC,
        refcnt: 1,
        offset: old.offset,
        fsize: old.fsize,
        inode: ino as u64,
        path: old.path,
        cache_head: 0,
    }
    .write(&mut k.machine.phys, new_addr)
    .map_err(ReadError::Layout)?;
    Ok(new_addr)
}

/// Resurrects one open file: reopen at the same path/flags/offset. With
/// `adopt_cache` (warm morph, CRC-validated page cache) the dead cache
/// chain is re-linked onto the reopened file — the node frames ride along
/// with the adopted frame bitmap and dirty data stays in RAM. Otherwise
/// the dead kernel's dirty buffers are flushed to disk first (§3.3).
fn resurrect_file(
    k: &mut Kernel,
    old_frec_addr: PhysAddr,
    adopt_cache: bool,
    stats: &mut ReadStats,
) -> Result<PhysAddr, ReadError> {
    let old = reader::read_file_record(&k.machine.phys, old_frec_addr, stats)?;
    let fs = k.fs.clone();
    let ino = match fs
        .lookup(&mut k.machine, &old.path)
        .map_err(|e| corrupt("file lookup", e))?
    {
        Some(ino) => ino,
        None if old.flags & oflags::CREATE != 0 => fs
            .create(&mut k.machine, &old.path)
            .map_err(|e| corrupt("file create", e))?,
        None => return Err(corrupt("file lookup", KernelError::NoEnt(old.path.clone()))),
    };

    // The chain can't plausibly hold more nodes than the file has pages
    // (plus slack for trailing appends).
    let max_nodes = (old.fsize / PAGE_SIZE as u64 + 8) as usize;
    let nodes = reader::read_cache_chain(&k.machine.phys, old.cache_head, max_nodes, stats)?;
    let mut cache_head = 0u64;
    if adopt_cache {
        // Re-chain the validated nodes (in original order — rebuilt by
        // prepending) through descriptors in the new kheap; the page frames
        // themselves are adopted, not copied.
        ow_crashpoint::crash_point!("recovery.adopt.cache.rebuild");
        for (_node_addr, node) in nodes.iter().rev() {
            let new_node = k
                .kheap
                .alloc(PageCacheNode::SIZE)
                .ok_or_else(|| corrupt("cache node", KernelError::NoMemory))?;
            k.machine.set_owner(node.pfn, FrameOwner::PageCache);
            PageCacheNode {
                file_off: node.file_off,
                pfn: node.pfn,
                dirty: node.dirty,
                next: cache_head,
            }
            .write(&mut k.machine.phys, new_node)
            .map_err(ReadError::Layout)?;
            cache_head = new_node;
        }
    } else {
        // Flush dirty buffers using the *validated* inode (cross-checking
        // the one stored in the record — §4).
        for (node_addr, node) in nodes {
            if node.dirty != 0 {
                let valid = old
                    .fsize
                    .saturating_sub(node.file_off)
                    .min(PAGE_SIZE as u64);
                if valid > 0 {
                    let mut buf = vec![0u8; valid as usize];
                    k.machine
                        .phys
                        // ow-lint: allow(untrusted-read) -- bulk cache-page payload copy; the node came from the validated cache-chain reader and any byte pattern is legal file data
                        .read(node.pfn * PAGE_SIZE as u64, &mut buf)
                        .map_err(|e| corrupt("cache read", KernelError::Mem(e)))?;
                    fs.write_at(&mut k.machine, ino, node.file_off, &buf)
                        .map_err(|e| corrupt("cache flush", e))?;
                }
            }
            let _ = node_addr;
        }
    }

    let disk_size = fs
        .size_of(&mut k.machine, ino)
        .map_err(|e| corrupt("file size", e))?;
    let new_addr = k
        .kheap
        .alloc(FileRecord::SIZE)
        .ok_or_else(|| corrupt("file frec", KernelError::NoMemory))?;
    FileRecord {
        flags: old.flags & !oflags::TRUNC,
        refcnt: 1,
        offset: old.offset,
        fsize: disk_size.max(old.fsize),
        inode: ino as u64,
        path: old.path,
        cache_head,
    }
    .write(&mut k.machine.phys, new_addr)
    .map_err(ReadError::Layout)?;
    Ok(new_addr)
}

/// Places a reopened file record into the same fd slot it occupied (§3.3:
/// reopening must be transparent to the application).
fn install_fd(k: &mut Kernel, pid: u64, slot: u32, frec_addr: PhysAddr) -> Result<(), KernelError> {
    let desc = k.read_desc(pid)?;
    let (mut tab, _) = ow_layout::FileTable::read(&k.machine.phys, desc.files)?;
    *tab.fds
        .get_mut(slot as usize)
        .ok_or(KernelError::Inval("fd slot out of range"))? = frec_addr;
    tab.write(&mut k.machine.phys, desc.files)?;
    Ok(())
}

/// Restores a physical terminal: new terminal with the dead one's screen
/// contents, cursor and settings (§3.3).
fn resurrect_terminal(
    k: &mut Kernel,
    dead_header: &KernelHeader,
    term_id: u32,
    stats: &mut ReadStats,
) -> Result<u32, ReadError> {
    let old = reader::read_term(&k.machine.phys, dead_header, term_id, stats)?;
    let new_id = k
        .create_terminal()
        .map_err(|e| corrupt("terminal create", e))?;
    // Copy the screen buffer from the dead kernel's frame.
    let cells = (ow_layout::TERM_COLS * ow_layout::TERM_ROWS) as usize;
    let mut screen = vec![0u8; cells];
    k.machine
        .phys
        // ow-lint: allow(untrusted-read) -- bulk screen-buffer payload copy; the descriptor came from the validated terminal reader and any byte pattern is a legal glyph
        .read(old.screen_pfn * PAGE_SIZE as u64, &mut screen)
        .map_err(|e| corrupt("screen read", KernelError::Mem(e)))?;
    stats.add(ReadKind::TerminalScreen, cells as u64);
    // Locate the new terminal's descriptor and write state through it.
    let new_desc_addr = k.term_table_addr + new_id as u64 * TermDesc::SIZE;
    let (mut new_desc, _) =
        TermDesc::read(&k.machine.phys, new_desc_addr).map_err(ReadError::Layout)?;
    k.machine
        .phys
        // ow-lint: allow(validate-before-adopt) -- opaque glyph buffer copied into the new terminal's own frame; the source descriptor came through the validated terminal reader
        .write(new_desc.screen_pfn * PAGE_SIZE as u64, &screen)
        .map_err(|e| corrupt("screen write", KernelError::Mem(e)))?;
    new_desc.cursor = old.cursor;
    new_desc.settings = old.settings;
    new_desc
        .write(&mut k.machine.phys, new_desc_addr)
        .map_err(ReadError::Layout)?;
    Ok(new_id)
}

/// Recreates a shared-memory segment with the dead kernel's contents.
fn restore_shm(k: &mut Kernel, pid: u64, seg: &ow_layout::ShmDesc) -> Result<(), ReadError> {
    let new_frames = k
        .shm_attach(pid, seg.key, seg.npages as u64, seg.attach_vaddr)
        .map_err(|e| corrupt("shm attach", e))?;
    for (old_pfn, new_pfn) in seg.pages.iter().zip(new_frames.iter()) {
        if *old_pfn != *new_pfn {
            k.copy_frame_charged(*old_pfn, *new_pfn)
                .map_err(|e| corrupt("shm copy", KernelError::Mem(e)))?;
        } else {
            let cost = k.machine.cost.page_copy;
            k.machine.clock.charge(cost);
        }
    }
    Ok(())
}

/// §7 extension: rebuilds a process's sockets from its descriptor chain.
///
/// For UDP it is safe to discard payload and restore only the connection
/// parameters; for TCP the sequence state and all unacknowledged outbound
/// payload must also be restored so the resurrection is transparent to the
/// remote host (§3.3). The re-buffered payload is queued for retransmission.
fn resurrect_sockets(
    k: &mut Kernel,
    old_desc: &ProcDesc,
    new_pid: u64,
    stats: &mut ReadStats,
) -> Result<(), ReadError> {
    let socks = reader::read_sock_chain(&k.machine.phys, old_desc, stats)?;
    // Rebuild in original order (chain prepends).
    for old in socks.iter().rev() {
        if old.state != 1 {
            continue;
        }
        // Read the unacknowledged payload out of the dead kernel's buffer.
        let mut payload = vec![0u8; old.outbuf_len as usize];
        if old.proto == sockproto::TCP && old.outbuf_len > 0 {
            k.machine
                .phys
                // ow-lint: allow(untrusted-read) -- bulk unacked-payload copy; the descriptor came from the validated socket-chain reader and any byte pattern is legal payload
                .read(old.outbuf_pfn * PAGE_SIZE as u64, &mut payload)
                .map_err(|e| corrupt("sock payload", KernelError::Mem(e)))?;
            stats.add(ReadKind::SockPayload, old.outbuf_len as u64);
        }
        // New descriptor + buffer in the crash kernel.
        let desc_addr = k
            .kheap
            .alloc(SockDesc::SIZE)
            .ok_or_else(|| corrupt("sock desc", KernelError::NoMemory))?;
        let outbuf_pfn = k
            .alloc_frame(FrameOwner::Kernel)
            .map_err(|e| corrupt("sock buf", e))?;
        k.machine
            .phys
            // ow-lint: allow(validate-before-adopt) -- zeroing a freshly allocated crash-kernel frame; no dead-kernel bytes involved
            .zero_frame(outbuf_pfn)
            .map_err(|e| corrupt("sock buf", KernelError::Mem(e)))?;
        let (restored_len, seq) = if old.proto == sockproto::TCP {
            k.machine
                .phys
                // ow-lint: allow(validate-before-adopt) -- opaque unacked TCP payload copied into a freshly allocated crash-kernel frame; the descriptor came through the validated socket-chain reader
                .write(outbuf_pfn * PAGE_SIZE as u64, &payload)
                .map_err(|e| corrupt("sock buf", KernelError::Mem(e)))?;
            (old.outbuf_len, old.seq)
        } else {
            // UDP: no delivery guarantee — discard payload (§3.3).
            (0, old.seq)
        };
        let head = k
            .read_desc(new_pid)
            .map_err(|e| corrupt("sock head", e))?
            .sock_head;
        SockDesc {
            proto: old.proto,
            state: 1,
            sid: old.sid,
            local_port: old.local_port,
            seq,
            outbuf_pfn,
            outbuf_len: restored_len,
            next: head,
        }
        .write(&mut k.machine.phys, desc_addr)
        .map_err(ReadError::Layout)?;
        {
            let proc_addr = k
                .proc(new_pid)
                .map_err(|e| corrupt("sock link", e))?
                .desc_addr;
            k.machine
                .phys
                // ow-lint: allow(validate-before-adopt) -- links the crash-kernel-allocated descriptor into the resealed proc record; desc_addr is a fresh kheap address, not a dead value
                .write_u64(proc_addr + ow_layout::proc_off::SOCK_HEAD, desc_addr)
                .map_err(|e| corrupt("sock link", KernelError::Mem(e)))?;
            k.reseal_desc(new_pid)
                .map_err(|e| corrupt("sock link", e))?;
        }
        // Host endpoint: same sid; the unacknowledged TCP payload goes out
        // for retransmission, invisible to the application.
        let mut handle = SockHandle {
            sid: old.sid,
            desc_addr,
            inbox: Default::default(),
            outbox: Default::default(),
            open: true,
        };
        if old.proto == sockproto::TCP && !payload.is_empty() {
            handle.outbox.push_back(payload);
        }
        k.proc_mut(new_pid)
            .map_err(|e| corrupt("sock handle", e))?
            .sockets
            .push(handle);
    }
    // The process still *uses* sockets; keep the usage bit in its new
    // descriptor so a later crash without the extension reports it.
    if old_desc.res_in_use & resmask::SOCKETS != 0 {
        k.update_desc(new_pid, |d| d.res_in_use |= resmask::SOCKETS)
            .map_err(|e| corrupt("sock mask", e))?;
    }
    Ok(())
}
