//! Simulated physical memory.
//!
//! A flat, byte-addressable array of RAM divided into 4 KiB frames. All
//! kernel structures that the crash kernel must later parse are serialized
//! into this memory, so corrupting a byte here corrupts the "real" system
//! state, exactly as a wild write on hardware would.

use std::fmt;

/// Size of one physical page frame in bytes.
pub const PAGE_SIZE: usize = 4096;

/// A physical memory address (byte offset into RAM).
pub type PhysAddr = u64;

/// Errors raised by physical memory accesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// Access extended past the end of installed physical memory.
    OutOfRange {
        /// Start address of the offending access.
        addr: PhysAddr,
        /// Length of the offending access in bytes.
        len: usize,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfRange { addr, len } => {
                write!(f, "physical access out of range: {addr:#x}+{len}")
            }
        }
    }
}

impl std::error::Error for MemError {}

/// Simulated physical RAM.
///
/// All multi-byte accessors use little-endian byte order, matching the x86
/// machines the paper evaluates on.
pub struct PhysMem {
    bytes: Vec<u8>,
}

impl PhysMem {
    /// Creates `frames` frames of zeroed physical memory.
    ///
    /// # Panics
    ///
    /// Panics if `frames == 0`.
    pub fn new(frames: usize) -> Self {
        // ow-lint: allow(recovery-panic) -- documented # Panics contract: machine-geometry precondition at construction
        assert!(frames > 0, "machine needs at least one frame of RAM");
        PhysMem {
            bytes: vec![0u8; frames * PAGE_SIZE],
        }
    }

    /// Total installed memory in bytes.
    pub fn size(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// Number of installed physical frames.
    pub fn frames(&self) -> u64 {
        (self.bytes.len() / PAGE_SIZE) as u64
    }

    fn check(&self, addr: PhysAddr, len: usize) -> Result<usize, MemError> {
        let start = addr as usize;
        let end = start
            .checked_add(len)
            .ok_or(MemError::OutOfRange { addr, len })?;
        if end > self.bytes.len() {
            return Err(MemError::OutOfRange { addr, len });
        }
        Ok(start)
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    pub fn read(&self, addr: PhysAddr, buf: &mut [u8]) -> Result<(), MemError> {
        let start = self.check(addr, buf.len())?;
        buf.copy_from_slice(&self.bytes[start..start + buf.len()]);
        Ok(())
    }

    /// Writes `buf` starting at `addr`.
    pub fn write(&mut self, addr: PhysAddr, buf: &[u8]) -> Result<(), MemError> {
        let start = self.check(addr, buf.len())?;
        self.bytes[start..start + buf.len()].copy_from_slice(buf);
        Ok(())
    }

    /// Returns a read-only view of `len` bytes at `addr`.
    pub fn slice(&self, addr: PhysAddr, len: usize) -> Result<&[u8], MemError> {
        let start = self.check(addr, len)?;
        Ok(&self.bytes[start..start + len])
    }

    /// Returns a mutable view of `len` bytes at `addr`.
    pub fn slice_mut(&mut self, addr: PhysAddr, len: usize) -> Result<&mut [u8], MemError> {
        let start = self.check(addr, len)?;
        Ok(&mut self.bytes[start..start + len])
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: PhysAddr) -> Result<u8, MemError> {
        let start = self.check(addr, 1)?;
        Ok(self.bytes[start])
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: PhysAddr, v: u8) -> Result<(), MemError> {
        let start = self.check(addr, 1)?;
        self.bytes[start] = v;
        Ok(())
    }

    /// Reads a little-endian `u16`.
    pub fn read_u16(&self, addr: PhysAddr) -> Result<u16, MemError> {
        let mut b = [0u8; 2];
        self.read(addr, &mut b)?;
        Ok(u16::from_le_bytes(b))
    }

    /// Writes a little-endian `u16`.
    pub fn write_u16(&mut self, addr: PhysAddr, v: u16) -> Result<(), MemError> {
        let start = self.check(addr, 2)?;
        self.bytes[start..start + 2].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&self, addr: PhysAddr) -> Result<u32, MemError> {
        let mut b = [0u8; 4];
        self.read(addr, &mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: PhysAddr, v: u32) -> Result<(), MemError> {
        let start = self.check(addr, 4)?;
        self.bytes[start..start + 4].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&self, addr: PhysAddr) -> Result<u64, MemError> {
        let mut b = [0u8; 8];
        self.read(addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: PhysAddr, v: u64) -> Result<(), MemError> {
        let start = self.check(addr, 8)?;
        self.bytes[start..start + 8].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Zeroes an entire frame.
    pub fn zero_frame(&mut self, pfn: u64) -> Result<(), MemError> {
        let addr = pfn * PAGE_SIZE as u64;
        let start = self.check(addr, PAGE_SIZE)?;
        self.bytes[start..start + PAGE_SIZE].fill(0);
        Ok(())
    }

    /// Copies a whole frame from `src_pfn` to `dst_pfn`.
    pub fn copy_frame(&mut self, src_pfn: u64, dst_pfn: u64) -> Result<(), MemError> {
        let src = self.check(src_pfn * PAGE_SIZE as u64, PAGE_SIZE)?;
        let dst = self.check(dst_pfn * PAGE_SIZE as u64, PAGE_SIZE)?;
        self.bytes.copy_within(src..src + PAGE_SIZE, dst);
        Ok(())
    }

    /// Flips bits at `addr` with the given XOR mask — the fault injector's
    /// "wild write" primitive. Out-of-range corruption is silently dropped
    /// (a wild write beyond installed RAM faults on real hardware too).
    pub fn corrupt_u64(&mut self, addr: PhysAddr, xor_mask: u64) {
        if let Ok(v) = self.read_u64(addr) {
            let _ = self.write_u64(addr, v ^ xor_mask);
        }
    }
}

impl fmt::Debug for PhysMem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PhysMem")
            .field("frames", &self.frames())
            .field("bytes", &self.size())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_all_widths() {
        let mut m = PhysMem::new(2);
        m.write_u8(0, 0xab).unwrap();
        m.write_u16(8, 0xbeef).unwrap();
        m.write_u32(16, 0xdead_beef).unwrap();
        m.write_u64(24, 0x0123_4567_89ab_cdef).unwrap();
        assert_eq!(m.read_u8(0).unwrap(), 0xab);
        assert_eq!(m.read_u16(8).unwrap(), 0xbeef);
        assert_eq!(m.read_u32(16).unwrap(), 0xdead_beef);
        assert_eq!(m.read_u64(24).unwrap(), 0x0123_4567_89ab_cdef);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = PhysMem::new(1);
        m.write_u32(0, 0x0102_0304).unwrap();
        assert_eq!(m.read_u8(0).unwrap(), 0x04);
        assert_eq!(m.read_u8(3).unwrap(), 0x01);
    }

    #[test]
    fn rejects_out_of_range() {
        let m = PhysMem::new(1);
        assert!(matches!(
            m.read_u64(PAGE_SIZE as u64 - 4),
            Err(MemError::OutOfRange { .. })
        ));
        assert!(m.read_u8(PAGE_SIZE as u64 - 1).is_ok());
    }

    #[test]
    fn rejects_wraparound() {
        let m = PhysMem::new(1);
        assert!(m.slice(u64::MAX, 16).is_err());
    }

    #[test]
    fn frame_copy_and_zero() {
        let mut m = PhysMem::new(3);
        m.write_u64(PAGE_SIZE as u64, 42).unwrap();
        m.copy_frame(1, 2).unwrap();
        assert_eq!(m.read_u64(2 * PAGE_SIZE as u64).unwrap(), 42);
        m.zero_frame(2).unwrap();
        assert_eq!(m.read_u64(2 * PAGE_SIZE as u64).unwrap(), 0);
    }

    #[test]
    fn corruption_flips_bits() {
        let mut m = PhysMem::new(1);
        m.write_u64(0, 0xff).unwrap();
        m.corrupt_u64(0, 0x0f);
        assert_eq!(m.read_u64(0).unwrap(), 0xf0);
        // Out-of-range corruption is a no-op, not a panic.
        m.corrupt_u64(u64::MAX - 3, 0xff);
    }
}
