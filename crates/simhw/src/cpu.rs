//! Simulated CPUs, register contexts and non-maskable interrupts.
//!
//! On a kernel panic the paper's main kernel sends NMIs to all other
//! processors; each saves the hardware context of the thread it was running
//! onto its kernel stack and halts, so the crash kernel can later resume
//! those threads like an ordinary context switch (§3.2). We model the same
//! protocol: each CPU owns a *context save area* at a fixed physical address
//! (part of the handoff region). Corrupting that area is one of the ways a
//! fault can prevent the crash kernel from booting or resuming threads.

use crate::phys::{MemError, PhysAddr, PhysMem};

/// CPU identifier.
pub type CpuId = u32;

/// Number of general-purpose registers in the simulated ISA.
pub const NUM_REGS: usize = 8;

/// Magic value marking a valid saved context (`"OWCTX10\0"` little-endian).
pub const CTX_MAGIC: u64 = 0x0030_3158_5443_574f;

/// Size in bytes of one per-CPU context save area.
pub const SAVE_AREA_BYTES: u64 =
    8 /* magic */ + 8 /* pid */ + 8 /* pc */ + 8 /* sp */ + 8 * NUM_REGS as u64;

/// A thread's hardware register context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Context {
    /// Program counter (for our resumable programs: the resume step index).
    pub pc: u64,
    /// Stack pointer.
    pub sp: u64,
    /// General-purpose registers.
    pub regs: [u64; NUM_REGS],
}

impl Context {
    /// Serializes the context (with `pid`) into physical memory at `addr`.
    pub fn save(&self, phys: &mut PhysMem, addr: PhysAddr, pid: u64) -> Result<(), MemError> {
        phys.write_u64(addr, CTX_MAGIC)?;
        phys.write_u64(addr + 8, pid)?;
        phys.write_u64(addr + 16, self.pc)?;
        phys.write_u64(addr + 24, self.sp)?;
        for (i, r) in self.regs.iter().enumerate() {
            phys.write_u64(addr + 32 + 8 * i as u64, *r)?;
        }
        Ok(())
    }

    /// Reads a saved context back, validating the magic. Returns
    /// `Ok(None)` if no valid context is present (magic mismatch — either
    /// never saved or corrupted by a fault).
    pub fn load(phys: &PhysMem, addr: PhysAddr) -> Result<Option<(u64, Context)>, MemError> {
        if phys.read_u64(addr)? != CTX_MAGIC {
            return Ok(None);
        }
        let pid = phys.read_u64(addr + 8)?;
        let mut ctx = Context {
            pc: phys.read_u64(addr + 16)?,
            sp: phys.read_u64(addr + 24)?,
            regs: [0; NUM_REGS],
        };
        for i in 0..NUM_REGS {
            ctx.regs[i] = phys.read_u64(addr + 32 + 8 * i as u64)?;
        }
        Ok(Some((pid, ctx)))
    }
}

/// Run state of a simulated CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuState {
    /// Executing normally.
    Running,
    /// Halted after saving its context (post-NMI).
    Halted,
}

/// A simulated processor.
#[derive(Debug, Clone)]
pub struct Cpu {
    /// This CPU's id.
    pub id: CpuId,
    /// The context of the thread currently executing on this CPU.
    pub ctx: Context,
    /// PID of the thread currently executing (0 = idle/kernel).
    pub current_pid: u64,
    /// Whether the CPU is currently executing kernel code.
    pub in_kernel: bool,
    /// Run state.
    pub state: CpuState,
}

impl Cpu {
    /// A fresh running CPU.
    pub fn new(id: CpuId) -> Self {
        Cpu {
            id,
            ctx: Context::default(),
            current_pid: 0,
            in_kernel: false,
            state: CpuState::Running,
        }
    }

    /// Delivers a non-maskable interrupt: saves the current thread context
    /// into this CPU's save area and halts. Idempotent once halted.
    pub fn nmi_halt(
        &mut self,
        phys: &mut PhysMem,
        save_area_base: PhysAddr,
    ) -> Result<(), MemError> {
        if self.state == CpuState::Halted {
            return Ok(());
        }
        let addr = save_area_base + self.id as u64 * SAVE_AREA_BYTES;
        self.ctx.save(phys, addr, self.current_pid)?;
        self.state = CpuState::Halted;
        Ok(())
    }

    /// Restarts the CPU (used when the crash kernel takes over).
    pub fn reset(&mut self) {
        self.ctx = Context::default();
        self.current_pid = 0;
        self.in_kernel = false;
        self.state = CpuState::Running;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_save_load_round_trip() {
        let mut phys = PhysMem::new(1);
        let mut ctx = Context::default();
        ctx.pc = 0x1234;
        ctx.sp = 0x8000;
        ctx.regs[3] = 99;
        ctx.save(&mut phys, 64, 7).unwrap();
        let (pid, got) = Context::load(&phys, 64).unwrap().unwrap();
        assert_eq!(pid, 7);
        assert_eq!(got, ctx);
    }

    #[test]
    fn corrupted_magic_yields_none() {
        let mut phys = PhysMem::new(1);
        Context::default().save(&mut phys, 0, 1).unwrap();
        phys.corrupt_u64(0, 0xff);
        assert!(Context::load(&phys, 0).unwrap().is_none());
    }

    #[test]
    fn nmi_saves_and_halts_once() {
        let mut phys = PhysMem::new(1);
        let mut cpu = Cpu::new(1);
        cpu.current_pid = 42;
        cpu.ctx.pc = 0xabc;
        cpu.nmi_halt(&mut phys, 0).unwrap();
        assert_eq!(cpu.state, CpuState::Halted);
        let addr = SAVE_AREA_BYTES;
        let (pid, ctx) = Context::load(&phys, addr).unwrap().unwrap();
        assert_eq!(pid, 42);
        assert_eq!(ctx.pc, 0xabc);
        // A second NMI must not clobber anything.
        cpu.ctx.pc = 0xdef;
        cpu.nmi_halt(&mut phys, 0).unwrap();
        let (_, ctx2) = Context::load(&phys, addr).unwrap().unwrap();
        assert_eq!(ctx2.pc, 0xabc);
    }
}
