//! A vendored deterministic PRNG (SplitMix64 seeding + xoshiro256\*\*).
//!
//! The fault injector and the workloads need a small, fast, seedable
//! generator; depending on the `rand` crate would make the build reach for
//! the network. xoshiro256\*\* is the generator `rand`'s `SmallRng` used on
//! 64-bit targets, so campaign behavior stays in the same statistical
//! family. Determinism matters more than quality here: experiment `i` must
//! replay bit-identically from `seed + i`.

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step: the canonical way to expand one `u64` seed into a full
/// xoshiro state without correlated lanes.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    mix64(*state)
}

/// The SplitMix64 finalizer: a bijective avalanche mix of one `u64`.
///
/// Every output bit depends on every input bit, and the function is
/// invertible, so distinct inputs always produce distinct outputs. This is
/// the primitive behind [`stream_seed`].
pub fn mix64(x: u64) -> u64 {
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives an independent substream seed from a base seed and a stream tag.
///
/// Campaigns need several *decorrelated* random streams per experiment
/// (workload choices vs. injected faults) and collision-free per-experiment
/// seeds (`tag` = experiment index). Feeding the raw base seed to both
/// consumers — or walking seeds with `+1` — correlates the streams and lets
/// campaigns with nearby base seeds silently share experiments. Instead,
/// `base + tag·φ` is avalanched through [`mix64`]: for a fixed `base` the
/// map is a bijection of `tag` (distinct experiments never collide), and
/// for a fixed `tag` it is a bijection of `base`, while nearby `(base,
/// tag)` pairs land in unrelated parts of the seed space.
pub fn stream_seed(base: u64, tag: u64) -> u64 {
    mix64(base.wrapping_add(tag.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
}

/// Deterministic xoshiro256\*\* generator.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Seeds the generator from a single `u64` via SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform draw from a range, like `rand::Rng::gen_range`.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Uniform `u64` in `[0, bound)` via Lemire's multiply-shift with a
    /// rejection pass so the distribution is exactly uniform.
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "empty range");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Range types [`SimRng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value's type.
    type Output;
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut SimRng) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut SimRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.bounded_u64(span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut SimRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.bounded_u64(span + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_replay() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SimRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(1u32..=4);
            assert!((1..=4).contains(&y));
            let z = rng.gen_range(0usize..3);
            assert!(z < 3);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SimRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((0.28..=0.32).contains(&frac), "frac {frac}");
    }

    #[test]
    fn mix64_is_injective_on_a_window() {
        let mut seen = std::collections::HashSet::new();
        for x in 0..10_000u64 {
            assert!(seen.insert(mix64(x)), "collision at {x}");
        }
    }

    #[test]
    fn stream_seed_is_collision_free_per_tag_and_per_base() {
        // Fixed base, varying tag (per-experiment seeds): bijective.
        let mut seen = std::collections::HashSet::new();
        for tag in 0..5_000u64 {
            assert!(seen.insert(stream_seed(0x07e5_2010, tag)));
        }
        // Fixed tag, varying base (nearby campaign seeds): bijective.
        let mut seen = std::collections::HashSet::new();
        for base in 0..5_000u64 {
            assert!(seen.insert(stream_seed(base, 7)));
        }
    }

    #[test]
    fn stream_seeds_decorrelate_the_generators() {
        // Streams drawn from the same base under different tags must not
        // reproduce each other's outputs.
        for base in 0..64u64 {
            let mut a = SimRng::seed_from_u64(stream_seed(base, 1));
            let mut b = SimRng::seed_from_u64(stream_seed(base, 2));
            assert_ne!(
                (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
                (0..8).map(|_| b.next_u64()).collect::<Vec<_>>(),
                "base {base}"
            );
        }
    }

    #[test]
    fn full_range_inclusive_works() {
        let mut rng = SimRng::seed_from_u64(3);
        // Must not panic or loop forever.
        let _ = rng.gen_range(0u64..=u64::MAX);
    }
}
