//! MMU with a TLB model.
//!
//! The paper's memory-protected mode switches page-table sets on every
//! system call; the dominant cost is the implied TLB flush (§6, Table 3).
//! To reproduce that effect the MMU keeps a small software TLB tagged by
//! page-table root and charges a walk penalty on every miss.

use crate::{
    clock::Clock,
    cost::CostModel,
    paging::{AddressSpace, PageFault, Pte, PteFlags},
    phys::{PhysAddr, PhysMem, PAGE_SIZE},
    Pfn, VirtAddr,
};

/// Kind of memory access, for permission checks and dirty tracking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Read access.
    Read,
    /// Write access (requires [`PteFlags::WRITABLE`], sets dirty).
    Write,
}

/// TLB / translation statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MmuStats {
    /// Total translations requested.
    pub accesses: u64,
    /// Translations served from the TLB.
    pub tlb_hits: u64,
    /// Translations that required a page-table walk.
    pub tlb_misses: u64,
    /// Number of full TLB flushes.
    pub flushes: u64,
}

#[derive(Debug, Clone, Copy)]
struct TlbEntry {
    root: Pfn,
    vpn: u64,
    pte: Pte,
}

/// The memory-management unit: translation plus a direct-mapped TLB.
#[derive(Debug)]
pub struct Mmu {
    tlb: Vec<Option<TlbEntry>>,
    stats: MmuStats,
}

impl Mmu {
    /// Creates an MMU with a direct-mapped TLB of `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Self {
        // ow-lint: allow(recovery-panic) -- machine-geometry precondition at construction
        assert!(entries.is_power_of_two(), "TLB size must be a power of two");
        Mmu {
            tlb: vec![None; entries],
            stats: MmuStats::default(),
        }
    }

    /// Translation statistics so far.
    pub fn stats(&self) -> MmuStats {
        self.stats
    }

    /// Resets statistics (keeps TLB contents).
    pub fn reset_stats(&mut self) {
        self.stats = MmuStats::default();
    }

    /// Flushes the entire TLB, charging the flush cost. Called on every
    /// page-table switch (address-space change or protected-mode toggle).
    pub fn flush(&mut self, clock: &mut Clock, cost: &CostModel) {
        self.tlb.iter_mut().for_each(|e| *e = None);
        self.stats.flushes += 1;
        clock.charge(cost.tlb_flush);
    }

    /// Invalidates a single page translation (e.g. after unmap/swap-out).
    pub fn invalidate(&mut self, root: Pfn, vaddr: VirtAddr) {
        let vpn = vaddr / PAGE_SIZE as u64;
        let slot = self.slot(root, vpn);
        if let Some(e) = self.tlb[slot] {
            if e.root == root && e.vpn == vpn {
                self.tlb[slot] = None;
            }
        }
    }

    fn slot(&self, root: Pfn, vpn: u64) -> usize {
        ((vpn ^ (root << 3)) as usize) & (self.tlb.len() - 1)
    }

    /// Translates `vaddr` in the address space rooted at `asp`, charging
    /// access and (on TLB miss) walk cycles, enforcing write permission,
    /// and maintaining accessed/dirty bits in the in-memory PTE.
    pub fn access(
        &mut self,
        phys: &mut PhysMem,
        clock: &mut Clock,
        cost: &CostModel,
        asp: AddressSpace,
        vaddr: VirtAddr,
        kind: AccessKind,
    ) -> Result<PhysAddr, PageFault> {
        self.stats.accesses += 1;
        clock.charge(cost.mem_access);
        let vpn = vaddr / PAGE_SIZE as u64;
        let slot = self.slot(asp.root(), vpn);

        let pte = match self.tlb[slot] {
            Some(e) if e.root == asp.root() && e.vpn == vpn => {
                self.stats.tlb_hits += 1;
                e.pte
            }
            _ => {
                self.stats.tlb_misses += 1;
                clock.charge(cost.tlb_miss_walk);
                let pte = asp.walk(phys, vaddr)?;
                self.tlb[slot] = Some(TlbEntry {
                    root: asp.root(),
                    vpn,
                    pte,
                });
                pte
            }
        };

        if kind == AccessKind::Write && !pte.flags().contains(PteFlags::WRITABLE) {
            return Err(PageFault::ReadOnly(vaddr));
        }

        // Maintain accessed/dirty bits in the authoritative in-memory PTE so
        // the page-out path and the crash kernel see them.
        let want = if kind == AccessKind::Write {
            PteFlags::ACCESSED | PteFlags::DIRTY
        } else {
            PteFlags::ACCESSED
        };
        if !pte.flags().contains(want) {
            let updated = pte.with_flags(want);
            // The L2 table is guaranteed present because `walk` succeeded.
            let _ = asp.set_pte(phys, &mut crate::FrameAllocator::new(0, 0), vaddr, updated);
            if let Some(e) = &mut self.tlb[slot] {
                e.pte = updated;
            }
        }

        Ok(pte.pfn() * PAGE_SIZE as u64 + (vaddr & (PAGE_SIZE as u64 - 1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FrameAllocator;

    fn setup() -> (PhysMem, FrameAllocator, Clock, CostModel, Mmu, AddressSpace) {
        let mut phys = PhysMem::new(64);
        let mut fa = FrameAllocator::new(0, 64);
        let clock = Clock::new();
        let cost = CostModel::default();
        let mmu = Mmu::new(16);
        let asp = AddressSpace::new(&mut phys, &mut fa).unwrap();
        (phys, fa, clock, cost, mmu, asp)
    }

    #[test]
    fn hit_after_miss() {
        let (mut phys, mut fa, mut clock, cost, mut mmu, asp) = setup();
        let frame = fa.alloc().unwrap();
        asp.map(
            &mut phys,
            &mut fa,
            0x5000,
            frame,
            PteFlags::WRITABLE | PteFlags::USER,
        )
        .unwrap();
        let pa1 = mmu
            .access(&mut phys, &mut clock, &cost, asp, 0x5004, AccessKind::Read)
            .unwrap();
        assert_eq!(pa1, frame * PAGE_SIZE as u64 + 4);
        assert_eq!(mmu.stats().tlb_misses, 1);
        mmu.access(&mut phys, &mut clock, &cost, asp, 0x5008, AccessKind::Read)
            .unwrap();
        assert_eq!(mmu.stats().tlb_hits, 1);
    }

    #[test]
    fn flush_forces_rewalk_and_charges() {
        let (mut phys, mut fa, mut clock, cost, mut mmu, asp) = setup();
        let frame = fa.alloc().unwrap();
        asp.map(
            &mut phys,
            &mut fa,
            0,
            frame,
            PteFlags::WRITABLE | PteFlags::USER,
        )
        .unwrap();
        mmu.access(&mut phys, &mut clock, &cost, asp, 0, AccessKind::Read)
            .unwrap();
        let before = clock.now();
        mmu.flush(&mut clock, &cost);
        assert_eq!(clock.since(before), cost.tlb_flush);
        mmu.access(&mut phys, &mut clock, &cost, asp, 0, AccessKind::Read)
            .unwrap();
        assert_eq!(mmu.stats().tlb_misses, 2);
        assert_eq!(mmu.stats().flushes, 1);
    }

    #[test]
    fn write_to_readonly_faults() {
        let (mut phys, mut fa, mut clock, cost, mut mmu, asp) = setup();
        let frame = fa.alloc().unwrap();
        asp.map(&mut phys, &mut fa, 0x1000, frame, PteFlags::USER)
            .unwrap();
        assert_eq!(
            mmu.access(&mut phys, &mut clock, &cost, asp, 0x1000, AccessKind::Write),
            Err(PageFault::ReadOnly(0x1000))
        );
    }

    #[test]
    fn write_sets_dirty_bit_in_memory() {
        let (mut phys, mut fa, mut clock, cost, mut mmu, asp) = setup();
        let frame = fa.alloc().unwrap();
        asp.map(
            &mut phys,
            &mut fa,
            0x2000,
            frame,
            PteFlags::WRITABLE | PteFlags::USER,
        )
        .unwrap();
        mmu.access(&mut phys, &mut clock, &cost, asp, 0x2000, AccessKind::Write)
            .unwrap();
        let pte = asp.pte(&phys, 0x2000).unwrap().unwrap();
        assert!(pte.flags().contains(PteFlags::DIRTY));
        assert!(pte.flags().contains(PteFlags::ACCESSED));
    }

    #[test]
    fn different_roots_do_not_alias() {
        let (mut phys, mut fa, mut clock, cost, mut mmu, asp1) = setup();
        let asp2 = AddressSpace::new(&mut phys, &mut fa).unwrap();
        let f1 = fa.alloc().unwrap();
        let f2 = fa.alloc().unwrap();
        asp1.map(
            &mut phys,
            &mut fa,
            0x3000,
            f1,
            PteFlags::WRITABLE | PteFlags::USER,
        )
        .unwrap();
        asp2.map(
            &mut phys,
            &mut fa,
            0x3000,
            f2,
            PteFlags::WRITABLE | PteFlags::USER,
        )
        .unwrap();
        let p1 = mmu
            .access(&mut phys, &mut clock, &cost, asp1, 0x3000, AccessKind::Read)
            .unwrap();
        let p2 = mmu
            .access(&mut phys, &mut clock, &cost, asp2, 0x3000, AccessKind::Read)
            .unwrap();
        assert_ne!(p1, p2);
    }

    #[test]
    fn invalidate_single_entry() {
        let (mut phys, mut fa, mut clock, cost, mut mmu, asp) = setup();
        let frame = fa.alloc().unwrap();
        asp.map(
            &mut phys,
            &mut fa,
            0x4000,
            frame,
            PteFlags::WRITABLE | PteFlags::USER,
        )
        .unwrap();
        mmu.access(&mut phys, &mut clock, &cost, asp, 0x4000, AccessKind::Read)
            .unwrap();
        mmu.invalidate(asp.root(), 0x4000);
        mmu.access(&mut phys, &mut clock, &cost, asp, 0x4000, AccessKind::Read)
            .unwrap();
        assert_eq!(mmu.stats().tlb_misses, 2);
    }
}
