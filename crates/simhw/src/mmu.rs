//! MMU with an address-space-tagged (ASID) TLB model.
//!
//! The paper's memory-protected mode switches page-table sets on every
//! system call; on untagged hardware the dominant cost is the implied TLB
//! flush (§6, Table 3). Tagged hardware (ASID/PCID) turns that switch into
//! a tag-register write: entries stay resident across the switch and the
//! flush leaves the syscall hot path. The MMU models both. Every TLB entry
//! carries the ASID of the address space that installed it, a current-ASID
//! register says which page-table set is live, and a small allocator hands
//! out tags per page-table root with generation-based recycling: when the
//! tag space is exhausted the allocator rolls over to a new generation and
//! performs one full (charged) flush, so a recycled tag can never alias a
//! stale entry from its previous owner.

use crate::{
    clock::Clock,
    cost::CostModel,
    paging::{AddressSpace, PageFault, Pte, PteFlags},
    phys::{PhysAddr, PhysMem, PAGE_SIZE},
    Pfn, VirtAddr,
};

/// An address-space tag (the PCID analog).
pub type Asid = u16;

/// The tag reserved for the kernel-only page-table set. Never handed out
/// by the allocator; user translations are always tagged with a non-zero
/// ASID, so a tag switch to [`KERNEL_ASID`] hides user space without
/// evicting its translations.
pub const KERNEL_ASID: Asid = 0;

/// Default number of tags (including [`KERNEL_ASID`]) before the allocator
/// recycles a generation. Small on purpose: real PCID spaces are 12-bit,
/// but a small space keeps the rollover path exercised by tests.
pub const DEFAULT_ASID_CAPACITY: Asid = 16;

/// Kind of memory access, for permission checks and dirty tracking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Read access.
    Read,
    /// Write access (requires [`PteFlags::WRITABLE`], sets dirty).
    Write,
}

/// TLB / translation statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MmuStats {
    /// Total translations requested.
    pub accesses: u64,
    /// Translations served from the TLB.
    pub tlb_hits: u64,
    /// Translations that required a page-table walk.
    pub tlb_misses: u64,
    /// Number of full TLB flushes.
    pub flushes: u64,
    /// Number of single-page invalidations (ranged shootdowns count one
    /// per page per tag sweep).
    pub invalidations: u64,
    /// Number of current-ASID register writes.
    pub asid_switches: u64,
}

#[derive(Debug, Clone, Copy)]
struct TlbEntry {
    asid: Asid,
    vpn: u64,
    pte: Pte,
}

/// The memory-management unit: translation plus a direct-mapped tagged TLB.
#[derive(Debug)]
pub struct Mmu {
    tlb: Vec<Option<TlbEntry>>,
    stats: MmuStats,
    /// The live tag register (which page-table set the hardware thread is
    /// running under). Translations through [`Mmu::access`] tag entries by
    /// the accessed space's own ASID; the register tells callers (e.g. the
    /// kernel's copy-to-user path) whether the kernel-only set is live.
    current_asid: Asid,
    /// Deterministic root→tag map for the live generation (insertion
    /// order; the handful of simulated address spaces keeps it tiny).
    asids: Vec<(Pfn, Asid)>,
    next_asid: Asid,
    asid_capacity: Asid,
    asid_generation: u64,
}

impl Mmu {
    /// Creates an MMU with a direct-mapped TLB of `entries` slots and the
    /// default ASID capacity.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Self {
        Self::with_asid_capacity(entries, DEFAULT_ASID_CAPACITY)
    }

    /// Creates an MMU with an explicit ASID capacity (tags 1..capacity are
    /// allocatable; tag 0 is [`KERNEL_ASID`]). Used by tests to pin the
    /// recycling rollover.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `asid_capacity < 2`.
    pub fn with_asid_capacity(entries: usize, asid_capacity: Asid) -> Self {
        // ow-lint: allow(recovery-panic) -- machine-geometry precondition at construction
        assert!(entries.is_power_of_two(), "TLB size must be a power of two");
        // ow-lint: allow(recovery-panic) -- machine-geometry precondition at construction
        assert!(asid_capacity >= 2, "need at least one non-kernel ASID");
        Mmu {
            tlb: vec![None; entries],
            stats: MmuStats::default(),
            current_asid: KERNEL_ASID,
            asids: Vec::new(),
            next_asid: KERNEL_ASID + 1,
            asid_capacity,
            asid_generation: 0,
        }
    }

    /// Translation statistics so far.
    pub fn stats(&self) -> MmuStats {
        self.stats
    }

    /// Resets statistics (keeps TLB contents and tag assignments).
    pub fn reset_stats(&mut self) {
        self.stats = MmuStats::default();
    }

    /// The live tag register.
    pub fn current_asid(&self) -> Asid {
        self.current_asid
    }

    /// The allocator generation (bumped on every rollover).
    pub fn asid_generation(&self) -> u64 {
        self.asid_generation
    }

    /// The tag currently assigned to `root`, if any.
    pub fn lookup_asid(&self, root: Pfn) -> Option<Asid> {
        self.asids.iter().find(|(r, _)| *r == root).map(|(_, a)| *a)
    }

    /// Resolves (allocating if needed) the tag for the address space rooted
    /// at `root`. Exhausting the tag space rolls the allocator over to a
    /// new generation and performs one full, charged flush — the invariant
    /// that makes recycling safe is "no entry of an older generation ever
    /// survives into the generation that reuses its tag".
    pub fn asid_of(&mut self, clock: &mut Clock, cost: &CostModel, root: Pfn) -> Asid {
        if let Some(asid) = self.lookup_asid(root) {
            return asid;
        }
        if self.next_asid >= self.asid_capacity {
            self.asid_generation += 1;
            self.asids.clear();
            self.next_asid = KERNEL_ASID + 1;
            self.flush(clock, cost);
        }
        let asid = self.next_asid;
        self.next_asid += 1;
        self.asids.push((root, asid));
        asid
    }

    /// Retargets the tag register, charging [`CostModel::asid_switch`] —
    /// the tagged fast path that replaces the full flush on protected-mode
    /// page-table switches.
    pub fn switch_asid(&mut self, clock: &mut Clock, cost: &CostModel, asid: Asid) {
        self.current_asid = asid;
        self.stats.asid_switches += 1;
        clock.charge(cost.asid_switch);
    }

    /// Convenience: resolve the tag for `root` and switch to it.
    pub fn switch_to_space(&mut self, clock: &mut Clock, cost: &CostModel, root: Pfn) -> Asid {
        let asid = self.asid_of(clock, cost, root);
        self.switch_asid(clock, cost, asid);
        asid
    }

    /// Flushes the entire TLB (every tag), charging the flush cost. Left
    /// for genuine invalidation (allocator rollover, untagged page-table
    /// switches); the tagged protected mode keeps it off the syscall path.
    pub fn flush(&mut self, clock: &mut Clock, cost: &CostModel) {
        self.tlb.iter_mut().for_each(|e| *e = None);
        self.stats.flushes += 1;
        clock.charge(cost.tlb_flush);
    }

    /// Invalidates a single page translation (e.g. after unmap/swap-out),
    /// charging [`CostModel::tlb_invalidate`].
    pub fn invalidate(&mut self, clock: &mut Clock, cost: &CostModel, root: Pfn, vaddr: VirtAddr) {
        self.invalidate_range(clock, cost, root, vaddr, 1);
    }

    /// Invalidates every page translation overlapping `[vaddr, vaddr+len)`
    /// for the address space rooted at `root`, sweeping **both** tags the
    /// page may be cached under: the space's own ASID and [`KERNEL_ASID`]
    /// (the kernel may have touched the page through its own window while
    /// user space was unmapped). Charges one [`CostModel::tlb_invalidate`]
    /// per page. This is the rule that keeps a PTE rewrite (unmap, swap-out,
    /// lazy pull, kernel write into user space) from leaving a stale
    /// translation resident now that page-table switches no longer flush.
    pub fn invalidate_range(
        &mut self,
        clock: &mut Clock,
        cost: &CostModel,
        root: Pfn,
        vaddr: VirtAddr,
        len: u64,
    ) {
        let first = vaddr / PAGE_SIZE as u64;
        let last = vaddr.saturating_add(len.max(1) - 1) / PAGE_SIZE as u64;
        let user_asid = self.lookup_asid(root);
        for vpn in first..=last {
            self.stats.invalidations += 1;
            clock.charge(cost.tlb_invalidate);
            for asid in [user_asid, Some(KERNEL_ASID)].into_iter().flatten() {
                let slot = self.slot(asid, vpn);
                if let Some(e) = self.tlb[slot] {
                    if e.asid == asid && e.vpn == vpn {
                        self.tlb[slot] = None;
                    }
                }
            }
        }
    }

    /// Models the kernel's own working set running under [`KERNEL_ASID`]:
    /// one TLB access per page of `[base_vpn, base_vpn + pages)`. In the
    /// unprotected mode kernel translations are global pages that never
    /// leave the TLB (not simulated at all); the protected mode forfeits
    /// that — its kernel-only set is just another tagged space — so its
    /// entries compete for TLB slots with user translations. The synthetic
    /// identity PTEs installed here are never served to user accesses (the
    /// tag can't match) and are swept by [`Mmu::invalidate_range`] like any
    /// other entry.
    pub fn touch_kernel(&mut self, clock: &mut Clock, cost: &CostModel, base_vpn: u64, pages: u64) {
        for vpn in base_vpn..base_vpn + pages {
            self.stats.accesses += 1;
            clock.charge(cost.mem_access);
            let slot = self.slot(KERNEL_ASID, vpn);
            match self.tlb[slot] {
                Some(e) if e.asid == KERNEL_ASID && e.vpn == vpn => {
                    self.stats.tlb_hits += 1;
                }
                _ => {
                    self.stats.tlb_misses += 1;
                    clock.charge(cost.tlb_miss_walk);
                    self.tlb[slot] = Some(TlbEntry {
                        asid: KERNEL_ASID,
                        vpn,
                        pte: Pte::new(vpn, PteFlags::PRESENT),
                    });
                }
            }
        }
    }

    fn slot(&self, asid: Asid, vpn: u64) -> usize {
        ((vpn ^ ((asid as u64) << 3)) as usize) & (self.tlb.len() - 1)
    }

    /// Translates `vaddr` in the address space rooted at `asp`, charging
    /// access and (on TLB miss) walk cycles, enforcing write permission,
    /// and maintaining accessed/dirty bits in the in-memory PTE.
    pub fn access(
        &mut self,
        phys: &mut PhysMem,
        clock: &mut Clock,
        cost: &CostModel,
        asp: AddressSpace,
        vaddr: VirtAddr,
        kind: AccessKind,
    ) -> Result<PhysAddr, PageFault> {
        let asid = self.asid_of(clock, cost, asp.root());
        self.stats.accesses += 1;
        clock.charge(cost.mem_access);
        let vpn = vaddr / PAGE_SIZE as u64;
        let slot = self.slot(asid, vpn);

        let pte = match self.tlb[slot] {
            Some(e) if e.asid == asid && e.vpn == vpn => {
                self.stats.tlb_hits += 1;
                e.pte
            }
            _ => {
                self.stats.tlb_misses += 1;
                clock.charge(cost.tlb_miss_walk);
                let pte = asp.walk(phys, vaddr)?;
                self.tlb[slot] = Some(TlbEntry { asid, vpn, pte });
                pte
            }
        };

        if kind == AccessKind::Write && !pte.flags().contains(PteFlags::WRITABLE) {
            return Err(PageFault::ReadOnly(vaddr));
        }

        // Maintain accessed/dirty bits in the authoritative in-memory PTE so
        // the page-out path and the crash kernel see them. The rewrite goes
        // through the L2 table that `walk` just traversed, so it cannot
        // allocate; if the table vanished out from under us that is a real
        // fault, not a bit to drop.
        let want = if kind == AccessKind::Write {
            PteFlags::ACCESSED | PteFlags::DIRTY
        } else {
            PteFlags::ACCESSED
        };
        if !pte.flags().contains(want) {
            let updated = pte.with_flags(want);
            asp.update_pte(phys, vaddr, updated)?;
            if let Some(e) = &mut self.tlb[slot] {
                e.pte = updated;
            }
        }

        Ok(pte.pfn() * PAGE_SIZE as u64 + (vaddr & (PAGE_SIZE as u64 - 1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FrameAllocator;

    fn setup() -> (PhysMem, FrameAllocator, Clock, CostModel, Mmu, AddressSpace) {
        let mut phys = PhysMem::new(64);
        let mut fa = FrameAllocator::new(0, 64);
        let clock = Clock::new();
        let cost = CostModel::default();
        let mmu = Mmu::new(16);
        let asp = AddressSpace::new(&mut phys, &mut fa).unwrap();
        (phys, fa, clock, cost, mmu, asp)
    }

    #[test]
    fn hit_after_miss() {
        let (mut phys, mut fa, mut clock, cost, mut mmu, asp) = setup();
        let frame = fa.alloc().unwrap();
        asp.map(
            &mut phys,
            &mut fa,
            0x5000,
            frame,
            PteFlags::WRITABLE | PteFlags::USER,
        )
        .unwrap();
        let pa1 = mmu
            .access(&mut phys, &mut clock, &cost, asp, 0x5004, AccessKind::Read)
            .unwrap();
        assert_eq!(pa1, frame * PAGE_SIZE as u64 + 4);
        assert_eq!(mmu.stats().tlb_misses, 1);
        mmu.access(&mut phys, &mut clock, &cost, asp, 0x5008, AccessKind::Read)
            .unwrap();
        assert_eq!(mmu.stats().tlb_hits, 1);
    }

    #[test]
    fn flush_forces_rewalk_and_charges() {
        let (mut phys, mut fa, mut clock, cost, mut mmu, asp) = setup();
        let frame = fa.alloc().unwrap();
        asp.map(
            &mut phys,
            &mut fa,
            0,
            frame,
            PteFlags::WRITABLE | PteFlags::USER,
        )
        .unwrap();
        mmu.access(&mut phys, &mut clock, &cost, asp, 0, AccessKind::Read)
            .unwrap();
        let before = clock.now();
        mmu.flush(&mut clock, &cost);
        assert_eq!(clock.since(before), cost.tlb_flush);
        mmu.access(&mut phys, &mut clock, &cost, asp, 0, AccessKind::Read)
            .unwrap();
        assert_eq!(mmu.stats().tlb_misses, 2);
        assert_eq!(mmu.stats().flushes, 1);
    }

    #[test]
    fn write_to_readonly_faults() {
        let (mut phys, mut fa, mut clock, cost, mut mmu, asp) = setup();
        let frame = fa.alloc().unwrap();
        asp.map(&mut phys, &mut fa, 0x1000, frame, PteFlags::USER)
            .unwrap();
        assert_eq!(
            mmu.access(&mut phys, &mut clock, &cost, asp, 0x1000, AccessKind::Write),
            Err(PageFault::ReadOnly(0x1000))
        );
    }

    #[test]
    fn write_sets_dirty_bit_in_memory() {
        let (mut phys, mut fa, mut clock, cost, mut mmu, asp) = setup();
        let frame = fa.alloc().unwrap();
        asp.map(
            &mut phys,
            &mut fa,
            0x2000,
            frame,
            PteFlags::WRITABLE | PteFlags::USER,
        )
        .unwrap();
        mmu.access(&mut phys, &mut clock, &cost, asp, 0x2000, AccessKind::Write)
            .unwrap();
        let pte = asp.pte(&phys, 0x2000).unwrap().unwrap();
        assert!(pte.flags().contains(PteFlags::DIRTY));
        assert!(pte.flags().contains(PteFlags::ACCESSED));
    }

    #[test]
    fn different_spaces_do_not_alias() {
        let (mut phys, mut fa, mut clock, cost, mut mmu, asp1) = setup();
        let asp2 = AddressSpace::new(&mut phys, &mut fa).unwrap();
        let f1 = fa.alloc().unwrap();
        let f2 = fa.alloc().unwrap();
        asp1.map(
            &mut phys,
            &mut fa,
            0x3000,
            f1,
            PteFlags::WRITABLE | PteFlags::USER,
        )
        .unwrap();
        asp2.map(
            &mut phys,
            &mut fa,
            0x3000,
            f2,
            PteFlags::WRITABLE | PteFlags::USER,
        )
        .unwrap();
        let p1 = mmu
            .access(&mut phys, &mut clock, &cost, asp1, 0x3000, AccessKind::Read)
            .unwrap();
        let p2 = mmu
            .access(&mut phys, &mut clock, &cost, asp2, 0x3000, AccessKind::Read)
            .unwrap();
        assert_ne!(p1, p2);
        assert_ne!(
            mmu.lookup_asid(asp1.root()),
            mmu.lookup_asid(asp2.root()),
            "distinct spaces must get distinct tags"
        );
    }

    #[test]
    fn invalidate_single_entry_charges_and_counts() {
        let (mut phys, mut fa, mut clock, cost, mut mmu, asp) = setup();
        let frame = fa.alloc().unwrap();
        asp.map(
            &mut phys,
            &mut fa,
            0x4000,
            frame,
            PteFlags::WRITABLE | PteFlags::USER,
        )
        .unwrap();
        mmu.access(&mut phys, &mut clock, &cost, asp, 0x4000, AccessKind::Read)
            .unwrap();
        let before = clock.now();
        mmu.invalidate(&mut clock, &cost, asp.root(), 0x4000);
        assert_eq!(clock.since(before), cost.tlb_invalidate);
        assert_eq!(mmu.stats().invalidations, 1);
        mmu.access(&mut phys, &mut clock, &cost, asp, 0x4000, AccessKind::Read)
            .unwrap();
        assert_eq!(mmu.stats().tlb_misses, 2);
    }

    #[test]
    fn invalidate_range_sweeps_every_overlapping_page() {
        let (mut phys, mut fa, mut clock, cost, mut mmu, asp) = setup();
        for i in 0..3u64 {
            let frame = fa.alloc().unwrap();
            asp.map(
                &mut phys,
                &mut fa,
                0x6000 + i * PAGE_SIZE as u64,
                frame,
                PteFlags::WRITABLE | PteFlags::USER,
            )
            .unwrap();
            mmu.access(
                &mut phys,
                &mut clock,
                &cost,
                asp,
                0x6000 + i * PAGE_SIZE as u64,
                AccessKind::Read,
            )
            .unwrap();
        }
        // A 2-byte range straddling the first two pages invalidates both,
        // and only both.
        mmu.invalidate_range(&mut clock, &cost, asp.root(), 0x6fff, 2);
        assert_eq!(mmu.stats().invalidations, 2);
        for i in 0..3u64 {
            mmu.access(
                &mut phys,
                &mut clock,
                &cost,
                asp,
                0x6000 + i * PAGE_SIZE as u64,
                AccessKind::Read,
            )
            .unwrap();
        }
        assert_eq!(mmu.stats().tlb_misses, 5, "pages 0,1 re-walk; page 2 hits");
    }

    #[test]
    fn tag_switch_charges_far_less_than_flush() {
        let (_phys, _fa, mut clock, cost, mut mmu, asp) = setup();
        let asid = mmu.asid_of(&mut clock, &cost, asp.root());
        let before = clock.now();
        mmu.switch_asid(&mut clock, &cost, asid);
        mmu.switch_asid(&mut clock, &cost, KERNEL_ASID);
        assert_eq!(clock.since(before), 2 * cost.asid_switch);
        assert!(2 * cost.asid_switch < cost.tlb_flush);
        assert_eq!(mmu.stats().asid_switches, 2);
        assert_eq!(mmu.current_asid(), KERNEL_ASID);
    }

    #[test]
    fn tag_switch_keeps_entries_resident() {
        let (mut phys, mut fa, mut clock, cost, mut mmu, asp) = setup();
        let frame = fa.alloc().unwrap();
        asp.map(
            &mut phys,
            &mut fa,
            0x7000,
            frame,
            PteFlags::WRITABLE | PteFlags::USER,
        )
        .unwrap();
        mmu.access(&mut phys, &mut clock, &cost, asp, 0x7000, AccessKind::Read)
            .unwrap();
        // Kernel runs (tag switch + kernel working set), then returns.
        mmu.switch_asid(&mut clock, &cost, KERNEL_ASID);
        mmu.touch_kernel(&mut clock, &cost, 0x4_0000, 2);
        mmu.switch_to_space(&mut clock, &cost, asp.root());
        mmu.access(&mut phys, &mut clock, &cost, asp, 0x7000, AccessKind::Read)
            .unwrap();
        assert_eq!(
            mmu.stats().tlb_hits,
            1,
            "the user translation must survive the kernel excursion"
        );
        assert_eq!(mmu.stats().flushes, 0);
    }

    #[test]
    fn asid_rollover_bumps_generation_and_flushes() {
        let (mut phys, mut fa, mut clock, cost, _mmu, asp1) = setup();
        // Capacity 2 = exactly one allocatable user tag.
        let mut mmu = Mmu::with_asid_capacity(16, 2);
        let asp2 = AddressSpace::new(&mut phys, &mut fa).unwrap();
        let f1 = fa.alloc().unwrap();
        let f2 = fa.alloc().unwrap();
        asp1.map(
            &mut phys,
            &mut fa,
            0x3000,
            f1,
            PteFlags::WRITABLE | PteFlags::USER,
        )
        .unwrap();
        asp2.map(
            &mut phys,
            &mut fa,
            0x3000,
            f2,
            PteFlags::WRITABLE | PteFlags::USER,
        )
        .unwrap();
        let p1 = mmu
            .access(&mut phys, &mut clock, &cost, asp1, 0x3000, AccessKind::Read)
            .unwrap();
        assert_eq!(mmu.asid_generation(), 0);
        // Second space exhausts the tag space: generation rolls over with
        // one full flush, and the recycled tag serves the *new* space.
        let p2 = mmu
            .access(&mut phys, &mut clock, &cost, asp2, 0x3000, AccessKind::Read)
            .unwrap();
        assert_eq!(mmu.asid_generation(), 1);
        assert_eq!(mmu.stats().flushes, 1);
        assert_ne!(p1, p2, "recycled tag must never serve the old space's PTE");
        assert_eq!(mmu.lookup_asid(asp1.root()), None);
        assert_eq!(mmu.lookup_asid(asp2.root()), Some(1));
    }

    #[test]
    fn kernel_touch_misses_then_hits() {
        let (_phys, _fa, mut clock, cost, mut mmu, _asp) = setup();
        mmu.touch_kernel(&mut clock, &cost, 0x4_0000, 4);
        assert_eq!(mmu.stats().tlb_misses, 4);
        mmu.touch_kernel(&mut clock, &cost, 0x4_0000, 4);
        assert_eq!(mmu.stats().tlb_hits, 4);
        assert_eq!(mmu.stats().accesses, 8);
    }
}
