//! Cycle-accurate simulated clock.
//!
//! All costs in the simulation (memory accesses, TLB misses and flushes,
//! syscall entry, disk I/O, boot phases) are charged here in cycles, then
//! converted to simulated seconds for the paper's wall-clock tables
//! (Table 6) using a fixed clock frequency.

/// Simulated CPU frequency used to convert cycles to seconds.
pub const CYCLES_PER_SEC: u64 = 1_000_000_000;

/// A monotonically increasing cycle counter.
#[derive(Debug, Clone, Default)]
pub struct Clock {
    cycles: u64,
}

impl Clock {
    /// A clock starting at cycle zero.
    pub fn new() -> Self {
        Clock::default()
    }

    /// Current cycle count.
    pub fn now(&self) -> u64 {
        self.cycles
    }

    /// Advances the clock by `cycles`.
    pub fn charge(&mut self, cycles: u64) {
        self.cycles = self.cycles.saturating_add(cycles);
    }

    /// Current simulated time in seconds.
    pub fn seconds(&self) -> f64 {
        self.cycles as f64 / CYCLES_PER_SEC as f64
    }

    /// Cycles elapsed since an earlier reading.
    pub fn since(&self, earlier: u64) -> u64 {
        self.cycles.saturating_sub(earlier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut c = Clock::new();
        c.charge(10);
        c.charge(32);
        assert_eq!(c.now(), 42);
        assert_eq!(c.since(10), 32);
    }

    #[test]
    fn seconds_conversion() {
        let mut c = Clock::new();
        c.charge(CYCLES_PER_SEC / 2);
        assert!((c.seconds() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn saturates_instead_of_wrapping() {
        let mut c = Clock::new();
        c.charge(u64::MAX);
        c.charge(100);
        assert_eq!(c.now(), u64::MAX);
    }
}
