//! Bitmap physical frame allocator.
//!
//! Both kernels use one of these. The main kernel's allocator manages all of
//! RAM minus the crash-kernel reservation; the crash kernel starts with an
//! allocator confined to its reserved region and later *adopts* the rest of
//! RAM when it morphs into the main kernel (paper §3.6).

use crate::Pfn;

/// A bitmap allocator over a contiguous range of physical frames.
#[derive(Debug, Clone)]
pub struct FrameAllocator {
    /// First frame this allocator may hand out.
    base: Pfn,
    /// One bit per frame; `true` = allocated.
    used: Vec<bool>,
    /// Cursor for next-fit scanning.
    cursor: usize,
    /// Number of currently allocated frames.
    allocated: usize,
}

impl FrameAllocator {
    /// Creates an allocator managing frames `base .. base + count`.
    pub fn new(base: Pfn, count: usize) -> Self {
        FrameAllocator {
            base,
            used: vec![false; count],
            cursor: 0,
            allocated: 0,
        }
    }

    /// First frame managed by this allocator.
    pub fn base(&self) -> Pfn {
        self.base
    }

    /// Total number of frames managed.
    pub fn capacity(&self) -> usize {
        self.used.len()
    }

    /// Number of free frames remaining.
    pub fn free_frames(&self) -> usize {
        self.used.len() - self.allocated
    }

    /// Number of allocated frames.
    pub fn allocated_frames(&self) -> usize {
        self.allocated
    }

    /// Allocates one frame, or `None` if memory is exhausted.
    pub fn alloc(&mut self) -> Option<Pfn> {
        if self.allocated == self.used.len() {
            return None;
        }
        let n = self.used.len();
        for step in 0..n {
            let i = (self.cursor + step) % n;
            if !self.used[i] {
                self.used[i] = true;
                self.allocated += 1;
                self.cursor = (i + 1) % n;
                return Some(self.base + i as Pfn);
            }
        }
        None
    }

    /// Allocates `count` physically contiguous frames, returning the first.
    pub fn alloc_contiguous(&mut self, count: usize) -> Option<Pfn> {
        if count == 0 || count > self.used.len() {
            return None;
        }
        let mut run = 0usize;
        for i in 0..self.used.len() {
            if self.used[i] {
                run = 0;
            } else {
                run += 1;
                if run == count {
                    let start = i + 1 - count;
                    for b in &mut self.used[start..=i] {
                        *b = true;
                    }
                    self.allocated += count;
                    return Some(self.base + start as Pfn);
                }
            }
        }
        None
    }

    /// Frees a previously allocated frame.
    ///
    /// # Panics
    ///
    /// Panics if the frame is outside this allocator's range or already free —
    /// a double free in the kernel substrate is a bug, not a recoverable
    /// condition.
    pub fn free(&mut self, pfn: Pfn) {
        let i = self.index_of(pfn);
        // ow-lint: allow(recovery-panic) -- documented # Panics contract: double free in the substrate is a bug
        assert!(self.used[i], "double free of frame {pfn}");
        self.used[i] = false;
        self.allocated -= 1;
    }

    /// Marks a frame as allocated without going through `alloc` (used when
    /// adopting frames that are known to be in use, e.g. the old kernel's
    /// pages during morphing).
    pub fn mark_used(&mut self, pfn: Pfn) {
        let i = self.index_of(pfn);
        if !self.used[i] {
            self.used[i] = true;
            self.allocated += 1;
        }
    }

    /// Returns whether `pfn` is inside this allocator's range.
    pub fn contains(&self, pfn: Pfn) -> bool {
        pfn >= self.base && pfn < self.base + self.used.len() as Pfn
    }

    /// Returns whether `pfn` is currently allocated.
    pub fn is_used(&self, pfn: Pfn) -> bool {
        self.used[self.index_of(pfn)]
    }

    /// Grows the managed range to cover frames `base .. new_end` (morphing:
    /// the crash kernel adopts the rest of RAM). Newly covered frames start
    /// free unless marked.
    pub fn grow_to(&mut self, new_end: Pfn) {
        let want = (new_end - self.base) as usize;
        if want > self.used.len() {
            self.used.resize(want, false);
        }
    }

    /// Extends the low end of the range down to `new_base` (frames below the
    /// current base become managed and free).
    pub fn grow_down_to(&mut self, new_base: Pfn) {
        assert!(new_base <= self.base);
        let extra = (self.base - new_base) as usize;
        if extra == 0 {
            return;
        }
        let mut used = vec![false; extra];
        used.append(&mut self.used);
        self.used = used;
        self.base = new_base;
        self.cursor = 0;
    }

    fn index_of(&self, pfn: Pfn) -> usize {
        // ow-lint: allow(recovery-panic) -- documented # Panics contract: out-of-range frame is a substrate bug
        assert!(
            self.contains(pfn),
            "frame {pfn} outside allocator range {}..{}",
            self.base,
            self.base + self.used.len() as Pfn
        );
        (pfn - self.base) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let mut a = FrameAllocator::new(10, 4);
        let f1 = a.alloc().unwrap();
        let f2 = a.alloc().unwrap();
        assert_ne!(f1, f2);
        assert!(a.contains(f1) && a.contains(f2));
        assert_eq!(a.free_frames(), 2);
        a.free(f1);
        assert_eq!(a.free_frames(), 3);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut a = FrameAllocator::new(0, 2);
        assert!(a.alloc().is_some());
        assert!(a.alloc().is_some());
        assert!(a.alloc().is_none());
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = FrameAllocator::new(0, 2);
        let f = a.alloc().unwrap();
        a.free(f);
        a.free(f);
    }

    #[test]
    fn contiguous_allocation() {
        let mut a = FrameAllocator::new(0, 8);
        let f0 = a.alloc().unwrap();
        let run = a.alloc_contiguous(4).unwrap();
        for i in 0..4 {
            assert!(a.is_used(run + i));
        }
        assert_ne!(run, f0);
        assert!(a.alloc_contiguous(5).is_none());
    }

    #[test]
    fn grow_adopts_new_range() {
        let mut a = FrameAllocator::new(4, 2);
        a.grow_to(10);
        assert_eq!(a.capacity(), 6);
        a.grow_down_to(0);
        assert_eq!(a.capacity(), 10);
        assert_eq!(a.base(), 0);
        // All ten frames should now be allocatable.
        for _ in 0..10 {
            assert!(a.alloc().is_some());
        }
        assert!(a.alloc().is_none());
    }

    #[test]
    fn mark_used_is_idempotent() {
        let mut a = FrameAllocator::new(0, 4);
        a.mark_used(2);
        a.mark_used(2);
        assert_eq!(a.allocated_frames(), 1);
        assert!(a.is_used(2));
    }
}
