//! Latency-modelled block devices.
//!
//! The system carries several devices: the root disk holding the filesystem,
//! and *two* swap partitions — one used by the main kernel and one by the
//! crash kernel, so resurrection never clobbers pages the main kernel had
//! swapped out (§3.2).

use crate::{clock::Clock, cost::CostModel};
use std::fmt;

/// Block-device identifier.
pub type DevId = u32;

/// I/O statistics for a device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DevStats {
    /// Number of read operations.
    pub reads: u64,
    /// Number of write operations.
    pub writes: u64,
    /// Total bytes transferred.
    pub bytes: u64,
}

/// Errors raised by block-device accesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DevError {
    /// Access extended past the end of the device.
    OutOfRange {
        /// Requested offset.
        offset: u64,
        /// Requested length.
        len: usize,
    },
}

impl fmt::Display for DevError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DevError::OutOfRange { offset, len } => {
                write!(f, "device access out of range: {offset:#x}+{len}")
            }
        }
    }
}

impl std::error::Error for DevError {}

/// An in-memory block device with a seek + transfer latency model.
pub struct BlockDevice {
    /// Device id.
    pub id: DevId,
    /// Human-readable name (e.g. `"sda"`, `"swap-main"`, `"swap-crash"`).
    pub name: String,
    data: Vec<u8>,
    stats: DevStats,
}

impl BlockDevice {
    /// Creates a zeroed device of `size` bytes.
    pub fn new(id: DevId, name: impl Into<String>, size: usize) -> Self {
        BlockDevice {
            id,
            name: name.into(),
            data: vec![0u8; size],
            stats: DevStats::default(),
        }
    }

    /// Device capacity in bytes.
    pub fn size(&self) -> u64 {
        self.data.len() as u64
    }

    /// I/O statistics so far.
    pub fn stats(&self) -> DevStats {
        self.stats
    }

    fn check(&self, offset: u64, len: usize) -> Result<usize, DevError> {
        let start = offset as usize;
        let end = start
            .checked_add(len)
            .ok_or(DevError::OutOfRange { offset, len })?;
        if end > self.data.len() {
            return Err(DevError::OutOfRange { offset, len });
        }
        Ok(start)
    }

    /// Per-operation latency: small (metadata-sized) transfers are mostly
    /// absorbed by the drive's cache and request coalescing, so they pay a
    /// fraction of the full seek cost.
    fn op_cost(cost: &CostModel, len: usize) -> u64 {
        let base = if len <= 512 {
            cost.disk_op / 8
        } else {
            cost.disk_op
        };
        base + cost.disk_byte * len as u64
    }

    /// Reads `buf.len()` bytes at `offset`, charging I/O latency.
    pub fn read_at(
        &mut self,
        clock: &mut Clock,
        cost: &CostModel,
        offset: u64,
        buf: &mut [u8],
    ) -> Result<(), DevError> {
        let start = self.check(offset, buf.len())?;
        buf.copy_from_slice(&self.data[start..start + buf.len()]);
        self.stats.reads += 1;
        self.stats.bytes += buf.len() as u64;
        clock.charge(Self::op_cost(cost, buf.len()));
        Ok(())
    }

    /// Writes `buf` at `offset`, charging I/O latency.
    pub fn write_at(
        &mut self,
        clock: &mut Clock,
        cost: &CostModel,
        offset: u64,
        buf: &[u8],
    ) -> Result<(), DevError> {
        let start = self.check(offset, buf.len())?;
        self.data[start..start + buf.len()].copy_from_slice(buf);
        self.stats.writes += 1;
        self.stats.bytes += buf.len() as u64;
        clock.charge(Self::op_cost(cost, buf.len()));
        Ok(())
    }

    /// Reads without charging latency (used by integrity checks in tests).
    pub fn peek(&self, offset: u64, buf: &mut [u8]) -> Result<(), DevError> {
        let start = self.check(offset, buf.len())?;
        buf.copy_from_slice(&self.data[start..start + buf.len()]);
        Ok(())
    }
}

impl fmt::Debug for BlockDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BlockDevice")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("size", &self.size())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip_charges_latency() {
        let mut dev = BlockDevice::new(0, "sda", 8192);
        let mut clock = Clock::new();
        let cost = CostModel::default();
        dev.write_at(&mut clock, &cost, 100, b"hello").unwrap();
        // Small (metadata-sized) ops pay the coalesced fraction of a seek.
        let after_write = clock.now();
        assert_eq!(after_write, cost.disk_op / 8 + cost.disk_byte * 5);
        let big = vec![7u8; 4096];
        let t0 = clock.now();
        dev.write_at(&mut clock, &cost, 4096, &big).unwrap();
        assert_eq!(clock.now() - t0, cost.disk_op + cost.disk_byte * 4096);
        let mut buf = [0u8; 5];
        dev.read_at(&mut clock, &cost, 100, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        assert_eq!(dev.stats().reads, 1);
        assert_eq!(dev.stats().writes, 2);
        assert_eq!(dev.stats().bytes, 10 + 4096);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut dev = BlockDevice::new(0, "sda", 16);
        let mut clock = Clock::new();
        let cost = CostModel::default();
        assert!(dev.write_at(&mut clock, &cost, 12, b"xxxxx").is_err());
        assert!(dev.write_at(&mut clock, &cost, u64::MAX, b"x").is_err());
    }

    #[test]
    fn peek_is_free() {
        let mut dev = BlockDevice::new(0, "sda", 64);
        let mut clock = Clock::new();
        let cost = CostModel::default();
        dev.write_at(&mut clock, &cost, 0, b"abc").unwrap();
        let t = clock.now();
        let mut buf = [0u8; 3];
        dev.peek(0, &mut buf).unwrap();
        assert_eq!(&buf, b"abc");
        assert_eq!(clock.now(), t);
    }
}
