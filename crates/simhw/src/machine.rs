//! The composed machine: RAM, CPUs, MMU, devices, clock, watchdog — plus a
//! per-frame ownership map.
//!
//! The ownership map serves two purposes. First, it implements the paper's
//! *memory-protected mode* (§4): when protection is enabled, a kernel wild
//! write routed through a virtual user address traps (the user portion of
//! the address space is unmapped while the kernel runs) instead of silently
//! corrupting application memory. Second, it lets the fault-injection
//! campaign classify what a wild write actually hit, which is how Table 5's
//! outcome columns emerge mechanistically.

use crate::{
    blockdev::{BlockDevice, DevId},
    clock::Clock,
    cost::CostModel,
    cpu::Cpu,
    mmu::Mmu,
    phys::{PhysAddr, PhysMem, PAGE_SIZE},
    watchdog::Watchdog,
    Pfn,
};

/// Who owns a physical frame right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameOwner {
    /// Unallocated.
    Free,
    /// Kernel text, static data or heap.
    Kernel,
    /// A page-table frame of process `pid` (0 = kernel tables).
    PageTable {
        /// Owning process.
        pid: u64,
    },
    /// A user data page of process `pid`.
    User {
        /// Owning process.
        pid: u64,
    },
    /// Page-cache frame holding file data.
    PageCache,
    /// The loaded (passive) crash-kernel image. Hardware-protected: wild
    /// writes here are refused, as in the paper.
    CrashImage,
    /// Handoff structures: IDT-analog, context save areas, crash-region
    /// descriptor. Corruption here prevents booting the crash kernel.
    Handoff,
    /// The flight-recorder trace region (`ow-trace`). Deliberately *not*
    /// hardware-protected: wild writes land here and the per-record CRCs
    /// contain the damage, mirroring pstore/ramoops on real hardware.
    Trace,
}

/// Result of a wild write attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WildWriteOutcome {
    /// Protected mode trapped the access before it landed; the kernel
    /// panics cleanly instead (§4).
    TrappedByProtection,
    /// The crash-kernel image is protected by memory hardware (§3.1);
    /// the write was refused.
    BlockedByHardware,
    /// The write landed; the victim frame had this owner.
    Landed(FrameOwner),
}

/// Configuration for building a [`Machine`].
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Installed RAM in frames (4 KiB each).
    pub ram_frames: usize,
    /// Number of CPUs.
    pub cpus: u32,
    /// TLB entries (power of two).
    pub tlb_entries: usize,
    /// Whether the TLB is address-space tagged (ASID/PCID analog). Tagged
    /// hardware turns the protected mode's per-syscall page-table switch
    /// into a tag switch; untagged hardware pays a full flush both ways.
    pub tlb_tagged: bool,
    /// Cycle cost model.
    pub cost: CostModel,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            // 64 MiB: large enough for every workload in the evaluation at
            // simulator scale, small enough for fast campaigns.
            ram_frames: 16384,
            cpus: 2,
            tlb_entries: 64,
            tlb_tagged: true,
            cost: CostModel::default(),
        }
    }
}

/// The simulated machine.
#[derive(Debug)]
pub struct Machine {
    /// Physical memory.
    pub phys: PhysMem,
    /// Processors.
    pub cpus: Vec<Cpu>,
    /// The MMU (shared by all CPUs; we simulate one hardware thread at a
    /// time, which matches the single-workload evaluation).
    pub mmu: Mmu,
    /// Cycle clock.
    pub clock: Clock,
    /// Cost model.
    pub cost: CostModel,
    /// Watchdog timer.
    pub watchdog: Watchdog,
    /// Block devices.
    devices: Vec<BlockDevice>,
    /// Per-frame ownership tags.
    owners: Vec<FrameOwner>,
    /// Whether the memory-protected mode is active (user space unmapped
    /// while the kernel runs).
    pub user_protection: bool,
    /// Whether the TLB is address-space tagged (see [`MachineConfig`]).
    pub tlb_tagged: bool,
}

impl Machine {
    /// Builds a machine from `config`.
    pub fn new(config: MachineConfig) -> Self {
        let phys = PhysMem::new(config.ram_frames);
        let cpus = (0..config.cpus).map(Cpu::new).collect();
        Machine {
            phys,
            cpus,
            mmu: Mmu::new(config.tlb_entries),
            clock: Clock::new(),
            cost: config.cost,
            watchdog: Watchdog::new(crate::clock::CYCLES_PER_SEC / 2),
            devices: Vec::new(),
            owners: vec![FrameOwner::Free; config.ram_frames],
            user_protection: false,
            tlb_tagged: config.tlb_tagged,
        }
    }

    /// Adds a block device, returning its id.
    pub fn add_device(&mut self, name: impl Into<String>, size: usize) -> DevId {
        let id = self.devices.len() as DevId;
        self.devices.push(BlockDevice::new(id, name, size));
        id
    }

    /// Looks up a device by id.
    ///
    /// # Panics
    ///
    /// Panics on an unknown id — devices never disappear.
    pub fn device(&mut self, id: DevId) -> &mut BlockDevice {
        &mut self.devices[id as usize]
    }

    /// Looks up a device by name.
    pub fn device_by_name(&mut self, name: &str) -> Option<&mut BlockDevice> {
        self.devices.iter_mut().find(|d| d.name == name)
    }

    /// Read-only device list.
    pub fn devices(&self) -> &[BlockDevice] {
        &self.devices
    }

    /// Number of installed frames.
    pub fn frames(&self) -> u64 {
        self.owners.len() as u64
    }

    /// Tags `pfn` with an owner.
    pub fn set_owner(&mut self, pfn: Pfn, owner: FrameOwner) {
        self.owners[pfn as usize] = owner;
    }

    /// Tags a contiguous range of frames.
    pub fn set_owner_range(&mut self, start: Pfn, count: u64, owner: FrameOwner) {
        for pfn in start..start + count {
            self.owners[pfn as usize] = owner;
        }
    }

    /// The current owner of `pfn`.
    pub fn owner(&self, pfn: Pfn) -> FrameOwner {
        self.owners[pfn as usize]
    }

    /// Counts frames with a given owner (diagnostics).
    pub fn count_owned_by(&self, pred: impl Fn(FrameOwner) -> bool) -> u64 {
        self.owners.iter().filter(|&&o| pred(o)).count() as u64
    }

    /// A kernel wild write to physical address `addr`.
    ///
    /// `via_virtual` says whether the rogue store went through a virtual
    /// user mapping (the common case for stray pointer bugs) — only those
    /// are interceptable by the protected mode's unmapped user space. Writes
    /// that corrupt memory through page-table confusion or DMA-like paths
    /// (`via_virtual == false`) land regardless, which is why the paper
    /// still observed one corruption under protection (§6).
    pub fn wild_write(
        &mut self,
        addr: PhysAddr,
        xor_mask: u64,
        via_virtual: bool,
    ) -> WildWriteOutcome {
        let pfn = addr / PAGE_SIZE as u64;
        if pfn >= self.frames() {
            // Off the end of RAM: machine-check on real hardware; treat as
            // landing in unowned space.
            return WildWriteOutcome::Landed(FrameOwner::Free);
        }
        let owner = self.owner(pfn);
        match owner {
            FrameOwner::CrashImage => WildWriteOutcome::BlockedByHardware,
            FrameOwner::User { .. } if self.user_protection && via_virtual => {
                WildWriteOutcome::TrappedByProtection
            }
            _ => {
                self.phys.corrupt_u64(addr, xor_mask);
                WildWriteOutcome::Landed(owner)
            }
        }
    }

    /// Total cycles charged so far (convenience).
    pub fn now(&self) -> u64 {
        self.clock.now()
    }

    /// Reads from device `id`, charging I/O latency on this machine's clock.
    pub fn dev_read(
        &mut self,
        id: DevId,
        offset: u64,
        buf: &mut [u8],
    ) -> Result<(), crate::blockdev::DevError> {
        self.devices[id as usize].read_at(&mut self.clock, &self.cost, offset, buf)
    }

    /// Writes to device `id`, charging I/O latency on this machine's clock.
    pub fn dev_write(
        &mut self,
        id: DevId,
        offset: u64,
        buf: &[u8],
    ) -> Result<(), crate::blockdev::DevError> {
        self.devices[id as usize].write_at(&mut self.clock, &self.cost, offset, buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::new(MachineConfig {
            ram_frames: 64,
            cpus: 2,
            tlb_entries: 16,
            tlb_tagged: true,
            cost: CostModel::default(),
        })
    }

    #[test]
    fn devices_are_registered_and_found() {
        let mut m = machine();
        let sda = m.add_device("sda", 4096);
        let swap = m.add_device("swap-main", 4096);
        assert_ne!(sda, swap);
        assert_eq!(m.device_by_name("swap-main").unwrap().id, swap);
        assert!(m.device_by_name("nope").is_none());
    }

    #[test]
    fn frame_ownership_tags() {
        let mut m = machine();
        m.set_owner(3, FrameOwner::User { pid: 7 });
        m.set_owner_range(10, 4, FrameOwner::Handoff);
        assert_eq!(m.owner(3), FrameOwner::User { pid: 7 });
        assert_eq!(m.owner(12), FrameOwner::Handoff);
        assert_eq!(m.count_owned_by(|o| o == FrameOwner::Handoff), 4);
    }

    #[test]
    fn wild_write_lands_on_kernel_frame() {
        let mut m = machine();
        m.set_owner(0, FrameOwner::Kernel);
        m.phys.write_u64(8, 0xff).unwrap();
        let out = m.wild_write(8, 0x0f, true);
        assert_eq!(out, WildWriteOutcome::Landed(FrameOwner::Kernel));
        assert_eq!(m.phys.read_u64(8).unwrap(), 0xf0);
    }

    #[test]
    fn protection_traps_virtual_user_writes_only() {
        let mut m = machine();
        m.set_owner(5, FrameOwner::User { pid: 1 });
        m.user_protection = true;
        let addr = 5 * PAGE_SIZE as u64;
        m.phys.write_u64(addr, 1).unwrap();
        assert_eq!(
            m.wild_write(addr, 0xff, true),
            WildWriteOutcome::TrappedByProtection
        );
        assert_eq!(
            m.phys.read_u64(addr).unwrap(),
            1,
            "trapped write must not land"
        );
        // A non-virtual corruption path still lands.
        assert_eq!(
            m.wild_write(addr, 0xff, false),
            WildWriteOutcome::Landed(FrameOwner::User { pid: 1 })
        );
        assert_ne!(m.phys.read_u64(addr).unwrap(), 1);
    }

    #[test]
    fn crash_image_is_hardware_protected() {
        let mut m = machine();
        m.set_owner(9, FrameOwner::CrashImage);
        let addr = 9 * PAGE_SIZE as u64;
        assert_eq!(
            m.wild_write(addr, 0xff, false),
            WildWriteOutcome::BlockedByHardware
        );
        assert_eq!(m.phys.read_u64(addr).unwrap(), 0);
    }

    #[test]
    fn wild_write_past_ram_is_harmless() {
        let mut m = machine();
        assert_eq!(
            m.wild_write(u64::MAX - 8, 0xff, false),
            WildWriteOutcome::Landed(FrameOwner::Free)
        );
    }
}
