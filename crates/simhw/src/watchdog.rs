//! Hardware watchdog timer.
//!
//! One of the robustness fixes that raised the paper's resurrection rate
//! from 89% to 97% (§6): when the main kernel stalls (a hang rather than a
//! clean panic), a chipset watchdog fires an NMI whose handler starts the
//! microreboot. The watchdog is optional, mirroring the ablation.

/// A deadline-based watchdog timer.
#[derive(Debug, Clone)]
pub struct Watchdog {
    enabled: bool,
    timeout_cycles: u64,
    last_pet: u64,
    fired: bool,
}

impl Watchdog {
    /// Creates a watchdog with the given timeout; starts disabled.
    pub fn new(timeout_cycles: u64) -> Self {
        Watchdog {
            enabled: false,
            timeout_cycles,
            last_pet: 0,
            fired: false,
        }
    }

    /// Enables the watchdog, starting the countdown at `now`.
    pub fn enable(&mut self, now: u64) {
        self.enabled = true;
        self.last_pet = now;
        self.fired = false;
    }

    /// Disables the watchdog.
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Whether the watchdog is armed.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Resets the countdown ("pets" the dog). The kernel does this from its
    /// timer tick while healthy.
    pub fn pet(&mut self, now: u64) {
        self.last_pet = now;
    }

    /// Returns `true` exactly once when the deadline has passed — the NMI.
    pub fn check_fire(&mut self, now: u64) -> bool {
        if self.enabled && !self.fired && now.saturating_sub(self.last_pet) >= self.timeout_cycles {
            self.fired = true;
            return true;
        }
        false
    }

    /// Re-arms a fired watchdog: restarts the countdown at `now` and clears
    /// the one-shot `fired` latch, without toggling the enabled state. The
    /// crash kernel's recovery supervisor uses this to guard each process
    /// resurrection with a fresh deadline inside a single microreboot —
    /// `enable()` would work too, but `rearm` keeps a disabled watchdog
    /// disabled (an un-armed dog must never start firing because a guard
    /// loop reset it).
    pub fn rearm(&mut self, now: u64) {
        self.last_pet = now;
        self.fired = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_never_fires() {
        let mut w = Watchdog::new(100);
        assert!(!w.check_fire(1_000_000));
    }

    #[test]
    fn fires_once_after_timeout() {
        let mut w = Watchdog::new(100);
        w.enable(0);
        assert!(!w.check_fire(50));
        assert!(w.check_fire(150));
        assert!(!w.check_fire(200), "must fire only once");
    }

    #[test]
    fn rearm_allows_a_second_fire() {
        let mut w = Watchdog::new(100);
        w.enable(0);
        assert!(w.check_fire(150));
        assert!(!w.check_fire(200), "latched until rearmed");
        w.rearm(200);
        assert!(!w.check_fire(250), "rearm restarts the countdown at now");
        assert!(w.check_fire(300), "fires again after a fresh timeout");
    }

    #[test]
    fn rearm_keeps_a_disabled_watchdog_disabled() {
        let mut w = Watchdog::new(100);
        w.rearm(0);
        assert!(!w.check_fire(1_000_000));
    }

    #[test]
    fn petting_defers_the_deadline() {
        let mut w = Watchdog::new(100);
        w.enable(0);
        w.pet(90);
        assert!(!w.check_fire(150));
        assert!(w.check_fire(190));
    }
}
