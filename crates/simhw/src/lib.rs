//! Simulated hardware substrate for the Otherworld reproduction.
//!
//! The paper modifies a real Linux kernel running on x86 hardware. This crate
//! provides the synthetic equivalent of that hardware: a byte-addressable
//! physical memory, a frame allocator, two-level page tables that live *in*
//! the simulated physical memory, an MMU with a TLB model (so the cost of the
//! memory-protected mode's page-table switches is measurable), multiple CPUs
//! with non-maskable interrupts and per-CPU context save areas, block devices
//! with a latency model, a watchdog timer, and a cycle-accurate clock.
//!
//! Everything the crash kernel later needs to *resurrect* applications is a
//! plain byte pattern inside [`PhysMem`], exactly as it would be on real
//! hardware. Fault injection corrupts those bytes; resurrection re-parses
//! them.

#![forbid(unsafe_code)]

pub mod blockdev;
pub mod clock;
pub mod cost;
pub mod cpu;
pub mod frames;
pub mod machine;
pub mod mmu;
pub mod paging;
pub mod phys;
pub mod rng;
pub mod watchdog;

pub use blockdev::{BlockDevice, DevId};
pub use clock::Clock;
pub use cost::CostModel;
pub use cpu::{Context, Cpu, CpuId};
pub use frames::FrameAllocator;
pub use machine::{Machine, MachineConfig};
pub use mmu::{AccessKind, Asid, Mmu, MmuStats, KERNEL_ASID};
pub use paging::{AddressSpace, Pte, PteFlags};
pub use phys::{MemError, PhysAddr, PhysMem, PAGE_SIZE};
pub use rng::{mix64, stream_seed, SimRng};

/// Page frame number: a physical frame index.
pub type Pfn = u64;

/// Virtual address within a simulated process address space.
pub type VirtAddr = u64;

/// Number of bytes covered by one level-2 page-table entry (one page).
pub const PAGE_BYTES: u64 = PAGE_SIZE as u64;
