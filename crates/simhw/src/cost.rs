//! Cost model: how many cycles each hardware event charges.
//!
//! The absolute values are calibrated to plausible hardware magnitudes, not
//! to the paper's testbed; what matters for reproducing the *shape* of the
//! results (Table 3's ordering MySQL < Apache < Volano, Table 6's
//! interruption-vs-cold-boot comparison) is the relative cost of TLB
//! refills, page-table switches and disk I/O versus plain computation.

/// Cycle costs for simulated hardware events.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Base cost of one memory access that hits the TLB.
    pub mem_access: u64,
    /// Extra cost of a page-table walk on a TLB miss.
    pub tlb_miss_walk: u64,
    /// Cost of flushing the TLB (charged on page-table switch).
    pub tlb_flush: u64,
    /// Cost of invalidating a single page translation (the `invlpg`
    /// analog, charged per page by ranged invalidation).
    pub tlb_invalidate: u64,
    /// Cost of retargeting the TLB's address-space tag register (the
    /// PCID-load analog). This is the tagged fast path that replaces the
    /// full flush on protected-mode page-table switches, so it must stay
    /// far below [`CostModel::tlb_flush`].
    pub asid_switch: u64,
    /// Cost of a user->kernel transition (trap, save, dispatch).
    pub syscall_entry: u64,
    /// Cost of loading a new page-table root register.
    pub pt_switch: u64,
    /// Fixed per-operation disk latency (sequential-access amortized seek).
    pub disk_op: u64,
    /// Per-byte disk transfer cost.
    pub disk_byte: u64,
    /// Cost of one "unit" of pure user computation between syscalls.
    pub compute_unit: u64,
    /// Memory-copy bandwidth: bytes moved per cycle by bulk user-memory
    /// transfers.
    pub mem_bytes_per_cycle: u64,
    /// Cost of copying one whole page during resurrection.
    pub page_copy: u64,
    /// Cost of adopting one page by mapping during resurrection
    /// (footnote 3's optimization: a PTE write instead of a copy).
    pub page_map: u64,
    /// Per-byte cost of CRC-revalidating a dead-kernel structure before
    /// the warm morph adopts it (a streaming checksum, far cheaper than
    /// rebuilding the structure).
    pub validate_byte: u64,
    /// Per-frame cost of the cold morph's full reclaim scan (ownership
    /// probe + bitmap update for one physical frame).
    pub reclaim_frame_scan: u64,
    /// Fixed overhead of servicing one copy-on-access resurrection fault
    /// (trap + lazy-PTE decode), charged on top of [`CostModel::page_copy`].
    pub lazy_fault: u64,
    /// Per-byte cost of sealing (or rolling back) an epoch checkpoint:
    /// a streaming copy plus CRC of resurrection-critical records into
    /// the reserved region next to the trace ring. Slightly dearer than
    /// plain validation (it writes as well as reads) but far below disk.
    pub checkpoint_byte: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            mem_access: 1,
            tlb_miss_walk: 30,
            tlb_flush: 120,
            tlb_invalidate: 20,
            asid_switch: 12,
            syscall_entry: 300,
            pt_switch: 80,
            disk_op: 60_000,
            disk_byte: 5,
            compute_unit: 40,
            mem_bytes_per_cycle: 2,
            page_copy: 2_000,
            page_map: 150,
            validate_byte: 1,
            reclaim_frame_scan: 20,
            lazy_fault: 500,
            checkpoint_byte: 2,
        }
    }
}

impl CostModel {
    /// A cost model with free disk I/O, useful for tests that should not
    /// depend on the latency model.
    pub fn zero_io() -> Self {
        CostModel {
            disk_op: 0,
            disk_byte: 0,
            ..CostModel::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_orders_costs_sensibly() {
        let c = CostModel::default();
        assert!(c.mem_access < c.tlb_miss_walk);
        assert!(c.tlb_miss_walk < c.tlb_flush);
        assert!(c.tlb_flush < c.disk_op);
        // Tagged-TLB economics: retargeting the tag register must be far
        // cheaper than the full flush it replaces (otherwise the protected
        // mode gains nothing from ASIDs), and a single-page shootdown must
        // sit between a plain access and a full flush.
        assert!(c.asid_switch * 4 <= c.tlb_flush);
        assert!(c.mem_access < c.tlb_invalidate);
        assert!(c.tlb_invalidate < c.tlb_flush);
        // Warm-morph economics: validating a structure must be cheaper
        // per byte than re-reading it from disk, adopting a frame must be
        // cheaper than scanning it, and a lazy fault (overhead + copy)
        // must stay well under one disk op so copy-on-access wins.
        assert!(c.validate_byte < c.disk_byte);
        assert!(c.reclaim_frame_scan > c.validate_byte);
        assert!(c.lazy_fault + c.page_copy < c.disk_op);
        // Rollback economics: sealing an epoch writes as well as reads, so
        // it costs at least as much per byte as validation, but it must
        // stay far below the disk path or continuous checkpointing would
        // not be "lightweight" in the Table 4 sense.
        assert!(c.validate_byte <= c.checkpoint_byte);
        assert!(c.checkpoint_byte < c.disk_byte);
    }

    #[test]
    fn zero_io_removes_disk_costs() {
        let c = CostModel::zero_io();
        assert_eq!(c.disk_op, 0);
        assert_eq!(c.disk_byte, 0);
        assert_eq!(c.mem_access, CostModel::default().mem_access);
    }
}
