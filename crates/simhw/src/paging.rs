//! Two-level page tables resident in simulated physical memory.
//!
//! Layout mirrors a cut-down x86: 4 KiB pages, 512-entry tables of 8-byte
//! entries, two levels, giving a 1 GiB virtual address space per process
//! (bits `[30..]` of a virtual address must be zero). Crucially the tables
//! themselves are stored **inside [`PhysMem`]**: the crash kernel walks the
//! dead kernel's page tables byte-by-byte during resurrection, fault
//! injection can corrupt individual PTEs, and Table 4's "page tables are the
//! largest portion of data read" falls out of this representation naturally.

use crate::{
    phys::{MemError, PhysAddr, PhysMem, PAGE_SIZE},
    FrameAllocator, Pfn, VirtAddr,
};

/// Entries per page table (one frame of 8-byte entries).
pub const TABLE_ENTRIES: u64 = 512;

/// Bits of virtual address space covered (2 levels * 9 bits + 12-bit page).
pub const VA_BITS: u32 = 30;

/// Highest valid virtual address + 1 (1 GiB).
pub const VA_LIMIT: VirtAddr = 1 << VA_BITS;

crate::bitflags_lite! {
    /// Flags stored in the low bits of a [`Pte`].
    pub struct PteFlags: u64 {
        /// Mapping is valid and backed by a physical frame.
        const PRESENT = 1 << 0;
        /// Page may be written.
        const WRITABLE = 1 << 1;
        /// Page is user-accessible (clear for kernel-only mappings).
        const USER = 1 << 2;
        /// Set by the MMU on any access.
        const ACCESSED = 1 << 3;
        /// Set by the MMU on a write access.
        const DIRTY = 1 << 4;
        /// Page content lives in a swap slot; the frame field holds the slot.
        const SWAPPED = 1 << 5;
        /// Page belongs to a file-backed mapping.
        const FILE = 1 << 6;
        /// Copy-on-access resurrection mapping: the frame still belongs to
        /// the dead kernel's generation and is mapped read-only; the first
        /// write pulls a private copy ([`PteFlags::LAZY_RW`] records
        /// whether the copy becomes writable).
        const LAZY = 1 << 7;
        /// The lazily-mapped page was writable before the crash; restored
        /// as `WRITABLE` when the copy-on-access fault materializes it.
        const LAZY_RW = 1 << 8;
    }
}

/// A helper macro providing the small subset of `bitflags` we need, so the
/// substrate stays dependency-free.
#[macro_export]
macro_rules! bitflags_lite {
    (
        $(#[$meta:meta])*
        pub struct $name:ident : $ty:ty {
            $(
                $(#[$fmeta:meta])*
                const $flag:ident = $value:expr;
            )*
        }
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
        pub struct $name(pub $ty);

        impl $name {
            $(
                $(#[$fmeta])*
                pub const $flag: $name = $name($value);
            )*

            /// The empty flag set.
            pub const fn empty() -> Self {
                $name(0)
            }

            /// Raw bit representation.
            pub const fn bits(self) -> $ty {
                self.0
            }

            /// Reconstructs a flag set from raw bits (unknown bits kept).
            pub const fn from_bits(bits: $ty) -> Self {
                $name(bits)
            }

            /// Returns whether every bit in `other` is set in `self`.
            pub const fn contains(self, other: $name) -> bool {
                (self.0 & other.0) == other.0
            }

            /// Returns whether any bit in `other` is set in `self`.
            pub const fn intersects(self, other: $name) -> bool {
                (self.0 & other.0) != 0
            }
        }

        impl core::ops::BitOr for $name {
            type Output = $name;
            fn bitor(self, rhs: $name) -> $name {
                $name(self.0 | rhs.0)
            }
        }

        impl core::ops::BitOrAssign for $name {
            fn bitor_assign(&mut self, rhs: $name) {
                self.0 |= rhs.0;
            }
        }

        impl core::ops::BitAnd for $name {
            type Output = $name;
            fn bitand(self, rhs: $name) -> $name {
                $name(self.0 & rhs.0)
            }
        }

        impl core::ops::Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 & !rhs.0)
            }
        }
    };
}

/// A page-table entry: flags in bits `[0..12]`, frame (or swap slot) in
/// bits `[12..52]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pte(pub u64);

impl Pte {
    const FRAME_SHIFT: u32 = 12;
    const FRAME_MASK: u64 = ((1u64 << 40) - 1) << Self::FRAME_SHIFT;

    /// Builds an entry from a frame number and flags.
    pub fn new(pfn: Pfn, flags: PteFlags) -> Self {
        debug_assert_eq!(flags.bits() & Self::FRAME_MASK, 0);
        Pte(((pfn << Self::FRAME_SHIFT) & Self::FRAME_MASK) | (flags.bits() & 0xfff))
    }

    /// An all-zero (unmapped) entry.
    pub const fn zero() -> Self {
        Pte(0)
    }

    /// The frame number (or swap slot when [`PteFlags::SWAPPED`]).
    pub fn pfn(self) -> Pfn {
        (self.0 & Self::FRAME_MASK) >> Self::FRAME_SHIFT
    }

    /// The flag bits.
    pub fn flags(self) -> PteFlags {
        PteFlags::from_bits(self.0 & 0xfff)
    }

    /// Whether the entry maps anything at all (present or swapped).
    pub fn is_mapped(self) -> bool {
        self.flags()
            .intersects(PteFlags::PRESENT | PteFlags::SWAPPED)
    }

    /// Returns a copy with extra flags set.
    pub fn with_flags(self, extra: PteFlags) -> Self {
        Pte(self.0 | (extra.bits() & 0xfff))
    }
}

/// Reasons a virtual-address translation can fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageFault {
    /// No mapping exists for the address.
    NotMapped(VirtAddr),
    /// Mapping exists but the page is swapped out (slot attached).
    Swapped(VirtAddr, u64),
    /// Write attempted to a read-only page.
    ReadOnly(VirtAddr),
    /// User access to a kernel-only page (or protected-mode trap).
    Protection(VirtAddr),
    /// Address above [`VA_LIMIT`].
    OutOfSpace(VirtAddr),
}

/// A process address space: a root table frame plus walk/map operations.
///
/// The structure holds only the root PFN; everything else lives in physical
/// memory so it can be shared with, corrupted by, and re-read from the dead
/// kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressSpace {
    root: Pfn,
}

fn l1_index(vaddr: VirtAddr) -> u64 {
    (vaddr >> 21) & (TABLE_ENTRIES - 1)
}

fn l2_index(vaddr: VirtAddr) -> u64 {
    (vaddr >> 12) & (TABLE_ENTRIES - 1)
}

fn entry_addr(table_pfn: Pfn, index: u64) -> PhysAddr {
    table_pfn * PAGE_SIZE as u64 + index * 8
}

impl AddressSpace {
    /// Allocates a zeroed root table.
    pub fn new(phys: &mut PhysMem, falloc: &mut FrameAllocator) -> Option<Self> {
        let root = falloc.alloc()?;
        phys.zero_frame(root).ok()?;
        Some(AddressSpace { root })
    }

    /// Wraps an existing root frame (used by the crash kernel to walk the
    /// dead kernel's tables).
    pub fn from_root(root: Pfn) -> Self {
        AddressSpace { root }
    }

    /// The root table frame.
    pub fn root(&self) -> Pfn {
        self.root
    }

    /// Reads the L1 (directory) entry covering `vaddr`.
    pub fn l1_entry(&self, phys: &PhysMem, vaddr: VirtAddr) -> Result<Pte, MemError> {
        Ok(Pte(phys.read_u64(entry_addr(self.root, l1_index(vaddr)))?))
    }

    /// Reads the leaf PTE for `vaddr`, if the covering table exists.
    pub fn pte(&self, phys: &PhysMem, vaddr: VirtAddr) -> Result<Option<Pte>, MemError> {
        if vaddr >= VA_LIMIT {
            return Ok(None);
        }
        let l1 = self.l1_entry(phys, vaddr)?;
        if !l1.flags().contains(PteFlags::PRESENT) {
            return Ok(None);
        }
        let pte = Pte(phys.read_u64(entry_addr(l1.pfn(), l2_index(vaddr)))?);
        Ok(Some(pte))
    }

    /// Writes the leaf PTE for `vaddr`, allocating the L2 table on demand.
    pub fn set_pte(
        &self,
        phys: &mut PhysMem,
        falloc: &mut FrameAllocator,
        vaddr: VirtAddr,
        pte: Pte,
    ) -> Result<(), PageFault> {
        if vaddr >= VA_LIMIT {
            return Err(PageFault::OutOfSpace(vaddr));
        }
        let l1_addr = entry_addr(self.root, l1_index(vaddr));
        let mut l1 = Pte(phys
            .read_u64(l1_addr)
            .map_err(|_| PageFault::NotMapped(vaddr))?);
        if !l1.flags().contains(PteFlags::PRESENT) {
            let table = falloc.alloc().ok_or(PageFault::NotMapped(vaddr))?;
            phys.zero_frame(table)
                .map_err(|_| PageFault::NotMapped(vaddr))?;
            l1 = Pte::new(
                table,
                PteFlags::PRESENT | PteFlags::WRITABLE | PteFlags::USER,
            );
            phys.write_u64(l1_addr, l1.0)
                .map_err(|_| PageFault::NotMapped(vaddr))?;
        }
        phys.write_u64(entry_addr(l1.pfn(), l2_index(vaddr)), pte.0)
            .map_err(|_| PageFault::NotMapped(vaddr))?;
        Ok(())
    }

    /// Rewrites the leaf PTE for `vaddr` through the *existing* L2 table,
    /// never allocating. This is the MMU's accessed/dirty writeback path:
    /// it must not need a frame allocator, and it must fail loudly (rather
    /// than silently dropping the bit) if the covering table is absent.
    pub fn update_pte(
        &self,
        phys: &mut PhysMem,
        vaddr: VirtAddr,
        pte: Pte,
    ) -> Result<(), PageFault> {
        if vaddr >= VA_LIMIT {
            return Err(PageFault::OutOfSpace(vaddr));
        }
        let l1 = self
            .l1_entry(phys, vaddr)
            .map_err(|_| PageFault::NotMapped(vaddr))?;
        if !l1.flags().contains(PteFlags::PRESENT) {
            return Err(PageFault::NotMapped(vaddr));
        }
        phys.write_u64(entry_addr(l1.pfn(), l2_index(vaddr)), pte.0)
            .map_err(|_| PageFault::NotMapped(vaddr))?;
        Ok(())
    }

    /// Maps `vaddr` to frame `pfn` with `flags`.
    pub fn map(
        &self,
        phys: &mut PhysMem,
        falloc: &mut FrameAllocator,
        vaddr: VirtAddr,
        pfn: Pfn,
        flags: PteFlags,
    ) -> Result<(), PageFault> {
        self.set_pte(
            phys,
            falloc,
            vaddr,
            Pte::new(pfn, flags | PteFlags::PRESENT),
        )
    }

    /// Removes the mapping for `vaddr`, returning the old entry.
    pub fn unmap(&self, phys: &mut PhysMem, vaddr: VirtAddr) -> Result<Option<Pte>, MemError> {
        if vaddr >= VA_LIMIT {
            return Ok(None);
        }
        let l1 = self.l1_entry(phys, vaddr)?;
        if !l1.flags().contains(PteFlags::PRESENT) {
            return Ok(None);
        }
        let addr = entry_addr(l1.pfn(), l2_index(vaddr));
        let old = Pte(phys.read_u64(addr)?);
        phys.write_u64(addr, 0)?;
        Ok(if old.is_mapped() { Some(old) } else { None })
    }

    /// Pure page walk: translates `vaddr` without touching accessed/dirty
    /// bits. Returns the leaf PTE on success.
    pub fn walk(&self, phys: &PhysMem, vaddr: VirtAddr) -> Result<Pte, PageFault> {
        if vaddr >= VA_LIMIT {
            return Err(PageFault::OutOfSpace(vaddr));
        }
        let pte = self
            .pte(phys, vaddr)
            .map_err(|_| PageFault::NotMapped(vaddr))?
            .ok_or(PageFault::NotMapped(vaddr))?;
        let flags = pte.flags();
        if flags.contains(PteFlags::SWAPPED) {
            return Err(PageFault::Swapped(vaddr, pte.pfn()));
        }
        if !flags.contains(PteFlags::PRESENT) {
            return Err(PageFault::NotMapped(vaddr));
        }
        Ok(pte)
    }

    /// Calls `f(page_vaddr, pte)` for every mapped (present or swapped) page.
    pub fn for_each_mapped<F>(&self, phys: &PhysMem, mut f: F) -> Result<(), MemError>
    where
        F: FnMut(VirtAddr, Pte),
    {
        for i1 in 0..TABLE_ENTRIES {
            let l1 = Pte(phys.read_u64(entry_addr(self.root, i1))?);
            if !l1.flags().contains(PteFlags::PRESENT) {
                continue;
            }
            for i2 in 0..TABLE_ENTRIES {
                let pte = Pte(phys.read_u64(entry_addr(l1.pfn(), i2))?);
                if pte.is_mapped() {
                    f((i1 << 21) | (i2 << 12), pte);
                }
            }
        }
        Ok(())
    }

    /// Calls `f(pfn)` for every physical frame this address space holds
    /// onto: the root, every live L2 table, and every *present* leaf page
    /// (swapped entries hold swap slots, not frames). This is the ground
    /// truth for "which frames does this process own" — frame tags can go
    /// stale across kernel generations, this walk cannot.
    pub fn for_each_frame<F>(&self, phys: &PhysMem, mut f: F) -> Result<(), MemError>
    where
        F: FnMut(Pfn),
    {
        f(self.root);
        for i1 in 0..TABLE_ENTRIES {
            let l1 = Pte(phys.read_u64(entry_addr(self.root, i1))?);
            if !l1.flags().contains(PteFlags::PRESENT) {
                continue;
            }
            f(l1.pfn());
            for i2 in 0..TABLE_ENTRIES {
                let pte = Pte(phys.read_u64(entry_addr(l1.pfn(), i2))?);
                if pte.flags().contains(PteFlags::PRESENT) {
                    f(pte.pfn());
                }
            }
        }
        Ok(())
    }

    /// Number of table frames (root + live L2 tables). Table 4 counts these
    /// bytes as the "page tables" portion of resurrection reads.
    pub fn table_frames(&self, phys: &PhysMem) -> Result<u64, MemError> {
        let mut n = 1;
        for i1 in 0..TABLE_ENTRIES {
            let l1 = Pte(phys.read_u64(entry_addr(self.root, i1))?);
            if l1.flags().contains(PteFlags::PRESENT) {
                n += 1;
            }
        }
        Ok(n)
    }

    /// Frees all L2 table frames and the root. Leaf frames are *not* freed;
    /// callers own those through their frame tags.
    pub fn free_tables(&self, phys: &PhysMem, falloc: &mut FrameAllocator) -> Result<(), MemError> {
        for i1 in 0..TABLE_ENTRIES {
            let l1 = Pte(phys.read_u64(entry_addr(self.root, i1))?);
            if l1.flags().contains(PteFlags::PRESENT) {
                falloc.free(l1.pfn());
            }
        }
        falloc.free(self.root);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (PhysMem, FrameAllocator) {
        (PhysMem::new(64), FrameAllocator::new(0, 64))
    }

    #[test]
    fn pte_round_trip() {
        let pte = Pte::new(0x1234, PteFlags::PRESENT | PteFlags::WRITABLE);
        assert_eq!(pte.pfn(), 0x1234);
        assert!(pte.flags().contains(PteFlags::PRESENT));
        assert!(pte.flags().contains(PteFlags::WRITABLE));
        assert!(!pte.flags().contains(PteFlags::DIRTY));
    }

    #[test]
    fn map_then_walk() {
        let (mut phys, mut fa) = setup();
        let asp = AddressSpace::new(&mut phys, &mut fa).unwrap();
        asp.map(
            &mut phys,
            &mut fa,
            0x40_0000,
            7,
            PteFlags::WRITABLE | PteFlags::USER,
        )
        .unwrap();
        let pte = asp.walk(&phys, 0x40_0000).unwrap();
        assert_eq!(pte.pfn(), 7);
        assert!(matches!(
            asp.walk(&phys, 0x41_0000),
            Err(PageFault::NotMapped(_))
        ));
    }

    #[test]
    fn swapped_entry_faults_with_slot() {
        let (mut phys, mut fa) = setup();
        let asp = AddressSpace::new(&mut phys, &mut fa).unwrap();
        asp.set_pte(&mut phys, &mut fa, 0x1000, Pte::new(42, PteFlags::SWAPPED))
            .unwrap();
        assert_eq!(asp.walk(&phys, 0x1000), Err(PageFault::Swapped(0x1000, 42)));
    }

    #[test]
    fn out_of_space_rejected() {
        let (mut phys, mut fa) = setup();
        let asp = AddressSpace::new(&mut phys, &mut fa).unwrap();
        assert_eq!(
            asp.walk(&phys, VA_LIMIT),
            Err(PageFault::OutOfSpace(VA_LIMIT))
        );
        assert!(asp
            .map(&mut phys, &mut fa, VA_LIMIT + 0x1000, 1, PteFlags::empty())
            .is_err());
    }

    #[test]
    fn unmap_returns_old_entry() {
        let (mut phys, mut fa) = setup();
        let asp = AddressSpace::new(&mut phys, &mut fa).unwrap();
        asp.map(&mut phys, &mut fa, 0x2000, 5, PteFlags::USER)
            .unwrap();
        let old = asp.unmap(&mut phys, 0x2000).unwrap().unwrap();
        assert_eq!(old.pfn(), 5);
        assert!(asp.unmap(&mut phys, 0x2000).unwrap().is_none());
    }

    #[test]
    fn for_each_mapped_visits_all() {
        let (mut phys, mut fa) = setup();
        let asp = AddressSpace::new(&mut phys, &mut fa).unwrap();
        let addrs = [0x0, 0x1000, 0x20_0000, 0x3ff_f000];
        for (i, &va) in addrs.iter().enumerate() {
            asp.map(&mut phys, &mut fa, va, i as Pfn + 1, PteFlags::USER)
                .unwrap();
        }
        let mut seen = Vec::new();
        asp.for_each_mapped(&phys, |va, _| seen.push(va)).unwrap();
        assert_eq!(seen, addrs);
    }

    #[test]
    fn table_frames_counts_root_and_l2() {
        let (mut phys, mut fa) = setup();
        let asp = AddressSpace::new(&mut phys, &mut fa).unwrap();
        assert_eq!(asp.table_frames(&phys).unwrap(), 1);
        asp.map(&mut phys, &mut fa, 0x0, 1, PteFlags::USER).unwrap();
        asp.map(&mut phys, &mut fa, 0x1000, 2, PteFlags::USER)
            .unwrap();
        assert_eq!(asp.table_frames(&phys).unwrap(), 2);
        asp.map(&mut phys, &mut fa, 0x20_0000, 3, PteFlags::USER)
            .unwrap();
        assert_eq!(asp.table_frames(&phys).unwrap(), 3);
    }

    #[test]
    fn update_pte_rewrites_in_place_and_never_allocates() {
        let (mut phys, mut fa) = setup();
        let asp = AddressSpace::new(&mut phys, &mut fa).unwrap();
        asp.map(&mut phys, &mut fa, 0x3000, 6, PteFlags::USER)
            .unwrap();
        let live = fa.allocated_frames();
        let dirty = asp
            .pte(&phys, 0x3000)
            .unwrap()
            .unwrap()
            .with_flags(PteFlags::DIRTY);
        asp.update_pte(&mut phys, 0x3000, dirty).unwrap();
        assert_eq!(fa.allocated_frames(), live, "writeback must not allocate");
        assert!(asp
            .pte(&phys, 0x3000)
            .unwrap()
            .unwrap()
            .flags()
            .contains(PteFlags::DIRTY));
        // No covering L2 table: the error surfaces instead of allocating.
        assert_eq!(
            asp.update_pte(&mut phys, 0xa0_0000, dirty),
            Err(PageFault::NotMapped(0xa0_0000))
        );
        assert_eq!(
            asp.update_pte(&mut phys, VA_LIMIT, dirty),
            Err(PageFault::OutOfSpace(VA_LIMIT))
        );
    }

    #[test]
    fn free_tables_releases_frames() {
        let (mut phys, mut fa) = setup();
        let before = fa.free_frames();
        let asp = AddressSpace::new(&mut phys, &mut fa).unwrap();
        asp.map(&mut phys, &mut fa, 0x0, 1, PteFlags::USER).unwrap();
        asp.free_tables(&phys, &mut fa).unwrap();
        assert_eq!(fa.free_frames(), before);
    }
}
