//! Property-based tests for the hardware substrate, driven by the vendored
//! [`SimRng`] instead of proptest so they run fully offline.
//!
//! Gated behind the off-by-default `heavy-tests` feature: these are the
//! slow, many-cases sweeps. The tier-1 offline gate (`ci.sh`) builds them
//! with `--all-features` clippy so they stay warning-clean, but only runs
//! them when asked (`cargo test --features heavy-tests`).
#![cfg(feature = "heavy-tests")]

use ow_simhw::{
    paging::{PageFault, VA_LIMIT},
    AccessKind, AddressSpace, Clock, CostModel, FrameAllocator, Mmu, PhysMem, Pte, PteFlags,
    SimRng, KERNEL_ASID, PAGE_SIZE,
};
use std::collections::{HashMap, HashSet};

const CASES: u64 = 64;

/// PTE pack/unpack is lossless for any frame number and flag set.
#[test]
fn pte_round_trip() {
    let mut rng = SimRng::seed_from_u64(0x907e_0001);
    for _ in 0..CASES * 4 {
        let pfn = rng.gen_range(0u64..(1 << 40));
        let flags = rng.gen_range(0u64..0x80);
        let pte = Pte::new(pfn, PteFlags::from_bits(flags));
        assert_eq!(pte.pfn(), pfn);
        assert_eq!(pte.flags().bits(), flags);
    }
}

/// Every allocated frame is unique and within range; freeing makes the
/// allocator reach its full capacity again.
#[test]
fn frame_allocator_never_double_allocates() {
    let mut rng = SimRng::seed_from_u64(0x907e_0002);
    for _ in 0..CASES {
        let base = rng.gen_range(0u64..100);
        let count = rng.gen_range(1usize..64);
        let nops = rng.gen_range(0usize..200);
        let mut fa = FrameAllocator::new(base, count);
        let mut live: Vec<u64> = Vec::new();
        let mut seen = HashSet::new();
        for _ in 0..nops {
            if rng.gen_bool(0.5) && !live.is_empty() {
                let f = live.pop().unwrap();
                fa.free(f);
                seen.remove(&f);
            } else if let Some(f) = fa.alloc() {
                assert!(fa.contains(f), "frame in range");
                assert!(seen.insert(f), "frame {f} double-allocated");
                live.push(f);
            }
        }
        assert_eq!(fa.allocated_frames(), live.len());
        for f in live.drain(..) {
            fa.free(f);
        }
        // Full capacity is reusable.
        for _ in 0..count {
            assert!(fa.alloc().is_some());
        }
        assert!(fa.alloc().is_none());
    }
}

/// The page-table walk agrees with a software map oracle under random
/// map/unmap sequences.
#[test]
fn page_walk_matches_oracle() {
    let mut rng = SimRng::seed_from_u64(0x907e_0003);
    for _ in 0..CASES {
        let mut phys = PhysMem::new(512);
        let mut fa = FrameAllocator::new(0, 512);
        let asp = AddressSpace::new(&mut phys, &mut fa).unwrap();
        let mut oracle: HashMap<u64, u64> = HashMap::new();
        let nops = rng.gen_range(1usize..80);
        for _ in 0..nops {
            let page = rng.gen_range(0u64..256);
            let unmap = rng.gen_bool(0.5);
            let pfn = rng.gen_range(1u64..512);
            // Spread pages across both levels of the table.
            let vaddr = (page % 16) * 0x20_0000 + (page / 16) * PAGE_SIZE as u64;
            if unmap {
                asp.unmap(&mut phys, vaddr).unwrap();
                oracle.remove(&vaddr);
            } else if asp
                .map(
                    &mut phys,
                    &mut fa,
                    vaddr,
                    pfn,
                    PteFlags::WRITABLE | PteFlags::USER,
                )
                .is_ok()
            {
                oracle.insert(vaddr, pfn);
            }
        }
        for (vaddr, pfn) in &oracle {
            let pte = asp.walk(&phys, *vaddr).unwrap();
            assert_eq!(pte.pfn(), *pfn);
        }
        // And nothing else is mapped.
        let mut mapped = 0;
        asp.for_each_mapped(&phys, |va, _| {
            assert!(oracle.contains_key(&va), "unexpected mapping at {va:#x}");
            mapped += 1;
        })
        .unwrap();
        assert_eq!(mapped, oracle.len());
    }
}

/// Physical memory behaves like a byte array (random read/write oracle).
#[test]
fn phys_mem_matches_byte_oracle() {
    let mut rng = SimRng::seed_from_u64(0x907e_0004);
    for _ in 0..CASES {
        let mut phys = PhysMem::new(2);
        let mut oracle = vec![0u8; 8192];
        let nwrites = rng.gen_range(0usize..200);
        for _ in 0..nwrites {
            let addr = rng.gen_range(0usize..8192);
            let v = rng.gen_range(0u32..256) as u8;
            phys.write_u8(addr as u64, v).unwrap();
            oracle[addr] = v;
        }
        let mut got = vec![0u8; 8192];
        phys.read(0, &mut got).unwrap();
        assert_eq!(got, oracle);
    }
}

/// The tagged TLB never serves a stale translation: on random traces of
/// map/unmap/remap (followed by the kernel's ranged-invalidation rule),
/// small-capacity ASID rollovers, and protected-style kernel enter/exit tag
/// switches, every translation through a tagged [`Mmu`] agrees exactly with
/// a flush-always oracle MMU that re-walks the page tables on every access.
#[test]
fn tagged_translation_matches_flush_always_oracle() {
    let mut rng = SimRng::seed_from_u64(0x907e_0006);
    let cost = CostModel::default();
    for case in 0..CASES {
        let mut phys = PhysMem::new(512);
        let mut fa = FrameAllocator::new(0, 512);
        // Capacity 3 = two allocatable user tags for three spaces, so the
        // round-robin below keeps recycling generations.
        let mut tagged = Mmu::with_asid_capacity(16, 3);
        let mut oracle = Mmu::new(16);
        let mut tclock = Clock::new();
        let mut oclock = Clock::new();
        let spaces: Vec<AddressSpace> = (0..3)
            .map(|_| AddressSpace::new(&mut phys, &mut fa).unwrap())
            .collect();
        let vaddr_of = |page: u64| (page % 8) * 0x20_0000 + (page / 8) * PAGE_SIZE as u64;
        let nops = rng.gen_range(40usize..120);
        for _ in 0..nops {
            let asp = spaces[rng.gen_range(0usize..spaces.len())];
            let page = rng.gen_range(0u64..24);
            let vaddr = vaddr_of(page);
            match rng.gen_range(0u32..8) {
                // Map or remap, then apply the ranged-invalidation rule the
                // kernel follows after any PTE rewrite.
                0 | 1 | 2 => {
                    let pfn = rng.gen_range(1u64..512);
                    let mut flags = PteFlags::USER;
                    if rng.gen_bool(0.75) {
                        flags |= PteFlags::WRITABLE;
                    }
                    if asp.pte(&phys, vaddr).unwrap().is_some() {
                        asp.unmap(&mut phys, vaddr).unwrap();
                    }
                    if asp.map(&mut phys, &mut fa, vaddr, pfn, flags).is_ok() {
                        tagged.invalidate_range(
                            &mut tclock,
                            &cost,
                            asp.root(),
                            vaddr,
                            PAGE_SIZE as u64,
                        );
                    }
                }
                // Unmap + invalidate.
                3 => {
                    asp.unmap(&mut phys, vaddr).unwrap();
                    tagged.invalidate_range(
                        &mut tclock,
                        &cost,
                        asp.root(),
                        vaddr,
                        PAGE_SIZE as u64,
                    );
                }
                // A protected-mode kernel excursion: tag switch to the
                // kernel-only set, kernel working set competes for slots,
                // tag switch back. No flush anywhere.
                4 => {
                    tagged.switch_asid(&mut tclock, &cost, KERNEL_ASID);
                    let pages = rng.gen_range(1u64..8);
                    tagged.touch_kernel(&mut tclock, &cost, VA_LIMIT >> 12, pages);
                    tagged.switch_to_space(&mut tclock, &cost, asp.root());
                }
                // Translate through both MMUs and demand identical results.
                _ => {
                    let kind = if rng.gen_bool(0.5) {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    };
                    oracle.flush(&mut oclock, &cost);
                    let want = oracle.access(&mut phys, &mut oclock, &cost, asp, vaddr, kind);
                    let got = tagged.access(&mut phys, &mut tclock, &cost, asp, vaddr, kind);
                    assert_eq!(
                        got, want,
                        "case {case}: stale translation at {vaddr:#x} ({kind:?})"
                    );
                }
            }
        }
        assert!(
            tagged.asid_generation() > 0,
            "case {case}: three spaces over two tags must roll the generation"
        );
        assert_eq!(tagged.stats().flushes, tagged.asid_generation());
    }
}

/// Out-of-space virtual addresses always fault, never alias.
#[test]
fn addresses_beyond_va_limit_fault() {
    let mut rng = SimRng::seed_from_u64(0x907e_0005);
    let mut phys = PhysMem::new(16);
    let mut fa = FrameAllocator::new(0, 16);
    let asp = AddressSpace::new(&mut phys, &mut fa).unwrap();
    for _ in 0..CASES * 4 {
        let off = rng.gen_range(0u64..(1 << 33));
        let vaddr = VA_LIMIT + off;
        assert_eq!(asp.walk(&phys, vaddr), Err(PageFault::OutOfSpace(vaddr)));
    }
}
