//! Property-based tests for the hardware substrate.
//!
//! Gated behind the off-by-default `heavy-tests` feature: proptest is not
//! vendored, so running these requires network access to fetch it (add
//! `proptest = "1"` back under `[dev-dependencies]` and enable the
//! feature). The tier-1 offline gate (`ci.sh`) builds with the feature
//! off, which compiles this file down to nothing.
#![cfg(feature = "heavy-tests")]

use ow_simhw::{
    paging::{PageFault, VA_LIMIT},
    AddressSpace, FrameAllocator, PhysMem, Pte, PteFlags, PAGE_SIZE,
};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

proptest! {
    /// PTE pack/unpack is lossless for any frame number and flag set.
    #[test]
    fn pte_round_trip(pfn in 0u64..(1 << 40), flags in 0u64..0x80) {
        let pte = Pte::new(pfn, PteFlags::from_bits(flags));
        prop_assert_eq!(pte.pfn(), pfn);
        prop_assert_eq!(pte.flags().bits(), flags);
    }

    /// Every allocated frame is unique and within range; freeing makes the
    /// allocator reach its full capacity again.
    #[test]
    fn frame_allocator_never_double_allocates(
        base in 0u64..100,
        count in 1usize..64,
        ops in prop::collection::vec(any::<bool>(), 0..200),
    ) {
        let mut fa = FrameAllocator::new(base, count);
        let mut live: Vec<u64> = Vec::new();
        let mut seen = HashSet::new();
        for free_op in ops {
            if free_op && !live.is_empty() {
                let f = live.pop().unwrap();
                fa.free(f);
                seen.remove(&f);
            } else if let Some(f) = fa.alloc() {
                prop_assert!(fa.contains(f), "frame in range");
                prop_assert!(seen.insert(f), "frame {f} double-allocated");
                live.push(f);
            }
        }
        prop_assert_eq!(fa.allocated_frames(), live.len());
        for f in live.drain(..) {
            fa.free(f);
        }
        // Full capacity is reusable.
        for _ in 0..count {
            prop_assert!(fa.alloc().is_some());
        }
        prop_assert!(fa.alloc().is_none());
    }

    /// The page-table walk agrees with a software map oracle under random
    /// map/unmap sequences.
    #[test]
    fn page_walk_matches_oracle(
        ops in prop::collection::vec(
            (0u64..256, any::<bool>(), 1u64..512),
            1..80
        ),
    ) {
        let mut phys = PhysMem::new(512);
        let mut fa = FrameAllocator::new(0, 512);
        let asp = AddressSpace::new(&mut phys, &mut fa).unwrap();
        let mut oracle: HashMap<u64, u64> = HashMap::new();
        for (page, unmap, pfn) in ops {
            // Spread pages across both levels of the table.
            let vaddr = (page % 16) * 0x20_0000 + (page / 16) * PAGE_SIZE as u64;
            if unmap {
                asp.unmap(&mut phys, vaddr).unwrap();
                oracle.remove(&vaddr);
            } else if asp
                .map(&mut phys, &mut fa, vaddr, pfn, PteFlags::WRITABLE | PteFlags::USER)
                .is_ok()
            {
                oracle.insert(vaddr, pfn);
            }
        }
        for (vaddr, pfn) in &oracle {
            let pte = asp.walk(&phys, *vaddr).unwrap();
            prop_assert_eq!(pte.pfn(), *pfn);
        }
        // And nothing else is mapped.
        let mut mapped = 0;
        asp.for_each_mapped(&phys, |va, _| {
            assert!(oracle.contains_key(&va), "unexpected mapping at {va:#x}");
            mapped += 1;
        })
        .unwrap();
        prop_assert_eq!(mapped, oracle.len());
    }

    /// Physical memory behaves like a byte array (random read/write oracle).
    #[test]
    fn phys_mem_matches_byte_oracle(
        writes in prop::collection::vec((0usize..8192, any::<u8>()), 0..200),
    ) {
        let mut phys = PhysMem::new(2);
        let mut oracle = vec![0u8; 8192];
        for (addr, v) in writes {
            phys.write_u8(addr as u64, v).unwrap();
            oracle[addr] = v;
        }
        let mut got = vec![0u8; 8192];
        phys.read(0, &mut got).unwrap();
        prop_assert_eq!(got, oracle);
    }

    /// Out-of-space virtual addresses always fault, never alias.
    #[test]
    fn addresses_beyond_va_limit_fault(off in 0u64..(1 << 33)) {
        let mut phys = PhysMem::new(16);
        let mut fa = FrameAllocator::new(0, 16);
        let asp = AddressSpace::new(&mut phys, &mut fa).unwrap();
        let vaddr = VA_LIMIT + off;
        prop_assert_eq!(asp.walk(&phys, vaddr), Err(PageFault::OutOfSpace(vaddr)));
    }
}
