//! Behavioural tests over the kernel substrate: terminals, the page cache,
//! demand paging and swap pressure, syscall restart semantics, memory
//! reclamation after process exit, and morphing.

use ow_kernel::layout::{oflags, TERM_COLS, TERM_ROWS};
use ow_kernel::program::{Program, ProgramRegistry, StepResult, UserApi};
use ow_kernel::{Errno, Kernel, KernelConfig, PanicCause, SpawnSpec, PROG_STATE_VADDR};
use ow_simhw::machine::MachineConfig;

struct Nop;

impl Program for Nop {
    fn step(&mut self, api: &mut dyn UserApi) -> StepResult {
        api.compute(1);
        StepResult::Running
    }
    fn save_state(&mut self, _api: &mut dyn UserApi) {}
}

/// A program that exits after N steps.
struct ExitAfter(u64);

impl Program for ExitAfter {
    fn step(&mut self, api: &mut dyn UserApi) -> StepResult {
        api.compute(1);
        self.0 -= 1;
        if self.0 == 0 {
            StepResult::Exited(7)
        } else {
            StepResult::Running
        }
    }
    fn save_state(&mut self, _api: &mut dyn UserApi) {}
}

fn boot() -> Kernel {
    let machine = ow_kernel::standard_machine(MachineConfig {
        ram_frames: 4096,
        cpus: 2,
        tlb_entries: 64,
        tlb_tagged: true,
        cost: ow_simhw::CostModel::zero_io(),
    });
    Kernel::boot_cold(machine, KernelConfig::default(), ProgramRegistry::new()).unwrap()
}

#[test]
fn terminal_scrolls_when_full() {
    let mut k = boot();
    let t = k.create_terminal().unwrap();
    // Fill every row plus one more line.
    for i in 0..TERM_ROWS + 1 {
        let line = format!("line{i:02}");
        k.term_write(t, line.as_bytes()).unwrap();
        k.term_write(t, b"\n").unwrap();
    }
    let screen = k.term_screen(t).unwrap();
    let row0: String = screen[..6].iter().map(|&b| b as char).collect();
    // 26 lines plus the trailing newline scroll the first two lines off.
    assert_eq!(row0, "line02");
    let last_full: String = screen[(TERM_ROWS as usize - 2) * TERM_COLS as usize..][..6]
        .iter()
        .map(|&b| b as char)
        .collect();
    assert_eq!(last_full, "line25");
}

#[test]
fn terminal_carriage_return_and_backspace() {
    let mut k = boot();
    let t = k.create_terminal().unwrap();
    k.term_write(t, b"abc\rX").unwrap();
    let screen = k.term_screen(t).unwrap();
    assert_eq!(&screen[..3], b"Xbc");
    k.term_write(t, &[0x08, 0x08]).unwrap();
    k.term_write(t, b"Z").unwrap();
    let screen = k.term_screen(t).unwrap();
    assert_eq!(&screen[..3], b"Zbc", "backspace moved the cursor back");
}

#[test]
fn page_cache_read_after_write_before_flush() {
    let mut k = boot();
    let pid = k.spawn(SpawnSpec::new("nop", Box::new(Nop))).unwrap();
    let fd = k
        .file_open(pid, "/f", oflags::WRITE | oflags::READ | oflags::CREATE)
        .unwrap();
    k.file_write(pid, fd, b"cached!").unwrap();
    // Nothing flushed yet; reads must come from the cache.
    k.file_seek(pid, fd, 0).unwrap();
    let mut buf = [0u8; 7];
    assert_eq!(k.file_read(pid, fd, &mut buf).unwrap(), 7);
    assert_eq!(&buf, b"cached!");
    // The on-disk file is still empty until fsync.
    let fs = k.fs.clone();
    let ino = fs.lookup(&mut k.machine, "/f").unwrap().unwrap();
    assert_eq!(fs.size_of(&mut k.machine, ino).unwrap(), 0);
    k.file_fsync(pid, fd).unwrap();
    assert_eq!(fs.size_of(&mut k.machine, ino).unwrap(), 7);
}

#[test]
fn append_mode_appends_across_opens() {
    let mut k = boot();
    let pid = k.spawn(SpawnSpec::new("nop", Box::new(Nop))).unwrap();
    for chunk in [b"one".as_slice(), b"two".as_slice()] {
        let fd = k
            .file_open(pid, "/log", oflags::WRITE | oflags::CREATE | oflags::APPEND)
            .unwrap();
        k.file_write(pid, fd, chunk).unwrap();
        k.file_close(pid, fd).unwrap();
    }
    let fd = k.file_open(pid, "/log", oflags::READ).unwrap();
    let mut buf = [0u8; 6];
    k.file_read(pid, fd, &mut buf).unwrap();
    assert_eq!(&buf, b"onetwo");
}

#[test]
fn demand_paging_materializes_only_touched_pages() {
    let mut k = boot();
    let mut spec = SpawnSpec::new("nop", Box::new(Nop));
    spec.heap_pages = 64;
    let pid = k.spawn(spec).unwrap();
    let (present0, _) = k.page_census(pid).unwrap();
    assert_eq!(present0, 0, "nothing mapped before first touch");
    k.user_write(pid, PROG_STATE_VADDR, b"x").unwrap();
    k.user_write(pid, PROG_STATE_VADDR + 5 * 4096, b"y")
        .unwrap();
    let (present, _) = k.page_census(pid).unwrap();
    assert_eq!(present, 2);
}

#[test]
fn out_of_vma_access_is_a_fault() {
    let mut k = boot();
    let pid = k.spawn(SpawnSpec::new("nop", Box::new(Nop))).unwrap();
    // Far beyond any VMA (between heap and stack).
    let r = k.user_write(pid, 0x2000_0000, b"segv");
    assert!(r.is_err());
}

#[test]
fn swap_pressure_and_faulting_back() {
    let mut k = boot();
    let pid = k.spawn(SpawnSpec::new("nop", Box::new(Nop))).unwrap();
    for p in 0..8u64 {
        k.user_write(pid, PROG_STATE_VADDR + p * 4096, &p.to_le_bytes())
            .unwrap();
    }
    let evicted = k.swap_out_pages(pid, 8).unwrap();
    assert_eq!(evicted, 8);
    let (present, swapped) = k.page_census(pid).unwrap();
    assert_eq!((present, swapped), (0, 8));
    // Touching pages faults them back in with contents intact.
    for p in 0..8u64 {
        let mut b = [0u8; 8];
        k.user_read(pid, PROG_STATE_VADDR + p * 4096, &mut b)
            .unwrap();
        assert_eq!(u64::from_le_bytes(b), p);
    }
    let (present, swapped) = k.page_census(pid).unwrap();
    assert_eq!((present, swapped), (8, 0));
}

#[test]
fn exited_process_frees_its_memory() {
    let mut k = boot();
    let free_before = k.falloc.free_frames();
    let pid = k
        .spawn(SpawnSpec::new("die", Box::new(ExitAfter(3))))
        .unwrap();
    k.user_write(pid, PROG_STATE_VADDR, &[1u8; 4096]).unwrap();
    for _ in 0..5 {
        k.run_step();
    }
    assert!(k.procs.is_empty(), "process reaped after exit");
    assert_eq!(
        k.falloc.free_frames(),
        free_before,
        "all frames (pages + tables) must be returned"
    );
    assert!(k.kheap.is_empty() || k.kheap.allocated_bytes() > 0); // heap has kernel tables
}

#[test]
fn run_until_stops_on_predicate() {
    let mut k = boot();
    k.spawn(SpawnSpec::new("die", Box::new(ExitAfter(10))))
        .unwrap();
    let steps = k.run_until(100, |k| k.procs.is_empty());
    assert!(steps <= 10);
    assert!(k.procs.is_empty());
}

#[test]
fn morph_reclaims_dead_kernel_memory() {
    let mut k = boot();
    k.spawn(SpawnSpec::new("nop", Box::new(Nop))).unwrap();
    k.do_panic(PanicCause::Oops("morph test"));
    let info = match k.panicked.clone().unwrap() {
        ow_kernel::PanicOutcome::Handoff(i) => i,
        other => panic!("{other:?}"),
    };
    let machine = k.machine;
    let mut k2 = Kernel::boot_crash(
        machine,
        KernelConfig::default(),
        ProgramRegistry::new(),
        info,
    )
    .unwrap();
    // Before morphing: confined to the old crash reservation.
    let confined = k2.falloc.capacity();
    k2.morph_into_main().unwrap();
    assert!(
        k2.falloc.capacity() > confined * 2,
        "morph must adopt (far) more memory than the reservation"
    );
    // A fresh crash kernel is installed and the panic path works again.
    assert!(k2.crash_region.is_some());
    let out = k2.do_panic(PanicCause::Oops("second"));
    assert!(matches!(out, ow_kernel::PanicOutcome::Handoff(_)));
}

/// A program that exercises the ERESTART convention.
struct RestartProbe;

const SAW_RESTART: u64 = PROG_STATE_VADDR + 8;

impl Program for RestartProbe {
    fn step(&mut self, api: &mut dyn UserApi) -> StepResult {
        match api.open("/probe", oflags::CREATE | oflags::WRITE) {
            Ok(fd) => {
                let _ = api.close(fd);
            }
            Err(Errno::Restart) => {
                let _ = api.mem_write_u64(SAW_RESTART, 1);
            }
            Err(_) => {}
        }
        StepResult::Running
    }
    fn save_state(&mut self, _api: &mut dyn UserApi) {}
}

#[test]
fn deliver_restart_aborts_exactly_one_syscall() {
    let mut k = boot();
    let pid = k
        .spawn(SpawnSpec::new("probe", Box::new(RestartProbe)))
        .unwrap();
    k.proc_mut(pid).unwrap().deliver_restart = true;
    k.run_step();
    let mut b = [0u8; 8];
    k.user_read(pid, SAW_RESTART, &mut b).unwrap();
    assert_eq!(u64::from_le_bytes(b), 1, "first syscall saw ERESTART");
    // The flag is consumed: the next step's syscall succeeds.
    k.user_write(pid, SAW_RESTART, &0u64.to_le_bytes()).unwrap();
    k.run_step();
    k.user_read(pid, SAW_RESTART, &mut b).unwrap();
    assert_eq!(u64::from_le_bytes(b), 0, "second syscall ran normally");
}

#[test]
fn fd_exhaustion_reports_emfile() {
    let mut k = boot();
    let pid = k.spawn(SpawnSpec::new("nop", Box::new(Nop))).unwrap();
    for i in 0..ow_kernel::layout::MAX_FDS {
        k.file_open(pid, &format!("/f{i}"), oflags::CREATE | oflags::WRITE)
            .unwrap();
    }
    let err = k
        .file_open(pid, "/onemore", oflags::CREATE | oflags::WRITE)
        .unwrap_err();
    assert!(matches!(err, ow_kernel::KernelError::TooMany(_)));
}

#[test]
fn shm_is_shared_between_processes() {
    let mut k = boot();
    let a = k.spawn(SpawnSpec::new("a", Box::new(Nop))).unwrap();
    let b = k.spawn(SpawnSpec::new("b", Box::new(Nop))).unwrap();
    let va = 0x40_0000;
    k.shm_attach(a, 0x5e55, 2, va).unwrap();
    k.shm_attach(b, 0x5e55, 2, va).unwrap();
    k.user_write(a, va + 100, b"shared").unwrap();
    let mut buf = [0u8; 6];
    k.user_read(b, va + 100, &mut buf).unwrap();
    assert_eq!(&buf, b"shared");
}

#[test]
fn reap_frees_socket_resources() {
    let mut k = boot();
    let free_frames = k.falloc.free_frames();
    let heap = k.kheap.allocated_bytes();
    let pid = k
        .spawn(SpawnSpec::new("s", Box::new(ExitAfter(2))))
        .unwrap();
    let s0 = k.sock_open(pid).unwrap();
    k.sock_open(pid).unwrap();
    k.sock_send(pid, s0, b"payload").unwrap();
    k.sock_close(pid, s0).unwrap();
    for _ in 0..3 {
        k.run_step();
    }
    assert!(k.procs.is_empty());
    assert_eq!(
        k.falloc.free_frames(),
        free_frames,
        "outbuf frames returned"
    );
    assert_eq!(
        k.kheap.allocated_bytes(),
        heap,
        "socket descriptors returned"
    );
}
