//! Property-based tests for the kernel substrate: structure layouts,
//! the kernel heap and the filesystem — driven by the vendored [`SimRng`]
//! instead of proptest so they run fully offline.
//!
//! Gated behind the off-by-default `heavy-tests` feature: these are the
//! slow, many-cases sweeps. The tier-1 offline gate (`ci.sh`) builds them
//! with `--all-features` clippy so they stay warning-clean, but only runs
//! them when asked (`cargo test --features heavy-tests`).
#![cfg(feature = "heavy-tests")]

use ow_kernel::fs::Fs;
use ow_kernel::kheap::KHeap;
use ow_kernel::layout::{
    pack_str, unpack_str, FileRecord, ProcDesc, Record, SigTable, SwapDesc, VmaDesc, NSIG,
};
use ow_simhw::{machine::MachineConfig, Machine, PhysMem, SimRng};
use std::collections::HashMap;

const CASES: u64 = 64;

fn gen_name(rng: &mut SimRng, max: usize, alphabet: &[u8]) -> String {
    let len = rng.gen_range(1usize..=max);
    (0..len)
        .map(|_| alphabet[rng.gen_range(0usize..alphabet.len())] as char)
        .collect()
}

const NAME_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_/.-";

/// ProcDesc serialization is lossless for arbitrary plausible values.
#[test]
fn proc_desc_round_trips() {
    let mut rng = SimRng::seed_from_u64(0x6e51_0001);
    for _ in 0..CASES {
        let mut phys = PhysMem::new(64);
        let ptrs: Vec<u64> = (0..5).map(|_| rng.gen_range(0u64..0x4_0000)).collect();
        let regs: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        let desc = ProcDesc {
            pid: rng.next_u64(),
            state: rng.gen_range(1u32..=3),
            name: gen_name(&mut rng, 24, NAME_CHARS),
            crash_proc: rng.gen_range(0u32..2),
            page_root: rng.gen_range(0u64..64),
            mm_head: ptrs[0],
            files: ptrs[1],
            sig: ptrs[2],
            term_id: u32::MAX,
            shm_head: ptrs[3],
            sock_head: 0,
            res_in_use: rng.next_u64() as u32,
            in_syscall: rng.next_u64() as u32,
            saved_pc: rng.next_u64(),
            saved_sp: ptrs[4],
            saved_regs: regs.try_into().unwrap(),
            checksum: 0,
            next: 0,
        };
        desc.write(&mut phys, 0x8000).unwrap();
        let (got, consumed) = ProcDesc::read(&phys, 0x8000).unwrap();
        assert_eq!(got, desc);
        assert_eq!(consumed, ProcDesc::SIZE);
    }
}

/// Any single corrupted byte in a magic field is detected.
#[test]
fn corrupted_magic_never_parses() {
    let mut rng = SimRng::seed_from_u64(0x6e51_0002);
    for _ in 0..CASES * 4 {
        let mask = rng.gen_range(1u32..=0xff);
        let shift = rng.gen_range(0u32..4);
        let mut phys = PhysMem::new(16);
        let vma = VmaDesc {
            start: 0x1000,
            end: 0x3000,
            flags: 3,
            file: 0,
            file_off: 0,
            next: 0,
        };
        vma.write(&mut phys, 0x2000).unwrap();
        let old = phys.read_u32(0x2000).unwrap();
        phys.write_u32(0x2000, old ^ (mask << (shift * 8))).unwrap();
        assert!(VmaDesc::read(&phys, 0x2000).is_err());
    }
}

/// File records round-trip including path strings.
#[test]
fn file_record_round_trips() {
    let mut rng = SimRng::seed_from_u64(0x6e51_0003);
    for _ in 0..CASES {
        let mut phys = PhysMem::new(16);
        let rec = FileRecord {
            flags: rng.next_u64() as u32,
            refcnt: 1,
            offset: rng.next_u64(),
            fsize: rng.next_u64(),
            inode: rng.next_u64(),
            path: gen_name(&mut rng, 24, NAME_CHARS),
            cache_head: rng.gen_range(0u64..0x1_0000),
        };
        rec.write(&mut phys, 0x4000).unwrap();
        let (got, _) = FileRecord::read(&phys, 0x4000).unwrap();
        assert_eq!(got, rec);
    }
}

/// Signal tables and swap descriptors round-trip.
#[test]
fn sig_and_swap_round_trip() {
    let mut rng = SimRng::seed_from_u64(0x6e51_0004);
    for _ in 0..CASES {
        let mut phys = PhysMem::new(16);
        let handlers: Vec<u64> = (0..NSIG).map(|_| rng.next_u64()).collect();
        let sig = SigTable {
            handlers: handlers.try_into().unwrap(),
        };
        sig.write(&mut phys, 0x1000).unwrap();
        assert_eq!(SigTable::read(&phys, 0x1000).unwrap().0, sig);

        let swap = SwapDesc {
            dev_name: gen_name(&mut rng, 12, b"abcdefghijklmnopqrstuvwxyz0123456789-"),
            dev_id: rng.next_u64() as u32,
            nslots: rng.gen_range(1u32..(1 << 20)),
            bitmap: 0x9000,
        };
        swap.write(&mut phys, 0x2000).unwrap();
        assert_eq!(SwapDesc::read(&phys, 0x2000).unwrap().0, swap);
    }
}

/// String pack/unpack is identity for strings that fit.
#[test]
fn strings_pack_losslessly() {
    let mut rng = SimRng::seed_from_u64(0x6e51_0005);
    let printable: Vec<u8> = (0x20u8..0x7f).collect();
    for _ in 0..CASES * 4 {
        let len = rng.gen_range(0usize..32);
        let s: String = (0..len)
            .map(|_| printable[rng.gen_range(0usize..printable.len())] as char)
            .collect();
        let packed = pack_str::<32>(&s);
        assert_eq!(unpack_str(&packed), s);
    }
}

/// Kernel heap allocations never overlap, and freeing everything
/// restores full capacity.
#[test]
fn kheap_allocations_never_overlap() {
    let mut rng = SimRng::seed_from_u64(0x6e51_0006);
    for _ in 0..CASES {
        let mut h = KHeap::new(0x1_0000, 0x4000);
        let mut live: Vec<(u64, u64)> = Vec::new();
        let nallocs = rng.gen_range(1usize..50);
        for _ in 0..nallocs {
            let size = rng.gen_range(1u64..200);
            if let Some(addr) = h.alloc(size) {
                for &(a, s) in &live {
                    let s_round = s.max(1).div_ceil(8) * 8;
                    let sz_round = size.max(1).div_ceil(8) * 8;
                    assert!(
                        addr + sz_round <= a || a + s_round <= addr,
                        "overlap: {addr:#x}+{size} with {a:#x}+{s}"
                    );
                }
                live.push((addr, size));
            }
        }
        for (a, s) in live.drain(..) {
            h.free(a, s);
        }
        assert!(h.is_empty());
        assert!(h.alloc(0x4000).is_some(), "coalesced back to one block");
    }
}

/// The filesystem agrees with an in-memory byte-map oracle under random
/// writes and reads.
#[test]
fn fs_matches_oracle() {
    let mut rng = SimRng::seed_from_u64(0x6e51_0007);
    for _ in 0..CASES / 2 {
        let mut m = Machine::new(MachineConfig {
            ram_frames: 64,
            cpus: 1,
            tlb_entries: 16,
            tlb_tagged: true,
            cost: ow_simhw::CostModel::zero_io(),
        });
        let dev = m.add_device("sda", 4 * 1024 * 1024);
        let fs = Fs::format(&mut m, dev, 16).unwrap();
        let ino = fs.create(&mut m, "/oracle").unwrap();
        let mut oracle: HashMap<u64, u8> = HashMap::new();
        let mut max_end = 0u64;
        let nops = rng.gen_range(1usize..20);
        for _ in 0..nops {
            let off = rng.gen_range(0u64..40_000);
            let len = rng.gen_range(1usize..500);
            let data: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            fs.write_at(&mut m, ino, off, &data).unwrap();
            for (i, b) in data.iter().enumerate() {
                oracle.insert(off + i as u64, *b);
            }
            max_end = max_end.max(off + data.len() as u64);
        }
        assert_eq!(fs.size_of(&mut m, ino).unwrap(), max_end);
        let mut buf = vec![0u8; max_end as usize];
        fs.read_at(&mut m, ino, 0, &mut buf).unwrap();
        for (i, b) in buf.iter().enumerate() {
            let want = oracle.get(&(i as u64)).copied().unwrap_or(0);
            assert_eq!(*b, want, "byte {i}");
        }
    }
}
