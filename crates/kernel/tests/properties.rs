//! Property-based tests for the kernel substrate: structure layouts,
//! the kernel heap and the filesystem.
//!
//! Gated behind the off-by-default `heavy-tests` feature: proptest is not
//! vendored, so running these requires network access to fetch it (add
//! `proptest = "1"` back under `[dev-dependencies]` and enable the
//! feature). The tier-1 offline gate (`ci.sh`) builds with the feature
//! off, which compiles this file down to nothing.
#![cfg(feature = "heavy-tests")]

use ow_kernel::fs::Fs;
use ow_kernel::kheap::KHeap;
use ow_kernel::layout::{
    pack_str, unpack_str, FileRecord, ProcDesc, SigTable, SwapDesc, VmaDesc, NSIG,
};
use ow_simhw::{machine::MachineConfig, Machine, PhysMem};
use proptest::prelude::*;
use std::collections::HashMap;

fn name_strategy() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9_/.-]{1,24}"
}

proptest! {
    /// ProcDesc serialization is lossless for arbitrary plausible values.
    #[test]
    fn proc_desc_round_trips(
        pid in any::<u64>(),
        state in 1u32..=3,
        name in name_strategy(),
        crash_proc in 0u32..2,
        page_root in 0u64..64,
        ptrs in prop::collection::vec(0u64..0x4_0000, 5),
        res in any::<u32>(),
        in_syscall in any::<u32>(),
        pc in any::<u64>(),
        regs in prop::collection::vec(any::<u64>(), 8),
    ) {
        let mut phys = PhysMem::new(64);
        let desc = ProcDesc {
            pid,
            state,
            name: name.clone(),
            crash_proc,
            page_root,
            mm_head: ptrs[0],
            files: ptrs[1],
            sig: ptrs[2],
            term_id: u32::MAX,
            shm_head: ptrs[3],
            sock_head: 0,
            res_in_use: res,
            in_syscall,
            saved_pc: pc,
            saved_sp: ptrs[4],
            saved_regs: regs.clone().try_into().unwrap(),
            checksum: 0,
            next: 0,
        };
        desc.write(&mut phys, 0x8000).unwrap();
        let (got, consumed) = ProcDesc::read(&phys, 0x8000).unwrap();
        prop_assert_eq!(got, desc);
        prop_assert_eq!(consumed, ProcDesc::SIZE);
    }

    /// Any single corrupted byte in a magic field is detected.
    #[test]
    fn corrupted_magic_never_parses(mask in 1u32..=0xff, shift in 0u32..4) {
        let mut phys = PhysMem::new(16);
        let vma = VmaDesc { start: 0x1000, end: 0x3000, flags: 3, file: 0, file_off: 0, next: 0 };
        vma.write(&mut phys, 0x2000).unwrap();
        let old = phys.read_u32(0x2000).unwrap();
        phys.write_u32(0x2000, old ^ (mask << (shift * 8))).unwrap();
        prop_assert!(VmaDesc::read(&phys, 0x2000).is_err());
    }

    /// File records round-trip including path strings.
    #[test]
    fn file_record_round_trips(
        flags in any::<u32>(),
        offset in any::<u64>(),
        fsize in any::<u64>(),
        inode in any::<u64>(),
        path in name_strategy(),
        cache in 0u64..0x1_0000,
    ) {
        let mut phys = PhysMem::new(16);
        let rec = FileRecord {
            flags,
            refcnt: 1,
            offset,
            fsize,
            inode,
            path: path.clone(),
            cache_head: cache,
        };
        rec.write(&mut phys, 0x4000).unwrap();
        let (got, _) = FileRecord::read(&phys, 0x4000).unwrap();
        prop_assert_eq!(got, rec);
    }

    /// Signal tables and swap descriptors round-trip.
    #[test]
    fn sig_and_swap_round_trip(
        handlers in prop::collection::vec(any::<u64>(), NSIG),
        dev in any::<u32>(),
        nslots in 1u32..(1 << 20),
        name in "[a-z0-9-]{1,12}",
    ) {
        let mut phys = PhysMem::new(16);
        let sig = SigTable { handlers: handlers.try_into().unwrap() };
        sig.write(&mut phys, 0x1000).unwrap();
        prop_assert_eq!(SigTable::read(&phys, 0x1000).unwrap().0, sig);

        let swap = SwapDesc { dev_name: name, dev_id: dev, nslots, bitmap: 0x9000 };
        swap.write(&mut phys, 0x2000).unwrap();
        prop_assert_eq!(SwapDesc::read(&phys, 0x2000).unwrap().0, swap);
    }

    /// String pack/unpack is identity for strings that fit.
    #[test]
    fn strings_pack_losslessly(s in "[ -~]{0,31}") {
        let packed = pack_str::<32>(&s);
        prop_assert_eq!(unpack_str(&packed), s);
    }

    /// Kernel heap allocations never overlap, and freeing everything
    /// restores full capacity.
    #[test]
    fn kheap_allocations_never_overlap(
        sizes in prop::collection::vec(1u64..200, 1..50),
    ) {
        let mut h = KHeap::new(0x1_0000, 0x4000);
        let mut live: Vec<(u64, u64)> = Vec::new();
        for size in sizes {
            if let Some(addr) = h.alloc(size) {
                for &(a, s) in &live {
                    let s_round = s.max(1).div_ceil(8) * 8;
                    let sz_round = size.max(1).div_ceil(8) * 8;
                    prop_assert!(
                        addr + sz_round <= a || a + s_round <= addr,
                        "overlap: {addr:#x}+{size} with {a:#x}+{s}"
                    );
                }
                live.push((addr, size));
            }
        }
        for (a, s) in live.drain(..) {
            h.free(a, s);
        }
        prop_assert!(h.is_empty());
        prop_assert!(h.alloc(0x4000).is_some(), "coalesced back to one block");
    }

    /// The filesystem agrees with an in-memory byte-map oracle under random
    /// writes and reads.
    #[test]
    fn fs_matches_oracle(
        ops in prop::collection::vec(
            (0u64..40_000, prop::collection::vec(any::<u8>(), 1..500)),
            1..20
        ),
    ) {
        let mut m = Machine::new(MachineConfig {
            ram_frames: 64,
            cpus: 1,
            tlb_entries: 16,
            cost: ow_simhw::CostModel::zero_io(),
        });
        let dev = m.add_device("sda", 4 * 1024 * 1024);
        let fs = Fs::format(&mut m, dev, 16).unwrap();
        let ino = fs.create(&mut m, "/oracle").unwrap();
        let mut oracle: HashMap<u64, u8> = HashMap::new();
        let mut max_end = 0u64;
        for (off, data) in &ops {
            fs.write_at(&mut m, ino, *off, data).unwrap();
            for (i, b) in data.iter().enumerate() {
                oracle.insert(off + i as u64, *b);
            }
            max_end = max_end.max(off + data.len() as u64);
        }
        prop_assert_eq!(fs.size_of(&mut m, ino).unwrap(), max_end);
        let mut buf = vec![0u8; max_end as usize];
        fs.read_at(&mut m, ino, 0, &mut buf).unwrap();
        for (i, b) in buf.iter().enumerate() {
            let want = oracle.get(&(i as u64)).copied().unwrap_or(0);
            prop_assert_eq!(*b, want, "byte {}", i);
        }
    }
}
