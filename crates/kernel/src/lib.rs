//! A miniature monolithic OS kernel whose resurrection-relevant state lives
//! in simulated physical memory.
//!
//! This crate is the substrate the Otherworld reproduction runs on: the
//! analog of Linux 2.6.18 in the paper. It provides processes (with
//! descriptors, VMAs, page tables, saved contexts), demand paging and two
//! swap partitions, an on-disk filesystem with a dirty page cache, physical
//! terminals, signals, shared memory, sockets/pipes (deliberately not
//! resurrectable, as in the paper's prototype), a syscall layer with the
//! optional memory-protected mode (§4), the KDump-style crash-kernel
//! reservation, and the panic/handoff path (§3.2).
//!
//! The companion crate `ow-core` implements Otherworld itself on top: the
//! crash-kernel boot, the resurrection engine, crash procedures and
//! morphing.

#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod error;
pub mod fs;
pub mod ipc;
pub mod kernel;
pub mod kexec;
pub mod kheap;
pub mod layout;
pub mod pagecache;
pub mod panic;
pub mod program;
pub mod swap;
pub mod syscall;
pub mod term;
pub mod uprotect;
pub mod vm;

pub use error::{Errno, KernelError, SysResult};
pub use kernel::{
    BootCosts, HandoffInfo, Kernel, KernelConfig, PanicCause, PanicOutcome, PendingFault,
    ProcHandle, RobustnessFixes, RunEvent, SpawnSpec,
};
pub use program::{CrashAction, Program, ProgramRegistry, StepResult, UserApi, PROG_STATE_VADDR};

/// Convenient result alias for kernel-internal operations.
pub type KernelResult<T> = Result<T, error::KernelError>;

/// Builds a [`ow_simhw::Machine`] with the standard device complement the
/// kernel expects: a root disk `sda` and two swap partitions.
pub fn standard_machine(config: ow_simhw::machine::MachineConfig) -> ow_simhw::Machine {
    let mut m = ow_simhw::Machine::new(config);
    m.add_device("sda", 8 * 1024 * 1024);
    m.add_device("swap0", 4 * 1024 * 1024);
    m.add_device("swap1", 4 * 1024 * 1024);
    m
}
