//! The memory-protected mode's page-table switching (§4).
//!
//! When `user_protection` is on, user space is unmapped while the kernel
//! runs: every syscall entry switches to the kernel-only page-table set
//! (and back on exit). On untagged hardware each switch implies a full TLB
//! flush — the source of Table 3's overhead. On tagged hardware
//! (ASID/PCID, the default) the switch is a tag-register write: user
//! translations stay resident across the kernel excursion and the flush
//! leaves the syscall hot path entirely. The remaining tagged-mode cost is
//! that the kernel-only set forfeits global pages — its working set is
//! just another tagged space competing for TLB slots, modeled by
//! [`ow_simhw::Mmu::touch_kernel`] on every entry.
//!
//! Switches are counted twice over — in the host-side `pt_switches`
//! diagnostic and in the crash-surviving [`Counter::PtSwitches`] metrics
//! slot (tag switches additionally in [`Counter::AsidSwitches`]).

use crate::kernel::Kernel;
use ow_simhw::KERNEL_ASID;
use ow_trace::{Counter, EventKind};

/// First kernel virtual page number: the page right above the 1 GiB user
/// space, where the kernel image begins.
const KERNEL_WS_VPN_BASE: u64 = ow_simhw::paging::VA_LIMIT >> 12;

/// Pages of kernel text/data the syscall path touches under
/// [`KERNEL_ASID`] per entry. Only the protected tagged mode pays for
/// these: unprotected kernels keep them in global TLB entries that never
/// compete with user translations.
const KERNEL_WS_PAGES: u64 = 6;

impl Kernel {
    /// Syscall-entry half of the protected mode: switch to the kernel-only
    /// page-table set. Tagged hardware retargets the ASID register and
    /// walks the kernel working set in; untagged hardware pays the full
    /// TLB flush. No-op when protection is disabled.
    pub fn protection_enter(&mut self) {
        if !self.config.user_protection {
            return;
        }
        let tagged = self.machine.tlb_tagged;
        {
            let m = &mut self.machine;
            m.clock.charge(m.cost.pt_switch);
            if tagged {
                m.mmu.switch_asid(&mut m.clock, &m.cost, KERNEL_ASID);
                m.mmu
                    .touch_kernel(&mut m.clock, &m.cost, KERNEL_WS_VPN_BASE, KERNEL_WS_PAGES);
            } else {
                m.mmu.flush(&mut m.clock, &m.cost);
            }
        }
        self.note_pt_switch(tagged);
    }

    /// Syscall-exit half: switch back to `pid`'s page-table set. Tagged
    /// hardware re-resolves the process's ASID (user translations installed
    /// before the call are still resident under it); untagged hardware
    /// flushes again.
    pub fn protection_exit(&mut self, pid: u64) {
        if !self.config.user_protection {
            return;
        }
        let tagged = self.machine.tlb_tagged;
        let root = self.proc(pid).map(|p| p.asp.root()).ok();
        {
            let m = &mut self.machine;
            m.clock.charge(m.cost.pt_switch);
            if tagged {
                match root {
                    Some(root) => {
                        m.mmu.switch_to_space(&mut m.clock, &m.cost, root);
                    }
                    // Process gone mid-call (e.g. torn down by a restart):
                    // stay on the kernel-only set.
                    None => m.mmu.switch_asid(&mut m.clock, &m.cost, KERNEL_ASID),
                }
            } else {
                m.mmu.flush(&mut m.clock, &m.cost);
            }
        }
        self.note_pt_switch(tagged);
    }

    fn note_pt_switch(&mut self, tagged: bool) {
        self.pt_switches += 1;
        self.trace_counter(Counter::PtSwitches, 1);
        if tagged {
            self.trace_counter(Counter::AsidSwitches, 1);
        }
    }

    /// Records a wild write that the protected mode trapped before it
    /// landed (called by the fault injector, which simulates the stray
    /// store). The trap itself panics the kernel cleanly; the trace record
    /// is what lets the campaign attribute the outcome afterwards.
    pub fn note_protection_trap(&mut self, addr: u64) {
        self.trace_event(EventKind::ProtectionTrap, 0, addr, 0);
        self.trace_counter(Counter::ProtectionTraps, 1);
    }
}
