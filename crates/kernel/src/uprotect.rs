//! The memory-protected mode's page-table switching (§4).
//!
//! When `user_protection` is on, user space is unmapped while the kernel
//! runs: every syscall entry switches to the kernel-only page-table set
//! (and back on exit), flushing the TLB both times. That switch is the
//! source of Table 3's overhead, so it is counted twice over — in the
//! host-side `pt_switches` diagnostic and in the crash-surviving
//! [`Counter::PtSwitches`] metrics slot.

use crate::kernel::Kernel;
use ow_trace::{Counter, EventKind};

impl Kernel {
    /// Syscall-entry half of the protected mode: switch to the kernel-only
    /// page-table set, paying the switch and TLB-flush costs. No-op when
    /// protection is disabled.
    pub fn protection_enter(&mut self) {
        if !self.config.user_protection {
            return;
        }
        self.pt_switch();
    }

    /// Syscall-exit half: switch back to the full page-table set.
    pub fn protection_exit(&mut self) {
        if !self.config.user_protection {
            return;
        }
        self.pt_switch();
    }

    fn pt_switch(&mut self) {
        let cost = self.machine.cost.clone();
        self.machine.clock.charge(cost.pt_switch);
        let Kernel { machine, .. } = self;
        machine.mmu.flush(&mut machine.clock, &machine.cost);
        self.pt_switches += 1;
        self.trace_counter(Counter::PtSwitches, 1);
    }

    /// Records a wild write that the protected mode trapped before it
    /// landed (called by the fault injector, which simulates the stray
    /// store). The trap itself panics the kernel cleanly; the trace record
    /// is what lets the campaign attribute the outcome afterwards.
    pub fn note_protection_trap(&mut self, addr: u64) {
        self.trace_event(EventKind::ProtectionTrap, 0, addr, 0);
        self.trace_counter(Counter::ProtectionTraps, 1);
    }
}
