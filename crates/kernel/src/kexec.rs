//! KDump/kexec analog: crash-kernel reservation, image loading, and the
//! memory operations of morphing (§3.1, §3.6).

use crate::{
    error::KernelError,
    kernel::Kernel,
    layout::{
        pstate, CrashImageHeader, FileRecord, FileTable, HandoffBlock, PageCacheNode, ProcDesc,
        WarmSeal,
    },
    KernelResult,
};
use ow_layout::Record;
use ow_simhw::{machine::FrameOwner, FrameAllocator, Pfn, PhysAddr, PAGE_BYTES};

/// The dead kernel's frame-allocator state, CRC-validated out of its warm
/// seal and ready for wholesale adoption at morph time.
#[derive(Debug, Clone)]
pub struct AdoptedFrames {
    /// First frame the bitmap covers.
    pub base: Pfn,
    /// Decoded bitmap: element `i` = frame `base + i` was in use.
    pub used: Vec<bool>,
    /// The dead kernel's own region `(base_frame, nframes)` — kept
    /// allocated conservatively until a later cold morph reclaims it.
    pub dead_kernel: (Pfn, u64),
}

/// What the crash kernel may adopt from the dead kernel instead of
/// rebuilding — the warm half of the adopt-or-rebuild seam. The
/// orchestrator fills this in per structure from a CRC-validated
/// [`WarmSeal`]; every `None`/`false` falls back to the cold rebuild for
/// that structure alone.
#[derive(Debug, Clone, Default)]
pub struct AdoptPlan {
    /// Adopt the dead frame allocator instead of the reclaim scan.
    pub frames: Option<AdoptedFrames>,
    /// Adopt the dead active swap area (this index) instead of migrating
    /// every swapped page between partitions.
    pub swap: Option<u32>,
    /// Adopt page-cache chains (keep dirty pages in RAM) instead of
    /// flushing them to disk during file resurrection. Only valid when
    /// `frames` is adopted — the cold reclaim would free the cache frames.
    pub cache: bool,
}

impl Kernel {
    /// Reserves the crash region and loads a crash-kernel image into it,
    /// updating the handoff block. On a cold boot the region sits at the
    /// top of RAM; when morphing, the caller passes the region it chose.
    pub fn load_crash_kernel(&mut self) -> KernelResult<()> {
        let total = self.machine.frames();
        let frames = self.config.crash_frames;
        if frames == 0 || frames >= total / 2 {
            return Err(KernelError::Inval("crash reservation size"));
        }
        // The flight-recorder region keeps the very top of RAM, the
        // epoch-checkpoint slots sit just below it, and the crash
        // reservation immediately below those.
        let base = total - self.config.trace_frames - crate::layout::CKPT_FRAMES - frames;
        self.load_crash_kernel_at(base, frames)
    }

    /// Loads a crash kernel into the given region (used by morphing, which
    /// places the new reservation in reclaimed memory).
    pub fn load_crash_kernel_at(&mut self, base: Pfn, frames: u64) -> KernelResult<()> {
        // The image region is tagged so the hardware protects it (§3.1):
        // wild writes bounce off CrashImage frames.
        self.machine
            .set_owner_range(base, frames, FrameOwner::CrashImage);
        let header = CrashImageHeader {
            version: self.config.version,
            entry_valid: 1,
        };
        header.write(&mut self.machine.phys, base * PAGE_BYTES)?;
        let mut handoff: HandoffBlock = HandoffBlock::read(&self.machine.phys)?.0;
        handoff.crash_base = base;
        handoff.crash_frames = frames;
        handoff.crash_entry_ok = 1;
        handoff.write(&mut self.machine.phys)?;
        self.crash_region = Some((base, frames));
        Ok(())
    }

    /// Morph step 1 (§3.6): reclaim all physical memory. The crash kernel —
    /// now the only kernel — replaces its reservation-confined allocator
    /// with one spanning all of RAM, marking as used only what it knows to
    /// be live: the handoff frames, its own kernel region, and every frame
    /// its confined allocator had handed out (resurrected user pages, page
    /// tables, page cache). Everything that belonged to the dead kernel
    /// returns to the free list.
    pub fn reclaim_all_memory(&mut self) -> KernelResult<()> {
        // Morph stage: the dead kernel's frames are about to be absorbed.
        ow_crashpoint::crash_point!("kernel.kexec.reclaim.memory");
        let total = self.machine.frames();
        // The cold rebuild walks every frame's ownership and reachability;
        // the warm path's per-byte CRC validation replaces exactly this.
        let scan_cost = self.machine.cost.reclaim_frame_scan * total;
        self.machine.clock.charge(scan_cost);
        let mut fresh = FrameAllocator::new(0, total as usize);

        // Handoff structures stay.
        for pfn in 0..crate::layout::HANDOFF_FRAMES {
            fresh.mark_used(pfn);
        }
        // This kernel's own region.
        for pfn in self.base_frame..self.base_frame + self.config.kernel_frames {
            fresh.mark_used(pfn);
        }
        // Everything the confined allocator handed out.
        let old = &self.falloc;
        for pfn in old.base()..old.base() + old.capacity() as u64 {
            if old.is_used(pfn) {
                fresh.mark_used(pfn);
            }
        }
        // Frames adopted by mapping instead of copying (resurrection's
        // page-mapping optimization) live outside the confined allocator;
        // keep exactly the frames reachable from a live process's page
        // tables. Frame *tags* are not enough: pids restart at 1 in every
        // generation, so a dead generation's User/PageTable tags collide
        // with live pids — trusting them leaks a few frames per microreboot
        // and fragments RAM until a later morph cannot place its contiguous
        // crash reservation.
        for p in &self.procs {
            p.asp.for_each_frame(&self.machine.phys, |pfn| {
                if fresh.contains(pfn) {
                    fresh.mark_used(pfn);
                }
            })?;
        }
        for pfn in 0..total {
            if fresh.contains(pfn) && !fresh.is_used(pfn) {
                match self.machine.owner(pfn) {
                    FrameOwner::Trace => {
                        // The flight recorder outlives every kernel
                        // generation; morphing must not reallocate it.
                        fresh.mark_used(pfn);
                    }
                    FrameOwner::Handoff | FrameOwner::Free => {}
                    FrameOwner::User { .. }
                    | FrameOwner::PageTable { .. }
                    | FrameOwner::PageCache
                    | FrameOwner::Kernel
                    | FrameOwner::CrashImage => {
                        // Unreachable from any live process and not this
                        // kernel's own allocation: the dead generation's
                        // page tables, flushed page cache, kernel region,
                        // or consumed crash image. All reclaimed.
                        self.machine.set_owner(pfn, FrameOwner::Free);
                    }
                }
            }
        }
        self.falloc = fresh;
        Ok(())
    }

    /// Morph step 2 (§3.6): choose a region in reclaimed memory for the
    /// next crash kernel and load a fresh image there. Prefers the dead
    /// kernel's old neighborhood (low memory) to keep the layout simple.
    pub fn install_new_crash_kernel(&mut self) -> KernelResult<()> {
        // Morph stage: between reclaim and the next crash image existing —
        // the window in which the system is unprotected.
        ow_crashpoint::crash_point!("kernel.kexec.install.image");
        let frames = self.config.crash_frames;
        let base = self
            .falloc
            .alloc_contiguous(frames as usize)
            .ok_or(KernelError::NoMemory)?;
        self.load_crash_kernel_at(base, frames)
    }

    /// Warm morph step 1: adopt the dead kernel's CRC-validated frame
    /// allocator wholesale instead of scanning all of RAM. The adopted
    /// used-set is widened by everything this kernel knows to be live
    /// (handoff, its own region and confined allocations, the trace ring,
    /// and the dead kernel's region). Frames of dead processes that were
    /// *not* resurrected stay marked used — a deliberate conservative
    /// leak the next cold morph's reachability pass heals.
    pub fn adopt_frames(&mut self, adopted: &AdoptedFrames) -> KernelResult<()> {
        // Morph stage: between bitmap decode and allocator swap.
        ow_crashpoint::crash_point!("kernel.kexec.adopt.frames");
        let total = self.machine.frames();
        let mut fresh = FrameAllocator::new(0, total as usize);
        for (i, &used) in adopted.used.iter().enumerate() {
            let pfn = adopted.base + i as u64;
            if used && pfn < total {
                fresh.mark_used(pfn);
            }
        }
        for pfn in 0..crate::layout::HANDOFF_FRAMES {
            fresh.mark_used(pfn);
        }
        for pfn in self.base_frame..self.base_frame + self.config.kernel_frames {
            fresh.mark_used(pfn);
        }
        let (dead_base, dead_frames) = adopted.dead_kernel;
        for pfn in dead_base..(dead_base + dead_frames).min(total) {
            fresh.mark_used(pfn);
        }
        let old = &self.falloc;
        for pfn in old.base()..old.base() + old.capacity() as u64 {
            if old.is_used(pfn) {
                fresh.mark_used(pfn);
            }
        }
        for pfn in 0..total {
            if matches!(self.machine.owner(pfn), FrameOwner::Trace) {
                fresh.mark_used(pfn);
            }
        }
        self.falloc = fresh;
        Ok(())
    }

    /// Full morph: reclaim memory, then install the next crash kernel. On
    /// return this kernel *is* the main kernel and the system is protected
    /// against the next failure.
    pub fn morph_into_main(&mut self) -> KernelResult<()> {
        self.morph_into_main_with(&AdoptPlan::default())
    }

    /// The adopt-or-rebuild morph: frame state comes from the plan's
    /// validated adoption when present, from the cold all-RAM reclaim scan
    /// otherwise. (The plan's swap and cache halves act earlier, during
    /// resurrection.)
    pub fn morph_into_main_with(&mut self, plan: &AdoptPlan) -> KernelResult<()> {
        ow_crashpoint::crash_point!("kernel.kexec.morph.main");
        match &plan.frames {
            Some(adopted) => self.adopt_frames(adopted)?,
            None => self.reclaim_all_memory()?,
        }
        self.install_new_crash_kernel()?;
        self.is_crash = false;
        self.write_header()?;
        Ok(())
    }

    /// Panic-path sealing: writes the dying kernel's [`WarmSeal`] — frame
    /// bitmap, active swap-slot map and page-cache CRCs — into its reserved
    /// seal region with plain stores. Best-effort by design: any failure
    /// leaves the boot-time invalid seal in place and the next morph stays
    /// cold. Must never allocate from the kernel heap.
    pub fn seal_warm_state(&mut self) {
        let _ = self.try_seal_warm_state();
    }

    fn try_seal_warm_state(&mut self) -> KernelResult<()> {
        let seal_base = crate::layout::seal_addr(self.base_frame, self.config.kernel_frames);
        let region_end = (self.base_frame + self.config.kernel_frames) * PAGE_BYTES;

        // Bit-pack the frame-allocator bitmap into the seal region, right
        // after the record itself.
        let cap = self.falloc.capacity();
        let nbytes = (cap as u64).div_ceil(8);
        let bitmap_addr = seal_base + WarmSeal::SIZE;
        if bitmap_addr + nbytes > region_end {
            // The machine is too large for the reserved seal frames; skip
            // sealing and let the morph stay cold.
            return Err(KernelError::NoSpace);
        }
        let mut bits = vec![0u8; nbytes as usize];
        let falloc_base = self.falloc.base();
        for i in 0..cap {
            if self.falloc.is_used(falloc_base + i as u64) {
                bits[i / 8] |= 1 << (i % 8);
            }
        }
        self.machine.phys.write(bitmap_addr, &bits)?;
        let falloc_crc = ow_layout::crc::crc32(&bits);

        // CRC the active swap area's live slot bitmap in place.
        let (swap_bitmap, swap_nslots) = match self.swaps.get(self.active_swap) {
            Some(a) => (a.bitmap, a.nslots),
            None => return Err(KernelError::Inval("no active swap")),
        };
        let swap_crc =
            ow_layout::crc::crc32_range(&self.machine.phys, swap_bitmap, swap_nslots as u64)?;

        // CRC every page-cache node in deterministic walk order.
        let (cache_nodes, cache_crc) = self.seal_cache_crc()?;

        let seal = WarmSeal {
            valid: 1,
            generation: self.generation,
            falloc_base,
            falloc_capacity: cap as u64,
            falloc_bitmap: bitmap_addr,
            falloc_crc,
            swap_index: self.active_swap as u32,
            swap_nslots,
            swap_crc,
            swap_bitmap,
            cache_nodes,
            cache_crc,
        };
        seal.write(&mut self.machine.phys, seal_base)?;
        Ok(())
    }

    /// CRC over the encoded bytes of every page-cache node, walking
    /// non-exited processes in list order, file-table slots in index
    /// order, deduplicating shared file records by address. The adoption
    /// validator replays exactly this walk over the dead structures with
    /// the validated readers; any divergence fails the CRC and the cache
    /// falls back cold.
    fn seal_cache_crc(&self) -> KernelResult<(u64, u32)> {
        let mut hasher = ow_layout::crc::Crc32::new();
        let mut nodes = 0u64;
        let mut seen: Vec<PhysAddr> = Vec::new();
        for p in &self.procs {
            if p.state == pstate::EXITED {
                continue;
            }
            let (desc, _) = ProcDesc::read(&self.machine.phys, p.desc_addr)?;
            if desc.files == 0 {
                continue;
            }
            let (tab, _) = FileTable::read(&self.machine.phys, desc.files)?;
            for &frec_addr in &tab.fds {
                if frec_addr == 0 || seen.contains(&frec_addr) {
                    continue;
                }
                seen.push(frec_addr);
                let (frec, _) = FileRecord::read(&self.machine.phys, frec_addr)?;
                let mut node_addr = frec.cache_head;
                let mut guard = 0u64;
                while node_addr != 0 {
                    guard += 1;
                    if guard > 1 << 20 {
                        return Err(KernelError::Inval("cache chain too long"));
                    }
                    let (node, _) = PageCacheNode::read(&self.machine.phys, node_addr)?;
                    hasher.update_range(&self.machine.phys, node_addr, PageCacheNode::SIZE)?;
                    nodes += 1;
                    node_addr = node.next;
                }
            }
        }
        Ok((nodes, hasher.finish()))
    }
}
