//! KDump/kexec analog: crash-kernel reservation, image loading, and the
//! memory operations of morphing (§3.1, §3.6).

use crate::{
    error::KernelError,
    kernel::Kernel,
    layout::{CrashImageHeader, HandoffBlock},
    KernelResult,
};
use ow_layout::Record;
use ow_simhw::{machine::FrameOwner, FrameAllocator, Pfn, PAGE_BYTES};

impl Kernel {
    /// Reserves the crash region and loads a crash-kernel image into it,
    /// updating the handoff block. On a cold boot the region sits at the
    /// top of RAM; when morphing, the caller passes the region it chose.
    pub fn load_crash_kernel(&mut self) -> KernelResult<()> {
        let total = self.machine.frames();
        let frames = self.config.crash_frames;
        if frames == 0 || frames >= total / 2 {
            return Err(KernelError::Inval("crash reservation size"));
        }
        // The flight-recorder region keeps the very top of RAM; the crash
        // reservation sits immediately below it.
        let base = total - self.config.trace_frames - frames;
        self.load_crash_kernel_at(base, frames)
    }

    /// Loads a crash kernel into the given region (used by morphing, which
    /// places the new reservation in reclaimed memory).
    pub fn load_crash_kernel_at(&mut self, base: Pfn, frames: u64) -> KernelResult<()> {
        // The image region is tagged so the hardware protects it (§3.1):
        // wild writes bounce off CrashImage frames.
        self.machine
            .set_owner_range(base, frames, FrameOwner::CrashImage);
        let header = CrashImageHeader {
            version: self.config.version,
            entry_valid: 1,
        };
        header.write(&mut self.machine.phys, base * PAGE_BYTES)?;
        let mut handoff: HandoffBlock = HandoffBlock::read(&self.machine.phys)?.0;
        handoff.crash_base = base;
        handoff.crash_frames = frames;
        handoff.crash_entry_ok = 1;
        handoff.write(&mut self.machine.phys)?;
        self.crash_region = Some((base, frames));
        Ok(())
    }

    /// Morph step 1 (§3.6): reclaim all physical memory. The crash kernel —
    /// now the only kernel — replaces its reservation-confined allocator
    /// with one spanning all of RAM, marking as used only what it knows to
    /// be live: the handoff frames, its own kernel region, and every frame
    /// its confined allocator had handed out (resurrected user pages, page
    /// tables, page cache). Everything that belonged to the dead kernel
    /// returns to the free list.
    pub fn reclaim_all_memory(&mut self) -> KernelResult<()> {
        // Morph stage: the dead kernel's frames are about to be absorbed.
        ow_crashpoint::crash_point!("kernel.kexec.reclaim.memory");
        let total = self.machine.frames();
        let mut fresh = FrameAllocator::new(0, total as usize);

        // Handoff structures stay.
        for pfn in 0..crate::layout::HANDOFF_FRAMES {
            fresh.mark_used(pfn);
        }
        // This kernel's own region.
        for pfn in self.base_frame..self.base_frame + self.config.kernel_frames {
            fresh.mark_used(pfn);
        }
        // Everything the confined allocator handed out.
        let old = &self.falloc;
        for pfn in old.base()..old.base() + old.capacity() as u64 {
            if old.is_used(pfn) {
                fresh.mark_used(pfn);
            }
        }
        // Frames adopted by mapping instead of copying (resurrection's
        // page-mapping optimization) live outside the confined allocator;
        // keep exactly the frames reachable from a live process's page
        // tables. Frame *tags* are not enough: pids restart at 1 in every
        // generation, so a dead generation's User/PageTable tags collide
        // with live pids — trusting them leaks a few frames per microreboot
        // and fragments RAM until a later morph cannot place its contiguous
        // crash reservation.
        for p in &self.procs {
            p.asp.for_each_frame(&self.machine.phys, |pfn| {
                if fresh.contains(pfn) {
                    fresh.mark_used(pfn);
                }
            })?;
        }
        for pfn in 0..total {
            if fresh.contains(pfn) && !fresh.is_used(pfn) {
                match self.machine.owner(pfn) {
                    FrameOwner::Trace => {
                        // The flight recorder outlives every kernel
                        // generation; morphing must not reallocate it.
                        fresh.mark_used(pfn);
                    }
                    FrameOwner::Handoff | FrameOwner::Free => {}
                    FrameOwner::User { .. }
                    | FrameOwner::PageTable { .. }
                    | FrameOwner::PageCache
                    | FrameOwner::Kernel
                    | FrameOwner::CrashImage => {
                        // Unreachable from any live process and not this
                        // kernel's own allocation: the dead generation's
                        // page tables, flushed page cache, kernel region,
                        // or consumed crash image. All reclaimed.
                        self.machine.set_owner(pfn, FrameOwner::Free);
                    }
                }
            }
        }
        self.falloc = fresh;
        Ok(())
    }

    /// Morph step 2 (§3.6): choose a region in reclaimed memory for the
    /// next crash kernel and load a fresh image there. Prefers the dead
    /// kernel's old neighborhood (low memory) to keep the layout simple.
    pub fn install_new_crash_kernel(&mut self) -> KernelResult<()> {
        // Morph stage: between reclaim and the next crash image existing —
        // the window in which the system is unprotected.
        ow_crashpoint::crash_point!("kernel.kexec.install.image");
        let frames = self.config.crash_frames;
        let base = self
            .falloc
            .alloc_contiguous(frames as usize)
            .ok_or(KernelError::NoMemory)?;
        self.load_crash_kernel_at(base, frames)
    }

    /// Full morph: reclaim memory, then install the next crash kernel. On
    /// return this kernel *is* the main kernel and the system is protected
    /// against the next failure.
    pub fn morph_into_main(&mut self) -> KernelResult<()> {
        ow_crashpoint::crash_point!("kernel.kexec.morph.main");
        self.reclaim_all_memory()?;
        self.install_new_crash_kernel()?;
        self.is_crash = false;
        self.write_header()?;
        Ok(())
    }
}
