//! The user-program model.
//!
//! Programs in the simulation cannot be native binaries, so a program is a
//! [`Program`] state machine: its *control flow* is host Rust, but **all of
//! its data must live in its simulated user address space**, accessed
//! through the MMU (and therefore subject to demand paging, swapping, wild
//! writes and resurrection). To keep programs honest about this, the kernel
//! persists a program's minimal control state into a *program header page*
//! in user memory after every step ([`Program::save_state`]), and
//! resurrection re-instantiates the program object purely from the process
//! name (the "executable") and that in-memory state via the
//! [`ProgramRegistry`] — never from the old host object.
//!
//! This mirrors reality: code is re-instantiable from disk; only memory
//! needs to be resurrected.

use crate::error::Errno;
use std::collections::HashMap;
use std::sync::Arc;

/// Virtual address of the program header page where programs persist their
/// control state (`save_state`/rehydration).
pub const PROG_STATE_VADDR: u64 = 0x1000;

/// Result of one program step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepResult {
    /// The program has more work to do.
    Running,
    /// The program finished with an exit code.
    Exited(u64),
}

/// What a crash procedure tells the crash kernel to do (Table 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrashAction {
    /// Continue execution from the interruption point.
    Continue,
    /// The crash procedure saved state to persistent storage; restart the
    /// application afresh with the given command-line arguments (MySQL's
    /// crash procedure passes the name of the saved-data file this way,
    /// §5.2).
    SaveAndRestart(Vec<String>),
    /// The crash procedure deems the restoration unsuccessful; give up.
    GiveUp,
}

/// A user program: host-Rust control flow over simulated-memory data.
pub trait Program {
    /// Executes one step (typically one syscall or one batch of user
    /// computation) against the kernel through `api`.
    fn step(&mut self, api: &mut dyn UserApi) -> StepResult;

    /// Persists the program's resumable control state into its program
    /// header page. Called by the kernel after every completed step.
    fn save_state(&mut self, api: &mut dyn UserApi);

    /// The crash procedure (§3.4), called by the crash kernel after
    /// resurrection if the process registered one. `failed_resources` is
    /// the bitmask of resource types that could not be resurrected
    /// ([`crate::layout::resmask`]).
    fn crash_procedure(&mut self, api: &mut dyn UserApi, failed_resources: u32) -> CrashAction {
        let _ = (api, failed_resources);
        CrashAction::Continue
    }
}

/// The system-call and user-memory interface a program sees.
///
/// Methods that model system calls charge syscall entry costs (plus
/// page-table switches in memory-protected mode) and may return
/// [`Errno::Restart`] after a microreboot aborted an in-flight call (§3.5).
/// The `mem_*` methods model ordinary user-mode loads/stores: they go
/// through the MMU with demand paging but cost no kernel transition.
pub trait UserApi {
    /// This process's pid.
    fn pid(&self) -> u64;

    // --- user-mode memory (not syscalls) ---

    /// Stores bytes at a user virtual address.
    fn mem_write(&mut self, vaddr: u64, data: &[u8]) -> Result<(), Errno>;
    /// Loads bytes from a user virtual address.
    fn mem_read(&mut self, vaddr: u64, buf: &mut [u8]) -> Result<(), Errno>;
    /// Burns `units` of pure user computation (cycle accounting only).
    fn compute(&mut self, units: u64);

    /// Stores a `u64` at a user virtual address.
    fn mem_write_u64(&mut self, vaddr: u64, v: u64) -> Result<(), Errno> {
        self.mem_write(vaddr, &v.to_le_bytes())
    }
    /// Loads a `u64` from a user virtual address.
    fn mem_read_u64(&mut self, vaddr: u64) -> Result<u64, Errno> {
        let mut b = [0u8; 8];
        self.mem_read(vaddr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    // --- files ---

    /// Opens a file, returning an fd.
    fn open(&mut self, path: &str, flags: u32) -> Result<u32, Errno>;
    /// Closes an fd.
    fn close(&mut self, fd: u32) -> Result<(), Errno>;
    /// Writes at the current offset.
    fn write(&mut self, fd: u32, data: &[u8]) -> Result<u64, Errno>;
    /// Reads at the current offset; returns bytes read (0 at EOF).
    fn read(&mut self, fd: u32, buf: &mut [u8]) -> Result<u64, Errno>;
    /// Sets the file offset.
    fn seek(&mut self, fd: u32, pos: u64) -> Result<(), Errno>;
    /// Flushes dirty cached pages of the file to disk.
    fn fsync(&mut self, fd: u32) -> Result<(), Errno>;
    /// Removes a file.
    fn unlink(&mut self, path: &str) -> Result<(), Errno>;

    // --- memory management ---

    /// Maps `pages` anonymous writable pages at `vaddr`.
    fn mmap_anon(&mut self, vaddr: u64, pages: u64) -> Result<(), Errno>;

    // --- terminal ---

    /// Writes bytes to the attached terminal.
    fn term_write(&mut self, data: &[u8]) -> Result<(), Errno>;
    /// Reads pending input from the attached terminal (may return
    /// [`Errno::WouldBlock`]).
    fn term_read(&mut self, buf: &mut [u8]) -> Result<u64, Errno>;
    /// Updates terminal settings.
    fn term_set(&mut self, settings: u64) -> Result<(), Errno>;

    // --- sockets (not resurrectable in the prototype) ---

    /// Opens a socket, returning a socket id.
    fn socket(&mut self) -> Result<u32, Errno>;
    /// Sends on a socket (to the workload driver acting as the peer).
    fn sock_send(&mut self, sid: u32, data: &[u8]) -> Result<(), Errno>;
    /// Receives from a socket; [`Errno::WouldBlock`] when empty.
    fn sock_recv(&mut self, sid: u32, buf: &mut [u8]) -> Result<u64, Errno>;
    /// Closes a socket.
    fn sock_close(&mut self, sid: u32) -> Result<(), Errno>;

    // --- pipes ---

    /// Writes into a pipe; returns bytes accepted (default: unsupported).
    fn pipe_write(&mut self, pipe: u32, data: &[u8]) -> Result<u64, Errno> {
        let _ = (pipe, data);
        Err(Errno::NotSup)
    }
    /// Reads from a pipe; returns bytes read (default: unsupported).
    fn pipe_read(&mut self, pipe: u32, buf: &mut [u8]) -> Result<u64, Errno> {
        let _ = (pipe, buf);
        Err(Errno::NotSup)
    }
    /// Declares this process a user of `pipe` (sets the resource bit).
    fn pipe_attach(&mut self, pipe: u32) -> Result<(), Errno> {
        let _ = pipe;
        Err(Errno::NotSup)
    }

    // --- shared memory ---

    /// Creates (or finds) a segment of `pages` pages for `key` and attaches
    /// it at `vaddr`.
    fn shm_attach(&mut self, key: u64, pages: u64, vaddr: u64) -> Result<(), Errno>;

    // --- signals & crash procedure ---

    /// Installs a handler token for `sig`.
    fn signal(&mut self, sig: u32, handler: u64) -> Result<(), Errno>;
    /// Registers this process's crash procedure with the kernel (§3.2).
    fn register_crash_proc(&mut self) -> Result<(), Errno>;
}

/// Fresh-start factory: builds a program as `exec` would, with command-line
/// arguments (used at first spawn and when a crash procedure restarts the
/// application).
pub type FreshFactory = Arc<dyn Fn(&mut dyn UserApi, &[String]) -> Box<dyn Program> + Send + Sync>;

/// Rehydration factory: rebuilds a program object from its in-memory state.
pub type Rehydrator = Arc<dyn Fn(&mut dyn UserApi) -> Box<dyn Program> + Send + Sync>;

/// The two ways a named executable can be instantiated.
#[derive(Clone)]
pub struct ProgramImage {
    /// Fresh start (`exec` analog).
    pub fresh: FreshFactory,
    /// Rebuild from resurrected memory.
    pub rehydrate: Rehydrator,
}

/// Maps executable names to factories — the analog of programs being
/// re-instantiable from their on-disk executables.
#[derive(Clone, Default)]
pub struct ProgramRegistry {
    map: HashMap<String, ProgramImage>,
}

impl ProgramRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ProgramRegistry::default()
    }

    /// Registers the factories for `name`.
    pub fn register(
        &mut self,
        name: &str,
        fresh: impl Fn(&mut dyn UserApi, &[String]) -> Box<dyn Program> + Send + Sync + 'static,
        rehydrate: impl Fn(&mut dyn UserApi) -> Box<dyn Program> + Send + Sync + 'static,
    ) {
        self.map.insert(
            name.to_string(),
            ProgramImage {
                fresh: Arc::new(fresh),
                rehydrate: Arc::new(rehydrate),
            },
        );
    }

    /// Looks up the image for `name`.
    pub fn get(&self, name: &str) -> Option<ProgramImage> {
        self.map.get(name).cloned()
    }

    /// Registered names (diagnostics).
    pub fn names(&self) -> Vec<String> {
        // ow-lint: allow(campaign-determinism) -- keys are sorted on the next line; the returned order is map-independent
        let mut v: Vec<_> = self.map.keys().cloned().collect();
        v.sort();
        v
    }
}

impl std::fmt::Debug for ProgramRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgramRegistry")
            .field("names", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_registers_and_lists() {
        struct Nop;
        impl Program for Nop {
            fn step(&mut self, _api: &mut dyn UserApi) -> StepResult {
                StepResult::Exited(0)
            }
            fn save_state(&mut self, _api: &mut dyn UserApi) {}
        }
        let mut r = ProgramRegistry::new();
        r.register("nop", |_api, _args| Box::new(Nop), |_api| Box::new(Nop));
        assert!(r.get("nop").is_some());
        assert!(r.get("other").is_none());
        assert_eq!(r.names(), vec!["nop".to_string()]);
    }
}
