//! The epoch-checkpoint writer: continuous sealing of the Table 4 set.
//!
//! Every `checkpoint_interval` completed syscalls (and once more on the
//! panic path itself), the kernel copies its resurrection-critical records
//! — process descriptors, VMA chains, file tables and file records — into
//! one of the two A/B slots below the trace ring, as verbatim snippets
//! tagged with their source address, under a CRC-guarded
//! [`EpochCheckpoint`] header. Rollback-in-place (`ow-core`) later
//! revalidates the newest epoch and writes the snippets straight back.
//!
//! Sealing is best-effort by design, exactly like the warm seal: a chain
//! that no longer walks, a record that no longer decodes, or a payload
//! that outgrows the slot simply skips the epoch, leaving the previous
//! slot intact — and rollback then falls through to the microreboot.

use crate::{
    error::KernelError,
    kernel::Kernel,
    layout::{
        ckpt_slot_addr, ckptflags, pstate, snipkind, EpochCheckpoint, FileRecord, FileTable,
        ProcDesc, VmaDesc, CKPT_FRAMES, CKPT_PAYLOAD_MAX, CKPT_SLOTS,
    },
    KernelResult,
};
use ow_layout::Record;
use ow_simhw::{PhysAddr, PhysMem};

/// Longest VMA chain the writer will seal (mirrors the validated readers'
/// bound; a longer chain means corruption and the epoch is skipped).
const MAX_VMAS: u64 = 1024;

/// Appends one snippet — `{ addr, kind, len, verbatim bytes }` — to the
/// payload being assembled, through the shared ow-layout snippet codec.
fn push_snippet(
    payload: &mut Vec<u8>,
    phys: &PhysMem,
    addr: PhysAddr,
    kind: u32,
    len: u64,
) -> KernelResult<()> {
    ow_layout::push_snippet(payload, phys, addr, kind, len)
        .map_err(|_| KernelError::Inval("record unreadable while sealing"))
}

impl Kernel {
    /// Seals one epoch checkpoint of the resurrection-critical record set
    /// into the next A/B slot. `at_panic` marks the final seal the panic
    /// path writes: only such an epoch is fresh enough for rollback to
    /// restore without replaying anything. Best-effort: returns whether a
    /// complete epoch was committed. Never allocates from the kernel heap.
    pub fn seal_epoch_checkpoint(&mut self, at_panic: bool) -> bool {
        if self.config.checkpoint_interval == 0 {
            return false;
        }
        ow_crashpoint::crash_point!("kernel.checkpoint.seal.write");
        self.try_seal_epoch(at_panic).is_ok()
    }

    fn try_seal_epoch(&mut self, at_panic: bool) -> KernelResult<()> {
        let trace_base = self.trace_base;
        if trace_base < CKPT_FRAMES || trace_base > self.machine.frames() {
            return Err(KernelError::NoSpace);
        }

        let (payload, nprocs) = self.gather_epoch_payload()?;
        if payload.len() as u64 > CKPT_PAYLOAD_MAX {
            return Err(KernelError::NoSpace);
        }

        // The per-epoch attempt ledger survives a re-panic with no
        // progress: if the slot we are superseding seals the very same
        // syscall sequence, its attempt stamp carries forward, so a
        // rollback that failed once is never retried on the same epoch.
        let mut attempted = 0u32;
        if at_panic {
            for slot in 0..CKPT_SLOTS {
                if let Ok((c, _)) =
                    EpochCheckpoint::read(&self.machine.phys, ckpt_slot_addr(trace_base, slot))
                {
                    if c.valid != 0 && c.generation == self.generation && c.seq == self.syscall_seq
                    {
                        attempted = attempted.max(c.attempted);
                    }
                }
            }
        }

        // A/B discipline: the new epoch goes to the slot selected by its
        // parity, so the newest complete epoch survives a torn write.
        // Payload first, header record last — the record is the commit.
        let epoch = self.ckpt_epoch + 1;
        let addr = ckpt_slot_addr(trace_base, (epoch % CKPT_SLOTS as u64) as u32);
        self.machine
            .phys
            .write(addr + EpochCheckpoint::SIZE, &payload)?;
        let rec = EpochCheckpoint {
            valid: 1,
            generation: self.generation,
            epoch,
            seq: self.syscall_seq,
            flags: if at_panic { ckptflags::AT_PANIC } else { 0 },
            nprocs,
            attempted,
            payload_len: payload.len() as u64,
            payload_crc: ow_layout::crc::crc32(&payload),
        };
        rec.write(&mut self.machine.phys, addr)?;
        self.ckpt_epoch = epoch;
        self.last_ckpt_seq = self.syscall_seq;

        let cost = self.machine.cost.checkpoint_byte * (EpochCheckpoint::SIZE + rec.payload_len);
        self.machine.clock.charge(cost);
        Ok(())
    }

    /// Assembles the snippet payload: every non-exited process descriptor,
    /// its VMA chain, its file table, and every reachable file record
    /// (deduplicated by address across processes), each read back through
    /// the validating codec before its verbatim bytes are captured.
    fn gather_epoch_payload(&self) -> KernelResult<(Vec<u8>, u32)> {
        let phys = &self.machine.phys;
        let mut payload = Vec::new();
        let mut nprocs = 0u32;
        let mut seen_frecs: Vec<PhysAddr> = Vec::new();
        for p in &self.procs {
            if p.state == pstate::EXITED {
                continue;
            }
            let (desc, _) = ProcDesc::read(phys, p.desc_addr)?;
            push_snippet(
                &mut payload,
                phys,
                p.desc_addr,
                snipkind::PROC,
                ProcDesc::SIZE,
            )?;
            nprocs += 1;

            let mut vma_addr = desc.mm_head;
            let mut walked = 0u64;
            while vma_addr != 0 {
                walked += 1;
                if walked > MAX_VMAS {
                    return Err(KernelError::Inval("vma chain too long to seal"));
                }
                let (vma, _) = VmaDesc::read(phys, vma_addr)?;
                push_snippet(&mut payload, phys, vma_addr, snipkind::VMA, VmaDesc::SIZE)?;
                vma_addr = vma.next;
            }

            if desc.files != 0 {
                let (tab, _) = FileTable::read(phys, desc.files)?;
                push_snippet(
                    &mut payload,
                    phys,
                    desc.files,
                    snipkind::FILE_TABLE,
                    FileTable::SIZE,
                )?;
                for &frec_addr in &tab.fds {
                    if frec_addr == 0 || seen_frecs.contains(&frec_addr) {
                        continue;
                    }
                    seen_frecs.push(frec_addr);
                    let _ = FileRecord::read(phys, frec_addr)?;
                    push_snippet(
                        &mut payload,
                        phys,
                        frec_addr,
                        snipkind::FILE_RECORD,
                        FileRecord::SIZE,
                    )?;
                }
            }
        }
        Ok((payload, nprocs))
    }
}
