//! IPC: sockets, pipes and shared memory.
//!
//! In the paper's prototype sockets and pipes are **not resurrectable**
//! (§3.3); a process using them carries the corresponding bit in its
//! `res_in_use` mask, which the crash kernel passes to the crash procedure
//! so the application can re-establish the channels itself. Shared memory
//! *is* resurrected.
//!
//! This implementation additionally carries the state the paper says makes
//! them resurrectable — a socket's connection parameters, sequence number
//! and unacknowledged outbound payload ([`crate::layout::SockDesc`]); a
//! pipe's ring buffer guarded by a semaphore whose held/free state decides
//! consistency ([`crate::layout::PipeDesc`]) — so the §7 extension in
//! `ow-core` can restore them when enabled.

use crate::{
    error::KernelError,
    kernel::{Kernel, SockHandle},
    layout::{self, resmask, PipeDesc, ShmDesc, SockDesc, PIPE_CAP},
    KernelResult,
};
use ow_layout::Record;
use ow_simhw::{machine::FrameOwner, PhysAddr, PteFlags, PAGE_SIZE};

/// Maximum pipes in the system.
pub const MAX_PIPES: u32 = 8;

/// A host-side pipe handle.
#[derive(Debug, Clone)]
pub struct PipeHandle {
    /// Pipe id (index into the pipe table).
    pub id: u32,
    /// Address of the in-kernel descriptor.
    pub desc_addr: PhysAddr,
    /// Buffer frame.
    pub buf_pfn: u64,
}

impl Kernel {
    fn update_res_mask(&mut self, pid: u64, set: u32, clear: u32) -> KernelResult<()> {
        let desc_addr = self.proc(pid)?.desc_addr;
        // res_in_use offset: magic+state(8) + pid(8) + name + crash/term(8)
        // + 5 pointers (40).
        let off = layout::proc_off::RES_IN_USE;
        let cur = self.machine.phys.read_u32(desc_addr + off)?;
        self.machine
            .phys
            .write_u32(desc_addr + off, (cur | set) & !clear)?;
        self.reseal_desc(pid)?;
        Ok(())
    }

    /// Reads the process's unresurrectable-resource mask.
    pub fn res_mask(&self, pid: u64) -> KernelResult<u32> {
        let desc_addr = self.proc(pid)?.desc_addr;
        Ok(self
            .machine
            .phys
            .read_u32(desc_addr + layout::proc_off::RES_IN_USE)?)
    }

    /// Opens a socket for `pid` with the given protocol
    /// ([`crate::layout::sockproto`]), returning a socket id.
    pub fn sock_open_proto(&mut self, pid: u64, proto: u32) -> KernelResult<u32> {
        let desc_addr = self
            .kheap
            .alloc(SockDesc::SIZE)
            .ok_or(KernelError::NoMemory)?;
        let outbuf_pfn = self.alloc_frame(FrameOwner::Kernel)?;
        self.machine.phys.zero_frame(outbuf_pfn)?;
        let proc_desc = self.read_desc(pid)?;
        let sid = self.proc(pid)?.sockets.len() as u32;
        SockDesc {
            proto,
            state: 1,
            sid,
            local_port: 1024 + sid,
            seq: 0,
            outbuf_pfn,
            outbuf_len: 0,
            next: proc_desc.sock_head,
        }
        .write(&mut self.machine.phys, desc_addr)?;
        let proc_addr = self.proc(pid)?.desc_addr;
        self.machine
            .phys
            .write_u64(proc_addr + layout::proc_off::SOCK_HEAD, desc_addr)?;
        self.reseal_desc(pid)?;
        let p = self.proc_mut(pid)?;
        p.sockets.push(SockHandle {
            sid,
            desc_addr,
            inbox: Default::default(),
            outbox: Default::default(),
            open: true,
        });
        self.update_res_mask(pid, resmask::SOCKETS, 0)?;
        Ok(sid)
    }

    /// Opens a TCP-like socket (the common case for our applications).
    pub fn sock_open(&mut self, pid: u64) -> KernelResult<u32> {
        self.sock_open_proto(pid, layout::sockproto::TCP)
    }

    fn sock(&mut self, pid: u64, sid: u32) -> KernelResult<&mut SockHandle> {
        let p = self.proc_mut(pid)?;
        p.sockets
            .iter_mut()
            .find(|s| s.sid == sid && s.open)
            .ok_or(KernelError::BadFd(sid))
    }

    /// Sends a message out of a socket (driver picks it up). The payload is
    /// also buffered in the in-kernel descriptor until acknowledged — the
    /// state TCP resurrection needs (§3.3).
    pub fn sock_send(&mut self, pid: u64, sid: u32, data: &[u8]) -> KernelResult<()> {
        let desc_addr = {
            let s = self.sock(pid, sid)?;
            s.outbox.push_back(data.to_vec());
            s.desc_addr
        };
        let (mut desc, _) = SockDesc::read(&self.machine.phys, desc_addr)?;
        if desc.outbuf_len as usize + data.len() > PAGE_SIZE {
            // Window full: the oldest payload is considered acknowledged.
            desc.outbuf_len = 0;
        }
        let off = desc.outbuf_pfn * PAGE_SIZE as u64 + desc.outbuf_len as u64;
        let fit = data.len().min(PAGE_SIZE - desc.outbuf_len as usize);
        self.machine.phys.write(off, &data[..fit])?;
        desc.outbuf_len += fit as u32;
        desc.seq += data.len() as u64;
        desc.write(&mut self.machine.phys, desc_addr)?;
        Ok(())
    }

    /// Receives one pending message, if any.
    pub fn sock_recv(&mut self, pid: u64, sid: u32) -> KernelResult<Option<Vec<u8>>> {
        Ok(self.sock(pid, sid)?.inbox.pop_front())
    }

    /// Closes a socket; clears the resource bit when it was the last one.
    pub fn sock_close(&mut self, pid: u64, sid: u32) -> KernelResult<()> {
        let desc_addr = {
            let s = self.sock(pid, sid)?;
            s.open = false;
            s.desc_addr
        };
        let (desc, _) = SockDesc::read(&self.machine.phys, desc_addr)?;
        // Unlink from the chain.
        let head = self.read_desc(pid)?.sock_head;
        if head == desc_addr {
            let proc_addr = self.proc(pid)?.desc_addr;
            self.machine
                .phys
                .write_u64(proc_addr + layout::proc_off::SOCK_HEAD, desc.next)?;
            self.reseal_desc(pid)?;
        } else {
            let mut prev = head;
            let mut guard = 0;
            while prev != 0 && guard < 64 {
                let (pd, _) = SockDesc::read(&self.machine.phys, prev)?;
                if pd.next == desc_addr {
                    let mut pd = pd;
                    pd.next = desc.next;
                    pd.write(&mut self.machine.phys, prev)?;
                    break;
                }
                prev = pd.next;
                guard += 1;
            }
        }
        self.free_frame(desc.outbuf_pfn);
        self.kheap.free(desc_addr, SockDesc::SIZE);
        let any_open = self.proc(pid)?.sockets.iter().any(|s| s.open);
        if !any_open {
            self.update_res_mask(pid, 0, resmask::SOCKETS)?;
        }
        Ok(())
    }

    /// Driver side: delivers a message into a process socket.
    pub fn sock_deliver(&mut self, pid: u64, sid: u32, data: &[u8]) -> KernelResult<()> {
        let msg = data.to_vec();
        self.sock(pid, sid)?.inbox.push_back(msg);
        Ok(())
    }

    /// Driver side: takes everything the process sent, acknowledging the
    /// buffered payload (TCP ACK analog).
    pub fn sock_drain(&mut self, pid: u64, sid: u32) -> KernelResult<Vec<Vec<u8>>> {
        let (out, desc_addr) = {
            let s = self.sock(pid, sid)?;
            (s.outbox.drain(..).collect(), s.desc_addr)
        };
        // outbuf_len sits after magic/proto/state/sid/port/pad + seq + pfn.
        self.machine.phys.write_u32(desc_addr + 4 * 6 + 8 + 8, 0)?;
        Ok(out)
    }

    /// Attaches (creating if needed) a shared-memory segment of `pages`
    /// pages under `key`, mapping it at `vaddr` in `pid`'s address space.
    /// Returns the backing frames.
    pub fn shm_attach(
        &mut self,
        pid: u64,
        key: u64,
        pages: u64,
        vaddr: u64,
    ) -> KernelResult<Vec<u64>> {
        if pages as usize > layout::SHM_MAX_PAGES {
            return Err(KernelError::Inval("shm too large"));
        }
        if !vaddr.is_multiple_of(PAGE_SIZE as u64) {
            return Err(KernelError::Inval("shm vaddr alignment"));
        }
        // Look for the segment on any process (global key namespace).
        let existing = self.find_shm(key)?;
        let frames = match existing {
            Some(desc) => desc.pages,
            None => {
                let mut frames = Vec::with_capacity(pages as usize);
                for _ in 0..pages {
                    let pfn = self.alloc_frame(FrameOwner::User { pid })?;
                    self.machine.phys.zero_frame(pfn)?;
                    frames.push(pfn);
                }
                frames
            }
        };

        // Per-attachment descriptor on this process's chain.
        let desc_addr = self
            .kheap
            .alloc(ShmDesc::SIZE)
            .ok_or(KernelError::NoMemory)?;
        let proc_desc = self.read_desc(pid)?;
        ShmDesc {
            key,
            size: pages * PAGE_SIZE as u64,
            attach_vaddr: vaddr,
            npages: frames.len() as u32,
            pages: frames.clone(),
            next: proc_desc.shm_head,
        }
        .write(&mut self.machine.phys, desc_addr)?;
        // shm_head offset: magic+state(8)+pid(8)+name+crash/term(8)+
        // page_root+mm_head+files+sig (32).
        let proc_addr = self.proc(pid)?.desc_addr;
        self.machine
            .phys
            .write_u64(proc_addr + layout::proc_off::SHM_HEAD, desc_addr)?;
        self.reseal_desc(pid)?;

        // Map the frames and record a SHARED VMA.
        for (i, &pfn) in frames.iter().enumerate() {
            self.map_user_page(
                pid,
                vaddr + i as u64 * PAGE_SIZE as u64,
                pfn,
                PteFlags::PRESENT | PteFlags::WRITABLE | PteFlags::USER,
            )?;
        }
        self.vma_add(
            pid,
            vaddr,
            vaddr + pages * PAGE_SIZE as u64,
            layout::vmaflags::READ | layout::vmaflags::WRITE | layout::vmaflags::SHARED,
            0,
            0,
        )?;
        Ok(frames)
    }

    /// Finds a shared segment by key across all processes.
    fn find_shm(&self, key: u64) -> KernelResult<Option<ShmDesc>> {
        for p in &self.procs {
            let desc = match crate::layout::ProcDesc::read(&self.machine.phys, p.desc_addr) {
                Ok((d, _)) => d,
                Err(_) => continue,
            };
            let mut addr = desc.shm_head;
            while addr != 0 {
                let (shm, _) = ShmDesc::read(&self.machine.phys, addr)?;
                if shm.key == key {
                    return Ok(Some(shm));
                }
                addr = shm.next;
            }
        }
        Ok(None)
    }

    /// Installs a signal handler token.
    pub fn signal_install(&mut self, pid: u64, sig: u32, handler: u64) -> KernelResult<()> {
        if sig as usize >= layout::NSIG {
            return Err(KernelError::Inval("signal number"));
        }
        let desc = self.read_desc(pid)?;
        let (mut tab, _) = layout::SigTable::read(&self.machine.phys, desc.sig)?;
        tab.handlers[sig as usize] = handler;
        tab.write(&mut self.machine.phys, desc.sig)?;
        Ok(())
    }

    /// Reads a signal handler token.
    pub fn signal_handler(&self, pid: u64, sig: u32) -> KernelResult<u64> {
        let desc = self.read_desc(pid)?;
        let (tab, _) = layout::SigTable::read(&self.machine.phys, desc.sig)?;
        tab.handlers
            .get(sig as usize)
            .copied()
            .ok_or(KernelError::Inval("signal number"))
    }

    /// Marks the process as having registered a crash procedure (§3.2).
    pub fn register_crash_proc(&mut self, pid: u64) -> KernelResult<()> {
        let desc_addr = self.proc(pid)?.desc_addr;
        self.machine
            .phys
            .write_u32(desc_addr + layout::proc_off::CRASH_PROC, 1)?;
        self.reseal_desc(pid)?;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Pipes
// ---------------------------------------------------------------------------

impl Kernel {
    fn pipe_desc_addr(&self, id: u32) -> KernelResult<PhysAddr> {
        if id >= self.pipes.len() as u32 {
            return Err(KernelError::Inval("no such pipe"));
        }
        Ok(self.pipe_table_addr + id as u64 * PipeDesc::SIZE)
    }

    /// Creates a pipe, returning its id.
    pub fn pipe_create(&mut self) -> KernelResult<u32> {
        let id = self.pipes.len() as u32;
        if id >= MAX_PIPES {
            return Err(KernelError::TooMany("pipes"));
        }
        let buf_pfn = self.alloc_frame(FrameOwner::Kernel)?;
        self.machine.phys.zero_frame(buf_pfn)?;
        let desc_addr = self.pipe_table_addr + id as u64 * PipeDesc::SIZE;
        PipeDesc {
            locked: 0,
            rd: 0,
            wr: 0,
            buf_pfn,
        }
        .write(&mut self.machine.phys, desc_addr)?;
        self.pipes.push(PipeHandle {
            id,
            desc_addr,
            buf_pfn,
        });
        self.write_header()?;
        Ok(id)
    }

    /// Marks `pid` as a pipe user (sets the resource bit the crash kernel
    /// reports when pipes cannot be resurrected).
    pub fn pipe_attach(&mut self, pid: u64, id: u32) -> KernelResult<()> {
        let _ = self.pipe_desc_addr(id)?;
        self.update_res_mask(pid, resmask::PIPES, 0)
    }

    /// Takes the pipe semaphore; a crash while it is held leaves the pipe
    /// inconsistent (§3.3). Returns the descriptor.
    fn pipe_lock(&mut self, id: u32) -> KernelResult<(PhysAddr, PipeDesc)> {
        let addr = self.pipe_desc_addr(id)?;
        let (mut desc, _) = PipeDesc::read(&self.machine.phys, addr)?;
        desc.locked = 1;
        desc.write(&mut self.machine.phys, addr)?;
        // A fault striking mid-operation dies with the semaphore held —
        // exactly the inconsistent-pipe scenario the paper describes.
        if let Some(f) = self.pending_fault {
            if f.in_syscall {
                self.pending_fault = None;
                self.do_panic(f.cause);
                return Err(KernelError::Inval("kernel died holding pipe lock"));
            }
        }
        Ok((addr, desc))
    }

    fn pipe_unlock(&mut self, addr: PhysAddr, mut desc: PipeDesc) -> KernelResult<()> {
        desc.locked = 0;
        desc.write(&mut self.machine.phys, addr)?;
        Ok(())
    }

    /// Writes bytes into the pipe's ring buffer; returns bytes accepted.
    pub fn pipe_write(&mut self, id: u32, data: &[u8]) -> KernelResult<u64> {
        let (addr, mut desc) = self.pipe_lock(id)?;
        let mut written = 0u64;
        for &b in data {
            let next_wr = (desc.wr + 1) % (PIPE_CAP + 1);
            if next_wr == desc.rd {
                break; // full
            }
            self.machine
                .phys
                .write_u8(desc.buf_pfn * PAGE_SIZE as u64 + desc.wr as u64, b)?;
            desc.wr = next_wr;
            written += 1;
        }
        self.pipe_unlock(addr, desc)?;
        Ok(written)
    }

    /// Reads bytes from the pipe's ring buffer; returns bytes read.
    pub fn pipe_read(&mut self, id: u32, buf: &mut [u8]) -> KernelResult<u64> {
        let (addr, mut desc) = self.pipe_lock(id)?;
        let mut read = 0usize;
        while read < buf.len() && desc.rd != desc.wr {
            buf[read] = self
                .machine
                .phys
                .read_u8(desc.buf_pfn * PAGE_SIZE as u64 + desc.rd as u64)?;
            desc.rd = (desc.rd + 1) % (PIPE_CAP + 1);
            read += 1;
        }
        self.pipe_unlock(addr, desc)?;
        Ok(read as u64)
    }

    /// Bytes currently buffered in the pipe.
    pub fn pipe_len(&self, id: u32) -> KernelResult<u64> {
        let addr = self.pipe_desc_addr(id)?;
        let (desc, _) = PipeDesc::read(&self.machine.phys, addr)?;
        Ok(((desc.wr + PIPE_CAP + 1 - desc.rd) % (PIPE_CAP + 1)) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{Kernel, KernelConfig, SpawnSpec};
    use crate::program::{Program, ProgramRegistry, StepResult, UserApi};
    use ow_simhw::machine::MachineConfig;

    struct Nop;
    impl Program for Nop {
        fn step(&mut self, _api: &mut dyn UserApi) -> StepResult {
            StepResult::Running
        }
        fn save_state(&mut self, _api: &mut dyn UserApi) {}
    }

    fn boot() -> Kernel {
        let machine = crate::standard_machine(MachineConfig {
            ram_frames: 4096,
            cpus: 1,
            tlb_entries: 16,
            tlb_tagged: true,
            cost: ow_simhw::CostModel::zero_io(),
        });
        Kernel::boot_cold(machine, KernelConfig::default(), ProgramRegistry::new()).unwrap()
    }

    #[test]
    fn pipe_round_trips_bytes() {
        let mut k = boot();
        let id = k.pipe_create().unwrap();
        assert_eq!(k.pipe_write(id, b"hello world").unwrap(), 11);
        assert_eq!(k.pipe_len(id).unwrap(), 11);
        let mut buf = [0u8; 5];
        assert_eq!(k.pipe_read(id, &mut buf).unwrap(), 5);
        assert_eq!(&buf, b"hello");
        assert_eq!(k.pipe_len(id).unwrap(), 6);
    }

    #[test]
    fn pipe_wraps_and_respects_capacity() {
        let mut k = boot();
        let id = k.pipe_create().unwrap();
        let big = vec![7u8; PIPE_CAP as usize + 100];
        assert_eq!(k.pipe_write(id, &big).unwrap(), PIPE_CAP as u64);
        let mut buf = vec![0u8; 100];
        k.pipe_read(id, &mut buf).unwrap();
        // Space freed; writing wraps around the ring.
        assert_eq!(k.pipe_write(id, b"abc").unwrap(), 3);
        let mut rest = vec![0u8; PIPE_CAP as usize];
        let n = k.pipe_read(id, &mut rest).unwrap();
        assert_eq!(n, PIPE_CAP as u64 - 100 + 3);
        assert_eq!(&rest[n as usize - 3..n as usize], b"abc");
    }

    #[test]
    fn fault_during_pipe_op_leaves_lock_held() {
        let mut k = boot();
        let id = k.pipe_create().unwrap();
        k.pipe_write(id, b"pre-crash data").unwrap();
        k.pending_fault = Some(crate::kernel::PendingFault {
            cause: crate::kernel::PanicCause::Oops("pipe"),
            in_syscall: true,
        });
        assert!(k.pipe_write(id, b"never lands").is_err());
        assert!(k.panicked.is_some());
        let addr = k.pipe_table_addr;
        let (desc, _) = PipeDesc::read(&k.machine.phys, addr).unwrap();
        assert_eq!(desc.locked, 1, "semaphore must be held at crash time");
    }

    #[test]
    fn socket_chain_links_and_unlinks() {
        let mut k = boot();
        let pid = k.spawn(SpawnSpec::new("nop", Box::new(Nop))).unwrap();
        let s0 = k.sock_open(pid).unwrap();
        let s1 = k.sock_open(pid).unwrap();
        let desc = k.read_desc(pid).unwrap();
        assert_ne!(desc.sock_head, 0);
        let (d1, _) = SockDesc::read(&k.machine.phys, desc.sock_head).unwrap();
        assert_eq!(d1.sid, s1);
        let (d0, _) = SockDesc::read(&k.machine.phys, d1.next).unwrap();
        assert_eq!(d0.sid, s0);
        assert_eq!(d0.next, 0);
        // Unlink the middle of the chain.
        k.sock_close(pid, s0).unwrap();
        let desc = k.read_desc(pid).unwrap();
        let (d1, _) = SockDesc::read(&k.machine.phys, desc.sock_head).unwrap();
        assert_eq!(d1.next, 0);
        assert_ne!(k.res_mask(pid).unwrap() & resmask::SOCKETS, 0);
        k.sock_close(pid, s1).unwrap();
        assert_eq!(k.res_mask(pid).unwrap() & resmask::SOCKETS, 0);
        assert_eq!(k.read_desc(pid).unwrap().sock_head, 0);
    }

    #[test]
    fn socket_buffers_unacked_payload() {
        let mut k = boot();
        let pid = k.spawn(SpawnSpec::new("nop", Box::new(Nop))).unwrap();
        let sid = k.sock_open(pid).unwrap();
        k.sock_send(pid, sid, b"unacked").unwrap();
        let desc_addr = k.read_desc(pid).unwrap().sock_head;
        let (d, _) = SockDesc::read(&k.machine.phys, desc_addr).unwrap();
        assert_eq!(d.outbuf_len, 7);
        assert_eq!(d.seq, 7);
        let mut buf = vec![0u8; 7];
        k.machine
            .phys
            .read(d.outbuf_pfn * PAGE_SIZE as u64, &mut buf)
            .unwrap();
        assert_eq!(&buf, b"unacked");
        // Draining acknowledges.
        let out = k.sock_drain(pid, sid).unwrap();
        assert_eq!(out.len(), 1);
        let (d, _) = SockDesc::read(&k.machine.phys, desc_addr).unwrap();
        assert_eq!(d.outbuf_len, 0);
        assert_eq!(d.seq, 7, "sequence number advances monotonically");
    }
}
