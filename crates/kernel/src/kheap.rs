//! Kernel heap: a first-fit free-list allocator over the kernel region.
//!
//! All kernel structures ([`crate::layout`]) are allocated from here, so
//! they live at addresses inside the owning kernel's region of simulated
//! physical memory — which is what makes them (a) reachable by the crash
//! kernel and (b) corruptible by wild writes.

use ow_simhw::PhysAddr;

/// Allocation alignment (every structure starts 8-aligned).
const ALIGN: u64 = 8;

/// A first-fit free-list allocator over `[base, base+len)`.
#[derive(Debug, Clone)]
pub struct KHeap {
    base: PhysAddr,
    len: u64,
    /// Sorted, coalesced free blocks `(addr, len)`.
    free: Vec<(PhysAddr, u64)>,
    allocated: u64,
}

impl KHeap {
    /// Creates a heap over `[base, base+len)`.
    pub fn new(base: PhysAddr, len: u64) -> Self {
        KHeap {
            base,
            len,
            free: vec![(base, len)],
            allocated: 0,
        }
    }

    /// Start of the heap region.
    pub fn base(&self) -> PhysAddr {
        self.base
    }

    /// Total heap bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether no bytes are currently allocated.
    pub fn is_empty(&self) -> bool {
        self.allocated == 0
    }

    /// Bytes currently allocated.
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated
    }

    /// Allocates `size` bytes (rounded up to 8), or `None` when exhausted.
    pub fn alloc(&mut self, size: u64) -> Option<PhysAddr> {
        let size = size.max(1).div_ceil(ALIGN) * ALIGN;
        for i in 0..self.free.len() {
            let (addr, blen) = self.free[i];
            if blen >= size {
                if blen == size {
                    self.free.remove(i);
                } else {
                    self.free[i] = (addr + size, blen - size);
                }
                self.allocated += size;
                return Some(addr);
            }
        }
        None
    }

    /// Frees a block previously returned by [`KHeap::alloc`] with the same
    /// `size` (rounded internally the same way).
    ///
    /// # Panics
    ///
    /// Panics if the block is outside the heap or overlaps a free block
    /// (double free) — heap corruption in the substrate is a bug.
    pub fn free(&mut self, addr: PhysAddr, size: u64) {
        let size = size.max(1).div_ceil(ALIGN) * ALIGN;
        // ow-lint: allow(recovery-panic) -- documented # Panics contract: heap corruption in the substrate is a bug
        assert!(
            addr >= self.base && addr + size <= self.base + self.len,
            "free of {addr:#x}+{size} outside heap"
        );
        let pos = self.free.partition_point(|&(a, _)| a < addr);
        if let Some(&(prev_a, prev_l)) = pos.checked_sub(1).and_then(|p| self.free.get(p)) {
            // ow-lint: allow(recovery-panic) -- documented # Panics contract: double free is a substrate bug
            assert!(prev_a + prev_l <= addr, "double free at {addr:#x}");
        }
        if let Some(&(next_a, _)) = self.free.get(pos) {
            // ow-lint: allow(recovery-panic) -- documented # Panics contract: double free is a substrate bug
            assert!(addr + size <= next_a, "double free at {addr:#x}");
        }
        self.free.insert(pos, (addr, size));
        self.allocated -= size;
        // Coalesce with neighbours.
        if pos + 1 < self.free.len() {
            let (a, l) = self.free[pos];
            let (na, nl) = self.free[pos + 1];
            if a + l == na {
                self.free[pos] = (a, l + nl);
                self.free.remove(pos + 1);
            }
        }
        if pos > 0 {
            let (pa, pl) = self.free[pos - 1];
            let (a, l) = self.free[pos];
            if pa + pl == a {
                self.free[pos - 1] = (pa, pl + l);
                self.free.remove(pos);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_reuse() {
        let mut h = KHeap::new(0x1000, 0x100);
        let a = h.alloc(24).unwrap();
        let b = h.alloc(24).unwrap();
        assert_ne!(a, b);
        h.free(a, 24);
        let c = h.alloc(24).unwrap();
        assert_eq!(a, c, "first-fit should reuse the freed block");
    }

    #[test]
    fn exhaustion() {
        let mut h = KHeap::new(0, 64);
        assert!(h.alloc(40).is_some());
        assert!(h.alloc(40).is_none());
        assert!(h.alloc(24).is_some());
        assert!(h.alloc(1).is_none());
    }

    #[test]
    fn coalescing_allows_big_realloc() {
        let mut h = KHeap::new(0, 96);
        let a = h.alloc(32).unwrap();
        let b = h.alloc(32).unwrap();
        let c = h.alloc(32).unwrap();
        h.free(a, 32);
        h.free(c, 32);
        h.free(b, 32);
        assert!(h.is_empty());
        assert!(h.alloc(96).is_some(), "freed blocks must coalesce");
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut h = KHeap::new(0, 64);
        let a = h.alloc(16).unwrap();
        h.free(a, 16);
        h.free(a, 16);
    }

    #[test]
    fn alignment_is_maintained() {
        let mut h = KHeap::new(0x1000, 0x100);
        let a = h.alloc(3).unwrap();
        let b = h.alloc(5).unwrap();
        assert_eq!(a % 8, 0);
        assert_eq!(b % 8, 0);
        assert_eq!(b - a, 8);
    }
}
