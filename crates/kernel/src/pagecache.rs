//! Open files and the page cache.
//!
//! Writes land in per-file cached pages (frames tagged
//! [`FrameOwner::PageCache`]) whose descriptors — [`PageCacheNode`]s with a
//! dirty flag and file offset — live in kernel memory, exactly the buffer
//! tree the paper's crash kernel walks to flush dirty file data during
//! resurrection (§3.3). [`flush_cache`] is that shared walk: the main kernel
//! uses it for `fsync`/`close`, the crash kernel for resurrection.

use crate::{
    error::KernelError,
    fs::Fs,
    kernel::Kernel,
    layout::{oflags, FileRecord, FileTable, PageCacheNode},
    KernelResult,
};
use ow_layout::Record;
use ow_simhw::{machine::FrameOwner, machine::Machine, PhysAddr, PAGE_SIZE};

/// Walks a file's cache chain, writing every dirty page back to disk and
/// clearing its dirty flag. Returns the number of pages flushed.
///
/// Shared by the main kernel (`fsync`, `close`) and the crash kernel
/// (resurrection flushes dirty buffers of every reopened file).
pub fn flush_cache(m: &mut Machine, fs: &Fs, frec_addr: PhysAddr) -> KernelResult<u64> {
    let (frec, _) = FileRecord::read(&m.phys, frec_addr)?;
    // Fires mid-writeback on whichever side runs it: the main kernel
    // (fsync/close) or the crash kernel (resurrection buffer flush).
    ow_crashpoint::crash_point!("kernel.pagecache.flush.walk");
    let mut flushed = 0;
    let mut node_addr = frec.cache_head;
    while node_addr != 0 {
        let (node, _) = PageCacheNode::read(&m.phys, node_addr)?;
        if node.dirty != 0 {
            let valid = (frec.fsize.saturating_sub(node.file_off)).min(PAGE_SIZE as u64);
            if valid > 0 {
                let mut buf = vec![0u8; valid as usize];
                m.phys.read(node.pfn * PAGE_SIZE as u64, &mut buf)?;
                fs.write_at(m, frec.inode as u32, node.file_off, &buf)?;
            }
            // Clear the dirty flag (offset: magic+pad 8 + file_off 8 + pfn 8).
            m.phys.write_u32(node_addr + 24, 0)?;
            flushed += 1;
        }
        node_addr = node.next;
    }
    Ok(flushed)
}

impl Kernel {
    fn file_table(&self, pid: u64) -> KernelResult<(PhysAddr, FileTable)> {
        let desc = self.read_desc(pid)?;
        let (tab, _) = FileTable::read(&self.machine.phys, desc.files)?;
        Ok((desc.files, tab))
    }

    fn frec_addr(&self, pid: u64, fd: u32) -> KernelResult<PhysAddr> {
        let (_, tab) = self.file_table(pid)?;
        let addr = *tab.fds.get(fd as usize).ok_or(KernelError::BadFd(fd))?;
        if addr == 0 {
            return Err(KernelError::BadFd(fd));
        }
        Ok(addr)
    }

    fn read_frec(&self, addr: PhysAddr) -> KernelResult<FileRecord> {
        Ok(FileRecord::read(&self.machine.phys, addr)?.0)
    }

    fn write_frec(&mut self, addr: PhysAddr, frec: &FileRecord) -> KernelResult<()> {
        frec.write(&mut self.machine.phys, addr)?;
        Ok(())
    }

    /// Opens `path` for `pid`, returning the fd.
    pub fn file_open(&mut self, pid: u64, path: &str, flags: u32) -> KernelResult<u32> {
        let fs = self.fs.clone();
        let ino = match fs.lookup(&mut self.machine, path)? {
            Some(ino) => {
                if flags & oflags::TRUNC != 0 {
                    fs.truncate(&mut self.machine, ino)?;
                }
                ino
            }
            None if flags & oflags::CREATE != 0 => fs.create(&mut self.machine, path)?,
            None => return Err(KernelError::NoEnt(path.into())),
        };
        let fsize = fs.size_of(&mut self.machine, ino)?;
        let (tab_addr, mut tab) = self.file_table(pid)?;
        let slot = tab
            .fds
            .iter()
            .position(|&a| a == 0)
            .ok_or(KernelError::TooMany("fds"))? as u32;
        let frec_addr = self
            .kheap
            .alloc(FileRecord::SIZE)
            .ok_or(KernelError::NoMemory)?;
        let frec = FileRecord {
            flags,
            refcnt: 1,
            offset: if flags & oflags::APPEND != 0 {
                fsize
            } else {
                0
            },
            fsize,
            inode: ino as u64,
            path: path.to_string(),
            cache_head: 0,
        };
        self.write_frec(frec_addr, &frec)?;
        tab.fds[slot as usize] = frec_addr;
        tab.write(&mut self.machine.phys, tab_addr)?;
        Ok(slot)
    }

    /// Closes `fd`: writes back dirty pages, frees cache and record.
    pub fn file_close(&mut self, pid: u64, fd: u32) -> KernelResult<()> {
        let frec_addr = self.frec_addr(pid, fd)?;
        let fs = self.fs.clone();
        flush_cache(&mut self.machine, &fs, frec_addr)?;
        // Free the cache chain.
        let frec = self.read_frec(frec_addr)?;
        let mut node_addr = frec.cache_head;
        while node_addr != 0 {
            let (node, _) = PageCacheNode::read(&self.machine.phys, node_addr)?;
            self.free_frame(node.pfn);
            self.kheap.free(node_addr, PageCacheNode::SIZE);
            node_addr = node.next;
        }
        self.kheap.free(frec_addr, FileRecord::SIZE);
        let (tab_addr, mut tab) = self.file_table(pid)?;
        tab.fds[fd as usize] = 0;
        tab.write(&mut self.machine.phys, tab_addr)?;
        Ok(())
    }

    /// Finds the cache node for `file_off`, if cached.
    fn cache_find(
        &self,
        cache_head: PhysAddr,
        file_off: u64,
    ) -> KernelResult<Option<(PhysAddr, PageCacheNode)>> {
        let mut node_addr = cache_head;
        while node_addr != 0 {
            let (node, _) = PageCacheNode::read(&self.machine.phys, node_addr)?;
            if node.file_off == file_off {
                return Ok(Some((node_addr, node)));
            }
            node_addr = node.next;
        }
        Ok(None)
    }

    /// Ensures a cache page exists for `file_off` of the file at
    /// `frec_addr`, filling it from disk, and returns its node address.
    fn cache_ensure(&mut self, frec_addr: PhysAddr, file_off: u64) -> KernelResult<PhysAddr> {
        let frec = self.read_frec(frec_addr)?;
        if let Some((addr, _)) = self.cache_find(frec.cache_head, file_off)? {
            return Ok(addr);
        }
        let pfn = self.alloc_frame(FrameOwner::PageCache)?;
        self.machine.phys.zero_frame(pfn)?;
        // Fill from disk (read-modify-write semantics for partial writes).
        let fs = self.fs.clone();
        let mut buf = vec![0u8; PAGE_SIZE];
        let n = fs.read_at(&mut self.machine, frec.inode as u32, file_off, &mut buf)?;
        if n > 0 {
            self.machine.phys.write(pfn * PAGE_SIZE as u64, &buf[..n])?;
        }
        let node_addr = self
            .kheap
            .alloc(PageCacheNode::SIZE)
            .ok_or(KernelError::NoMemory)?;
        PageCacheNode {
            file_off,
            pfn,
            dirty: 0,
            next: frec.cache_head,
        }
        .write(&mut self.machine.phys, node_addr)?;
        let mut frec = frec;
        frec.cache_head = node_addr;
        self.write_frec(frec_addr, &frec)?;
        Ok(node_addr)
    }

    /// Writes `data` at the file's current offset through the page cache.
    pub fn file_write(&mut self, pid: u64, fd: u32, data: &[u8]) -> KernelResult<u64> {
        let frec_addr = self.frec_addr(pid, fd)?;
        let frec = self.read_frec(frec_addr)?;
        if frec.flags & oflags::WRITE == 0 {
            return Err(KernelError::Inval("file not open for writing"));
        }
        let mut offset = if frec.flags & oflags::APPEND != 0 {
            frec.fsize
        } else {
            frec.offset
        };
        // Offset resolved, nothing written yet: a crash here loses the
        // whole write but must leave the previous contents intact.
        ow_crashpoint::crash_point!("kernel.pagecache.write.pre_commit");
        let mut done = 0usize;
        while done < data.len() {
            let page_off = offset & !(PAGE_SIZE as u64 - 1);
            let in_page = (offset - page_off) as usize;
            let chunk = (PAGE_SIZE - in_page).min(data.len() - done);
            let node_addr = self.cache_ensure(frec_addr, page_off)?;
            let (node, _) = PageCacheNode::read(&self.machine.phys, node_addr)?;
            self.machine.phys.write(
                node.pfn * PAGE_SIZE as u64 + in_page as u64,
                &data[done..done + chunk],
            )?;
            // Mark dirty.
            self.machine.phys.write_u32(node_addr + 24, 1)?;
            offset += chunk as u64;
            done += chunk;
        }
        // Re-read: `cache_ensure` may have pushed new nodes onto the chain
        // head; writing the stale copy back would orphan them.
        let mut frec = self.read_frec(frec_addr)?;
        frec.offset = offset;
        frec.fsize = frec.fsize.max(offset);
        self.write_frec(frec_addr, &frec)?;
        Ok(data.len() as u64)
    }

    /// Reads from the file's current offset (cache first, then disk).
    pub fn file_read(&mut self, pid: u64, fd: u32, buf: &mut [u8]) -> KernelResult<u64> {
        let frec_addr = self.frec_addr(pid, fd)?;
        let mut frec = self.read_frec(frec_addr)?;
        if frec.offset >= frec.fsize {
            return Ok(0);
        }
        let want = (buf.len() as u64).min(frec.fsize - frec.offset) as usize;
        let mut done = 0usize;
        let fs = self.fs.clone();
        while done < want {
            let offset = frec.offset + done as u64;
            let page_off = offset & !(PAGE_SIZE as u64 - 1);
            let in_page = (offset - page_off) as usize;
            let chunk = (PAGE_SIZE - in_page).min(want - done);
            if let Some((_, node)) = self.cache_find(frec.cache_head, page_off)? {
                self.machine.phys.read(
                    node.pfn * PAGE_SIZE as u64 + in_page as u64,
                    &mut buf[done..done + chunk],
                )?;
            } else {
                fs.read_at(
                    &mut self.machine,
                    frec.inode as u32,
                    offset,
                    &mut buf[done..done + chunk],
                )?;
            }
            done += chunk;
        }
        frec.offset += want as u64;
        self.write_frec(frec_addr, &frec)?;
        Ok(want as u64)
    }

    /// Sets the file offset.
    pub fn file_seek(&mut self, pid: u64, fd: u32, pos: u64) -> KernelResult<()> {
        let frec_addr = self.frec_addr(pid, fd)?;
        let mut frec = self.read_frec(frec_addr)?;
        frec.offset = pos;
        self.write_frec(frec_addr, &frec)
    }

    /// Flushes the file's dirty cached pages to disk.
    pub fn file_fsync(&mut self, pid: u64, fd: u32) -> KernelResult<u64> {
        let frec_addr = self.frec_addr(pid, fd)?;
        let fs = self.fs.clone();
        ow_crashpoint::crash_point!("kernel.pagecache.fsync.flush");
        flush_cache(&mut self.machine, &fs, frec_addr)
    }

    /// Current logical size of an open file.
    pub fn file_size(&self, pid: u64, fd: u32) -> KernelResult<u64> {
        let frec_addr = self.frec_addr(pid, fd)?;
        Ok(self.read_frec(frec_addr)?.fsize)
    }
}
