//! A miniature on-disk filesystem.
//!
//! The evaluation needs real persistence: crash procedures save application
//! state to files that must survive the microreboot, the crash kernel
//! re-mounts the same filesystem at the same mount point (§3.2), reopens
//! files by path, and flushes dirty page-cache buffers (§3.3). This module
//! provides the disk format and block-level operations; the open-file layer
//! and page cache sit above it in [`crate::Kernel`].
//!
//! On-disk layout (4 KiB blocks):
//!
//! ```text
//! block 0              superblock
//! block 1..1+IB        inode table (128-byte inodes, path stored inline)
//! block 1+IB..1+IB+BB  block-allocation bitmap (1 byte per block)
//! block data_start..   file data
//! ```
//!
//! Files use 8 direct block pointers plus one indirect block (1024 more),
//! for a 4 MiB maximum file size — enough for every workload at simulator
//! scale.

use crate::error::KernelError;
use ow_simhw::{machine::Machine, DevId};

/// Filesystem block size (equals the page size).
pub const BLOCK_SIZE: usize = 4096;

/// Superblock magic ("OWFS").
pub const FS_MAGIC: u32 = 0x5346_574f;

/// Inode-in-use marker ("INOD").
const INODE_USED: u32 = 0x444f_4e49;

/// Bytes per on-disk inode.
const INODE_SIZE: usize = 128;

/// Direct block pointers per inode.
const NDIRECT: usize = 8;

/// Pointers in the indirect block.
const NINDIRECT: usize = BLOCK_SIZE / 4;

/// Maximum file size in blocks.
pub const MAX_FILE_BLOCKS: usize = NDIRECT + NINDIRECT;

/// Maximum stored path length (matches [`crate::layout::PATH_LEN`]).
const FPATH_LEN: usize = 64;

/// Parsed superblock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuperBlock {
    /// Total blocks on the device.
    pub nblocks: u32,
    /// Number of inodes.
    pub ninodes: u32,
    /// First block of the inode table.
    pub itable_start: u32,
    /// Blocks in the inode table.
    pub itable_blocks: u32,
    /// First block of the allocation bitmap.
    pub bitmap_start: u32,
    /// Blocks in the bitmap.
    pub bitmap_blocks: u32,
    /// First data block.
    pub data_start: u32,
}

/// An in-memory inode image.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Inode {
    used: bool,
    size: u64,
    path: String,
    direct: [u32; NDIRECT],
    indirect: u32,
}

impl Inode {
    fn empty() -> Self {
        Inode {
            used: false,
            size: 0,
            path: String::new(),
            direct: [0; NDIRECT],
            indirect: 0,
        }
    }

    fn to_bytes(&self) -> [u8; INODE_SIZE] {
        let mut b = [0u8; INODE_SIZE];
        b[0..4].copy_from_slice(&(if self.used { INODE_USED } else { 0 }).to_le_bytes());
        b[4..12].copy_from_slice(&self.size.to_le_bytes());
        let p = self.path.as_bytes();
        let n = p.len().min(FPATH_LEN - 1);
        b[12..12 + n].copy_from_slice(&p[..n]);
        for (i, d) in self.direct.iter().enumerate() {
            let off = 12 + FPATH_LEN + i * 4;
            b[off..off + 4].copy_from_slice(&d.to_le_bytes());
        }
        let off = 12 + FPATH_LEN + NDIRECT * 4;
        b[off..off + 4].copy_from_slice(&self.indirect.to_le_bytes());
        b
    }

    fn from_bytes(b: &[u8]) -> Self {
        let used = le_u32(b, 0) == INODE_USED;
        let size = le_u64(b, 4);
        let name = b.get(12..12 + FPATH_LEN).unwrap_or(&[]);
        let pend = name.iter().position(|&c| c == 0).unwrap_or(name.len());
        let path = String::from_utf8_lossy(name.get(..pend).unwrap_or(&[])).into_owned();
        let mut direct = [0u32; NDIRECT];
        for (i, d) in direct.iter_mut().enumerate() {
            *d = le_u32(b, 12 + FPATH_LEN + i * 4);
        }
        let indirect = le_u32(b, 12 + FPATH_LEN + NDIRECT * 4);
        Inode {
            used,
            size,
            path,
            direct,
            indirect,
        }
    }
}

/// Little-endian `u32` at `off`, zero-padding past the end of `b`. On-disk
/// metadata is decoded on the resurrection path too, where a truncated or
/// corrupted buffer must decode to a value validation rejects, not panic.
fn le_u32(b: &[u8], off: usize) -> u32 {
    let mut v = 0u32;
    let mut k = 4usize;
    while k > 0 {
        k -= 1;
        v = (v << 8) | u32::from(b.get(off + k).copied().unwrap_or(0));
    }
    v
}

/// Little-endian `u64` at `off`, zero-padding past the end of `b`.
fn le_u64(b: &[u8], off: usize) -> u64 {
    let mut v = 0u64;
    let mut k = 8usize;
    while k > 0 {
        k -= 1;
        v = (v << 8) | u64::from(b.get(off + k).copied().unwrap_or(0));
    }
    v
}

/// A mounted filesystem: a host-side handle; all state is on the device.
#[derive(Debug, Clone)]
pub struct Fs {
    /// Device the filesystem lives on.
    pub dev: DevId,
    sb: SuperBlock,
}

impl Fs {
    /// Formats the device with `ninodes` inodes and mounts it.
    pub fn format(m: &mut Machine, dev: DevId, ninodes: u32) -> Result<Fs, KernelError> {
        let dev_size = {
            let d = m.device(dev);
            d.size()
        };
        let nblocks = (dev_size as usize / BLOCK_SIZE) as u32;
        let itable_blocks = (ninodes as usize * INODE_SIZE).div_ceil(BLOCK_SIZE) as u32;
        let bitmap_blocks = (nblocks as usize).div_ceil(BLOCK_SIZE) as u32;
        let sb = SuperBlock {
            nblocks,
            ninodes,
            itable_start: 1,
            itable_blocks,
            bitmap_start: 1 + itable_blocks,
            bitmap_blocks,
            data_start: 1 + itable_blocks + bitmap_blocks,
        };
        if sb.data_start >= nblocks {
            return Err(KernelError::Inval("device too small to format"));
        }
        // Superblock.
        let mut blk = [0u8; BLOCK_SIZE];
        blk[0..4].copy_from_slice(&FS_MAGIC.to_le_bytes());
        for (i, v) in [
            sb.nblocks,
            sb.ninodes,
            sb.itable_start,
            sb.itable_blocks,
            sb.bitmap_start,
            sb.bitmap_blocks,
            sb.data_start,
        ]
        .iter()
        .enumerate()
        {
            blk[4 + i * 4..8 + i * 4].copy_from_slice(&v.to_le_bytes());
        }
        m.dev_write(dev, 0, &blk)?;
        // Zero the inode table and bitmap.
        let zero = [0u8; BLOCK_SIZE];
        for b in sb.itable_start..sb.data_start {
            m.dev_write(dev, b as u64 * BLOCK_SIZE as u64, &zero)?;
        }
        Ok(Fs { dev, sb })
    }

    /// Mounts an already-formatted device.
    pub fn mount(m: &mut Machine, dev: DevId) -> Result<Fs, KernelError> {
        let mut blk = [0u8; 32];
        m.dev_read(dev, 0, &mut blk)?;
        if le_u32(&blk, 0) != FS_MAGIC {
            return Err(KernelError::Corrupt("superblock magic".into()));
        }
        let g = |i: usize| le_u32(&blk, 4 + i * 4);
        let sb = SuperBlock {
            nblocks: g(0),
            ninodes: g(1),
            itable_start: g(2),
            itable_blocks: g(3),
            bitmap_start: g(4),
            bitmap_blocks: g(5),
            data_start: g(6),
        };
        if sb.data_start >= sb.nblocks {
            return Err(KernelError::Corrupt("superblock geometry".into()));
        }
        Ok(Fs { dev, sb })
    }

    /// The parsed superblock.
    pub fn superblock(&self) -> &SuperBlock {
        &self.sb
    }

    fn read_inode(&self, m: &mut Machine, ino: u32) -> Result<Inode, KernelError> {
        if ino >= self.sb.ninodes {
            return Err(KernelError::Inval("inode id out of range"));
        }
        let mut b = [0u8; INODE_SIZE];
        let off = self.sb.itable_start as u64 * BLOCK_SIZE as u64 + ino as u64 * INODE_SIZE as u64;
        m.dev_read(self.dev, off, &mut b)?;
        Ok(Inode::from_bytes(&b))
    }

    fn write_inode(&self, m: &mut Machine, ino: u32, inode: &Inode) -> Result<(), KernelError> {
        let off = self.sb.itable_start as u64 * BLOCK_SIZE as u64 + ino as u64 * INODE_SIZE as u64;
        m.dev_write(self.dev, off, &inode.to_bytes())?;
        Ok(())
    }

    fn alloc_block(&self, m: &mut Machine) -> Result<u32, KernelError> {
        for bb in 0..self.sb.bitmap_blocks {
            let mut blk = [0u8; BLOCK_SIZE];
            let off = (self.sb.bitmap_start + bb) as u64 * BLOCK_SIZE as u64;
            m.dev_read(self.dev, off, &mut blk)?;
            for (i, byte) in blk.iter_mut().enumerate() {
                let bno = bb * BLOCK_SIZE as u32 + i as u32;
                if bno < self.sb.data_start {
                    continue;
                }
                if bno >= self.sb.nblocks {
                    break;
                }
                if *byte == 0 {
                    *byte = 1;
                    m.dev_write(self.dev, off, &blk)?;
                    return Ok(bno);
                }
            }
        }
        Err(KernelError::NoSpace)
    }

    fn free_block(&self, m: &mut Machine, bno: u32) -> Result<(), KernelError> {
        let bb = bno / BLOCK_SIZE as u32;
        let idx = (bno % BLOCK_SIZE as u32) as u64;
        let off = (self.sb.bitmap_start + bb) as u64 * BLOCK_SIZE as u64 + idx;
        m.dev_write(self.dev, off, &[0u8])?;
        Ok(())
    }

    /// Finds the inode id for `path`.
    pub fn lookup(&self, m: &mut Machine, path: &str) -> Result<Option<u32>, KernelError> {
        for ino in 0..self.sb.ninodes {
            let inode = self.read_inode(m, ino)?;
            if inode.used && inode.path == path {
                return Ok(Some(ino));
            }
        }
        Ok(None)
    }

    /// Creates an empty file, failing if it already exists.
    pub fn create(&self, m: &mut Machine, path: &str) -> Result<u32, KernelError> {
        if path.is_empty() || path.len() >= FPATH_LEN {
            return Err(KernelError::Inval("path length"));
        }
        if self.lookup(m, path)?.is_some() {
            return Err(KernelError::Exists(path.into()));
        }
        for ino in 0..self.sb.ninodes {
            let inode = self.read_inode(m, ino)?;
            if !inode.used {
                let mut fresh = Inode::empty();
                fresh.used = true;
                fresh.path = path.to_string();
                self.write_inode(m, ino, &fresh)?;
                return Ok(ino);
            }
        }
        Err(KernelError::NoSpace)
    }

    /// Removes a file and frees its blocks.
    pub fn unlink(&self, m: &mut Machine, path: &str) -> Result<(), KernelError> {
        let ino = self
            .lookup(m, path)?
            .ok_or_else(|| KernelError::NoEnt(path.into()))?;
        self.truncate(m, ino)?;
        self.write_inode(m, ino, &Inode::empty())?;
        Ok(())
    }

    /// File size in bytes.
    pub fn size_of(&self, m: &mut Machine, ino: u32) -> Result<u64, KernelError> {
        let inode = self.read_inode(m, ino)?;
        if !inode.used {
            return Err(KernelError::Inval("stale inode"));
        }
        Ok(inode.size)
    }

    /// The path stored in the inode.
    pub fn path_of(&self, m: &mut Machine, ino: u32) -> Result<String, KernelError> {
        let inode = self.read_inode(m, ino)?;
        if !inode.used {
            return Err(KernelError::Inval("stale inode"));
        }
        Ok(inode.path)
    }

    /// Resolves the data block for logical block `lbn`, allocating when
    /// `alloc` is set.
    fn bmap(
        &self,
        m: &mut Machine,
        inode: &mut Inode,
        lbn: usize,
        alloc: bool,
    ) -> Result<Option<u32>, KernelError> {
        if lbn < NDIRECT {
            if inode.direct[lbn] == 0 {
                if !alloc {
                    return Ok(None);
                }
                inode.direct[lbn] = self.alloc_block(m)?;
            }
            return Ok(Some(inode.direct[lbn]));
        }
        let ind = lbn - NDIRECT;
        if ind >= NINDIRECT {
            return Err(KernelError::Inval("file too large"));
        }
        if inode.indirect == 0 {
            if !alloc {
                return Ok(None);
            }
            let b = self.alloc_block(m)?;
            let zero = [0u8; BLOCK_SIZE];
            m.dev_write(self.dev, b as u64 * BLOCK_SIZE as u64, &zero)?;
            inode.indirect = b;
        }
        let slot = inode.indirect as u64 * BLOCK_SIZE as u64 + ind as u64 * 4;
        let mut e = [0u8; 4];
        m.dev_read(self.dev, slot, &mut e)?;
        let mut bno = u32::from_le_bytes(e);
        if bno == 0 {
            if !alloc {
                return Ok(None);
            }
            bno = self.alloc_block(m)?;
            m.dev_write(self.dev, slot, &bno.to_le_bytes())?;
        }
        Ok(Some(bno))
    }

    /// Reads up to `buf.len()` bytes at `offset`; returns bytes read
    /// (short at EOF, zero past it).
    pub fn read_at(
        &self,
        m: &mut Machine,
        ino: u32,
        offset: u64,
        buf: &mut [u8],
    ) -> Result<usize, KernelError> {
        let mut inode = self.read_inode(m, ino)?;
        if !inode.used {
            return Err(KernelError::Inval("stale inode"));
        }
        if offset >= inode.size {
            return Ok(0);
        }
        let want = buf.len().min((inode.size - offset) as usize);
        let mut done = 0usize;
        while done < want {
            let pos = offset + done as u64;
            let lbn = (pos / BLOCK_SIZE as u64) as usize;
            let boff = (pos % BLOCK_SIZE as u64) as usize;
            let chunk = (BLOCK_SIZE - boff).min(want - done);
            match self.bmap(m, &mut inode, lbn, false)? {
                Some(bno) => {
                    m.dev_read(
                        self.dev,
                        bno as u64 * BLOCK_SIZE as u64 + boff as u64,
                        &mut buf[done..done + chunk],
                    )?;
                }
                None => {
                    // Hole: reads as zeros.
                    buf[done..done + chunk].fill(0);
                }
            }
            done += chunk;
        }
        Ok(want)
    }

    /// Writes `data` at `offset`, extending the file as needed.
    pub fn write_at(
        &self,
        m: &mut Machine,
        ino: u32,
        offset: u64,
        data: &[u8],
    ) -> Result<(), KernelError> {
        let mut inode = self.read_inode(m, ino)?;
        if !inode.used {
            return Err(KernelError::Inval("stale inode"));
        }
        let mut done = 0usize;
        while done < data.len() {
            let pos = offset + done as u64;
            let lbn = (pos / BLOCK_SIZE as u64) as usize;
            let boff = (pos % BLOCK_SIZE as u64) as usize;
            let chunk = (BLOCK_SIZE - boff).min(data.len() - done);
            let bno = self
                .bmap(m, &mut inode, lbn, true)?
                .ok_or_else(|| KernelError::Corrupt("bmap with alloc returned no block".into()))?;
            m.dev_write(
                self.dev,
                bno as u64 * BLOCK_SIZE as u64 + boff as u64,
                &data[done..done + chunk],
            )?;
            done += chunk;
        }
        let end = offset + data.len() as u64;
        if end > inode.size {
            inode.size = end;
        }
        self.write_inode(m, ino, &inode)?;
        Ok(())
    }

    /// Truncates a file to zero length, freeing its blocks.
    pub fn truncate(&self, m: &mut Machine, ino: u32) -> Result<(), KernelError> {
        let mut inode = self.read_inode(m, ino)?;
        if !inode.used {
            return Err(KernelError::Inval("stale inode"));
        }
        for d in inode.direct {
            if d != 0 {
                self.free_block(m, d)?;
            }
        }
        if inode.indirect != 0 {
            let mut blk = [0u8; BLOCK_SIZE];
            m.dev_read(
                self.dev,
                inode.indirect as u64 * BLOCK_SIZE as u64,
                &mut blk,
            )?;
            for i in 0..NINDIRECT {
                let bno = u32::from_le_bytes(blk[i * 4..i * 4 + 4].try_into().unwrap());
                if bno != 0 {
                    self.free_block(m, bno)?;
                }
            }
            self.free_block(m, inode.indirect)?;
        }
        inode.direct = [0; NDIRECT];
        inode.indirect = 0;
        inode.size = 0;
        self.write_inode(m, ino, &inode)?;
        Ok(())
    }

    /// Lists all files as `(path, size)` pairs.
    pub fn list(&self, m: &mut Machine) -> Result<Vec<(String, u64)>, KernelError> {
        let mut out = Vec::new();
        for ino in 0..self.sb.ninodes {
            let inode = self.read_inode(m, ino)?;
            if inode.used {
                out.push((inode.path, inode.size));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ow_simhw::machine::MachineConfig;

    fn setup() -> (Machine, Fs) {
        let mut m = Machine::new(MachineConfig {
            ram_frames: 64,
            cpus: 1,
            tlb_entries: 16,
            tlb_tagged: true,
            cost: ow_simhw::CostModel::zero_io(),
        });
        let dev = m.add_device("sda", 2 * 1024 * 1024);
        let fs = Fs::format(&mut m, dev, 64).unwrap();
        (m, fs)
    }

    #[test]
    fn create_lookup_unlink() {
        let (mut m, fs) = setup();
        let ino = fs.create(&mut m, "/etc/motd").unwrap();
        assert_eq!(fs.lookup(&mut m, "/etc/motd").unwrap(), Some(ino));
        assert!(matches!(
            fs.create(&mut m, "/etc/motd"),
            Err(KernelError::Exists(_))
        ));
        fs.unlink(&mut m, "/etc/motd").unwrap();
        assert_eq!(fs.lookup(&mut m, "/etc/motd").unwrap(), None);
    }

    #[test]
    fn write_read_round_trip() {
        let (mut m, fs) = setup();
        let ino = fs.create(&mut m, "/f").unwrap();
        fs.write_at(&mut m, ino, 0, b"hello world").unwrap();
        let mut buf = [0u8; 11];
        assert_eq!(fs.read_at(&mut m, ino, 0, &mut buf).unwrap(), 11);
        assert_eq!(&buf, b"hello world");
        assert_eq!(fs.size_of(&mut m, ino).unwrap(), 11);
    }

    #[test]
    fn cross_block_and_indirect_writes() {
        let (mut m, fs) = setup();
        let ino = fs.create(&mut m, "/big").unwrap();
        // Spans direct into indirect range: 12 blocks of patterned data.
        let data: Vec<u8> = (0..12 * BLOCK_SIZE).map(|i| (i % 251) as u8).collect();
        fs.write_at(&mut m, ino, 100, &data).unwrap();
        let mut back = vec![0u8; data.len()];
        assert_eq!(fs.read_at(&mut m, ino, 100, &mut back).unwrap(), data.len());
        assert_eq!(back, data);
    }

    #[test]
    fn holes_read_as_zeros() {
        let (mut m, fs) = setup();
        let ino = fs.create(&mut m, "/sparse").unwrap();
        fs.write_at(&mut m, ino, 3 * BLOCK_SIZE as u64, b"end")
            .unwrap();
        let mut buf = [9u8; 16];
        assert_eq!(fs.read_at(&mut m, ino, 0, &mut buf).unwrap(), 16);
        assert_eq!(buf, [0u8; 16]);
    }

    #[test]
    fn read_past_eof_is_short() {
        let (mut m, fs) = setup();
        let ino = fs.create(&mut m, "/short").unwrap();
        fs.write_at(&mut m, ino, 0, b"abc").unwrap();
        let mut buf = [0u8; 10];
        assert_eq!(fs.read_at(&mut m, ino, 0, &mut buf).unwrap(), 3);
        assert_eq!(fs.read_at(&mut m, ino, 5, &mut buf).unwrap(), 0);
    }

    #[test]
    fn survives_remount() {
        let (mut m, fs) = setup();
        let ino = fs.create(&mut m, "/persist").unwrap();
        fs.write_at(&mut m, ino, 0, b"durable").unwrap();
        let dev = fs.dev;
        // Discard the handle; all filesystem state lives on the device.
        let _ = fs;
        let fs2 = Fs::mount(&mut m, dev).unwrap();
        let ino2 = fs2.lookup(&mut m, "/persist").unwrap().unwrap();
        let mut buf = [0u8; 7];
        fs2.read_at(&mut m, ino2, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"durable");
    }

    #[test]
    fn truncate_frees_blocks_for_reuse() {
        let (mut m, fs) = setup();
        let ino = fs.create(&mut m, "/t").unwrap();
        let data = vec![1u8; 6 * BLOCK_SIZE];
        fs.write_at(&mut m, ino, 0, &data).unwrap();
        fs.truncate(&mut m, ino).unwrap();
        assert_eq!(fs.size_of(&mut m, ino).unwrap(), 0);
        // The freed blocks must be allocatable again: fill a second file of
        // the same size.
        let ino2 = fs.create(&mut m, "/t2").unwrap();
        fs.write_at(&mut m, ino2, 0, &data).unwrap();
    }

    #[test]
    fn list_enumerates_files() {
        let (mut m, fs) = setup();
        fs.create(&mut m, "/a").unwrap();
        let ino = fs.create(&mut m, "/b").unwrap();
        fs.write_at(&mut m, ino, 0, b"xy").unwrap();
        let mut l = fs.list(&mut m).unwrap();
        l.sort();
        assert_eq!(l, vec![("/a".to_string(), 0), ("/b".to_string(), 2)]);
    }

    #[test]
    fn mount_rejects_unformatted_device() {
        let mut m = Machine::new(MachineConfig {
            ram_frames: 16,
            cpus: 1,
            tlb_entries: 16,
            tlb_tagged: true,
            cost: ow_simhw::CostModel::zero_io(),
        });
        let dev = m.add_device("raw", 1024 * 1024);
        assert!(Fs::mount(&mut m, dev).is_err());
    }
}
