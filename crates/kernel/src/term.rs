//! Physical terminals.
//!
//! A terminal's screen contents live in an in-kernel buffer frame and its
//! settings/cursor in a [`TermDesc`] — both in simulated physical memory, so
//! the crash kernel can restore the screen a resurrected interactive
//! application was showing (§3.3). Keyboard input that was in flight at the
//! moment of the crash is hardware state and is lost, as on a real machine.

use crate::{
    error::KernelError,
    kernel::{Kernel, MAX_TERMS},
    layout::{TermDesc, TERM_COLS, TERM_ROWS},
    KernelResult,
};
use ow_layout::Record;
use ow_simhw::{machine::FrameOwner, PhysAddr, PAGE_SIZE};
use std::collections::VecDeque;

/// Host-side terminal handle; authoritative state is in kernel memory.
#[derive(Debug)]
pub struct TermHandle {
    /// Terminal id.
    pub id: u32,
    /// Address of the in-memory descriptor.
    pub desc_addr: PhysAddr,
    /// Pending keyboard input (hardware FIFO; volatile).
    pub input: VecDeque<u8>,
}

impl Kernel {
    /// Creates a physical terminal, returning its id.
    pub fn create_terminal(&mut self) -> KernelResult<u32> {
        let id = self.terms.len() as u32;
        if id >= MAX_TERMS {
            return Err(KernelError::TooMany("terminals"));
        }
        let screen_pfn = self.alloc_frame(FrameOwner::Kernel)?;
        self.machine.phys.zero_frame(screen_pfn)?;
        // Fill with spaces.
        let blank = vec![b' '; (TERM_COLS * TERM_ROWS) as usize];
        self.machine
            .phys
            .write(screen_pfn * PAGE_SIZE as u64, &blank)?;
        let desc_addr = self.term_table_addr + id as u64 * TermDesc::SIZE;
        TermDesc {
            id,
            cursor: 0,
            settings: 0,
            screen_pfn,
        }
        .write(&mut self.machine.phys, desc_addr)?;
        self.terms.push(TermHandle {
            id,
            desc_addr,
            input: VecDeque::new(),
        });
        self.write_header()?;
        Ok(id)
    }

    fn term_desc(&self, id: u32) -> KernelResult<(PhysAddr, TermDesc)> {
        let h = self
            .terms
            .iter()
            .find(|t| t.id == id)
            .ok_or(KernelError::Inval("no such terminal"))?;
        let (d, _) = TermDesc::read(&self.machine.phys, h.desc_addr)?;
        Ok((h.desc_addr, d))
    }

    /// Writes bytes to the terminal screen, handling newline and scrolling.
    pub fn term_write(&mut self, id: u32, data: &[u8]) -> KernelResult<()> {
        let (desc_addr, mut d) = self.term_desc(id)?;
        let base = d.screen_pfn * PAGE_SIZE as u64;
        let cols = TERM_COLS;
        let cells = TERM_COLS * TERM_ROWS;
        for &b in data {
            match b {
                b'\n' => {
                    d.cursor = (d.cursor / cols + 1) * cols;
                }
                b'\r' => {
                    d.cursor = (d.cursor / cols) * cols;
                }
                0x08 => {
                    d.cursor = d.cursor.saturating_sub(1);
                }
                _ => {
                    self.machine.phys.write_u8(base + d.cursor as u64, b)?;
                    d.cursor += 1;
                }
            }
            if d.cursor >= cells {
                // Scroll one row: move rows up, blank the last.
                let mut screen = vec![0u8; cells as usize];
                self.machine.phys.read(base, &mut screen)?;
                screen.copy_within(cols as usize.., 0);
                let last = (cells - cols) as usize;
                screen[last..].fill(b' ');
                self.machine.phys.write(base, &screen)?;
                d.cursor = cells - cols;
            }
        }
        d.write(&mut self.machine.phys, desc_addr)?;
        Ok(())
    }

    /// Updates terminal settings.
    pub fn term_set(&mut self, id: u32, settings: u64) -> KernelResult<()> {
        let (desc_addr, mut d) = self.term_desc(id)?;
        d.settings = settings;
        d.write(&mut self.machine.phys, desc_addr)?;
        Ok(())
    }

    /// Reads terminal settings.
    pub fn term_settings(&self, id: u32) -> KernelResult<u64> {
        Ok(self.term_desc(id)?.1.settings)
    }

    /// Pushes keyboard input into a terminal (workload driver side).
    pub fn term_input(&mut self, id: u32, data: &[u8]) -> KernelResult<()> {
        let h = self
            .terms
            .iter_mut()
            .find(|t| t.id == id)
            .ok_or(KernelError::Inval("no such terminal"))?;
        h.input.extend(data.iter().copied());
        Ok(())
    }

    /// Pops up to `buf.len()` input bytes; returns 0 when none pending.
    pub fn term_read_input(&mut self, id: u32, buf: &mut [u8]) -> KernelResult<u64> {
        let h = self
            .terms
            .iter_mut()
            .find(|t| t.id == id)
            .ok_or(KernelError::Inval("no such terminal"))?;
        let mut n = 0;
        while n < buf.len() {
            match h.input.pop_front() {
                Some(b) => {
                    buf[n] = b;
                    n += 1;
                }
                None => break,
            }
        }
        Ok(n as u64)
    }

    /// Snapshot of the screen contents (for verification and examples).
    pub fn term_screen(&self, id: u32) -> KernelResult<Vec<u8>> {
        let (_, d) = self.term_desc(id)?;
        let mut screen = vec![0u8; (TERM_COLS * TERM_ROWS) as usize];
        self.machine
            .phys
            .read(d.screen_pfn * PAGE_SIZE as u64, &mut screen)?;
        Ok(screen)
    }
}
