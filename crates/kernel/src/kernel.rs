//! The kernel proper: configuration, boot, process creation and the run
//! loop.
//!
//! A [`Kernel`] owns the [`Machine`]. Every structure the crash kernel later
//! needs is written through to simulated physical memory ([`crate::layout`]);
//! the host-side [`ProcHandle`]s hold only addresses, caches and the program
//! objects (which are themselves reconstructible from memory — see
//! [`crate::program`]).

use crate::{
    error::KernelError,
    fs::Fs,
    kheap::KHeap,
    layout::{
        self, FileTable, HandoffBlock, KernelHeader, ProcDesc, SigTable, VmaDesc, HANDOFF_FRAMES,
        IDT_MAGIC, MAX_FDS, NSIG,
    },
    program::{Program, ProgramRegistry, StepResult, PROG_STATE_VADDR},
    swap::SwapArea,
    syscall::KernelApi,
    term::TermHandle,
    KernelResult,
};
use ow_layout::Record;
use ow_simhw::{
    clock::CYCLES_PER_SEC,
    machine::{FrameOwner, Machine},
    paging::VA_LIMIT,
    AddressSpace, FrameAllocator, Pfn, PhysAddr, PAGE_SIZE,
};
use ow_trace::{Counter, EventKind, Histogram, PanicStep, TraceRing};
use std::collections::VecDeque;

/// Cycle costs of the boot phases (Table 6's time model).
#[derive(Debug, Clone)]
pub struct BootCosts {
    /// BIOS + boot loader (cold boot only; the crash kernel skips it, §6).
    pub bios: u64,
    /// Hardware detection.
    pub hw_detect: u64,
    /// Per-device driver initialization.
    pub driver_init_per_device: u64,
    /// Filesystem mount (or format on first boot).
    pub fs_mount: u64,
    /// Swap-area initialization.
    pub swap_init: u64,
    /// Base system services (init scripts up to a usable shell).
    pub services: u64,
}

impl Default for BootCosts {
    fn default() -> Self {
        // At CYCLES_PER_SEC = 1 GHz these yield a cold boot of around a
        // minute, matching the magnitude of the paper's Table 6.
        BootCosts {
            bios: 11 * CYCLES_PER_SEC,
            hw_detect: 17 * CYCLES_PER_SEC,
            driver_init_per_device: 4 * CYCLES_PER_SEC,
            fs_mount: 7 * CYCLES_PER_SEC,
            swap_init: 2 * CYCLES_PER_SEC,
            services: 15 * CYCLES_PER_SEC,
        }
    }
}

/// The incremental robustness fixes of §6 that raised the successful
/// resurrection rate from 89% to 97%+. All enabled by default; the ablation
/// benchmark disables them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RobustnessFixes {
    /// Watchdog-timer NMI on stall detection (hangs become microreboots).
    pub watchdog_nmi: bool,
    /// Fixed double-fault handler (KDump originally stopped the system).
    pub doublefault_handler: bool,
    /// KDump hardening: no recursion while printing the stack, no reliance
    /// on the validity of the current process descriptor.
    pub kdump_hardening: bool,
}

impl Default for RobustnessFixes {
    fn default() -> Self {
        RobustnessFixes {
            watchdog_nmi: true,
            doublefault_handler: true,
            kdump_hardening: true,
        }
    }
}

impl RobustnessFixes {
    /// The pre-fix configuration (the paper's first 89% result).
    pub fn legacy() -> Self {
        RobustnessFixes {
            watchdog_nmi: false,
            doublefault_handler: false,
            kdump_hardening: false,
        }
    }
}

/// Kernel configuration.
#[derive(Debug, Clone)]
pub struct KernelConfig {
    /// Kernel build version.
    pub version: u32,
    /// Frames for the kernel's own region (header + heap).
    pub kernel_frames: u64,
    /// Frames reserved for the crash kernel (the paper used 64 MB; scaled).
    pub crash_frames: u64,
    /// Enable the memory-protected mode (§4): user space unmapped during
    /// kernel execution, page-table switch + TLB flush on every syscall.
    pub user_protection: bool,
    /// Robustness fixes (§6).
    pub fixes: RobustnessFixes,
    /// Boot phase costs.
    pub boot_costs: BootCosts,
    /// §7 future-work optimization: the crash kernel skips hardware
    /// detection and full driver re-initialization by exploiting the device
    /// information of the crashed main kernel ("the exact hardware
    /// configuration information is known by the time of a crash"). Only a
    /// short validation probe is paid. Shrinks Table 6's interruption time.
    pub fast_crash_boot: bool,
    /// Warm-morph boot: when the dead kernel left a valid
    /// [`layout::WarmSeal`], the crash kernel charges validation probes
    /// instead of full re-initialization for mount, swap and service
    /// bring-up (the sealed CRCs vouch for the state those phases would
    /// rebuild). Falls back to the full charges when no valid seal exists.
    pub warm_boot: bool,
    /// §4 hardening: maintain a checksum over every process descriptor so
    /// corruption of resurrection-critical state cannot go undetected. Adds
    /// runtime overhead on every descriptor update.
    pub desc_checksums: bool,
    /// Frames reserved at the very top of RAM for the `ow-trace` flight
    /// recorder (header + record ring). 0 disables tracing; the region
    /// survives panics and morphing, like pstore/ramoops.
    pub trace_frames: u64,
    /// Syscall-count cadence of the epoch-checkpoint writer: every N
    /// completed syscalls the kernel seals the resurrection-critical
    /// record set (the <80 KB Table 4 state) into the reserved region
    /// next to the trace ring, and the panic path seals one final epoch
    /// so rollback-in-place can resume the same generation without
    /// replaying anything. 0 disables epoch checkpointing entirely.
    pub checkpoint_interval: u64,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            version: 1,
            kernel_frames: 512, // 2 MiB kernel region
            crash_frames: 1024, // 4 MiB crash reservation
            user_protection: false,
            fixes: RobustnessFixes::default(),
            boot_costs: BootCosts::default(),
            fast_crash_boot: false,
            warm_boot: false,
            desc_checksums: false,
            trace_frames: 16, // 64 KiB: 1 header frame + ~1280 record slots
            checkpoint_interval: 32,
        }
    }
}

/// Host-side socket endpoint state (the peer is the workload driver).
#[derive(Debug, Default)]
pub struct SockHandle {
    /// Socket id within the process.
    pub sid: u32,
    /// Address of the in-kernel `SockDesc`.
    pub desc_addr: PhysAddr,
    /// Messages from the remote peer awaiting `sock_recv`.
    pub inbox: VecDeque<Vec<u8>>,
    /// Messages sent by the process awaiting pickup by the driver.
    pub outbox: VecDeque<Vec<u8>>,
    /// Whether the socket is open.
    pub open: bool,
}

/// Run state mirror plus host-side process bookkeeping.
pub struct ProcHandle {
    /// Process id.
    pub pid: u64,
    /// Process name (executable identity).
    pub name: String,
    /// Address of the in-memory [`ProcDesc`].
    pub desc_addr: PhysAddr,
    /// The process address space.
    pub asp: AddressSpace,
    /// The running program (absent briefly while stepping, and permanently
    /// once exited).
    pub program: Option<Box<dyn Program>>,
    /// Mirror of the descriptor's run state.
    pub state: u32,
    /// Step counter == saved program counter.
    pub step: u64,
    /// Deliver [`crate::Errno::Restart`] on the next syscall (set after a
    /// microreboot interrupted an in-flight call, §3.5).
    pub deliver_restart: bool,
    /// Exit code when exited.
    pub exit_code: Option<u64>,
    /// Host-side socket endpoints.
    pub sockets: Vec<SockHandle>,
    /// Resource-failure bitmask from resurrection (0 on a normal process).
    pub resurrection_failures: u32,
}

impl std::fmt::Debug for ProcHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcHandle")
            .field("pid", &self.pid)
            .field("name", &self.name)
            .field("state", &self.state)
            .field("step", &self.step)
            .finish()
    }
}

/// Why the kernel panicked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicCause {
    /// An oops/BUG in kernel code.
    Oops(&'static str),
    /// A double fault (exception while servicing an exception).
    DoubleFault,
    /// A silent stall (infinite loop / lost wakeup); only the watchdog can
    /// turn this into a microreboot.
    Stall,
    /// A panic whose handling itself is sabotaged (stack printing recursion
    /// or a corrupted current-process descriptor) — survivable only with
    /// KDump hardening.
    CorruptedPanicPath,
}

/// Outcome of the panic path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PanicOutcome {
    /// Control was handed to the crash kernel.
    Handoff(HandoffInfo),
    /// The system halted; only a full (cold) reboot recovers it. All
    /// volatile state is lost — this is Table 5's "failure to boot the
    /// crash kernel".
    SystemHalted(&'static str),
}

/// Everything the crash kernel needs to take over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HandoffInfo {
    /// Frame of the dead kernel's header.
    pub dead_kernel_frame: Pfn,
    /// First frame of the crash-kernel reservation.
    pub crash_base: Pfn,
    /// Frames in the reservation.
    pub crash_frames: u64,
    /// Microreboot generation of the dead kernel.
    pub generation: u32,
}

/// A fault queued by the injector, to manifest at the next opportunity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingFault {
    /// The panic cause it will manifest as.
    pub cause: PanicCause,
    /// Whether it strikes inside a system call (so the call is aborted and
    /// later retried with [`crate::Errno::Restart`]).
    pub in_syscall: bool,
}

/// Events produced by one scheduler step.
#[derive(Debug, PartialEq, Eq)]
pub enum RunEvent {
    /// A process ran one step.
    Stepped(u64),
    /// A process exited.
    Exited(u64, u64),
    /// No runnable process.
    Idle,
    /// The kernel panicked; inspect [`Kernel::panicked`].
    Panicked,
}

/// Specification for spawning a process.
pub struct SpawnSpec {
    /// Process name (executable identity in the [`ProgramRegistry`]).
    pub name: String,
    /// The program to run.
    pub program: Box<dyn Program>,
    /// Anonymous heap pages mapped from [`PROG_STATE_VADDR`].
    pub heap_pages: u64,
    /// Stack pages at the top of the address space.
    pub stack_pages: u64,
    /// Terminal to attach (by id).
    pub term: Option<u32>,
}

impl SpawnSpec {
    /// A spec with reasonable defaults.
    pub fn new(name: &str, program: Box<dyn Program>) -> Self {
        SpawnSpec {
            name: name.to_string(),
            program,
            heap_pages: 64,
            stack_pages: 4,
            term: None,
        }
    }
}

/// The operating system kernel.
pub struct Kernel {
    /// The hardware.
    pub machine: Machine,
    /// Configuration this kernel booted with.
    pub config: KernelConfig,
    /// Program registry (the "on-disk executables").
    pub registry: ProgramRegistry,
    /// First frame of this kernel's region.
    pub base_frame: Pfn,
    /// General-purpose frame allocator (user pages, page tables, cache).
    pub falloc: FrameAllocator,
    /// Kernel heap inside the kernel region.
    pub kheap: KHeap,
    /// Mounted root filesystem.
    pub fs: Fs,
    /// Swap areas (index 0 and 1; `active_swap` selects this kernel's).
    pub swaps: Vec<SwapArea>,
    /// Which swap area this kernel writes to (init scripts choose by
    /// generation parity, §3.2).
    pub active_swap: usize,
    /// Processes.
    pub procs: Vec<ProcHandle>,
    /// Next pid.
    pub next_pid: u64,
    /// Terminals.
    pub terms: Vec<TermHandle>,
    /// Whether this kernel booted as a crash kernel.
    pub is_crash: bool,
    /// Microreboot generation (0 = cold boot).
    pub generation: u32,
    /// Crash-kernel reservation, when loaded.
    pub crash_region: Option<(Pfn, u64)>,
    /// Set once the kernel has panicked.
    pub panicked: Option<PanicOutcome>,
    /// Fault queued by the injector.
    pub pending_fault: Option<PendingFault>,
    /// Boot phases and their cycle costs.
    pub boot_log: Vec<(String, u64)>,
    /// Round-robin scheduling cursor.
    pub sched_cursor: usize,
    /// Page-table switches performed (protection-mode diagnostics).
    pub pt_switches: u64,
    /// Physical address of the terminal table.
    pub term_table_addr: PhysAddr,
    /// Pipes (host handles; descriptors in the in-memory pipe table).
    pub pipes: Vec<crate::ipc::PipeHandle>,
    /// Physical address of the pipe table.
    pub pipe_table_addr: PhysAddr,
    /// The armed flight-recorder ring (`None` when tracing is disabled).
    pub trace: Option<TraceRing>,
    /// Cycle stamp of the most recent syscall entry (inter-arrival and
    /// latency histograms; host-side scratch, not resurrection state).
    pub last_syscall_enter: u64,
    /// Whether this crash kernel booted warm: a valid [`layout::WarmSeal`]
    /// let it charge validation probes instead of full re-initialization.
    pub warm_booted: bool,
    /// First frame of the trace region (host-side mirror of the handoff
    /// block's geometry; the epoch-checkpoint slots sit immediately below).
    pub trace_base: Pfn,
    /// Completed-syscall sequence number (the epoch-checkpoint cadence
    /// counter; also the freshness stamp sealed into every epoch).
    pub syscall_seq: u64,
    /// Monotonic epoch counter of the checkpoint writer (selects the A/B
    /// slot by parity).
    pub ckpt_epoch: u64,
    /// `syscall_seq` at the last sealed epoch (cadence bookkeeping).
    pub last_ckpt_seq: u64,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("base_frame", &self.base_frame)
            .field("generation", &self.generation)
            .field("is_crash", &self.is_crash)
            .field("procs", &self.procs.len())
            .field("panicked", &self.panicked)
            .finish()
    }
}

/// Maximum terminals.
pub const MAX_TERMS: u32 = 8;

impl Kernel {
    /// Physical address of this kernel's header.
    pub fn header_addr(&self) -> PhysAddr {
        self.base_frame * PAGE_SIZE as u64
    }

    /// Cold-boots the system: BIOS, hardware detection, drivers, filesystem
    /// (formatting a blank root device), swap, crash-kernel load.
    ///
    /// The machine must already carry a root device named `"sda"` and two
    /// swap devices `"swap0"` and `"swap1"`.
    pub fn boot_cold(
        machine: Machine,
        config: KernelConfig,
        registry: ProgramRegistry,
    ) -> KernelResult<Kernel> {
        let base_frame = HANDOFF_FRAMES;
        Kernel::boot_common(machine, config, registry, base_frame, 0, true, false)
            .map_err(|(e, _)| e)
    }

    /// Boots the crash kernel inside its reservation after a handoff. Uses
    /// only the reserved region for its own memory (§3.2); skips BIOS.
    pub fn boot_crash(
        machine: Machine,
        config: KernelConfig,
        registry: ProgramRegistry,
        handoff: HandoffInfo,
    ) -> KernelResult<Kernel> {
        Kernel::try_boot_crash(machine, config, registry, handoff, false).map_err(|(e, _)| e)
    }

    /// Like [`Kernel::boot_crash`], but hands the [`Machine`] back on
    /// failure so the caller can try again — the resurrection supervisor
    /// uses this to boot a generation-2 crash kernel in restart-only mode
    /// after generation 1 fails. `tolerate_layout_mismatch` skips the
    /// layout-version refusal: a restart-only crash kernel never parses the
    /// dead kernel's structures, so a mismatched handoff generation is
    /// survivable for it.
    pub fn try_boot_crash(
        machine: Machine,
        config: KernelConfig,
        registry: ProgramRegistry,
        handoff: HandoffInfo,
        tolerate_layout_mismatch: bool,
    ) -> Result<Kernel, (KernelError, Box<Machine>)> {
        // First instruction of the crash kernel, so to speak: nothing has
        // been read from the dead kernel yet.
        ow_crashpoint::crash_point!("kernel.crashboot.init.begin");
        Kernel::boot_common(
            machine,
            config,
            registry,
            handoff.crash_base,
            handoff.generation + 1,
            false,
            tolerate_layout_mismatch,
        )
    }

    fn boot_common(
        mut machine: Machine,
        config: KernelConfig,
        registry: ProgramRegistry,
        base_frame: Pfn,
        generation: u32,
        cold: bool,
        tolerate_layout_mismatch: bool,
    ) -> Result<Kernel, (KernelError, Box<Machine>)> {
        let mut boot_log = Vec::new();
        let costs = config.boot_costs.clone();
        let phase = |m: &mut Machine, name: &str, cycles: u64, log: &mut Vec<(String, u64)>| {
            m.clock.charge(cycles);
            log.push((name.to_string(), cycles));
        };

        if cold {
            phase(&mut machine, "bios", costs.bios, &mut boot_log);
        }
        // Warm-morph boot: a valid seal left by the dying kernel vouches
        // for the state the expensive boot phases would otherwise rebuild,
        // so those phases shrink to validation probes. The probe only
        // checks the seal's presence and generation; the per-structure
        // CRCs are revalidated by the orchestrator before anything is
        // actually adopted.
        let warm = !cold && config.warm_boot && Kernel::probe_warm_seal(&machine).is_some();
        let ndev = machine.devices().len() as u64;
        if !cold && (config.fast_crash_boot || warm) {
            // §7 optimization: the dead kernel's hardware inventory is
            // still in memory; validate it with a short probe instead of
            // re-detecting and re-initializing every device from scratch.
            phase(
                &mut machine,
                "hw_validate",
                costs.hw_detect / 8 + costs.driver_init_per_device * ndev / 8,
                &mut boot_log,
            );
        } else {
            phase(&mut machine, "hw_detect", costs.hw_detect, &mut boot_log);
            phase(
                &mut machine,
                "drivers",
                costs.driver_init_per_device * ndev,
                &mut boot_log,
            );
        }

        // Memory layout for this kernel.
        let total_frames = machine.frames();
        let kernel_end = base_frame + config.kernel_frames;
        if cold {
            machine.set_owner_range(0, HANDOFF_FRAMES, FrameOwner::Handoff);
        }
        machine.set_owner_range(base_frame, config.kernel_frames, FrameOwner::Kernel);

        // General allocator: on a cold boot, everything between the kernel
        // region and the (future) crash reservation; for a crash kernel,
        // only the remainder of its own reservation — resurrection must not
        // step outside it until morphing (§3.3). The trace region sits
        // above everything at the very top of RAM so it survives panics,
        // reboots and morphing without ever being reallocated.
        let (gen_base, gen_end, trace_base, trace_frames) = if cold {
            if config.trace_frames >= total_frames / 4 {
                return Err((
                    KernelError::Inval("trace region too large"),
                    Box::new(machine),
                ));
            }
            let trace_base = total_frames - config.trace_frames;
            // The epoch-checkpoint slots sit between the crash reservation
            // and the trace ring, so they too survive panics and morphing.
            (
                kernel_end,
                trace_base - layout::CKPT_FRAMES - config.crash_frames,
                trace_base,
                config.trace_frames,
            )
        } else {
            let (h, _) = match HandoffBlock::read(&machine.phys) {
                Ok(v) => v,
                Err(e) => return Err((e.into(), Box::new(machine))),
            };
            // A crash kernel of a different layout generation must refuse
            // the handoff: every descriptor it would parse out of the dead
            // kernel's memory could silently mean something else. A
            // restart-only generation-2 crash kernel may tolerate the
            // mismatch — it never parses those descriptors.
            if h.layout_version != layout::LAYOUT_VERSION && !tolerate_layout_mismatch {
                return Err((
                    KernelError::LayoutGeneration {
                        stored: h.layout_version,
                        expected: layout::LAYOUT_VERSION,
                    },
                    Box::new(machine),
                ));
            }
            (
                kernel_end,
                h.crash_base + h.crash_frames,
                h.trace_base,
                h.trace_frames,
            )
        };
        if gen_base >= gen_end {
            return Err((
                KernelError::Inval("kernel region too large"),
                Box::new(machine),
            ));
        }
        let falloc = FrameAllocator::new(gen_base, (gen_end - gen_base) as usize);

        // Kernel heap occupies the kernel region after the header page,
        // stopping short of the warm-seal region at the top (the panic
        // path writes the seal there with plain stores — it must never
        // collide with a heap allocation).
        if config.kernel_frames <= 1 + layout::SEAL_FRAMES {
            return Err((
                KernelError::Inval("kernel region too small for heap and seal"),
                Box::new(machine),
            ));
        }
        let kheap = KHeap::new(
            (base_frame + 1) * PAGE_SIZE as u64,
            (config.kernel_frames - 1 - layout::SEAL_FRAMES) * PAGE_SIZE as u64,
        );

        // Filesystem: mount, formatting on first cold boot.
        let sda = match machine.device_by_name("sda").map(|d| d.id) {
            Some(id) => id,
            None => return Err((KernelError::Inval("no root device"), Box::new(machine))),
        };
        let fs = match Fs::mount(&mut machine, sda) {
            Ok(fs) => fs,
            Err(_) if cold => match Fs::format(&mut machine, sda, 128) {
                Ok(fs) => fs,
                Err(e) => return Err((e, Box::new(machine))),
            },
            Err(e) => return Err((e, Box::new(machine))),
        };
        if warm {
            // The seal's page-cache CRC vouches for the buffer state a
            // full mount would rebuild; only a superblock probe is paid.
            phase(
                &mut machine,
                "fs_validate",
                costs.fs_mount / 8,
                &mut boot_log,
            );
        } else {
            phase(&mut machine, "fs_mount", costs.fs_mount, &mut boot_log);
        }

        let mut kernel = Kernel {
            machine,
            config,
            registry,
            base_frame,
            falloc,
            kheap,
            fs,
            swaps: Vec::new(),
            active_swap: (generation % 2) as usize,
            procs: Vec::new(),
            next_pid: 1,
            terms: Vec::new(),
            is_crash: !cold,
            generation,
            crash_region: None,
            panicked: None,
            pending_fault: None,
            boot_log,
            sched_cursor: 0,
            pt_switches: 0,
            term_table_addr: 0,
            pipes: Vec::new(),
            pipe_table_addr: 0,
            trace: None,
            last_syscall_enter: 0,
            warm_booted: warm,
            trace_base,
            syscall_seq: 0,
            ckpt_epoch: 0,
            last_ckpt_seq: 0,
        };

        // Everything past this point can fail without losing the machine:
        // it lives inside the kernel struct now, so a failed finish phase
        // hands it back to the caller (the resurrection supervisor reuses
        // it for a generation-2 crash kernel).
        match kernel.boot_finish(cold, trace_base, trace_frames) {
            Ok(()) => Ok(kernel),
            Err(e) => Err((e, Box::new(kernel.machine))),
        }
    }

    /// Boot phases that run after the kernel struct exists: flight
    /// recorder, swap areas, terminal/pipe tables, base services, CPU
    /// reset, header/handoff publication, watchdog.
    fn boot_finish(&mut self, cold: bool, trace_base: Pfn, trace_frames: u64) -> KernelResult<()> {
        let kernel = self;
        let total_frames = kernel.machine.frames();
        let generation = kernel.generation;
        let base_frame = kernel.base_frame;

        // Arm the flight recorder for this generation. The crash kernel
        // re-arms (and thus zeroes) the ring: the dead kernel's record was
        // already recovered from raw memory before boot_crash ran. Arming
        // happens before any subsystem that emits events.
        if trace_frames >= TraceRing::MIN_FRAMES && trace_base + trace_frames <= total_frames {
            kernel
                .machine
                .set_owner_range(trace_base, trace_frames, FrameOwner::Trace);
            kernel.trace = TraceRing::arm(
                &mut kernel.machine.phys,
                trace_base,
                trace_frames,
                generation,
            );
            kernel.trace_event(EventKind::Armed, 0, generation as u64, trace_base);
        }

        // Swap areas: descriptors + bitmaps in kernel memory. The init
        // scripts pick the active partition by generation parity so the
        // crash kernel never touches the main kernel's swapped pages.
        // The swap descriptors form a fixed-size array reachable from the
        // kernel header (§3.3), so they must be contiguous.
        let swap_names = ["swap0", "swap1"];
        let swap_array = kernel
            .kheap
            .alloc(layout::SwapDesc::SIZE * swap_names.len() as u64)
            .ok_or(KernelError::NoMemory)?;
        for (i, name) in swap_names.iter().enumerate() {
            let dev = kernel
                .machine
                .device_by_name(name)
                .map(|d| d.id)
                .ok_or(KernelError::Inval("missing swap device"))?;
            let nslots = (kernel.machine.device(dev).size() / PAGE_SIZE as u64) as u32;
            let desc_addr = swap_array + i as u64 * layout::SwapDesc::SIZE;
            let bitmap = kernel
                .kheap
                .alloc(nslots as u64)
                .ok_or(KernelError::NoMemory)?;
            let mut area = SwapArea::init(&mut kernel.machine, dev, name, desc_addr, bitmap)?;
            area.trace = kernel.trace;
            kernel.swaps.push(area);
        }
        let swap_cost = if kernel.warm_booted {
            // The sealed slot bitmap is adoptable; initialization shrinks
            // to a descriptor probe.
            kernel.config.boot_costs.swap_init / 8
        } else {
            kernel.config.boot_costs.swap_init
        };
        kernel.machine.clock.charge(swap_cost);
        kernel.boot_log.push((
            if kernel.warm_booted {
                "swap_validate".into()
            } else {
                "swap_init".into()
            },
            swap_cost,
        ));

        // Terminal and pipe tables.
        kernel.term_table_addr = kernel
            .kheap
            .alloc(layout::TermDesc::SIZE * MAX_TERMS as u64)
            .ok_or(KernelError::NoMemory)?;
        kernel.pipe_table_addr = kernel
            .kheap
            .alloc(layout::PipeDesc::SIZE * crate::ipc::MAX_PIPES as u64)
            .ok_or(KernelError::NoMemory)?;

        // Base services. A warm boot restarts only the supervision shims
        // and lets the sealed state stand in for the rest.
        let services_cost = if kernel.warm_booted {
            kernel.config.boot_costs.services / 8
        } else {
            kernel.config.boot_costs.services
        };
        kernel.machine.clock.charge(services_cost);
        kernel.boot_log.push((
            if kernel.warm_booted {
                "services_warm".into()
            } else {
                "services".into()
            },
            services_cost,
        ));

        // The crash kernel restarts the processors that the dying kernel's
        // NMI broadcast halted; without this, the next panic's broadcast
        // would find them already halted and skip the context save,
        // leaving stale contexts from the previous generation in the save
        // areas.
        for cpu in &mut kernel.machine.cpus {
            cpu.reset();
        }

        // Protection mode is a property of the machine (which page-table set
        // is live while the kernel runs).
        kernel.machine.user_protection = kernel.config.user_protection;

        // Invalidate this kernel's warm-seal region before anything is
        // published: a stale seal from an earlier occupant of these frames
        // must never be adopted after this kernel's own panic.
        layout::WarmSeal::invalid().write(
            &mut kernel.machine.phys,
            layout::seal_addr(base_frame, kernel.config.kernel_frames),
        )?;

        // Same discipline for the epoch-checkpoint slots below the trace
        // ring: both A/B slots are invalidated at every boot so an epoch
        // sealed by an earlier occupant of these frames can never roll
        // this kernel back. The frames are tagged like the trace region so
        // they survive the cold morph's reclaim and are never adopted.
        if trace_base >= layout::CKPT_FRAMES && trace_base <= total_frames {
            kernel.machine.set_owner_range(
                layout::ckpt_region_base(trace_base),
                layout::CKPT_FRAMES,
                FrameOwner::Trace,
            );
            for slot in 0..layout::CKPT_SLOTS {
                layout::EpochCheckpoint::invalid().write(
                    &mut kernel.machine.phys,
                    layout::ckpt_slot_addr(trace_base, slot),
                )?;
            }
        }

        // Publish the kernel header and (on cold boot) the handoff block.
        kernel.write_header()?;
        if cold {
            HandoffBlock {
                layout_version: layout::LAYOUT_VERSION,
                active_kernel_frame: base_frame,
                crash_base: 0,
                crash_frames: 0,
                crash_entry_ok: 0,
                idt_stamp: IDT_MAGIC,
                save_area: layout::SAVE_AREA_ADDR,
                generation,
                trace_base,
                trace_frames,
            }
            .write(&mut kernel.machine.phys)?;
            layout::write_idt_gates(&mut kernel.machine.phys)?;
            kernel.load_crash_kernel()?;
        } else {
            // The crash kernel is now the active kernel; a fresh crash
            // kernel is only installed when it morphs (§3.6).
            let (mut h, _) = HandoffBlock::read(&kernel.machine.phys)?;
            h.active_kernel_frame = base_frame;
            h.generation = generation;
            h.crash_entry_ok = 0;
            h.write(&mut kernel.machine.phys)?;
        }

        // Arm the watchdog if that fix is enabled.
        if kernel.config.fixes.watchdog_nmi {
            let now = kernel.machine.clock.now();
            kernel.machine.watchdog.enable(now);
        }

        Ok(())
    }

    /// (Re)writes this kernel's header from current state.
    pub fn write_header(&mut self) -> KernelResult<()> {
        let proc_head = self
            .procs
            .iter()
            .find(|p| p.state != layout::pstate::EXITED)
            .map(|p| p.desc_addr)
            .unwrap_or(0);
        let header = KernelHeader {
            version: self.config.version,
            base_frame: self.base_frame,
            nframes: self.config.kernel_frames,
            proc_head,
            nprocs: self
                .procs
                .iter()
                .filter(|p| p.state != layout::pstate::EXITED)
                .count() as u64,
            swap_array: self.swaps.first().map(|s| s.desc_addr).unwrap_or(0),
            nswap: self.swaps.len() as u32,
            is_crash: self.is_crash as u32,
            term_table: self.term_table_addr,
            nterms: self.terms.len() as u32,
            pipe_table: self.pipe_table_addr,
            npipes: self.pipes.len() as u32,
        };
        let addr = self.header_addr();
        header.write(&mut self.machine.phys, addr)?;
        Ok(())
    }

    /// Probes the dead kernel's warm seal: present, marked valid, and
    /// stamped with the dead generation. Returns the seal without checking
    /// any per-structure CRC — adoption decisions revalidate those against
    /// the actual dead bytes.
    pub fn probe_warm_seal(machine: &Machine) -> Option<layout::WarmSeal> {
        let (h, _) = HandoffBlock::read(&machine.phys).ok()?;
        let (dead, _) =
            layout::KernelHeader::read(&machine.phys, h.active_kernel_frame * PAGE_SIZE as u64)
                .ok()?;
        let addr = layout::seal_addr(dead.base_frame, dead.nframes);
        let (seal, _) = layout::WarmSeal::read(&machine.phys, addr).ok()?;
        (seal.valid != 0 && seal.generation == h.generation).then_some(seal)
    }

    /// Copies a frame and charges the cost model for it — the one shared
    /// accounting site for every resurrection copy: eager page copies, shm
    /// restores, and lazy copy-on-access pulls.
    pub fn copy_frame_charged(&mut self, src: Pfn, dst: Pfn) -> Result<(), ow_simhw::MemError> {
        self.machine.phys.copy_frame(src, dst)?;
        let cost = self.machine.cost.page_copy;
        self.machine.clock.charge(cost);
        Ok(())
    }

    /// Allocates a general frame and tags its owner.
    pub fn alloc_frame(&mut self, owner: FrameOwner) -> KernelResult<Pfn> {
        let pfn = self.falloc.alloc().ok_or(KernelError::NoMemory)?;
        self.machine.set_owner(pfn, owner);
        Ok(pfn)
    }

    /// Frees a general frame and clears its tag.
    pub fn free_frame(&mut self, pfn: Pfn) {
        self.falloc.free(pfn);
        self.machine.set_owner(pfn, FrameOwner::Free);
    }

    /// Appends a cycle-stamped record to the flight recorder, if armed.
    pub fn trace_event(&mut self, kind: EventKind, pid: u64, arg0: u64, arg1: u64) {
        if let Some(ring) = self.trace {
            let now = self.machine.clock.now();
            ring.emit(&mut self.machine.phys, now, kind, pid, arg0, arg1);
        }
    }

    /// Adds `n` to a metrics counter, if the recorder is armed.
    pub fn trace_counter(&mut self, counter: Counter, n: u64) {
        if let Some(ring) = self.trace {
            ring.counter_add(&mut self.machine.phys, counter, n);
        }
    }

    /// Records one histogram sample, if the recorder is armed.
    pub fn trace_hist(&mut self, hist: Histogram, value: u64) {
        if let Some(ring) = self.trace {
            ring.hist_record(&mut self.machine.phys, hist, value);
        }
    }

    /// Records a panic-path step, if the recorder is armed. The panic path
    /// itself calls this — tracing must never be able to re-fault it, which
    /// is why every ring operation is infallible.
    pub fn trace_panic_step(&mut self, step: PanicStep, detail: u64) {
        if let Some(ring) = self.trace {
            let now = self.machine.clock.now();
            ring.emit_panic_step(&mut self.machine.phys, now, step, detail);
        }
    }

    /// Finds a process handle.
    pub fn proc(&self, pid: u64) -> KernelResult<&ProcHandle> {
        self.procs
            .iter()
            .find(|p| p.pid == pid)
            .ok_or(KernelError::NoProc(pid))
    }

    /// Finds a process handle mutably.
    pub fn proc_mut(&mut self, pid: u64) -> KernelResult<&mut ProcHandle> {
        self.procs
            .iter_mut()
            .find(|p| p.pid == pid)
            .ok_or(KernelError::NoProc(pid))
    }

    /// Rewrites the in-memory process list (`next` pointers plus the header
    /// head/count) to match the handle order.
    pub fn sync_proc_list(&mut self) -> KernelResult<()> {
        let live: Vec<PhysAddr> = self
            .procs
            .iter()
            .filter(|p| p.state != layout::pstate::EXITED)
            .map(|p| p.desc_addr)
            .collect();
        for (i, &addr) in live.iter().enumerate() {
            let next = live.get(i + 1).copied().unwrap_or(0);
            self.machine
                .phys
                .write_u64(addr + layout::proc_off::NEXT, next)?;
        }
        self.write_header()
    }

    /// Creates a process: address space, VMAs, descriptor, file table and
    /// signal table, all in kernel/physical memory; then links it into the
    /// process list. This shares its core with `clone()` as in §3.7.
    pub fn spawn(&mut self, spec: SpawnSpec) -> KernelResult<u64> {
        let pid = self.next_pid;
        self.next_pid += 1;

        let asp = {
            let Kernel {
                machine, falloc, ..
            } = self;
            AddressSpace::new(&mut machine.phys, falloc).ok_or(KernelError::NoMemory)?
        };
        self.machine
            .set_owner(asp.root(), FrameOwner::PageTable { pid });

        // Kernel structures.
        let files_addr = self
            .kheap
            .alloc(FileTable::SIZE)
            .ok_or(KernelError::NoMemory)?;
        FileTable { fds: [0; MAX_FDS] }.write(&mut self.machine.phys, files_addr)?;
        let sig_addr = self
            .kheap
            .alloc(SigTable::SIZE)
            .ok_or(KernelError::NoMemory)?;
        SigTable {
            handlers: [0; NSIG],
        }
        .write(&mut self.machine.phys, sig_addr)?;

        // VMAs: heap (includes the program header page) + stack.
        let heap_start = PROG_STATE_VADDR;
        let heap_end = heap_start + spec.heap_pages * PAGE_SIZE as u64;
        let stack_end = VA_LIMIT;
        let stack_start = stack_end - spec.stack_pages * PAGE_SIZE as u64;
        if heap_end > stack_start {
            return Err(KernelError::Inval("heap overlaps stack"));
        }
        let stack_vma = self
            .kheap
            .alloc(VmaDesc::SIZE)
            .ok_or(KernelError::NoMemory)?;
        VmaDesc {
            start: stack_start,
            end: stack_end,
            flags: layout::vmaflags::READ | layout::vmaflags::WRITE | layout::vmaflags::STACK,
            file: 0,
            file_off: 0,
            next: 0,
        }
        .write(&mut self.machine.phys, stack_vma)?;
        let heap_vma = self
            .kheap
            .alloc(VmaDesc::SIZE)
            .ok_or(KernelError::NoMemory)?;
        VmaDesc {
            start: heap_start,
            end: heap_end,
            flags: layout::vmaflags::READ | layout::vmaflags::WRITE,
            file: 0,
            file_off: 0,
            next: stack_vma,
        }
        .write(&mut self.machine.phys, heap_vma)?;

        // Descriptor.
        let desc_addr = self
            .kheap
            .alloc(ProcDesc::SIZE)
            .ok_or(KernelError::NoMemory)?;
        let desc = ProcDesc {
            pid,
            state: layout::pstate::RUNNABLE,
            name: spec.name.clone(),
            crash_proc: 0,
            page_root: asp.root(),
            mm_head: heap_vma,
            files: files_addr,
            sig: sig_addr,
            term_id: spec.term.unwrap_or(u32::MAX),
            shm_head: 0,
            sock_head: 0,
            res_in_use: 0,
            in_syscall: 0,
            saved_pc: 0,
            saved_sp: stack_end,
            saved_regs: [0; 8],
            checksum: 0,
            next: 0,
        };
        let mut desc = desc;
        if self.config.desc_checksums {
            desc.checksum = desc.compute_checksum();
        }
        desc.write(&mut self.machine.phys, desc_addr)?;

        self.procs.push(ProcHandle {
            pid,
            name: spec.name,
            desc_addr,
            asp,
            program: Some(spec.program),
            state: layout::pstate::RUNNABLE,
            step: 0,
            deliver_restart: false,
            exit_code: None,
            sockets: Vec::new(),
            resurrection_failures: 0,
        });
        self.sync_proc_list()?;
        Ok(pid)
    }

    /// Creates a bare process shell for the resurrection engine: descriptor,
    /// empty file/signal tables and an empty address space — no VMAs, no
    /// program. The crash kernel fills everything in from the dead kernel's
    /// memory. This is the `clone()` path shared with `spawn` (§3.7).
    pub fn create_raw_process(&mut self, name: &str) -> KernelResult<u64> {
        let pid = self.next_pid;
        self.next_pid += 1;
        let asp = {
            let Kernel {
                machine, falloc, ..
            } = self;
            AddressSpace::new(&mut machine.phys, falloc).ok_or(KernelError::NoMemory)?
        };
        self.machine
            .set_owner(asp.root(), FrameOwner::PageTable { pid });
        let files_addr = self
            .kheap
            .alloc(FileTable::SIZE)
            .ok_or(KernelError::NoMemory)?;
        FileTable { fds: [0; MAX_FDS] }.write(&mut self.machine.phys, files_addr)?;
        let sig_addr = self
            .kheap
            .alloc(SigTable::SIZE)
            .ok_or(KernelError::NoMemory)?;
        SigTable {
            handlers: [0; NSIG],
        }
        .write(&mut self.machine.phys, sig_addr)?;
        let desc_addr = self
            .kheap
            .alloc(ProcDesc::SIZE)
            .ok_or(KernelError::NoMemory)?;
        let mut desc = ProcDesc {
            pid,
            state: layout::pstate::RUNNABLE,
            name: name.to_string(),
            crash_proc: 0,
            page_root: asp.root(),
            mm_head: 0,
            files: files_addr,
            sig: sig_addr,
            term_id: u32::MAX,
            shm_head: 0,
            sock_head: 0,
            res_in_use: 0,
            in_syscall: 0,
            saved_pc: 0,
            saved_sp: VA_LIMIT,
            saved_regs: [0; 8],
            checksum: 0,
            next: 0,
        };
        if self.config.desc_checksums {
            desc.checksum = desc.compute_checksum();
        }
        desc.write(&mut self.machine.phys, desc_addr)?;
        self.procs.push(ProcHandle {
            pid,
            name: name.to_string(),
            desc_addr,
            asp,
            program: None,
            state: layout::pstate::RUNNABLE,
            step: 0,
            deliver_restart: false,
            exit_code: None,
            sockets: Vec::new(),
            resurrection_failures: 0,
        });
        self.sync_proc_list()?;
        Ok(pid)
    }

    /// Read-modify-writes a process descriptor in memory.
    pub fn update_desc(&mut self, pid: u64, f: impl FnOnce(&mut ProcDesc)) -> KernelResult<()> {
        let addr = self.proc(pid)?.desc_addr;
        let (mut desc, _) = ProcDesc::read(&self.machine.phys, addr)?;
        f(&mut desc);
        if self.config.desc_checksums {
            desc.checksum = desc.compute_checksum();
        } else {
            desc.checksum = 0;
        }
        desc.write(&mut self.machine.phys, addr)?;
        // Keep the host mirror coherent.
        let p = self.proc_mut(pid)?;
        p.state = desc.state;
        p.step = desc.saved_pc;
        Ok(())
    }

    /// Recomputes the §4 integrity checksum after an in-place update of a
    /// descriptor field. A no-op when checksums are disabled; when enabled,
    /// the re-read + recompute is the runtime overhead §4 predicts.
    pub fn reseal_desc(&mut self, pid: u64) -> KernelResult<()> {
        if !self.config.desc_checksums {
            return Ok(());
        }
        let addr = self.proc(pid)?.desc_addr;
        // Read without checksum validation (it is stale right now): blank
        // the stored checksum first.
        self.machine
            .phys
            .write_u64(addr + layout::proc_off::CHECKSUM, 0)?;
        let (mut desc, _) = ProcDesc::read(&self.machine.phys, addr)?;
        desc.checksum = desc.compute_checksum();
        self.machine
            .phys
            .write_u64(addr + layout::proc_off::CHECKSUM, desc.checksum)?;
        // The recompute touches the whole descriptor.
        let bw = self.machine.cost.mem_bytes_per_cycle.max(1);
        self.machine.clock.charge(ProcDesc::SIZE / bw);
        Ok(())
    }

    /// Reaps an exited process: frees its user frames, page tables and
    /// kernel structures.
    pub fn reap(&mut self, pid: u64) -> KernelResult<()> {
        let idx = self
            .procs
            .iter()
            .position(|p| p.pid == pid)
            .ok_or(KernelError::NoProc(pid))?;
        let desc_addr = self.procs[idx].desc_addr;
        let asp = self.procs[idx].asp;
        let (desc, _) = ProcDesc::read(&self.machine.phys, desc_addr)?;

        // Close open files (writes back dirty cache).
        for fd in 0..MAX_FDS as u32 {
            let _ = self.file_close(pid, fd);
        }

        // Free user frames and swap slots.
        let mut mapped = Vec::new();
        asp.for_each_mapped(&self.machine.phys, |va, pte| mapped.push((va, pte)))?;
        for (_va, pte) in mapped {
            let flags = pte.flags();
            if flags.contains(ow_simhw::PteFlags::SWAPPED) {
                let slot = pte.pfn() as u32;
                let area = self.swaps[self.active_swap].clone();
                let _ = area.free_slot(&mut self.machine, slot);
            } else if flags.contains(ow_simhw::PteFlags::PRESENT)
                && !flags.contains(ow_simhw::PteFlags::LAZY)
            {
                // Shared (shm) frames are freed with the segment, not here.
                // Lazy pages still point at dead-generation frames outside
                // this allocator (the owner map can agree by pid collision
                // across generations); the next morph accounts for them.
                if matches!(self.machine.owner(pte.pfn()), FrameOwner::User { pid: p } if p == pid)
                {
                    self.free_frame(pte.pfn());
                }
            }
        }
        // Free page-table frames.
        {
            let Kernel {
                machine, falloc, ..
            } = self;
            // Re-tag first, then free through the allocator.
            asp.free_tables(&machine.phys, falloc)?;
        }

        // Close sockets: free their descriptors and payload buffers. Only
        // handles still marked open — closed ones already freed theirs.
        let socks: Vec<_> = self.procs[idx]
            .sockets
            .iter()
            .filter(|s| s.open)
            .map(|s| s.desc_addr)
            .collect();
        for addr in socks {
            if let Ok((sock, _)) = crate::layout::SockDesc::read(&self.machine.phys, addr) {
                self.free_frame(sock.outbuf_pfn);
                self.kheap.free(addr, crate::layout::SockDesc::SIZE);
            }
        }

        // Free kernel structures: VMA chain, file table, signal table, desc.
        let mut vma_addr = desc.mm_head;
        while vma_addr != 0 {
            let (vma, _) = VmaDesc::read(&self.machine.phys, vma_addr)?;
            self.kheap.free(vma_addr, VmaDesc::SIZE);
            vma_addr = vma.next;
        }
        self.kheap.free(desc.files, FileTable::SIZE);
        self.kheap.free(desc.sig, SigTable::SIZE);
        self.kheap.free(desc_addr, ProcDesc::SIZE);

        self.procs.remove(idx);
        self.sync_proc_list()?;
        Ok(())
    }

    /// Marks a process state both host-side and in its descriptor.
    pub fn set_proc_state(&mut self, pid: u64, state: u32) -> KernelResult<()> {
        let p = self.proc_mut(pid)?;
        p.state = state;
        let addr = p.desc_addr;
        self.machine
            .phys
            .write_u32(addr + layout::proc_off::STATE, state)?;
        self.reseal_desc(pid)?;
        Ok(())
    }

    /// Runs one scheduler step: picks the next runnable process and executes
    /// one program step. Detects queued between-step faults and watchdog
    /// expiry.
    pub fn run_step(&mut self) -> RunEvent {
        if self.panicked.is_some() {
            return RunEvent::Panicked;
        }

        // Between-step fault manifestation.
        if let Some(f) = self.pending_fault {
            if !f.in_syscall {
                self.pending_fault = None;
                self.do_panic(f.cause);
                return RunEvent::Panicked;
            }
        }

        // Watchdog: the kernel pets it while healthy.
        let now = self.machine.clock.now();
        self.machine.watchdog.pet(now);

        let n = self.procs.len();
        if n == 0 {
            return RunEvent::Idle;
        }
        let mut pid = None;
        for off in 0..n {
            let i = (self.sched_cursor + off) % n;
            if self.procs[i].state == layout::pstate::RUNNABLE && self.procs[i].program.is_some() {
                pid = Some(self.procs[i].pid);
                self.sched_cursor = (i + 1) % n;
                break;
            }
        }
        let Some(pid) = pid else {
            return RunEvent::Idle;
        };

        // Mark the CPU as running this thread (panic-time context save).
        self.machine.cpus[0].current_pid = pid;

        // Take the program out to split the borrow.
        let mut program = {
            let p = self.proc_mut(pid).expect("pid exists");
            p.program.take().expect("program present")
        };
        let result = {
            let mut api = KernelApi::new(self, pid);
            program.step(&mut api)
        };

        if self.panicked.is_some() {
            // The kernel died under this process; the host program object is
            // garbage now (resurrection rebuilds from memory).
            return RunEvent::Panicked;
        }

        match result {
            StepResult::Running => {
                {
                    let mut api = KernelApi::new(self, pid);
                    program.save_state(&mut api);
                }
                if self.panicked.is_some() {
                    return RunEvent::Panicked;
                }
                let p = self.proc_mut(pid).expect("pid exists");
                p.program = Some(program);
                p.step += 1;
                let step = p.step;
                let addr = p.desc_addr;
                let _ = self
                    .machine
                    .phys
                    .write_u64(addr + layout::proc_off::SAVED_PC, step);
                let _ = self.reseal_desc(pid);
                self.machine.cpus[0].ctx.pc = step;
                RunEvent::Stepped(pid)
            }
            StepResult::Exited(code) => {
                {
                    let p = self.proc_mut(pid).expect("pid exists");
                    p.exit_code = Some(code);
                    p.state = layout::pstate::EXITED;
                }
                let _ = self.set_proc_state(pid, layout::pstate::EXITED);
                let _ = self.reap(pid);
                RunEvent::Exited(pid, code)
            }
        }
    }

    /// Runs until `pred` is true, a panic occurs, or `max_steps` elapses.
    /// Returns the number of steps executed.
    pub fn run_until(&mut self, max_steps: u64, mut pred: impl FnMut(&Kernel) -> bool) -> u64 {
        let mut steps = 0;
        while steps < max_steps {
            if pred(self) || self.panicked.is_some() {
                break;
            }
            match self.run_step() {
                RunEvent::Panicked => break,
                RunEvent::Idle => break,
                _ => steps += 1,
            }
        }
        steps
    }

    /// Total simulated seconds elapsed.
    pub fn seconds(&self) -> f64 {
        self.machine.clock.seconds()
    }
}
