//! On-memory layout of every kernel structure the crash kernel must parse.
//!
//! The definitions themselves live in the shared [`ow_layout`] crate — the
//! single source of truth for magics, encoded sizes, layout versions and
//! the [`Record`](ow_layout::Record) codec — so that the main kernel
//! (writer), the crash kernel (reader, `ow-core`), the flight recorder
//! (`ow-trace`) and the fault injector (`ow-faultinject`) can never drift
//! apart. This module re-exports the whole vocabulary under the kernel's
//! traditional `crate::layout` path.
//!
//! Simulated physical memory is the kernel's ground truth (§3): process
//! descriptors, VMAs, file tables, page-cache nodes, swap descriptors,
//! terminal and IPC state are all written through to `ow_simhw::PhysMem`
//! in these layouts, and the handoff block at frame 0 carries the
//! [`LAYOUT_VERSION`](ow_layout::LAYOUT_VERSION) stamp that lets a crash
//! kernel of a different generation refuse cleanly instead of misparsing.

pub use ow_layout::*;
