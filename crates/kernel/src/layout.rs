//! Binary layouts of every kernel structure the crash kernel must parse.
//!
//! The paper builds the main and crash kernels from the same source so that
//! both agree on structure layout (§3.1). This module is that shared source:
//! the main kernel serializes its process descriptors, memory maps, file
//! records, page-cache nodes, swap descriptors, terminals, signal tables and
//! shared-memory segments into physical memory using these layouts, and the
//! crash kernel re-reads them through the same definitions — validating a
//! per-structure magic number first, because a wild write may have destroyed
//! anything (§4).
//!
//! Every structure starts with a 4-byte magic. All integers are
//! little-endian. Strings are fixed-size, zero-padded byte arrays.

use ow_simhw::{MemError, PhysAddr, PhysMem};
use std::fmt;

/// Maximum open files per process.
pub const MAX_FDS: usize = 16;

/// Number of signals.
pub const NSIG: usize = 16;

/// Maximum pages in one shared-memory segment.
pub const SHM_MAX_PAGES: usize = 64;

/// Maximum length of a stored file path.
pub const PATH_LEN: usize = 64;

/// Maximum length of a process name (doubles as the executable identity the
/// crash kernel uses to re-instantiate the program).
pub const NAME_LEN: usize = 32;

/// Resource-type bits for [`ProcDesc::res_in_use`] and the crash-procedure
/// bitmask argument (paper §3.4): each set bit is a resource type the crash
/// kernel did not (or cannot) resurrect.
pub mod resmask {
    /// Network sockets (not resurrectable in the prototype).
    pub const SOCKETS: u32 = 1 << 0;
    /// Pipes (not resurrectable in the prototype).
    pub const PIPES: u32 = 1 << 1;
    /// Pseudo-terminals (only physical terminals are restorable).
    pub const PTY: u32 = 1 << 2;
    /// Open files (set in the failure mask only when reopening failed).
    pub const FILES: u32 = 1 << 3;
    /// Shared memory segments.
    pub const SHM: u32 = 1 << 4;
    /// Physical terminal state.
    pub const TERMINAL: u32 = 1 << 5;
    /// Signal handler table.
    pub const SIGNALS: u32 = 1 << 6;
}

/// Errors raised when parsing structures out of (possibly corrupted) memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// The magic number did not match: the structure was corrupted or the
    /// pointer was garbage.
    BadMagic {
        /// Which structure was expected.
        expected: &'static str,
        /// Address that was read.
        addr: PhysAddr,
    },
    /// A field failed a sanity bound (e.g. an fd count larger than the
    /// table, a pointer past the end of RAM).
    BadValue {
        /// Which structure.
        structure: &'static str,
        /// Which field failed.
        field: &'static str,
        /// Address of the structure.
        addr: PhysAddr,
    },
    /// The underlying physical read failed (pointer outside RAM).
    Mem(MemError),
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::BadMagic { expected, addr } => {
                write!(f, "bad magic for {expected} at {addr:#x}")
            }
            LayoutError::BadValue {
                structure,
                field,
                addr,
            } => {
                write!(f, "implausible {structure}.{field} at {addr:#x}")
            }
            LayoutError::Mem(e) => write!(f, "memory error: {e}"),
        }
    }
}

impl std::error::Error for LayoutError {}

impl From<MemError> for LayoutError {
    fn from(e: MemError) -> Self {
        LayoutError::Mem(e)
    }
}

/// Sequential reader over physical memory.
pub struct Cursor<'a> {
    phys: &'a PhysMem,
    addr: PhysAddr,
    /// Bytes consumed (the crash kernel accounts every byte it reads from
    /// the dead kernel — Table 4).
    pub consumed: u64,
}

impl<'a> Cursor<'a> {
    /// Starts reading at `addr`.
    pub fn new(phys: &'a PhysMem, addr: PhysAddr) -> Self {
        Cursor {
            phys,
            addr,
            consumed: 0,
        }
    }

    /// Current address.
    pub fn addr(&self) -> PhysAddr {
        self.addr
    }

    /// Reads a `u32` and advances.
    pub fn u32(&mut self) -> Result<u32, LayoutError> {
        let v = self.phys.read_u32(self.addr)?;
        self.addr += 4;
        self.consumed += 4;
        Ok(v)
    }

    /// Reads a `u64` and advances.
    pub fn u64(&mut self) -> Result<u64, LayoutError> {
        let v = self.phys.read_u64(self.addr)?;
        self.addr += 8;
        self.consumed += 8;
        Ok(v)
    }

    /// Reads `N` bytes and advances.
    pub fn bytes<const N: usize>(&mut self) -> Result<[u8; N], LayoutError> {
        let mut buf = [0u8; N];
        self.phys.read(self.addr, &mut buf)?;
        self.addr += N as u64;
        self.consumed += N as u64;
        Ok(buf)
    }
}

/// Sequential writer over physical memory.
pub struct CursorMut<'a> {
    phys: &'a mut PhysMem,
    addr: PhysAddr,
}

impl<'a> CursorMut<'a> {
    /// Starts writing at `addr`.
    pub fn new(phys: &'a mut PhysMem, addr: PhysAddr) -> Self {
        CursorMut { phys, addr }
    }

    /// Current address.
    pub fn addr(&self) -> PhysAddr {
        self.addr
    }

    /// Writes a `u32` and advances.
    pub fn u32(&mut self, v: u32) -> Result<(), LayoutError> {
        self.phys.write_u32(self.addr, v)?;
        self.addr += 4;
        Ok(())
    }

    /// Writes a `u64` and advances.
    pub fn u64(&mut self, v: u64) -> Result<(), LayoutError> {
        self.phys.write_u64(self.addr, v)?;
        self.addr += 8;
        Ok(())
    }

    /// Writes a fixed byte array and advances.
    pub fn bytes(&mut self, buf: &[u8]) -> Result<(), LayoutError> {
        self.phys.write(self.addr, buf)?;
        self.addr += buf.len() as u64;
        Ok(())
    }
}

/// Encodes a string into a fixed, zero-padded array (truncating).
pub fn pack_str<const N: usize>(s: &str) -> [u8; N] {
    let mut buf = [0u8; N];
    let b = s.as_bytes();
    let n = b.len().min(N - 1);
    buf[..n].copy_from_slice(&b[..n]);
    buf
}

/// Decodes a zero-padded array back into a string (lossy).
pub fn unpack_str(buf: &[u8]) -> String {
    let end = buf.iter().position(|&b| b == 0).unwrap_or(buf.len());
    String::from_utf8_lossy(&buf[..end]).into_owned()
}

fn check_magic(cur: &mut Cursor<'_>, expected: u32, name: &'static str) -> Result<(), LayoutError> {
    let addr = cur.addr();
    if cur.u32()? != expected {
        return Err(LayoutError::BadMagic {
            expected: name,
            addr,
        });
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Handoff block (fixed at physical frame 0)
// ---------------------------------------------------------------------------

/// Magic for [`HandoffBlock`].
pub const HANDOFF_MAGIC: u32 = 0x4f48_574f; // "OWHO"
/// Secondary validity stamp for the interrupt-descriptor-table analog. The
/// panic path refuses to run if this is corrupted — the paper's ~100
/// unprotected lines depend on the IDT and a few kernel page entries (§6).
pub const IDT_MAGIC: u32 = 0x3054_4449; // "IDT0"

/// Physical address of the handoff block.
pub const HANDOFF_ADDR: PhysAddr = 0;
/// Physical address of the per-CPU context save areas (frame 1).
pub const SAVE_AREA_ADDR: PhysAddr = 4096;
/// Number of frames reserved for handoff structures (block + save areas).
pub const HANDOFF_FRAMES: u64 = 2;

/// The fixed-location descriptor both kernels share: where the active
/// kernel's header lives and where the crash kernel image is loaded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandoffBlock {
    /// Frame of the active kernel's [`KernelHeader`].
    pub active_kernel_frame: u64,
    /// First frame of the crash-kernel reservation.
    pub crash_base: u64,
    /// Size of the crash-kernel reservation in frames.
    pub crash_frames: u64,
    /// Non-zero when a bootable crash-kernel image is loaded.
    pub crash_entry_ok: u32,
    /// IDT-analog validity stamp; must equal [`IDT_MAGIC`].
    pub idt_stamp: u32,
    /// Physical address of the per-CPU context save areas.
    pub save_area: PhysAddr,
    /// Microreboot generation counter (0 = first boot).
    pub generation: u32,
    /// First frame of the flight-recorder trace region (0 = no tracing).
    pub trace_base: u64,
    /// Frames in the trace region.
    pub trace_frames: u64,
}

impl HandoffBlock {
    /// Serialized size in bytes.
    pub const SIZE: u64 = 4 + 8 + 8 + 8 + 4 + 4 + 8 + 4 + 8 + 8;

    /// Writes the block at [`HANDOFF_ADDR`].
    pub fn write(&self, phys: &mut PhysMem) -> Result<(), LayoutError> {
        let mut w = CursorMut::new(phys, HANDOFF_ADDR);
        w.u32(HANDOFF_MAGIC)?;
        w.u64(self.active_kernel_frame)?;
        w.u64(self.crash_base)?;
        w.u64(self.crash_frames)?;
        w.u32(self.crash_entry_ok)?;
        w.u32(self.idt_stamp)?;
        w.u64(self.save_area)?;
        w.u32(self.generation)?;
        w.u64(self.trace_base)?;
        w.u64(self.trace_frames)?;
        Ok(())
    }

    /// Reads and validates the block.
    pub fn read(phys: &PhysMem) -> Result<(Self, u64), LayoutError> {
        let mut c = Cursor::new(phys, HANDOFF_ADDR);
        check_magic(&mut c, HANDOFF_MAGIC, "HandoffBlock")?;
        let b = HandoffBlock {
            active_kernel_frame: c.u64()?,
            crash_base: c.u64()?,
            crash_frames: c.u64()?,
            crash_entry_ok: c.u32()?,
            idt_stamp: c.u32()?,
            save_area: c.u64()?,
            generation: c.u32()?,
            trace_base: c.u64()?,
            trace_frames: c.u64()?,
        };
        if b.active_kernel_frame >= phys.frames() {
            return Err(LayoutError::BadValue {
                structure: "HandoffBlock",
                field: "active_kernel_frame",
                addr: HANDOFF_ADDR,
            });
        }
        Ok((b, c.consumed))
    }
}

/// First byte of the IDT gate array within the handoff frame (after the
/// [`HandoffBlock`]).
pub const IDT_GATES_OFF: u64 = 256;
/// Gate-entry stamp: every 8-byte gate must carry this value.
pub const IDT_GATE_STAMP: u64 = 0x4554_4147_5f54_4449; // "IDT_GATE"

/// Fills the IDT-analog gate array (done once at cold boot).
///
/// On real hardware the IDT is a full page of gate descriptors and *all* of
/// it is load-bearing: timer interrupts and exceptions fire constantly, so
/// a wild write anywhere in the page soon triple-faults the machine. The
/// panic path (§3.2) depends on NMI delivery through this table — its
/// corruption is the paper's main cause of "failure to boot the crash
/// kernel" (§6).
pub fn write_idt_gates(phys: &mut PhysMem) -> Result<(), LayoutError> {
    let mut addr = IDT_GATES_OFF;
    while addr + 8 <= 4096 {
        phys.write_u64(addr, IDT_GATE_STAMP)?;
        addr += 8;
    }
    Ok(())
}

/// Validates every IDT gate; any corrupted gate means interrupt delivery
/// (and therefore the NMI broadcast) cannot be trusted.
pub fn idt_gates_valid(phys: &PhysMem) -> bool {
    let mut addr = IDT_GATES_OFF;
    while addr + 8 <= 4096 {
        match phys.read_u64(addr) {
            Ok(v) if v == IDT_GATE_STAMP => addr += 8,
            _ => return false,
        }
    }
    true
}

// ---------------------------------------------------------------------------
// Crash-kernel image header
// ---------------------------------------------------------------------------

/// Magic for the loaded crash-kernel image.
pub const CRASH_IMAGE_MAGIC: u32 = 0x4943_574f; // "OWCI"

/// Header of the passive crash-kernel image sitting in its reservation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashImageHeader {
    /// Image format version.
    pub version: u32,
    /// Non-zero when the entry point is intact.
    pub entry_valid: u32,
}

impl CrashImageHeader {
    /// Serialized size in bytes.
    pub const SIZE: u64 = 4 + 4 + 4;

    /// Writes the header at the start of the crash reservation.
    pub fn write(&self, phys: &mut PhysMem, addr: PhysAddr) -> Result<(), LayoutError> {
        let mut w = CursorMut::new(phys, addr);
        w.u32(CRASH_IMAGE_MAGIC)?;
        w.u32(self.version)?;
        w.u32(self.entry_valid)?;
        Ok(())
    }

    /// Reads and validates the header.
    pub fn read(phys: &PhysMem, addr: PhysAddr) -> Result<Self, LayoutError> {
        let mut c = Cursor::new(phys, addr);
        check_magic(&mut c, CRASH_IMAGE_MAGIC, "CrashImageHeader")?;
        Ok(CrashImageHeader {
            version: c.u32()?,
            entry_valid: c.u32()?,
        })
    }
}

// ---------------------------------------------------------------------------
// Kernel header
// ---------------------------------------------------------------------------

/// Magic for [`KernelHeader`].
pub const KERNEL_HEADER_MAGIC: u32 = 0x484b_574f; // "OWKH"

/// The root structure of a running kernel, at the start of its region.
///
/// Linux equivalent: the fixed, compile-time kernel start address through
/// which the crash kernel locates the process list and swap descriptors
/// (§3.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelHeader {
    /// Kernel version (both kernels are built from the same source).
    pub version: u32,
    /// First frame of this kernel's region.
    pub base_frame: u64,
    /// Frames in this kernel's region.
    pub nframes: u64,
    /// Physical address of the first [`ProcDesc`] (0 = empty list).
    pub proc_head: PhysAddr,
    /// Number of processes on the list (cross-check for walking).
    pub nprocs: u64,
    /// Physical address of the swap-descriptor array.
    pub swap_array: PhysAddr,
    /// Number of swap descriptors.
    pub nswap: u32,
    /// Whether this kernel booted as a crash kernel.
    pub is_crash: u32,
    /// Physical address of the terminal-descriptor array.
    pub term_table: PhysAddr,
    /// Number of terminal descriptors.
    pub nterms: u32,
    /// Physical address of the pipe-descriptor array.
    pub pipe_table: PhysAddr,
    /// Number of pipe descriptors.
    pub npipes: u32,
}

impl KernelHeader {
    /// Serialized size in bytes.
    pub const SIZE: u64 = 4 + 4 + 8 + 8 + 8 + 8 + 8 + 4 + 4 + 8 + 4 + 8 + 4 + 4;

    /// Writes the header at `addr`.
    pub fn write(&self, phys: &mut PhysMem, addr: PhysAddr) -> Result<(), LayoutError> {
        let mut w = CursorMut::new(phys, addr);
        w.u32(KERNEL_HEADER_MAGIC)?;
        w.u32(self.version)?;
        w.u64(self.base_frame)?;
        w.u64(self.nframes)?;
        w.u64(self.proc_head)?;
        w.u64(self.nprocs)?;
        w.u64(self.swap_array)?;
        w.u32(self.nswap)?;
        w.u32(self.is_crash)?;
        w.u64(self.term_table)?;
        w.u32(self.nterms)?;
        w.u64(self.pipe_table)?;
        w.u32(self.npipes)?;
        w.u32(0)?; // padding
        Ok(())
    }

    /// Reads and validates the header, returning it plus bytes consumed.
    pub fn read(phys: &PhysMem, addr: PhysAddr) -> Result<(Self, u64), LayoutError> {
        let mut c = Cursor::new(phys, addr);
        check_magic(&mut c, KERNEL_HEADER_MAGIC, "KernelHeader")?;
        let h = KernelHeader {
            version: c.u32()?,
            base_frame: c.u64()?,
            nframes: c.u64()?,
            proc_head: c.u64()?,
            nprocs: c.u64()?,
            swap_array: c.u64()?,
            nswap: c.u32()?,
            is_crash: c.u32()?,
            term_table: c.u64()?,
            nterms: c.u32()?,
            pipe_table: c.u64()?,
            npipes: c.u32()?,
        };
        let _pad = c.u32()?;
        if h.nprocs > 4096 {
            return Err(LayoutError::BadValue {
                structure: "KernelHeader",
                field: "nprocs",
                addr,
            });
        }
        if h.nswap > 8 || h.nterms > 64 || h.npipes > 64 {
            return Err(LayoutError::BadValue {
                structure: "KernelHeader",
                field: "nswap/nterms/npipes",
                addr,
            });
        }
        Ok((h, c.consumed))
    }
}

// ---------------------------------------------------------------------------
// Process descriptor
// ---------------------------------------------------------------------------

/// Magic for [`ProcDesc`].
pub const PROC_MAGIC: u32 = 0x434f_5250; // "PROC"

/// Process run state, mirrored into memory.
pub mod pstate {
    /// Runnable / running.
    pub const RUNNABLE: u32 = 1;
    /// Blocked in a system call.
    pub const BLOCKED: u32 = 2;
    /// Exited.
    pub const EXITED: u32 = 3;
}

/// Byte offsets of [`ProcDesc`] fields (single source of truth for the
/// kernel paths that update individual fields in place).
pub mod proc_off {
    use super::NAME_LEN;
    /// `state` field.
    pub const STATE: u64 = 4;
    /// `pid` field.
    pub const PID: u64 = 8;
    /// `name` field.
    pub const NAME: u64 = 16;
    /// `crash_proc` field.
    pub const CRASH_PROC: u64 = NAME + NAME_LEN as u64;
    /// `term_id` field.
    pub const TERM_ID: u64 = CRASH_PROC + 4;
    /// `page_root` field.
    pub const PAGE_ROOT: u64 = TERM_ID + 4;
    /// `mm_head` field.
    pub const MM_HEAD: u64 = PAGE_ROOT + 8;
    /// `files` field.
    pub const FILES: u64 = MM_HEAD + 8;
    /// `sig` field.
    pub const SIG: u64 = FILES + 8;
    /// `shm_head` field.
    pub const SHM_HEAD: u64 = SIG + 8;
    /// `sock_head` field.
    pub const SOCK_HEAD: u64 = SHM_HEAD + 8;
    /// `res_in_use` field.
    pub const RES_IN_USE: u64 = SOCK_HEAD + 8;
    /// `in_syscall` field.
    pub const IN_SYSCALL: u64 = RES_IN_USE + 4;
    /// `saved_pc` field.
    pub const SAVED_PC: u64 = IN_SYSCALL + 4;
    /// `saved_sp` field.
    pub const SAVED_SP: u64 = SAVED_PC + 8;
    /// `saved_regs` field.
    pub const SAVED_REGS: u64 = SAVED_SP + 8;
    /// `checksum` field (0 = checksums disabled).
    pub const CHECKSUM: u64 = SAVED_REGS + 8 * 8;
    /// `next` field.
    pub const NEXT: u64 = CHECKSUM + 8;
}

/// A process descriptor (Linux `task_struct` analog).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcDesc {
    /// Process id.
    pub pid: u64,
    /// Run state (see [`pstate`]).
    pub state: u32,
    /// Process name — also the executable identity for rehydration.
    pub name: String,
    /// Non-zero when the application registered a crash procedure (§3.4).
    pub crash_proc: u32,
    /// Root frame of the process page tables.
    pub page_root: u64,
    /// Physical address of the first [`VmaDesc`] (0 = none).
    pub mm_head: PhysAddr,
    /// Physical address of the [`FileTable`].
    pub files: PhysAddr,
    /// Physical address of the [`SigTable`].
    pub sig: PhysAddr,
    /// Attached terminal id (`u32::MAX` = none).
    pub term_id: u32,
    /// Physical address of the first attached [`ShmDesc`] (0 = none).
    pub shm_head: PhysAddr,
    /// Physical address of the first [`SockDesc`] (0 = none).
    pub sock_head: PhysAddr,
    /// Bitmask of resource types the process currently uses that the crash
    /// kernel cannot resurrect (see [`resmask`]).
    pub res_in_use: u32,
    /// Non-zero while the process is executing a system call; holds the
    /// syscall number + 1.
    pub in_syscall: u32,
    /// Saved user context: program counter (resume step index).
    pub saved_pc: u64,
    /// Saved user stack pointer.
    pub saved_sp: u64,
    /// Saved general-purpose registers.
    pub saved_regs: [u64; 8],
    /// Optional integrity checksum over the descriptor (§4 hardening;
    /// 0 = checksums disabled). Excludes the `checksum` and `next` fields.
    pub checksum: u64,
    /// Next process on the list (0 = end).
    pub next: PhysAddr,
}

impl ProcDesc {
    /// Serialized size in bytes.
    pub const SIZE: u64 = proc_off::NEXT + 8;

    /// Writes the descriptor at `addr`.
    pub fn write(&self, phys: &mut PhysMem, addr: PhysAddr) -> Result<(), LayoutError> {
        let mut w = CursorMut::new(phys, addr);
        w.u32(PROC_MAGIC)?;
        w.u32(self.state)?;
        w.u64(self.pid)?;
        w.bytes(&pack_str::<NAME_LEN>(&self.name))?;
        w.u32(self.crash_proc)?;
        w.u32(self.term_id)?;
        w.u64(self.page_root)?;
        w.u64(self.mm_head)?;
        w.u64(self.files)?;
        w.u64(self.sig)?;
        w.u64(self.shm_head)?;
        w.u64(self.sock_head)?;
        w.u32(self.res_in_use)?;
        w.u32(self.in_syscall)?;
        w.u64(self.saved_pc)?;
        w.u64(self.saved_sp)?;
        for r in self.saved_regs {
            w.u64(r)?;
        }
        w.u64(self.checksum)?;
        w.u64(self.next)?;
        Ok(())
    }

    /// Reads and validates a descriptor, returning it plus bytes consumed.
    pub fn read(phys: &PhysMem, addr: PhysAddr) -> Result<(Self, u64), LayoutError> {
        let mut c = Cursor::new(phys, addr);
        check_magic(&mut c, PROC_MAGIC, "ProcDesc")?;
        let state = c.u32()?;
        let pid = c.u64()?;
        let name = unpack_str(&c.bytes::<NAME_LEN>()?);
        let crash_proc = c.u32()?;
        let term_id = c.u32()?;
        let page_root = c.u64()?;
        let mm_head = c.u64()?;
        let files = c.u64()?;
        let sig = c.u64()?;
        let shm_head = c.u64()?;
        let sock_head = c.u64()?;
        let res_in_use = c.u32()?;
        let in_syscall = c.u32()?;
        let saved_pc = c.u64()?;
        let saved_sp = c.u64()?;
        let mut saved_regs = [0u64; 8];
        for r in &mut saved_regs {
            *r = c.u64()?;
        }
        let checksum = c.u64()?;
        let next = c.u64()?;
        if !(pstate::RUNNABLE..=pstate::EXITED).contains(&state) {
            return Err(LayoutError::BadValue {
                structure: "ProcDesc",
                field: "state",
                addr,
            });
        }
        if page_root >= phys.frames() {
            return Err(LayoutError::BadValue {
                structure: "ProcDesc",
                field: "page_root",
                addr,
            });
        }
        let desc = ProcDesc {
            pid,
            state,
            name,
            crash_proc,
            page_root,
            mm_head,
            files,
            sig,
            term_id,
            shm_head,
            sock_head,
            res_in_use,
            in_syscall,
            saved_pc,
            saved_sp,
            saved_regs,
            checksum,
            next,
        };
        // §4 hardening: when a checksum is maintained, corruption anywhere
        // in the descriptor is detected even if it passed the shallower
        // plausibility checks above.
        if desc.checksum != 0 && desc.compute_checksum() != desc.checksum {
            return Err(LayoutError::BadValue {
                structure: "ProcDesc",
                field: "checksum",
                addr,
            });
        }
        Ok((desc, c.consumed))
    }

    /// Computes the §4 integrity checksum over the descriptor's contents
    /// (excluding the `checksum` and `next` fields, which the kernel
    /// updates through checksum-aware paths of their own).
    pub fn compute_checksum(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a basis
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x100_0000_01b3);
        };
        mix(self.pid);
        mix(self.state as u64);
        for b in pack_str::<NAME_LEN>(&self.name) {
            mix(b as u64);
        }
        mix(self.crash_proc as u64);
        mix(self.term_id as u64);
        mix(self.page_root);
        mix(self.mm_head);
        mix(self.files);
        mix(self.sig);
        mix(self.shm_head);
        mix(self.sock_head);
        mix(self.res_in_use as u64);
        mix(self.in_syscall as u64);
        mix(self.saved_pc);
        mix(self.saved_sp);
        for r in self.saved_regs {
            mix(r);
        }
        h | 1 // never zero (zero means "disabled")
    }
}

// ---------------------------------------------------------------------------
// Memory region descriptor (VMA)
// ---------------------------------------------------------------------------

/// Magic for [`VmaDesc`].
pub const VMA_MAGIC: u32 = 0x3041_4d56; // "VMA0"

/// VMA flag bits.
pub mod vmaflags {
    /// Region is readable.
    pub const READ: u64 = 1 << 0;
    /// Region is writable.
    pub const WRITE: u64 = 1 << 1;
    /// Region is shared (e.g. shm attach).
    pub const SHARED: u64 = 1 << 2;
    /// Region is a file mapping.
    pub const FILE: u64 = 1 << 3;
    /// Region grows down (stack).
    pub const STACK: u64 = 1 << 4;
}

/// A memory-region descriptor (Linux `vm_area_struct` analog).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmaDesc {
    /// Start virtual address (page-aligned).
    pub start: u64,
    /// End virtual address (exclusive, page-aligned).
    pub end: u64,
    /// Flag bits (see [`vmaflags`]).
    pub flags: u64,
    /// Backing [`FileRecord`] for file mappings (0 = anonymous).
    pub file: PhysAddr,
    /// Offset of the mapping within the backing file.
    pub file_off: u64,
    /// Next region (0 = end of list).
    pub next: PhysAddr,
}

impl VmaDesc {
    /// Serialized size in bytes.
    pub const SIZE: u64 = 4 + 4 + 8 * 6;

    /// Writes the descriptor at `addr`.
    pub fn write(&self, phys: &mut PhysMem, addr: PhysAddr) -> Result<(), LayoutError> {
        let mut w = CursorMut::new(phys, addr);
        w.u32(VMA_MAGIC)?;
        w.u32(0)?;
        w.u64(self.start)?;
        w.u64(self.end)?;
        w.u64(self.flags)?;
        w.u64(self.file)?;
        w.u64(self.file_off)?;
        w.u64(self.next)?;
        Ok(())
    }

    /// Reads and validates a descriptor, returning it plus bytes consumed.
    pub fn read(phys: &PhysMem, addr: PhysAddr) -> Result<(Self, u64), LayoutError> {
        let mut c = Cursor::new(phys, addr);
        check_magic(&mut c, VMA_MAGIC, "VmaDesc")?;
        let _pad = c.u32()?;
        let v = VmaDesc {
            start: c.u64()?,
            end: c.u64()?,
            flags: c.u64()?,
            file: c.u64()?,
            file_off: c.u64()?,
            next: c.u64()?,
        };
        if v.start >= v.end
            || !v.start.is_multiple_of(4096)
            || !v.end.is_multiple_of(4096)
            || v.end > ow_simhw::paging::VA_LIMIT
        {
            return Err(LayoutError::BadValue {
                structure: "VmaDesc",
                field: "start/end",
                addr,
            });
        }
        Ok((v, c.consumed))
    }
}

// ---------------------------------------------------------------------------
// File table & file record
// ---------------------------------------------------------------------------

/// Magic for [`FileTable`].
pub const FTAB_MAGIC: u32 = 0x4241_5446; // "FTAB"

/// A process's open-file table (Linux `files_struct` analog).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileTable {
    /// One entry per fd slot; 0 = closed, otherwise the address of a
    /// [`FileRecord`].
    pub fds: [PhysAddr; MAX_FDS],
}

impl FileTable {
    /// Serialized size in bytes.
    pub const SIZE: u64 = 4 + 4 + 8 * MAX_FDS as u64;

    /// Writes the table at `addr`.
    pub fn write(&self, phys: &mut PhysMem, addr: PhysAddr) -> Result<(), LayoutError> {
        let mut w = CursorMut::new(phys, addr);
        w.u32(FTAB_MAGIC)?;
        w.u32(0)?;
        for fd in self.fds {
            w.u64(fd)?;
        }
        Ok(())
    }

    /// Reads and validates the table, returning it plus bytes consumed.
    pub fn read(phys: &PhysMem, addr: PhysAddr) -> Result<(Self, u64), LayoutError> {
        let mut c = Cursor::new(phys, addr);
        check_magic(&mut c, FTAB_MAGIC, "FileTable")?;
        let _pad = c.u32()?;
        let mut fds = [0u64; MAX_FDS];
        for fd in &mut fds {
            *fd = c.u64()?;
        }
        Ok((FileTable { fds }, c.consumed))
    }
}

/// Magic for [`FileRecord`].
pub const FILE_MAGIC: u32 = 0x454c_4946; // "FILE"

/// File open flags.
pub mod oflags {
    /// Open for reading.
    pub const READ: u32 = 1 << 0;
    /// Open for writing.
    pub const WRITE: u32 = 1 << 1;
    /// Create if absent.
    pub const CREATE: u32 = 1 << 2;
    /// Append mode.
    pub const APPEND: u32 = 1 << 3;
    /// Truncate on open.
    pub const TRUNC: u32 = 1 << 4;
}

/// An open file (Linux `struct file`, *modified as in §3.1*: the paper keeps
/// the location, name and open flags directly in the file structure so
/// resurrection needs only this one record rather than `file`+`inode`+
/// `dentry` chains).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileRecord {
    /// Open flags (see [`oflags`]).
    pub flags: u32,
    /// Reference count (fd table entries pointing here).
    pub refcnt: u32,
    /// Current file offset.
    pub offset: u64,
    /// Logical file size including not-yet-written-back cached data.
    pub fsize: u64,
    /// Inode number (cross-check against the path at resurrection).
    pub inode: u64,
    /// Full path, stored inline per the paper's kernel modification.
    pub path: String,
    /// First [`PageCacheNode`] of this file's buffer tree (0 = none).
    pub cache_head: PhysAddr,
}

impl FileRecord {
    /// Serialized size in bytes.
    pub const SIZE: u64 = 4 + 4 + 4 + 4 + 8 + 8 + 8 + PATH_LEN as u64 + 8;

    /// Writes the record at `addr`.
    pub fn write(&self, phys: &mut PhysMem, addr: PhysAddr) -> Result<(), LayoutError> {
        let mut w = CursorMut::new(phys, addr);
        w.u32(FILE_MAGIC)?;
        w.u32(self.flags)?;
        w.u32(self.refcnt)?;
        w.u32(0)?;
        w.u64(self.offset)?;
        w.u64(self.fsize)?;
        w.u64(self.inode)?;
        w.bytes(&pack_str::<PATH_LEN>(&self.path))?;
        w.u64(self.cache_head)?;
        Ok(())
    }

    /// Reads and validates the record, returning it plus bytes consumed.
    pub fn read(phys: &PhysMem, addr: PhysAddr) -> Result<(Self, u64), LayoutError> {
        let mut c = Cursor::new(phys, addr);
        check_magic(&mut c, FILE_MAGIC, "FileRecord")?;
        let flags = c.u32()?;
        let refcnt = c.u32()?;
        let _pad = c.u32()?;
        let offset = c.u64()?;
        let fsize = c.u64()?;
        let inode = c.u64()?;
        let path = unpack_str(&c.bytes::<PATH_LEN>()?);
        let cache_head = c.u64()?;
        if path.is_empty() {
            return Err(LayoutError::BadValue {
                structure: "FileRecord",
                field: "path",
                addr,
            });
        }
        Ok((
            FileRecord {
                flags,
                refcnt,
                offset,
                fsize,
                inode,
                path,
                cache_head,
            },
            c.consumed,
        ))
    }
}

/// Magic for [`PageCacheNode`].
pub const PGCACHE_MAGIC: u32 = 0x4e43_4750; // "PGCN"

/// One page of cached file data (leaf of the paper's buffer tree, §3.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageCacheNode {
    /// Offset of this page's data within the file (page-aligned).
    pub file_off: u64,
    /// Physical frame holding the data.
    pub pfn: u64,
    /// Non-zero when the page must be written back to disk.
    pub dirty: u32,
    /// Next node (0 = end).
    pub next: PhysAddr,
}

impl PageCacheNode {
    /// Serialized size in bytes.
    pub const SIZE: u64 = 4 + 4 + 8 + 8 + 4 + 4 + 8;

    /// Writes the node at `addr`.
    pub fn write(&self, phys: &mut PhysMem, addr: PhysAddr) -> Result<(), LayoutError> {
        let mut w = CursorMut::new(phys, addr);
        w.u32(PGCACHE_MAGIC)?;
        w.u32(0)?;
        w.u64(self.file_off)?;
        w.u64(self.pfn)?;
        w.u32(self.dirty)?;
        w.u32(0)?;
        w.u64(self.next)?;
        Ok(())
    }

    /// Reads and validates the node, returning it plus bytes consumed.
    pub fn read(phys: &PhysMem, addr: PhysAddr) -> Result<(Self, u64), LayoutError> {
        let mut c = Cursor::new(phys, addr);
        check_magic(&mut c, PGCACHE_MAGIC, "PageCacheNode")?;
        let _pad = c.u32()?;
        let file_off = c.u64()?;
        let pfn = c.u64()?;
        let dirty = c.u32()?;
        let _pad2 = c.u32()?;
        let next = c.u64()?;
        if file_off % 4096 != 0 || pfn >= phys.frames() {
            return Err(LayoutError::BadValue {
                structure: "PageCacheNode",
                field: "file_off/pfn",
                addr,
            });
        }
        Ok((
            PageCacheNode {
                file_off,
                pfn,
                dirty,
                next,
            },
            c.consumed,
        ))
    }
}

// ---------------------------------------------------------------------------
// Swap descriptor
// ---------------------------------------------------------------------------

/// Magic for [`SwapDesc`].
pub const SWAP_MAGIC: u32 = 0x5041_5753; // "SWAP"

/// Length of a swap device name.
pub const SWAP_NAME_LEN: usize = 16;

/// A swap-area descriptor (Linux `swap_info_struct` analog): the symbolic
/// device name is stored so the crash kernel can reopen the device (§3.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwapDesc {
    /// Symbolic device name (e.g. `"swap-main"`).
    pub dev_name: String,
    /// Device id at the time of writing (cross-check only; the name is
    /// authoritative, exactly as in the paper).
    pub dev_id: u32,
    /// Total slots in the area.
    pub nslots: u32,
    /// Physical address of the slot-allocation bitmap (one byte per slot).
    pub bitmap: PhysAddr,
}

impl SwapDesc {
    /// Serialized size in bytes.
    pub const SIZE: u64 = 4 + SWAP_NAME_LEN as u64 + 4 + 4 + 8 + 4;

    /// Writes the descriptor at `addr`.
    pub fn write(&self, phys: &mut PhysMem, addr: PhysAddr) -> Result<(), LayoutError> {
        let mut w = CursorMut::new(phys, addr);
        w.u32(SWAP_MAGIC)?;
        w.bytes(&pack_str::<SWAP_NAME_LEN>(&self.dev_name))?;
        w.u32(self.dev_id)?;
        w.u32(self.nslots)?;
        w.u64(self.bitmap)?;
        w.u32(0)?;
        Ok(())
    }

    /// Reads and validates the descriptor, returning it plus bytes consumed.
    pub fn read(phys: &PhysMem, addr: PhysAddr) -> Result<(Self, u64), LayoutError> {
        let mut c = Cursor::new(phys, addr);
        check_magic(&mut c, SWAP_MAGIC, "SwapDesc")?;
        let dev_name = unpack_str(&c.bytes::<SWAP_NAME_LEN>()?);
        let dev_id = c.u32()?;
        let nslots = c.u32()?;
        let bitmap = c.u64()?;
        let _pad = c.u32()?;
        if dev_name.is_empty() || nslots > 1 << 24 {
            return Err(LayoutError::BadValue {
                structure: "SwapDesc",
                field: "name/nslots",
                addr,
            });
        }
        Ok((
            SwapDesc {
                dev_name,
                dev_id,
                nslots,
                bitmap,
            },
            c.consumed,
        ))
    }
}

// ---------------------------------------------------------------------------
// Terminal descriptor
// ---------------------------------------------------------------------------

/// Magic for [`TermDesc`].
pub const TERM_MAGIC: u32 = 0x4d52_4554; // "TERM"

/// Terminal geometry: columns.
pub const TERM_COLS: u32 = 80;
/// Terminal geometry: rows.
pub const TERM_ROWS: u32 = 25;

/// A physical terminal: settings plus an in-kernel screen buffer frame
/// (§3.3 — the crash kernel restores screen contents and settings).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TermDesc {
    /// Terminal id.
    pub id: u32,
    /// Cursor position (row * cols + col).
    pub cursor: u32,
    /// Terminal settings word (echo, raw mode, ...).
    pub settings: u64,
    /// Frame holding the screen contents (cols*rows bytes).
    pub screen_pfn: u64,
}

impl TermDesc {
    /// Serialized size in bytes.
    pub const SIZE: u64 = 4 + 4 + 4 + 4 + 8 + 8;

    /// Writes the descriptor at `addr`.
    pub fn write(&self, phys: &mut PhysMem, addr: PhysAddr) -> Result<(), LayoutError> {
        let mut w = CursorMut::new(phys, addr);
        w.u32(TERM_MAGIC)?;
        w.u32(self.id)?;
        w.u32(self.cursor)?;
        w.u32(0)?;
        w.u64(self.settings)?;
        w.u64(self.screen_pfn)?;
        Ok(())
    }

    /// Reads and validates the descriptor, returning it plus bytes consumed.
    pub fn read(phys: &PhysMem, addr: PhysAddr) -> Result<(Self, u64), LayoutError> {
        let mut c = Cursor::new(phys, addr);
        check_magic(&mut c, TERM_MAGIC, "TermDesc")?;
        let id = c.u32()?;
        let cursor = c.u32()?;
        let _pad = c.u32()?;
        let settings = c.u64()?;
        let screen_pfn = c.u64()?;
        if cursor >= TERM_COLS * TERM_ROWS || screen_pfn >= phys.frames() {
            return Err(LayoutError::BadValue {
                structure: "TermDesc",
                field: "cursor/screen_pfn",
                addr,
            });
        }
        Ok((
            TermDesc {
                id,
                cursor,
                settings,
                screen_pfn,
            },
            c.consumed,
        ))
    }
}

// ---------------------------------------------------------------------------
// Signal table
// ---------------------------------------------------------------------------

/// Magic for [`SigTable`].
pub const SIG_MAGIC: u32 = 0x5447_4953; // "SIGT"

/// A process's signal-handler table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SigTable {
    /// Handler slot per signal (0 = default, otherwise an application
    /// handler token).
    pub handlers: [u64; NSIG],
}

impl SigTable {
    /// Serialized size in bytes.
    pub const SIZE: u64 = 4 + 4 + 8 * NSIG as u64;

    /// Writes the table at `addr`.
    pub fn write(&self, phys: &mut PhysMem, addr: PhysAddr) -> Result<(), LayoutError> {
        let mut w = CursorMut::new(phys, addr);
        w.u32(SIG_MAGIC)?;
        w.u32(0)?;
        for h in self.handlers {
            w.u64(h)?;
        }
        Ok(())
    }

    /// Reads and validates the table, returning it plus bytes consumed.
    pub fn read(phys: &PhysMem, addr: PhysAddr) -> Result<(Self, u64), LayoutError> {
        let mut c = Cursor::new(phys, addr);
        check_magic(&mut c, SIG_MAGIC, "SigTable")?;
        let _pad = c.u32()?;
        let mut handlers = [0u64; NSIG];
        for h in &mut handlers {
            *h = c.u64()?;
        }
        Ok((SigTable { handlers }, c.consumed))
    }
}

// ---------------------------------------------------------------------------
// Shared memory
// ---------------------------------------------------------------------------

/// Magic for [`ShmDesc`].
pub const SHM_MAGIC: u32 = 0x444d_4853; // "SHMD"

/// A System-V-style shared memory segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShmDesc {
    /// Segment key.
    pub key: u64,
    /// Segment size in bytes.
    pub size: u64,
    /// Virtual address the owning process attached it at (0 = detached).
    pub attach_vaddr: u64,
    /// Number of pages used.
    pub npages: u32,
    /// Frames backing the segment.
    pub pages: Vec<u64>,
    /// Next segment attached to the same process (0 = end).
    pub next: PhysAddr,
}

impl ShmDesc {
    /// Serialized size in bytes (pages array is fixed capacity).
    pub const SIZE: u64 = 4 + 4 + 8 + 8 + 8 + 8 + 8 * SHM_MAX_PAGES as u64;

    /// Writes the descriptor at `addr`.
    pub fn write(&self, phys: &mut PhysMem, addr: PhysAddr) -> Result<(), LayoutError> {
        assert!(self.pages.len() <= SHM_MAX_PAGES);
        let mut w = CursorMut::new(phys, addr);
        w.u32(SHM_MAGIC)?;
        w.u32(self.npages)?;
        w.u64(self.key)?;
        w.u64(self.size)?;
        w.u64(self.attach_vaddr)?;
        w.u64(self.next)?;
        for i in 0..SHM_MAX_PAGES {
            w.u64(self.pages.get(i).copied().unwrap_or(0))?;
        }
        Ok(())
    }

    /// Reads and validates the descriptor, returning it plus bytes consumed.
    pub fn read(phys: &PhysMem, addr: PhysAddr) -> Result<(Self, u64), LayoutError> {
        let mut c = Cursor::new(phys, addr);
        check_magic(&mut c, SHM_MAGIC, "ShmDesc")?;
        let npages = c.u32()?;
        let key = c.u64()?;
        let size = c.u64()?;
        let attach_vaddr = c.u64()?;
        let next = c.u64()?;
        if npages as usize > SHM_MAX_PAGES {
            return Err(LayoutError::BadValue {
                structure: "ShmDesc",
                field: "npages",
                addr,
            });
        }
        let mut pages = Vec::with_capacity(npages as usize);
        for i in 0..SHM_MAX_PAGES {
            let p = c.u64()?;
            if i < npages as usize {
                if p >= phys.frames() {
                    return Err(LayoutError::BadValue {
                        structure: "ShmDesc",
                        field: "pages",
                        addr,
                    });
                }
                pages.push(p);
            }
        }
        Ok((
            ShmDesc {
                key,
                size,
                attach_vaddr,
                npages,
                pages,
                next,
            },
            c.consumed,
        ))
    }
}

// ---------------------------------------------------------------------------
// Pipes (§3.3 discussion; resurrectable as a §7 extension)
// ---------------------------------------------------------------------------

/// Magic for [`PipeDesc`].
pub const PIPE_MAGIC: u32 = 0x4550_4950; // "PIPE"

/// Pipe ring-buffer capacity in bytes (one frame, one slot reserved).
pub const PIPE_CAP: u32 = 4095;

/// A pipe: a ring buffer shared between processes, serialized by a
/// semaphore. Per §3.3, when the semaphore is **not** held the structure is
/// consistent and resurrectable; when it is held at crash time, the pipe
/// was mid-update and must be considered lost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipeDesc {
    /// Non-zero while a reader/writer holds the pipe semaphore.
    pub locked: u32,
    /// Read cursor into the ring.
    pub rd: u32,
    /// Write cursor into the ring.
    pub wr: u32,
    /// Frame holding the ring buffer.
    pub buf_pfn: u64,
}

impl PipeDesc {
    /// Serialized size in bytes.
    pub const SIZE: u64 = 4 + 4 + 4 + 4 + 8;

    /// Writes the descriptor at `addr`.
    pub fn write(&self, phys: &mut PhysMem, addr: PhysAddr) -> Result<(), LayoutError> {
        let mut w = CursorMut::new(phys, addr);
        w.u32(PIPE_MAGIC)?;
        w.u32(self.locked)?;
        w.u32(self.rd)?;
        w.u32(self.wr)?;
        w.u64(self.buf_pfn)?;
        Ok(())
    }

    /// Reads and validates the descriptor, returning it plus bytes consumed.
    pub fn read(phys: &PhysMem, addr: PhysAddr) -> Result<(Self, u64), LayoutError> {
        let mut c = Cursor::new(phys, addr);
        check_magic(&mut c, PIPE_MAGIC, "PipeDesc")?;
        let d = PipeDesc {
            locked: c.u32()?,
            rd: c.u32()?,
            wr: c.u32()?,
            buf_pfn: c.u64()?,
        };
        if d.rd > PIPE_CAP + 1 || d.wr > PIPE_CAP + 1 || d.buf_pfn >= phys.frames() {
            return Err(LayoutError::BadValue {
                structure: "PipeDesc",
                field: "cursors",
                addr,
            });
        }
        Ok((d, c.consumed))
    }
}

// ---------------------------------------------------------------------------
// Sockets (§7 extension: TCP/UDP resurrection)
// ---------------------------------------------------------------------------

/// Magic for [`SockDesc`].
pub const SOCK_MAGIC: u32 = 0x4b43_4f53; // "SOCK"

/// Socket protocol values.
pub mod sockproto {
    /// Datagram (UDP-like): payload may be discarded on resurrection.
    pub const UDP: u32 = 0;
    /// Stream (TCP-like): connection parameters plus unacknowledged
    /// outbound payload must be restored.
    pub const TCP: u32 = 1;
}

/// A socket descriptor on a process's socket chain.
///
/// The paper's prototype cannot resurrect these (§3.3) but argues they are
/// resurrectable: UDP needs only the connection parameters; TCP also needs
/// the sequence state and all outbound payload not yet acknowledged. This
/// structure carries exactly that, as the §7 extension implements it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SockDesc {
    /// Protocol (see [`sockproto`]).
    pub proto: u32,
    /// 1 = open, 0 = closed.
    pub state: u32,
    /// Socket id within the owning process.
    pub sid: u32,
    /// Local port (connection parameter).
    pub local_port: u32,
    /// Send sequence number.
    pub seq: u64,
    /// Frame buffering unacknowledged outbound payload.
    pub outbuf_pfn: u64,
    /// Bytes of unacknowledged payload in the buffer.
    pub outbuf_len: u32,
    /// Next socket on the chain (0 = end).
    pub next: PhysAddr,
}

impl SockDesc {
    /// Serialized size in bytes.
    pub const SIZE: u64 = 4 + 4 + 4 + 4 + 4 + 4 + 8 + 8 + 4 + 4 + 8;

    /// Writes the descriptor at `addr`.
    pub fn write(&self, phys: &mut PhysMem, addr: PhysAddr) -> Result<(), LayoutError> {
        let mut w = CursorMut::new(phys, addr);
        w.u32(SOCK_MAGIC)?;
        w.u32(self.proto)?;
        w.u32(self.state)?;
        w.u32(self.sid)?;
        w.u32(self.local_port)?;
        w.u32(0)?;
        w.u64(self.seq)?;
        w.u64(self.outbuf_pfn)?;
        w.u32(self.outbuf_len)?;
        w.u32(0)?;
        w.u64(self.next)?;
        Ok(())
    }

    /// Reads and validates the descriptor, returning it plus bytes consumed.
    pub fn read(phys: &PhysMem, addr: PhysAddr) -> Result<(Self, u64), LayoutError> {
        let mut c = Cursor::new(phys, addr);
        check_magic(&mut c, SOCK_MAGIC, "SockDesc")?;
        let proto = c.u32()?;
        let state = c.u32()?;
        let sid = c.u32()?;
        let local_port = c.u32()?;
        let _pad = c.u32()?;
        let seq = c.u64()?;
        let outbuf_pfn = c.u64()?;
        let outbuf_len = c.u32()?;
        let _pad2 = c.u32()?;
        let next = c.u64()?;
        if proto > 1 || state > 1 || outbuf_len > 4096 || outbuf_pfn >= phys.frames() {
            return Err(LayoutError::BadValue {
                structure: "SockDesc",
                field: "fields",
                addr,
            });
        }
        Ok((
            SockDesc {
                proto,
                state,
                sid,
                local_port,
                seq,
                outbuf_pfn,
                outbuf_len,
                next,
            },
            c.consumed,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phys() -> PhysMem {
        PhysMem::new(64)
    }

    #[test]
    fn handoff_round_trip() {
        let mut p = phys();
        let b = HandoffBlock {
            active_kernel_frame: 4,
            crash_base: 32,
            crash_frames: 16,
            crash_entry_ok: 1,
            idt_stamp: IDT_MAGIC,
            save_area: SAVE_AREA_ADDR,
            generation: 3,
            trace_base: 48,
            trace_frames: 8,
        };
        b.write(&mut p).unwrap();
        let (got, n) = HandoffBlock::read(&p).unwrap();
        assert_eq!(got, b);
        assert_eq!(n, HandoffBlock::SIZE);
    }

    #[test]
    fn corrupted_handoff_detected() {
        let mut p = phys();
        HandoffBlock {
            active_kernel_frame: 4,
            crash_base: 32,
            crash_frames: 16,
            crash_entry_ok: 1,
            idt_stamp: IDT_MAGIC,
            save_area: SAVE_AREA_ADDR,
            generation: 0,
            trace_base: 0,
            trace_frames: 0,
        }
        .write(&mut p)
        .unwrap();
        p.corrupt_u64(HANDOFF_ADDR, 0xdead);
        assert!(matches!(
            HandoffBlock::read(&p),
            Err(LayoutError::BadMagic {
                expected: "HandoffBlock",
                ..
            })
        ));
    }

    #[test]
    fn proc_desc_round_trip() {
        let mut p = phys();
        let d = ProcDesc {
            pid: 42,
            state: pstate::RUNNABLE,
            name: "mysqld".into(),
            crash_proc: 1,
            page_root: 9,
            mm_head: 0x3000,
            files: 0x3100,
            sig: 0x3200,
            term_id: u32::MAX,
            shm_head: 0,
            sock_head: 0x3300,
            res_in_use: resmask::SOCKETS,
            in_syscall: 3,
            saved_pc: 17,
            saved_sp: 0xff00,
            saved_regs: [1, 2, 3, 4, 5, 6, 7, 8],
            checksum: 0,
            next: 0,
        };
        d.write(&mut p, 0x1000).unwrap();
        let (got, n) = ProcDesc::read(&p, 0x1000).unwrap();
        assert_eq!(got, d);
        assert_eq!(n, ProcDesc::SIZE);
    }

    #[test]
    fn proc_desc_rejects_wild_state() {
        let mut p = phys();
        let mut d = ProcDesc {
            pid: 1,
            state: pstate::RUNNABLE,
            name: "vi".into(),
            crash_proc: 0,
            page_root: 1,
            mm_head: 0,
            files: 0,
            sig: 0,
            term_id: 0,
            shm_head: 0,
            sock_head: 0,
            res_in_use: 0,
            in_syscall: 0,
            saved_pc: 0,
            saved_sp: 0,
            saved_regs: [0; 8],
            checksum: 0,
            next: 0,
        };
        d.write(&mut p, 0x1000).unwrap();
        // Corrupt the state field (offset 4).
        p.write_u32(0x1004, 999).unwrap();
        assert!(matches!(
            ProcDesc::read(&p, 0x1000),
            Err(LayoutError::BadValue { field: "state", .. })
        ));
        // And an out-of-RAM page root.
        d.state = pstate::RUNNABLE;
        d.page_root = 1 << 40;
        d.write(&mut p, 0x1000).unwrap();
        assert!(ProcDesc::read(&p, 0x1000).is_err());
    }

    #[test]
    fn vma_round_trip_and_validation() {
        let mut p = phys();
        let v = VmaDesc {
            start: 0x1000,
            end: 0x4000,
            flags: vmaflags::READ | vmaflags::WRITE,
            file: 0,
            file_off: 0,
            next: 0x8888,
        };
        v.write(&mut p, 0x2000).unwrap();
        let (got, _) = VmaDesc::read(&p, 0x2000).unwrap();
        assert_eq!(got, v);

        let bad = VmaDesc {
            start: 0x4000,
            end: 0x1000,
            ..v
        };
        bad.write(&mut p, 0x2100).unwrap();
        assert!(VmaDesc::read(&p, 0x2100).is_err());
    }

    #[test]
    fn file_record_round_trip() {
        let mut p = phys();
        let f = FileRecord {
            flags: oflags::READ | oflags::WRITE,
            refcnt: 1,
            offset: 12345,
            fsize: 20000,
            inode: 7,
            path: "/data/table.db".into(),
            cache_head: 0x9000,
        };
        f.write(&mut p, 0x5000).unwrap();
        let (got, n) = FileRecord::read(&p, 0x5000).unwrap();
        assert_eq!(got, f);
        assert_eq!(n, FileRecord::SIZE);
    }

    #[test]
    fn empty_path_fails_read_validation() {
        let mut p = phys();
        // Write a record with an empty path manually.
        let f = FileRecord {
            flags: 0,
            refcnt: 1,
            offset: 0,
            fsize: 0,
            inode: 0,
            path: "x".into(),
            cache_head: 0,
        };
        f.write(&mut p, 0x5000).unwrap();
        // Zero the path bytes.
        let path_off = 0x5000 + 4 + 4 + 4 + 4 + 8 + 8 + 8;
        p.write(path_off, &[0u8; PATH_LEN]).unwrap();
        assert!(matches!(
            FileRecord::read(&p, 0x5000),
            Err(LayoutError::BadValue { field: "path", .. })
        ));
    }

    #[test]
    fn swap_terminal_sig_shm_round_trips() {
        let mut p = phys();
        let s = SwapDesc {
            dev_name: "swap-main".into(),
            dev_id: 1,
            nslots: 1024,
            bitmap: 0x7000,
        };
        s.write(&mut p, 0x6000).unwrap();
        assert_eq!(SwapDesc::read(&p, 0x6000).unwrap().0, s);

        let t = TermDesc {
            id: 0,
            cursor: 81,
            settings: 0b11,
            screen_pfn: 5,
        };
        t.write(&mut p, 0x6100).unwrap();
        assert_eq!(TermDesc::read(&p, 0x6100).unwrap().0, t);

        let mut sig = SigTable {
            handlers: [0; NSIG],
        };
        sig.handlers[2] = 0xbeef;
        sig.write(&mut p, 0x6200).unwrap();
        assert_eq!(SigTable::read(&p, 0x6200).unwrap().0, sig);

        let shm = ShmDesc {
            key: 0x5e55,
            size: 8192,
            attach_vaddr: 0x10_0000,
            npages: 2,
            pages: vec![11, 12],
            next: 0,
        };
        shm.write(&mut p, 0x6400).unwrap();
        assert_eq!(ShmDesc::read(&p, 0x6400).unwrap().0, shm);
    }

    #[test]
    fn page_cache_node_round_trip_and_validation() {
        let mut p = phys();
        let n = PageCacheNode {
            file_off: 8192,
            pfn: 3,
            dirty: 1,
            next: 0,
        };
        n.write(&mut p, 0x6800).unwrap();
        assert_eq!(PageCacheNode::read(&p, 0x6800).unwrap().0, n);

        let bad = PageCacheNode {
            file_off: 100,
            pfn: 3,
            dirty: 0,
            next: 0,
        };
        bad.write(&mut p, 0x6900).unwrap();
        assert!(PageCacheNode::read(&p, 0x6900).is_err());
    }

    #[test]
    fn kernel_header_round_trip() {
        let mut p = phys();
        let h = KernelHeader {
            version: 1,
            base_frame: 4,
            nframes: 16,
            proc_head: 0x5000,
            nprocs: 3,
            swap_array: 0x5800,
            nswap: 2,
            is_crash: 0,
            term_table: 0x5900,
            nterms: 2,
            pipe_table: 0x5a00,
            npipes: 1,
        };
        h.write(&mut p, 4 * 4096).unwrap();
        let (got, _) = KernelHeader::read(&p, 4 * 4096).unwrap();
        assert_eq!(got, h);
    }

    #[test]
    fn kernel_header_rejects_implausible_counts() {
        let mut p = phys();
        let h = KernelHeader {
            version: 1,
            base_frame: 4,
            nframes: 16,
            proc_head: 0,
            nprocs: 100_000,
            swap_array: 0,
            nswap: 0,
            is_crash: 0,
            term_table: 0,
            nterms: 0,
            pipe_table: 0,
            npipes: 0,
        };
        h.write(&mut p, 4 * 4096).unwrap();
        assert!(KernelHeader::read(&p, 4 * 4096).is_err());
    }

    #[test]
    fn pack_unpack_str() {
        let a = pack_str::<8>("hello");
        assert_eq!(unpack_str(&a), "hello");
        let b = pack_str::<4>("toolong");
        assert_eq!(unpack_str(&b), "too");
    }
}
