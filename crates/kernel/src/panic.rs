//! The panic path: the ~100 lines the paper cannot protect (§2, §6).
//!
//! On a critical error the main kernel sends NMIs to all other CPUs (each
//! saves the context of the thread it was running and halts), validates the
//! handoff structures, removes the crash-image memory protection and jumps
//! to the crash kernel's entry point (§3.2). Each of those actions depends
//! on a small amount of state — the IDT analog, the handoff descriptor, the
//! crash image header — and corruption of any of them makes the handoff
//! fail: Table 5's "failure to boot the crash kernel" column.
//!
//! The three §6 robustness fixes live here and in the watchdog:
//! * stalls only become microreboots when the watchdog NMI is enabled;
//! * double faults only hand off when the double-fault handler is fixed;
//! * a sabotaged panic path (stack-print recursion, reliance on the current
//!   process descriptor) only survives with KDump hardening.

use crate::{
    kernel::{HandoffInfo, Kernel, PanicCause, PanicOutcome},
    layout::{CrashImageHeader, HandoffBlock, ProcDesc, IDT_MAGIC, SAVE_AREA_ADDR},
};
use ow_layout::Record;
use ow_trace::PanicStep;

/// Stable encoding of a panic cause for the flight record's `Entered` step.
fn cause_code(cause: PanicCause) -> u64 {
    match cause {
        PanicCause::Oops(_) => 1,
        PanicCause::DoubleFault => 2,
        PanicCause::Stall => 3,
        PanicCause::CorruptedPanicPath => 4,
    }
}

impl Kernel {
    /// Executes the panic path for `cause`, recording the outcome in
    /// [`Kernel::panicked`]. Idempotent: a second panic is ignored.
    ///
    /// Every milestone is appended to the flight recorder, so the crash
    /// kernel (or a human reading the recovered record) can see exactly how
    /// far the ~100 unprotected lines got before handing off or halting.
    pub fn do_panic(&mut self, cause: PanicCause) -> PanicOutcome {
        if let Some(out) = &self.panicked {
            return out.clone();
        }
        self.trace_panic_step(PanicStep::Entered, cause_code(cause));
        let outcome = self.panic_path(cause);
        match &outcome {
            PanicOutcome::Handoff(_) => self.trace_panic_step(PanicStep::Handoff, 0),
            PanicOutcome::SystemHalted(_) => self.trace_panic_step(PanicStep::Halted, 0),
        }
        self.panicked = Some(outcome.clone());
        outcome
    }

    fn panic_path(&mut self, cause: PanicCause) -> PanicOutcome {
        // A fault at the very top of the panic path: the Entered milestone
        // is already in the flight recorder, nothing else happened yet.
        ow_crashpoint::crash_point!("kernel.panic.path.entered");
        let fixes = self.config.fixes;

        // A stall is not a panic at all: nothing runs. Only the watchdog
        // NMI can start the microreboot (§6 fix 1).
        if cause == PanicCause::Stall && !fixes.watchdog_nmi {
            return PanicOutcome::SystemHalted("stall: no watchdog NMI, system hangs");
        }

        // KDump's original double-fault handler stopped the system (§6).
        if cause == PanicCause::DoubleFault && !fixes.doublefault_handler {
            return PanicOutcome::SystemHalted("double fault: KDump stops the system");
        }

        // The legacy KDump panic path printed the stack (unbounded
        // recursion on a corrupted stack) and dereferenced the current
        // process descriptor without validation (§6).
        if cause == PanicCause::CorruptedPanicPath && !fixes.kdump_hardening {
            return PanicOutcome::SystemHalted("panic path re-faulted (no KDump hardening)");
        }
        if !fixes.kdump_hardening {
            // Even a clean oops consults `current` for diagnostics; if the
            // running process's descriptor was corrupted, the unhardened
            // path re-faults.
            let cur_pid = self.machine.cpus[0].current_pid;
            if let Ok(p) = self.proc(cur_pid) {
                if ProcDesc::read(&self.machine.phys, p.desc_addr).is_err() {
                    return PanicOutcome::SystemHalted("panic path dereferenced corrupt current");
                }
            }
        }

        // The IDT analog: NMIs cannot be delivered through a corrupted
        // interrupt table.
        let handoff = match HandoffBlock::read(&self.machine.phys) {
            Ok((h, _)) => h,
            Err(_) => return PanicOutcome::SystemHalted("handoff block corrupted"),
        };
        self.trace_panic_step(PanicStep::HandoffRead, handoff.generation as u64);
        ow_crashpoint::crash_point!("kernel.panic.handoff.read");
        if handoff.idt_stamp != IDT_MAGIC || !crate::layout::idt_gates_valid(&self.machine.phys) {
            return PanicOutcome::SystemHalted("IDT corrupted: NMI broadcast impossible");
        }
        if handoff.crash_entry_ok == 0 || handoff.crash_frames == 0 {
            return PanicOutcome::SystemHalted("no crash kernel loaded");
        }
        self.trace_panic_step(PanicStep::IdtValidated, 0);

        // NMI all CPUs: each saves the context of the thread it was running
        // to its save area and halts (§3.2).
        let save_base = handoff.save_area;
        let ncpus = self.machine.cpus.len() as u64;
        for cpu in &mut self.machine.cpus {
            if cpu.nmi_halt(&mut self.machine.phys, save_base).is_err() {
                return PanicOutcome::SystemHalted("context save area unreachable");
            }
        }
        self.trace_panic_step(PanicStep::NmiBroadcast, ncpus);
        ow_crashpoint::crash_point!("kernel.panic.nmi.broadcast");

        // Validate the crash-kernel image before jumping to it. The image
        // itself is hardware-protected, but its descriptor must be sane.
        let image_addr = handoff.crash_base * ow_simhw::PAGE_BYTES;
        match CrashImageHeader::read(&self.machine.phys, image_addr) {
            Ok((img, _)) if img.entry_valid != 0 => {}
            _ => return PanicOutcome::SystemHalted("crash image header invalid"),
        }
        self.trace_panic_step(PanicStep::CrashImageValidated, handoff.crash_base);

        // Last act before the jump: seal the adoptable state (frame bitmap,
        // swap-slot map, page-cache CRCs) for the warm morph. Best-effort:
        // any failure leaves the boot-time invalid seal in place and the
        // next morph stays cold.
        ow_crashpoint::crash_point!("kernel.panic.seal.write");
        self.seal_warm_state();

        // And one final epoch checkpoint: the state at the instant of
        // death, stamped AT_PANIC so rollback-in-place can restore it
        // without replaying anything. Best-effort like the warm seal — a
        // failed epoch just means rollback falls through to the
        // microreboot.
        let _ = self.seal_epoch_checkpoint(true);

        // Remove the memory protection from the crash-kernel image and
        // "jump" to it: from here no main-kernel code runs.
        ow_crashpoint::crash_point!("kernel.panic.handoff.jump");
        PanicOutcome::Handoff(HandoffInfo {
            dead_kernel_frame: self.base_frame,
            crash_base: handoff.crash_base,
            crash_frames: handoff.crash_frames,
            generation: self.generation,
        })
    }

    /// Called by the timer path when the watchdog fires: a stall becomes a
    /// microreboot (with the fix) or stays a hang (without).
    pub fn watchdog_fired(&mut self) -> PanicOutcome {
        if self.panicked.is_none() {
            self.trace_panic_step(PanicStep::WatchdogFired, 0);
        }
        self.do_panic(PanicCause::Stall)
    }

    /// Saved context area address for CPU `id` (diagnostics and tests).
    pub fn save_area_of(cpu: u32) -> u64 {
        SAVE_AREA_ADDR + cpu as u64 * ow_simhw::cpu::SAVE_AREA_BYTES
    }
}
