//! Swap areas.
//!
//! The system carries two swap partitions: the main kernel uses one and the
//! crash kernel the other, so pages the main kernel swapped out are never
//! clobbered and remain readable during resurrection (§3.2). The swap
//! descriptor (including the symbolic device name needed to reopen the
//! device) and the slot bitmap live in kernel memory per [`crate::layout`].

use crate::{error::KernelError, layout::SwapDesc};
use ow_layout::Record;
use ow_simhw::{machine::Machine, DevId, PhysAddr, PAGE_SIZE};
use ow_trace::{EventKind, TraceRing};

/// A host-side handle to a swap area whose descriptor lives in kernel memory.
#[derive(Debug, Clone)]
pub struct SwapArea {
    /// Device holding the area.
    pub dev: DevId,
    /// Symbolic device name (authoritative for reopening, as in the paper).
    pub name: String,
    /// Total slots.
    pub nslots: u32,
    /// Physical address of the slot bitmap (1 byte per slot).
    pub bitmap: PhysAddr,
    /// Physical address of the serialized [`SwapDesc`].
    pub desc_addr: PhysAddr,
    /// Flight recorder for swap-I/O events (set by the owning kernel once
    /// its ring is armed; `None` on handles rebuilt from a dead kernel).
    pub trace: Option<TraceRing>,
}

impl SwapArea {
    /// Initializes a swap area over `dev`, writing its descriptor at
    /// `desc_addr` and its bitmap at `bitmap` (both in kernel memory).
    pub fn init(
        m: &mut Machine,
        dev: DevId,
        name: &str,
        desc_addr: PhysAddr,
        bitmap: PhysAddr,
    ) -> Result<SwapArea, KernelError> {
        let nslots = {
            let d = m.device(dev);
            (d.size() / PAGE_SIZE as u64) as u32
        };
        let desc = SwapDesc {
            dev_name: name.to_string(),
            dev_id: dev,
            nslots,
            bitmap,
        };
        desc.write(&mut m.phys, desc_addr)?;
        // Zero the bitmap.
        let zeros = vec![0u8; nslots as usize];
        m.phys.write(bitmap, &zeros)?;
        Ok(SwapArea {
            dev,
            name: name.to_string(),
            nslots,
            bitmap,
            desc_addr,
            trace: None,
        })
    }

    /// Allocates a free slot.
    pub fn alloc_slot(&self, m: &mut Machine) -> Result<u32, KernelError> {
        for slot in 0..self.nslots {
            if m.phys.read_u8(self.bitmap + slot as u64)? == 0 {
                m.phys.write_u8(self.bitmap + slot as u64, 1)?;
                return Ok(slot);
            }
        }
        Err(KernelError::NoSpace)
    }

    /// Frees a slot.
    pub fn free_slot(&self, m: &mut Machine, slot: u32) -> Result<(), KernelError> {
        if slot >= self.nslots {
            return Err(KernelError::Inval("swap slot out of range"));
        }
        m.phys.write_u8(self.bitmap + slot as u64, 0)?;
        Ok(())
    }

    /// Writes a frame's contents into `slot`.
    pub fn write_slot(&self, m: &mut Machine, slot: u32, pfn: u64) -> Result<(), KernelError> {
        let mut page = vec![0u8; PAGE_SIZE];
        m.phys.read(pfn * PAGE_SIZE as u64, &mut page)?;
        // Page copied out of RAM, device write still pending.
        ow_crashpoint::crash_point!("kernel.swap.slot.write");
        m.dev_write(self.dev, slot as u64 * PAGE_SIZE as u64, &page)?;
        self.trace_io(m, EventKind::SwapOut, slot, pfn);
        Ok(())
    }

    /// Reads `slot` into a frame.
    pub fn read_slot(&self, m: &mut Machine, slot: u32, pfn: u64) -> Result<(), KernelError> {
        let mut page = vec![0u8; PAGE_SIZE];
        m.dev_read(self.dev, slot as u64 * PAGE_SIZE as u64, &mut page)?;
        // Device read done, frame not yet filled.
        ow_crashpoint::crash_point!("kernel.swap.slot.read");
        m.phys.write(pfn * PAGE_SIZE as u64, &page)?;
        self.trace_io(m, EventKind::SwapIn, slot, pfn);
        Ok(())
    }

    /// Records one swap-I/O event in the flight recorder, when armed.
    fn trace_io(&self, m: &mut Machine, kind: EventKind, slot: u32, pfn: u64) {
        if let Some(ring) = self.trace {
            let now = m.clock.now();
            ring.emit(&mut m.phys, now, kind, 0, slot as u64, pfn);
        }
    }

    /// Reads `slot` into a plain buffer (used by the crash kernel when
    /// migrating the dead kernel's swapped pages to its own partition).
    pub fn read_slot_buf(&self, m: &mut Machine, slot: u32) -> Result<Vec<u8>, KernelError> {
        if slot >= self.nslots {
            return Err(KernelError::Inval("swap slot out of range"));
        }
        let mut page = vec![0u8; PAGE_SIZE];
        m.dev_read(self.dev, slot as u64 * PAGE_SIZE as u64, &mut page)?;
        Ok(page)
    }

    /// Writes a buffer into `slot` (the migration counterpart of
    /// [`SwapArea::read_slot_buf`]).
    pub fn write_slot_buf(
        &self,
        m: &mut Machine,
        slot: u32,
        buf: &[u8],
    ) -> Result<(), KernelError> {
        if slot >= self.nslots || buf.len() != PAGE_SIZE {
            return Err(KernelError::Inval("swap slot write"));
        }
        m.dev_write(self.dev, slot as u64 * PAGE_SIZE as u64, buf)?;
        Ok(())
    }

    /// Adopts a dead kernel's CRC-validated slot bitmap wholesale: copies
    /// the dead live-slot map over this area's bitmap so every slot the
    /// dead kernel had in use stays reserved and readable in place — no
    /// per-page migration I/O. Both areas must name the same device, so the
    /// geometry must match exactly.
    pub fn adopt_bitmap(
        &self,
        m: &mut Machine,
        dead_bitmap: PhysAddr,
        dead_nslots: u32,
    ) -> Result<(), KernelError> {
        if dead_nslots != self.nslots {
            return Err(KernelError::Inval("swap geometry mismatch"));
        }
        let mut bits = vec![0u8; self.nslots as usize];
        m.phys.read(dead_bitmap, &mut bits)?;
        m.phys.write(self.bitmap, &bits)?;
        Ok(())
    }

    /// Rebuilds a handle from a descriptor read out of (dead) kernel memory,
    /// reopening the device by its symbolic name.
    pub fn from_desc(
        m: &mut Machine,
        desc: &SwapDesc,
        desc_addr: PhysAddr,
    ) -> Result<SwapArea, KernelError> {
        let dev = m
            .device_by_name(&desc.dev_name)
            .map(|d| d.id)
            .ok_or_else(|| KernelError::NoEnt(desc.dev_name.clone()))?;
        Ok(SwapArea {
            dev,
            name: desc.dev_name.clone(),
            nslots: desc.nslots,
            bitmap: desc.bitmap,
            desc_addr,
            trace: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ow_simhw::machine::MachineConfig;

    fn setup() -> (Machine, SwapArea) {
        let mut m = Machine::new(MachineConfig {
            ram_frames: 64,
            cpus: 1,
            tlb_entries: 16,
            tlb_tagged: true,
            cost: ow_simhw::CostModel::zero_io(),
        });
        let dev = m.add_device("swap-main", 64 * PAGE_SIZE);
        let area = SwapArea::init(&mut m, dev, "swap-main", 0x100, 0x200).unwrap();
        (m, area)
    }

    #[test]
    fn slots_allocate_and_free() {
        let (mut m, area) = setup();
        let a = area.alloc_slot(&mut m).unwrap();
        let b = area.alloc_slot(&mut m).unwrap();
        assert_ne!(a, b);
        area.free_slot(&mut m, a).unwrap();
        let c = area.alloc_slot(&mut m).unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn page_round_trips_through_swap() {
        let (mut m, area) = setup();
        let pfn = 10u64;
        m.phys.write_u64(pfn * PAGE_SIZE as u64, 0xfeed).unwrap();
        let slot = area.alloc_slot(&mut m).unwrap();
        area.write_slot(&mut m, slot, pfn).unwrap();
        m.phys.zero_frame(pfn).unwrap();
        area.read_slot(&mut m, slot, pfn).unwrap();
        assert_eq!(m.phys.read_u64(pfn * PAGE_SIZE as u64).unwrap(), 0xfeed);
    }

    #[test]
    fn descriptor_reopen_by_name() {
        let (mut m, area) = setup();
        let (desc, _) = SwapDesc::read(&m.phys, area.desc_addr).unwrap();
        let re = SwapArea::from_desc(&mut m, &desc, area.desc_addr).unwrap();
        assert_eq!(re.dev, area.dev);
        assert_eq!(re.nslots, area.nslots);
    }

    #[test]
    fn exhaustion_reports_no_space() {
        let (mut m, area) = setup();
        for _ in 0..area.nslots {
            area.alloc_slot(&mut m).unwrap();
        }
        assert!(matches!(area.alloc_slot(&mut m), Err(KernelError::NoSpace)));
    }
}
