//! Virtual-memory management: VMAs, demand paging, swapping, user access.
//!
//! Every user page is reached through the process page tables and the MMU
//! (with its TLB cost model). Pages materialize on first touch from their
//! VMA (zero-filled anonymous memory or file contents), can be swapped out
//! to the active swap partition, and fault back in on demand — all state
//! that the crash kernel must reconstruct during resurrection.

use crate::{
    error::{Errno, KernelError},
    kernel::Kernel,
    layout::{self, FileRecord, ProcDesc, VmaDesc},
    KernelResult,
};
use ow_layout::Record;
use ow_simhw::{
    machine::FrameOwner, mmu::AccessKind, paging::PageFault, Pfn, PhysAddr, Pte, PteFlags,
    VirtAddr, PAGE_SIZE,
};
use ow_trace::{Counter, EventKind};

/// Flags preserved across a swap-out (so swap-in restores permissions).
fn preserved(flags: PteFlags) -> PteFlags {
    PteFlags::from_bits(
        flags.bits() & (PteFlags::WRITABLE.bits() | PteFlags::USER.bits() | PteFlags::FILE.bits()),
    )
}

impl Kernel {
    /// Reads a process descriptor from memory.
    pub fn read_desc(&self, pid: u64) -> KernelResult<ProcDesc> {
        let addr = self.proc(pid)?.desc_addr;
        Ok(ProcDesc::read(&self.machine.phys, addr)?.0)
    }

    /// Finds the VMA containing `vaddr` by walking the in-memory chain.
    pub fn vma_lookup(&self, pid: u64, vaddr: VirtAddr) -> KernelResult<Option<VmaDesc>> {
        let desc = self.read_desc(pid)?;
        let mut addr = desc.mm_head;
        while addr != 0 {
            let (vma, _) = VmaDesc::read(&self.machine.phys, addr)?;
            if vaddr >= vma.start && vaddr < vma.end {
                return Ok(Some(vma));
            }
            addr = vma.next;
        }
        Ok(None)
    }

    /// Prepends a VMA to the process's chain.
    pub fn vma_add(
        &mut self,
        pid: u64,
        start: VirtAddr,
        end: VirtAddr,
        flags: u64,
        file: PhysAddr,
        file_off: u64,
    ) -> KernelResult<()> {
        if !start.is_multiple_of(PAGE_SIZE as u64)
            || !end.is_multiple_of(PAGE_SIZE as u64)
            || start >= end
        {
            return Err(KernelError::Inval("vma bounds"));
        }
        let desc_addr = self.proc(pid)?.desc_addr;
        let desc = self.read_desc(pid)?;
        let vma_addr = self
            .kheap
            .alloc(VmaDesc::SIZE)
            .ok_or(KernelError::NoMemory)?;
        VmaDesc {
            start,
            end,
            flags,
            file,
            file_off,
            next: desc.mm_head,
        }
        .write(&mut self.machine.phys, vma_addr)?;
        self.machine
            .phys
            .write_u64(desc_addr + layout::proc_off::MM_HEAD, vma_addr)?;
        self.reseal_desc(pid)?;
        Ok(())
    }

    /// Maps a user page, tagging the L2 table frame it may have created.
    pub fn map_user_page(
        &mut self,
        pid: u64,
        vaddr: VirtAddr,
        pfn: Pfn,
        flags: PteFlags,
    ) -> KernelResult<()> {
        let asp = self.proc(pid)?.asp;
        let Kernel {
            machine, falloc, ..
        } = self;
        asp.map(
            &mut machine.phys,
            falloc,
            vaddr,
            pfn,
            flags | PteFlags::USER,
        )
        .map_err(|_| KernelError::NoMemory)?;
        let l1 = asp.l1_entry(&machine.phys, vaddr)?;
        machine.set_owner(l1.pfn(), FrameOwner::PageTable { pid });
        Ok(())
    }

    /// Writes an arbitrary PTE for `pid` (used by resurrection to install
    /// swapped entries), tagging any newly created L2 table frame.
    pub fn set_user_pte(&mut self, pid: u64, vaddr: VirtAddr, pte: Pte) -> KernelResult<()> {
        let asp = self.proc(pid)?.asp;
        let Kernel {
            machine, falloc, ..
        } = self;
        asp.set_pte(&mut machine.phys, falloc, vaddr, pte)
            .map_err(|_| KernelError::NoMemory)?;
        let l1 = asp.l1_entry(&machine.phys, vaddr)?;
        machine.set_owner(l1.pfn(), FrameOwner::PageTable { pid });
        Ok(())
    }

    /// Materializes the page for `vaddr` from its VMA (demand paging).
    fn demand_map(&mut self, pid: u64, vaddr: VirtAddr) -> Result<(), Errno> {
        let page_va = vaddr & !(PAGE_SIZE as u64 - 1);
        let vma = self
            .vma_lookup(pid, vaddr)
            .map_err(|_| Errno::Io)?
            .ok_or(Errno::Io)?; // segfault analog
        let pfn = self
            .alloc_frame(FrameOwner::User { pid })
            .map_err(|_| Errno::NoMem)?;
        // Frame allocated but not yet mapped: a crash here strands it for
        // the crash kernel's reclaim pass.
        ow_crashpoint::crash_point!("kernel.pagefault.demand.map");
        if vma.flags & layout::vmaflags::FILE != 0 && vma.file != 0 {
            // File-backed: fill from the file.
            let (frec, _) =
                FileRecord::read(&self.machine.phys, vma.file).map_err(|_| Errno::Io)?;
            let off = vma.file_off + (page_va - vma.start);
            let mut buf = vec![0u8; PAGE_SIZE];
            let fs = self.fs.clone();
            fs.read_at(&mut self.machine, frec.inode as u32, off, &mut buf)
                .map_err(|_| Errno::Io)?;
            self.machine
                .phys
                .write(pfn * PAGE_SIZE as u64, &buf)
                .map_err(|_| Errno::Io)?;
        } else {
            self.machine.phys.zero_frame(pfn).map_err(|_| Errno::Io)?;
        }
        let mut flags = PteFlags::USER;
        if vma.flags & layout::vmaflags::WRITE != 0 {
            flags |= PteFlags::WRITABLE;
        }
        if vma.flags & layout::vmaflags::FILE != 0 {
            flags |= PteFlags::FILE;
        }
        self.map_user_page(pid, page_va, pfn, flags)
            .map_err(|_| Errno::NoMem)?;
        self.trace_event(EventKind::PageFault, pid, page_va, pfn);
        self.trace_counter(Counter::PageFaults, 1);
        Ok(())
    }

    /// Brings a swapped page back in from the active swap partition.
    fn swap_in(&mut self, pid: u64, vaddr: VirtAddr, slot: u64) -> Result<(), Errno> {
        let page_va = vaddr & !(PAGE_SIZE as u64 - 1);
        let asp = self.proc(pid).map_err(|_| Errno::Io)?.asp;
        let old = asp
            .pte(&self.machine.phys, page_va)
            .map_err(|_| Errno::Io)?
            .ok_or(Errno::Io)?;
        let pfn = self
            .alloc_frame(FrameOwner::User { pid })
            .map_err(|_| Errno::NoMem)?;
        let area = self.swaps[self.active_swap].clone();
        // Between slot read and PTE update: the slot still holds the page.
        ow_crashpoint::crash_point!("kernel.pagefault.swap.in");
        area.read_slot(&mut self.machine, slot as u32, pfn)
            .map_err(|_| Errno::Io)?;
        area.free_slot(&mut self.machine, slot as u32)
            .map_err(|_| Errno::Io)?;
        let flags = preserved(old.flags()) | PteFlags::PRESENT | PteFlags::USER;
        self.map_user_page(pid, page_va, pfn, flags)
            .map_err(|_| Errno::NoMem)?;
        self.trace_counter(Counter::SwapIns, 1);
        Ok(())
    }

    /// Copy-on-access for a lazily resurrected page: the PTE still points
    /// read-only at the dead kernel's frame; pull the bytes into a fresh
    /// frame owned by the new process and restore the pre-crash
    /// writability recorded in `LAZY_RW`. A genuine read-only fault (no
    /// `LAZY` flag) stays an error.
    fn lazy_pull(&mut self, pid: u64, vaddr: VirtAddr) -> Result<(), Errno> {
        let page_va = vaddr & !(PAGE_SIZE as u64 - 1);
        let asp = self.proc(pid).map_err(|_| Errno::Io)?.asp;
        let pte = asp
            .pte(&self.machine.phys, page_va)
            .map_err(|_| Errno::Io)?
            .ok_or(Errno::Io)?;
        let flags = pte.flags();
        if !flags.contains(PteFlags::LAZY) {
            return Err(Errno::Io);
        }
        let old_pfn = pte.pfn();
        let new_pfn = self
            .alloc_frame(FrameOwner::User { pid })
            .map_err(|_| Errno::NoMem)?;
        // Fresh frame allocated, old frame still mapped: a crash here loses
        // nothing — the old bytes are intact and re-pullable.
        ow_crashpoint::crash_point!("kernel.pagefault.lazy.pull");
        self.copy_frame_charged(old_pfn, new_pfn)
            .map_err(|_| Errno::Io)?;
        let cost = self.machine.cost.lazy_fault;
        self.machine.clock.charge(cost);
        let mut f =
            PteFlags::from_bits(flags.bits() & !(PteFlags::LAZY.bits() | PteFlags::LAZY_RW.bits()));
        if flags.contains(PteFlags::LAZY_RW) {
            f |= PteFlags::WRITABLE;
        }
        self.set_user_pte(pid, page_va, Pte::new(new_pfn, f))
            .map_err(|_| Errno::NoMem)?;
        let m = &mut self.machine;
        m.mmu.invalidate(&mut m.clock, &m.cost, asp.root(), page_va);
        // The old frame is deliberately not freed: it may back a shared
        // mapping of another resurrected process; the next cold morph's
        // reachability pass collects it.
        self.trace_counter(Counter::PageFaults, 1);
        Ok(())
    }

    /// Translates a user access, performing demand paging and swap-in.
    pub fn user_access(
        &mut self,
        pid: u64,
        vaddr: VirtAddr,
        kind: AccessKind,
    ) -> Result<PhysAddr, Errno> {
        let asp = self.proc(pid).map_err(|_| Errno::Io)?.asp;
        for _attempt in 0..4 {
            let Kernel { machine, .. } = self;
            match machine.mmu.access(
                &mut machine.phys,
                &mut machine.clock,
                &machine.cost,
                asp,
                vaddr,
                kind,
            ) {
                Ok(pa) => return Ok(pa),
                Err(PageFault::Swapped(va, slot)) => self.swap_in(pid, va, slot)?,
                Err(PageFault::NotMapped(va)) => self.demand_map(pid, va)?,
                Err(PageFault::ReadOnly(va)) => self.lazy_pull(pid, va)?,
                Err(PageFault::Protection(_)) | Err(PageFault::OutOfSpace(_)) => {
                    return Err(Errno::Io)
                }
            }
        }
        Err(Errno::Io)
    }

    /// Writes bytes into user memory at `vaddr` (page by page through the
    /// MMU).
    pub fn user_write(&mut self, pid: u64, vaddr: VirtAddr, data: &[u8]) -> Result<(), Errno> {
        let mut done = 0usize;
        while done < data.len() {
            let va = vaddr + done as u64;
            let pa = self.user_access(pid, va, AccessKind::Write)?;
            let in_page = PAGE_SIZE - (va as usize & (PAGE_SIZE - 1));
            let chunk = in_page.min(data.len() - done);
            self.machine
                .phys
                .write(pa, &data[done..done + chunk])
                .map_err(|_| Errno::Io)?;
            let bw = self.machine.cost.mem_bytes_per_cycle.max(1);
            self.machine.clock.charge(chunk as u64 / bw);
            done += chunk;
        }
        // Ranged-invalidation rule: when the kernel-only page-table set is
        // live (protected mode, mid-syscall), these bytes landed through
        // the kernel's transient window while user space was unmapped, so
        // any translation of the written range — under the process's tag
        // *or* the kernel's — is stale and must be shot down before user
        // code can run against it. Without this, tagged switches would
        // silently leak pre-write translations across the syscall boundary.
        // Untagged hardware needs no shootdown here: the switch back to the
        // user set flushes everything before user code can run.
        if self.machine.user_protection
            && self.machine.tlb_tagged
            && self.machine.mmu.current_asid() == ow_simhw::KERNEL_ASID
            && !data.is_empty()
        {
            let root = self.proc(pid).map_err(|_| Errno::Io)?.asp.root();
            let m = &mut self.machine;
            m.mmu
                .invalidate_range(&mut m.clock, &m.cost, root, vaddr, data.len() as u64);
        }
        Ok(())
    }

    /// Reads bytes from user memory at `vaddr`.
    pub fn user_read(&mut self, pid: u64, vaddr: VirtAddr, buf: &mut [u8]) -> Result<(), Errno> {
        let mut done = 0usize;
        while done < buf.len() {
            let va = vaddr + done as u64;
            let pa = self.user_access(pid, va, AccessKind::Read)?;
            let in_page = PAGE_SIZE - (va as usize & (PAGE_SIZE - 1));
            let chunk = in_page.min(buf.len() - done);
            self.machine
                .phys
                .read(pa, &mut buf[done..done + chunk])
                .map_err(|_| Errno::Io)?;
            let bw = self.machine.cost.mem_bytes_per_cycle.max(1);
            self.machine.clock.charge(chunk as u64 / bw);
            done += chunk;
        }
        Ok(())
    }

    /// Swaps one present page of `pid` out to the active swap partition.
    pub fn swap_out_page(&mut self, pid: u64, vaddr: VirtAddr) -> KernelResult<()> {
        let page_va = vaddr & !(PAGE_SIZE as u64 - 1);
        let asp = self.proc(pid)?.asp;
        let pte = self
            .asp_walk(asp, page_va)?
            .ok_or(KernelError::Inval("page not present"))?;
        if !pte.flags().contains(PteFlags::PRESENT) {
            return Err(KernelError::Inval("page not present"));
        }
        if pte.flags().contains(PteFlags::LAZY) {
            // A lazy page still points at a dead-generation frame that this
            // kernel must not free; it becomes evictable after its first
            // copy-on-access pull.
            return Err(KernelError::Inval("lazy page not evictable"));
        }
        let area = self.swaps[self.active_swap].clone();
        let slot = area.alloc_slot(&mut self.machine)?;
        // Slot allocated, page still present: eviction not yet visible.
        ow_crashpoint::crash_point!("kernel.vm.swap.out");
        area.write_slot(&mut self.machine, slot, pte.pfn())?;
        let swapped = Pte::new(slot as u64, preserved(pte.flags()) | PteFlags::SWAPPED);
        {
            let Kernel {
                machine, falloc, ..
            } = self;
            asp.set_pte(&mut machine.phys, falloc, page_va, swapped)
                .map_err(|_| KernelError::NoMemory)?;
        }
        let m = &mut self.machine;
        m.mmu.invalidate(&mut m.clock, &m.cost, asp.root(), page_va);
        self.free_frame(pte.pfn());
        self.trace_counter(Counter::SwapOuts, 1);
        Ok(())
    }

    fn asp_walk(&self, asp: ow_simhw::AddressSpace, va: VirtAddr) -> KernelResult<Option<Pte>> {
        Ok(asp.pte(&self.machine.phys, va)?)
    }

    /// Swaps out up to `n` present pages of `pid` (memory-pressure model),
    /// returning how many were evicted.
    pub fn swap_out_pages(&mut self, pid: u64, n: usize) -> KernelResult<usize> {
        let asp = self.proc(pid)?.asp;
        let mut victims = Vec::new();
        asp.for_each_mapped(&self.machine.phys, |va, pte| {
            if victims.len() < n
                && pte.flags().contains(PteFlags::PRESENT)
                && !pte.flags().contains(PteFlags::LAZY)
            {
                victims.push(va);
            }
        })?;
        let count = victims.len();
        for va in victims {
            self.swap_out_page(pid, va)?;
        }
        Ok(count)
    }

    /// Counts present and swapped user pages of `pid`.
    pub fn page_census(&self, pid: u64) -> KernelResult<(u64, u64)> {
        let asp = self.proc(pid)?.asp;
        let mut present = 0;
        let mut swapped = 0;
        asp.for_each_mapped(&self.machine.phys, |_va, pte| {
            if pte.flags().contains(PteFlags::PRESENT) {
                present += 1;
            } else if pte.flags().contains(PteFlags::SWAPPED) {
                swapped += 1;
            }
        })?;
        Ok((present, swapped))
    }
}
