//! System-call dispatch: the [`KernelApi`] a program steps against.
//!
//! Every syscall charges a kernel-entry cost; in memory-protected mode (§4)
//! it additionally switches to the kernel-only page-table set on entry and
//! back on exit, flushing the TLB both times — the source of Table 3's
//! overhead. An in-flight syscall aborted by a microreboot is re-delivered
//! as [`Errno::Restart`] so the application can retry it (§3.5).

use crate::{error::Errno, kernel::Kernel, layout, program::UserApi};
use ow_trace::{Counter, EventKind, Histogram};

/// Syscall numbers (stored in the descriptor's `in_syscall` field + 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum SyscallNr {
    /// `open`.
    Open = 0,
    /// `close`.
    Close,
    /// `read`.
    Read,
    /// `write`.
    Write,
    /// `seek`.
    Seek,
    /// `fsync`.
    Fsync,
    /// `unlink`.
    Unlink,
    /// `mmap`.
    Mmap,
    /// terminal write.
    TermWrite,
    /// terminal read.
    TermRead,
    /// terminal settings.
    TermSet,
    /// `socket`.
    Socket,
    /// socket send.
    SockSend,
    /// socket receive.
    SockRecv,
    /// socket close.
    SockClose,
    /// shared-memory attach.
    ShmAttach,
    /// `signal`.
    Signal,
    /// crash-procedure registration.
    RegisterCrashProc,
    /// pipe write.
    PipeWrite,
    /// pipe read.
    PipeRead,
    /// pipe attach.
    PipeAttach,
}

/// The concrete [`UserApi`] implementation backed by a [`Kernel`].
pub struct KernelApi<'k> {
    kernel: &'k mut Kernel,
    pid: u64,
}

impl<'k> KernelApi<'k> {
    /// Binds the api to a process.
    pub fn new(kernel: &'k mut Kernel, pid: u64) -> Self {
        KernelApi { kernel, pid }
    }

    /// Underlying kernel (used by resurrection code reusing the api).
    pub fn kernel_mut(&mut self) -> &mut Kernel {
        self.kernel
    }

    fn in_syscall_off() -> u64 {
        layout::proc_off::IN_SYSCALL
    }

    /// Common syscall entry: restart delivery, entry cost, protected-mode
    /// page-table switch, in-syscall marker, fault manifestation.
    fn sys_enter(&mut self, nr: SyscallNr) -> Result<(), Errno> {
        if self.kernel.panicked.is_some() {
            return Err(Errno::Restart);
        }
        {
            let p = self.kernel.proc_mut(self.pid).map_err(|_| Errno::Io)?;
            if p.deliver_restart {
                p.deliver_restart = false;
                return Err(Errno::Restart);
            }
        }
        let m = &mut self.kernel.machine;
        m.clock.charge(m.cost.syscall_entry);
        // Switch to the kernel-only page-table set (user unmapped) when the
        // protected mode is on.
        self.kernel.protection_enter();

        // Flight record + metrics: the entry event, the syscall counter,
        // and the inter-arrival histogram.
        let now = self.kernel.machine.clock.now();
        self.kernel
            .trace_event(EventKind::SyscallEnter, self.pid, nr as u64, 0);
        self.kernel.trace_counter(Counter::Syscalls, 1);
        let prev = self.kernel.last_syscall_enter;
        if prev != 0 {
            self.kernel
                .trace_hist(Histogram::InterArrivalCycles, now.saturating_sub(prev));
        }
        self.kernel.last_syscall_enter = now;
        // Advance the epoch-checkpoint cadence counter: one more syscall
        // is in flight, so any previously sealed epoch is no longer fresh.
        self.kernel.syscall_seq += 1;
        // Mark the in-flight syscall in the descriptor.
        let desc_addr = self.kernel.proc(self.pid).map_err(|_| Errno::Io)?.desc_addr;
        let _ = self
            .kernel
            .machine
            .phys
            .write_u32(desc_addr + Self::in_syscall_off(), nr as u32 + 1);
        let _ = self.kernel.reseal_desc(self.pid);
        // The in-syscall marker is committed: a crash here leaves the call
        // visibly in flight for the crash kernel to re-deliver.
        ow_crashpoint::crash_point!("kernel.syscall.enter.marked");

        // A queued mid-syscall fault manifests now: the kernel dies with
        // this call in flight.
        if let Some(f) = self.kernel.pending_fault {
            if f.in_syscall {
                self.kernel.pending_fault = None;
                self.kernel.do_panic(f.cause);
                return Err(Errno::Restart);
            }
        }
        Ok(())
    }

    /// Common syscall exit: clear the marker, switch page tables back.
    fn sys_exit(&mut self, nr: SyscallNr) {
        if self.kernel.panicked.is_some() {
            return;
        }
        // The syscall's effects are committed but the in-flight marker is
        // still set: a crash here must re-deliver an already-applied call.
        ow_crashpoint::crash_point!("kernel.syscall.exit.pre_clear");
        if let Ok(p) = self.kernel.proc(self.pid) {
            let desc_addr = p.desc_addr;
            let _ = self
                .kernel
                .machine
                .phys
                .write_u32(desc_addr + Self::in_syscall_off(), 0);
            let _ = self.kernel.reseal_desc(self.pid);
        }
        self.kernel.protection_exit(self.pid);

        let now = self.kernel.machine.clock.now();
        let entered = self.kernel.last_syscall_enter;
        self.kernel
            .trace_event(EventKind::SyscallExit, self.pid, nr as u64, 0);
        if entered != 0 {
            self.kernel
                .trace_hist(Histogram::SyscallCycles, now.saturating_sub(entered));
        }

        // Periodic epoch checkpoint: with the call complete and the
        // in-flight marker cleared, the record set is consistent — seal it
        // every `checkpoint_interval` completed syscalls.
        let interval = self.kernel.config.checkpoint_interval;
        if interval != 0
            && self
                .kernel
                .syscall_seq
                .wrapping_sub(self.kernel.last_ckpt_seq)
                >= interval
        {
            let _ = self.kernel.seal_epoch_checkpoint(false);
        }
    }

    fn syscall<T>(
        &mut self,
        nr: SyscallNr,
        f: impl FnOnce(&mut Kernel, u64) -> Result<T, Errno>,
    ) -> Result<T, Errno> {
        self.sys_enter(nr)?;
        let r = f(self.kernel, self.pid);
        self.sys_exit(nr);
        r
    }

    fn term_of(kernel: &Kernel, pid: u64) -> Result<u32, Errno> {
        let desc = kernel.read_desc(pid).map_err(|_| Errno::Io)?;
        if desc.term_id == u32::MAX {
            return Err(Errno::Inval);
        }
        Ok(desc.term_id)
    }
}

impl UserApi for KernelApi<'_> {
    fn pid(&self) -> u64 {
        self.pid
    }

    fn mem_write(&mut self, vaddr: u64, data: &[u8]) -> Result<(), Errno> {
        if self.kernel.panicked.is_some() {
            return Err(Errno::Restart);
        }
        self.kernel.user_write(self.pid, vaddr, data)
    }

    fn mem_read(&mut self, vaddr: u64, buf: &mut [u8]) -> Result<(), Errno> {
        if self.kernel.panicked.is_some() {
            return Err(Errno::Restart);
        }
        self.kernel.user_read(self.pid, vaddr, buf)
    }

    fn compute(&mut self, units: u64) {
        let per_unit = self.kernel.machine.cost.compute_unit;
        self.kernel.machine.clock.charge(per_unit * units);
    }

    fn open(&mut self, path: &str, flags: u32) -> Result<u32, Errno> {
        self.syscall(SyscallNr::Open, |k, pid| {
            k.file_open(pid, path, flags).map_err(Errno::from)
        })
    }

    fn close(&mut self, fd: u32) -> Result<(), Errno> {
        self.syscall(SyscallNr::Close, |k, pid| {
            k.file_close(pid, fd).map_err(Errno::from)
        })
    }

    fn write(&mut self, fd: u32, data: &[u8]) -> Result<u64, Errno> {
        self.syscall(SyscallNr::Write, |k, pid| {
            k.file_write(pid, fd, data).map_err(Errno::from)
        })
    }

    fn read(&mut self, fd: u32, buf: &mut [u8]) -> Result<u64, Errno> {
        self.syscall(SyscallNr::Read, |k, pid| {
            k.file_read(pid, fd, buf).map_err(Errno::from)
        })
    }

    fn seek(&mut self, fd: u32, pos: u64) -> Result<(), Errno> {
        self.syscall(SyscallNr::Seek, |k, pid| {
            k.file_seek(pid, fd, pos).map_err(Errno::from)
        })
    }

    fn fsync(&mut self, fd: u32) -> Result<(), Errno> {
        self.syscall(SyscallNr::Fsync, |k, pid| {
            k.file_fsync(pid, fd).map(|_| ()).map_err(Errno::from)
        })
    }

    fn unlink(&mut self, path: &str) -> Result<(), Errno> {
        self.syscall(SyscallNr::Unlink, |k, _pid| {
            let fs = k.fs.clone();
            fs.unlink(&mut k.machine, path).map_err(Errno::from)
        })
    }

    fn mmap_anon(&mut self, vaddr: u64, pages: u64) -> Result<(), Errno> {
        self.syscall(SyscallNr::Mmap, |k, pid| {
            k.vma_add(
                pid,
                vaddr,
                vaddr + pages * ow_simhw::PAGE_BYTES,
                layout::vmaflags::READ | layout::vmaflags::WRITE,
                0,
                0,
            )
            .map_err(Errno::from)
        })
    }

    fn term_write(&mut self, data: &[u8]) -> Result<(), Errno> {
        self.syscall(SyscallNr::TermWrite, |k, pid| {
            let term = Self::term_of(k, pid)?;
            k.term_write(term, data).map_err(Errno::from)
        })
    }

    fn term_read(&mut self, buf: &mut [u8]) -> Result<u64, Errno> {
        self.syscall(SyscallNr::TermRead, |k, pid| {
            let term = Self::term_of(k, pid)?;
            let n = k.term_read_input(term, buf).map_err(Errno::from)?;
            if n == 0 {
                return Err(Errno::WouldBlock);
            }
            Ok(n)
        })
    }

    fn term_set(&mut self, settings: u64) -> Result<(), Errno> {
        self.syscall(SyscallNr::TermSet, |k, pid| {
            let term = Self::term_of(k, pid)?;
            k.term_set(term, settings).map_err(Errno::from)
        })
    }

    fn socket(&mut self) -> Result<u32, Errno> {
        self.syscall(SyscallNr::Socket, |k, pid| {
            k.sock_open(pid).map_err(Errno::from)
        })
    }

    fn sock_send(&mut self, sid: u32, data: &[u8]) -> Result<(), Errno> {
        self.syscall(SyscallNr::SockSend, |k, pid| {
            k.sock_send(pid, sid, data).map_err(|_| Errno::ConnReset)
        })
    }

    fn sock_recv(&mut self, sid: u32, buf: &mut [u8]) -> Result<u64, Errno> {
        self.syscall(SyscallNr::SockRecv, |k, pid| {
            match k.sock_recv(pid, sid).map_err(|_| Errno::ConnReset)? {
                Some(msg) => {
                    let n = msg.len().min(buf.len());
                    buf[..n].copy_from_slice(&msg[..n]);
                    Ok(n as u64)
                }
                None => Err(Errno::WouldBlock),
            }
        })
    }

    fn sock_close(&mut self, sid: u32) -> Result<(), Errno> {
        self.syscall(SyscallNr::SockClose, |k, pid| {
            k.sock_close(pid, sid).map_err(|_| Errno::ConnReset)
        })
    }

    fn shm_attach(&mut self, key: u64, pages: u64, vaddr: u64) -> Result<(), Errno> {
        self.syscall(SyscallNr::ShmAttach, |k, pid| {
            k.shm_attach(pid, key, pages, vaddr)
                .map(|_| ())
                .map_err(Errno::from)
        })
    }

    fn signal(&mut self, sig: u32, handler: u64) -> Result<(), Errno> {
        self.syscall(SyscallNr::Signal, |k, pid| {
            k.signal_install(pid, sig, handler).map_err(Errno::from)
        })
    }

    fn register_crash_proc(&mut self) -> Result<(), Errno> {
        self.syscall(SyscallNr::RegisterCrashProc, |k, pid| {
            k.register_crash_proc(pid).map_err(Errno::from)
        })
    }

    fn pipe_write(&mut self, pipe: u32, data: &[u8]) -> Result<u64, Errno> {
        self.syscall(SyscallNr::PipeWrite, |k, _pid| {
            k.pipe_write(pipe, data).map_err(Errno::from)
        })
    }

    fn pipe_read(&mut self, pipe: u32, buf: &mut [u8]) -> Result<u64, Errno> {
        self.syscall(SyscallNr::PipeRead, |k, _pid| {
            let n = k.pipe_read(pipe, buf).map_err(Errno::from)?;
            if n == 0 {
                return Err(Errno::WouldBlock);
            }
            Ok(n)
        })
    }

    fn pipe_attach(&mut self, pipe: u32) -> Result<(), Errno> {
        self.syscall(SyscallNr::PipeAttach, |k, pid| {
            k.pipe_attach(pid, pipe).map_err(Errno::from)
        })
    }
}

/// Re-export: flag constants programs use with [`UserApi::open`].
pub use crate::layout::oflags as open_flags;
