//! Kernel error types and the syscall errno space.

use ow_simhw::MemError;
use std::fmt;

/// Errors internal to kernel operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// Physical memory access failure.
    Mem(MemError),
    /// Block device failure.
    Dev(String),
    /// Out of physical frames or kernel heap.
    NoMemory,
    /// Out of disk blocks or inodes.
    NoSpace,
    /// No such file.
    NoEnt(String),
    /// File already exists.
    Exists(String),
    /// Bad file descriptor.
    BadFd(u32),
    /// Invalid argument or state.
    Inval(&'static str),
    /// A structure failed validation when read back from memory.
    Corrupt(String),
    /// A fixed-size table overflowed.
    TooMany(&'static str),
    /// No such process.
    NoProc(u64),
    /// The handoff block was written by a kernel of a different layout
    /// generation; parsing its structures would be guesswork, so the crash
    /// kernel refuses the handoff instead (classified, clean failure).
    LayoutGeneration {
        /// Generation stamped into the handoff block.
        stored: u32,
        /// Generation this build understands.
        expected: u32,
    },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::Mem(e) => write!(f, "memory: {e}"),
            KernelError::Dev(e) => write!(f, "device: {e}"),
            KernelError::NoMemory => write!(f, "out of memory"),
            KernelError::NoSpace => write!(f, "out of disk space"),
            KernelError::NoEnt(p) => write!(f, "no such file: {p}"),
            KernelError::Exists(p) => write!(f, "file exists: {p}"),
            KernelError::BadFd(fd) => write!(f, "bad fd {fd}"),
            KernelError::Inval(what) => write!(f, "invalid: {what}"),
            KernelError::Corrupt(what) => write!(f, "corrupted structure: {what}"),
            KernelError::TooMany(what) => write!(f, "table full: {what}"),
            KernelError::NoProc(pid) => write!(f, "no such process {pid}"),
            KernelError::LayoutGeneration { stored, expected } => write!(
                f,
                "layout generation mismatch: handoff stamped v{stored}, this kernel speaks v{expected}"
            ),
        }
    }
}

impl std::error::Error for KernelError {}

impl From<MemError> for KernelError {
    fn from(e: MemError) -> Self {
        KernelError::Mem(e)
    }
}

impl From<ow_simhw::blockdev::DevError> for KernelError {
    fn from(e: ow_simhw::blockdev::DevError) -> Self {
        KernelError::Dev(e.to_string())
    }
}

impl From<crate::layout::LayoutError> for KernelError {
    fn from(e: crate::layout::LayoutError) -> Self {
        match e {
            crate::layout::LayoutError::Mem(m) => KernelError::Mem(m),
            other => KernelError::Corrupt(other.to_string()),
        }
    }
}

/// Errno values returned to user programs from system calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Errno {
    /// The system call was aborted by a kernel microreboot; the application
    /// should retry it (paper §3.5). Linux analog: `ERESTARTSYS`.
    Restart,
    /// Bad file descriptor.
    BadFd,
    /// No such file or directory.
    NoEnt,
    /// Out of memory.
    NoMem,
    /// Invalid argument.
    Inval,
    /// Broken pipe / connection reset (sockets are not resurrected, so a
    /// resurrected process sees its connections dead).
    ConnReset,
    /// Operation not supported.
    NotSup,
    /// I/O error.
    Io,
    /// Would block (empty pipe / no input available).
    WouldBlock,
    /// Too many open files.
    MFile,
    /// No space left on device.
    NoSpc,
}

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Errno::Restart => "ERESTART",
            Errno::BadFd => "EBADF",
            Errno::NoEnt => "ENOENT",
            Errno::NoMem => "ENOMEM",
            Errno::Inval => "EINVAL",
            Errno::ConnReset => "ECONNRESET",
            Errno::NotSup => "ENOTSUP",
            Errno::Io => "EIO",
            Errno::WouldBlock => "EWOULDBLOCK",
            Errno::MFile => "EMFILE",
            Errno::NoSpc => "ENOSPC",
        };
        f.write_str(s)
    }
}

/// Result type of a system call: a value or an errno.
pub type SysResult = Result<u64, Errno>;

impl From<KernelError> for Errno {
    fn from(e: KernelError) -> Self {
        match e {
            KernelError::NoEnt(_) => Errno::NoEnt,
            KernelError::Exists(_) => Errno::Inval,
            KernelError::BadFd(_) => Errno::BadFd,
            KernelError::NoMemory => Errno::NoMem,
            KernelError::NoSpace => Errno::NoSpc,
            KernelError::TooMany(_) => Errno::MFile,
            KernelError::Inval(_) => Errno::Inval,
            _ => Errno::Io,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_error_maps_to_errno() {
        assert_eq!(Errno::from(KernelError::NoEnt("x".into())), Errno::NoEnt);
        assert_eq!(Errno::from(KernelError::BadFd(3)), Errno::BadFd);
        assert_eq!(Errno::from(KernelError::NoMemory), Errno::NoMem);
        assert_eq!(Errno::from(KernelError::Corrupt("x".into())), Errno::Io);
    }

    #[test]
    fn errno_displays_unix_names() {
        assert_eq!(Errno::Restart.to_string(), "ERESTART");
        assert_eq!(Errno::NoEnt.to_string(), "ENOENT");
    }
}
