//! Cross-cutting application behaviours: the shell, memio helpers, shadow
//! batch semantics, and per-app edge cases.

use ow_apps::workload::{BatchShadow, WorkRng};
use ow_apps::{make_workload, shell, VerifyResult, Workload};
use ow_kernel::{Kernel, KernelConfig, SpawnSpec};
use ow_simhw::machine::MachineConfig;

fn boot() -> Kernel {
    let machine = ow_kernel::standard_machine(MachineConfig {
        ram_frames: 8192,
        cpus: 2,
        tlb_entries: 64,
        tlb_tagged: true,
        cost: ow_simhw::CostModel::zero_io(),
    });
    Kernel::boot_cold(machine, KernelConfig::default(), ow_apps::full_registry()).unwrap()
}

#[test]
fn shell_echoes_and_records_history() {
    let mut k = boot();
    let term = k.create_terminal().unwrap();
    let image = k.registry.get("shell").unwrap();
    let mut spec = SpawnSpec::new("shell", Box::new(shell::Shell));
    spec.term = Some(term);
    let pid = k.spawn(spec).unwrap();
    let fresh = {
        let mut api = ow_kernel::syscall::KernelApi::new(&mut k, pid);
        (image.fresh)(&mut api, &[])
    };
    k.proc_mut(pid).unwrap().program = Some(fresh);
    k.term_input(term, b"ls -la").unwrap();
    for _ in 0..16 {
        k.run_step();
    }
    assert_eq!(shell::read_history(&mut k, pid).unwrap(), b"ls -la");
    let screen = k.term_screen(term).unwrap();
    assert_eq!(&screen[..6], b"ls -la");
}

#[test]
fn batch_shadow_candidates_cover_prefixes() {
    let mut s: BatchShadow<Vec<u32>> = BatchShadow::new(vec![]);
    s.begin_batch(vec![
        Box::new(|v: &mut Vec<u32>| v.push(1)),
        Box::new(|v: &mut Vec<u32>| v.push(2)),
    ]);
    let candidates = s.candidates();
    assert_eq!(candidates, vec![vec![], vec![1], vec![1, 2]]);
    assert!(s.matches(|v| v.len() == 1));
    assert!(!s.matches(|v| v.len() == 3));
    // A new batch commits the previous one entirely.
    s.begin_batch(vec![Box::new(|v: &mut Vec<u32>| v.push(3))]);
    assert_eq!(s.committed, vec![1, 2]);
}

#[test]
fn work_rng_distributions_are_stable() {
    let mut r = WorkRng::new(1);
    let first: Vec<u64> = (0..5).map(|_| r.below(10)).collect();
    let mut r2 = WorkRng::new(1);
    let second: Vec<u64> = (0..5).map(|_| r2.below(10)).collect();
    assert_eq!(first, second);
}

#[test]
fn every_workload_verifies_clean_after_driving() {
    for app in ["vi", "joe", "mysqld", "httpd", "blcr", "volano"] {
        let mut k = boot();
        let mut w = make_workload(app, 500 + app.len() as u64);
        let pid = w.setup(&mut k);
        let batches = if app == "blcr" { 80 } else { 20 };
        for _ in 0..batches {
            w.drive(&mut k, pid);
        }
        assert_eq!(w.verify(&mut k, pid), VerifyResult::Intact, "{app}");
        assert!(k.panicked.is_none(), "{app}");
    }
}

#[test]
fn verify_detects_planted_corruption_in_every_app() {
    use ow_simhw::mmu::AccessKind;
    // For each app, corrupt a byte of its primary data region and check the
    // verifier notices — Table 5's corruption column depends on this.
    let targets: [(&str, u64); 5] = [
        ("vi", 0x10000),                              // text buffer
        ("joe", 0x10000),                             // window 0
        ("mysqld", ow_apps::mempse::ARENA_BASE + 48), // first table rows
        ("httpd", u64::MAX),                          // resolved below: a live session slot
        ("volano", 0x40_0000 + 8),                    // room 0 history
    ];
    for (app, vaddr) in targets {
        let mut k = boot();
        let mut w = make_workload(app, 9);
        let pid = w.setup(&mut k);
        for _ in 0..25 {
            w.drive(&mut k, pid);
        }
        let vaddr = if vaddr != u64::MAX {
            vaddr
        } else {
            // httpd: find a live session slot and corrupt its data bytes.
            let sessions = ow_apps::webserv::read_sessions(&mut k, pid).expect("sessions");
            let sid = *sessions.keys().next().expect("at least one session");
            // Direct-placement slot (collisions are unlikely at this load).
            0x40_0000 + (sid % 1024) * 128 + 16
        };
        // Plant corruption through the physical address.
        let pa = k.user_access(pid, vaddr, AccessKind::Read).unwrap();
        let out = k.machine.wild_write(pa, 0xffff_ffff_ffff_ffff, false);
        assert!(matches!(
            out,
            ow_simhw::machine::WildWriteOutcome::Landed(_)
        ));
        match w.verify(&mut k, pid) {
            VerifyResult::Corrupted(_) => {}
            other => panic!("{app}: corruption not detected: {other:?}"),
        }
    }
}
