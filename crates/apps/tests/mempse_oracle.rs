//! Property test: the MEMORY storage engine agrees with a host-side oracle
//! under random insert/update/delete sequences — the invariant MySQL's
//! crash procedure and data verification both rely on. Driven by the
//! vendored [`SimRng`] instead of proptest so it runs fully offline.
//!
//! Gated behind the off-by-default `heavy-tests` feature: these are the
//! slow, many-cases sweeps. The tier-1 offline gate (`ci.sh`) builds them
//! with `--all-features` clippy so they stay warning-clean, but only runs
//! them when asked (`cargo test --features heavy-tests`).
#![cfg(feature = "heavy-tests")]

use ow_apps::mempse;
use ow_kernel::program::{Program, ProgramRegistry, StepResult, UserApi};
use ow_kernel::syscall::KernelApi;
use ow_kernel::{Kernel, KernelConfig, SpawnSpec};
use ow_simhw::machine::MachineConfig;
use ow_simhw::SimRng;

struct Nop;
impl Program for Nop {
    fn step(&mut self, _api: &mut dyn UserApi) -> StepResult {
        StepResult::Running
    }
    fn save_state(&mut self, _api: &mut dyn UserApi) {}
}

fn boot() -> (Kernel, u64) {
    let machine = ow_kernel::standard_machine(MachineConfig {
        ram_frames: 4096,
        cpus: 1,
        tlb_entries: 16,
        tlb_tagged: true,
        cost: ow_simhw::CostModel::zero_io(),
    });
    let mut k =
        Kernel::boot_cold(machine, KernelConfig::default(), ProgramRegistry::new()).unwrap();
    let mut spec = SpawnSpec::new("db", Box::new(Nop));
    spec.heap_pages = 16;
    let pid = k.spawn(spec).unwrap();
    {
        let mut api = KernelApi::new(&mut k, pid);
        api.mmap_anon(
            mempse::ARENA_BASE,
            (mempse::ARENA_END - mempse::ARENA_BASE) / 4096,
        )
        .unwrap();
        mempse::init(&mut api).unwrap();
    }
    (k, pid)
}

#[derive(Debug, Clone)]
enum Op {
    Insert(u8),
    Update(u64, u8),
    Delete(u64),
}

fn draw_op(rng: &mut SimRng) -> Op {
    match rng.gen_range(0u32..3) {
        0 => Op::Insert(rng.next_u64() as u8),
        1 => Op::Update(rng.next_u64(), rng.next_u64() as u8),
        _ => Op::Delete(rng.next_u64()),
    }
}

#[test]
fn engine_matches_oracle() {
    let mut rng = SimRng::seed_from_u64(0x3e3_95e0);
    for _ in 0..32 {
        let (mut k, pid) = boot();
        let mut api = KernelApi::new(&mut k, pid);
        let tbl = mempse::create_table(&mut api, "t", 64).unwrap();
        let mut oracle: Vec<[u8; 64]> = Vec::new();
        let nops = rng.gen_range(1usize..80);
        for _ in 0..nops {
            match draw_op(&mut rng) {
                Op::Insert(v) => {
                    let row = [v; 64];
                    let ok = mempse::insert_row(&mut api, tbl, &row).is_ok();
                    if oracle.len() < 64 {
                        assert!(ok);
                        oracle.push(row);
                    } else {
                        assert!(!ok, "insert past capacity must fail");
                    }
                }
                Op::Update(i, v) => {
                    if oracle.is_empty() {
                        assert!(mempse::update_row(&mut api, tbl, i, &[v; 64]).is_err());
                    } else {
                        let idx = i % oracle.len() as u64;
                        mempse::update_row(&mut api, tbl, idx, &[v; 64]).unwrap();
                        oracle[idx as usize] = [v; 64];
                    }
                }
                Op::Delete(i) => {
                    if oracle.is_empty() {
                        assert!(mempse::delete_row(&mut api, tbl, i).is_err());
                    } else {
                        let idx = (i % oracle.len() as u64) as usize;
                        mempse::delete_row(&mut api, tbl, idx as u64).unwrap();
                        let last = oracle.len() - 1;
                        oracle.swap(idx, last);
                        oracle.pop();
                    }
                }
            }
        }
        let got = mempse::scan(&mut api, tbl).unwrap();
        assert_eq!(got.len(), oracle.len());
        for (g, o) in got.iter().zip(oracle.iter()) {
            assert_eq!(g.as_slice(), o.as_slice());
        }
    }
}
