//! The workload-driver abstraction used by the fault-injection campaign.
//!
//! Each experiment in §6 runs an application under a driven workload whose
//! progress is logged on a *remote* computer, so the correct state of the
//! application is known at every point in time; after resurrection the
//! application's data is checked against that log. A [`Workload`] bundles
//! the driver, the shadow model (the "remote log"), and the verifier.

use ow_kernel::Kernel;

/// Table 2 metadata for one application.
#[derive(Debug, Clone)]
pub struct AppMeta {
    /// Application name.
    pub name: &'static str,
    /// Whether a crash procedure is required for resurrection.
    pub crash_procedure: &'static str,
    /// Lines of application code modified to support Otherworld.
    pub modified_lines: u32,
}

/// Result of post-resurrection data verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyResult {
    /// Application data matches the remote log exactly.
    Intact,
    /// Application survived but its data diverges from the log (Table 5's
    /// "data corruption" column).
    Corrupted(String),
    /// The application process is gone.
    Missing,
}

/// A driveable, verifiable application workload.
pub trait Workload {
    /// Process name (must match the registry entry).
    fn name(&self) -> &'static str;

    /// Spawns the application and performs initial setup; returns its pid.
    fn setup(&mut self, k: &mut Kernel) -> u64;

    /// Drives the workload forward: inject input (keystrokes, queries,
    /// messages), advance the scheduler, and extend the shadow model.
    /// Called repeatedly; each call should make a small amount of progress.
    fn drive(&mut self, k: &mut Kernel, pid: u64);

    /// After a microreboot: lets the driver re-establish its side of any
    /// non-resurrectable channels (reconnecting clients to new sockets),
    /// mirroring how the paper's remote clients reconnect.
    fn reconnect(&mut self, k: &mut Kernel, pid: u64) {
        let _ = (k, pid);
    }

    /// Verifies the application's data against the shadow model.
    fn verify(&mut self, k: &mut Kernel, pid: u64) -> VerifyResult;
}

impl<W: Workload + ?Sized> Workload for Box<W> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn setup(&mut self, k: &mut Kernel) -> u64 {
        (**self).setup(k)
    }
    fn drive(&mut self, k: &mut Kernel, pid: u64) {
        (**self).drive(k, pid)
    }
    fn reconnect(&mut self, k: &mut Kernel, pid: u64) {
        (**self).reconnect(k, pid)
    }
    fn verify(&mut self, k: &mut Kernel, pid: u64) -> VerifyResult {
        (**self).verify(k, pid)
    }
}

/// Builds a workload by application name (used by the bench binaries).
///
/// # Panics
///
/// Panics on an unknown name.
pub fn make_workload(name: &str, seed: u64) -> Box<dyn Workload> {
    match name {
        "vi" => Box::new(crate::vi::ViWorkload::new(seed)),
        "joe" => Box::new(crate::joe::JoeWorkload::new(seed)),
        "mysqld" => Box::new(crate::minidb::MiniDbWorkload::new(seed)),
        "httpd" => Box::new(crate::webserv::WebServWorkload::new(seed)),
        "blcr" => Box::new(crate::blcr::BlcrWorkload::new(
            crate::blcr::DEFAULT_PAGES,
            crate::blcr::CkptMode::Memory,
        )),
        "volano" => Box::new(crate::volano::VolanoWorkload::new(seed)),
        other => panic!("unknown workload {other}"),
    }
}

/// The five applications of the resurrection evaluation (Table 5 rows).
pub const TABLE5_APPS: [&str; 5] = ["vi", "joe", "mysqld", "httpd", "blcr"];

/// Convenience: finds the (new) pid of a process by name.
pub fn pid_of(k: &Kernel, name: &str) -> Option<u64> {
    k.procs.iter().find(|p| p.name == name).map(|p| p.pid)
}

/// A shadow model with batch semantics.
///
/// When a fault strikes mid-batch, the application has consumed only a
/// prefix of the operations the driver sent (the rest sat in a terminal
/// FIFO or socket and died with the hardware). Verification therefore
/// accepts the application state matching the committed state *or* any
/// prefix of the in-flight batch — exactly the set of states the remote
/// log deems correct.
/// One shadow operation applied to the model state.
pub type ShadowOp<S> = Box<dyn Fn(&mut S)>;

pub struct BatchShadow<S: Clone> {
    /// State with every previous batch fully applied.
    pub committed: S,
    batch: Vec<ShadowOp<S>>,
}

impl<S: Clone> BatchShadow<S> {
    /// Starts from an initial state.
    pub fn new(initial: S) -> Self {
        BatchShadow {
            committed: initial,
            batch: Vec::new(),
        }
    }

    /// Commits the in-flight batch (the application consumed all of it).
    pub fn commit(&mut self) {
        let mut s = self.committed.clone();
        for op in &self.batch {
            op(&mut s);
        }
        self.committed = s;
        self.batch.clear();
    }

    /// Begins a new batch of operations (commits the previous one).
    pub fn begin_batch(&mut self, ops: Vec<ShadowOp<S>>) {
        self.commit();
        self.batch = ops;
    }

    /// All states the application could legitimately be in: the committed
    /// state plus every prefix of the in-flight batch.
    pub fn candidates(&self) -> Vec<S> {
        let mut out = Vec::with_capacity(self.batch.len() + 1);
        let mut s = self.committed.clone();
        out.push(s.clone());
        for op in &self.batch {
            op(&mut s);
            out.push(s.clone());
        }
        out
    }

    /// Whether `pred` holds for any legitimate state.
    pub fn matches(&self, pred: impl Fn(&S) -> bool) -> bool {
        self.candidates().iter().any(pred)
    }
}

/// Deterministic pseudo-random byte stream for workload generation (all
/// workloads must be reproducible under a campaign seed).
#[derive(Debug, Clone)]
pub struct WorkRng {
    state: u64,
}

impl WorkRng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        WorkRng {
            state: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1,
        }
    }

    /// Next pseudo-random u64 (xorshift*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }

    /// A printable ASCII byte.
    pub fn printable(&mut self) -> u8 {
        b' ' + (self.below(95) as u8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = WorkRng::new(7);
        let mut b = WorkRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn printable_stays_printable() {
        let mut r = WorkRng::new(42);
        for _ in 0..1000 {
            let c = r.printable();
            assert!((b' '..=b'~').contains(&c));
        }
    }
}
