//! The vi text editor analog (§5.1).
//!
//! vi required **zero** modifications to be resurrected: its buffer, cursor
//! and undo state all live in process memory, and it reissues interrupted
//! console reads naturally. After a microreboot the user sees the document,
//! undo history and screen exactly as they were.
//!
//! Key protocol (what the workload's "user" types):
//! * printable bytes — insert at end of buffer
//! * `0x08` (BS) — delete last character
//! * `0x15` (^U) — undo the last insert/delete
//! * `0x17` (^W) — write the buffer to `/vi.txt`

use crate::{
    memio,
    workload::{pid_of, AppMeta, BatchShadow, VerifyResult, WorkRng, Workload},
};
use ow_kernel::{
    layout::oflags,
    program::{Program, ProgramRegistry, StepResult, UserApi, PROG_STATE_VADDR},
    Errno, Kernel, SpawnSpec,
};

/// Header cells.
const MAGIC_CELL: u64 = PROG_STATE_VADDR;
/// Buffer length cell.
const LEN_CELL: u64 = PROG_STATE_VADDR + 8;
/// Undo-record count cell.
const UNDO_CELL: u64 = PROG_STATE_VADDR + 16;
/// Bytes saved at the last `^W` cell.
const SAVED_CELL: u64 = PROG_STATE_VADDR + 24;

/// Text buffer.
const BUF: u64 = 0x10000;
/// Buffer capacity.
const BUF_CAP: u64 = 0x10000;
/// Undo log: 16-byte records `(op, ch)`.
const UNDO: u64 = 0x20000;
/// Maximum undo records.
const UNDO_CAP: u64 = 0x1000;

const MAGIC: u64 = 0x2121_2121_5f49_5600; // "VI_!!!!"

const OP_INSERT: u64 = 1;
const OP_DELETE: u64 = 2;

/// The document file.
pub const FILE: &str = "/vi.txt";

/// The editor program. No host-side state at all: everything is in user
/// memory.
pub struct Vi;

impl Vi {
    fn push_undo(api: &mut dyn UserApi, op: u64, ch: u8) -> Result<(), Errno> {
        let n = memio::get_u64(api, UNDO_CELL)?;
        if n < UNDO_CAP {
            api.mem_write_u64(UNDO + n * 16, op)?;
            api.mem_write_u64(UNDO + n * 16 + 8, ch as u64)?;
            memio::set_u64(api, UNDO_CELL, n + 1)?;
        }
        Ok(())
    }

    fn apply_key(api: &mut dyn UserApi, key: u8) -> Result<(), Errno> {
        match key {
            0x08 => {
                let len = memio::get_u64(api, LEN_CELL)?;
                if len > 0 {
                    let mut ch = [0u8];
                    api.mem_read(BUF + len - 1, &mut ch)?;
                    memio::set_u64(api, LEN_CELL, len - 1)?;
                    Self::push_undo(api, OP_DELETE, ch[0])?;
                }
            }
            0x15 => {
                let n = memio::get_u64(api, UNDO_CELL)?;
                if n > 0 {
                    let op = api.mem_read_u64(UNDO + (n - 1) * 16)?;
                    let ch = api.mem_read_u64(UNDO + (n - 1) * 16 + 8)? as u8;
                    let len = memio::get_u64(api, LEN_CELL)?;
                    match op {
                        OP_INSERT if len > 0 => memio::set_u64(api, LEN_CELL, len - 1)?,
                        OP_DELETE if len < BUF_CAP => {
                            api.mem_write(BUF + len, &[ch])?;
                            memio::set_u64(api, LEN_CELL, len + 1)?;
                        }
                        _ => {}
                    }
                    memio::set_u64(api, UNDO_CELL, n - 1)?;
                }
            }
            0x17 => {
                let len = memio::get_u64(api, LEN_CELL)?;
                let mut text = vec![0u8; len as usize];
                if len > 0 {
                    api.mem_read(BUF, &mut text)?;
                }
                let fd = api.open(FILE, oflags::WRITE | oflags::CREATE | oflags::TRUNC)?;
                api.write(fd, &text)?;
                api.close(fd)?;
                memio::set_u64(api, SAVED_CELL, len)?;
            }
            b if (b' '..=b'~').contains(&b) || b == b'\n' => {
                let len = memio::get_u64(api, LEN_CELL)?;
                if len < BUF_CAP {
                    api.mem_write(BUF + len, &[b])?;
                    memio::set_u64(api, LEN_CELL, len + 1)?;
                    Self::push_undo(api, OP_INSERT, b)?;
                }
            }
            _ => {}
        }
        Ok(())
    }
}

impl Program for Vi {
    fn step(&mut self, api: &mut dyn UserApi) -> StepResult {
        let mut key = [0u8];
        match api.term_read(&mut key) {
            Ok(1) => {
                let _ = api.term_write(&key); // echo
                let _ = Self::apply_key(api, key[0]);
                StepResult::Running
            }
            Ok(_) => StepResult::Running,
            // vi reissues interrupted reads — this is why it needs no
            // modification at all (§5.1, Table 2).
            Err(Errno::Restart) | Err(Errno::WouldBlock) => {
                api.compute(1);
                StepResult::Running
            }
            Err(_) => StepResult::Running,
        }
    }

    fn save_state(&mut self, _api: &mut dyn UserApi) {
        // Buffer, cursor, undo and saved markers are written through on
        // every key.
    }
}

/// Registers vi with the program registry.
pub fn register(r: &mut ProgramRegistry) {
    r.register(
        "vi",
        |api, _args| {
            crate::memio::map_libraries(api, 4);
            let _ = api.mem_write_u64(MAGIC_CELL, MAGIC);
            let _ = memio::set_u64(api, LEN_CELL, 0);
            let _ = memio::set_u64(api, UNDO_CELL, 0);
            let _ = memio::set_u64(api, SAVED_CELL, 0);
            Box::new(Vi)
        },
        |_api| Box::new(Vi),
    );
}

/// Table 2 row.
pub fn meta() -> AppMeta {
    AppMeta {
        name: "vi",
        crash_procedure: "Not required",
        modified_lines: 0,
    }
}

/// Editor state tracked by the remote log.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ViState {
    /// Document text.
    pub text: Vec<u8>,
    /// Undo stack mirror.
    pub undo: Vec<(u64, u8)>,
    /// Text length at the last save.
    pub saved_len: u64,
}

fn shadow_apply(s: &mut ViState, key: u8) {
    match key {
        0x08 => {
            if let Some(ch) = s.text.pop() {
                s.undo.push((OP_DELETE, ch));
            }
        }
        0x15 => {
            if let Some((op, ch)) = s.undo.pop() {
                match op {
                    OP_INSERT => {
                        s.text.pop();
                    }
                    OP_DELETE => s.text.push(ch),
                    _ => {}
                }
            }
        }
        0x17 => s.saved_len = s.text.len() as u64,
        b if ((b' '..=b'~').contains(&b) || b == b'\n') && (s.text.len() as u64) < BUF_CAP => {
            s.text.push(b);
            s.undo.push((OP_INSERT, b));
        }
        _ => {}
    }
}

/// Reads the editor's state back out of (possibly resurrected) user memory.
pub fn read_state(k: &mut Kernel, pid: u64) -> Option<ViState> {
    let mut cell = [0u8; 8];
    k.user_read(pid, LEN_CELL, &mut cell).ok()?;
    let len = u64::from_le_bytes(cell).min(BUF_CAP);
    let mut text = vec![0u8; len as usize];
    if len > 0 {
        k.user_read(pid, BUF, &mut text).ok()?;
    }
    k.user_read(pid, UNDO_CELL, &mut cell).ok()?;
    let nundo = u64::from_le_bytes(cell).min(UNDO_CAP);
    let mut undo = Vec::with_capacity(nundo as usize);
    for i in 0..nundo {
        let mut rec = [0u8; 16];
        k.user_read(pid, UNDO + i * 16, &mut rec).ok()?;
        undo.push((
            u64::from_le_bytes(rec[0..8].try_into().unwrap()),
            u64::from_le_bytes(rec[8..16].try_into().unwrap()) as u8,
        ));
    }
    k.user_read(pid, SAVED_CELL, &mut cell).ok()?;
    Some(ViState {
        text,
        undo,
        saved_len: u64::from_le_bytes(cell),
    })
}

/// The vi workload: a user typing, deleting, undoing and saving.
pub struct ViWorkload {
    rng: WorkRng,
    shadow: BatchShadow<ViState>,
    term: Option<u32>,
}

impl ViWorkload {
    /// Creates the workload with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        ViWorkload {
            rng: WorkRng::new(seed),
            shadow: BatchShadow::new(ViState::default()),
            term: None,
        }
    }

    fn gen_key(&mut self) -> u8 {
        match self.rng.below(100) {
            0..=79 => self.rng.printable(),
            80..=87 => 0x08,
            88..=93 => 0x15,
            94..=96 => 0x17,
            _ => b'\n',
        }
    }
}

impl Workload for ViWorkload {
    fn name(&self) -> &'static str {
        "vi"
    }

    fn setup(&mut self, k: &mut Kernel) -> u64 {
        let term = k.create_terminal().expect("terminal");
        self.term = Some(term);
        let image = k.registry.get("vi").expect("vi registered");
        let mut spec = SpawnSpec::new("vi", Box::new(Vi));
        spec.term = Some(term);
        let pid = k.spawn(spec).expect("spawn vi");
        let fresh = {
            let mut api = ow_kernel::syscall::KernelApi::new(k, pid);
            (image.fresh)(&mut api, &[])
        };
        k.proc_mut(pid).expect("pid").program = Some(fresh);
        pid
    }

    fn drive(&mut self, k: &mut Kernel, pid: u64) {
        let term = self.term.expect("setup ran");
        // One batch of keystrokes.
        let keys: Vec<u8> = (0..8).map(|_| self.gen_key()).collect();
        self.shadow.begin_batch(
            keys.iter()
                .map(|&b| {
                    Box::new(move |s: &mut ViState| shadow_apply(s, b)) as Box<dyn Fn(&mut ViState)>
                })
                .collect(),
        );
        let _ = k.term_input(term, &keys);
        // Run until the editor consumed the batch (or the kernel died).
        for _ in 0..64 {
            if k.panicked.is_some() {
                return;
            }
            k.run_step();
            let drained = k
                .terms
                .iter()
                .find(|t| t.id == term)
                .map(|t| t.input.is_empty())
                .unwrap_or(true);
            if drained {
                break;
            }
        }
        if k.panicked.is_none() {
            // A couple of extra steps so the last key is fully applied.
            for _ in 0..2 {
                k.run_step();
            }
            self.shadow.commit();
        }
        let _ = pid;
    }

    fn reconnect(&mut self, k: &mut Kernel, pid: u64) {
        // The resurrected process has a restored terminal; track its id.
        if let Ok(desc) = k.read_desc(pid) {
            if desc.term_id != u32::MAX {
                self.term = Some(desc.term_id);
            }
        }
    }

    fn verify(&mut self, k: &mut Kernel, _pid: u64) -> VerifyResult {
        let Some(pid) = pid_of(k, "vi") else {
            return VerifyResult::Missing;
        };
        let Some(state) = read_state(k, pid) else {
            return VerifyResult::Missing;
        };
        if self.shadow.matches(|s| *s == state) {
            VerifyResult::Intact
        } else {
            VerifyResult::Corrupted(format!(
                "text len {} vs shadow {}",
                state.text.len(),
                self.shadow.committed.text.len()
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ow_simhw::machine::MachineConfig;

    fn boot() -> Kernel {
        let machine = ow_kernel::standard_machine(MachineConfig {
            ram_frames: 4096,
            cpus: 2,
            tlb_entries: 64,
            tlb_tagged: true,
            cost: ow_simhw::CostModel::zero_io(),
        });
        let mut reg = ProgramRegistry::new();
        register(&mut reg);
        Kernel::boot_cold(machine, ow_kernel::KernelConfig::default(), reg).unwrap()
    }

    #[test]
    fn typing_builds_the_buffer() {
        let mut k = boot();
        let mut w = ViWorkload::new(1);
        let pid = w.setup(&mut k);
        for _ in 0..10 {
            w.drive(&mut k, pid);
        }
        assert_eq!(w.verify(&mut k, pid), VerifyResult::Intact);
        let st = read_state(&mut k, pid).unwrap();
        assert!(!st.text.is_empty());
    }

    #[test]
    fn save_key_persists_to_file() {
        let mut k = boot();
        let mut w = ViWorkload::new(2);
        let pid = w.setup(&mut k);
        let term = w.term.unwrap();
        k.term_input(term, b"hi").unwrap();
        k.term_input(term, &[0x17]).unwrap();
        for _ in 0..16 {
            k.run_step();
        }
        let fs = k.fs.clone();
        let ino = fs.lookup(&mut k.machine, FILE).unwrap().expect("saved");
        // Data may still be in the page cache; read through an open file.
        let fd = k.file_open(pid, FILE, oflags::READ).unwrap();
        let mut buf = [0u8; 2];
        k.file_read(pid, fd, &mut buf).unwrap();
        assert_eq!(&buf, b"hi");
        let _ = ino;
    }

    #[test]
    fn undo_reverts_inserts() {
        let mut k = boot();
        let mut w = ViWorkload::new(3);
        let pid = w.setup(&mut k);
        let term = w.term.unwrap();
        k.term_input(term, b"abc").unwrap();
        k.term_input(term, &[0x15, 0x15]).unwrap();
        for _ in 0..16 {
            k.run_step();
        }
        let st = read_state(&mut k, pid).unwrap();
        assert_eq!(st.text, b"a");
        assert_eq!(st.undo.len(), 1);
    }
}
