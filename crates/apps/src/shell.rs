//! An interactive text-mode shell.
//!
//! Table 6's first row measures the time until "the interactive user is
//! presented with the text mode shell". The shell itself is tiny: it echoes
//! input, keeps a command history in user memory, and survives microreboots
//! without a crash procedure.

use crate::memio;
use ow_kernel::{
    program::{Program, ProgramRegistry, StepResult, UserApi, PROG_STATE_VADDR},
    Errno,
};

/// Header layout: `+0` magic, `+8` history length in bytes.
const MAGIC: u64 = 0x4c4c_4548_5357_4f00; // "OWSHELL"-ish
const HIST_LEN: u64 = PROG_STATE_VADDR + 8;
/// Command history ring (length-prefixed byte block).
const HIST_BUF: u64 = 0x8000;
/// History capacity in bytes.
const HIST_CAP: u64 = 0x4000;

/// The shell program.
pub struct Shell;

impl Shell {
    fn append_history(api: &mut dyn UserApi, b: u8) -> Result<(), Errno> {
        let len = memio::get_u64(api, HIST_LEN)?;
        if len < HIST_CAP {
            api.mem_write(HIST_BUF + len, &[b])?;
            memio::set_u64(api, HIST_LEN, len + 1)?;
        }
        Ok(())
    }
}

impl Program for Shell {
    fn step(&mut self, api: &mut dyn UserApi) -> StepResult {
        let mut buf = [0u8; 8];
        match api.term_read(&mut buf) {
            Ok(n) => {
                for &b in &buf[..n as usize] {
                    let _ = api.term_write(&[b]); // echo
                    let _ = Self::append_history(api, b);
                }
                StepResult::Running
            }
            // ERESTART after a microreboot: reissue the read (§3.5) — a
            // shell naturally retries.
            Err(Errno::Restart) | Err(Errno::WouldBlock) => {
                api.compute(1);
                StepResult::Running
            }
            Err(_) => StepResult::Running,
        }
    }

    fn save_state(&mut self, _api: &mut dyn UserApi) {
        // History length and bytes are written through on every key.
    }
}

/// Registers the shell with the program registry.
pub fn register(r: &mut ProgramRegistry) {
    r.register(
        "shell",
        |api, _args| {
            let _ = api.mem_write_u64(PROG_STATE_VADDR, MAGIC);
            let _ = memio::set_u64(api, HIST_LEN, 0);
            Box::new(Shell)
        },
        |_api| Box::new(Shell),
    );
}

/// Reads the shell's command history out of user memory (verification).
pub fn read_history(k: &mut ow_kernel::Kernel, pid: u64) -> Option<Vec<u8>> {
    let mut lenb = [0u8; 8];
    k.user_read(pid, HIST_LEN, &mut lenb).ok()?;
    let len = u64::from_le_bytes(lenb).min(HIST_CAP);
    let mut buf = vec![0u8; len as usize];
    k.user_read(pid, HIST_BUF, &mut buf).ok()?;
    Some(buf)
}
