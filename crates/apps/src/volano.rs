//! The VolanoMark chat-server analog (§6, Table 3).
//!
//! VolanoMark simulates a chat server with many client sessions; it is
//! highly parallel and **system-call intensive**, which makes it the
//! workload most sensitive to the memory-protected mode's per-syscall
//! page-table switches. Each incoming message is appended to the room
//! history and fanned out to every member of the room — one socket send
//! per member — so a single request costs ~10 syscalls and touches several
//! pages.

use crate::workload::{pid_of, AppMeta, BatchShadow, VerifyResult, WorkRng, Workload};
use ow_kernel::{
    program::{CrashAction, Program, ProgramRegistry, StepResult, UserApi, PROG_STATE_VADDR},
    Errno, Kernel, SpawnSpec,
};

/// Global cell: server socket id.
pub const SID_CELL: u64 = PROG_STATE_VADDR + 8;
/// Global cell: messages processed.
pub const COUNT_CELL: u64 = PROG_STATE_VADDR + 16;

/// Number of chat rooms.
pub const ROOMS: u64 = 4;
/// Users per room.
pub const USERS: u64 = 8;
/// Room history area: per room a length cell + byte buffer.
pub const ROOM_BASE: u64 = 0x40_0000;
/// Bytes per room area (first 8 bytes = length).
pub const ROOM_STRIDE: u64 = 0x1_0000;
/// History capacity per room.
pub const ROOM_CAP: u64 = ROOM_STRIDE - 8;
/// Per-user state pages (touched on every delivery — TLB pressure).
pub const USER_BASE: u64 = 0x50_0000;

/// One chat message: `[room u8][user u8][len u8][text...]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChatMsg {
    /// Room index.
    pub room: u8,
    /// Sending user index.
    pub user: u8,
    /// Message text.
    pub text: Vec<u8>,
}

impl ChatMsg {
    /// Encodes to the wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![self.room, self.user, self.text.len() as u8];
        out.extend_from_slice(&self.text);
        out
    }

    /// Decodes from the wire format.
    pub fn decode(buf: &[u8]) -> Option<ChatMsg> {
        if buf.len() < 3 {
            return None;
        }
        let len = buf[2] as usize;
        if buf.len() < 3 + len {
            return None;
        }
        Some(ChatMsg {
            room: buf[0],
            user: buf[1],
            text: buf[3..3 + len].to_vec(),
        })
    }
}

fn room_addr(room: u8) -> u64 {
    ROOM_BASE + room as u64 * ROOM_STRIDE
}

fn user_addr(room: u8, user: u8) -> u64 {
    USER_BASE + (room as u64 * USERS + user as u64) * 4096
}

/// The chat server program.
pub struct Volano;

impl Volano {
    fn ensure_socket(api: &mut dyn UserApi) -> Result<u32, Errno> {
        let sid = api.mem_read_u64(SID_CELL)?;
        if sid != u64::MAX {
            return Ok(sid as u32);
        }
        let new = api.socket()?;
        api.mem_write_u64(SID_CELL, new as u64)?;
        Ok(new)
    }

    fn handle(api: &mut dyn UserApi, sock: u32, msg: &ChatMsg) -> Result<(), Errno> {
        if msg.room as u64 >= ROOMS || msg.user as u64 >= USERS {
            return Err(Errno::Inval);
        }
        // Append to the room history.
        let base = room_addr(msg.room);
        let len = api.mem_read_u64(base)?;
        let record = msg.encode();
        if len + record.len() as u64 <= ROOM_CAP {
            api.mem_write(base + 8 + len, &record)?;
            api.mem_write_u64(base, len + record.len() as u64)?;
        }
        // Fan out to every member of the room: one send per user, plus a
        // per-user delivery counter page (TLB pressure by design).
        for u in 0..USERS as u8 {
            let cell = user_addr(msg.room, u);
            let delivered = api.mem_read_u64(cell)?;
            api.mem_write_u64(cell, delivered + 1)?;
            api.sock_send(sock, &record)?;
        }
        let count = api.mem_read_u64(COUNT_CELL)?;
        api.mem_write_u64(COUNT_CELL, count + 1)
    }
}

impl Program for Volano {
    fn step(&mut self, api: &mut dyn UserApi) -> StepResult {
        let sock = match Self::ensure_socket(api) {
            Ok(s) => s,
            Err(_) => return StepResult::Running,
        };
        let mut buf = vec![0u8; 3 + 255];
        match api.sock_recv(sock, &mut buf) {
            Ok(_) => {
                if let Some(msg) = ChatMsg::decode(&buf) {
                    // Message formatting is cheap; the cost is the fan-out.
                    api.compute(900);
                    crate::memio::churn(api, ROOM_BASE, 80, 36, msg.user as u64);
                    let _ = Self::handle(api, sock, &msg);
                }
                StepResult::Running
            }
            Err(Errno::WouldBlock) => {
                api.compute(1);
                StepResult::Running
            }
            Err(Errno::Restart) => StepResult::Running,
            Err(_) => {
                let _ = api.mem_write_u64(SID_CELL, u64::MAX);
                StepResult::Running
            }
        }
    }

    fn save_state(&mut self, _api: &mut dyn UserApi) {}

    /// An advanced crash procedure in the §3.4 sense: the room histories
    /// and delivery counters were fully resurrected; only the sockets are
    /// gone, and the server re-establishes those itself, then continues.
    fn crash_procedure(&mut self, api: &mut dyn UserApi, _failed: u32) -> CrashAction {
        let _ = api.mem_write_u64(SID_CELL, u64::MAX);
        CrashAction::Continue
    }
}

/// Registers the chat server with the program registry.
pub fn register(r: &mut ProgramRegistry) {
    r.register(
        "volano",
        |api, _args| {
            let _ = api.mmap_anon(ROOM_BASE, ROOMS * ROOM_STRIDE / 4096);
            let _ = api.mmap_anon(USER_BASE, ROOMS * USERS);
            for room in 0..ROOMS as u8 {
                let _ = api.mem_write_u64(room_addr(room), 0);
            }
            let _ = api.mem_write_u64(SID_CELL, u64::MAX);
            let _ = api.mem_write_u64(COUNT_CELL, 0);
            let _ = api.register_crash_proc();
            Box::new(Volano)
        },
        |_api| Box::new(Volano),
    );
}

/// Metadata (Volano is a benchmark, not a Table 2 application).
pub fn meta() -> AppMeta {
    AppMeta {
        name: "Volano",
        crash_procedure: "n/a (benchmark)",
        modified_lines: 0,
    }
}

/// Shadow room histories.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChatState {
    /// Serialized history per room.
    pub rooms: Vec<Vec<u8>>,
}

impl ChatState {
    fn new() -> Self {
        ChatState {
            rooms: vec![Vec::new(); ROOMS as usize],
        }
    }
}

fn shadow_apply(s: &mut ChatState, msg: &ChatMsg) {
    let record = msg.encode();
    let hist = &mut s.rooms[msg.room as usize];
    if hist.len() + record.len() <= ROOM_CAP as usize {
        hist.extend_from_slice(&record);
    }
}

/// Reads room histories from user memory.
pub fn read_rooms(k: &mut Kernel, pid: u64) -> Option<ChatState> {
    let mut s = ChatState::new();
    for room in 0..ROOMS as u8 {
        let mut lenb = [0u8; 8];
        k.user_read(pid, room_addr(room), &mut lenb).ok()?;
        let len = u64::from_le_bytes(lenb).min(ROOM_CAP);
        let mut hist = vec![0u8; len as usize];
        if len > 0 {
            k.user_read(pid, room_addr(room) + 8, &mut hist).ok()?;
        }
        s.rooms[room as usize] = hist;
    }
    Some(s)
}

/// The Volano workload: chat clients hammering the server.
pub struct VolanoWorkload {
    rng: WorkRng,
    shadow: BatchShadow<ChatState>,
}

impl VolanoWorkload {
    /// Creates the workload with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        VolanoWorkload {
            rng: WorkRng::new(seed),
            shadow: BatchShadow::new(ChatState::new()),
        }
    }

    fn gen_msg(&mut self) -> ChatMsg {
        let len = 8 + self.rng.below(24) as usize;
        ChatMsg {
            room: self.rng.below(ROOMS) as u8,
            user: self.rng.below(USERS) as u8,
            text: (0..len).map(|_| self.rng.printable()).collect(),
        }
    }

    fn server_sid(k: &mut Kernel, pid: u64) -> Option<u32> {
        let mut b = [0u8; 8];
        k.user_read(pid, SID_CELL, &mut b).ok()?;
        let sid = u64::from_le_bytes(b);
        if sid == u64::MAX {
            None
        } else {
            Some(sid as u32)
        }
    }
}

impl Workload for VolanoWorkload {
    fn name(&self) -> &'static str {
        "volano"
    }

    fn setup(&mut self, k: &mut Kernel) -> u64 {
        let image = k.registry.get("volano").expect("volano registered");
        let mut spec = SpawnSpec::new("volano", Box::new(Volano));
        spec.heap_pages = 16;
        let pid = k.spawn(spec).expect("spawn volano");
        let fresh = {
            let mut api = ow_kernel::syscall::KernelApi::new(k, pid);
            (image.fresh)(&mut api, &[])
        };
        k.proc_mut(pid).expect("pid").program = Some(fresh);
        for _ in 0..4 {
            k.run_step();
        }
        pid
    }

    fn drive(&mut self, k: &mut Kernel, pid: u64) {
        let Some(sid) = Self::server_sid(k, pid) else {
            for _ in 0..4 {
                k.run_step();
            }
            return;
        };
        let msgs: Vec<ChatMsg> = (0..4).map(|_| self.gen_msg()).collect();
        self.shadow.begin_batch(
            msgs.iter()
                .cloned()
                .map(|m| {
                    Box::new(move |s: &mut ChatState| shadow_apply(s, &m))
                        as Box<dyn Fn(&mut ChatState)>
                })
                .collect(),
        );
        for m in &msgs {
            let _ = k.sock_deliver(pid, sid, &m.encode());
        }
        for _ in 0..64 {
            if k.panicked.is_some() {
                return;
            }
            k.run_step();
            let drained = k
                .proc(pid)
                .ok()
                .and_then(|p| p.sockets.iter().find(|s| s.sid == sid))
                .map(|s| s.inbox.is_empty())
                .unwrap_or(true);
            if drained {
                break;
            }
        }
        if k.panicked.is_none() {
            for _ in 0..2 {
                k.run_step();
            }
            let _ = k.sock_drain(pid, sid); // fan-out deliveries
            self.shadow.commit();
        }
    }

    fn verify(&mut self, k: &mut Kernel, _pid: u64) -> VerifyResult {
        let Some(pid) = pid_of(k, "volano") else {
            return VerifyResult::Missing;
        };
        let Some(state) = read_rooms(k, pid) else {
            return VerifyResult::Missing;
        };
        if self.shadow.matches(|s| *s == state) {
            VerifyResult::Intact
        } else {
            VerifyResult::Corrupted("room histories diverge from the client log".into())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ow_simhw::machine::MachineConfig;

    fn boot() -> Kernel {
        let machine = ow_kernel::standard_machine(MachineConfig {
            ram_frames: 8192,
            cpus: 2,
            tlb_entries: 64,
            tlb_tagged: true,
            cost: ow_simhw::CostModel::zero_io(),
        });
        let mut reg = ProgramRegistry::new();
        register(&mut reg);
        Kernel::boot_cold(machine, ow_kernel::KernelConfig::default(), reg).unwrap()
    }

    #[test]
    fn codec_round_trip() {
        let m = ChatMsg {
            room: 2,
            user: 5,
            text: b"hey there".to_vec(),
        };
        assert_eq!(ChatMsg::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn chat_history_matches_shadow() {
        let mut k = boot();
        let mut w = VolanoWorkload::new(11);
        let pid = w.setup(&mut k);
        for _ in 0..25 {
            w.drive(&mut k, pid);
        }
        assert_eq!(w.verify(&mut k, pid), VerifyResult::Intact);
        let rooms = read_rooms(&mut k, pid).unwrap();
        assert!(rooms.rooms.iter().any(|r| !r.is_empty()));
    }

    #[test]
    fn fanout_sends_to_every_user() {
        let mut k = boot();
        let mut w = VolanoWorkload::new(12);
        let pid = w.setup(&mut k);
        for _ in 0..4 {
            k.run_step();
        }
        let sid = VolanoWorkload::server_sid(&mut k, pid).unwrap();
        let m = ChatMsg {
            room: 0,
            user: 0,
            text: b"hello".to_vec(),
        };
        k.sock_deliver(pid, sid, &m.encode()).unwrap();
        for _ in 0..8 {
            k.run_step();
        }
        let out = k.sock_drain(pid, sid).unwrap();
        assert_eq!(out.len(), USERS as usize);
    }
}
