//! The JOE text editor analog (§5.1).
//!
//! JOE is a richer editor than vi: multiple windows, an undo buffer and
//! syntax highlighting. Initially it failed after resurrection because it
//! treated *any* error code from the console read as critical and
//! terminated itself; changing **one line** to reissue failed reads made
//! kernel crashes completely transparent (Table 2: 1 modified line). The
//! unfixed behaviour is preserved behind [`Joe::retry_reads`] so the
//! regression is demonstrable.
//!
//! Key protocol: as vi, plus `0x01` (^A) toggles the active window and
//! `0x06` (^F) toggles syntax highlighting.

use crate::{
    memio,
    workload::{pid_of, AppMeta, BatchShadow, VerifyResult, WorkRng, Workload},
};
use ow_kernel::{
    layout::oflags,
    program::{Program, ProgramRegistry, StepResult, UserApi, PROG_STATE_VADDR},
    Errno, Kernel, SpawnSpec,
};

/// Header cells: magic, active window, syntax flag, undo count, saved len.
const MAGIC_CELL: u64 = PROG_STATE_VADDR;
const ACTIVE_CELL: u64 = PROG_STATE_VADDR + 8;
const SYNTAX_CELL: u64 = PROG_STATE_VADDR + 16;
const UNDO_CELL: u64 = PROG_STATE_VADDR + 24;
const SAVED_CELL: u64 = PROG_STATE_VADDR + 32;
/// Per-window buffer length cells.
const LEN_CELLS: [u64; 2] = [PROG_STATE_VADDR + 40, PROG_STATE_VADDR + 48];

/// Window buffers.
const BUFS: [u64; 2] = [0x10000, 0x30000];
/// Capacity per window.
const BUF_CAP: u64 = 0x20000;
/// Undo log: 24-byte records `(window, op, ch)`.
const UNDO: u64 = 0x50000;
const UNDO_CAP: u64 = 0x1000;

const MAGIC: u64 = 0x2121_2121_454f_4a00; // "JOE!!!!"

const OP_INSERT: u64 = 1;
const OP_DELETE: u64 = 2;

/// Files saved by `^W` per window.
pub const FILES: [&str; 2] = ["/joe.0.txt", "/joe.1.txt"];

/// The JOE program.
pub struct Joe {
    /// The one-line fix: reissue console reads that return an error.
    pub retry_reads: bool,
}

impl Joe {
    fn push_undo(api: &mut dyn UserApi, win: u64, op: u64, ch: u8) -> Result<(), Errno> {
        let n = memio::get_u64(api, UNDO_CELL)?;
        if n < UNDO_CAP {
            api.mem_write_u64(UNDO + n * 24, win)?;
            api.mem_write_u64(UNDO + n * 24 + 8, op)?;
            api.mem_write_u64(UNDO + n * 24 + 16, ch as u64)?;
            memio::set_u64(api, UNDO_CELL, n + 1)?;
        }
        Ok(())
    }

    fn apply_key(api: &mut dyn UserApi, key: u8) -> Result<(), Errno> {
        let win = memio::get_u64(api, ACTIVE_CELL)? % 2;
        match key {
            0x01 => memio::set_u64(api, ACTIVE_CELL, (win + 1) % 2)?,
            0x06 => {
                let syn = memio::get_u64(api, SYNTAX_CELL)?;
                memio::set_u64(api, SYNTAX_CELL, syn ^ 1)?;
            }
            0x08 => {
                let len = memio::get_u64(api, LEN_CELLS[win as usize])?;
                if len > 0 {
                    let mut ch = [0u8];
                    api.mem_read(BUFS[win as usize] + len - 1, &mut ch)?;
                    memio::set_u64(api, LEN_CELLS[win as usize], len - 1)?;
                    Self::push_undo(api, win, OP_DELETE, ch[0])?;
                }
            }
            0x15 => {
                let n = memio::get_u64(api, UNDO_CELL)?;
                if n > 0 {
                    let uwin = api.mem_read_u64(UNDO + (n - 1) * 24)? % 2;
                    let op = api.mem_read_u64(UNDO + (n - 1) * 24 + 8)?;
                    let ch = api.mem_read_u64(UNDO + (n - 1) * 24 + 16)? as u8;
                    let len = memio::get_u64(api, LEN_CELLS[uwin as usize])?;
                    match op {
                        OP_INSERT if len > 0 => {
                            memio::set_u64(api, LEN_CELLS[uwin as usize], len - 1)?
                        }
                        OP_DELETE if len < BUF_CAP => {
                            api.mem_write(BUFS[uwin as usize] + len, &[ch])?;
                            memio::set_u64(api, LEN_CELLS[uwin as usize], len + 1)?;
                        }
                        _ => {}
                    }
                    memio::set_u64(api, UNDO_CELL, n - 1)?;
                }
            }
            0x17 => {
                let len = memio::get_u64(api, LEN_CELLS[win as usize])?;
                let mut text = vec![0u8; len as usize];
                if len > 0 {
                    api.mem_read(BUFS[win as usize], &mut text)?;
                }
                let fd = api.open(
                    FILES[win as usize],
                    oflags::WRITE | oflags::CREATE | oflags::TRUNC,
                )?;
                api.write(fd, &text)?;
                api.close(fd)?;
                memio::set_u64(api, SAVED_CELL, len)?;
            }
            b if (b' '..=b'~').contains(&b) || b == b'\n' => {
                let len = memio::get_u64(api, LEN_CELLS[win as usize])?;
                if len < BUF_CAP {
                    api.mem_write(BUFS[win as usize] + len, &[b])?;
                    memio::set_u64(api, LEN_CELLS[win as usize], len + 1)?;
                    Self::push_undo(api, win, OP_INSERT, b)?;
                }
            }
            _ => {}
        }
        Ok(())
    }
}

impl Program for Joe {
    fn step(&mut self, api: &mut dyn UserApi) -> StepResult {
        let mut key = [0u8];
        match api.term_read(&mut key) {
            Ok(1) => {
                let _ = api.term_write(&key);
                let _ = Self::apply_key(api, key[0]);
                StepResult::Running
            }
            Ok(_) => StepResult::Running,
            Err(Errno::WouldBlock) => {
                api.compute(1);
                StepResult::Running
            }
            Err(_) if self.retry_reads => {
                // The one-line fix: reissue the failed read next step.
                StepResult::Running
            }
            Err(_) => {
                // Unfixed JOE: any console read error is treated as
                // critical — the editor terminates itself (§5.1).
                StepResult::Exited(1)
            }
        }
    }

    fn save_state(&mut self, _api: &mut dyn UserApi) {}
}

/// Registers JOE (the fixed variant) and `joe-unfixed` (the original
/// behaviour) with the program registry.
pub fn register(r: &mut ProgramRegistry) {
    let init = |api: &mut dyn UserApi| {
        crate::memio::map_libraries(api, 6);
        let _ = api.mem_write_u64(MAGIC_CELL, MAGIC);
        for cell in [
            ACTIVE_CELL,
            SYNTAX_CELL,
            UNDO_CELL,
            SAVED_CELL,
            LEN_CELLS[0],
            LEN_CELLS[1],
        ] {
            let _ = memio::set_u64(api, cell, 0);
        }
    };
    r.register(
        "joe",
        move |api, _args| {
            init(api);
            Box::new(Joe { retry_reads: true })
        },
        |_api| Box::new(Joe { retry_reads: true }),
    );
    r.register(
        "joe-unfixed",
        move |api, _args| {
            init(api);
            Box::new(Joe { retry_reads: false })
        },
        |_api| Box::new(Joe { retry_reads: false }),
    );
}

/// Table 2 row.
pub fn meta() -> AppMeta {
    AppMeta {
        name: "JOE",
        crash_procedure: "Not required",
        modified_lines: 1,
    }
}

/// Editor state as seen by the remote log.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct JoeState {
    /// Window texts.
    pub text: [Vec<u8>; 2],
    /// Active window.
    pub active: u64,
    /// Syntax-highlight flag.
    pub syntax: u64,
    /// Undo stack `(window, op, ch)`.
    pub undo: Vec<(u64, u64, u8)>,
}

fn shadow_apply(s: &mut JoeState, key: u8) {
    let win = (s.active % 2) as usize;
    match key {
        0x01 => s.active = (s.active + 1) % 2,
        0x06 => s.syntax ^= 1,
        0x08 => {
            if let Some(ch) = s.text[win].pop() {
                s.undo.push((win as u64, OP_DELETE, ch));
            }
        }
        0x15 => {
            if let Some((uwin, op, ch)) = s.undo.pop() {
                match op {
                    OP_INSERT => {
                        s.text[uwin as usize].pop();
                    }
                    OP_DELETE => s.text[uwin as usize].push(ch),
                    _ => {}
                }
            }
        }
        0x17 => {}
        b if ((b' '..=b'~').contains(&b) || b == b'\n') && (s.text[win].len() as u64) < BUF_CAP => {
            s.text[win].push(b);
            s.undo.push((win as u64, OP_INSERT, b));
        }
        _ => {}
    }
}

/// Reads the editor state back from user memory.
pub fn read_state(k: &mut Kernel, pid: u64) -> Option<JoeState> {
    let cell = |k: &mut Kernel, addr: u64| -> Option<u64> {
        let mut b = [0u8; 8];
        k.user_read(pid, addr, &mut b).ok()?;
        Some(u64::from_le_bytes(b))
    };
    let active = cell(k, ACTIVE_CELL)?;
    let syntax = cell(k, SYNTAX_CELL)?;
    let mut text: [Vec<u8>; 2] = [Vec::new(), Vec::new()];
    for w in 0..2 {
        let len = cell(k, LEN_CELLS[w])?.min(BUF_CAP);
        let mut buf = vec![0u8; len as usize];
        if len > 0 {
            k.user_read(pid, BUFS[w], &mut buf).ok()?;
        }
        text[w] = buf;
    }
    let nundo = cell(k, UNDO_CELL)?.min(UNDO_CAP);
    let mut undo = Vec::with_capacity(nundo as usize);
    for i in 0..nundo {
        let mut rec = [0u8; 24];
        k.user_read(pid, UNDO + i * 24, &mut rec).ok()?;
        undo.push((
            u64::from_le_bytes(rec[0..8].try_into().unwrap()),
            u64::from_le_bytes(rec[8..16].try_into().unwrap()),
            u64::from_le_bytes(rec[16..24].try_into().unwrap()) as u8,
        ));
    }
    Some(JoeState {
        text,
        active,
        syntax,
        undo,
    })
}

/// The JOE workload: typing across two windows with undo and saves.
pub struct JoeWorkload {
    rng: WorkRng,
    shadow: BatchShadow<JoeState>,
    term: Option<u32>,
    /// Drive the unfixed variant (for the regression demonstration).
    pub unfixed: bool,
}

impl JoeWorkload {
    /// Creates the workload with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        JoeWorkload {
            rng: WorkRng::new(seed),
            shadow: BatchShadow::new(JoeState::default()),
            term: None,
            unfixed: false,
        }
    }

    fn gen_key(&mut self) -> u8 {
        match self.rng.below(100) {
            0..=69 => self.rng.printable(),
            70..=77 => 0x08,
            78..=84 => 0x15,
            85..=90 => 0x01,
            91..=93 => 0x06,
            94..=96 => 0x17,
            _ => b'\n',
        }
    }

    fn prog_name(&self) -> &'static str {
        if self.unfixed {
            "joe-unfixed"
        } else {
            "joe"
        }
    }
}

impl Workload for JoeWorkload {
    fn name(&self) -> &'static str {
        if self.unfixed {
            "joe-unfixed"
        } else {
            "joe"
        }
    }

    fn setup(&mut self, k: &mut Kernel) -> u64 {
        let term = k.create_terminal().expect("terminal");
        self.term = Some(term);
        let name = self.prog_name();
        let image = k.registry.get(name).expect("joe registered");
        let mut spec = SpawnSpec::new(
            name,
            Box::new(Joe {
                retry_reads: !self.unfixed,
            }),
        );
        spec.heap_pages = 128;
        spec.term = Some(term);
        let pid = k.spawn(spec).expect("spawn joe");
        let fresh = {
            let mut api = ow_kernel::syscall::KernelApi::new(k, pid);
            (image.fresh)(&mut api, &[])
        };
        k.proc_mut(pid).expect("pid").program = Some(fresh);
        pid
    }

    fn drive(&mut self, k: &mut Kernel, _pid: u64) {
        let term = self.term.expect("setup ran");
        let keys: Vec<u8> = (0..8).map(|_| self.gen_key()).collect();
        self.shadow.begin_batch(
            keys.iter()
                .map(|&b| {
                    Box::new(move |s: &mut JoeState| shadow_apply(s, b))
                        as Box<dyn Fn(&mut JoeState)>
                })
                .collect(),
        );
        let _ = k.term_input(term, &keys);
        for _ in 0..64 {
            if k.panicked.is_some() {
                return;
            }
            k.run_step();
            let drained = k
                .terms
                .iter()
                .find(|t| t.id == term)
                .map(|t| t.input.is_empty())
                .unwrap_or(true);
            if drained {
                break;
            }
        }
        if k.panicked.is_none() {
            for _ in 0..2 {
                k.run_step();
            }
            self.shadow.commit();
        }
    }

    fn reconnect(&mut self, k: &mut Kernel, pid: u64) {
        if let Ok(desc) = k.read_desc(pid) {
            if desc.term_id != u32::MAX {
                self.term = Some(desc.term_id);
            }
        }
    }

    fn verify(&mut self, k: &mut Kernel, _pid: u64) -> VerifyResult {
        let Some(pid) = pid_of(k, self.name()) else {
            return VerifyResult::Missing;
        };
        let Some(state) = read_state(k, pid) else {
            return VerifyResult::Missing;
        };
        if self.shadow.matches(|s| *s == state) {
            VerifyResult::Intact
        } else {
            VerifyResult::Corrupted("editor state diverged from remote log".into())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ow_simhw::machine::MachineConfig;

    fn boot() -> Kernel {
        let machine = ow_kernel::standard_machine(MachineConfig {
            ram_frames: 4096,
            cpus: 2,
            tlb_entries: 64,
            tlb_tagged: true,
            cost: ow_simhw::CostModel::zero_io(),
        });
        let mut reg = ProgramRegistry::new();
        register(&mut reg);
        Kernel::boot_cold(machine, ow_kernel::KernelConfig::default(), reg).unwrap()
    }

    #[test]
    fn windows_are_independent() {
        let mut k = boot();
        let mut w = JoeWorkload::new(1);
        let pid = w.setup(&mut k);
        let term = w.term.unwrap();
        // "ab" in window 0, toggle, "cd" in window 1.
        k.term_input(term, b"ab").unwrap();
        k.term_input(term, &[0x01]).unwrap();
        k.term_input(term, b"cd").unwrap();
        for _ in 0..32 {
            k.run_step();
        }
        let st = read_state(&mut k, pid).unwrap();
        assert_eq!(st.text[0], b"ab");
        assert_eq!(st.text[1], b"cd");
        assert_eq!(st.active, 1);
    }

    #[test]
    fn undo_crosses_windows() {
        let mut k = boot();
        let mut w = JoeWorkload::new(2);
        let pid = w.setup(&mut k);
        let term = w.term.unwrap();
        k.term_input(term, b"x").unwrap();
        k.term_input(term, &[0x01]).unwrap();
        k.term_input(term, b"y").unwrap();
        // Undo twice: removes 'y' from window 1 then 'x' from window 0.
        k.term_input(term, &[0x15, 0x15]).unwrap();
        for _ in 0..32 {
            k.run_step();
        }
        let st = read_state(&mut k, pid).unwrap();
        assert!(st.text[0].is_empty());
        assert!(st.text[1].is_empty());
    }

    #[test]
    fn random_workload_matches_shadow() {
        let mut k = boot();
        let mut w = JoeWorkload::new(3);
        let pid = w.setup(&mut k);
        for _ in 0..20 {
            w.drive(&mut k, pid);
        }
        assert_eq!(w.verify(&mut k, pid), VerifyResult::Intact);
    }
}
