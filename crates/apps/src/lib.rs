//! Applications for the Otherworld evaluation (§5, §6).
//!
//! The paper evaluates five applications — the vi and JOE text editors, the
//! MySQL database server (MEMORY storage engine), the Apache/PHP bundle
//! (shared-memory session store) and the BLCR checkpointing system — plus
//! the VolanoMark chat benchmark for the protection-overhead measurements
//! (Table 3). This crate implements a faithful analog of each as an
//! [`ow_kernel::Program`]: all application data lives in the simulated user
//! address space, crash procedures follow §5's recipes, and each app comes
//! with a workload driver that maintains a remote-log shadow model for data
//! verification, exactly as the fault-injection experiments require.

#![forbid(unsafe_code)]

pub mod blcr;
pub mod joe;
pub mod memio;
pub mod mempse;
pub mod minidb;
pub mod shell;
pub mod vi;
pub mod volano;
pub mod webserv;
pub mod workload;

pub use workload::{make_workload, AppMeta, VerifyResult, Workload};

use ow_kernel::ProgramRegistry;

/// Builds the program registry with every application installed — the
/// "on-disk executables" both kernels can instantiate (§3.1: same
/// environment in the main and crash kernels).
pub fn full_registry() -> ProgramRegistry {
    let mut r = ProgramRegistry::new();
    shell::register(&mut r);
    vi::register(&mut r);
    joe::register(&mut r);
    minidb::register(&mut r);
    webserv::register(&mut r);
    blcr::register(&mut r);
    volano::register(&mut r);
    r
}

/// Table 2 of the paper: per-application crash-procedure requirements and
/// the size of the modifications.
pub fn table2_rows() -> Vec<AppMeta> {
    vec![
        vi::meta(),
        joe::meta(),
        minidb::meta(),
        webserv::meta(),
        blcr::meta(),
    ]
}
