//! The MEMORY pluggable storage engine analog (§5.2).
//!
//! MySQL's MEMORY PSE keeps all table data in process memory, organized as
//! a linked list of tables reachable through a global variable, with
//! functions to scan, retrieve and insert rows in an internal format. The
//! paper's crash procedure *reuses those functions without understanding
//! the row format* — so this module is deliberately structured the same
//! way: a table list headed at a global cell, and scan/insert/update/delete
//! entry points over opaque 64-byte rows, all operating purely on user
//! memory through the [`UserApi`].

use crate::memio::UserBump;
use ow_kernel::{program::PROG_STATE_VADDR, Errno, UserApi};

/// Fixed row size (rows are opaque byte arrays, as in §5.2).
pub const ROW_SIZE: u64 = 64;

/// Global cells.
pub const MAGIC_CELL: u64 = PROG_STATE_VADDR;
/// Head of the table list (a "global variable", §5.2).
pub const TABLE_HEAD: u64 = PROG_STATE_VADDR + 8;
/// Bump-allocator cursor.
pub const ALLOC_CELL: u64 = PROG_STATE_VADDR + 16;

/// Arena for tables and rows.
pub const ARENA_BASE: u64 = 0x10_0000;
/// Arena end.
pub const ARENA_END: u64 = 0x30_0000;

/// Table node magic.
const TBL_MAGIC: u64 = 0x454c_4254_4553_5000; // "PSETBLE"

const OFF_MAGIC: u64 = 0;
const OFF_NAME: u64 = 8;
const OFF_ROWSZ: u64 = 16;
const OFF_NROWS: u64 = 24;
const OFF_CAP: u64 = 32;
const OFF_NEXT: u64 = 40;
const OFF_ROWS: u64 = 48;

/// The arena allocator (cursor state lives in user memory).
pub fn arena() -> UserBump {
    UserBump {
        cursor_cell: ALLOC_CELL,
        base: ARENA_BASE,
        limit: ARENA_END,
    }
}

/// Packs a short table name into a u64.
pub fn pack_name(name: &str) -> u64 {
    let mut b = [0u8; 8];
    let n = name.len().min(8);
    b[..n].copy_from_slice(&name.as_bytes()[..n]);
    u64::from_le_bytes(b)
}

/// Unpacks a table name.
pub fn unpack_name(v: u64) -> String {
    let b = v.to_le_bytes();
    let end = b.iter().position(|&c| c == 0).unwrap_or(8);
    String::from_utf8_lossy(&b[..end]).into_owned()
}

/// Initializes the engine's global state (fresh start).
pub fn init(api: &mut dyn UserApi) -> Result<(), Errno> {
    api.mem_write_u64(MAGIC_CELL, TBL_MAGIC)?;
    api.mem_write_u64(TABLE_HEAD, 0)?;
    arena().init(api)
}

/// Creates a table with capacity `cap` rows, linking it into the list.
pub fn create_table(api: &mut dyn UserApi, name: &str, cap: u64) -> Result<u64, Errno> {
    let tbl = arena().alloc(api, OFF_ROWS + cap * ROW_SIZE)?;
    api.mem_write_u64(tbl + OFF_MAGIC, TBL_MAGIC)?;
    api.mem_write_u64(tbl + OFF_NAME, pack_name(name))?;
    api.mem_write_u64(tbl + OFF_ROWSZ, ROW_SIZE)?;
    api.mem_write_u64(tbl + OFF_NROWS, 0)?;
    api.mem_write_u64(tbl + OFF_CAP, cap)?;
    let head = api.mem_read_u64(TABLE_HEAD)?;
    api.mem_write_u64(tbl + OFF_NEXT, head)?;
    api.mem_write_u64(TABLE_HEAD, tbl)?;
    Ok(tbl)
}

/// Lists all tables (walking the global list).
pub fn tables(api: &mut dyn UserApi) -> Result<Vec<u64>, Errno> {
    let mut out = Vec::new();
    let mut addr = api.mem_read_u64(TABLE_HEAD)?;
    while addr != 0 && out.len() < 1024 {
        if api.mem_read_u64(addr + OFF_MAGIC)? != TBL_MAGIC {
            return Err(Errno::Inval);
        }
        out.push(addr);
        addr = api.mem_read_u64(addr + OFF_NEXT)?;
    }
    Ok(out)
}

/// Finds a table by name.
pub fn find_table(api: &mut dyn UserApi, name: &str) -> Result<Option<u64>, Errno> {
    let want = pack_name(name);
    for tbl in tables(api)? {
        if api.mem_read_u64(tbl + OFF_NAME)? == want {
            return Ok(Some(tbl));
        }
    }
    Ok(None)
}

/// The table's name.
pub fn table_name(api: &mut dyn UserApi, tbl: u64) -> Result<String, Errno> {
    Ok(unpack_name(api.mem_read_u64(tbl + OFF_NAME)?))
}

/// Number of rows.
pub fn nrows(api: &mut dyn UserApi, tbl: u64) -> Result<u64, Errno> {
    api.mem_read_u64(tbl + OFF_NROWS)
}

/// Reads row `idx` (opaque bytes).
pub fn row(api: &mut dyn UserApi, tbl: u64, idx: u64) -> Result<Vec<u8>, Errno> {
    let n = nrows(api, tbl)?;
    if idx >= n {
        return Err(Errno::Inval);
    }
    let mut buf = vec![0u8; ROW_SIZE as usize];
    api.mem_read(tbl + OFF_ROWS + idx * ROW_SIZE, &mut buf)?;
    Ok(buf)
}

/// Inserts a row, returning its index.
pub fn insert_row(api: &mut dyn UserApi, tbl: u64, data: &[u8]) -> Result<u64, Errno> {
    let n = nrows(api, tbl)?;
    let cap = api.mem_read_u64(tbl + OFF_CAP)?;
    if n >= cap {
        return Err(Errno::NoMem);
    }
    let mut rowbuf = [0u8; ROW_SIZE as usize];
    let len = data.len().min(ROW_SIZE as usize);
    rowbuf[..len].copy_from_slice(&data[..len]);
    api.mem_write(tbl + OFF_ROWS + n * ROW_SIZE, &rowbuf)?;
    api.mem_write_u64(tbl + OFF_NROWS, n + 1)?;
    Ok(n)
}

/// Overwrites row `idx`.
pub fn update_row(api: &mut dyn UserApi, tbl: u64, idx: u64, data: &[u8]) -> Result<(), Errno> {
    let n = nrows(api, tbl)?;
    if idx >= n {
        return Err(Errno::Inval);
    }
    let mut rowbuf = [0u8; ROW_SIZE as usize];
    let len = data.len().min(ROW_SIZE as usize);
    rowbuf[..len].copy_from_slice(&data[..len]);
    api.mem_write(tbl + OFF_ROWS + idx * ROW_SIZE, &rowbuf)?;
    Ok(())
}

/// Deletes row `idx` by moving the last row into the hole.
pub fn delete_row(api: &mut dyn UserApi, tbl: u64, idx: u64) -> Result<(), Errno> {
    let n = nrows(api, tbl)?;
    if idx >= n {
        return Err(Errno::Inval);
    }
    if idx != n - 1 {
        let mut last = vec![0u8; ROW_SIZE as usize];
        api.mem_read(tbl + OFF_ROWS + (n - 1) * ROW_SIZE, &mut last)?;
        api.mem_write(tbl + OFF_ROWS + idx * ROW_SIZE, &last)?;
    }
    api.mem_write_u64(tbl + OFF_NROWS, n - 1)?;
    Ok(())
}

/// Scans a whole table into host memory (used by the crash procedure —
/// which, as in §5.2, treats rows as opaque byte arrays).
pub fn scan(api: &mut dyn UserApi, tbl: u64) -> Result<Vec<Vec<u8>>, Errno> {
    let n = nrows(api, tbl)?;
    let mut out = Vec::with_capacity(n as usize);
    for i in 0..n {
        out.push(row(api, tbl, i)?);
    }
    Ok(out)
}
