//! The MySQL server analog with the MEMORY storage engine (§5.2).
//!
//! An in-memory database server driven by a remote client over a socket.
//! Because sockets are not resurrectable, the server cannot survive a
//! microreboot without help; its **crash procedure** (70 new + 5 modified
//! lines in the paper) iterates the table list through the MEMORY-PSE
//! functions, saves every row (as opaque bytes) to `/mysql.dump`, and
//! restarts the server with the dump file on the command line. The startup
//! code was modified to reload the tables from that file.
//!
//! Wire protocol (one message per request):
//! `[op u8][table 8B][idx 8B][row 64B]` with op 1=INSERT 2=UPDATE 3=DELETE.

use crate::{
    mempse,
    workload::{pid_of, AppMeta, BatchShadow, VerifyResult, WorkRng, Workload},
};
use ow_kernel::{
    layout::oflags,
    program::{CrashAction, Program, ProgramRegistry, StepResult, UserApi, PROG_STATE_VADDR},
    Errno, Kernel, SpawnSpec,
};
use std::collections::BTreeMap;

/// Cell holding the server's current socket id (so the driver can find it).
pub const SID_CELL: u64 = PROG_STATE_VADDR + 24;
/// Cell counting applied requests (progress marker).
pub const APPLIED_CELL: u64 = PROG_STATE_VADDR + 32;

/// Table names served.
pub const TABLES: [&str; 3] = ["t0", "t1", "t2"];
/// Capacity of each table in rows.
pub const TABLE_CAP: u64 = 256;

/// Dump file written by the crash procedure.
pub const DUMP_FILE: &str = "/mysql.dump";

const OP_INSERT: u8 = 1;
const OP_UPDATE: u8 = 2;
const OP_DELETE: u8 = 3;

/// One wire request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Operation code.
    pub op: u8,
    /// Target table name.
    pub table: String,
    /// Row index (interpreted modulo the current row count).
    pub idx: u64,
    /// Row payload.
    pub row: Vec<u8>,
}

impl Request {
    /// Encodes to the wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![self.op];
        out.extend_from_slice(&mempse::pack_name(&self.table).to_le_bytes());
        out.extend_from_slice(&self.idx.to_le_bytes());
        let mut row = self.row.clone();
        row.resize(mempse::ROW_SIZE as usize, 0);
        out.extend_from_slice(&row);
        out
    }

    /// Decodes from the wire format.
    pub fn decode(buf: &[u8]) -> Option<Request> {
        if buf.len() < 17 + mempse::ROW_SIZE as usize {
            return None;
        }
        Some(Request {
            op: buf[0],
            table: mempse::unpack_name(u64::from_le_bytes(buf[1..9].try_into().ok()?)),
            idx: u64::from_le_bytes(buf[9..17].try_into().ok()?),
            row: buf[17..17 + mempse::ROW_SIZE as usize].to_vec(),
        })
    }
}

/// The database server program.
pub struct MiniDb;

impl MiniDb {
    fn apply(api: &mut dyn UserApi, req: &Request) -> Result<(), Errno> {
        let Some(tbl) = mempse::find_table(api, &req.table)? else {
            return Err(Errno::Inval);
        };
        let n = mempse::nrows(api, tbl)?;
        match req.op {
            OP_INSERT => {
                let _ = mempse::insert_row(api, tbl, &req.row);
            }
            OP_UPDATE if n > 0 => mempse::update_row(api, tbl, req.idx % n, &req.row)?,
            OP_DELETE if n > 0 => mempse::delete_row(api, tbl, req.idx % n)?,
            _ => {}
        }
        let applied = api.mem_read_u64(APPLIED_CELL)?;
        api.mem_write_u64(APPLIED_CELL, applied + 1)?;
        Ok(())
    }

    fn ensure_socket(api: &mut dyn UserApi) -> Result<u32, Errno> {
        let sid = api.mem_read_u64(SID_CELL)?;
        if sid != u64::MAX {
            return Ok(sid as u32);
        }
        let new = api.socket()?;
        api.mem_write_u64(SID_CELL, new as u64)?;
        Ok(new)
    }
}

impl Program for MiniDb {
    fn step(&mut self, api: &mut dyn UserApi) -> StepResult {
        let sid = match Self::ensure_socket(api) {
            Ok(s) => s,
            Err(_) => return StepResult::Running,
        };
        let mut buf = vec![0u8; 17 + mempse::ROW_SIZE as usize];
        match api.sock_recv(sid, &mut buf) {
            Ok(_) => {
                if let Some(req) = Request::decode(&buf) {
                    // Query parsing, planning and execution: compute plus a
                    // buffer-pool walk over the table arena.
                    api.compute(1100);
                    crate::memio::churn(api, mempse::ARENA_BASE, 320, 48, req.idx);
                    let ok = Self::apply(api, &req).is_ok();
                    let _ = api.sock_send(sid, if ok { b"OK" } else { b"ER" });
                }
                StepResult::Running
            }
            Err(Errno::WouldBlock) => {
                api.compute(2);
                StepResult::Running
            }
            Err(Errno::Restart) => StepResult::Running,
            Err(_) => {
                // Connection died (e.g. after a resurrection the crash
                // procedure declined): open a fresh listening socket.
                let _ = api.mem_write_u64(SID_CELL, u64::MAX);
                StepResult::Running
            }
        }
    }

    fn save_state(&mut self, _api: &mut dyn UserApi) {}

    /// §5.2's crash procedure: reuse the PSE functions to dump every table
    /// to disk, then restart with the dump file as a command-line argument.
    /// When `failed == 0` — the MEMORY tables and every kernel resource,
    /// listeners included, survived resurrection — it takes §3.4's advanced
    /// route instead: abandon the in-flight query and keep serving from the
    /// live arena, skipping the dump-and-restart cycle.
    fn crash_procedure(&mut self, api: &mut dyn UserApi, failed: u32) -> CrashAction {
        if failed == 0 {
            let _ = api.mem_write_u64(SID_CELL, u64::MAX);
            return CrashAction::Continue;
        }
        // Serializing every MEMORY table dominates the crash procedure.
        api.compute(75_000_000);
        let dump = (|| -> Result<(), Errno> {
            let fd = api.open(DUMP_FILE, oflags::WRITE | oflags::CREATE | oflags::TRUNC)?;
            let tbls = mempse::tables(api)?;
            api.write(fd, &(tbls.len() as u64).to_le_bytes())?;
            for tbl in tbls {
                let name = mempse::table_name(api, tbl)?;
                let rows = mempse::scan(api, tbl)?;
                api.write(fd, &mempse::pack_name(&name).to_le_bytes())?;
                api.write(fd, &(rows.len() as u64).to_le_bytes())?;
                for row in rows {
                    api.write(fd, &row)?;
                }
            }
            api.fsync(fd)?;
            api.close(fd)?;
            Ok(())
        })();
        match dump {
            Ok(()) => CrashAction::SaveAndRestart(vec![DUMP_FILE.to_string()]),
            Err(_) => CrashAction::GiveUp,
        }
    }
}

fn load_dump(api: &mut dyn UserApi, path: &str) -> Result<(), Errno> {
    let fd = api.open(path, oflags::READ)?;
    let mut n8 = [0u8; 8];
    if api.read(fd, &mut n8)? != 8 {
        api.close(fd)?;
        return Ok(()); // empty dump
    }
    let ntables = u64::from_le_bytes(n8);
    for _ in 0..ntables.min(64) {
        api.read(fd, &mut n8)?;
        let name = mempse::unpack_name(u64::from_le_bytes(n8));
        api.read(fd, &mut n8)?;
        let nrows = u64::from_le_bytes(n8);
        let tbl = match mempse::find_table(api, &name)? {
            Some(t) => t,
            None => mempse::create_table(api, &name, TABLE_CAP)?,
        };
        for _ in 0..nrows.min(TABLE_CAP) {
            let mut row = vec![0u8; mempse::ROW_SIZE as usize];
            api.read(fd, &mut row)?;
            mempse::insert_row(api, tbl, &row)?;
        }
    }
    api.close(fd)
}

/// Registers the database server with the program registry.
pub fn register(r: &mut ProgramRegistry) {
    r.register(
        "mysqld",
        |api, args| {
            // Server initialization work (storage engine init, grant
            // tables, listeners) — a few simulated seconds, as in Table 6.
            api.compute(175_000_000);
            crate::memio::map_libraries(api, 12);
            let _ = api.mmap_anon(
                mempse::ARENA_BASE,
                (mempse::ARENA_END - mempse::ARENA_BASE) / 4096,
            );
            let _ = mempse::init(api);
            let _ = api.mem_write_u64(SID_CELL, u64::MAX);
            let _ = api.mem_write_u64(APPLIED_CELL, 0);
            for t in TABLES {
                let _ = mempse::create_table(api, t, TABLE_CAP);
            }
            // Startup modification (§5.2): reload MEMORY tables from the
            // file the crash procedure saved.
            if let Some(path) = args.first() {
                // Tables were just created empty; loading fills them.
                let _ = load_dump(api, path);
            }
            let _ = api.register_crash_proc();
            Box::new(MiniDb)
        },
        |_api| Box::new(MiniDb),
    );
}

/// Table 2 row.
pub fn meta() -> AppMeta {
    AppMeta {
        name: "MySQL",
        crash_procedure: "Required",
        modified_lines: 75,
    }
}

/// Shadow database state (the remote log).
pub type DbState = BTreeMap<String, Vec<Vec<u8>>>;

fn shadow_apply(s: &mut DbState, req: &Request) {
    let rows = s.entry(req.table.clone()).or_default();
    let n = rows.len() as u64;
    let mut row = req.row.clone();
    row.resize(mempse::ROW_SIZE as usize, 0);
    match req.op {
        OP_INSERT if n < TABLE_CAP => {
            rows.push(row);
        }
        OP_UPDATE if n > 0 => rows[(req.idx % n) as usize] = row,
        OP_DELETE if n > 0 => {
            let idx = (req.idx % n) as usize;
            let last = rows.len() - 1;
            rows.swap(idx, last);
            rows.pop();
        }
        _ => {}
    }
}

/// Reads the whole database out of (possibly resurrected) user memory.
pub fn read_db(k: &mut Kernel, pid: u64) -> Option<DbState> {
    let mut out = DbState::new();
    let cell = |k: &mut Kernel, addr: u64| -> Option<u64> {
        let mut b = [0u8; 8];
        k.user_read(pid, addr, &mut b).ok()?;
        Some(u64::from_le_bytes(b))
    };
    let mut tbl = cell(k, mempse::TABLE_HEAD)?;
    let mut guard = 0;
    while tbl != 0 && guard < 64 {
        let name = mempse::unpack_name(cell(k, tbl + 8)?);
        let nrows = cell(k, tbl + 24)?.min(TABLE_CAP);
        let mut rows = Vec::with_capacity(nrows as usize);
        for i in 0..nrows {
            let mut row = vec![0u8; mempse::ROW_SIZE as usize];
            k.user_read(pid, tbl + 48 + i * mempse::ROW_SIZE, &mut row)
                .ok()?;
            rows.push(row);
        }
        out.insert(name, rows);
        tbl = cell(k, tbl + 40)?;
        guard += 1;
    }
    Some(out)
}

/// The MySQL workload: a remote client inserting, updating and deleting
/// rows, with every request logged.
pub struct MiniDbWorkload {
    rng: WorkRng,
    shadow: BatchShadow<DbState>,
}

impl MiniDbWorkload {
    /// Creates the workload with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        let mut initial = DbState::new();
        for t in TABLES {
            initial.insert(t.to_string(), Vec::new());
        }
        MiniDbWorkload {
            rng: WorkRng::new(seed),
            shadow: BatchShadow::new(initial),
        }
    }

    fn gen_request(&mut self) -> Request {
        let table = TABLES[self.rng.below(TABLES.len() as u64) as usize].to_string();
        let op = match self.rng.below(10) {
            0..=5 => OP_INSERT,
            6..=8 => OP_UPDATE,
            _ => OP_DELETE,
        };
        let mut row = vec![0u8; mempse::ROW_SIZE as usize];
        for b in row.iter_mut() {
            *b = self.rng.printable();
        }
        Request {
            op,
            table,
            idx: self.rng.next_u64(),
            row,
        }
    }

    fn server_sid(k: &mut Kernel, pid: u64) -> Option<u32> {
        let mut b = [0u8; 8];
        k.user_read(pid, SID_CELL, &mut b).ok()?;
        let sid = u64::from_le_bytes(b);
        if sid == u64::MAX {
            None
        } else {
            Some(sid as u32)
        }
    }
}

impl Workload for MiniDbWorkload {
    fn name(&self) -> &'static str {
        "mysqld"
    }

    fn setup(&mut self, k: &mut Kernel) -> u64 {
        let image = k.registry.get("mysqld").expect("mysqld registered");
        let mut spec = SpawnSpec::new("mysqld", Box::new(MiniDb));
        spec.heap_pages = 16;
        let pid = k.spawn(spec).expect("spawn mysqld");
        let fresh = {
            let mut api = ow_kernel::syscall::KernelApi::new(k, pid);
            (image.fresh)(&mut api, &[])
        };
        k.proc_mut(pid).expect("pid").program = Some(fresh);
        // Let the server open its socket.
        for _ in 0..4 {
            k.run_step();
        }
        pid
    }

    fn drive(&mut self, k: &mut Kernel, pid: u64) {
        let Some(sid) = Self::server_sid(k, pid) else {
            // Server not ready yet; give it time.
            for _ in 0..4 {
                k.run_step();
            }
            return;
        };
        let reqs: Vec<Request> = (0..4).map(|_| self.gen_request()).collect();
        self.shadow.begin_batch(
            reqs.iter()
                .cloned()
                .map(|r| {
                    Box::new(move |s: &mut DbState| shadow_apply(s, &r))
                        as Box<dyn Fn(&mut DbState)>
                })
                .collect(),
        );
        for r in &reqs {
            let _ = k.sock_deliver(pid, sid, &r.encode());
        }
        for _ in 0..64 {
            if k.panicked.is_some() {
                return;
            }
            k.run_step();
            let drained = k
                .proc(pid)
                .ok()
                .and_then(|p| p.sockets.iter().find(|s| s.sid == sid))
                .map(|s| s.inbox.is_empty())
                .unwrap_or(true);
            if drained {
                break;
            }
        }
        if k.panicked.is_none() {
            for _ in 0..2 {
                k.run_step();
            }
            let _ = k.sock_drain(pid, sid); // collect "OK" replies
            self.shadow.commit();
        }
    }

    fn reconnect(&mut self, _k: &mut Kernel, _pid: u64) {
        // The client reconnects by reading the server's new socket id; no
        // driver state to fix.
    }

    fn verify(&mut self, k: &mut Kernel, _pid: u64) -> VerifyResult {
        let Some(pid) = pid_of(k, "mysqld") else {
            return VerifyResult::Missing;
        };
        // Give a restarted server a chance to finish loading the dump.
        let Some(db) = read_db(k, pid) else {
            return VerifyResult::Missing;
        };
        // Table order may differ after a reload; compare as maps with rows
        // as multisets per table (delete's swap-with-last keeps contents
        // but the dump/reload preserves order anyway).
        let matches = self.shadow.matches(|s| {
            s.iter().all(|(name, rows)| {
                db.get(name)
                    .map(|got| {
                        let mut a = rows.clone();
                        let mut b = got.clone();
                        a.sort();
                        b.sort();
                        a == b
                    })
                    .unwrap_or(rows.is_empty())
            })
        });
        if matches {
            VerifyResult::Intact
        } else {
            VerifyResult::Corrupted("table contents diverge from the client log".into())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ow_simhw::machine::MachineConfig;

    fn boot() -> Kernel {
        let machine = ow_kernel::standard_machine(MachineConfig {
            ram_frames: 8192,
            cpus: 2,
            tlb_entries: 64,
            tlb_tagged: true,
            cost: ow_simhw::CostModel::zero_io(),
        });
        let mut reg = ProgramRegistry::new();
        register(&mut reg);
        Kernel::boot_cold(machine, ow_kernel::KernelConfig::default(), reg).unwrap()
    }

    #[test]
    fn request_codec_round_trip() {
        let r = Request {
            op: OP_UPDATE,
            table: "t1".into(),
            idx: 42,
            row: vec![7u8; 64],
        };
        assert_eq!(Request::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn workload_matches_shadow() {
        let mut k = boot();
        let mut w = MiniDbWorkload::new(5);
        let pid = w.setup(&mut k);
        for _ in 0..30 {
            w.drive(&mut k, pid);
        }
        assert_eq!(w.verify(&mut k, pid), VerifyResult::Intact);
        // Data actually accumulated.
        let db = read_db(&mut k, pid).unwrap();
        assert!(db.values().map(|r| r.len()).sum::<usize>() > 0);
    }

    #[test]
    fn dump_and_reload_preserves_tables() {
        let mut k = boot();
        let mut w = MiniDbWorkload::new(6);
        let pid = w.setup(&mut k);
        for _ in 0..10 {
            w.drive(&mut k, pid);
        }
        let before = read_db(&mut k, pid).unwrap();

        // Run the crash procedure by hand, then a fresh start with the dump.
        let mut db = MiniDb;
        let action = {
            let mut api = ow_kernel::syscall::KernelApi::new(&mut k, pid);
            // A non-zero failed mask (lost sockets) forces the dump path;
            // failed == 0 takes the §3.4 continue-in-place route instead.
            db.crash_procedure(&mut api, 1)
        };
        let CrashAction::SaveAndRestart(args) = action else {
            panic!("expected SaveAndRestart");
        };
        assert_eq!(args, vec![DUMP_FILE.to_string()]);

        let image = k.registry.get("mysqld").unwrap();
        let mut spec = SpawnSpec::new("mysqld", Box::new(MiniDb));
        spec.heap_pages = 16;
        k.reap(pid).unwrap();
        let pid2 = k.spawn(spec).unwrap();
        let fresh = {
            let mut api = ow_kernel::syscall::KernelApi::new(&mut k, pid2);
            (image.fresh)(&mut api, &args)
        };
        k.proc_mut(pid2).unwrap().program = Some(fresh);
        let after = read_db(&mut k, pid2).unwrap();
        assert_eq!(before, after);
    }
}
