//! The Apache/PHP web application server analog (§5.3).
//!
//! Web applications keep session data (shopping carts, credentials) across
//! page accesses. PHP's session code stores it in **shared memory**, in a
//! hash table whose address sits in a global variable. Persisting sessions
//! to disk or a database costs ≥25% throughput — so instead the paper adds
//! a crash procedure to the PHP module (110 new + 5 modified lines) that
//! saves each element of the session table to a file and restarts Apache,
//! which then re-initializes the table from that file. No PHP application
//! needs changing.
//!
//! Wire protocol: `[op u8][sid 8B][len 8B][data 112B]`, op 1=SET 2=DEL.

use crate::workload::{pid_of, AppMeta, BatchShadow, VerifyResult, WorkRng, Workload};
use ow_kernel::{
    layout::oflags,
    program::{CrashAction, Program, ProgramRegistry, StepResult, UserApi, PROG_STATE_VADDR},
    Errno, Kernel, SpawnSpec,
};
use std::collections::BTreeMap;

/// Global cell: address of the session table (PHP's global variable).
pub const TABLE_CELL: u64 = PROG_STATE_VADDR + 8;
/// Global cell: server socket id.
pub const SID_CELL: u64 = PROG_STATE_VADDR + 16;

/// Shared-memory segment key for the session store.
pub const SHM_KEY: u64 = 0x5e55;
/// Where the segment is attached.
pub const SHM_VADDR: u64 = 0x40_0000;
/// Segment size in pages (1024 slots of 128 bytes = 32 pages).
pub const SHM_PAGES: u64 = 32;

/// Session slots in the table.
pub const SLOTS: u64 = 1024;
/// Bytes per slot: sid(8) + len(8) + data(112).
pub const SLOT_SIZE: u64 = 128;
/// Payload bytes per session.
pub const DATA_SIZE: usize = 112;

/// File written by the crash procedure.
pub const SESSION_FILE: &str = "/sessions.dat";

/// Document-root cache region (static files served from memory).
pub const DOCROOT_VADDR: u64 = 0x60_0000;
/// Pages in the docroot cache.
pub const DOCROOT_PAGES: u64 = 128;

const OP_SET: u8 = 1;
const OP_DEL: u8 = 2;

/// One session request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// 1 = set, 2 = delete.
    pub op: u8,
    /// Session id (nonzero).
    pub sid: u64,
    /// Serialized session data.
    pub data: Vec<u8>,
}

impl Request {
    /// Encodes to the wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![self.op];
        out.extend_from_slice(&self.sid.to_le_bytes());
        out.extend_from_slice(&(self.data.len() as u64).to_le_bytes());
        let mut d = self.data.clone();
        d.resize(DATA_SIZE, 0);
        out.extend_from_slice(&d);
        out
    }

    /// Decodes from the wire format.
    pub fn decode(buf: &[u8]) -> Option<Request> {
        if buf.len() < 17 + DATA_SIZE {
            return None;
        }
        let len = (u64::from_le_bytes(buf[9..17].try_into().ok()?) as usize).min(DATA_SIZE);
        Some(Request {
            op: buf[0],
            sid: u64::from_le_bytes(buf[1..9].try_into().ok()?),
            data: buf[17..17 + len].to_vec(),
        })
    }
}

fn slot_addr(i: u64) -> u64 {
    SHM_VADDR + i * SLOT_SIZE
}

fn find_slot(api: &mut dyn UserApi, sid: u64) -> Result<Option<u64>, Errno> {
    // Open-addressed: start at hash(sid), linear probe.
    let start = sid % SLOTS;
    for off in 0..SLOTS {
        let i = (start + off) % SLOTS;
        let cur = api.mem_read_u64(slot_addr(i))?;
        if cur == sid {
            return Ok(Some(i));
        }
        if cur == 0 {
            return Ok(None);
        }
    }
    Ok(None)
}

fn set_session(api: &mut dyn UserApi, sid: u64, data: &[u8]) -> Result<(), Errno> {
    let start = sid % SLOTS;
    for off in 0..SLOTS {
        let i = (start + off) % SLOTS;
        let cur = api.mem_read_u64(slot_addr(i))?;
        if cur == sid || cur == 0 {
            api.mem_write_u64(slot_addr(i), sid)?;
            api.mem_write_u64(slot_addr(i) + 8, data.len() as u64)?;
            let mut d = data.to_vec();
            d.resize(DATA_SIZE, 0);
            api.mem_write(slot_addr(i) + 16, &d)?;
            return Ok(());
        }
    }
    Err(Errno::NoMem)
}

fn del_session(api: &mut dyn UserApi, sid: u64) -> Result<(), Errno> {
    if let Some(i) = find_slot(api, sid)? {
        // Tombstone-free deletion is fiddly with linear probing; mark the
        // slot with a tombstone sid (u64::MAX) that lookups skip.
        api.mem_write_u64(slot_addr(i), u64::MAX)?;
        api.mem_write_u64(slot_addr(i) + 8, 0)?;
    }
    Ok(())
}

/// Reads every live session from the table.
fn all_sessions(api: &mut dyn UserApi) -> Result<Vec<(u64, Vec<u8>)>, Errno> {
    let mut out = Vec::new();
    for i in 0..SLOTS {
        let sid = api.mem_read_u64(slot_addr(i))?;
        if sid != 0 && sid != u64::MAX {
            let len = (api.mem_read_u64(slot_addr(i) + 8)? as usize).min(DATA_SIZE);
            let mut d = vec![0u8; len];
            if len > 0 {
                api.mem_read(slot_addr(i) + 16, &mut d)?;
            }
            out.push((sid, d));
        }
    }
    Ok(out)
}

/// The web application server program.
pub struct WebServ;

impl WebServ {
    fn ensure_socket(api: &mut dyn UserApi) -> Result<u32, Errno> {
        let sid = api.mem_read_u64(SID_CELL)?;
        if sid != u64::MAX {
            return Ok(sid as u32);
        }
        let new = api.socket()?;
        api.mem_write_u64(SID_CELL, new as u64)?;
        Ok(new)
    }
}

impl Program for WebServ {
    fn step(&mut self, api: &mut dyn UserApi) -> StepResult {
        let sock = match Self::ensure_socket(api) {
            Ok(s) => s,
            Err(_) => return StepResult::Running,
        };
        let mut buf = vec![0u8; 17 + DATA_SIZE];
        match api.sock_recv(sock, &mut buf) {
            Ok(_) => {
                if let Some(req) = Request::decode(&buf) {
                    // Request parsing and PHP page execution: compute plus
                    // a walk over the session table working set.
                    api.compute(700);
                    crate::memio::churn(api, DOCROOT_VADDR, 128, 16, req.sid);
                    crate::memio::churn(api, SHM_VADDR, 32, 6, req.sid);
                    let ok = match req.op {
                        OP_SET => set_session(api, req.sid, &req.data).is_ok(),
                        OP_DEL => del_session(api, req.sid).is_ok(),
                        _ => false,
                    };
                    let _ = api.sock_send(sock, if ok { b"200" } else { b"500" });
                }
                StepResult::Running
            }
            Err(Errno::WouldBlock) => {
                api.compute(3);
                StepResult::Running
            }
            Err(Errno::Restart) => StepResult::Running,
            Err(_) => {
                let _ = api.mem_write_u64(SID_CELL, u64::MAX);
                StepResult::Running
            }
        }
    }

    fn save_state(&mut self, _api: &mut dyn UserApi) {}

    /// §5.3's crash procedure: walk the session hash table (through its
    /// global address) and save each element to a file; Apache restarts and
    /// re-populates the table from it. When `failed == 0` — every resource
    /// class, sockets included, survived resurrection — it takes §3.4's
    /// advanced route instead: drop the in-flight request and keep serving
    /// from the live session table, skipping the restart entirely.
    fn crash_procedure(&mut self, api: &mut dyn UserApi, failed: u32) -> CrashAction {
        if failed == 0 {
            let _ = api.mem_write_u64(SID_CELL, u64::MAX);
            return CrashAction::Continue;
        }
        // Serializing the session table dominates the crash procedure.
        api.compute(200_000_000);
        let saved = (|| -> Result<(), Errno> {
            let sessions = all_sessions(api)?;
            let fd = api.open(SESSION_FILE, oflags::WRITE | oflags::CREATE | oflags::TRUNC)?;
            api.write(fd, &(sessions.len() as u64).to_le_bytes())?;
            for (sid, data) in sessions {
                api.write(fd, &sid.to_le_bytes())?;
                api.write(fd, &(data.len() as u64).to_le_bytes())?;
                let mut d = data;
                d.resize(DATA_SIZE, 0);
                api.write(fd, &d)?;
            }
            api.fsync(fd)?;
            api.close(fd)?;
            Ok(())
        })();
        match saved {
            Ok(()) => CrashAction::SaveAndRestart(vec![SESSION_FILE.to_string()]),
            Err(_) => CrashAction::GiveUp,
        }
    }
}

fn load_sessions(api: &mut dyn UserApi, path: &str) -> Result<(), Errno> {
    let fd = api.open(path, oflags::READ)?;
    let mut n8 = [0u8; 8];
    if api.read(fd, &mut n8)? != 8 {
        api.close(fd)?;
        return Ok(());
    }
    let n = u64::from_le_bytes(n8).min(SLOTS);
    for _ in 0..n {
        api.read(fd, &mut n8)?;
        let sid = u64::from_le_bytes(n8);
        api.read(fd, &mut n8)?;
        let len = (u64::from_le_bytes(n8) as usize).min(DATA_SIZE);
        let mut d = vec![0u8; DATA_SIZE];
        api.read(fd, &mut d)?;
        d.truncate(len);
        set_session(api, sid, &d)?;
    }
    api.close(fd)
}

/// Registers the web server with the program registry.
pub fn register(r: &mut ProgramRegistry) {
    r.register(
        "httpd",
        |api, args| {
            // Server start (config parse, module init, worker pool) — a few
            // simulated seconds, as in Table 6.
            api.compute(150_000_000);
            crate::memio::map_libraries(api, 14);
            let _ = api.mmap_anon(DOCROOT_VADDR, DOCROOT_PAGES);
            let _ = api.shm_attach(SHM_KEY, SHM_PAGES, SHM_VADDR);
            let _ = api.mem_write_u64(TABLE_CELL, SHM_VADDR);
            let _ = api.mem_write_u64(SID_CELL, u64::MAX);
            if let Some(path) = args.first() {
                let _ = load_sessions(api, path);
            }
            let _ = api.register_crash_proc();
            Box::new(WebServ)
        },
        |_api| Box::new(WebServ),
    );
}

/// Table 2 row.
pub fn meta() -> AppMeta {
    AppMeta {
        name: "Apache",
        crash_procedure: "Required",
        modified_lines: 115,
    }
}

/// Shadow session store.
pub type SessionState = BTreeMap<u64, Vec<u8>>;

fn shadow_apply(s: &mut SessionState, req: &Request) {
    match req.op {
        OP_SET => {
            s.insert(req.sid, req.data.clone());
        }
        OP_DEL => {
            s.remove(&req.sid);
        }
        _ => {}
    }
}

/// Reads the session store from user memory.
pub fn read_sessions(k: &mut Kernel, pid: u64) -> Option<SessionState> {
    let mut out = SessionState::new();
    for i in 0..SLOTS {
        let mut head = [0u8; 16];
        k.user_read(pid, slot_addr(i), &mut head).ok()?;
        let sid = u64::from_le_bytes(head[0..8].try_into().unwrap());
        if sid != 0 && sid != u64::MAX {
            let len = (u64::from_le_bytes(head[8..16].try_into().unwrap()) as usize).min(DATA_SIZE);
            let mut d = vec![0u8; len];
            if len > 0 {
                k.user_read(pid, slot_addr(i) + 16, &mut d).ok()?;
            }
            out.insert(sid, d);
        }
    }
    Some(out)
}

/// The Apache/PHP workload: clients creating, updating and abandoning
/// sessions.
pub struct WebServWorkload {
    rng: WorkRng,
    shadow: BatchShadow<SessionState>,
}

impl WebServWorkload {
    /// Creates the workload with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        WebServWorkload {
            rng: WorkRng::new(seed),
            shadow: BatchShadow::new(SessionState::new()),
        }
    }

    fn gen_request(&mut self) -> Request {
        // Keep the sid space small so sessions get updated and deleted.
        let sid = 1 + self.rng.below(64);
        let op = if self.rng.below(10) < 8 {
            OP_SET
        } else {
            OP_DEL
        };
        let len = 16 + self.rng.below(64) as usize;
        let data = (0..len).map(|_| self.rng.printable()).collect();
        Request { op, sid, data }
    }

    fn server_sid(k: &mut Kernel, pid: u64) -> Option<u32> {
        let mut b = [0u8; 8];
        k.user_read(pid, SID_CELL, &mut b).ok()?;
        let sid = u64::from_le_bytes(b);
        if sid == u64::MAX {
            None
        } else {
            Some(sid as u32)
        }
    }
}

impl Workload for WebServWorkload {
    fn name(&self) -> &'static str {
        "httpd"
    }

    fn setup(&mut self, k: &mut Kernel) -> u64 {
        let image = k.registry.get("httpd").expect("httpd registered");
        let mut spec = SpawnSpec::new("httpd", Box::new(WebServ));
        spec.heap_pages = 16;
        let pid = k.spawn(spec).expect("spawn httpd");
        let fresh = {
            let mut api = ow_kernel::syscall::KernelApi::new(k, pid);
            (image.fresh)(&mut api, &[])
        };
        k.proc_mut(pid).expect("pid").program = Some(fresh);
        for _ in 0..4 {
            k.run_step();
        }
        pid
    }

    fn drive(&mut self, k: &mut Kernel, pid: u64) {
        let Some(sid) = Self::server_sid(k, pid) else {
            for _ in 0..4 {
                k.run_step();
            }
            return;
        };
        let reqs: Vec<Request> = (0..4).map(|_| self.gen_request()).collect();
        self.shadow.begin_batch(
            reqs.iter()
                .cloned()
                .map(|r| {
                    Box::new(move |s: &mut SessionState| shadow_apply(s, &r))
                        as Box<dyn Fn(&mut SessionState)>
                })
                .collect(),
        );
        for r in &reqs {
            let _ = k.sock_deliver(pid, sid, &r.encode());
        }
        for _ in 0..64 {
            if k.panicked.is_some() {
                return;
            }
            k.run_step();
            let drained = k
                .proc(pid)
                .ok()
                .and_then(|p| p.sockets.iter().find(|s| s.sid == sid))
                .map(|s| s.inbox.is_empty())
                .unwrap_or(true);
            if drained {
                break;
            }
        }
        if k.panicked.is_none() {
            for _ in 0..2 {
                k.run_step();
            }
            let _ = k.sock_drain(pid, sid);
            self.shadow.commit();
        }
    }

    fn verify(&mut self, k: &mut Kernel, _pid: u64) -> VerifyResult {
        let Some(pid) = pid_of(k, "httpd") else {
            return VerifyResult::Missing;
        };
        let Some(state) = read_sessions(k, pid) else {
            return VerifyResult::Missing;
        };
        if self.shadow.matches(|s| *s == state) {
            VerifyResult::Intact
        } else {
            VerifyResult::Corrupted("session store diverges from the client log".into())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ow_simhw::machine::MachineConfig;

    fn boot() -> Kernel {
        let machine = ow_kernel::standard_machine(MachineConfig {
            ram_frames: 8192,
            cpus: 2,
            tlb_entries: 64,
            tlb_tagged: true,
            cost: ow_simhw::CostModel::zero_io(),
        });
        let mut reg = ProgramRegistry::new();
        register(&mut reg);
        Kernel::boot_cold(machine, ow_kernel::KernelConfig::default(), reg).unwrap()
    }

    #[test]
    fn sessions_accumulate_and_match_shadow() {
        let mut k = boot();
        let mut w = WebServWorkload::new(9);
        let pid = w.setup(&mut k);
        for _ in 0..30 {
            w.drive(&mut k, pid);
        }
        assert_eq!(w.verify(&mut k, pid), VerifyResult::Intact);
        let sess = read_sessions(&mut k, pid).unwrap();
        assert!(!sess.is_empty());
    }

    #[test]
    fn delete_removes_sessions() {
        let mut k = boot();
        let mut w = WebServWorkload::new(10);
        let pid = w.setup(&mut k);
        for _ in 0..4 {
            k.run_step();
        }
        let sid = WebServWorkload::server_sid(&mut k, pid).unwrap();
        k.sock_deliver(
            pid,
            sid,
            &Request {
                op: OP_SET,
                sid: 5,
                data: b"cart".to_vec(),
            }
            .encode(),
        )
        .unwrap();
        k.sock_deliver(
            pid,
            sid,
            &Request {
                op: OP_DEL,
                sid: 5,
                data: vec![],
            }
            .encode(),
        )
        .unwrap();
        for _ in 0..16 {
            k.run_step();
        }
        let sess = read_sessions(&mut k, pid).unwrap();
        assert!(sess.is_empty());
    }
}
