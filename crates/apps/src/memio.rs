//! Structured reads/writes of application data in simulated user memory.
//!
//! Programs must keep *all* of their data in their simulated address space
//! (that is what resurrection preserves). These helpers give the apps a
//! small typed layer over [`UserApi::mem_read`]/[`UserApi::mem_write`]:
//! length-prefixed byte strings and u64 cells.

use ow_kernel::{Errno, UserApi};

/// Reads a `u64` cell.
pub fn get_u64(api: &mut dyn UserApi, vaddr: u64) -> Result<u64, Errno> {
    api.mem_read_u64(vaddr)
}

/// Writes a `u64` cell.
pub fn set_u64(api: &mut dyn UserApi, vaddr: u64, v: u64) -> Result<(), Errno> {
    api.mem_write_u64(vaddr, v)
}

/// Writes a length-prefixed byte string (8-byte LE length, then bytes).
pub fn set_bytes(api: &mut dyn UserApi, vaddr: u64, data: &[u8]) -> Result<(), Errno> {
    api.mem_write_u64(vaddr, data.len() as u64)?;
    if !data.is_empty() {
        api.mem_write(vaddr + 8, data)?;
    }
    Ok(())
}

/// Reads a length-prefixed byte string, bounded by `max_len`.
pub fn get_bytes(api: &mut dyn UserApi, vaddr: u64, max_len: usize) -> Result<Vec<u8>, Errno> {
    let len = api.mem_read_u64(vaddr)? as usize;
    if len > max_len {
        return Err(Errno::Inval);
    }
    let mut buf = vec![0u8; len];
    if len > 0 {
        api.mem_read(vaddr + 8, &mut buf)?;
    }
    Ok(buf)
}

/// Serialized size of a length-prefixed byte string.
pub fn bytes_size(data_len: usize) -> u64 {
    8 + data_len as u64
}

/// Base virtual address of the shared-library mapping area.
pub const LIB_BASE: u64 = 0x0800_0000;
/// Stride between library mappings (one per 2 MiB slot, so each library
/// occupies its own second-level page table, as sparse mappings do on real
/// systems).
pub const LIB_STRIDE: u64 = 0x20_0000;
/// Pages per mapped library.
pub const LIB_PAGES: u64 = 4;

/// Maps `count` shared-library regions into the address space and touches
/// them (relocation processing), as the dynamic linker would at startup.
///
/// Real processes' page tables are dominated by such scattered mappings —
/// this is what makes Table 4's "page tables" share grow with application
/// size. Library counts per app mirror their real linkage footprints
/// (editors link a handful of libraries; MySQL/Apache dozens).
pub fn map_libraries(api: &mut dyn UserApi, count: u64) {
    for i in 0..count {
        let vaddr = LIB_BASE + i * LIB_STRIDE;
        if api.mmap_anon(vaddr, LIB_PAGES).is_ok() {
            // Touch the first two pages (text + GOT after relocation).
            let _ = api.mem_write_u64(vaddr, 0x7f45_4c46 + i);
            let _ = api.mem_write_u64(vaddr + 4096, i);
        }
    }
}

/// Walks `pages` pages of the working set starting at `base`, one read per
/// page — the memory-access profile of real request processing (buffer-pool
/// lookups, hash probes, string handling). This is what gives workloads a
/// baseline TLB-miss rate for Table 3's "increase in TLB misses" column to
/// be measured against.
pub fn churn(api: &mut dyn UserApi, base: u64, window_pages: u64, count: u64, salt: u64) {
    for i in 0..count {
        let page = (i.wrapping_mul(13).wrapping_add(salt)) % window_pages.max(1);
        let _ = api.mem_read_u64(base + page * 4096);
    }
}

/// A trivial bump allocator whose cursor lives in user memory, so the
/// allocation state itself survives resurrection.
#[derive(Debug, Clone, Copy)]
pub struct UserBump {
    /// Address of the cursor cell.
    pub cursor_cell: u64,
    /// First allocatable address.
    pub base: u64,
    /// One past the last allocatable address.
    pub limit: u64,
}

impl UserBump {
    /// Initializes the cursor (fresh start only).
    pub fn init(&self, api: &mut dyn UserApi) -> Result<(), Errno> {
        api.mem_write_u64(self.cursor_cell, self.base)
    }

    /// Allocates `size` bytes (8-aligned), or `Errno::NoMem`.
    pub fn alloc(&self, api: &mut dyn UserApi, size: u64) -> Result<u64, Errno> {
        let size = size.max(1).div_ceil(8) * 8;
        let cur = api.mem_read_u64(self.cursor_cell)?;
        if cur < self.base || cur + size > self.limit {
            return Err(Errno::NoMem);
        }
        api.mem_write_u64(self.cursor_cell, cur + size)?;
        Ok(cur)
    }
}
