//! The BLCR checkpointing system analog (§5.4).
//!
//! BLCR checkpoints unmodified applications. The paper modifies it to write
//! checkpoints **to memory** instead of disk (≈10× faster) and relies on
//! Otherworld to protect those in-memory checkpoints from kernel crashes —
//! no crash procedure needed, zero application changes.
//!
//! The test application walks over a large data region rewriting pages with
//! an iteration-stamped pattern; every `CKPT_PERIOD` iterations BLCR copies
//! the whole region into the checkpoint area (memory mode) or a file (disk
//! mode).

use crate::workload::{pid_of, AppMeta, BatchShadow, VerifyResult, Workload};
use ow_kernel::{
    layout::oflags,
    program::{Program, ProgramRegistry, StepResult, UserApi, PROG_STATE_VADDR},
    Errno, Kernel, SpawnSpec,
};
use ow_simhw::PAGE_SIZE;

/// Header cells.
const ITER_CELL: u64 = PROG_STATE_VADDR + 8;
/// Page cursor within the current iteration.
const CURSOR_CELL: u64 = PROG_STATE_VADDR + 16;
/// Iteration captured by the last checkpoint (`u64::MAX` = none).
const CKPT_ITER_CELL: u64 = PROG_STATE_VADDR + 24;
/// Number of data pages.
const PAGES_CELL: u64 = PROG_STATE_VADDR + 32;
/// Checkpoint mode: 0 = memory, 1 = disk.
const MODE_CELL: u64 = PROG_STATE_VADDR + 40;

/// Data region (the application's working set).
pub const DATA_VADDR: u64 = 0x40_0000;
/// In-memory checkpoint region.
pub const CKPT_VADDR: u64 = 0x1000_0000;
/// Disk checkpoint file.
pub const CKPT_FILE: &str = "/blcr.ckpt";

/// Default data pages (the paper's test app had an 800 MB footprint;
/// scaled to the simulator).
pub const DEFAULT_PAGES: u64 = 64;
/// Checkpoint every this many full passes over the data.
pub const CKPT_PERIOD: u64 = 4;

/// Checkpoint destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CkptMode {
    /// In-memory checkpoint (the paper's modification).
    Memory,
    /// Unmodified BLCR: checkpoint to disk.
    Disk,
}

/// The checkpointed test application (BLCR wraps it transparently).
pub struct Blcr;

/// The stamp written into every u64 of page `p` at iteration `i`.
pub fn stamp(iter: u64, page: u64) -> u64 {
    iter.wrapping_mul(0x1_0000)
        .wrapping_add(page)
        .wrapping_mul(0x9e37_79b9)
        | 1
}

impl Blcr {
    fn checkpoint(api: &mut dyn UserApi, pages: u64, mode: u64, iter: u64) -> Result<(), Errno> {
        let mut page = vec![0u8; PAGE_SIZE];
        if mode == 0 {
            // In-memory checkpoint: copy the data region into the
            // checkpoint region.
            for p in 0..pages {
                api.mem_read(DATA_VADDR + p * PAGE_SIZE as u64, &mut page)?;
                api.mem_write(CKPT_VADDR + p * PAGE_SIZE as u64, &page)?;
            }
        } else {
            // Overwrite in place (BLCR preallocates the checkpoint file);
            // re-truncating every period would re-pay block allocation.
            let fd = api.open(CKPT_FILE, oflags::WRITE | oflags::CREATE)?;
            api.seek(fd, 0)?;
            for p in 0..pages {
                api.mem_read(DATA_VADDR + p * PAGE_SIZE as u64, &mut page)?;
                api.write(fd, &page)?;
            }
            api.fsync(fd)?;
            api.close(fd)?;
        }
        api.mem_write_u64(CKPT_ITER_CELL, iter)
    }

    /// Restores the data region from the checkpoint (public so examples and
    /// verification can exercise the restore path).
    pub fn restore(api: &mut dyn UserApi) -> Result<u64, Errno> {
        let pages = api.mem_read_u64(PAGES_CELL)?;
        let mode = api.mem_read_u64(MODE_CELL)?;
        let ckpt_iter = api.mem_read_u64(CKPT_ITER_CELL)?;
        if ckpt_iter == u64::MAX {
            return Err(Errno::NoEnt);
        }
        let mut page = vec![0u8; PAGE_SIZE];
        if mode == 0 {
            for p in 0..pages {
                api.mem_read(CKPT_VADDR + p * PAGE_SIZE as u64, &mut page)?;
                api.mem_write(DATA_VADDR + p * PAGE_SIZE as u64, &page)?;
            }
        } else {
            let fd = api.open(CKPT_FILE, oflags::READ)?;
            for p in 0..pages {
                api.read(fd, &mut page)?;
                api.mem_write(DATA_VADDR + p * PAGE_SIZE as u64, &page)?;
            }
            api.close(fd)?;
        }
        Ok(ckpt_iter)
    }
}

impl Program for Blcr {
    fn step(&mut self, api: &mut dyn UserApi) -> StepResult {
        let pages = match api.mem_read_u64(PAGES_CELL) {
            Ok(p) if p > 0 => p,
            _ => return StepResult::Running,
        };
        let iter = api.mem_read_u64(ITER_CELL).unwrap_or(0);
        let cursor = api.mem_read_u64(CURSOR_CELL).unwrap_or(0);

        // Rewrite one page with the current iteration's pattern.
        let val = stamp(iter, cursor);
        let mut page = vec![0u8; PAGE_SIZE];
        for (i, chunk) in page.chunks_exact_mut(8).enumerate() {
            chunk.copy_from_slice(&val.wrapping_add(i as u64).to_le_bytes());
        }
        let _ = api.mem_write(DATA_VADDR + cursor * PAGE_SIZE as u64, &page);
        api.compute(4);

        if cursor + 1 < pages {
            let _ = api.mem_write_u64(CURSOR_CELL, cursor + 1);
        } else {
            let next = iter + 1;
            let _ = api.mem_write_u64(CURSOR_CELL, 0);
            let _ = api.mem_write_u64(ITER_CELL, next);
            if next.is_multiple_of(CKPT_PERIOD) {
                let mode = api.mem_read_u64(MODE_CELL).unwrap_or(0);
                let _ = Self::checkpoint(api, pages, mode, next);
            }
        }
        StepResult::Running
    }

    fn save_state(&mut self, _api: &mut dyn UserApi) {}
}

/// Registers BLCR with the program registry. `args`: `[pages, mode]` where
/// mode is `"disk"` or `"memory"` (default).
pub fn register(r: &mut ProgramRegistry) {
    r.register(
        "blcr",
        |api, args| {
            let pages = args
                .first()
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(DEFAULT_PAGES);
            let mode = match args.get(1).map(String::as_str) {
                Some("disk") => 1u64,
                _ => 0u64,
            };
            crate::memio::map_libraries(api, 16);
            let _ = api.mmap_anon(DATA_VADDR, pages);
            if mode == 0 {
                let _ = api.mmap_anon(CKPT_VADDR, pages);
            }
            let _ = api.mem_write_u64(ITER_CELL, 0);
            let _ = api.mem_write_u64(CURSOR_CELL, 0);
            let _ = api.mem_write_u64(CKPT_ITER_CELL, u64::MAX);
            let _ = api.mem_write_u64(PAGES_CELL, pages);
            let _ = api.mem_write_u64(MODE_CELL, mode);
            Box::new(Blcr)
        },
        |_api| Box::new(Blcr),
    );
}

/// Table 2 row.
pub fn meta() -> AppMeta {
    AppMeta {
        name: "BLCR",
        crash_procedure: "Not required",
        modified_lines: 0,
    }
}

/// Shadow of the application+checkpoint state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlcrState {
    /// Iteration stamp of every data page.
    pub page_iters: Vec<u64>,
    /// Iteration of the last checkpoint (`None` = never).
    pub ckpt_iter: Option<u64>,
    iter: u64,
    cursor: u64,
}

impl BlcrState {
    fn new(pages: u64) -> Self {
        BlcrState {
            page_iters: vec![u64::MAX; pages as usize],
            ckpt_iter: None,
            iter: 0,
            cursor: 0,
        }
    }

    fn step(&mut self) {
        self.page_iters[self.cursor as usize] = self.iter;
        if self.cursor + 1 < self.page_iters.len() as u64 {
            self.cursor += 1;
        } else {
            self.cursor = 0;
            self.iter += 1;
            if self.iter.is_multiple_of(CKPT_PERIOD) {
                self.ckpt_iter = Some(self.iter);
            }
        }
    }
}

/// The BLCR workload: run the test app, checkpointing periodically.
pub struct BlcrWorkload {
    shadow: BatchShadow<BlcrState>,
    /// Data pages.
    pub pages: u64,
    /// Checkpoint destination.
    pub mode: CkptMode,
}

impl BlcrWorkload {
    /// Creates the workload.
    pub fn new(pages: u64, mode: CkptMode) -> Self {
        BlcrWorkload {
            shadow: BatchShadow::new(BlcrState::new(pages)),
            pages,
            mode,
        }
    }
}

/// Reads a data page's leading stamp (test/example helper).
pub fn page_stamp(k: &mut Kernel, pid: u64, page: u64) -> Option<u64> {
    let mut b = [0u8; 8];
    k.user_read(pid, DATA_VADDR + page * PAGE_SIZE as u64, &mut b)
        .ok()?;
    Some(u64::from_le_bytes(b))
}

impl Workload for BlcrWorkload {
    fn name(&self) -> &'static str {
        "blcr"
    }

    fn setup(&mut self, k: &mut Kernel) -> u64 {
        let image = k.registry.get("blcr").expect("blcr registered");
        let mut spec = SpawnSpec::new("blcr", Box::new(Blcr));
        spec.heap_pages = 16;
        let pid = k.spawn(spec).expect("spawn blcr");
        let args = vec![
            self.pages.to_string(),
            match self.mode {
                CkptMode::Memory => "memory".to_string(),
                CkptMode::Disk => "disk".to_string(),
            },
        ];
        let fresh = {
            let mut api = ow_kernel::syscall::KernelApi::new(k, pid);
            (image.fresh)(&mut api, &args)
        };
        k.proc_mut(pid).expect("pid").program = Some(fresh);
        pid
    }

    fn drive(&mut self, k: &mut Kernel, _pid: u64) {
        // One batch = one scheduler step = one page rewrite.
        self.shadow
            .begin_batch(vec![Box::new(|s: &mut BlcrState| s.step())]);
        if k.panicked.is_some() {
            return;
        }
        k.run_step();
        if k.panicked.is_none() {
            self.shadow.commit();
        }
    }

    fn verify(&mut self, k: &mut Kernel, _pid: u64) -> VerifyResult {
        // The application is autonomous (it advances on every scheduler
        // step), so verification is *self-validating*: read the iteration
        // and cursor counters out of memory, bound them against the driven
        // progress, and check that every page carries exactly the pattern
        // those counters imply. Any wild write into the data, the counters
        // or the checkpoint breaks the invariant.
        let Some(pid) = pid_of(k, "blcr") else {
            return VerifyResult::Missing;
        };
        let cell = |k: &mut Kernel, addr: u64| -> Option<u64> {
            let mut b = [0u8; 8];
            k.user_read(pid, addr, &mut b).ok()?;
            Some(u64::from_le_bytes(b))
        };
        let (Some(iter), Some(cursor), Some(pages), Some(ckpt_iter)) = (
            cell(k, ITER_CELL),
            cell(k, CURSOR_CELL),
            cell(k, PAGES_CELL),
            cell(k, CKPT_ITER_CELL),
        ) else {
            return VerifyResult::Missing;
        };
        if pages != self.pages || cursor >= pages {
            return VerifyResult::Corrupted("control cells implausible".into());
        }
        // Progress must be within the window the driver observed (extra
        // settle steps after resurrection are allowed for).
        let driven = self.shadow.committed.iter;
        if iter + 2 < driven || iter > driven + 2 {
            return VerifyResult::Corrupted(format!(
                "iteration counter {iter} outside driven window {driven}"
            ));
        }
        // Check the full pattern of every page (the paper restores from
        // the checkpoint and verifies all application data).
        let mut got = vec![0u8; PAGE_SIZE];
        let mut want = vec![0u8; PAGE_SIZE];
        for p in 0..pages {
            let expect_iter = if p < cursor {
                Some(iter)
            } else if iter > 0 {
                Some(iter - 1)
            } else {
                None
            };
            if k.user_read(pid, DATA_VADDR + p * PAGE_SIZE as u64, &mut got)
                .is_err()
            {
                return VerifyResult::Missing;
            }
            match expect_iter {
                Some(it) => {
                    let val = stamp(it, p);
                    for (i, chunk) in want.chunks_exact_mut(8).enumerate() {
                        chunk.copy_from_slice(&val.wrapping_add(i as u64).to_le_bytes());
                    }
                }
                None => want.fill(0),
            }
            if got != want {
                return VerifyResult::Corrupted(format!("data page {p} diverges"));
            }
        }
        // In memory mode a completed checkpoint must hold the pattern of
        // its capture iteration.
        if ckpt_iter != u64::MAX && self.mode == CkptMode::Memory && ckpt_iter > 0 {
            for p in 0..pages {
                if k.user_read(pid, CKPT_VADDR + p * PAGE_SIZE as u64, &mut got)
                    .is_err()
                {
                    return VerifyResult::Missing;
                }
                let val = stamp(ckpt_iter - 1, p);
                for (i, chunk) in want.chunks_exact_mut(8).enumerate() {
                    chunk.copy_from_slice(&val.wrapping_add(i as u64).to_le_bytes());
                }
                if got != want {
                    return VerifyResult::Corrupted(format!("checkpoint page {p} diverges"));
                }
            }
        }
        VerifyResult::Intact
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ow_simhw::machine::MachineConfig;

    fn boot() -> Kernel {
        let machine = ow_kernel::standard_machine(MachineConfig {
            ram_frames: 8192,
            cpus: 2,
            tlb_entries: 64,
            tlb_tagged: true,
            cost: ow_simhw::CostModel::zero_io(),
        });
        let mut reg = ProgramRegistry::new();
        register(&mut reg);
        Kernel::boot_cold(machine, ow_kernel::KernelConfig::default(), reg).unwrap()
    }

    #[test]
    fn pattern_and_shadow_agree() {
        let mut k = boot();
        let mut w = BlcrWorkload::new(8, CkptMode::Memory);
        let pid = w.setup(&mut k);
        for _ in 0..50 {
            w.drive(&mut k, pid);
        }
        assert_eq!(w.verify(&mut k, pid), VerifyResult::Intact);
    }

    #[test]
    fn memory_checkpoint_restores() {
        let mut k = boot();
        let mut w = BlcrWorkload::new(4, CkptMode::Memory);
        let pid = w.setup(&mut k);
        // 4 pages * 4 iterations = 16 steps to the first checkpoint; run
        // past it and scribble, then restore.
        for _ in 0..20 {
            w.drive(&mut k, pid);
        }
        let restored_iter = {
            let mut api = ow_kernel::syscall::KernelApi::new(&mut k, pid);
            Blcr::restore(&mut api).expect("checkpoint exists")
        };
        assert_eq!(restored_iter % CKPT_PERIOD, 0);
        // Every page now carries the checkpointed iteration's stamp
        // (pages written during iteration `restored_iter` onward were
        // captured mid-pass; page 0..cursor hold iter, rest iter-1 — at a
        // checkpoint boundary cursor is 0 so all pages hold iter-1's
        // pattern stamped during pass `restored_iter - 1`).
        let got = page_stamp(&mut k, pid, 0).unwrap();
        assert_eq!(got, stamp(restored_iter - 1, 0));
    }

    #[test]
    fn disk_checkpoint_restores() {
        let mut k = boot();
        let mut w = BlcrWorkload::new(4, CkptMode::Disk);
        let pid = w.setup(&mut k);
        for _ in 0..20 {
            w.drive(&mut k, pid);
        }
        let restored_iter = {
            let mut api = ow_kernel::syscall::KernelApi::new(&mut k, pid);
            Blcr::restore(&mut api).expect("checkpoint exists")
        };
        assert!(restored_iter > 0);
    }
}
