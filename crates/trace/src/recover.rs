//! The reader side: recovering the flight record from a dead kernel.
//!
//! This mirrors the validated-reader discipline of `ow-core::reader`: the
//! crash kernel treats the trace region as untrusted bytes, because wild
//! writes may have landed anywhere in it between the fault and the panic.
//! Validation is strictly *per slot* — CRC over the payload, a sane event
//! kind, and the sequence number mapping back to the slot it sits in — so
//! corruption costs exactly the records it hit. Even a corrupted header
//! only loses the metrics, never the events. Nothing here can abort: the
//! worst possible input yields an empty record with everything counted.

use crate::layout::{hdr_off, rec_off, EventKind, PanicStep, RECORD_SIZE, TRACE_MAGIC};
use crate::metrics::{MetricsSnapshot, NUM_COUNTERS, NUM_HISTOGRAMS};
use crate::ring::TraceRing;
use ow_layout::trace::{field_u32, field_u64, slot_crc_ok};
use ow_simhw::{PhysMem, PAGE_SIZE};

/// One validated, decoded trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic sequence number.
    pub seq: u64,
    /// Simulated cycle timestamp.
    pub cycles: u64,
    /// What happened.
    pub kind: EventKind,
    /// Pid the event is attributed to (0 when none).
    pub pid: u64,
    /// First argument (kind-specific).
    pub arg0: u64,
    /// Second argument (kind-specific).
    pub arg1: u64,
}

impl TraceEvent {
    /// Compact human-readable form, used in campaign cause annotations.
    pub fn describe(&self) -> String {
        match self.kind {
            EventKind::PanicStep => match PanicStep::from_u64(self.arg0) {
                Some(step) => format!("panic:{}", step.name()),
                None => format!("panic:step?{}", self.arg0),
            },
            EventKind::SyscallEnter => format!("syscall_enter(nr={}, pid={})", self.arg0, self.pid),
            EventKind::SyscallExit => format!("syscall_exit(nr={}, pid={})", self.arg0, self.pid),
            EventKind::PageFault => format!("page_fault(va={:#x}, pid={})", self.arg0, self.pid),
            EventKind::SwapIn => format!("swap_in(slot={}, pfn={})", self.arg0, self.arg1),
            EventKind::SwapOut => format!("swap_out(slot={}, pfn={})", self.arg0, self.arg1),
            EventKind::ProtectionTrap => format!("protection_trap(addr={:#x})", self.arg0),
            EventKind::FaultInjected => {
                format!("fault_injected(kind={}, writes={})", self.arg0, self.arg1)
            }
            EventKind::Armed => format!("armed(gen={})", self.arg0),
            EventKind::RecoveryPanicContained => {
                format!(
                    "recovery_panic_contained(pid={}, rung={})",
                    self.pid, self.arg0
                )
            }
            EventKind::RecoveryDegraded => {
                format!("recovery_degraded(pid={}, rung={})", self.pid, self.arg0)
            }
            EventKind::RecoveryWatchdogFired => {
                format!(
                    "recovery_watchdog_fired(pid={}, budget={})",
                    self.pid, self.arg0
                )
            }
            EventKind::RecoveryEscalated => {
                format!(
                    "recovery_escalated(gen_offset={}, reason={})",
                    self.arg0, self.arg1
                )
            }
            EventKind::RecoveryRolledBack => {
                format!(
                    "recovery_rolled_back(epoch={}, records={})",
                    self.arg0, self.arg1
                )
            }
        }
    }

    /// Whether this is a panic-path record.
    pub fn is_panic_step(&self) -> bool {
        self.kind == EventKind::PanicStep
    }
}

/// Per-kind event totals over one or many recovered flight records.
///
/// The parallel campaign engine recovers one [`FlightRecord`] per
/// experiment inside whichever worker shard ran it; the campaign merger
/// folds each experiment's counts into a campaign-wide total **in seed
/// order**, so the aggregate is identical however the experiments were
/// sharded. Addition is commutative, but merging in seed order keeps the
/// invariant trivially auditable next to the rest of the merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EventCounts {
    counts: [u64; EventKind::ALL.len()],
}

impl EventCounts {
    /// Counts one event.
    pub fn add(&mut self, kind: EventKind) {
        for (k, c) in EventKind::ALL.iter().zip(self.counts.iter_mut()) {
            if *k == kind {
                *c += 1;
            }
        }
    }

    /// Folds another tally into this one (shard / experiment merge).
    pub fn merge(&mut self, other: &EventCounts) {
        for (c, o) in self.counts.iter_mut().zip(other.counts.iter()) {
            *c += *o;
        }
    }

    /// Count for one kind.
    pub fn get(&self, kind: EventKind) -> u64 {
        EventKind::ALL
            .iter()
            .zip(self.counts.iter())
            .find(|(k, _)| **k == kind)
            .map(|(_, &c)| c)
            .unwrap_or(0)
    }

    /// Total events counted.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `(kind, count)` pairs in discriminant order.
    pub fn iter(&self) -> impl Iterator<Item = (EventKind, u64)> + '_ {
        EventKind::ALL
            .iter()
            .zip(self.counts.iter())
            .map(|(k, &c)| (*k, c))
    }

    /// JSON object of the non-zero kinds, keys in discriminant order (a
    /// deterministic byte sequence for the campaign exports).
    pub fn to_json(&self) -> crate::json::Value {
        use crate::json::Value;
        Value::obj(
            self.iter()
                .filter(|(_, c)| *c > 0)
                .map(|(k, c)| (k.name(), Value::from(c))),
        )
    }
}

/// Everything recovered from a dead kernel's trace region.
#[derive(Debug, Clone, Default)]
pub struct FlightRecord {
    /// Valid records, oldest first.
    pub events: Vec<TraceEvent>,
    /// Slots that were written but failed validation (wild-write damage).
    pub corrupt_records: u64,
    /// Whether the region header survived (magic + geometry checks).
    pub header_valid: bool,
    /// Records the dead kernel dropped at emit time.
    pub dropped: u64,
    /// Generation that armed the ring.
    pub generation: u32,
    /// The dead kernel's write cursor (records ever emitted).
    pub write_seq: u64,
    /// Metrics registry snapshot (zeroed when the header was corrupt).
    pub metrics: MetricsSnapshot,
}

impl FlightRecord {
    /// Recovers the flight record from `phys`. Never fails: corruption is
    /// skipped and counted, and the worst case is an empty record.
    pub fn recover(phys: &PhysMem, base_frame: u64, frames: u64) -> FlightRecord {
        let mut rec = FlightRecord::default();
        if frames < TraceRing::MIN_FRAMES || base_frame + frames > phys.frames() {
            return rec;
        }
        let ring = TraceRing { base_frame, frames };
        let base = ring.base_addr();
        let capacity = ring.capacity();

        // Header: validated independently of the records. A corrupt header
        // costs the metrics, not the events.
        let magic_ok = phys.read_u32(base + hdr_off::MAGIC) == Ok(TRACE_MAGIC);
        let cap_ok = phys.read_u32(base + hdr_off::CAPACITY).map(u64::from) == Ok(capacity);
        rec.header_valid = magic_ok && cap_ok;
        if rec.header_valid {
            rec.write_seq = phys.read_u64(base + hdr_off::WRITE_SEQ).unwrap_or(0);
            rec.dropped = phys.read_u64(base + hdr_off::DROPPED).unwrap_or(0);
            rec.generation = phys.read_u32(base + hdr_off::GENERATION).unwrap_or(0);
            for (i, c) in rec
                .metrics
                .counters
                .iter_mut()
                .enumerate()
                .take(NUM_COUNTERS)
            {
                *c = phys
                    .read_u64(base + hdr_off::COUNTERS + 8 * i as u64)
                    .unwrap_or(0);
            }
            for (h, hist) in rec
                .metrics
                .histograms
                .iter_mut()
                .enumerate()
                .take(NUM_HISTOGRAMS)
            {
                for (b, bucket) in hist.iter_mut().enumerate().take(64) {
                    *bucket = phys
                        .read_u64(base + hdr_off::HISTOGRAMS + (h as u64) * 8 * 64 + 8 * b as u64)
                        .unwrap_or(0);
                }
            }
        }

        // Records: per-slot validation, nothing trusted across slots.
        let slots_base = base + PAGE_SIZE as u64;
        let mut buf = [0u8; RECORD_SIZE as usize];
        for i in 0..capacity {
            if phys.read(slots_base + i * RECORD_SIZE, &mut buf).is_err() {
                rec.corrupt_records += 1;
                continue;
            }
            if buf.iter().all(|&b| b == 0) {
                continue; // never written (arm() zeroes the region)
            }
            if !slot_crc_ok(&buf) {
                rec.corrupt_records += 1;
                continue;
            }
            let seq = field_u64(&buf, rec_off::SEQ);
            let kind_raw = field_u32(&buf, rec_off::KIND);
            let Some(kind) = EventKind::from_u32(kind_raw) else {
                rec.corrupt_records += 1;
                continue;
            };
            // A record is only credible in the slot its sequence number
            // maps to; anything else is a stray copy.
            if seq % capacity != i {
                rec.corrupt_records += 1;
                continue;
            }
            rec.events.push(TraceEvent {
                seq,
                cycles: field_u64(&buf, rec_off::CYCLES),
                kind,
                pid: field_u64(&buf, rec_off::PID),
                arg0: field_u64(&buf, rec_off::ARG0),
                arg1: field_u64(&buf, rec_off::ARG1),
            });
        }
        rec.events.sort_by_key(|e| e.seq);
        rec
    }

    /// The newest record, if any.
    pub fn last_event(&self) -> Option<&TraceEvent> {
        self.events.last()
    }

    /// Tallies the recovered events by kind (the campaign-level flight
    /// annotation each experiment contributes to its shard's merge).
    pub fn event_counts(&self) -> EventCounts {
        let mut counts = EventCounts::default();
        for e in &self.events {
            counts.add(e.kind);
        }
        counts
    }

    /// A one-line summary of the last `n` events (newest last), the cause
    /// annotation attached to every campaign outcome.
    pub fn tail_summary(&self, n: usize) -> String {
        if self.events.is_empty() {
            return if self.corrupt_records > 0 {
                format!("no trace ({} corrupt records)", self.corrupt_records)
            } else {
                "no trace".to_string()
            };
        }
        let start = self.events.len().saturating_sub(n);
        let mut parts: Vec<String> = self
            .events
            .iter()
            .skip(start)
            .map(|e| e.describe())
            .collect();
        if self.corrupt_records > 0 {
            parts.push(format!("[{} corrupt]", self.corrupt_records));
        }
        parts.join(" -> ")
    }

    /// JSON form of the whole record (events, damage counters, metrics),
    /// used by the bench table binaries' export path.
    pub fn to_json(&self) -> crate::json::Value {
        use crate::json::Value;
        let events: Vec<Value> = self
            .events
            .iter()
            .map(|e| {
                Value::obj([
                    ("seq", Value::from(e.seq)),
                    ("cycles", Value::from(e.cycles)),
                    ("kind", Value::from(e.kind.name())),
                    ("pid", Value::from(e.pid)),
                    ("arg0", Value::from(e.arg0)),
                    ("arg1", Value::from(e.arg1)),
                ])
            })
            .collect();
        let counters: Vec<Value> = self
            .metrics
            .counters
            .iter()
            .map(|&c| Value::from(c))
            .collect();
        Value::obj([
            ("header_valid", Value::Bool(self.header_valid)),
            ("generation", Value::from(self.generation as u64)),
            ("write_seq", Value::from(self.write_seq)),
            ("dropped", Value::from(self.dropped)),
            ("corrupt_records", Value::from(self.corrupt_records)),
            ("counters", Value::Array(counters)),
            ("events", Value::Array(events)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Counter;

    #[test]
    fn recover_from_unarmed_memory_is_empty() {
        let phys = PhysMem::new(8);
        let rec = FlightRecord::recover(&phys, 4, 4);
        assert!(!rec.header_valid);
        assert!(rec.events.is_empty());
        assert_eq!(rec.corrupt_records, 0);
    }

    #[test]
    fn recover_out_of_bounds_region_is_empty() {
        let phys = PhysMem::new(8);
        let rec = FlightRecord::recover(&phys, 7, 4);
        assert!(rec.events.is_empty());
    }

    #[test]
    fn wild_write_corrupts_only_the_record_it_hit() {
        let mut phys = PhysMem::new(8);
        let ring = TraceRing::arm(&mut phys, 4, 4, 0).unwrap();
        for i in 0..10u64 {
            ring.emit(&mut phys, i, EventKind::SyscallEnter, 1, i, 0);
        }
        // A wild write lands in record slot 3.
        let slot3 = ring.base_addr() + PAGE_SIZE as u64 + 3 * RECORD_SIZE;
        phys.corrupt_u64(slot3 + 8, 0xdead_beef_dead_beef);
        let rec = FlightRecord::recover(&phys, 4, 4);
        assert_eq!(rec.corrupt_records, 1);
        assert_eq!(rec.events.len(), 9);
        assert!(rec.events.iter().all(|e| e.seq != 3));
        // Neighbors are intact.
        assert!(rec.events.iter().any(|e| e.seq == 2));
        assert!(rec.events.iter().any(|e| e.seq == 4));
    }

    #[test]
    fn corrupt_header_loses_metrics_but_not_events() {
        let mut phys = PhysMem::new(8);
        let ring = TraceRing::arm(&mut phys, 4, 4, 0).unwrap();
        ring.counter_add(&mut phys, Counter::Syscalls, 5);
        for i in 0..4u64 {
            ring.emit(&mut phys, i, EventKind::PageFault, 2, i * 0x1000, 0);
        }
        // Smash the magic.
        phys.corrupt_u64(ring.base_addr(), 0xffff_ffff);
        let rec = FlightRecord::recover(&phys, 4, 4);
        assert!(!rec.header_valid);
        assert_eq!(rec.metrics.counter(Counter::Syscalls), 0);
        assert_eq!(rec.events.len(), 4);
    }

    #[test]
    fn event_counts_tally_and_merge_by_kind() {
        let mut phys = PhysMem::new(8);
        let ring = TraceRing::arm(&mut phys, 4, 4, 0).unwrap();
        ring.emit(&mut phys, 1, EventKind::SyscallEnter, 1, 3, 0);
        ring.emit(&mut phys, 2, EventKind::SyscallEnter, 1, 4, 0);
        ring.emit(&mut phys, 3, EventKind::PageFault, 1, 0x1000, 0);
        let counts = FlightRecord::recover(&phys, 4, 4).event_counts();
        assert_eq!(counts.get(EventKind::SyscallEnter), 2);
        assert_eq!(counts.get(EventKind::PageFault), 1);
        assert_eq!(counts.total(), 3);

        let mut merged = counts;
        merged.merge(&counts);
        assert_eq!(merged.get(EventKind::SyscallEnter), 4);
        assert_eq!(merged.total(), 6);

        let json = merged.to_json().to_pretty();
        assert!(json.contains("\"syscall_enter\""), "{json}");
        assert!(!json.contains("\"swap_in\""), "zero kinds omitted: {json}");
    }

    #[test]
    fn tail_summary_names_the_panic_step() {
        let mut phys = PhysMem::new(8);
        let ring = TraceRing::arm(&mut phys, 4, 4, 0).unwrap();
        ring.emit(&mut phys, 1, EventKind::SyscallEnter, 1, 3, 0);
        ring.emit_panic_step(&mut phys, 2, PanicStep::Entered, 0);
        ring.emit_panic_step(&mut phys, 3, PanicStep::Handoff, 0);
        let rec = FlightRecord::recover(&phys, 4, 4);
        let s = rec.tail_summary(8);
        assert!(s.contains("panic:handoff"), "{s}");
        assert!(rec.last_event().unwrap().is_panic_step());
    }
}
