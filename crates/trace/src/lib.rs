//! `ow-trace`: a crash-surviving flight recorder for the Otherworld kernel.
//!
//! The paper's whole mechanism rests on one fact: after a panic, the dead
//! kernel's state is still sitting in physical memory, and a crash kernel
//! that knows the layout can parse it. This crate applies the same idea to
//! *observability*. The main kernel continuously appends fixed-size,
//! CRC-guarded trace records (syscalls, page faults, swap I/O, protection
//! traps, panic-path steps, injected faults) into a reserved region of
//! simulated physical memory — the moral equivalent of Linux's
//! pstore/ramoops persistent ring. The region is never remapped, never
//! freed, and never owned by any process, so when the kernel dies the ring
//! is exactly where it was. The crash kernel then recovers it with the same
//! validated-reader discipline `ow-core::reader` uses for process
//! descriptors: every record is bounds-checked and CRC-checked, and a wild
//! write that landed in the ring costs only the records it hit — recovery
//! skips and counts them, it never aborts.
//!
//! The same region embeds a metrics registry (monotonic counters and
//! log₂-bucketed latency histograms) that survives the crash too, so the
//! microreboot report can say what the kernel had been doing, not just
//! what it managed to resurrect.

#![forbid(unsafe_code)]

pub use ow_layout::crc;

pub mod json;
pub mod layout;
pub mod metrics;
pub mod recover;
pub mod ring;

pub use layout::{EventKind, PanicStep, RECORD_SIZE, TRACE_MAGIC};
pub use metrics::{Counter, Histogram, MetricsSnapshot, NUM_COUNTERS, NUM_HISTOGRAMS};
pub use recover::{EventCounts, FlightRecord, TraceEvent};
pub use ring::TraceRing;
