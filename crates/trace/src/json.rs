//! A minimal, dependency-free JSON writer and parser.
//!
//! The workspace builds with zero network access, so `serde`/`serde_json`
//! are out. The two consumers are small and forgiving: the resurrection
//! policy file (`ow-core::policy`) and the bench binaries' table export.
//! Numbers are carried as `f64`, which is exact for every integer either
//! consumer produces.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<'a>(pairs: impl IntoIterator<Item = (&'a str, Value)>) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean inside, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number inside, if any.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number inside as `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string inside, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array inside, if any.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Pretty-printed form with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    out.push_str(&pad_in);
                    v.write_pretty(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Value::Object(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(&pad_in);
                    out.push_str(&quote(k));
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
            _ => out.push_str(&self.to_string()),
        }
    }

    /// Parses a JSON document (must be a single value plus whitespace).
    pub fn parse(s: &str) -> Result<Value, ParseError> {
        let bytes = s.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(ParseError {
                pos,
                what: "trailing characters",
            });
        }
        Ok(v)
    }
}

impl fmt::Display for Value {
    /// Compact single-line form.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Value::Str(s) => write!(f, "{}", quote(s)),
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Object(pairs) => {
                write!(f, "{{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}:{v}", quote(k))?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Num(n as f64)
    }
}
impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Num(n)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// What was wrong.
    pub what: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.pos, self.what)
    }
}

impl std::error::Error for ParseError {}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while matches!(bytes.get(*pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8, what: &'static str) -> Result<(), ParseError> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(ParseError { pos: *pos, what })
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(ParseError {
            pos: *pos,
            what: "unexpected end of input",
        }),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, b"true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, b"false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, b"null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &[u8], value: Value) -> Result<Value, ParseError> {
    if bytes.get(*pos..).is_some_and(|rest| rest.starts_with(lit)) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(ParseError {
            pos: *pos,
            what: "invalid literal",
        })
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    let start = *pos;
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    ) {
        *pos += 1;
    }
    std::str::from_utf8(bytes.get(start..*pos).unwrap_or(&[]))
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or(ParseError {
            pos: start,
            what: "invalid number",
        })
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    expect(bytes, pos, b'"', "expected string")?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => {
                return Err(ParseError {
                    pos: *pos,
                    what: "unterminated string",
                })
            }
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes.get(*pos).ok_or(ParseError {
                    pos: *pos,
                    what: "unterminated escape",
                })?;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes.get(*pos + 1..*pos + 5).ok_or(ParseError {
                            pos: *pos,
                            what: "short \\u escape",
                        })?;
                        let code = std::str::from_utf8(hex)
                            .ok()
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or(ParseError {
                                pos: *pos,
                                what: "invalid \\u escape",
                            })?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => {
                        return Err(ParseError {
                            pos: *pos,
                            what: "unknown escape",
                        })
                    }
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is safe
                // to do bytewise until the next ASCII delimiter).
                let start = *pos;
                *pos += 1;
                while bytes.get(*pos).is_some_and(|&b| b & 0xc0 == 0x80) {
                    *pos += 1;
                }
                out.push_str(
                    std::str::from_utf8(bytes.get(start..*pos).unwrap_or(&[])).map_err(|_| {
                        ParseError {
                            pos: start,
                            what: "invalid utf-8",
                        }
                    })?,
                );
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    expect(bytes, pos, b'[', "expected array")?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => {
                return Err(ParseError {
                    pos: *pos,
                    what: "expected ',' or ']'",
                })
            }
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    expect(bytes, pos, b'{', "expected object")?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':', "expected ':'")?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(pairs));
            }
            _ => {
                return Err(ParseError {
                    pos: *pos,
                    what: "expected ',' or '}'",
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_and_pretty() {
        let v = Value::obj([
            ("name", Value::from("mysqld")),
            ("count", Value::from(42u64)),
            ("ok", Value::Bool(true)),
            (
                "list",
                Value::Array(vec![Value::from(1u64), Value::from(2u64)]),
            ),
        ]);
        for text in [v.to_string(), v.to_pretty()] {
            assert_eq!(Value::parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Value::parse(r#"{"s": "a\"b\\c\ndAé"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "a\"b\\c\ndAé");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse("").is_err());
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("{\"a\":1} extra").is_err());
        assert!(Value::parse("nulle").is_err());
    }

    #[test]
    fn numbers_survive() {
        let v = Value::parse("[0, -3, 2.5, 1e3]").unwrap();
        let a = v.as_array().unwrap();
        assert_eq!(a[0].as_u64(), Some(0));
        assert_eq!(a[1].as_f64(), Some(-3.0));
        assert_eq!(a[2].as_f64(), Some(2.5));
        assert_eq!(a[3].as_f64(), Some(1000.0));
        assert_eq!(a[1].as_u64(), None);
    }
}
