//! The writer side: a lock-free, wrap-around record ring.
//!
//! "Lock-free" is literal in the simulation — the kernel is the only
//! writer, and each record is completed by writing its CRC last, so a
//! crash between the payload and the CRC leaves a slot that recovery
//! rejects rather than misparses. The ring is deliberately *not* covered
//! by the crash-image hardware protection: wild writes are allowed to
//! land here, and the per-record CRC is what contains the blast radius.

use crate::layout::{hdr_off, rec_off, EventKind, PanicStep, RECORD_SIZE, TRACE_MAGIC};
use crate::metrics::{bucket_of, Counter, Histogram};
use ow_layout::trace::{put_field, seal_slot};
use ow_simhw::{PhysMem, PAGE_SIZE};

/// Handle to the trace region: pure location, no buffered state.
///
/// All mutable state (write cursor, counters) lives in simulated physical
/// memory so that a panic loses nothing; the handle itself is `Copy` and
/// can be rebuilt from the handoff block by any kernel generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRing {
    /// First frame of the region.
    pub base_frame: u64,
    /// Frames in the region (header frame included).
    pub frames: u64,
}

impl TraceRing {
    /// Minimum region size: one header frame plus one record frame.
    pub const MIN_FRAMES: u64 = 2;

    /// Record slots a region of `frames` frames holds.
    pub fn capacity_of(frames: u64) -> u64 {
        frames.saturating_sub(1) * PAGE_SIZE as u64 / RECORD_SIZE
    }

    /// Base byte address of the region.
    pub fn base_addr(&self) -> u64 {
        self.base_frame * PAGE_SIZE as u64
    }

    /// Byte address of record slot `i`.
    fn slot_addr(&self, i: u64) -> u64 {
        self.base_addr() + PAGE_SIZE as u64 + i * RECORD_SIZE
    }

    /// Record slots this ring holds.
    pub fn capacity(&self) -> u64 {
        Self::capacity_of(self.frames)
    }

    /// Initializes the region for a fresh kernel generation: magic,
    /// capacity, zeroed cursor, counters and histograms. Record slots are
    /// left as-is (stale CRCs from the previous generation simply fail
    /// validation against the new sequence numbers).
    pub fn arm(
        phys: &mut PhysMem,
        base_frame: u64,
        frames: u64,
        generation: u32,
    ) -> Option<TraceRing> {
        if frames < Self::MIN_FRAMES {
            return None;
        }
        let ring = TraceRing { base_frame, frames };
        let base = ring.base_addr();
        // The whole region is rebuilt from scratch: a zeroed slot is how
        // recovery tells "never written" from "written then corrupted",
        // and stale records from the previous generation must not leak
        // into the next flight record.
        for f in base_frame..base_frame + frames {
            phys.zero_frame(f).ok()?;
        }
        phys.write_u32(base + hdr_off::MAGIC, TRACE_MAGIC).ok()?;
        phys.write_u32(base + hdr_off::CAPACITY, ring.capacity() as u32)
            .ok()?;
        phys.write_u64(base + hdr_off::WRITE_SEQ, 0).ok()?;
        phys.write_u64(base + hdr_off::DROPPED, 0).ok()?;
        phys.write_u32(base + hdr_off::GENERATION, generation)
            .ok()?;
        Some(ring)
    }

    /// Appends one record. Infallible by design: on any memory error the
    /// event is dropped (and counted when the header is still writable) —
    /// tracing must never panic the kernel it is observing.
    pub fn emit(
        &self,
        phys: &mut PhysMem,
        cycles: u64,
        kind: EventKind,
        pid: u64,
        arg0: u64,
        arg1: u64,
    ) {
        let base = self.base_addr();
        let capacity = self.capacity();
        if capacity == 0 {
            return;
        }
        // ow-lint: allow(validate-before-adopt) -- read-modify-write of the recorder's own reserved ring header, not dead-kernel state
        let seq = match phys.read_u64(base + hdr_off::WRITE_SEQ) {
            Ok(s) => s,
            Err(_) => return,
        };
        let slot = self.slot_addr(seq % capacity);
        let mut buf = [0u8; RECORD_SIZE as usize];
        put_field(&mut buf, rec_off::SEQ, &seq.to_le_bytes());
        put_field(&mut buf, rec_off::CYCLES, &cycles.to_le_bytes());
        put_field(&mut buf, rec_off::KIND, &(kind as u32).to_le_bytes());
        put_field(&mut buf, rec_off::PID, &pid.to_le_bytes());
        put_field(&mut buf, rec_off::ARG0, &arg0.to_le_bytes());
        put_field(&mut buf, rec_off::ARG1, &arg1.to_le_bytes());
        seal_slot(&mut buf);
        if phys.write(slot, &buf).is_err() {
            let _ = phys
                // ow-lint: allow(validate-before-adopt) -- read-modify-write of the recorder's own dropped-count header field
                .read_u64(base + hdr_off::DROPPED)
                .and_then(|d| phys.write_u64(base + hdr_off::DROPPED, d + 1));
            return;
        }
        // Cursor bump last: a crash mid-emit leaves the old cursor and a
        // half-written slot whose CRC recovery will reject.
        let _ = phys.write_u64(base + hdr_off::WRITE_SEQ, seq.wrapping_add(1));
    }

    /// Convenience: emit a panic-path step and bump its counter.
    pub fn emit_panic_step(&self, phys: &mut PhysMem, cycles: u64, step: PanicStep, detail: u64) {
        self.emit(phys, cycles, EventKind::PanicStep, 0, step as u64, detail);
        self.counter_add(phys, Counter::PanicSteps, 1);
    }

    /// Adds `n` to a counter.
    pub fn counter_add(&self, phys: &mut PhysMem, counter: Counter, n: u64) {
        let addr = self.base_addr() + hdr_off::COUNTERS + 8 * counter as u64;
        let _ = phys
            // ow-lint: allow(validate-before-adopt) -- read-modify-write of the recorder's own counter slot in reserved memory
            .read_u64(addr)
            .and_then(|v| phys.write_u64(addr, v.wrapping_add(n)));
    }

    /// Records one sample into a histogram.
    pub fn hist_record(&self, phys: &mut PhysMem, hist: Histogram, value: u64) {
        let addr = self.base_addr()
            + hdr_off::HISTOGRAMS
            + (hist as u64) * 8 * 64
            + 8 * bucket_of(value) as u64;
        let _ = phys
            // ow-lint: allow(validate-before-adopt) -- read-modify-write of the recorder's own histogram bucket in reserved memory
            .read_u64(addr)
            .and_then(|v| phys.write_u64(addr, v + 1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recover::FlightRecord;

    fn mem(frames: usize) -> PhysMem {
        PhysMem::new(frames)
    }

    #[test]
    fn arm_rejects_undersized_region() {
        let mut phys = mem(8);
        assert!(TraceRing::arm(&mut phys, 4, 1, 0).is_none());
        assert!(TraceRing::arm(&mut phys, 4, 2, 0).is_some());
    }

    #[test]
    fn emit_then_recover_round_trips() {
        let mut phys = mem(8);
        let ring = TraceRing::arm(&mut phys, 4, 4, 0).unwrap();
        ring.emit(&mut phys, 100, EventKind::SyscallEnter, 7, 3, 0);
        ring.emit(&mut phys, 200, EventKind::PageFault, 7, 0x4000, 0);
        let rec = FlightRecord::recover(&phys, 4, 4);
        assert_eq!(rec.events.len(), 2);
        assert_eq!(rec.events[0].kind, EventKind::SyscallEnter);
        assert_eq!(rec.events[0].cycles, 100);
        assert_eq!(rec.events[1].arg0, 0x4000);
        assert_eq!(rec.corrupt_records, 0);
    }

    #[test]
    fn wraparound_keeps_newest_records() {
        let mut phys = mem(8);
        // 2 frames: 1 header + 1 record frame = 85 slots.
        let ring = TraceRing::arm(&mut phys, 4, 2, 0).unwrap();
        let cap = ring.capacity();
        let total = cap + 10;
        for i in 0..total {
            ring.emit(&mut phys, i, EventKind::SyscallEnter, 1, i, 0);
        }
        let rec = FlightRecord::recover(&phys, 4, 2);
        // Exactly one ring's worth survives, and it is the newest window.
        assert_eq!(rec.events.len() as u64, cap);
        assert_eq!(rec.events.first().unwrap().seq, total - cap);
        assert_eq!(rec.events.last().unwrap().seq, total - 1);
        // Strictly ordered.
        assert!(rec.events.windows(2).all(|w| w[0].seq + 1 == w[1].seq));
    }

    #[test]
    fn counters_and_histograms_accumulate() {
        let mut phys = mem(8);
        let ring = TraceRing::arm(&mut phys, 4, 2, 3).unwrap();
        ring.counter_add(&mut phys, Counter::Syscalls, 2);
        ring.counter_add(&mut phys, Counter::Syscalls, 1);
        ring.hist_record(&mut phys, Histogram::SyscallCycles, 1000);
        ring.hist_record(&mut phys, Histogram::SyscallCycles, 1);
        let rec = FlightRecord::recover(&phys, 4, 2);
        assert_eq!(rec.metrics.counter(Counter::Syscalls), 3);
        assert_eq!(rec.metrics.samples(Histogram::SyscallCycles), 2);
        assert_eq!(rec.generation, 3);
    }
}
