//! The metrics registry embedded in the trace region header.
//!
//! Counters are plain monotonic `u64`s; histograms bucket a sample by
//! `log₂(value)` into 64 buckets, the usual trick for latency
//! distributions whose tails span orders of magnitude. Both live in the
//! header frame of the trace region, so they survive the panic and are
//! folded into the microreboot report by the crash kernel.

/// Monotonic counter slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Syscalls entered.
    Syscalls = 0,
    /// Page faults materialized.
    PageFaults = 1,
    /// Pages read back from swap.
    SwapIns = 2,
    /// Pages written out to swap.
    SwapOuts = 3,
    /// Page-table switches for the memory-protected mode.
    PtSwitches = 4,
    /// Stray stores trapped by the protected mode.
    ProtectionTraps = 5,
    /// Faults the injector fired.
    FaultsInjected = 6,
    /// Panic-path steps executed.
    PanicSteps = 7,
    /// TLB tag-register switches (the protected mode's tagged fast path;
    /// compare against [`Counter::PtSwitches`] to see the flushes saved).
    AsidSwitches = 8,
}

/// Number of counter slots reserved in the header (fixed by the shared
/// region layout in [`ow_layout::trace`]).
pub const NUM_COUNTERS: usize = ow_layout::trace::TRACE_NUM_COUNTERS;

/// Histogram slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(usize)]
pub enum Histogram {
    /// Cycles spent inside each syscall.
    #[default]
    SyscallCycles = 0,
    /// Cycles between consecutive syscall entries per pid-agnostic stream.
    InterArrivalCycles = 1,
}

/// Number of histogram slots reserved in the header (fixed by the shared
/// region layout in [`ow_layout::trace`]).
pub const NUM_HISTOGRAMS: usize = ow_layout::trace::TRACE_NUM_HISTOGRAMS;

/// Bucket index for a sample: `floor(log₂(v))`, with 0 → bucket 0.
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        63 - value.leading_zeros() as usize
    }
}

/// A recovered copy of the registry (possibly from a dead kernel).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values, indexed by [`Counter`].
    pub counters: [u64; NUM_COUNTERS],
    /// Histogram buckets, indexed by [`Histogram`].
    pub histograms: [[u64; 64]; NUM_HISTOGRAMS],
}

impl Default for MetricsSnapshot {
    fn default() -> Self {
        MetricsSnapshot {
            counters: [0; NUM_COUNTERS],
            histograms: [[0; 64]; NUM_HISTOGRAMS],
        }
    }
}

impl MetricsSnapshot {
    /// Value of one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// Total samples in one histogram.
    pub fn samples(&self, h: Histogram) -> u64 {
        self.histograms[h as usize].iter().sum()
    }

    /// Approximate p-quantile of a histogram (bucket lower bound), or
    /// `None` when empty.
    pub fn quantile(&self, h: Histogram, p: f64) -> Option<u64> {
        let buckets = &self.histograms[h as usize];
        let total: u64 = buckets.iter().sum();
        if total == 0 {
            return None;
        }
        let target = ((total as f64) * p.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0u64;
        for (i, &n) in buckets.iter().enumerate() {
            seen += n;
            if seen >= target.max(1) {
                return Some(if i == 0 { 0 } else { 1u64 << i });
            }
        }
        Some(1u64 << 63)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_is_floor_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), 63);
    }

    #[test]
    fn quantile_walks_buckets() {
        let mut m = MetricsSnapshot::default();
        m.histograms[0][3] = 90; // values in [8, 16)
        m.histograms[0][10] = 10; // values in [1024, 2048)
        assert_eq!(m.quantile(Histogram::SyscallCycles, 0.5), Some(8));
        assert_eq!(m.quantile(Histogram::SyscallCycles, 0.99), Some(1024));
        assert_eq!(m.quantile(Histogram::InterArrivalCycles, 0.5), None);
    }
}
