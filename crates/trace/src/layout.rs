//! Binary layout of the trace region.
//!
//! The region occupies `trace_frames` frames at the very top of simulated
//! RAM — above even the crash-kernel reservation — so it survives both the
//! panic and the subsequent kernel morph (the crash image relocates every
//! generation; the flight recorder must not). Frame 0 of the region holds
//! the header plus the metrics registry; the remaining frames hold the
//! record slots.
//!
//! ```text
//! frame 0:  magic | capacity | write_seq | dropped | generation
//!           counters[NUM_COUNTERS] | histograms[NUM_HISTOGRAMS][64]
//! frame 1+: record slots, RECORD_SIZE bytes each, written round-robin
//! ```
//!
//! The offsets and sizes themselves are defined once, in
//! [`ow_layout::trace`], alongside every other resurrection-relevant
//! layout; this module re-exports them and adds the event vocabulary
//! ([`EventKind`], [`PanicStep`]) the recorder speaks.

pub use ow_layout::trace::{hdr_off, rec_off, RECORD_SIZE, TRACE_MAGIC};

/// What a trace record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum EventKind {
    /// The ring was (re-)armed by a booting kernel. arg0 = generation.
    Armed = 1,
    /// Syscall entry. arg0 = syscall number.
    SyscallEnter = 2,
    /// Syscall exit. arg0 = syscall number, arg1 = cycles spent inside.
    SyscallExit = 3,
    /// A page fault was materialized. arg0 = virtual address.
    PageFault = 4,
    /// A page was read back from swap. arg0 = virtual address, arg1 = slot.
    SwapIn = 5,
    /// A page was written out to swap. arg0 = pfn, arg1 = slot.
    SwapOut = 6,
    /// The memory-protected mode trapped a stray store. arg0 = address.
    ProtectionTrap = 7,
    /// One step of the panic path executed. arg0 = [`PanicStep`] code,
    /// arg1 = step-specific detail (cause code, frame, ...).
    PanicStep = 8,
    /// The fault injector fired. arg0 = manifestation code,
    /// arg1 = wild writes applied.
    FaultInjected = 9,
    /// The resurrection supervisor contained a panic inside the recovery
    /// engine. pid = dead pid of the victim, arg0 = ladder rung that
    /// panicked.
    RecoveryPanicContained = 10,
    /// A process was retried at a weaker ladder rung. pid = dead pid,
    /// arg0 = rung now being attempted, arg1 = failure class
    /// (0 = read error, 1 = contained panic, 2 = budget exhausted).
    RecoveryDegraded = 11,
    /// The recovery watchdog cut off a per-process cycle budget. pid = dead
    /// pid of the victim, arg0 = budget in cycles.
    RecoveryWatchdogFired = 12,
    /// The supervisor escalated to a fresh crash-kernel generation in
    /// restart-only mode. arg0 = generation offset, arg1 = reason code
    /// (0 = boot failure, 1 = panic storm / budget exhaustion).
    RecoveryEscalated = 13,
    /// Rollback-in-place (rung 0) restored a validated epoch checkpoint
    /// and resumed the same kernel generation without a microreboot.
    /// arg0 = epoch, arg1 = records rolled back in place.
    RecoveryRolledBack = 14,
}

impl EventKind {
    /// Every event kind, in discriminant order (the iteration order of
    /// [`crate::recover::EventCounts`] and its JSON export).
    pub const ALL: [EventKind; 14] = [
        EventKind::Armed,
        EventKind::SyscallEnter,
        EventKind::SyscallExit,
        EventKind::PageFault,
        EventKind::SwapIn,
        EventKind::SwapOut,
        EventKind::ProtectionTrap,
        EventKind::PanicStep,
        EventKind::FaultInjected,
        EventKind::RecoveryPanicContained,
        EventKind::RecoveryDegraded,
        EventKind::RecoveryWatchdogFired,
        EventKind::RecoveryEscalated,
        EventKind::RecoveryRolledBack,
    ];

    /// Decodes a stored discriminant.
    pub fn from_u32(v: u32) -> Option<EventKind> {
        Some(match v {
            1 => EventKind::Armed,
            2 => EventKind::SyscallEnter,
            3 => EventKind::SyscallExit,
            4 => EventKind::PageFault,
            5 => EventKind::SwapIn,
            6 => EventKind::SwapOut,
            7 => EventKind::ProtectionTrap,
            8 => EventKind::PanicStep,
            9 => EventKind::FaultInjected,
            10 => EventKind::RecoveryPanicContained,
            11 => EventKind::RecoveryDegraded,
            12 => EventKind::RecoveryWatchdogFired,
            13 => EventKind::RecoveryEscalated,
            14 => EventKind::RecoveryRolledBack,
            _ => return None,
        })
    }

    /// Short stable name (used by the JSON export and cause strings).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Armed => "armed",
            EventKind::SyscallEnter => "syscall_enter",
            EventKind::SyscallExit => "syscall_exit",
            EventKind::PageFault => "page_fault",
            EventKind::SwapIn => "swap_in",
            EventKind::SwapOut => "swap_out",
            EventKind::ProtectionTrap => "protection_trap",
            EventKind::PanicStep => "panic_step",
            EventKind::FaultInjected => "fault_injected",
            EventKind::RecoveryPanicContained => "recovery_panic_contained",
            EventKind::RecoveryDegraded => "recovery_degraded",
            EventKind::RecoveryWatchdogFired => "recovery_watchdog_fired",
            EventKind::RecoveryEscalated => "recovery_escalated",
            EventKind::RecoveryRolledBack => "recovery_rolled_back",
        }
    }
}

/// `arg0` codes of [`EventKind::PanicStep`] records, in panic-path order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u64)]
pub enum PanicStep {
    /// `do_panic` entered; arg1 = cause code.
    Entered = 1,
    /// The watchdog NMI caught a stall.
    WatchdogFired = 2,
    /// The handoff block was read and validated.
    HandoffRead = 3,
    /// The IDT crash gate survived validation.
    IdtValidated = 4,
    /// NMIs were broadcast to park the other CPUs.
    NmiBroadcast = 5,
    /// The crash-kernel image header checked out.
    CrashImageValidated = 6,
    /// Control is about to jump to the crash kernel.
    Handoff = 7,
    /// The panic path gave up; the machine halted. arg1 = reason code.
    Halted = 8,
}

impl PanicStep {
    /// Decodes a stored step code.
    pub fn from_u64(v: u64) -> Option<PanicStep> {
        Some(match v {
            1 => PanicStep::Entered,
            2 => PanicStep::WatchdogFired,
            3 => PanicStep::HandoffRead,
            4 => PanicStep::IdtValidated,
            5 => PanicStep::NmiBroadcast,
            6 => PanicStep::CrashImageValidated,
            7 => PanicStep::Handoff,
            8 => PanicStep::Halted,
            _ => return None,
        })
    }

    /// Short stable name.
    pub fn name(self) -> &'static str {
        match self {
            PanicStep::Entered => "panic_entered",
            PanicStep::WatchdogFired => "watchdog_fired",
            PanicStep::HandoffRead => "handoff_read",
            PanicStep::IdtValidated => "idt_validated",
            PanicStep::NmiBroadcast => "nmi_broadcast",
            PanicStep::CrashImageValidated => "crash_image_validated",
            PanicStep::Handoff => "handoff",
            PanicStep::Halted => "halted",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{NUM_COUNTERS, NUM_HISTOGRAMS};

    #[test]
    fn metrics_registry_matches_shared_layout() {
        assert_eq!(NUM_COUNTERS, ow_layout::trace::TRACE_NUM_COUNTERS);
        assert_eq!(NUM_HISTOGRAMS, ow_layout::trace::TRACE_NUM_HISTOGRAMS);
    }

    #[test]
    fn kinds_round_trip() {
        for v in 1..=14u32 {
            let k = EventKind::from_u32(v).unwrap();
            assert_eq!(k as u32, v);
        }
        assert_eq!(EventKind::from_u32(0), None);
        assert_eq!(EventKind::from_u32(15), None);
    }

    #[test]
    fn panic_steps_round_trip() {
        for v in 1..=8u64 {
            let s = PanicStep::from_u64(v).unwrap();
            assert_eq!(s as u64, v);
        }
        assert_eq!(PanicStep::from_u64(99), None);
    }
}
