//! The eight crash-safety rules, plus the escape-hatch bookkeeping
//! (`allow-missing-reason` and `stale-allow` meta-findings). Rules 1–5
//! work from per-function sites and reachability; rules 6–8 sit on the
//! interprocedural effect summaries of [`crate::effects`].

use crate::extract::{NondetKind, PanicKind};
use crate::graph::{DefId, FileEntry, Graph};
use crate::Config;
use std::collections::{HashMap, HashSet};

/// Rule 1: panic on the recovery path.
pub const RECOVERY_PANIC: &str = "recovery-panic";
/// Rule 2: raw dead-memory read outside the validated-cursor layer.
pub const UNTRUSTED_READ: &str = "untrusted-read";
/// Rule 3: record codec without registry entry or golden sample.
pub const RECORD_REGISTRY: &str = "record-registry";
/// Rule 4: heap allocation on the panic/kexec handoff path.
pub const PANIC_PATH_ALLOC: &str = "panic-path-alloc";
/// Rule 5: malformed, duplicate, unregistered, or stale crash-point label.
pub const CRASH_POINT_LABEL: &str = "crash-point-label";
/// Rule 6: dead-kernel bytes adopted into live state without flowing
/// through a typed validated reader or the `WarmSeal`/`EpochCheckpoint`
/// codec.
pub const VALIDATE_BEFORE_ADOPT: &str = "validate-before-adopt";
/// Rule 7: a `writes-live-state` effect reachable from a validation pass
/// (validation must be write-free until the attempt stamp burns).
pub const VALIDATION_WRITE_FREE: &str = "validation-write-free";
/// Rule 8: a nondeterministic effect feeding campaign merged results, or a
/// raw (underived) RNG seed in campaign code.
pub const CAMPAIGN_DETERMINISM: &str = "campaign-determinism";
/// Meta: an allow directive with no `-- reason` justification.
pub const ALLOW_MISSING_REASON: &str = "allow-missing-reason";
/// Meta: an allow directive that suppresses nothing.
pub const STALE_ALLOW: &str = "stale-allow";

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule name (one of the constants in this module).
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Enclosing function, when the rule is function-scoped.
    pub function: String,
    /// Human-readable description.
    pub message: String,
    /// Call-graph witness path from a recovery/panic-path root, when the
    /// rule is reachability-based.
    pub via: Vec<String>,
}

/// Whether `label` follows the `area.component.action` naming grammar: at
/// least three dot-separated segments, each `[a-z][a-z0-9_]*`. Mirrors
/// `ow_crashpoint::label_grammar_ok`, kept local so the lint stays
/// dependency-free; `crates/crashpoint` unit tests pin the two in sync by
/// asserting the grammar over the same registry this rule reads.
fn label_grammar_ok(label: &str) -> bool {
    let segs: Vec<&str> = label.split('.').collect();
    segs.len() >= 3
        && segs.iter().all(|seg| {
            let mut chars = seg.chars();
            matches!(chars.next(), Some('a'..='z'))
                && chars.all(|c| matches!(c, 'a'..='z' | '0'..='9' | '_'))
        })
}

/// One escape-hatch directive currently suppressing a violation — the
/// active allow list `Report::to_json` exports and `BENCH_lint.json`
/// baselines.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// The rules the directive allows.
    pub rules: Vec<String>,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the directive.
    pub line: u32,
    /// The `-- <reason>` justification (empty when missing — which is
    /// itself an `allow-missing-reason` finding).
    pub reason: String,
}

/// Tracks which escape-hatch directives suppressed a violation.
struct Allows {
    /// `used[file][directive]`.
    used: Vec<Vec<bool>>,
}

impl Allows {
    fn new(files: &[FileEntry]) -> Self {
        Allows {
            used: files
                .iter()
                .map(|f| vec![false; f.model.directives.len()])
                .collect(),
        }
    }

    /// Tries to match a violation at `line` against a directive on the
    /// same or the preceding line that allows `rule`. Marks it used.
    fn try_allow(&mut self, files: &[FileEntry], file_idx: usize, line: u32, rule: &str) -> bool {
        for (di, d) in files[file_idx].model.directives.iter().enumerate() {
            let line_ok = d.line == line || d.line + 1 == line;
            if line_ok && d.allows.iter().any(|a| a == rule) {
                self.used[file_idx][di] = true;
                return true;
            }
        }
        false
    }
}

/// Runs every rule over the scanned files. Returns the findings (sorted by
/// file, line, rule) and the escape hatches actually in use.
pub fn check(cfg: &Config, files: &[FileEntry]) -> (Vec<Finding>, Vec<AllowEntry>) {
    let graph = Graph::build(files);
    let effects = crate::effects::Effects::compute(&graph);
    let mut allows = Allows::new(files);
    let mut findings = Vec::new();
    let file_idx = |path: &str| files.iter().position(|f| f.path == path);
    // Resolves `(file, fn name)` root pairs to definition ids.
    let named_roots = |pairs: &[(String, String)]| -> Vec<DefId> {
        pairs
            .iter()
            .flat_map(|(file, name)| {
                graph
                    .defs_in_file(file)
                    .into_iter()
                    .filter(|&id| graph.def(id).name == *name)
                    .collect::<Vec<_>>()
            })
            .collect()
    };

    // Rule 1: panic-freedom of the recovery path.
    let roots: Vec<_> = cfg
        .recovery_roots
        .iter()
        .flat_map(|f| graph.defs_in_file(f))
        .collect();
    let parents = graph.reach(&roots, true);
    let mut reached: Vec<_> = parents.keys().copied().collect();
    reached.sort_unstable();
    for &id in &reached {
        let def = graph.def(id);
        let path = graph.file_of(id);
        let Some(fi) = file_idx(path) else { continue };
        for site in &def.panics {
            if site.contained {
                continue;
            }
            let desc = match &site.kind {
                PanicKind::Unwrap => "unwrap() can panic".to_string(),
                PanicKind::Expect => "expect() can panic".to_string(),
                PanicKind::Macro(m) => format!("{m}! can panic"),
                PanicKind::Indexing => {
                    if !cfg.index_scope.iter().any(|p| path.starts_with(p.as_str())) {
                        continue;
                    }
                    "slice/array indexing can panic".to_string()
                }
            };
            if allows.try_allow(files, fi, site.line, RECOVERY_PANIC) {
                continue;
            }
            findings.push(Finding {
                rule: RECOVERY_PANIC.to_string(),
                file: path.to_string(),
                line: site.line,
                function: def.name.clone(),
                message: format!("{desc} on the recovery path"),
                via: graph.witness(&parents, id),
            });
        }
    }

    // Rule 4: no-alloc panic path.
    let proots: Vec<_> = cfg
        .panic_path
        .iter()
        .flat_map(|f| graph.defs_in_file(f))
        .collect();
    let pparents = graph.reach(&proots, true);
    let mut preached: Vec<_> = pparents.keys().copied().collect();
    preached.sort_unstable();
    for &id in &preached {
        let def = graph.def(id);
        let path = graph.file_of(id);
        let Some(fi) = file_idx(path) else { continue };
        for (line, what) in &def.kheap_allocs {
            if allows.try_allow(files, fi, *line, PANIC_PATH_ALLOC) {
                continue;
            }
            findings.push(Finding {
                rule: PANIC_PATH_ALLOC.to_string(),
                file: path.to_string(),
                line: *line,
                function: def.name.clone(),
                message: format!("{what} on the panic/kexec handoff path"),
                via: graph.witness(&pparents, id),
            });
        }
    }

    // Rule 2: untrusted-read taint.
    for (fi, entry) in files.iter().enumerate() {
        if cfg
            .taint_exempt
            .iter()
            .any(|p| entry.path.starts_with(p.as_str()))
        {
            continue;
        }
        if cfg.taint_allow.iter().any(|(p, _)| *p == entry.path) {
            continue;
        }
        for f in &entry.model.fns {
            if f.in_test {
                continue;
            }
            for (line, method) in &f.taint_reads {
                if allows.try_allow(files, fi, *line, UNTRUSTED_READ) {
                    continue;
                }
                findings.push(Finding {
                    rule: UNTRUSTED_READ.to_string(),
                    file: entry.path.clone(),
                    line: *line,
                    function: f.name.clone(),
                    message: format!(
                        "raw PhysMem::{method} outside ow-layout and the allowlist; dead-kernel \
                         bytes must flow through validated cursors"
                    ),
                    via: Vec::new(),
                });
            }
        }
    }

    // Rule 3: record-codec completeness.
    let reg_args: HashSet<&str> = files
        .iter()
        .find(|f| f.path == cfg.registry_file)
        .map(|f| f.model.reg_macro_args.iter().map(String::as_str).collect())
        .unwrap_or_default();
    let samples: Vec<&str> = files
        .iter()
        .find(|f| f.path == cfg.samples_file)
        .map(|f| f.model.strings.iter().map(|(s, _)| s.as_str()).collect())
        .unwrap_or_default();
    for (fi, entry) in files.iter().enumerate() {
        for ri in &entry.model.record_impls {
            let t = ri.type_name.as_str();
            if !reg_args.contains(t) && !allows.try_allow(files, fi, ri.line, RECORD_REGISTRY) {
                findings.push(Finding {
                    rule: RECORD_REGISTRY.to_string(),
                    file: entry.path.clone(),
                    line: ri.line,
                    function: String::new(),
                    message: format!(
                        "impl Record for {t} has no reg!({t}) entry in {}",
                        cfg.registry_file
                    ),
                    via: Vec::new(),
                });
            }
            let sampled = samples
                .iter()
                .any(|s| *s == t || s.starts_with(&format!("{t}(")));
            if !sampled && !allows.try_allow(files, fi, ri.line, RECORD_REGISTRY) {
                findings.push(Finding {
                    rule: RECORD_REGISTRY.to_string(),
                    file: entry.path.clone(),
                    line: ri.line,
                    function: String::new(),
                    message: format!(
                        "impl Record for {t} has no golden-encoding sample case in {}",
                        cfg.samples_file
                    ),
                    via: Vec::new(),
                });
            }
        }
    }

    // Rule 5: crash-point label discipline. Campaign cells are addressed by
    // label (`--point <label>`), so a malformed, colliding, unregistered,
    // or stale label silently breaks reproduction-by-name.
    let registry_labels: Vec<(&str, u32)> = files
        .iter()
        .find(|f| f.path == cfg.crashpoint_registry_file)
        .map(|f| {
            f.model
                .strings
                .iter()
                .filter(|(s, _)| label_grammar_ok(s))
                .map(|(s, l)| (s.as_str(), *l))
                .collect()
        })
        .unwrap_or_default();
    let mut first_site: HashMap<&str, (&str, u32)> = HashMap::new();
    let mut hit_labels: HashSet<&str> = HashSet::new();
    for (fi, entry) in files.iter().enumerate() {
        for (label, line) in &entry.model.crash_point_labels {
            hit_labels.insert(label.as_str());
            if !label_grammar_ok(label) {
                if !allows.try_allow(files, fi, *line, CRASH_POINT_LABEL) {
                    findings.push(Finding {
                        rule: CRASH_POINT_LABEL.to_string(),
                        file: entry.path.clone(),
                        line: *line,
                        function: String::new(),
                        message: format!(
                            "crash_point!(\"{label}\") does not match the \
                             `area.component.action` label grammar"
                        ),
                        via: Vec::new(),
                    });
                }
                // A malformed label cannot be meaningfully registered;
                // don't pile a second finding onto the same site.
                continue;
            }
            if let Some(&(ffile, fline)) = first_site.get(label.as_str()) {
                if !allows.try_allow(files, fi, *line, CRASH_POINT_LABEL) {
                    findings.push(Finding {
                        rule: CRASH_POINT_LABEL.to_string(),
                        file: entry.path.clone(),
                        line: *line,
                        function: String::new(),
                        message: format!(
                            "crash_point!(\"{label}\") duplicates the label at {ffile}:{fline}; \
                             labels must be unique workspace-wide"
                        ),
                        via: Vec::new(),
                    });
                }
                continue;
            }
            first_site.insert(label.as_str(), (entry.path.as_str(), *line));
            if !registry_labels.iter().any(|(r, _)| *r == label)
                && !allows.try_allow(files, fi, *line, CRASH_POINT_LABEL)
            {
                findings.push(Finding {
                    rule: CRASH_POINT_LABEL.to_string(),
                    file: entry.path.clone(),
                    line: *line,
                    function: String::new(),
                    message: format!(
                        "crash_point!(\"{label}\") is not declared in {}",
                        cfg.crashpoint_registry_file
                    ),
                    via: Vec::new(),
                });
            }
        }
    }
    if let Some(reg_fi) = file_idx(&cfg.crashpoint_registry_file) {
        for &(label, line) in &registry_labels {
            if !hit_labels.contains(label)
                && !allows.try_allow(files, reg_fi, line, CRASH_POINT_LABEL)
            {
                findings.push(Finding {
                    rule: CRASH_POINT_LABEL.to_string(),
                    file: cfg.crashpoint_registry_file.clone(),
                    line,
                    function: String::new(),
                    message: format!(
                        "registered crash point \"{label}\" has no crash_point!(\"{label}\") \
                         site; stale registry entry"
                    ),
                    via: Vec::new(),
                });
            }
        }
    }

    // Rule 6: validate-before-adopt. Two complementary checks. (a) Every
    // function reachable from the adopt seam (`try_build_adopt_plan`,
    // `rollback::apply`, the kexec frame/morph adopters) must not read raw
    // `PhysMem` outside the codec layer — on this path even the rule-2
    // file allowlist is not enough, because the bytes it produces are
    // *written back into live kernel state*, so they must come through a
    // typed validated reader or the WarmSeal/EpochCheckpoint codec.
    // (b) Within the adopt-write scope, a function that both raw-reads and
    // raw-writes `PhysMem` is adopting unvalidated bytes by construction,
    // reachable or not.
    let aroots = named_roots(&cfg.adopt_roots);
    let aparents = graph.reach(&aroots, false);
    let mut areached: Vec<_> = aparents.keys().copied().collect();
    areached.sort_unstable();
    for &id in &areached {
        let def = graph.def(id);
        if !crate::effects::intrinsic(def).has(crate::effects::READS_DEAD) {
            continue;
        }
        let path = graph.file_of(id);
        if cfg
            .taint_exempt
            .iter()
            .any(|p| path.starts_with(p.as_str()))
        {
            continue;
        }
        let Some(fi) = file_idx(path) else { continue };
        for (line, method) in &def.taint_reads {
            if allows.try_allow(files, fi, *line, VALIDATE_BEFORE_ADOPT) {
                continue;
            }
            findings.push(Finding {
                rule: VALIDATE_BEFORE_ADOPT.to_string(),
                file: path.to_string(),
                line: *line,
                function: def.name.clone(),
                message: format!(
                    "raw PhysMem::{method} feeds the adopt seam; dead-kernel bytes must flow \
                     through a typed validated reader or the WarmSeal/EpochCheckpoint codec \
                     before adoption"
                ),
                via: graph.witness(&aparents, id),
            });
        }
    }
    for (fi, entry) in files.iter().enumerate() {
        if !cfg
            .adopt_write_scope
            .iter()
            .any(|p| entry.path.starts_with(p.as_str()))
        {
            continue;
        }
        for f in &entry.model.fns {
            if f.in_test || f.taint_reads.is_empty() || f.taint_writes.is_empty() {
                continue;
            }
            let (read_line, _) = f.taint_reads[0];
            for (line, method) in &f.taint_writes {
                if allows.try_allow(files, fi, *line, VALIDATE_BEFORE_ADOPT) {
                    continue;
                }
                findings.push(Finding {
                    rule: VALIDATE_BEFORE_ADOPT.to_string(),
                    file: entry.path.clone(),
                    line: *line,
                    function: f.name.clone(),
                    message: format!(
                        "PhysMem::{method} in a function that also raw-reads dead memory \
                         (line {read_line}); route the bytes through a validated codec before \
                         writing them into live state"
                    ),
                    via: Vec::new(),
                });
            }
        }
    }

    // Rule 7: validation-write-free. Nothing reachable from a validation
    // pass may carry the writes-live-state effect — DESIGN.md §14's "zero
    // writes during validation"; the attempt stamp burns only after the
    // validation root returns.
    let vroots = named_roots(&cfg.validation_roots);
    let vparents = graph.reach(&vroots, true);
    let mut vreached: Vec<_> = vparents.keys().copied().collect();
    vreached.sort_unstable();
    for &id in &vreached {
        let def = graph.def(id);
        if !effects.of(id).has(crate::effects::WRITES_LIVE) {
            continue;
        }
        let path = graph.file_of(id);
        let Some(fi) = file_idx(path) else { continue };
        for (line, method) in &def.taint_writes {
            if allows.try_allow(files, fi, *line, VALIDATION_WRITE_FREE) {
                continue;
            }
            findings.push(Finding {
                rule: VALIDATION_WRITE_FREE.to_string(),
                file: path.to_string(),
                line: *line,
                function: def.name.clone(),
                message: format!(
                    "PhysMem::{method} reachable from a validation pass; validation must be \
                     write-free until the attempt stamp burns"
                ),
                via: graph.witness(&vparents, id),
            });
        }
    }

    // Rule 8: campaign-determinism. Everything reachable from the
    // campaign/merge roots in the determinism scope feeds merged results
    // or JSON output, so it must not observe wall clock, environment,
    // thread identity, or HashMap/HashSet iteration order — the
    // byte-identical `--jobs` guarantee. Contained calls are traversed:
    // containment catches panics, not nondeterminism, and experiment
    // bodies run contained. Raw RNG seeds are checked scope-wide instead
    // (reachability-independent — a seed is wrong at its construction
    // site, wherever that is).
    let in_dscope = |path: &str| {
        cfg.determinism_scope
            .iter()
            .any(|p| path.starts_with(p.as_str()))
    };
    let droots: Vec<DefId> = graph
        .all_defs()
        .filter(|&id| {
            in_dscope(graph.file_of(id))
                && cfg
                    .determinism_roots
                    .iter()
                    .any(|n| n == &graph.def(id).name)
        })
        .collect();
    let dparents = graph.reach(&droots, false);
    let mut dreached: Vec<_> = dparents.keys().copied().collect();
    dreached.sort_unstable();
    for &id in &dreached {
        let def = graph.def(id);
        if !crate::effects::intrinsic(def).has(crate::effects::NONDET) {
            continue;
        }
        let path = graph.file_of(id);
        let Some(fi) = file_idx(path) else { continue };
        for site in &def.nondet {
            if site.kind == NondetKind::RawSeed {
                continue;
            }
            if allows.try_allow(files, fi, site.line, CAMPAIGN_DETERMINISM) {
                continue;
            }
            findings.push(Finding {
                rule: CAMPAIGN_DETERMINISM.to_string(),
                file: path.to_string(),
                line: site.line,
                function: def.name.clone(),
                message: format!(
                    "{} feeds merged campaign results; output must be byte-identical across \
                     --jobs",
                    site.what
                ),
                via: graph.witness(&dparents, id),
            });
        }
    }
    for (fi, entry) in files.iter().enumerate() {
        if !in_dscope(&entry.path) {
            continue;
        }
        for f in &entry.model.fns {
            if f.in_test {
                continue;
            }
            for site in &f.nondet {
                if site.kind != NondetKind::RawSeed {
                    continue;
                }
                if allows.try_allow(files, fi, site.line, CAMPAIGN_DETERMINISM) {
                    continue;
                }
                findings.push(Finding {
                    rule: CAMPAIGN_DETERMINISM.to_string(),
                    file: entry.path.clone(),
                    line: site.line,
                    function: f.name.clone(),
                    message: format!(
                        "{}; campaign RNG seeds must derive via the \
                         stream_seed/experiment_seed family",
                        site.what
                    ),
                    via: Vec::new(),
                });
            }
        }
    }

    // Meta-findings: every used directive needs a reason, every unused
    // directive is stale.
    let mut allow_list: Vec<AllowEntry> = Vec::new();
    for (fi, entry) in files.iter().enumerate() {
        for (di, d) in entry.model.directives.iter().enumerate() {
            if allows.used[fi][di] {
                allow_list.push(AllowEntry {
                    rules: d.allows.clone(),
                    file: entry.path.clone(),
                    line: d.line,
                    reason: d.reason.clone().unwrap_or_default(),
                });
                if d.reason.is_none() {
                    findings.push(Finding {
                        rule: ALLOW_MISSING_REASON.to_string(),
                        file: entry.path.clone(),
                        line: d.line,
                        function: String::new(),
                        message: format!(
                            "ow-lint: allow({}) needs a `-- <reason>` justification",
                            d.allows.join(", ")
                        ),
                        via: Vec::new(),
                    });
                }
            } else {
                findings.push(Finding {
                    rule: STALE_ALLOW.to_string(),
                    file: entry.path.clone(),
                    line: d.line,
                    function: String::new(),
                    message: format!(
                        "ow-lint: allow({}) suppresses nothing; remove it",
                        d.allows.join(", ")
                    ),
                    via: Vec::new(),
                });
            }
        }
    }

    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.as_str()).cmp(&(b.file.as_str(), b.line, b.rule.as_str()))
    });
    allow_list.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    (findings, allow_list)
}
