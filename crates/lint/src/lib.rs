//! ow-lint: crash-safety static analysis for the Otherworld workspace.
//!
//! Otherworld's crash kernel walks the raw, possibly corrupted physical
//! memory of a dead kernel (§4 of the paper); this tool machine-checks the
//! discipline that makes that survivable. Eight invariants:
//!
//! 1. **recovery-panic** — no `unwrap`/`expect`/`panic!`-family macro, and
//!    no slice indexing in dead-data-handling crates, in any function
//!    transitively reachable from the crash-kernel entry points
//!    (`crates/core/src/{otherworld,reader,resurrect,supervisor}.rs`).
//!    Calls inside `supervisor::contain(...)` arguments are exempt: that
//!    is the runtime containment boundary, and injected faults live there
//!    by design.
//! 2. **untrusted-read** — no direct `PhysMem` reads outside `ow-layout`,
//!    `ow-simhw`, and an explicit allowlist, so every byte from the dead
//!    kernel flows through magic/CRC/bounds-checked cursors.
//! 3. **record-registry** — every `impl Record for T` has a `reg!(T)`
//!    layout-registry entry and a golden-encoding sample case.
//! 4. **panic-path-alloc** — the panic/kexec handoff makes no `kheap`
//!    allocations.
//! 5. **crash-point-label** — every `crash_point!` label matches the
//!    `area.component.action` grammar, is unique workspace-wide, and is
//!    declared in the crash-point registry; a registered label no code
//!    hits is stale.
//! 6. **validate-before-adopt** — dead-kernel bytes reaching the adopt
//!    seam (`try_build_adopt_plan`, `rollback::apply`, the kexec
//!    frame/morph adopters) must flow through a typed validated reader or
//!    the `WarmSeal`/`EpochCheckpoint` codec before being written into
//!    live kernel state; in `crates/core` a function that both raw-reads
//!    and raw-writes `PhysMem` is flagged by construction.
//! 7. **validation-write-free** — nothing reachable from the rollback
//!    freshness check or `try_build_adopt_plan` carries the
//!    `writes-live-state` effect; validation is write-free until the
//!    attempt stamp burns (DESIGN.md §14).
//! 8. **campaign-determinism** — in `crates/faultinject` and
//!    `crates/bench`, nothing reachable from the campaign/merge roots
//!    observes wall clock, environment, thread identity, or
//!    `HashMap`/`HashSet` iteration order, and every RNG seed derives via
//!    the `stream_seed`/`experiment_seed` family — the byte-identical
//!    `--jobs` guarantee.
//!
//! Rules 1–5 work from per-function sites and call-graph reachability;
//! rules 6–8 sit on the interprocedural effect system ([`effects`]): a
//! fixpoint pass computing, per function, which of five effects —
//! `reads-dead-memory`, `writes-live-state`, `allocates`, `panics`,
//! `nondeterministic` — its execution may have. `ow-lint --effects <fn>`
//! prints a function's summary with one witness path per effect.
//!
//! The escape hatch is a justified comment on (or directly above) the
//! offending line: `// ow-lint: allow(<rule>) -- <reason>`. An allow
//! without a reason, or one that suppresses nothing, is itself a finding;
//! the active allow list is exported in the `--json` report and baselined
//! in `BENCH_lint.json` so it cannot grow silently.
//!
//! The analysis is a hand-rolled lexer plus a name-based call graph — no
//! dependencies, no rustc internals — so it runs as a tier-1 CI gate on a
//! bare toolchain. It is deliberately over-approximate where receiver
//! types are unknown, and blind to calls through function pointers
//! (`(image.fresh)(...)`); the supervisor's runtime containment covers
//! that residue.

#![forbid(unsafe_code)]

pub mod effects;
pub mod extract;
pub mod graph;
pub mod lexer;
pub mod rules;

pub use rules::{AllowEntry, Finding};

use graph::FileEntry;
use std::path::{Path, PathBuf};

/// What to scan and which files anchor each rule.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root; all other paths are relative to it.
    pub root: PathBuf,
    /// Directories (relative) to scan for `.rs` files.
    pub scan: Vec<String>,
    /// Files whose non-test functions are recovery-path roots (rule 1).
    pub recovery_roots: Vec<String>,
    /// Files whose functions are panic-path roots (rule 4).
    pub panic_path: Vec<String>,
    /// Path prefixes where slice indexing counts as a rule-1 violation —
    /// the crates that handle dead-kernel data. Elsewhere only
    /// unwrap/expect/panic-macros are flagged: the main kernel indexing
    /// its own live structures is not walking untrusted memory.
    pub index_scope: Vec<String>,
    /// Path prefixes exempt from rule 2 (the validated-cursor layer
    /// itself and the simulated hardware).
    pub taint_exempt: Vec<String>,
    /// Files allowed to read `PhysMem` directly, with the reason why.
    pub taint_allow: Vec<(String, String)>,
    /// The layout registry file (rule 3 `reg!` entries).
    pub registry_file: String,
    /// The golden-sample file (rule 3 sample cases).
    pub samples_file: String,
    /// The crash-point registry file (rule 5 label declarations).
    pub crashpoint_registry_file: String,
    /// `(file, fn)` roots of the adopt seam (rule 6): functions that write
    /// dead-kernel-derived values into live kernel state.
    pub adopt_roots: Vec<(String, String)>,
    /// Path prefixes where a function mixing raw `PhysMem` reads and
    /// writes is a rule-6 finding by construction.
    pub adopt_write_scope: Vec<String>,
    /// `(file, fn)` roots of the validation passes (rule 7): everything
    /// they reach must be free of the `writes-live-state` effect.
    pub validation_roots: Vec<(String, String)>,
    /// Path prefixes where campaign determinism (rule 8) applies.
    pub determinism_scope: Vec<String>,
    /// Function names (within the determinism scope) that produce or merge
    /// campaign results — the rule-8 reachability roots.
    pub determinism_roots: Vec<String>,
}

impl Config {
    /// The real Otherworld workspace layout, rooted at `root`.
    pub fn workspace(root: &Path) -> Config {
        let s = |v: &[&str]| v.iter().map(|s| (*s).to_string()).collect::<Vec<_>>();
        Config {
            root: root.to_path_buf(),
            // apps (user programs outside the kernel trust boundary, run
            // under containment) are not scanned; see DESIGN.md. bench and
            // faultinject are scanned for rule 8 only — their panics are
            // harness-side and unreachable from the rule-1/4 roots.
            scan: s(&[
                "crates/bench",
                "crates/core",
                "crates/crashpoint",
                "crates/faultinject",
                "crates/kernel",
                "crates/layout",
                "crates/simhw",
                "crates/trace",
                "crates/lint",
                "src",
            ]),
            recovery_roots: s(&[
                "crates/core/src/otherworld.rs",
                "crates/core/src/reader.rs",
                "crates/core/src/resurrect.rs",
                "crates/core/src/supervisor.rs",
            ]),
            panic_path: s(&["crates/kernel/src/panic.rs", "crates/kernel/src/kexec.rs"]),
            // simhw is deliberately absent: the hardware model's accessors
            // are the bounds-checking layer itself (`Result`-returning,
            // `check()`-guarded), and its buffers are the backing store —
            // a wild write in the *simulated* kernel cannot change a host
            // `Vec`'s length. Its unwraps/asserts are still rule-1 sites.
            index_scope: s(&["crates/core/", "crates/layout/", "crates/trace/"]),
            taint_exempt: s(&["crates/layout/", "crates/simhw/", "crates/lint/"]),
            taint_allow: vec![
                (
                    "crates/kernel/src/ipc.rs".to_string(),
                    "main kernel moving bytes through memory it owns".to_string(),
                ),
                (
                    "crates/kernel/src/swap.rs".to_string(),
                    "main kernel paging its own frames to its own swap".to_string(),
                ),
                (
                    "crates/kernel/src/pagecache.rs".to_string(),
                    "main kernel filling cache frames it just allocated".to_string(),
                ),
                (
                    "crates/kernel/src/term.rs".to_string(),
                    "main kernel rendering its own terminal frames".to_string(),
                ),
                (
                    "crates/kernel/src/vm.rs".to_string(),
                    "page-table walks over live mappings the main kernel owns".to_string(),
                ),
                (
                    "crates/trace/src/ring.rs".to_string(),
                    "the recorder owns its reserved ring frames".to_string(),
                ),
                (
                    "crates/trace/src/recover.rs".to_string(),
                    "CRC-framed ring recovery; every record is validated before use".to_string(),
                ),
                (
                    "crates/faultinject/src/recovery.rs".to_string(),
                    "fault injector reading sealed checkpoint bytes to corrupt them; \
                     harness-side wild writes are the point"
                        .to_string(),
                ),
            ],
            registry_file: "crates/layout/src/registry.rs".to_string(),
            samples_file: "crates/layout/src/samples.rs".to_string(),
            crashpoint_registry_file: "crates/crashpoint/src/registry.rs".to_string(),
            adopt_roots: pairs(&[
                ("crates/core/src/otherworld.rs", "try_build_adopt_plan"),
                ("crates/core/src/rollback.rs", "apply"),
                ("crates/kernel/src/kexec.rs", "adopt_frames"),
                ("crates/kernel/src/kexec.rs", "morph_into_main_with"),
            ]),
            adopt_write_scope: s(&["crates/core/"]),
            validation_roots: pairs(&[
                ("crates/core/src/rollback.rs", "validate"),
                ("crates/core/src/otherworld.rs", "try_build_adopt_plan"),
            ]),
            determinism_scope: s(&["crates/faultinject/", "crates/bench/"]),
            determinism_roots: s(&[
                "run_campaign",
                "run_recovery_campaign",
                "campaign_crashpoints",
                "run_indexed",
                "parallel_map",
                "table5_json",
                "recovery_json",
                "table6_json",
                "table6_matrix",
                "campaign_json",
                "to_json",
            ]),
        }
    }
}

fn pairs(v: &[(&str, &str)]) -> Vec<(String, String)> {
    v.iter()
        .map(|(a, b)| ((*a).to_string(), (*b).to_string()))
        .collect()
}

/// The result of a lint run.
#[derive(Debug)]
pub struct Report {
    /// All findings, sorted by file, line, rule.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub scanned_files: usize,
    /// Every escape-hatch directive currently suppressing something,
    /// sorted by file and line.
    pub allows: Vec<AllowEntry>,
    /// Number of escape-hatch directives currently suppressing something.
    pub allows_used: usize,
}

impl Report {
    /// Machine-readable rendering for trend tracking (`--json`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":{},\"file\":{},\"line\":{},\"function\":{},\"message\":{},\"via\":[",
                json_str(&f.rule),
                json_str(&f.file),
                f.line,
                json_str(&f.function),
                json_str(&f.message),
            ));
            for (j, v) in f.via.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&json_str(v));
            }
            out.push_str("]}");
        }
        out.push_str("],\"allows\":[");
        for (i, a) in self.allows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"rules\":[");
            for (j, r) in a.rules.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&json_str(r));
            }
            out.push_str(&format!(
                "],\"file\":{},\"line\":{},\"reason\":{}}}",
                json_str(&a.file),
                a.line,
                json_str(&a.reason),
            ));
        }
        out.push_str(&format!(
            "],\"scanned_files\":{},\"allows_used\":{}}}",
            self.scanned_files, self.allows_used
        ));
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Runs the lint. Fails only on I/O problems (unreadable root); findings
/// are data, not errors.
pub fn run(cfg: &Config) -> Result<Report, String> {
    let files = load_files(cfg)?;
    let (findings, allows) = rules::check(cfg, &files);
    let allows_used = allows.len();
    Ok(Report {
        findings,
        scanned_files: files.len(),
        allows,
        allows_used,
    })
}

/// Loads and extracts every file in the scan set, deterministic order.
pub fn load_files(cfg: &Config) -> Result<Vec<FileEntry>, String> {
    let mut paths = Vec::new();
    for dir in &cfg.scan {
        let p = cfg.root.join(dir);
        if p.exists() {
            walk(&p, &mut paths)?;
        }
    }
    paths.sort();
    let mut files = Vec::new();
    for p in &paths {
        let rel = p
            .strip_prefix(&cfg.root)
            .map_err(|e| e.to_string())?
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display()))?;
        let (toks, directives) = lexer::lex(&src);
        let force_test = rel
            .split('/')
            .any(|seg| seg == "tests" || seg == "benches" || seg == "examples");
        let model = extract::extract(&toks, directives, force_test);
        files.push(FileEntry { path: rel, model });
    }
    Ok(files)
}

/// Renders the effect summary of every workspace function named (or
/// `Type::`-qualified as) `function`, with one witness path per effect —
/// the `--effects` debug subcommand. Errors when nothing matches.
pub fn effects_of(cfg: &Config, function: &str) -> Result<String, String> {
    let files = load_files(cfg)?;
    let graph = graph::Graph::build(&files);
    let eff = effects::Effects::compute(&graph);
    let mut out = String::new();
    let mut matched = false;
    for id in graph.all_defs() {
        let def = graph.def(id);
        let qualified = match &def.ctx {
            Some(c) => format!("{c}::{}", def.name),
            None => def.name.clone(),
        };
        if def.name != function && qualified != function {
            continue;
        }
        matched = true;
        let mask = eff.of(id);
        out.push_str(&format!(
            "{}:{} fn {qualified}\n  effects: {mask}\n",
            graph.file_of(id),
            def.line,
        ));
        for (bit, name) in effects::ALL_EFFECTS {
            if !mask.has(bit) {
                continue;
            }
            match eff.witness(&graph, id, bit) {
                Some(w) => out.push_str(&format!(
                    "  {name}: {} at line {}\n    via {}\n",
                    w.what,
                    w.line,
                    w.path.join(" -> "),
                )),
                None => out.push_str(&format!("  {name}: (no witness path)\n")),
            }
        }
    }
    if !matched {
        return Err(format!("no workspace function named `{function}`"));
    }
    Ok(out)
}

/// Recursive `.rs` discovery, deterministic order, skipping build output,
/// VCS internals, and the lint's own seeded-violation fixtures.
fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(Result::ok)
        .collect();
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for e in entries {
        let p = e.path();
        let name = e.file_name().to_string_lossy().into_owned();
        if p.is_dir() {
            if name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            walk(&p, out)?;
        } else if name.ends_with(".rs") {
            out.push(p);
        }
    }
    Ok(())
}
